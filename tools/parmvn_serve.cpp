// parmvn_serve — drive the serving layer (src/serve) from the command line.
//
// Registers a synthetic GP field (exponential kernel on a Morton-ordered
// regular grid), fires a configurable client load of excursion-probability
// requests at a serve::Server, and prints the server's health report:
// admission/rejection/deadline counts, batching shape, degradation rungs,
// factor-cache hits and leaked handles. Exits nonzero if any request is
// lost (a future that never resolves is impossible by contract — this
// checks the response ledger adds up) or the drained runtime leaked handle
// slots.
//
//   parmvn_serve [--smoke] [--side N] [--clients N] [--requests N]
//                [--window-ms N] [--max-batch N] [--capacity N]
//                [--deadline-ms N] [--threads N]
//
// --smoke runs a small, fast configuration (used by the parmvn_serve_smoke
// ctest) — a saturating burst against a tiny queue, so the report shows
// sheds and degradation rungs, not just happy-path completions.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "geo/covgen.hpp"
#include "geo/geometry.hpp"
#include "serve/server.hpp"
#include "stats/covariance.hpp"

namespace {

using namespace parmvn;

struct Cli {
  bool smoke = false;
  i64 side = 8;          // field is a side x side grid
  int clients = 4;       // concurrent submitter threads
  int requests = 8;      // requests per client
  i64 window_ms = 2;
  int max_batch = 16;
  std::size_t capacity = 64;
  i64 deadline_ms = 0;   // 0 = no per-request deadline
  int threads = 2;       // serving runtime workers
};

i64 parse_i64(const char* flag, const char* val) {
  char* end = nullptr;
  const long long v = std::strtoll(val, &end, 10);
  if (end == val || *end != '\0' || v < 0) {
    std::fprintf(stderr, "parmvn_serve: bad value for %s: '%s'\n", flag, val);
    std::exit(2);
  }
  return static_cast<i64>(v);
}

Cli parse(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "parmvn_serve: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--smoke") {
      cli.smoke = true;
    } else if (arg == "--side") {
      cli.side = parse_i64("--side", next());
    } else if (arg == "--clients") {
      cli.clients = static_cast<int>(parse_i64("--clients", next()));
    } else if (arg == "--requests") {
      cli.requests = static_cast<int>(parse_i64("--requests", next()));
    } else if (arg == "--window-ms") {
      cli.window_ms = parse_i64("--window-ms", next());
    } else if (arg == "--max-batch") {
      cli.max_batch = static_cast<int>(parse_i64("--max-batch", next()));
    } else if (arg == "--capacity") {
      cli.capacity =
          static_cast<std::size_t>(parse_i64("--capacity", next()));
    } else if (arg == "--deadline-ms") {
      cli.deadline_ms = parse_i64("--deadline-ms", next());
    } else if (arg == "--threads") {
      cli.threads = static_cast<int>(parse_i64("--threads", next()));
    } else {
      std::fprintf(stderr, "parmvn_serve: unknown flag '%s'\n", arg.c_str());
      std::exit(2);
    }
  }
  if (cli.smoke) {
    // Small field, tiny queue, burst load: exercises batching, shedding and
    // the degradation ladder in well under a second.
    cli.side = 6;
    cli.clients = 4;
    cli.requests = 6;
    cli.window_ms = 5;
    cli.max_batch = 8;
    cli.capacity = 6;
    cli.threads = 2;
  }
  return cli;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli = parse(argc, argv);

  serve::ServeOptions opts;
  opts.queue_capacity = cli.capacity;
  opts.batch_window_ms = cli.window_ms;
  opts.max_batch = cli.max_batch;
  opts.engine.samples_per_shift = 200;
  opts.engine.shifts = 4;
  opts.engine.sampler = stats::SamplerKind::kRichtmyer;
  serve::Server server(opts, cli.threads);

  // One registered field: exponential-kernel GP on a Morton-ordered grid.
  const auto grid = geo::regular_grid(cli.side, cli.side);
  const auto locs = geo::apply_permutation(grid, geo::morton_order(grid));
  const auto kernel = std::make_shared<stats::ExponentialKernel>(1.0, 0.2);
  serve::FieldSpec field;
  field.cov = std::make_shared<geo::KernelCovGenerator>(locs, kernel, 1e-6);
  field.factor = engine::FactorSpec{engine::FactorKind::kDense, 16, 0.0, -1};
  const i64 n = field.cov->rows();
  server.register_field("gp", std::move(field));

  // Client load: each thread submits excursion queries P(X > level) at a
  // spread of levels, collects every future and tallies outcomes.
  std::atomic<i64> responses{0};
  std::atomic<i64> lost{0};
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(cli.clients));
  for (int c = 0; c < cli.clients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::future<serve::Response>> futs;
      futs.reserve(static_cast<std::size_t>(cli.requests));
      for (int q = 0; q < cli.requests; ++q) {
        serve::Request req;
        req.field = "gp";
        const double level = -1.0 + 0.1 * static_cast<double>(q % 8);
        req.a.assign(static_cast<std::size_t>(n), level);
        req.seed = 42 + static_cast<u64>(c * cli.requests + q);
        req.deadline_ms = cli.deadline_ms;
        futs.push_back(server.submit(std::move(req)));
      }
      for (auto& f : futs) {
        if (!f.valid()) {
          ++lost;
          continue;
        }
        (void)f.get();  // always resolves: exactly-one-response contract
        ++responses;
      }
    });
  }
  for (auto& t : clients) t.join();
  server.drain();

  const serve::ServerStats s = server.stats();
  const i64 expected = static_cast<i64>(cli.clients) * cli.requests;
  std::printf("parmvn serve report\n");
  std::printf("  field            : gp (n = %lld)\n",
              static_cast<long long>(n));
  std::printf("  submitted        : %lld (responses %lld / expected %lld)\n",
              static_cast<long long>(s.submitted),
              static_cast<long long>(responses.load()),
              static_cast<long long>(expected));
  std::printf("  admitted         : %lld\n", static_cast<long long>(s.admitted));
  std::printf("  completed ok     : %lld\n",
              static_cast<long long>(s.completed_ok));
  std::printf("  shed overloaded  : %lld\n",
              static_cast<long long>(s.rejected_overload));
  std::printf("  expired in queue : %lld\n",
              static_cast<long long>(s.expired_in_queue));
  std::printf("  failed           : %lld\n", static_cast<long long>(s.failed));
  std::printf("  batches          : %lld (max size %lld, %.2f queries/batch)\n",
              static_cast<long long>(s.batches),
              static_cast<long long>(s.max_batch_size),
              s.batches > 0 ? static_cast<double>(s.batched_queries) /
                                  static_cast<double>(s.batches)
                            : 0.0);
  std::printf("  degraded         : tiered %lld, shift-capped %lld\n",
              static_cast<long long>(s.degraded_tiered),
              static_cast<long long>(s.degraded_shift_capped));
  std::printf("  max queue depth  : %lld\n",
              static_cast<long long>(s.max_queue_depth));
  std::printf("  retries          : %lld (breaker trips %lld)\n",
              static_cast<long long>(s.retries),
              static_cast<long long>(s.breaker_trips));
  std::printf("  factor cache     : %lld hits / %lld misses / %lld evictions"
              " / %lld takeovers\n",
              static_cast<long long>(s.cache.hits),
              static_cast<long long>(s.cache.misses),
              static_cast<long long>(s.cache.evictions),
              static_cast<long long>(s.cache.in_flight_takeovers));
  std::printf("  handles leaked   : %lld\n",
              static_cast<long long>(s.handles_leaked));

  const i64 accounted = s.rejected_invalid + s.rejected_overload +
                        s.rejected_breaker + s.rejected_admit_fault +
                        s.expired_in_queue + s.completed_ok + s.failed;
  int rc = 0;
  if (lost.load() != 0 || responses.load() != expected) {
    std::fprintf(stderr, "parmvn_serve: lost responses (%lld of %lld)\n",
                 static_cast<long long>(expected - responses.load()),
                 static_cast<long long>(expected));
    rc = 1;
  }
  if (accounted != s.submitted) {
    std::fprintf(stderr,
                 "parmvn_serve: response ledger mismatch (%lld accounted, "
                 "%lld submitted)\n",
                 static_cast<long long>(accounted),
                 static_cast<long long>(s.submitted));
    rc = 1;
  }
  if (s.handles_leaked != 0) {
    std::fprintf(stderr, "parmvn_serve: %lld leaked handle slots after drain\n",
                 static_cast<long long>(s.handles_leaked));
    rc = 1;
  }
  return rc;
}
