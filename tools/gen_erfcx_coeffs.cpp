// Coefficient generator for the batched SIMD erfc in stats/normal_batch.cpp.
//
// Emits src/stats/erfcx_coeffs.inc: piecewise polynomial fits (monomial
// basis in the interval-mapped variable xm in [-1, 1]) of
//
//   P0 : erf(sqrt(w)) / sqrt(w)  on  w = z^2 in [0, 0.65^2]
//        (erfc(z) = 1 - z * P0(z^2) — no cancellation, erfc >= 0.35 there)
//   I1 : erfcx(z)                on  z in [0.65, 2]
//   I2 : erfcx(1/u)              on  u = 1/z, z in [2, 6]
//   I3 : erfcx(1/u)              on  u = 1/z, z in [6, 11]
//   I4 : erfcx(1/u)              on  u = 1/z, z in [11, 18.6]
//        (erfc(z) = exp(-z^2) * erfcx(z), the exponential evaluated from a
//        Dekker-split z^2 so its ~z^2*2^-53 argument rounding cannot eat
//        the 1e-14 relative budget)
//
// Everything is computed in long double (erfcl/expl, ~1e-19) by Chebyshev
// interpolation, converted to monomial coefficients in long double, and
// printed as C hexfloats so the emitted doubles round-trip exactly. The
// tool then validates the *double* evaluation pipeline (exactly mirroring
// the kernel's Horner + split-exp arithmetic) against std::erfc and against
// the long-double reference on dense grids, and fails loudly if the max
// relative error exceeds the budget — rerun it whenever the intervals or
// degrees change.
//
// Build & run (not part of the CMake build):
//   g++ -O2 -std=c++20 -o /tmp/gen_erfcx tools/gen_erfcx_coeffs.cpp
//   /tmp/gen_erfcx > src/stats/erfcx_coeffs.inc
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

namespace {

using ld = long double;

constexpr ld kPi = 3.14159265358979323846264338327950288L;

// ---- fitting ----

struct Fit {
  std::string name;
  ld lo, hi;                // interval in the fit variable
  std::vector<ld> mono;     // monomial coeffs in xm = (v - center)/halfw
  ld center() const { return (lo + hi) / 2; }
  ld halfw() const { return (hi - lo) / 2; }
};

Fit cheb_fit(const std::string& name, int degree, ld lo, ld hi,
             const std::function<ld(ld)>& f) {
  const int n = degree + 1;
  const ld c = (lo + hi) / 2;
  const ld h = (hi - lo) / 2;
  std::vector<ld> fv(n);
  for (int j = 0; j < n; ++j) {
    const ld xj = std::cos(kPi * (static_cast<ld>(j) + 0.5L) / n);
    fv[j] = f(c + h * xj);
  }
  std::vector<ld> cheb(n, 0.0L);
  for (int k = 0; k < n; ++k) {
    ld sum = 0.0L;
    for (int j = 0; j < n; ++j)
      sum += fv[j] * std::cos(kPi * k * (static_cast<ld>(j) + 0.5L) / n);
    cheb[k] = 2.0L / n * sum;
  }
  cheb[0] /= 2.0L;

  // Chebyshev -> monomial in xm via the T_{k+1} = 2 x T_k - T_{k-1}
  // recurrence, all in long double.
  std::vector<ld> mono(n, 0.0L), tprev(n, 0.0L), tcur(n, 0.0L);
  tprev[0] = 1.0L;
  mono[0] += cheb[0];
  if (n > 1) {
    tcur[1] = 1.0L;
    mono[1] += cheb[1];
  }
  for (int k = 2; k < n; ++k) {
    std::vector<ld> tnext(n, 0.0L);
    for (int i = 0; i + 1 < n; ++i) tnext[i + 1] = 2.0L * tcur[i];
    for (int i = 0; i < n; ++i) tnext[i] -= tprev[i];
    for (int i = 0; i < n; ++i) mono[i] += cheb[k] * tnext[i];
    tprev = tcur;
    tcur = tnext;
  }
  return Fit{name, lo, hi, mono};
}

// ---- the double evaluation pipeline (must mirror normal_batch.cpp) ----

double horner(const Fit& fit, double v) {
  // Mirror the kernel: multiply by the emitted double InvHalf (not a
  // division by halfw), so validation sees the exact production rounding.
  const double xm = (v - static_cast<double>(fit.center())) *
                    static_cast<double>(1.0L / fit.halfw());
  double p = static_cast<double>(fit.mono.back());
  for (int i = static_cast<int>(fit.mono.size()) - 2; i >= 0; --i)
    p = p * xm + static_cast<double>(fit.mono[i]);
  return p;
}

// exp(x + xlo) for x in [-709, 0], |xlo| tiny: the kernel's vexp. Magic-
// number round-to-nearest, hi/lo ln2 reduction, degree-13 Taylor Horner,
// exponent-bit 2^k scaling.
double exp_ref(double x, double xlo) {
  constexpr double kLog2e = 1.4426950408889634073599246810018921;
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  constexpr double kShift = 6755399441055744.0;  // 1.5 * 2^52
  const double t = x * kLog2e + kShift;
  const double kd = t - kShift;
  const double r = (x - kd * kLn2Hi) - kd * kLn2Lo + xlo;
  double p = 1.0 / 6227020800.0;  // 1/13!
  p = p * r + 1.0 / 479001600.0;
  p = p * r + 1.0 / 39916800.0;
  p = p * r + 1.0 / 3628800.0;
  p = p * r + 1.0 / 362880.0;
  p = p * r + 1.0 / 40320.0;
  p = p * r + 1.0 / 5040.0;
  p = p * r + 1.0 / 720.0;
  p = p * r + 1.0 / 120.0;
  p = p * r + 1.0 / 24.0;
  p = p * r + 1.0 / 6.0;
  p = p * r + 0.5;
  p = p * r + 1.0;
  p = p * r + 1.0;
  const long long k = static_cast<long long>(kd);
  double scale;
  const unsigned long long bits =
      static_cast<unsigned long long>(k + 1023) << 52;
  __builtin_memcpy(&scale, &bits, sizeof(scale));
  return p * scale;
}

struct Tables {
  Fit p0, i1, i2, i3, i4;
};

// erfc(z) for |z| <= 18.6 exactly as the vector kernel computes it.
double erfc_model(const Tables& tb, double z) {
  const double az = std::fabs(z);
  double r;
  if (az <= 0.65) {
    r = 1.0 - az * horner(tb.p0, az * az);
  } else {
    const double t = az * 134217729.0;  // Dekker split, 2^27 + 1
    const double zh = t - (t - az);
    const double zl = az - zh;
    const double shi = zh * zh;
    const double slo = 2.0 * zh * zl + zl * zl;
    const double ex = exp_ref(-shi, -slo);
    double g;
    if (az <= 2.0) {
      g = horner(tb.i1, az);
    } else {
      const double u = 1.0 / az;
      if (az <= 6.0) g = horner(tb.i2, u);
      else if (az <= 11.0) g = horner(tb.i3, u);
      else g = horner(tb.i4, u);
    }
    r = ex * g;
  }
  return z >= 0.0 ? r : 2.0 - r;
}

// ---- validation ----

ld erfcx_l(ld z) { return std::exp(z * z) * std::erfc(z); }

struct Err {
  double max_vs_libm = 0.0, max_vs_ref = 0.0;
  double at_libm = 0.0, at_ref = 0.0;
};

void check(const Tables& tb, double lo, double hi, int samples, Err& err) {
  for (int i = 0; i <= samples; ++i) {
    const double z = lo + (hi - lo) * static_cast<double>(i) / samples;
    const double got = erfc_model(tb, z);
    const double libm = std::erfc(z);
    const ld ref = std::erfc(static_cast<ld>(z));
    if (libm != 0.0) {
      const double e = std::fabs(got / libm - 1.0);
      if (e > err.max_vs_libm) {
        err.max_vs_libm = e;
        err.at_libm = z;
      }
    }
    if (ref != 0.0L) {
      const double e =
          static_cast<double>(std::fabs(static_cast<ld>(got) / ref - 1.0L));
      if (e > err.max_vs_ref) {
        err.max_vs_ref = e;
        err.at_ref = z;
      }
    }
  }
}

// ---- emission ----

void emit_fit(const Fit& fit) {
  std::printf("inline constexpr double k%sCenter = %a;\n", fit.name.c_str(),
              static_cast<double>(fit.center()));
  std::printf("inline constexpr double k%sInvHalf = %a;\n", fit.name.c_str(),
              static_cast<double>(1.0L / fit.halfw()));
  std::printf("// monomial in xm = (v - center) * invhalf, ascending degree\n");
  std::printf("inline constexpr double k%s[] = {\n", fit.name.c_str());
  for (const ld c : fit.mono)
    std::printf("    %a,  // %.20Le\n", static_cast<double>(c), c);
  std::printf("};\n\n");
}

}  // namespace

int main() {
  const ld z0 = 0.65L, z1 = 2.0L, z2 = 6.0L, z3 = 11.0L, z4 = 18.6L;

  Tables tb;
  tb.p0 = cheb_fit("ErfP0", 14, 0.0L, z0 * z0, [](ld w) {
    const ld z = std::sqrt(w);
    return std::erf(z) / z;
  });
  tb.i1 = cheb_fit("Erfcx1", 22, z0, z1, [](ld z) { return erfcx_l(z); });
  tb.i2 = cheb_fit("Erfcx2", 22, 1.0L / z2, 1.0L / z1,
                   [](ld u) { return erfcx_l(1.0L / u); });
  tb.i3 = cheb_fit("Erfcx3", 18, 1.0L / z3, 1.0L / z2,
                   [](ld u) { return erfcx_l(1.0L / u); });
  tb.i4 = cheb_fit("Erfcx4", 18, 1.0L / z4, 1.0L / z3,
                   [](ld u) { return erfcx_l(1.0L / u); });

  Err err;
  check(tb, -6.0, 0.0, 400000, err);       // reflected side
  check(tb, 0.0, 0.65, 200000, err);       // Taylor region
  check(tb, 0.65, 2.0, 200000, err);       // I1
  check(tb, 2.0, 6.0, 200000, err);        // I2
  check(tb, 6.0, 11.0, 200000, err);       // I3
  check(tb, 11.0, 18.6, 400000, err);      // I4 (deep tail)
  std::fprintf(stderr,
               "max rel err vs std::erfc : %.3e at z = %.6f\n"
               "max rel err vs longdouble: %.3e at z = %.6f\n",
               err.max_vs_libm, err.at_libm, err.max_vs_ref, err.at_ref);
  if (err.max_vs_ref > 4e-15 || err.max_vs_libm > 8e-15) {
    std::fprintf(stderr, "FAIL: error budget exceeded — raise degrees or "
                         "split intervals\n");
    return 1;
  }

  std::printf(
      "// Generated by tools/gen_erfcx_coeffs.cpp — do not edit by hand.\n"
      "// Piecewise fits for the batched SIMD erfc; see that tool for the\n"
      "// interval layout, the error budget and regeneration instructions.\n"
      "// Validated: max rel err %.3e vs std::erfc, %.3e vs long double.\n"
      "namespace parmvn::stats::erfc_tables {\n\n",
      err.max_vs_libm, err.max_vs_ref);
  std::printf("inline constexpr double kZTaylor = %a;  // %.3Lf\n",
              static_cast<double>(z0), z0);
  std::printf("inline constexpr double kZSplit1 = %a;  // %.3Lf\n",
              static_cast<double>(z1), z1);
  std::printf("inline constexpr double kZSplit2 = %a;  // %.3Lf\n",
              static_cast<double>(z2), z2);
  std::printf("inline constexpr double kZSplit3 = %a;  // %.3Lf\n",
              static_cast<double>(z3), z3);
  std::printf("inline constexpr double kZMax = %a;  // %.3Lf\n\n",
              static_cast<double>(z4), z4);
  emit_fit(tb.p0);
  emit_fit(tb.i1);
  emit_fit(tb.i2);
  emit_fit(tb.i3);
  emit_fit(tb.i4);
  std::printf("}  // namespace parmvn::stats::erfc_tables\n");
  return 0;
}
