#include "ep/ep_screen.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/contracts.hpp"
#include "common/fault.hpp"
#include "common/timer.hpp"
#include "engine/factor_backend.hpp"
#include "ep/truncated.hpp"

namespace parmvn::ep {

namespace {
constexpr double kVMin = 1e-12;  // slot/row variance floor
}  // namespace

namespace detail {

// The EP screen over one factor: generative rows flattened to CSR once
// (ep_row is a virtual per-row materialisation — TLR rows cost
// O(cols * rank) to form), then swept in place per query by the passes
// below. The flatten is query-independent, which is what EpScreener
// amortises across a batch.
class Screen {
 public:
  explicit Screen(const engine::FactorBackend& f)
      : n_(f.dim()), latent_(f.ep_latent_slots()) {
    offsets_.reserve(static_cast<std::size_t>(n_ + 1));
    offsets_.push_back(0);
    d_.resize(static_cast<std::size_t>(n_));
    std::vector<std::pair<i64, double>> row;
    for (i64 k = 0; k < n_; ++k) {
      d_[static_cast<std::size_t>(k)] = f.ep_row(k, row);
      for (const auto& [slot, coef] : row) {
        PARMVN_ASSERT(slot >= 0 && slot < k);
        slots_.push_back(slot);
        coefs_.push_back(coef);
      }
      offsets_.push_back(static_cast<i64>(slots_.size()));
    }
    m_.assign(static_cast<std::size_t>(n_), 0.0);
    v_.assign(static_cast<std::size_t>(n_), 1.0);
    tau_.assign(static_cast<std::size_t>(n_), 0.0);
    nu_.assign(static_cast<std::size_t>(n_), 0.0);
    prefix_logz_.assign(static_cast<std::size_t>(n_), 0.0);
  }

  // One full screen of the box [a, b]: warm-start-or-direct-solve driver
  // over the sweep below. The spans must stay valid for the duration of the
  // call only; site/belief buffers are reused across calls.
  [[nodiscard]] EpResult run(std::span<const double> a,
                             std::span<const double> b, const EpOptions& opts,
                             EpState* state) {
    const WallTimer timer;
    PARMVN_EXPECTS(static_cast<i64>(a.size()) == n_ &&
                   static_cast<i64>(b.size()) == n_);
    PARMVN_EXPECTS(opts.max_sweeps >= 0);
    PARMVN_EXPECTS(opts.damping > 0.0 && opts.damping <= 1.0);
    a_ = a;
    b_ = b;

    EpResult res;
    // Warm start: one damped sweep from the cached neighbour sites. A
    // nearby seed certifies right here (delta = damping * |match - seed|
    // under the tolerance) and the screen is done in a single pass — half
    // the cold cost. A far seed is not worth relaxing toward the fixed
    // point at a linear rate; fall through to the direct solve instead.
    bool seeded = false;
    if (state != nullptr && state->valid_for(n_)) {
      tau_ = state->site_tau;
      nu_ = state->site_nu;
      seeded = true;
      const double delta = sweep(opts.damping);
      ++res.sweeps;
      res.converged = delta <= opts.tol;
    }
    if (!res.converged) {
      if (!seeded) {
        std::fill(tau_.begin(), tau_.end(), 0.0);
        std::fill(nu_.begin(), nu_.end(), 0.0);
      }
      // One full-damping sweep solves the sequential fixed point directly
      // (see sweep()); the loop certifies it — the first certify sweep
      // reproduces the solve pass exactly, so it exits with delta == 0.
      (void)sweep(1.0);
      for (int it = 0; it < opts.max_sweeps; ++it) {
        const double delta = sweep(opts.damping);
        ++res.sweeps;
        if (delta <= opts.tol) {
          res.converged = true;
          break;
        }
      }
    }
    res.prefix_logz = prefix_logz_;
    res.logz = res.prefix_logz.empty() ? 0.0 : res.prefix_logz.back();
    if (state != nullptr) {
      state->site_tau = tau_;
      state->site_nu = nu_;
    }
    res.seconds = timer.seconds();
    return res;
  }

 private:

  // One sequential EP sweep: walk the rows in factor order, rebuilding the
  // slot beliefs from the prior as we go. At row k the forward predictive
  // (mu_f, v_f) of the row functional is computed from slots conditioned on
  // rows < k only — it excludes row k's own site by construction, so it IS
  // the cavity, with no precision subtraction (and therefore no negative-
  // cavity pathologies) needed. The truncation is moment-matched against
  // it, the site takes a damped step toward the matched natural parameters,
  // and the *updated* site conditions the slots for the rows downstream
  // (Gauss-Seidel scheduling).
  //
  // The readout factor of row k is the exact truncated mass of the
  // predictive — a true conditional probability of the Gaussian
  // approximation, so each factor is <= 1, the prefix curve is monotone
  // non-increasing by construction, and row 0 (prior predictive) is exact.
  //
  // With damping = 1 the sweep is classic assumed-density filtering, and
  // one further sweep reproduces itself exactly (the same predictives beget
  // the same matches): the cold-start path solves the sequential fixed
  // point directly and the next sweep certifies delta == 0. A warm start
  // relaxes cached neighbour sites toward the same (seed-independent) fixed
  // point, skipping the full-damping solve pass. Returns the largest
  // scaled site natural-parameter change.
  double sweep(double damping) {
    PARMVN_FAULT_POINT("ep.sweep");
    reset_slots();
    double delta = 0.0;
    double cum = 0.0;
    for (i64 k = 0; k < n_; ++k) {
      const std::size_t uk = static_cast<std::size_t>(k);
      const auto [mu_f, v_f] = forward_moments(k);
      const TruncatedMoments tm = match(k, mu_f, v_f);
      cum += tm.logz;
      prefix_logz_[uk] = cum;
      const double v_t = std::max(v_f * tm.var, kVMin);
      const double mu_t = mu_f + std::sqrt(v_f) * tm.mean;
      const double tau_star = std::max(1.0 / v_t - 1.0 / v_f, 0.0);
      const double nu_star = mu_t / v_t - mu_f / v_f;
      const double tau_new = tau_[uk] + damping * (tau_star - tau_[uk]);
      const double nu_new = nu_[uk] + damping * (nu_star - nu_[uk]);
      delta = std::max(delta, std::fabs(tau_new - tau_[uk]) /
                                  (1.0 + std::fabs(tau_[uk])));
      delta = std::max(delta, std::fabs(nu_new - nu_[uk]) /
                                  (1.0 + std::fabs(nu_[uk])));
      tau_[uk] = tau_new;
      nu_[uk] = nu_new;
      // Row posterior under the damped site (== the tilted moments at
      // damping 1), projected back onto the parent slots.
      const double v_p = 1.0 / (1.0 / v_f + tau_new);
      const double mu_p = (mu_f / v_f + nu_new) * v_p;
      project(k, mu_f, v_f, mu_p, std::max(v_p, kVMin));
    }
    return delta;
  }

  void reset_slots() {
    std::fill(m_.begin(), m_.end(), 0.0);
    std::fill(v_.begin(), v_.end(), 1.0);
  }

  // Predictive moments of row k's functional from its parent slots plus the
  // innovation. In latent mode the innovation is slot k itself (coefficient
  // d_k); in observed mode it is private noise contributing d_k^2 variance.
  [[nodiscard]] std::pair<double, double> forward_moments(i64 k) const {
    const std::size_t uk = static_cast<std::size_t>(k);
    double mu = 0.0;
    double var = 0.0;
    for (i64 e = offsets_[uk]; e < offsets_[uk + 1]; ++e) {
      const std::size_t ue = static_cast<std::size_t>(e);
      const double c = coefs_[ue];
      const std::size_t j = static_cast<std::size_t>(slots_[ue]);
      mu += c * m_[j];
      var += c * c * v_[j];
    }
    const double d = d_[uk];
    if (latent_) {
      mu += d * m_[uk];
      var += d * d * v_[uk];
    } else {
      var += d * d;
    }
    return {mu, std::max(var, kVMin)};
  }

  // Truncated moments of N(mu, v) restricted to [a_k, b_k], standardised.
  [[nodiscard]] TruncatedMoments match(i64 k, double mu, double v) const {
    const std::size_t uk = static_cast<std::size_t>(k);
    const double sd = std::sqrt(v);
    return truncated_moments((a_[uk] - mu) / sd, (b_[uk] - mu) / sd);
  }

  // Rank-one moment projection of the row-functional update (mu_f, v_f) ->
  // (mu_p, v_p) onto the parent slots: under the factorised belief
  // Cov(s_j, row) = c_j v_j, so the per-slot gain is c_j v_j / v_f. In
  // observed mode slot k takes the row posterior verbatim (the row
  // functional *is* x_k).
  void project(i64 k, double mu_f, double v_f, double mu_p, double v_p) {
    const std::size_t uk = static_cast<std::size_t>(k);
    const double dmu = mu_p - mu_f;
    const double dv = v_f - v_p;
    for (i64 e = offsets_[uk]; e < offsets_[uk + 1]; ++e) {
      const std::size_t ue = static_cast<std::size_t>(e);
      const std::size_t j = static_cast<std::size_t>(slots_[ue]);
      const double g = coefs_[ue] * v_[j] / v_f;
      m_[j] += g * dmu;
      v_[j] = std::max(v_[j] - g * g * dv, kVMin);
    }
    if (latent_) {
      const double g = d_[uk] * v_[uk] / v_f;
      m_[uk] += g * dmu;
      v_[uk] = std::max(v_[uk] - g * g * dv, kVMin);
    } else {
      m_[uk] = mu_p;
      v_[uk] = std::max(v_p, kVMin);
    }
  }

  std::span<const double> a_;
  std::span<const double> b_;
  i64 n_;
  bool latent_;
  std::vector<i64> offsets_;     // CSR row pointers (n + 1)
  std::vector<i64> slots_;       // parent slot per entry
  std::vector<double> coefs_;    // parent coefficient per entry
  std::vector<double> d_;        // innovation sd per row
  std::vector<double> m_, v_;    // factorised slot beliefs
  std::vector<double> tau_, nu_;  // sites (natural parameters)
  std::vector<double> prefix_logz_;
};

}  // namespace detail

EpScreener::EpScreener(const engine::FactorBackend& f)
    : impl_(std::make_unique<detail::Screen>(f)) {}
EpScreener::~EpScreener() = default;
EpScreener::EpScreener(EpScreener&&) noexcept = default;
EpScreener& EpScreener::operator=(EpScreener&&) noexcept = default;

EpResult EpScreener::screen(std::span<const double> a,
                            std::span<const double> b, const EpOptions& opts,
                            EpState* state) {
  return impl_->run(a, b, opts, state);
}

EpResult ep_screen(const engine::FactorBackend& f, std::span<const double> a,
                   std::span<const double> b, const EpOptions& opts,
                   EpState* state) {
  EpScreener s(f);
  return s.screen(a, b, opts, state);
}

}  // namespace parmvn::ep
