#include "ep/truncated.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "stats/normal.hpp"

namespace parmvn::ep {

namespace {

constexpr double kVarMin = 1e-12;
constexpr double kInvSqrt2 = 0.70710678118654752440;
constexpr double kSqrt2OverPi = 0.79788456080286535588;  // sqrt(2/pi)
constexpr double kLogHalf = -0.69314718055994530942;

// log Phi(-alpha) = log of the upper-tail mass beyond alpha, stable for any
// alpha (the deep upper tail goes through erfcx, so no intermediate
// underflow).
double log_upper_tail(double alpha) {
  if (alpha <= 0.0) return std::log(stats::norm_cdf(-alpha));
  return -0.5 * alpha * alpha + kLogHalf +
         std::log(erfcx_pos(alpha * kInvSqrt2));
}

// Mills ratio phi(alpha) / Phi(-alpha), stable for any alpha.
double mills_upper(double alpha) {
  if (alpha <= 0.0) return stats::norm_pdf(alpha) / stats::norm_cdf(-alpha);
  return kSqrt2OverPi / erfcx_pos(alpha * kInvSqrt2);
}

// Moments of Z | Z >= alpha (one-sided lower truncation).
TruncatedMoments lower_truncated(double alpha) {
  TruncatedMoments tm;
  tm.logz = log_upper_tail(alpha);
  const double r = mills_upper(alpha);
  tm.mean = r;
  tm.var = std::clamp(1.0 + alpha * r - r * r, kVarMin, 1.0);
  return tm;
}

// Moments of Z | alpha <= Z <= beta with 0 <= alpha < beta (possibly
// infinite beta): both endpoints in the upper tail, where the plain CDF
// difference loses all digits. Everything is expressed through the two
// one-sided Mills ratios and the log-mass ratio delta = log of the
// fraction of [alpha, inf)'s mass that lies beyond beta.
TruncatedMoments upper_tail_slice(double alpha, double beta) {
  PARMVN_ASSERT(alpha >= 0.0 && beta > alpha);
  if (std::isinf(beta)) return lower_truncated(alpha);
  const double la = log_upper_tail(alpha);
  const double lb = log_upper_tail(beta);
  const double delta = lb - la;          // <= 0
  const double tail = std::exp(delta);   // P(Z >= beta) / P(Z >= alpha)
  const double keep = -std::expm1(delta);  // 1 - tail, stable near 0
  TruncatedMoments tm;
  if (keep <= 0.0) {
    // The slice's mass vanished under the one-sided masses themselves —
    // degrade to uniform-on-the-interval.
    tm.logz = std::max(la + std::log(kVarMin), kLogZFloor);
    tm.mean = 0.5 * (alpha + beta);
    const double w = beta - alpha;
    tm.var = std::clamp(w * w / 12.0, kVarMin, 1.0);
    return tm;
  }
  tm.logz = std::max(la + std::log(keep), kLogZFloor);
  const double pa_over_z = mills_upper(alpha) / keep;
  const double pb_over_z = mills_upper(beta) * tail / keep;
  tm.mean = std::clamp(pa_over_z - pb_over_z, alpha, beta);
  tm.var = std::clamp(
      1.0 + alpha * pa_over_z - beta * pb_over_z - tm.mean * tm.mean, kVarMin,
      1.0);
  return tm;
}

TruncatedMoments reflect(TruncatedMoments tm) {
  tm.mean = -tm.mean;
  return tm;
}

}  // namespace

double erfcx_pos(double x) {
  PARMVN_ASSERT(x >= 0.0);
  if (x < 25.0) return std::exp(x * x) * std::erfc(x);
  // Asymptotic series: erfcx(x) ~ 1/(x sqrt(pi)) * (1 - 1/(2x^2) + 3/(4x^4)
  // - 15/(8x^6)); the truncation error at x = 25 is below 1e-10 relative.
  const double ix2 = 1.0 / (x * x);
  constexpr double kInvSqrtPi = 0.56418958354775628695;
  return kInvSqrtPi / x *
         (1.0 + ix2 * (-0.5 + ix2 * (0.75 - 1.875 * ix2)));
}

TruncatedMoments truncated_moments(double alpha, double beta) {
  PARMVN_EXPECTS(alpha < beta);
  if (std::isinf(alpha) && std::isinf(beta)) return {};
  if (std::isinf(beta)) return lower_truncated(alpha);
  if (std::isinf(alpha)) return reflect(lower_truncated(-beta));
  if (alpha >= 0.0) return upper_tail_slice(alpha, beta);
  if (beta <= 0.0) return reflect(upper_tail_slice(-beta, -alpha));

  // alpha < 0 < beta (both finite): the interval straddles the mode, so the
  // plain CDF difference keeps full accuracy (mass >= Phi(beta) - Phi(0)).
  TruncatedMoments tm;
  const double z = stats::norm_cdf_diff(alpha, beta);
  tm.logz = std::max(std::log(z), kLogZFloor);
  const double pa = stats::norm_pdf(alpha);
  const double pb = stats::norm_pdf(beta);
  tm.mean = (pa - pb) / z;
  tm.var = std::clamp(1.0 + (alpha * pa - beta * pb) / z - tm.mean * tm.mean,
                      kVarMin, 1.0);
  return tm;
}

}  // namespace parmvn::ep
