// Stable moments of the standard normal truncated to [alpha, beta] — the
// 1-D building block of the EP screening estimator (src/ep/ep_screen.hpp).
//
// For Z ~ N(0, 1) conditioned on alpha <= Z <= beta (either limit may be
// infinite) returns the log normalizer log P(alpha <= Z <= beta) and the
// first two central moments of the conditioned variable. Everything is
// computed through log-CDFs and log-pdf ratios (Mills ratios in log space),
// so one-sided truncations stay accurate arbitrarily deep in the tail —
// exactly the regime the confidence-region screen lives in, where a cleanly
// decided prefix row has |alpha| of 5..40. Far two-sided slivers whose mass
// underflows double precision degrade to a uniform-on-the-interval
// approximation (logz floored at kLogZFloor) instead of NaN: by then the
// query is decided regardless, but EP must keep iterating stably.
#pragma once

namespace parmvn::ep {

struct TruncatedMoments {
  double logz = 0.0;  // log P(alpha <= Z <= beta)
  double mean = 0.0;  // E[Z | trunc]
  double var = 1.0;   // Var[Z | trunc], in (0, 1]
};

/// Floor for logz when the interval mass underflows (exp(-745) is the
/// smallest positive double).
inline constexpr double kLogZFloor = -745.0;

/// Requires alpha < beta (infinities allowed).
[[nodiscard]] TruncatedMoments truncated_moments(double alpha, double beta);

/// Scaled complementary error function exp(x^2) * erfc(x), accurate for all
/// x >= 0 (continued-fraction/asymptotic in the tail). Exposed for tests.
[[nodiscard]] double erfcx_pos(double x);

}  // namespace parmvn::ep
