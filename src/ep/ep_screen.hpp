// Expectation-propagation screening estimator for box/prefix MVN
// probabilities — the deterministic front tier of the engine's tiered
// evaluation (EngineOptions::tiered).
//
// The estimator works over a FactorBackend's generative rows: every factor
// arm expresses coordinate k of the ordered, standardised field as
//
//   x_k = sum_j c_kj * s_j + d_k * z_k,   z_k ~ N(0, 1) fresh noise,
//
// where the parent slots s_j are earlier *latent* innovations (dense/TLR:
// the row of the Cholesky factor L, d_k = L_kk) or earlier *observed*
// coordinates (Vecchia: the conditioning-set regression weights, d_k the
// conditional sd) — see FactorBackend::ep_row(). Per row there is one
// truncation factor t_k(x_k) = 1[a_k <= x_k <= b_k], approximated by an
// unnormalised Gaussian site in natural parameters (nu, tau):
// t~_k(s) = exp(nu s - tau s^2 / 2).
//
// One EP iteration is one *sequential* sweep over the rows (Gauss-Seidel
// scheduling): rebuild the slot beliefs forward from the prior, and at each
// row moment-match the truncation (ep/truncated.hpp) against the forward
// predictive — which excludes the row's own site by construction, so it is
// the cavity with no precision subtraction needed — take a damped site step
// toward the matched natural parameters, and condition the slots through
// the updated site (rank-one moment projection against the factorised
// belief) for the rows downstream.
//
// The readout rides the same pass: row k's factor is the exact truncated
// mass of its predictive — a true conditional probability of the Gaussian
// approximation — so prefix_logz[k] approximates
// log P(a_j <= x_j <= b_j for all j <= k), is monotone non-increasing by
// construction (each factor is <= 1), and is exact at row 0. Sequential
// cavities are what keep every prefix row honest: sites tuned against the
// full posterior would leak later rows' truncations into early prefix
// readouts (measured at up to 0.16 absolute on 256-dim GP fields, versus
// under 0.01 for the sequential fixed point).
//
// At damping 1 the sweep is classic assumed-density filtering and is
// self-reproducing, so a cold start solves the fixed point in one
// full-damping sweep and certifies it with a second (delta == 0 exactly).
// A warm start from cached neighbour sites tries one damped sweep first: a
// nearby seed certifies immediately and the screen costs a single pass —
// half the cold cost, the payoff for repeat queries and tight bisection
// ladders. A far seed falls back to the direct solve rather than relaxing
// toward the (seed-independent) fixed point at a linear rate.
//
// Cost: O(nnz(rows)) per pass — n^2/2 for dense/TLR, n*m for Vecchia —
// i.e. hundreds of microseconds to low milliseconds where a QMC sweep
// spends seconds. Everything runs on the calling (host) thread from
// deterministic factor data, so the result is a pure function of
// (factor bits, limits, options, warm-start state): bitwise identical
// across worker counts and scheduler arms by construction.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace parmvn::engine {
class FactorBackend;
}

namespace parmvn::ep {

struct EpOptions {
  /// Cap on certify sweeps after the direct solve pass (a safety bound:
  /// the first certify sweep reproduces the solve pass exactly, so this is
  /// not normally reached).
  int max_sweeps = 20;
  /// Site-update damping factor in (0, 1]: new = (1-d)*old + d*matched.
  /// Below 1 so a warm start's first sweep keeps seed influence (its delta
  /// is then d * |match - seed|, small for a nearby seed — the one-sweep
  /// certify); the fixed point itself is damping-independent.
  double damping = 0.5;
  /// Fixed-point tolerance on the largest (relative) site natural-parameter
  /// change per sweep.
  double tol = 1e-6;
};

/// Converged EP site/belief state — the warm-start payload cached alongside
/// the factor (engine::CholeskyFactor::ep_cache()). A state is only
/// meaningful against the factor (and row count) it was produced from.
struct EpState {
  std::vector<double> site_tau;  // site precision  (>= 0)
  std::vector<double> site_nu;   // site precision-mean

  [[nodiscard]] bool valid_for(i64 n) const noexcept {
    return static_cast<i64>(site_tau.size()) == n &&
           static_cast<i64>(site_nu.size()) == n;
  }
};

struct EpResult {
  double logz = 0.0;  // log estimate of P(a <= X <= b)
  /// prefix_logz[k] = log estimate of the joint probability of rows 0..k;
  /// monotone non-increasing. Always length n.
  std::vector<double> prefix_logz;
  int sweeps = 0;        // counted sweeps (excluding the cold solve pass)
  bool converged = false;
  double seconds = 0.0;  // host wall time of this screen
};

namespace detail {
class Screen;
}

/// Reusable screener bound to one factor: flattens the factor's generative
/// rows to CSR once at construction (an O(nnz) virtual-dispatch walk —
/// n^2/2 coefficients on the dense/TLR arms) and amortises it across every
/// screen() call. A batch of queries against one factor should build one
/// EpScreener; the one-shot ep_screen() below pays the flatten per call.
/// Not thread-safe: screen() reuses internal work buffers.
class EpScreener {
 public:
  explicit EpScreener(const engine::FactorBackend& f);
  ~EpScreener();
  EpScreener(EpScreener&&) noexcept;
  EpScreener& operator=(EpScreener&&) noexcept;

  /// Screen the box [a, b] (entries may be infinite) against the factor.
  /// When `state` is non-null and valid for the factor's dimension it seeds
  /// the sites (warm start) and receives the final state back.
  [[nodiscard]] EpResult screen(std::span<const double> a,
                                std::span<const double> b,
                                const EpOptions& opts = {},
                                EpState* state = nullptr);

 private:
  std::unique_ptr<detail::Screen> impl_;
};

/// One-shot convenience over EpScreener (flattens the factor per call).
[[nodiscard]] EpResult ep_screen(const engine::FactorBackend& f,
                                 std::span<const double> a,
                                 std::span<const double> b,
                                 const EpOptions& opts = {},
                                 EpState* state = nullptr);

}  // namespace parmvn::ep
