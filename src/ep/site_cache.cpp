#include "ep/site_cache.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

namespace parmvn::ep {

namespace {

// L-inf distance with infinity-aware matching: two equal infinities are
// distance 0, a mismatched infinity disqualifies the candidate.
double linf(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) return std::numeric_limits<double>::infinity();
  double d = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (std::isinf(x[i]) || std::isinf(y[i])) {
      if (x[i] == y[i]) continue;
      return std::numeric_limits<double>::infinity();
    }
    d = std::max(d, std::fabs(x[i] - y[i]));
  }
  return d;
}

}  // namespace

std::optional<EpState> SiteCache::lookup(std::span<const double> a,
                                         std::span<const double> b,
                                         double max_distance) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const Entry* best = nullptr;
  double best_d = std::numeric_limits<double>::infinity();
  for (const Entry& e : entries_) {
    const double d = std::max(linf(a, e.a), linf(b, e.b));
    if (d <= max_distance && d < best_d) {
      best_d = d;
      best = &e;
    }
  }
  if (best == nullptr) return std::nullopt;
  return best->state;
}

void SiteCache::store(std::span<const double> a, std::span<const double> b,
                      EpState state) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (std::equal(it->a.begin(), it->a.end(), a.begin(), a.end()) &&
        std::equal(it->b.begin(), it->b.end(), b.begin(), b.end())) {
      it->state = std::move(state);
      entries_.splice(entries_.begin(), entries_, it);
      return;
    }
  }
  entries_.push_front(Entry{{a.begin(), a.end()}, {b.begin(), b.end()},
                           std::move(state)});
  while (entries_.size() > kCapacity) entries_.pop_back();
}

}  // namespace parmvn::ep
