// Warm-start store for EP site parameters, attached to a CholeskyFactor
// (engine::CholeskyFactor::ep_cache()) so repeated screens against one
// field reuse converged sites: a re-evaluated query (CRN bisection
// iterates, serving traffic) certifies its cached fixed point in a single
// damped sweep — half the cold screen cost.
//
// Lookup returns the stored state whose limit vector is nearest (L-inf) to
// the query's — a copy, so concurrent screens never share mutable state.
// The store is a small LRU (kCapacity entries) guarded by one mutex;
// FactorCache shares factors across serving threads, so the cache must be
// internally synchronised. A state is only meaningful for the factor this
// cache hangs off (same bits, same dimension) — it never crosses factors
// because the cache lives inside one.
#pragma once

#include <limits>
#include <list>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "ep/ep_screen.hpp"

namespace parmvn::ep {

class SiteCache {
 public:
  static constexpr std::size_t kCapacity = 8;

  /// Nearest stored state by L-inf distance over (a, b) — infinities match
  /// exactly or the candidate is skipped. Candidates farther than
  /// `max_distance` are ignored (pass 0.0 for exact repeats only: the
  /// engine does, because the screen's warm path certifies in one sweep
  /// only when the seed is already at the fixed point — a merely nearby
  /// seed costs a wasted damped pass on top of the direct solve). Empty
  /// when nothing qualifies.
  [[nodiscard]] std::optional<EpState> lookup(
      std::span<const double> a, std::span<const double> b,
      double max_distance = std::numeric_limits<double>::infinity()) const;

  /// Store (move) a converged state under its limit vectors; an entry with
  /// identical limits is replaced, otherwise the least-recently stored
  /// entry falls out past kCapacity.
  void store(std::span<const double> a, std::span<const double> b,
             EpState state);

 private:
  struct Entry {
    std::vector<double> a, b;
    EpState state;
  };

  mutable std::mutex mu_;
  std::list<Entry> entries_;  // front = most recent
};

}  // namespace parmvn::ep
