// Cholesky factorization (lower) — the O(n^3) heart of the SOV algorithm.
#pragma once

#include "common/types.hpp"
#include "linalg/matrix.hpp"

namespace parmvn::la {

/// In-place lower Cholesky A = L L^T. Only the lower triangle of `a` is
/// referenced; on success the lower triangle holds L (strictly-upper part is
/// left untouched). Returns 0 on success, or the 1-based index of the first
/// non-positive pivot (matching LAPACK dpotrf's `info`).
[[nodiscard]] i64 potrf_lower(MatrixView a);

/// Throwing wrapper around potrf_lower.
void potrf_lower_or_throw(MatrixView a);

/// Zero the strictly-upper triangle (useful after potrf when a clean L is
/// wanted for GEMM-based reconstruction checks).
void zero_strict_upper(MatrixView a);

}  // namespace parmvn::la
