#include "linalg/qr.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "linalg/blas.hpp"

namespace parmvn::la {

namespace {

// Generate a Householder reflector for x = (alpha, rest...) of length len:
// H x = (beta, 0...). Returns tau; x is overwritten with v (v[0]=1 implied,
// stored from index 1) and x[0] = beta.
double make_reflector(double* x, i64 len) {
  if (len <= 1) return 0.0;
  double xnorm = 0.0;
  for (i64 i = 1; i < len; ++i) xnorm += x[i] * x[i];
  if (xnorm == 0.0) return 0.0;
  const double alpha = x[0];
  double beta = -std::copysign(std::sqrt(alpha * alpha + xnorm), alpha);
  const double tau = (beta - alpha) / beta;
  const double inv = 1.0 / (alpha - beta);
  for (i64 i = 1; i < len; ++i) x[i] *= inv;
  x[0] = beta;
  return tau;
}

// Apply H = I - tau v v^T (v packed under column j of `a`, v0 = 1) to the
// trailing columns a(j:, j+1:).
void apply_reflector(MatrixView a, i64 j, double tau) {
  const i64 m = a.rows;
  if (tau == 0.0) return;
  const double* __restrict v = a.col(j) + j;  // v[0] is beta; treat as 1
  for (i64 c = j + 1; c < a.cols; ++c) {
    double* __restrict col = a.col(c) + j;
    double s = col[0];
    for (i64 i = 1; i < m - j; ++i) s += v[i] * col[i];
    s *= tau;
    col[0] -= s;
    for (i64 i = 1; i < m - j; ++i) col[i] -= s * v[i];
  }
}

}  // namespace

void householder_qr(MatrixView a, std::vector<double>& tau) {
  const i64 k = std::min(a.rows, a.cols);
  tau.assign(static_cast<std::size_t>(k), 0.0);
  for (i64 j = 0; j < k; ++j) {
    tau[static_cast<std::size_t>(j)] = make_reflector(a.col(j) + j, a.rows - j);
    apply_reflector(a, j, tau[static_cast<std::size_t>(j)]);
  }
}

Matrix form_q_thin(ConstMatrixView qr, const std::vector<double>& tau, i64 k) {
  const i64 m = qr.rows;
  const i64 kv = std::min<i64>(static_cast<i64>(tau.size()), std::min(m, qr.cols));
  PARMVN_EXPECTS(k >= 0 && k <= kv);
  Matrix q(m, k);
  for (i64 j = 0; j < k; ++j) q(j, j) = 1.0;
  // Accumulate Q = H_0 H_1 ... H_{kv-1} * E_k by applying reflectors in
  // reverse order.
  for (i64 j = kv - 1; j >= 0; --j) {
    const double tj = tau[static_cast<std::size_t>(j)];
    if (tj == 0.0) continue;
    const double* v = qr.col(j) + j;  // v0 implied 1
    for (i64 c = 0; c < k; ++c) {
      double* col = q.view().col(c) + j;
      double s = col[0];
      for (i64 i = 1; i < m - j; ++i) s += v[i] * col[i];
      s *= tj;
      col[0] -= s;
      for (i64 i = 1; i < m - j; ++i) col[i] -= s * v[i];
    }
  }
  return q;
}

RrqrResult rrqr_truncated(ConstMatrixView a, double tol_fro, i64 max_rank,
                          double tol_pivot, double tol_pivot_rel) {
  const i64 m = a.rows;
  const i64 n = a.cols;
  const i64 kmax = std::min(m, n);
  const i64 limit = (max_rank < 0) ? kmax : std::min(max_rank, kmax);

  Matrix work = to_matrix(a);
  MatrixView w = work.view();
  std::vector<i64> perm(static_cast<std::size_t>(n));
  for (i64 j = 0; j < n; ++j) perm[static_cast<std::size_t>(j)] = j;
  std::vector<double> colsq(static_cast<std::size_t>(n));
  double residual_sq = 0.0;
  for (i64 j = 0; j < n; ++j) {
    double s = 0.0;
    const double* cj = w.col(j);
    for (i64 i = 0; i < m; ++i) s += cj[i] * cj[i];
    colsq[static_cast<std::size_t>(j)] = s;
    residual_sq += s;
  }

  std::vector<double> tau;
  tau.reserve(static_cast<std::size_t>(limit));
  const double tol_sq = tol_fro * tol_fro;
  // Column mass at the last exact (re)computation — LAPACK dgeqp3's vn2.
  // Downdate drift accumulates relative to this value, not the running
  // per-step mass, so the recompute guard must be measured against it.
  std::vector<double> mass_at_recompute = colsq;
  i64 rank = 0;

  double tol_pivot_sq = tol_pivot * tol_pivot;
  while (rank < limit && residual_sq > tol_sq) {
    // Pivot: bring the column with the largest remaining mass to position
    // `rank`.
    i64 pivot = rank;
    for (i64 j = rank + 1; j < n; ++j) {
      if (colsq[static_cast<std::size_t>(j)] >
          colsq[static_cast<std::size_t>(pivot)])
        pivot = j;
    }
    if (rank == 0 && tol_pivot_rel > 0.0) {
      // Anchor the relative threshold to the leading pivot's scale.
      const double anchor_sq = colsq[static_cast<std::size_t>(pivot)] *
                               tol_pivot_rel * tol_pivot_rel;
      tol_pivot_sq = std::max(tol_pivot_sq, anchor_sq);
    }
    if (tol_pivot_sq > 0.0 && rank > 0 &&
        colsq[static_cast<std::size_t>(pivot)] <= tol_pivot_sq)
      break;
    if (pivot != rank) {
      for (i64 i = 0; i < m; ++i) std::swap(w(i, rank), w(i, pivot));
      std::swap(colsq[static_cast<std::size_t>(rank)],
                colsq[static_cast<std::size_t>(pivot)]);
      std::swap(mass_at_recompute[static_cast<std::size_t>(rank)],
                mass_at_recompute[static_cast<std::size_t>(pivot)]);
      std::swap(perm[static_cast<std::size_t>(rank)],
                perm[static_cast<std::size_t>(pivot)]);
    }

    const double t = make_reflector(w.col(rank) + rank, m - rank);
    tau.push_back(t);
    apply_reflector(w, rank, t);

    // Downdate the trailing column masses and the residual with the newly
    // exposed row of R. Recompute from scratch when cancellation bites; the
    // guard is sqrt(eps) relative to the mass at the last exact computation
    // (LAPACK dgeqp3's tol3z against the vn1/vn2 pair), because downdating
    // drift accumulates as ~eps * that mass across steps — guarding against
    // the running per-step mass lets the drift masquerade as residual mass
    // and inflates the returned rank.
    constexpr double kDowndateGuard = 1.5e-8;  // ~sqrt(DBL_EPSILON)
    residual_sq = 0.0;
    for (i64 j = rank + 1; j < n; ++j) {
      const double rkj = w(rank, j);
      double cj = colsq[static_cast<std::size_t>(j)] - rkj * rkj;
      if (cj < kDowndateGuard * mass_at_recompute[static_cast<std::size_t>(j)]) {
        // Recompute the remaining part of the column exactly.
        cj = 0.0;
        const double* col = w.col(j);
        for (i64 i = rank + 1; i < m; ++i) cj += col[i] * col[i];
        mass_at_recompute[static_cast<std::size_t>(j)] = cj;
      }
      colsq[static_cast<std::size_t>(j)] = cj;
      residual_sq += cj;
    }
    ++rank;
  }

  RrqrResult out;
  out.residual_fro = std::sqrt(std::max(residual_sq, 0.0));
  if (rank == 0) {
    // Tile is zero to within tolerance: represent as a rank-1 zero factor so
    // callers never deal with empty matrices.
    out.u = Matrix(m, 1);
    out.v = Matrix(n, 1);
    out.rank = 1;
    return out;
  }
  out.rank = rank;
  out.u = form_q_thin(w, tau, rank);
  // A P ~= Q R  =>  A ~= Q (R P^T), so V(perm[j], :) = R(0:rank, j)^T.
  // Entries of column j below row j hold reflector storage, not R; R's
  // column j is zero below row min(j, rank-1).
  out.v = Matrix(n, rank);
  for (i64 j = 0; j < n; ++j) {
    const i64 orig = perm[static_cast<std::size_t>(j)];
    const i64 top = std::min(j, rank - 1);
    for (i64 i = 0; i <= top; ++i) out.v(orig, i) = w(i, j);
  }
  return out;
}

}  // namespace parmvn::la
