// Column-major dense matrix and non-owning views.
//
// The whole library works on column-major data (BLAS/LAPACK convention, and
// the layout Chameleon/HiCMA tiles use). Views carry (data, rows, cols, ld)
// so tiles of a larger matrix and whole matrices flow through the same
// kernels.
#pragma once

#include <utility>

#include "common/aligned.hpp"
#include "common/contracts.hpp"
#include "common/types.hpp"

namespace parmvn::la {

struct ConstMatrixView {
  const double* data = nullptr;
  i64 rows = 0;
  i64 cols = 0;
  i64 ld = 0;

  [[nodiscard]] double operator()(i64 i, i64 j) const noexcept {
    return data[i + j * ld];
  }

  /// View of the sub-block starting at (i0, j0) of shape (r, c).
  [[nodiscard]] ConstMatrixView sub(i64 i0, i64 j0, i64 r, i64 c) const {
    PARMVN_EXPECTS(i0 >= 0 && j0 >= 0 && r >= 0 && c >= 0);
    PARMVN_EXPECTS(i0 + r <= rows && j0 + c <= cols);
    return {data + i0 + j0 * ld, r, c, ld};
  }

  [[nodiscard]] const double* col(i64 j) const noexcept {
    return data + j * ld;
  }
};

struct MatrixView {
  double* data = nullptr;
  i64 rows = 0;
  i64 cols = 0;
  i64 ld = 0;

  [[nodiscard]] double& operator()(i64 i, i64 j) const noexcept {
    return data[i + j * ld];
  }

  [[nodiscard]] MatrixView sub(i64 i0, i64 j0, i64 r, i64 c) const {
    PARMVN_EXPECTS(i0 >= 0 && j0 >= 0 && r >= 0 && c >= 0);
    PARMVN_EXPECTS(i0 + r <= rows && j0 + c <= cols);
    return {data + i0 + j0 * ld, r, c, ld};
  }

  [[nodiscard]] double* col(i64 j) const noexcept { return data + j * ld; }

  operator ConstMatrixView() const noexcept {  // NOLINT(google-explicit-constructor)
    return {data, rows, cols, ld};
  }
};

/// Owning column-major matrix (ld == rows), zero-initialised.
class Matrix {
 public:
  Matrix() = default;

  Matrix(i64 rows, i64 cols)
      : buf_(static_cast<std::size_t>(rows * cols), 0.0),
        rows_(rows),
        cols_(cols) {
    PARMVN_EXPECTS(rows >= 0 && cols >= 0);
  }

  [[nodiscard]] i64 rows() const noexcept { return rows_; }
  [[nodiscard]] i64 cols() const noexcept { return cols_; }
  [[nodiscard]] i64 ld() const noexcept { return rows_; }
  [[nodiscard]] i64 size() const noexcept { return rows_ * cols_; }
  [[nodiscard]] bool empty() const noexcept { return buf_.empty(); }

  [[nodiscard]] double& operator()(i64 i, i64 j) noexcept {
    return buf_[static_cast<std::size_t>(i + j * rows_)];
  }
  [[nodiscard]] double operator()(i64 i, i64 j) const noexcept {
    return buf_[static_cast<std::size_t>(i + j * rows_)];
  }

  [[nodiscard]] double* data() noexcept { return buf_.data(); }
  [[nodiscard]] const double* data() const noexcept { return buf_.data(); }

  [[nodiscard]] MatrixView view() noexcept {
    return {buf_.data(), rows_, cols_, rows_};
  }
  [[nodiscard]] ConstMatrixView view() const noexcept {
    return {buf_.data(), rows_, cols_, rows_};
  }
  [[nodiscard]] ConstMatrixView cview() const noexcept { return view(); }

  [[nodiscard]] MatrixView sub(i64 i0, i64 j0, i64 r, i64 c) {
    return view().sub(i0, j0, r, c);
  }
  [[nodiscard]] ConstMatrixView sub(i64 i0, i64 j0, i64 r, i64 c) const {
    return view().sub(i0, j0, r, c);
  }

  [[nodiscard]] static Matrix identity(i64 n) {
    Matrix eye(n, n);
    for (i64 i = 0; i < n; ++i) eye(i, i) = 1.0;
    return eye;
  }

 private:
  aligned_vector<double> buf_;
  i64 rows_ = 0;
  i64 cols_ = 0;
};

/// Deep copy of a view into an owning matrix.
[[nodiscard]] inline Matrix to_matrix(ConstMatrixView a) {
  Matrix out(a.rows, a.cols);
  for (i64 j = 0; j < a.cols; ++j)
    for (i64 i = 0; i < a.rows; ++i) out(i, j) = a(i, j);
  return out;
}

/// Element-wise copy between equally-shaped views.
inline void copy_into(ConstMatrixView src, MatrixView dst) {
  PARMVN_EXPECTS(src.rows == dst.rows && src.cols == dst.cols);
  for (i64 j = 0; j < src.cols; ++j)
    for (i64 i = 0; i < src.rows; ++i) dst(i, j) = src(i, j);
}

/// dst = src^T (shapes must be transposed of each other).
inline void transpose_into(ConstMatrixView src, MatrixView dst) {
  PARMVN_EXPECTS(src.rows == dst.cols && src.cols == dst.rows);
  for (i64 j = 0; j < src.cols; ++j)
    for (i64 i = 0; i < src.rows; ++i) dst(j, i) = src(i, j);
}

}  // namespace parmvn::la
