// Entry-wise matrix generator interface.
//
// Large covariance matrices are never materialised wholesale: tile and TLR
// code pull individual blocks out of a generator (the role STARS-H plays for
// HiCMA). Implementations must be thread-safe for concurrent fill() calls —
// tiles are generated from parallel runtime tasks.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "linalg/matrix.hpp"

namespace parmvn::la {

class MatrixGenerator {
 public:
  virtual ~MatrixGenerator() = default;

  [[nodiscard]] virtual i64 rows() const = 0;
  [[nodiscard]] virtual i64 cols() const = 0;

  /// Stable identity string for caching (engine::FactorCache): two
  /// generators with the same key must describe bitwise-identical matrices.
  /// Implementations with bulk content (e.g. location sets) may identify it
  /// by a content hash of at least 128 bits — the cache does not re-verify
  /// generator contents on a hit, so the key carries the full identity
  /// guarantee (a 128-bit hash makes a false hit astronomically unlikely).
  /// The default (empty) opts out of caching.
  [[nodiscard]] virtual std::string cache_key() const { return {}; }

  /// Value of entry (i, j) of the full matrix.
  [[nodiscard]] virtual double entry(i64 i, i64 j) const = 0;

  /// Planar coordinates of the rows' underlying sites, flat
  /// (x0, y0, x1, y1, ...), when the generator describes a spatial field;
  /// empty when it does not. Wrapping generators (permutation,
  /// standardisation) must forward/permute them so index i of the wrapper
  /// maps to the coordinates of the site its row i describes. Consumed by
  /// structure-exploiting factors (the Vecchia arm builds nearest-neighbour
  /// conditioning sets from these); no identity guarantee beyond what
  /// cache_key() already carries (location content is hashed there).
  [[nodiscard]] virtual std::vector<double> coords_xy() const { return {}; }

  /// Fill `out` with the block whose top-left corner is (row0, col0).
  /// Default implementation loops over entry(); override when a faster bulk
  /// path exists.
  virtual void fill(i64 row0, i64 col0, MatrixView out) const {
    PARMVN_EXPECTS(row0 >= 0 && col0 >= 0);
    PARMVN_EXPECTS(row0 + out.rows <= rows() && col0 + out.cols <= cols());
    for (i64 j = 0; j < out.cols; ++j)
      for (i64 i = 0; i < out.rows; ++i)
        out(i, j) = entry(row0 + i, col0 + j);
  }
};

/// Generator over an explicit dense matrix (tests, small problems).
class DenseGenerator final : public MatrixGenerator {
 public:
  explicit DenseGenerator(Matrix m) : m_(std::move(m)) {}

  [[nodiscard]] i64 rows() const override { return m_.rows(); }
  [[nodiscard]] i64 cols() const override { return m_.cols(); }
  [[nodiscard]] double entry(i64 i, i64 j) const override { return m_(i, j); }

 private:
  Matrix m_;
};

}  // namespace parmvn::la
