// Entry-wise matrix generator interface.
//
// Large covariance matrices are never materialised wholesale: tile and TLR
// code pull individual blocks out of a generator (the role STARS-H plays for
// HiCMA). Implementations must be thread-safe for concurrent fill() calls —
// tiles are generated from parallel runtime tasks.
#pragma once

#include "common/types.hpp"
#include "linalg/matrix.hpp"

namespace parmvn::la {

class MatrixGenerator {
 public:
  virtual ~MatrixGenerator() = default;

  [[nodiscard]] virtual i64 rows() const = 0;
  [[nodiscard]] virtual i64 cols() const = 0;

  /// Value of entry (i, j) of the full matrix.
  [[nodiscard]] virtual double entry(i64 i, i64 j) const = 0;

  /// Fill `out` with the block whose top-left corner is (row0, col0).
  /// Default implementation loops over entry(); override when a faster bulk
  /// path exists.
  virtual void fill(i64 row0, i64 col0, MatrixView out) const {
    PARMVN_EXPECTS(row0 >= 0 && col0 >= 0);
    PARMVN_EXPECTS(row0 + out.rows <= rows() && col0 + out.cols <= cols());
    for (i64 j = 0; j < out.cols; ++j)
      for (i64 i = 0; i < out.rows; ++i)
        out(i, j) = entry(row0 + i, col0 + j);
  }
};

/// Generator over an explicit dense matrix (tests, small problems).
class DenseGenerator final : public MatrixGenerator {
 public:
  explicit DenseGenerator(Matrix m) : m_(std::move(m)) {}

  [[nodiscard]] i64 rows() const override { return m_.rows(); }
  [[nodiscard]] i64 cols() const override { return m_.cols(); }
  [[nodiscard]] double entry(i64 i, i64 j) const override { return m_(i, j); }

 private:
  Matrix m_;
};

}  // namespace parmvn::la
