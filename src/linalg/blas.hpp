// Dense BLAS-style kernels (the library's MKL substitute).
//
// Only the operations the tile/TLR/PMVN algorithms need are implemented:
// lower-triangular variants throughout (Cholesky-world). All kernels are
// sequential; parallelism lives one level up, in the task runtime.
//
// The BLAS-3 kernels (gemm, and through it syrk/trsm/trmm) run on the
// blocked, register-tiled microkernel in linalg/microkernel.hpp. Two
// contracts hold everywhere:
//  * Reference-BLAS NaN/Inf semantics: no value-dependent skips on any
//    accumulation path (0 * Inf = NaN propagates, in every column position).
//    Early-outs key only on the scalar alpha/beta parameters.
//  * Determinism: for a given kernel and operand shape the floating-point
//    reduction order is fixed — independent of data, thread count, and which
//    worker runs the task (test_determinism relies on this).
#pragma once

#include "common/types.hpp"
#include "linalg/matrix.hpp"

namespace parmvn::la {

enum class Trans { kNo, kYes };
enum class Side { kLeft, kRight };

/// C = alpha * op(A) * op(B) + beta * C.
void gemm(Trans trans_a, Trans trans_b, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c);

/// Lower triangle of C = alpha * op(A) * op(A)^T + beta * C.
/// op(A)=A for kNo (C: m x m, A: m x k), op(A)=A^T for kYes (C: k x k).
/// Strictly-upper entries of C are not referenced or written.
void syrk(Trans trans, double alpha, ConstMatrixView a, double beta,
          MatrixView c);

/// Triangular solve with a lower-triangular non-unit L:
///   kLeft,  kNo : B <- alpha * L^-1  B
///   kLeft,  kYes: B <- alpha * L^-T  B
///   kRight, kNo : B <- alpha * B L^-1
///   kRight, kYes: B <- alpha * B L^-T
void trsm(Side side, Trans trans, double alpha, ConstMatrixView l,
          MatrixView b);

/// y = alpha * op(A) x + beta * y.
void gemv(Trans trans, double alpha, ConstMatrixView a, const double* x,
          double beta, double* y);

/// B <- L B in place, referencing only the lower triangle of L (the strict
/// upper part may hold garbage, e.g. untouched input after potrf_lower).
void trmm_lower_notrans(ConstMatrixView l, MatrixView b);

/// Dot product of n-vectors. SIMD, with a fixed blocked reduction order
/// that depends only on n (not the naive left-to-right sum).
[[nodiscard]] double dot(i64 n, const double* x, const double* y) noexcept;

/// y += alpha * x.
void axpy(i64 n, double alpha, const double* x, double* y) noexcept;

/// Frobenius norm.
[[nodiscard]] double frobenius_norm(ConstMatrixView a) noexcept;

/// max |a_ij|.
[[nodiscard]] double max_abs(ConstMatrixView a) noexcept;

/// ||A - B||_F over equally shaped views.
[[nodiscard]] double frobenius_diff(ConstMatrixView a, ConstMatrixView b);

}  // namespace parmvn::la
