// Diagonal-boost ("jitter") escalation policy shared by the safeguarded
// Cholesky factorizations (tile::potrf_tiled_safeguarded and
// tlr::potrf_tlr): when a barely-positive-definite covariance loses
// definiteness — to tile truncation error on the TLR arm, to rounding on
// the dense arm — the factorization restores the matrix, adds a small
// multiple of the identity, and retries. The boost quadruples per retry
// from a unit of the order of the perturbation the caller already accepted
// (truncation tolerance, or machine epsilon of the diagonal scale), so the
// total added nugget after r retries is unit * (4^r - 1) / 3 — still tiny
// when one or two retries suffice, and exhausted quickly when the matrix
// is genuinely indefinite.
#pragma once

#include <algorithm>
#include <cmath>

namespace parmvn::la {

/// Floor applied to every boost unit: even a zero-scale estimate must
/// produce a non-zero step or retries would spin.
inline constexpr double kJitterUnitFloor = 1e-14;

/// First-retry boost from a problem-scale estimate (largest singular value
/// times accepted relative error, or similar).
[[nodiscard]] inline double jitter_unit(double scale) noexcept {
  return std::max(scale, kJitterUnitFloor);
}

/// Boost added on retry `attempt` (0-based): quadruples each round.
[[nodiscard]] inline double jitter_delta(double unit, int attempt) noexcept {
  return unit * std::pow(4.0, attempt);
}

}  // namespace parmvn::la
