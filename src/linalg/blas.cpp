#include "linalg/blas.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/microkernel.hpp"

// Semantics note (uniform across every kernel in this file): there are no
// value-dependent skips on any accumulation path. A zero multiplier still
// contributes 0 * x, so NaN/Inf propagate exactly as in the reference BLAS
// and identically in every row/column position. Early-outs key only on the
// scalar parameters alpha/beta (part of the documented BLAS contract, e.g.
// alpha == 0 never reads A), never on matrix data.

namespace parmvn::la {

namespace {

void scale_matrix(double beta, MatrixView c) {
  if (beta == 1.0) return;
  for (i64 j = 0; j < c.cols; ++j) {
    double* cj = c.col(j);
    if (beta == 0.0) {
      std::fill(cj, cj + c.rows, 0.0);
    } else {
      for (i64 i = 0; i < c.rows; ++i) cj[i] *= beta;
    }
  }
}

}  // namespace

void gemm(Trans trans_a, Trans trans_b, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c) {
  const i64 m = c.rows;
  const i64 n = c.cols;
  const i64 opa_rows = (trans_a == Trans::kNo) ? a.rows : a.cols;
  const i64 opa_cols = (trans_a == Trans::kNo) ? a.cols : a.rows;
  const i64 opb_rows = (trans_b == Trans::kNo) ? b.rows : b.cols;
  const i64 opb_cols = (trans_b == Trans::kNo) ? b.cols : b.rows;
  PARMVN_EXPECTS(opa_rows == m);
  PARMVN_EXPECTS(opb_cols == n);
  PARMVN_EXPECTS(opa_cols == opb_rows);
  const i64 k = opa_cols;

  scale_matrix(beta, c);
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0) return;

  detail::gemm_packed(alpha, trans_a, a, trans_b, b, c);
}

void syrk(Trans trans, double alpha, ConstMatrixView a, double beta,
          MatrixView c) {
  const i64 n = c.rows;
  PARMVN_EXPECTS(c.cols == n);
  const i64 op_rows = (trans == Trans::kNo) ? a.rows : a.cols;
  PARMVN_EXPECTS(op_rows == n);

  // Block the lower triangle into column panels; off-diagonal panels are
  // plain (microkernel-backed) GEMMs, diagonal blocks are computed into a
  // scratch square and the lower part copied back so the strictly-upper
  // triangle of C stays intact.
  constexpr i64 kBlock = 128;
  for (i64 j0 = 0; j0 < n; j0 += kBlock) {
    const i64 jb = std::min(kBlock, n - j0);
    ConstMatrixView a_col =
        (trans == Trans::kNo) ? a.sub(j0, 0, jb, a.cols) : a.sub(0, j0, a.rows, jb);
    // Diagonal block.
    Matrix diag(jb, jb);
    if (trans == Trans::kNo) {
      gemm(Trans::kNo, Trans::kYes, alpha, a_col, a_col, 0.0, diag.view());
    } else {
      gemm(Trans::kYes, Trans::kNo, alpha, a_col, a_col, 0.0, diag.view());
    }
    for (i64 j = 0; j < jb; ++j)
      for (i64 i = j; i < jb; ++i) {
        double& cij = c(j0 + i, j0 + j);
        cij = (beta == 0.0 ? 0.0 : beta * cij) + diag(i, j);
      }
    // Sub-diagonal panel.
    const i64 i0 = j0 + jb;
    if (i0 < n) {
      ConstMatrixView a_row = (trans == Trans::kNo)
                                  ? a.sub(i0, 0, n - i0, a.cols)
                                  : a.sub(0, i0, a.rows, n - i0);
      MatrixView c_panel = c.sub(i0, j0, n - i0, jb);
      if (trans == Trans::kNo) {
        gemm(Trans::kNo, Trans::kYes, alpha, a_row, a_col, beta, c_panel);
      } else {
        gemm(Trans::kYes, Trans::kNo, alpha, a_row, a_col, beta, c_panel);
      }
    }
  }
}

namespace {

// Unblocked lower-triangular solves, used only on diagonal blocks whose size
// is <= the blocking factor; the bulk of the update flops flow through the
// blocked GEMM calls in trsm() below.
void trsm_left_no_unblocked(ConstMatrixView l, MatrixView b) {
  // B <- L^-1 B, forward substitution, column-wise over RHS.
  const i64 n = l.rows;
  for (i64 j = 0; j < b.cols; ++j) {
    double* __restrict bj = b.col(j);
    for (i64 k = 0; k < n; ++k) {
      bj[k] /= l(k, k);
      const double bkj = bj[k];
      const double* __restrict lk = l.col(k);
      for (i64 i = k + 1; i < n; ++i) bj[i] -= bkj * lk[i];
    }
  }
}

void trsm_left_trans_unblocked(ConstMatrixView l, MatrixView b) {
  // B <- L^-T B, backward substitution; dot over the (contiguous) column of L.
  const i64 n = l.rows;
  for (i64 j = 0; j < b.cols; ++j) {
    double* __restrict bj = b.col(j);
    for (i64 k = n - 1; k >= 0; --k) {
      const double* __restrict lk = l.col(k);
      double s = bj[k];
      for (i64 i = k + 1; i < n; ++i) s -= lk[i] * bj[i];
      bj[k] = s / lk[k];
    }
  }
}

void trsm_right_trans_unblocked(ConstMatrixView l, MatrixView b) {
  // B <- B L^-T: X(:,j) = (B(:,j) - sum_{k<j} X(:,k) L(j,k)) / L(j,j).
  const i64 n = l.rows;
  const i64 m = b.rows;
  for (i64 j = 0; j < n; ++j) {
    double* __restrict bj = b.col(j);
    for (i64 k = 0; k < j; ++k) {
      const double ljk = l(j, k);
      const double* __restrict bk = b.col(k);
      for (i64 i = 0; i < m; ++i) bj[i] -= ljk * bk[i];
    }
    const double inv = 1.0 / l(j, j);
    for (i64 i = 0; i < m; ++i) bj[i] *= inv;
  }
}

void trsm_right_no_unblocked(ConstMatrixView l, MatrixView b) {
  // B <- B L^-1: X(:,j) = (B(:,j) - sum_{k>j} X(:,k) L(k,j)) / L(j,j).
  const i64 n = l.rows;
  const i64 m = b.rows;
  for (i64 j = n - 1; j >= 0; --j) {
    double* __restrict bj = b.col(j);
    for (i64 k = j + 1; k < n; ++k) {
      const double lkj = l(k, j);
      const double* __restrict bk = b.col(k);
      for (i64 i = 0; i < m; ++i) bj[i] -= lkj * bk[i];
    }
    const double inv = 1.0 / l(j, j);
    for (i64 i = 0; i < m; ++i) bj[i] *= inv;
  }
}

constexpr i64 kTrsmBlock = 128;

}  // namespace

void trsm(Side side, Trans trans, double alpha, ConstMatrixView l,
          MatrixView b) {
  PARMVN_EXPECTS(l.rows == l.cols);
  const i64 n = l.rows;
  PARMVN_EXPECTS((side == Side::kLeft ? b.rows : b.cols) == n);
  scale_matrix(alpha, b);
  // alpha == 0 zeroes B, and L^-1 * 0 == 0 exactly: substitution would be a
  // full triangular sweep over an all-zero B, so stop here (BLAS contract).
  if (alpha == 0.0) return;

  if (side == Side::kLeft && trans == Trans::kNo) {
    // Forward-substitute block rows: B_k solved, then B_i -= L_ik B_k.
    for (i64 k0 = 0; k0 < n; k0 += kTrsmBlock) {
      const i64 kb = std::min(kTrsmBlock, n - k0);
      MatrixView bk = b.sub(k0, 0, kb, b.cols);
      trsm_left_no_unblocked(l.sub(k0, k0, kb, kb), bk);
      if (k0 + kb < n) {
        gemm(Trans::kNo, Trans::kNo, -1.0, l.sub(k0 + kb, k0, n - k0 - kb, kb),
             bk, 1.0, b.sub(k0 + kb, 0, n - k0 - kb, b.cols));
      }
    }
  } else if (side == Side::kLeft && trans == Trans::kYes) {
    // Backward over block rows.
    for (i64 k0 = ((n - 1) / kTrsmBlock) * kTrsmBlock; k0 >= 0;
         k0 -= kTrsmBlock) {
      const i64 kb = std::min(kTrsmBlock, n - k0);
      MatrixView bk = b.sub(k0, 0, kb, b.cols);
      if (k0 + kb < n) {
        gemm(Trans::kYes, Trans::kNo, -1.0, l.sub(k0 + kb, k0, n - k0 - kb, kb),
             b.sub(k0 + kb, 0, n - k0 - kb, b.cols), 1.0, bk);
      }
      trsm_left_trans_unblocked(l.sub(k0, k0, kb, kb), bk);
      if (k0 == 0) break;
    }
  } else if (side == Side::kRight && trans == Trans::kYes) {
    // Forward over block columns of B.
    for (i64 k0 = 0; k0 < n; k0 += kTrsmBlock) {
      const i64 kb = std::min(kTrsmBlock, n - k0);
      MatrixView bk = b.sub(0, k0, b.rows, kb);
      trsm_right_trans_unblocked(l.sub(k0, k0, kb, kb), bk);
      if (k0 + kb < n) {
        // B(:, k+1:) -= B_k * L(k+1:, k)^T
        gemm(Trans::kNo, Trans::kYes, -1.0, bk,
             l.sub(k0 + kb, k0, n - k0 - kb, kb), 1.0,
             b.sub(0, k0 + kb, b.rows, n - k0 - kb));
      }
    }
  } else {  // kRight, kNo
    for (i64 k0 = ((n - 1) / kTrsmBlock) * kTrsmBlock; k0 >= 0;
         k0 -= kTrsmBlock) {
      const i64 kb = std::min(kTrsmBlock, n - k0);
      MatrixView bk = b.sub(0, k0, b.rows, kb);
      if (k0 + kb < n) {
        // B_k -= B(:, k+1:) * L(k+1:, k)
        gemm(Trans::kNo, Trans::kNo, -1.0, b.sub(0, k0 + kb, b.rows, n - k0 - kb),
             l.sub(k0 + kb, k0, n - k0 - kb, kb), 1.0, bk);
      }
      trsm_right_no_unblocked(l.sub(k0, k0, kb, kb), bk);
      if (k0 == 0) break;
    }
  }
}

void gemv(Trans trans, double alpha, ConstMatrixView a, const double* x,
          double beta, double* y) {
  if (trans == Trans::kNo) {
    const i64 m = a.rows;
    if (beta == 0.0) {
      std::fill(y, y + m, 0.0);
    } else if (beta != 1.0) {
      for (i64 i = 0; i < m; ++i) y[i] *= beta;
    }
    detail::gemv_notrans_simd(alpha, a, x, y);
  } else {
    const i64 n = a.cols;
    for (i64 j = 0; j < n; ++j) {
      const double s = dot(a.rows, a.col(j), x);
      y[j] = alpha * s + (beta == 0.0 ? 0.0 : beta * y[j]);
    }
  }
}

namespace {

// Unblocked in-place B <- L B on a diagonal block, from the last column of L
// to the first: when column k of L is applied, rows > k of B still hold
// original values already updated by larger-k columns, and row k has not
// been consumed yet.
void trmm_lower_notrans_unblocked(ConstMatrixView l, MatrixView b) {
  const i64 n = l.rows;
  for (i64 j = 0; j < b.cols; ++j) {
    double* __restrict bj = b.col(j);
    for (i64 k = n - 1; k >= 0; --k) {
      const double v = bj[k];
      bj[k] = l(k, k) * v;
      const double* __restrict lk = l.col(k);
      for (i64 i = k + 1; i < n; ++i) bj[i] += v * lk[i];
    }
  }
}

constexpr i64 kTrmmBlock = 128;

}  // namespace

void trmm_lower_notrans(ConstMatrixView l, MatrixView b) {
  PARMVN_EXPECTS(l.rows == l.cols);
  PARMVN_EXPECTS(b.rows == l.rows);
  const i64 n = l.rows;
  // Blocked, bottom-up over block rows of B: B_k <- L_kk B_k (unblocked
  // triangular multiply) + L(k, :k) B(:k, :) (GEMM against rows of B that a
  // bottom-up sweep has not consumed yet). Only the lower triangle of L is
  // referenced — the GEMM panel l.sub(k0, 0, kb, k0) sits strictly below the
  // diagonal, so garbage in the upper triangle stays inert.
  for (i64 k0 = ((n - 1) / kTrmmBlock) * kTrmmBlock; k0 >= 0;
       k0 -= kTrmmBlock) {
    const i64 kb = std::min(kTrmmBlock, n - k0);
    MatrixView bk = b.sub(k0, 0, kb, b.cols);
    trmm_lower_notrans_unblocked(l.sub(k0, k0, kb, kb), bk);
    if (k0 > 0) {
      gemm(Trans::kNo, Trans::kNo, 1.0, l.sub(k0, 0, kb, k0),
           b.sub(0, 0, k0, b.cols), 1.0, bk);
    }
    if (k0 == 0) break;
  }
}

double dot(i64 n, const double* x, const double* y) noexcept {
  return detail::dot_simd(n, x, y);
}

void axpy(i64 n, double alpha, const double* x, double* y) noexcept {
  for (i64 i = 0; i < n; ++i) y[i] += alpha * x[i];
}

double frobenius_norm(ConstMatrixView a) noexcept {
  // Scaled accumulation to dodge overflow on pathological inputs.
  double scale = 0.0;
  double sumsq = 1.0;
  for (i64 j = 0; j < a.cols; ++j) {
    const double* aj = a.col(j);
    for (i64 i = 0; i < a.rows; ++i) {
      const double v = std::fabs(aj[i]);
      if (v == 0.0) continue;
      if (scale < v) {
        sumsq = 1.0 + sumsq * (scale / v) * (scale / v);
        scale = v;
      } else {
        sumsq += (v / scale) * (v / scale);
      }
    }
  }
  return scale * std::sqrt(sumsq);
}

double max_abs(ConstMatrixView a) noexcept {
  double best = 0.0;
  for (i64 j = 0; j < a.cols; ++j)
    for (i64 i = 0; i < a.rows; ++i)
      best = std::max(best, std::fabs(a(i, j)));
  return best;
}

double frobenius_diff(ConstMatrixView a, ConstMatrixView b) {
  PARMVN_EXPECTS(a.rows == b.rows && a.cols == b.cols);
  double sumsq = 0.0;
  for (i64 j = 0; j < a.cols; ++j)
    for (i64 i = 0; i < a.rows; ++i) {
      const double d = a(i, j) - b(i, j);
      sumsq += d * d;
    }
  return std::sqrt(sumsq);
}

}  // namespace parmvn::la
