// Householder QR and rank-revealing (column-pivoted) QR.
//
// RRQR is the workhorse of tile compression: an m x n tile A is approximated
// by Q_r (R_r P^T) with r chosen so the *exact* Frobenius residual
// ||A - U V^T||_F <= tol (the trailing column sum-of-squares is tracked
// during pivoting, so the stopping rule is not a heuristic).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "linalg/matrix.hpp"

namespace parmvn::la {

/// In-place Householder QR of a (m x n): on return the upper triangle holds
/// R and the columns below the diagonal hold the Householder vectors;
/// tau[j] are the reflector scalings (LAPACK dgeqrf layout).
void householder_qr(MatrixView a, std::vector<double>& tau);

/// Form the thin Q (m x k, k <= min(m,n)) from the dgeqrf-style factor.
[[nodiscard]] Matrix form_q_thin(ConstMatrixView qr,
                                 const std::vector<double>& tau, i64 k);

/// Result of a truncated rank-revealing QR: A ~= U * V^T with U (m x rank)
/// orthonormal and V (n x rank); `residual_fro` is the exact Frobenius norm
/// of the dropped part.
struct RrqrResult {
  Matrix u;
  Matrix v;
  i64 rank = 0;
  double residual_fro = 0.0;
};

/// Column-pivoted QR truncated at the first of:
///  * absolute Frobenius tolerance `tol_fro`: the not-yet-factored residual
///    satisfies ||residual||_F <= tol_fro;
///  * pivot threshold `tol_pivot` (0 disables): the largest remaining column
///    norm — a proxy for the residual's leading singular value, the
///    LAPACK-style rank rule — drops to <= tol_pivot;
///  * relative pivot threshold `tol_pivot_rel` (0 disables): like tol_pivot
///    but measured against the *first* pivot's column norm (ie. relative to
///    the block's spectral scale — the HiCMA accuracy semantics);
///  * `max_rank` columns (max_rank < 0 means unlimited).
[[nodiscard]] RrqrResult rrqr_truncated(ConstMatrixView a, double tol_fro,
                                        i64 max_rank, double tol_pivot = 0.0,
                                        double tol_pivot_rel = 0.0);

}  // namespace parmvn::la
