#include "linalg/microkernel.hpp"

#include <algorithm>
#include <memory>
#include <mutex>

#include "common/aligned.hpp"
#include "common/env.hpp"
#include "common/parallel.hpp"
#include "common/simd.hpp"

namespace parmvn::la::detail {

namespace {

static_assert(kMC % kMR == 0, "A block must tile into full micro-panels");
static_assert(kNC % kNR == 0, "B block must tile into full micro-panels");

// Per-thread packing scratch. Worker threads of the task runtime each get
// their own copy, so concurrent tile GEMMs never share panels; contents are
// fully (re)written on every pack, so reuse cannot leak state between calls.
struct PackScratch {
  aligned_vector<double> a;  // kMC x kKC, column-panels of kMR rows
  aligned_vector<double> b;  // kKC x kNC, row-panels of kNR columns
};

PackScratch& scratch() {
  thread_local PackScratch s;
  if (s.a.empty()) {
    s.a.resize(static_cast<std::size_t>(kMC * kKC));
    s.b.resize(static_cast<std::size_t>(kKC * kNC));
  }
  return s;
}

// ---- parallel packing (ROADMAP lever: very large single GEMMs) ----
//
// Packing is pure data movement: the packed bytes are identical however the
// panel range is split, so large packs can be spread over the shared
// HelperPool without touching the determinism contract. The pool is
// single-flight (common/parallel.hpp): when several threads run big GEMMs
// at once, one wins the helpers and the rest pack serially — never
// oversubscribing, never blocking.
//
// Gates: the whole mode needs an operand strictly larger than
// kParallelPackMinElems elements (m*k for A, k*n for B — a B-dominated
// shape like 64 x 4096 x 4096 qualifies through its panels even though
// m*k is tiny). Tile-task GEMMs never qualify: nb <= 512 gives both
// operands exactly 2^18 elements at most, under the strict >. An
// individual pack call is additionally only split when it moves at least
// kParallelPackMinPanelElems elements — with the default kMC/kKC blocking
// only the B panel (kKC x kNC = 192 KiB-class) clears that bar; the A
// panel path is gated the same way so a retuned blocking picks it up for
// free.
constexpr i64 kParallelPackMinElems = i64{1} << 18;       // per-operand gate
constexpr i64 kParallelPackMinPanelElems = i64{1} << 15;  // per-pack gate

std::mutex& pack_pool_mu() {
  static std::mutex mu;
  return mu;
}

std::unique_ptr<common::HelperPool>& pack_pool_slot() {
  static std::unique_ptr<common::HelperPool> pool;
  return pool;
}

int default_pack_helpers() {
  // PARMVN_PACK_THREADS counts helpers (0 disables); default: the host's
  // spare hardware threads, capped — packing is bandwidth-bound and stops
  // scaling long before the core count on big machines.
  const i64 env = env_i64("PARMVN_PACK_THREADS", -1);
  if (env >= 0) return static_cast<int>(std::min<i64>(env, 15));
  return std::clamp(default_num_threads() - 1, 0, 7);
}

common::HelperPool& pack_pool() {
  std::lock_guard<std::mutex> g(pack_pool_mu());
  auto& slot = pack_pool_slot();
  if (!slot) slot = std::make_unique<common::HelperPool>(default_pack_helpers());
  return *slot;
}

// Pack op(A)(i0:i0+mc, p0:p0+kc) into column-panels of kMR rows:
// out[(ir/kMR) * kMR*kc + l*kMR + i] = op(A)(ir + i, l). The ragged bottom
// panel is zero-padded to kMR rows so the microkernel always runs full
// width; the padded rows are masked out at write-back.
void pack_a(Trans trans, ConstMatrixView a, i64 i0, i64 p0, i64 mc, i64 kc,
            double* __restrict out) {
  for (i64 ir = 0; ir < mc; ir += kMR) {
    const i64 mr = std::min(kMR, mc - ir);
    if (trans == Trans::kNo) {
      for (i64 l = 0; l < kc; ++l) {
        const double* __restrict src = a.col(p0 + l) + i0 + ir;
        for (i64 i = 0; i < mr; ++i) out[i] = src[i];
        for (i64 i = mr; i < kMR; ++i) out[i] = 0.0;
        out += kMR;
      }
    } else {
      // op(A)(i, l) = a(p0 + l, i0 + i): walk columns of a (contiguous in l)
      // and scatter into the panel.
      for (i64 i = 0; i < mr; ++i) {
        const double* __restrict src = a.col(i0 + ir + i) + p0;
        for (i64 l = 0; l < kc; ++l) out[l * kMR + i] = src[l];
      }
      for (i64 i = mr; i < kMR; ++i)
        for (i64 l = 0; l < kc; ++l) out[l * kMR + i] = 0.0;
      out += kMR * kc;
    }
  }
}

// Pack op(B)(p0:p0+kc, j0:j0+nc) into row-panels of kNR columns:
// out[(jr/kNR) * kNR*kc + l*kNR + j] = op(B)(l, jr + j), ragged right panel
// zero-padded to kNR columns.
void pack_b(Trans trans, ConstMatrixView b, i64 p0, i64 j0, i64 kc, i64 nc,
            double* __restrict out) {
  for (i64 jr = 0; jr < nc; jr += kNR) {
    const i64 nr = std::min(kNR, nc - jr);
    if (trans == Trans::kNo) {
      // op(B)(l, j) = b(p0 + l, j0 + j): columns of b are contiguous in l.
      for (i64 j = 0; j < nr; ++j) {
        const double* __restrict src = b.col(j0 + jr + j) + p0;
        for (i64 l = 0; l < kc; ++l) out[l * kNR + j] = src[l];
      }
      for (i64 j = nr; j < kNR; ++j)
        for (i64 l = 0; l < kc; ++l) out[l * kNR + j] = 0.0;
      out += kNR * kc;
    } else {
      // op(B)(l, j) = b(j0 + j, p0 + l): column p0+l of b is contiguous in j.
      for (i64 l = 0; l < kc; ++l) {
        const double* __restrict src = b.col(p0 + l) + j0 + jr;
        for (i64 j = 0; j < nr; ++j) out[j] = src[j];
        for (i64 j = nr; j < kNR; ++j) out[j] = 0.0;
        out += kNR;
      }
    }
  }
}

// The microkernel: acc(kMR x kNR) = sum_l apanel(:, l) * bpanel(l, :), then
// C(0:mr, 0:nr) += alpha * acc.
//
// The accumulator tile must live in registers across the whole k loop — one
// spilled accumulator turns every FMA into load+op+store and costs an order
// of magnitude. A 16 x 4 double tile (8 zmm / 16 ymm vectors) is past what
// compilers will reliably scalar-replace out of a plain local array, so on
// GCC/Clang the eight accumulators are explicit vector-extension values
// (lowered to the best ISA the TU is compiled for, AVX-512 down to SSE2);
// elsewhere a scalar fallback keeps the identical reduction order.
#if defined(PARMVN_SIMD_VECTOR_EXT)

// Lane type and helpers shared with the other native-flag TUs (the batched
// stats primitives); apack panels start and stride at multiples of 128 bytes
// (kMR doubles), so load8 compiles to a single vmovapd here.
using simd::load8;
using simd::splat;
using simd::store8;
using simd::v8df;

void micro_kernel(i64 kc, const double* __restrict ap,
                  const double* __restrict bp, double alpha,
                  double* __restrict c, i64 ldc, i64 mr, i64 nr) {
  static_assert(kMR == 16 && kNR == 4,
                "vector microkernel is written for a 16x4 tile");
  v8df c00 = splat(0.0), c01 = splat(0.0);  // rows 0:8 / 8:16 of column 0
  v8df c10 = splat(0.0), c11 = splat(0.0);
  v8df c20 = splat(0.0), c21 = splat(0.0);
  v8df c30 = splat(0.0), c31 = splat(0.0);
  for (i64 l = 0; l < kc; ++l) {
    const v8df a0 = load8(ap + l * kMR);
    const v8df a1 = load8(ap + l * kMR + 8);
    const double* __restrict bl = bp + l * kNR;
    const v8df b0 = splat(bl[0]);
    const v8df b1 = splat(bl[1]);
    const v8df b2 = splat(bl[2]);
    const v8df b3 = splat(bl[3]);
    c00 += a0 * b0;
    c01 += a1 * b0;
    c10 += a0 * b1;
    c11 += a1 * b1;
    c20 += a0 * b2;
    c21 += a1 * b2;
    c30 += a0 * b3;
    c31 += a1 * b3;
  }
  alignas(64) double acc[kMR * kNR];
  __builtin_memcpy(acc + 0 * kMR, &c00, sizeof(c00));
  __builtin_memcpy(acc + 0 * kMR + 8, &c01, sizeof(c01));
  __builtin_memcpy(acc + 1 * kMR, &c10, sizeof(c10));
  __builtin_memcpy(acc + 1 * kMR + 8, &c11, sizeof(c11));
  __builtin_memcpy(acc + 2 * kMR, &c20, sizeof(c20));
  __builtin_memcpy(acc + 2 * kMR + 8, &c21, sizeof(c21));
  __builtin_memcpy(acc + 3 * kMR, &c30, sizeof(c30));
  __builtin_memcpy(acc + 3 * kMR + 8, &c31, sizeof(c31));
  for (i64 j = 0; j < nr; ++j) {
    double* __restrict cj = c + j * ldc;
    for (i64 i = 0; i < mr; ++i) cj[i] += alpha * acc[j * kMR + i];
  }
}

#else  // scalar fallback, same reduction order

void micro_kernel(i64 kc, const double* __restrict ap,
                  const double* __restrict bp, double alpha,
                  double* __restrict c, i64 ldc, i64 mr, i64 nr) {
  double acc[kMR * kNR];
  for (i64 x = 0; x < kMR * kNR; ++x) acc[x] = 0.0;
  for (i64 l = 0; l < kc; ++l) {
    const double* __restrict al = ap + l * kMR;
    const double* __restrict bl = bp + l * kNR;
    for (i64 j = 0; j < kNR; ++j) {
      const double bv = bl[j];
      for (i64 i = 0; i < kMR; ++i) acc[j * kMR + i] += al[i] * bv;
    }
  }
  for (i64 j = 0; j < nr; ++j) {
    double* __restrict cj = c + j * ldc;
    for (i64 i = 0; i < mr; ++i) cj[i] += alpha * acc[j * kMR + i];
  }
}

#endif

}  // namespace

void set_pack_helpers(int helpers) {
  std::lock_guard<std::mutex> g(pack_pool_mu());
  pack_pool_slot() = std::make_unique<common::HelperPool>(
      helpers < 0 ? default_pack_helpers() : helpers);
}

int pack_helpers() { return pack_pool().helpers(); }

void gemm_packed(double alpha, Trans trans_a, ConstMatrixView a,
                 Trans trans_b, ConstMatrixView b, MatrixView c) {
  const i64 m = c.rows;
  const i64 n = c.cols;
  const i64 k = (trans_a == Trans::kNo) ? a.cols : a.rows;
  PackScratch& s = scratch();
  double* const apack = s.a.data();
  double* const bpack = s.b.data();
  const bool parallel_pack = m * k > kParallelPackMinElems ||
                             k * n > kParallelPackMinElems;

  for (i64 jc = 0; jc < n; jc += kNC) {
    const i64 nc = std::min(kNC, n - jc);
    for (i64 pc = 0; pc < k; pc += kKC) {
      const i64 kc = std::min(kKC, k - pc);
      // Split the pack by whole micro-panels (kNR columns / kMR rows): a
      // chunk [x0, x1) writes exactly out[x0*kc, x1*kc), so chunks are
      // disjoint and the packed buffer is byte-identical to a serial pack.
      if (!(parallel_pack && kc * nc >= kParallelPackMinPanelElems &&
            pack_pool().try_run(nc, kNR, [&](i64 j0, i64 j1) {
              pack_b(trans_b, b, pc, jc + j0, kc, j1 - j0, bpack + j0 * kc);
            }))) {
        pack_b(trans_b, b, pc, jc, kc, nc, bpack);
      }
      for (i64 ic = 0; ic < m; ic += kMC) {
        const i64 mc = std::min(kMC, m - ic);
        if (!(parallel_pack && kc * mc >= kParallelPackMinPanelElems &&
              pack_pool().try_run(mc, kMR, [&](i64 i0, i64 i1) {
                pack_a(trans_a, a, ic + i0, pc, i1 - i0, kc, apack + i0 * kc);
              }))) {
          pack_a(trans_a, a, ic, pc, mc, kc, apack);
        }
        for (i64 jr = 0; jr < nc; jr += kNR) {
          const i64 nr = std::min(kNR, nc - jr);
          const double* bp = bpack + (jr / kNR) * (kNR * kc);
          for (i64 ir = 0; ir < mc; ir += kMR) {
            const i64 mr = std::min(kMR, mc - ir);
            const double* ap = apack + (ir / kMR) * (kMR * kc);
            micro_kernel(kc, ap, bp, alpha, &c(ic + ir, jc + jr), c.ld, mr, nr);
          }
        }
      }
    }
  }
}

#if defined(PARMVN_SIMD_VECTOR_EXT)

double dot_simd(i64 n, const double* x, const double* y) noexcept {
  v8df acc0 = splat(0.0), acc1 = splat(0.0);
  v8df acc2 = splat(0.0), acc3 = splat(0.0);
  i64 i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 += load8(x + i) * load8(y + i);
    acc1 += load8(x + i + 8) * load8(y + i + 8);
    acc2 += load8(x + i + 16) * load8(y + i + 16);
    acc3 += load8(x + i + 24) * load8(y + i + 24);
  }
  for (; i + 8 <= n; i += 8) acc0 += load8(x + i) * load8(y + i);
  // Fixed-order reduction: pairwise over accumulators, then over lanes, then
  // the scalar tail — a function of n only.
  acc0 += acc1;
  acc2 += acc3;
  acc0 += acc2;
  alignas(64) double lanes[8];
  store8(lanes, acc0);
  double s = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
             ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
  for (; i < n; ++i) s += x[i] * y[i];
  return s;
}

void gemv_notrans_strided_simd(double alpha, ConstMatrixView a,
                               const double* x, i64 incx, double* y) {
  const i64 m = a.rows;
  for (i64 j = 0; j < a.cols; ++j) {
    const double axj = alpha * x[j * incx];
    const v8df vax = splat(axj);
    const double* __restrict aj = a.col(j);
    i64 i = 0;
    for (; i + 8 <= m; i += 8)
      store8(y + i, load8(y + i) + vax * load8(aj + i));
    for (; i < m; ++i) y[i] += axj * aj[i];
  }
}

#else  // scalar fallbacks, same reduction orders

double dot_simd(i64 n, const double* x, const double* y) noexcept {
  double lanes[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  double acc[32];
  for (double& v : acc) v = 0.0;
  i64 i = 0;
  for (; i + 32 <= n; i += 32)
    for (int l = 0; l < 32; ++l) acc[l] += x[i + l] * y[i + l];
  for (; i + 8 <= n; i += 8)
    for (int l = 0; l < 8; ++l) acc[l] += x[i + l] * y[i + l];
  // acc0 += acc1; acc2 += acc3; acc0 += acc2 of the vector version, lanewise.
  for (int l = 0; l < 8; ++l)
    lanes[l] = (acc[l] + acc[8 + l]) + (acc[16 + l] + acc[24 + l]);
  double s = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
             ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
  for (; i < n; ++i) s += x[i] * y[i];
  return s;
}

void gemv_notrans_strided_simd(double alpha, ConstMatrixView a,
                               const double* x, i64 incx, double* y) {
  const i64 m = a.rows;
  for (i64 j = 0; j < a.cols; ++j) {
    const double axj = alpha * x[j * incx];
    const double* __restrict aj = a.col(j);
    for (i64 i = 0; i < m; ++i) y[i] += axj * aj[i];
  }
}

#endif

void gemv_notrans_simd(double alpha, ConstMatrixView a, const double* x,
                       double* y) {
  gemv_notrans_strided_simd(alpha, a, x, 1, y);
}

}  // namespace parmvn::la::detail
