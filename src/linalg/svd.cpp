#include "linalg/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/contracts.hpp"
#include "linalg/blas.hpp"

namespace parmvn::la {

SvdResult svd_jacobi(ConstMatrixView a) {
  // Work on the tall orientation; transpose back at the end if needed.
  const bool transposed = a.rows < a.cols;
  Matrix work = transposed ? Matrix(a.cols, a.rows) : to_matrix(a);
  if (transposed) transpose_into(a, work.view());
  const i64 m = work.rows();
  const i64 n = work.cols();

  Matrix v = Matrix::identity(n);
  MatrixView w = work.view();

  // Cyclic one-sided Jacobi: orthogonalise column pairs until all rotations
  // in a sweep are negligible.
  const double tol = 1e-15;
  const int max_sweeps = 60;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool rotated = false;
    for (i64 p = 0; p < n - 1; ++p) {
      for (i64 q = p + 1; q < n; ++q) {
        double app = 0.0, aqq = 0.0, apq = 0.0;
        const double* cp = w.col(p);
        const double* cq = w.col(q);
        for (i64 i = 0; i < m; ++i) {
          app += cp[i] * cp[i];
          aqq += cq[i] * cq[i];
          apq += cp[i] * cq[i];
        }
        if (std::fabs(apq) <= tol * std::sqrt(app * aqq) || apq == 0.0)
          continue;
        rotated = true;
        const double zeta = (aqq - app) / (2.0 * apq);
        const double t = std::copysign(
            1.0 / (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta)), zeta);
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        double* mp = w.col(p);
        double* mq = w.col(q);
        for (i64 i = 0; i < m; ++i) {
          const double wp = mp[i];
          const double wq = mq[i];
          mp[i] = c * wp - s * wq;
          mq[i] = s * wp + c * wq;
        }
        double* vp = v.view().col(p);
        double* vq = v.view().col(q);
        for (i64 i = 0; i < n; ++i) {
          const double xp = vp[i];
          const double xq = vq[i];
          vp[i] = c * xp - s * xq;
          vq[i] = s * xp + c * xq;
        }
      }
    }
    if (!rotated) break;
  }

  // Singular values = column norms; U = normalised columns.
  std::vector<double> sigma(static_cast<std::size_t>(n));
  Matrix u(m, n);
  for (i64 j = 0; j < n; ++j) {
    double s = 0.0;
    const double* cj = w.col(j);
    for (i64 i = 0; i < m; ++i) s += cj[i] * cj[i];
    s = std::sqrt(s);
    sigma[static_cast<std::size_t>(j)] = s;
    const double inv = (s > 0.0) ? 1.0 / s : 0.0;
    for (i64 i = 0; i < m; ++i) u(i, j) = cj[i] * inv;
  }

  // Sort descending by singular value.
  std::vector<i64> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), i64{0});
  std::sort(order.begin(), order.end(), [&](i64 x, i64 y) {
    return sigma[static_cast<std::size_t>(x)] > sigma[static_cast<std::size_t>(y)];
  });
  SvdResult out;
  out.sigma.resize(static_cast<std::size_t>(n));
  out.u = Matrix(m, n);
  out.v = Matrix(n, n);
  for (i64 j = 0; j < n; ++j) {
    const i64 src = order[static_cast<std::size_t>(j)];
    out.sigma[static_cast<std::size_t>(j)] = sigma[static_cast<std::size_t>(src)];
    for (i64 i = 0; i < m; ++i) out.u(i, j) = u(i, src);
    for (i64 i = 0; i < n; ++i) out.v(i, j) = v(i, src);
  }

  if (transposed) std::swap(out.u, out.v);
  return out;
}

i64 truncation_rank_sv(const std::vector<double>& sigma, double threshold) {
  PARMVN_EXPECTS(!sigma.empty());
  i64 rank = 0;
  for (const double s : sigma) {
    if (s >= threshold) ++rank;
  }
  return std::max<i64>(rank, 1);
}

i64 truncation_rank(const std::vector<double>& sigma, double tol_fro) {
  PARMVN_EXPECTS(!sigma.empty());
  const i64 k = static_cast<i64>(sigma.size());
  // tail_sq[r] = sum_{i >= r} sigma_i^2; pick the smallest r with
  // tail_sq[r] <= tol^2.
  double tail_sq = 0.0;
  const double tol_sq = tol_fro * tol_fro;
  i64 rank = k;
  for (i64 r = k; r >= 1; --r) {
    const double s = sigma[static_cast<std::size_t>(r - 1)];
    if (tail_sq + s * s > tol_sq) break;
    tail_sq += s * s;
    rank = r - 1;
  }
  return std::max<i64>(rank, 1);
}

}  // namespace parmvn::la
