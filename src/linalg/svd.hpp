// One-sided Jacobi singular value decomposition.
//
// Used on the small cores that appear in low-rank recompression
// (r x r with r = tile rank, typically < 100) and as a high-accuracy oracle
// in tests. One-sided Jacobi is slow for big matrices but essentially
// backward-stable and simple to verify.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "linalg/matrix.hpp"

namespace parmvn::la {

struct SvdResult {
  Matrix u;                    // m x k, orthonormal columns
  std::vector<double> sigma;   // k singular values, descending
  Matrix v;                    // n x k, orthonormal columns
};

/// Thin SVD A = U diag(sigma) V^T with k = min(m, n).
[[nodiscard]] SvdResult svd_jacobi(ConstMatrixView a);

/// Smallest rank r such that the discarded tail satisfies
/// sqrt(sum_{i>=r} sigma_i^2) <= tol_fro (absolute Frobenius tolerance).
/// Always returns at least 1.
[[nodiscard]] i64 truncation_rank(const std::vector<double>& sigma,
                                  double tol_fro);

/// Number of singular values >= threshold (HiCMA's fixed-accuracy rule:
/// everything below the threshold is noise). Always returns at least 1.
[[nodiscard]] i64 truncation_rank_sv(const std::vector<double>& sigma,
                                     double threshold);

}  // namespace parmvn::la
