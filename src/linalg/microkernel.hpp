// Blocked, register-tiled GEMM — the hot loop under every dense, tiled and
// TLR kernel in the library.
//
// Structure (BLIS/GotoBLAS three-level blocking):
//
//   for jc in steps of kNC:                 (B panel column block)
//     for pc in steps of kKC:               (reduction block)
//       pack op(B)(pc:, jc:) into bpack     (row-panels of kNR columns)
//       for ic in steps of kMC:             (A panel row block)
//         pack op(A)(ic:, pc:) into apack   (column-panels of kMR rows)
//         for each (kMR x kNR) microtile:
//           acc  = sum_l apack_panel(:, l) * bpack_panel(l, :)
//           C   += alpha * acc              (masked at ragged edges)
//
// The microtile accumulator lives in registers across the whole k loop, the
// packed panels are contiguous and 64-byte aligned, and transposition is
// folded into packing, so no transposed operand is ever materialised.
//
// Two contracts every change here must keep (see tests/test_determinism.cpp
// and tests/test_linalg_blas.cpp):
//
//  * Determinism: the reduction order depends only on (m, n, k) — never on
//    the data, the thread count, or which worker runs the task. Partial
//    panels are zero-padded to full microtile width; the padded lanes
//    multiply real data but land in accumulator slots that are never written
//    back, so padding cannot perturb (or un-NaN) a visible result.
//  * BLAS-style NaN/Inf semantics: no value-dependent skips on the
//    accumulation path. 0 * Inf contributes NaN, exactly like the reference
//    BLAS, and identically in every column position.
#pragma once

#include "common/types.hpp"
#include "linalg/blas.hpp"
#include "linalg/matrix.hpp"

namespace parmvn::la::detail {

/// Register microtile: a kMR x kNR block of C is held in registers across
/// the k loop. 16 x 4 doubles = 8 AVX-512 (16 AVX2) accumulator vectors —
/// enough independent FMA chains to cover the 4-cycle FMA latency on two
/// issue ports; per k step the kernel loads one 16-row A column and
/// broadcasts 4 B values.
inline constexpr i64 kMR = 16;
inline constexpr i64 kNR = 4;

/// Cache blocking. apack is kMC x kKC (192 KiB, L2-resident), bpack is
/// kKC x kNC (1.5 MiB, streamed from L3); one apack column-panel
/// (kMR x kKC = 24 KiB) plus one bpack row-panel (kKC x kNR = 6 KiB) stay
/// L1-resident across the jr loop. Retuning: kMC must be a multiple of kMR
/// and kNC a multiple of kNR; the scratch in microkernel.cpp sizes itself
/// from these constants.
inline constexpr i64 kMC = 128;
inline constexpr i64 kKC = 192;
inline constexpr i64 kNC = 1024;

/// C += alpha * op(A) * op(B), with op(A) m x k, op(B) k x n, C m x n.
/// Operand transposition is handled while packing panels. The caller
/// (la::gemm) has already applied beta to C and screened out alpha == 0 and
/// empty shapes.
///
/// Very large GEMMs (an operand — m·k or k·n — past an internal threshold)
/// split their panel packing across a shared helper pool
/// (common/parallel.hpp) — packed bytes
/// are identical however the range is split, so the result stays bitwise
/// equal to the serial path. The pool is single-flight and sized by
/// PARMVN_PACK_THREADS (default: spare hardware threads, capped; 0
/// disables), so tile tasks running under the runtime never oversubscribe.
void gemm_packed(double alpha, Trans trans_a, ConstMatrixView a,
                 Trans trans_b, ConstMatrixView b, MatrixView c);

/// Resize the shared packing helper pool (tests/benchmarks only — callers
/// must ensure no GEMM is in flight). Negative restores the default sizing.
void set_pack_helpers(int helpers);

/// Current helper-thread count of the packing pool (0 = packing is serial).
[[nodiscard]] int pack_helpers();

/// SIMD dot product backing la::dot (ACA pivot search and the QMC sweep's
/// triangular solves are the hot callers). Four independent 8-lane
/// accumulators, reduced in a fixed lane order — the reduction order depends
/// only on n, preserving the determinism contract (but it differs from the
/// naive left-to-right sum, so callers get reassociated rounding).
[[nodiscard]] double dot_simd(i64 n, const double* x, const double* y) noexcept;

/// SIMD y += sum_j (alpha * x[j]) * A(:, j) column sweep backing la::gemv's
/// no-transpose case; bitwise identical to the scalar loop (vectorising over
/// rows does not reassociate any per-element sum).
void gemv_notrans_simd(double alpha, ConstMatrixView a, const double* x,
                       double* y);

/// Same sweep with a strided x (x[j * incx]): the QMC integrand's
/// sample-contiguous row accumulation s += sum_k L(i, k) * Y(:, k) reads the
/// factor row i directly out of the column-major tile (incx = ld). The
/// per-element reduction order is ascending k, independent of panel width.
void gemv_notrans_strided_simd(double alpha, ConstMatrixView a,
                               const double* x, i64 incx, double* y);

}  // namespace parmvn::la::detail
