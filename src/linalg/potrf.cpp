#include "linalg/potrf.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "linalg/blas.hpp"

namespace parmvn::la {

namespace {

// Left-looking unblocked Cholesky on a panel; column-oriented so all inner
// loops stream down contiguous columns.
i64 potrf_unblocked(MatrixView a) {
  const i64 n = a.rows;
  for (i64 j = 0; j < n; ++j) {
    double* __restrict aj = a.col(j);
    for (i64 k = 0; k < j; ++k) {
      const double ajk = a(j, k);
      if (ajk == 0.0) continue;
      const double* __restrict ak = a.col(k);
      for (i64 i = j; i < n; ++i) aj[i] -= ajk * ak[i];
    }
    const double diag = aj[j];
    if (!(diag > 0.0) || !std::isfinite(diag)) return j + 1;
    const double root = std::sqrt(diag);
    aj[j] = root;
    const double inv = 1.0 / root;
    for (i64 i = j + 1; i < n; ++i) aj[i] *= inv;
  }
  return 0;
}

constexpr i64 kPotrfBlock = 128;

}  // namespace

i64 potrf_lower(MatrixView a) {
  PARMVN_EXPECTS(a.rows == a.cols);
  const i64 n = a.rows;
  for (i64 k0 = 0; k0 < n; k0 += kPotrfBlock) {
    const i64 kb = std::min(kPotrfBlock, n - k0);
    const i64 info = potrf_unblocked(a.sub(k0, k0, kb, kb));
    if (info != 0) return k0 + info;
    const i64 rest = n - k0 - kb;
    if (rest == 0) continue;
    // Panel solve: A(k+1:, k) <- A(k+1:, k) * L_kk^-T
    trsm(Side::kRight, Trans::kYes, 1.0, a.sub(k0, k0, kb, kb),
         a.sub(k0 + kb, k0, rest, kb));
    // Trailing update: A(k+1:, k+1:) -= A(k+1:, k) A(k+1:, k)^T (lower).
    syrk(Trans::kNo, -1.0, a.sub(k0 + kb, k0, rest, kb), 1.0,
         a.sub(k0 + kb, k0 + kb, rest, rest));
  }
  return 0;
}

void potrf_lower_or_throw(MatrixView a) {
  const i64 info = potrf_lower(a);
  if (info != 0) {
    throw Error("potrf: matrix not positive definite (pivot " +
                std::to_string(info) + " of " + std::to_string(a.rows) + ")");
  }
}

void zero_strict_upper(MatrixView a) {
  for (i64 j = 1; j < a.cols; ++j) {
    const i64 top = std::min(j, a.rows);
    double* aj = a.col(j);
    std::fill(aj, aj + top, 0.0);
  }
}

}  // namespace parmvn::la
