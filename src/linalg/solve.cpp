#include "linalg/solve.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "linalg/blas.hpp"
#include "linalg/potrf.hpp"

namespace parmvn::la {

void spd_inverse(MatrixView a) {
  PARMVN_EXPECTS(a.rows == a.cols);
  const i64 n = a.rows;
  potrf_lower_or_throw(a);
  // X = L^-1 (solve against the identity), then A^-1 = X^T X.
  Matrix x = Matrix::identity(n);
  trsm(Side::kLeft, Trans::kNo, 1.0, a, x.view());
  // A^-1 (lower triangle) = X^T X via syrk-T, then mirror.
  syrk(Trans::kYes, 1.0, x.view(), 0.0, a);
  for (i64 j = 0; j < n; ++j)
    for (i64 i = j + 1; i < n; ++i) a(j, i) = a(i, j);
}

void chol_solve_inplace(ConstMatrixView l, double* b) {
  PARMVN_EXPECTS(l.rows == l.cols);
  MatrixView bv{b, l.rows, 1, l.rows};
  trsm(Side::kLeft, Trans::kNo, 1.0, l, bv);
  trsm(Side::kLeft, Trans::kYes, 1.0, l, bv);
}

double chol_logdet(ConstMatrixView l) {
  PARMVN_EXPECTS(l.rows == l.cols);
  double acc = 0.0;
  for (i64 i = 0; i < l.rows; ++i) acc += std::log(l(i, i));
  return 2.0 * acc;
}

}  // namespace parmvn::la
