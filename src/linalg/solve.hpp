// SPD solve / inverse helpers built on Cholesky (used by the posterior
// covariance construction, eq. 7-8 of the paper, and by the MLE).
#pragma once

#include "common/types.hpp"
#include "linalg/matrix.hpp"

namespace parmvn::la {

/// In-place inverse of an SPD matrix via Cholesky (only the lower triangle
/// of the input is referenced; the full symmetric inverse is written).
void spd_inverse(MatrixView a);

/// Solve A x = b for SPD A given its lower Cholesky factor L (in the lower
/// triangle of `l`); b is overwritten with x.
void chol_solve_inplace(ConstMatrixView l, double* b);

/// log(det(A)) from its Cholesky factor: 2 * sum log L_ii.
[[nodiscard]] double chol_logdet(ConstMatrixView l);

}  // namespace parmvn::la
