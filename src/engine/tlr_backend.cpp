#include "engine/tlr_backend.hpp"

#include "linalg/blas.hpp"
#include "tlr/lr_tile.hpp"

namespace parmvn::engine {

void TlrBackend::apply_update(i64 i, i64 r, la::ConstMatrixView y,
                              la::MatrixView a, la::MatrixView b) const {
  // L_ir = U V^T, so A -= (Y V) U^T with the skinny inner product shared
  // by both targets.
  const tlr::LowRankTile& t = l_->lr(i, r);
  la::Matrix tmp(y.rows, t.rank());
  la::gemm(la::Trans::kNo, la::Trans::kNo, 1.0, y, t.v.view(), 0.0,
           tmp.view());
  la::gemm(la::Trans::kNo, la::Trans::kYes, -1.0, tmp.view(), t.u.view(), 1.0,
           a);
  la::gemm(la::Trans::kNo, la::Trans::kYes, -1.0, tmp.view(), t.u.view(), 1.0,
           b);
}

}  // namespace parmvn::engine
