#include "engine/tlr_backend.hpp"

#include "linalg/blas.hpp"
#include "tlr/lr_tile.hpp"

namespace parmvn::engine {

void TlrBackend::apply_update(i64 i, i64 r, la::ConstMatrixView y,
                              la::MatrixView a, la::MatrixView b) const {
  // L_ir = U V^T, so A -= (Y V) U^T with the skinny inner product shared
  // by both targets.
  const tlr::LowRankTile& t = l_->lr(i, r);
  la::Matrix tmp(y.rows, t.rank());
  la::gemm(la::Trans::kNo, la::Trans::kNo, 1.0, y, t.v.view(), 0.0,
           tmp.view());
  la::gemm(la::Trans::kNo, la::Trans::kYes, -1.0, tmp.view(), t.u.view(), 1.0,
           a);
  la::gemm(la::Trans::kNo, la::Trans::kYes, -1.0, tmp.view(), t.u.view(), 1.0,
           b);
}

double TlrBackend::ep_row(i64 k,
                          std::vector<std::pair<i64, double>>& parents) const {
  parents.clear();
  const i64 m = l_->tile_size();
  const i64 kt = k / m;
  const i64 l = k % m;
  for (i64 r = 0; r < kt; ++r) {
    // Row l of L_{kt,r} = U V^T: dot row l of U against each row of V.
    const tlr::LowRankTile& t = l_->lr(kt, r);
    const la::ConstMatrixView u = t.u.view();
    const la::ConstMatrixView v = t.v.view();
    const i64 rank = t.rank();
    for (i64 c = 0; c < v.rows; ++c) {
      double w = 0.0;
      for (i64 q = 0; q < rank; ++q) w += u(l, q) * v(c, q);
      if (w != 0.0) parents.emplace_back(r * m + c, w);
    }
  }
  const la::ConstMatrixView diag = l_->diag(kt);
  for (i64 c = 0; c < l; ++c) {
    const double w = diag(l, c);
    if (w != 0.0) parents.emplace_back(kt * m + c, w);
  }
  return diag(l, l);
}

}  // namespace parmvn::engine
