// Polymorphic factor backend — the seam between "factor once" and
// "evaluate many".
//
// The PMVN sweep consumes a factor through a small, fixed vocabulary:
// tile geometry, a readable diagonal tile, runtime handles for dependency
// tracking, and a propagation rule that folds tile row r's conditioning
// values into the panels of a later tile row i. FactorBackend names that
// vocabulary so CholeskyFactor (the owning facade the caching/serving
// layers hold) and PmvnEngine (the task-graph builder) never branch on a
// concrete format. Dense-tiled and TLR factors are thin adapters
// (dense_backend.hpp / tlr_backend.hpp); the Vecchia sparse
// inverse-Cholesky arm (vecchia/vecchia_backend.hpp) is the third.
//
// Two sweep protocols, selected by mean_panel_form():
//
//  * Reduced-limit form (dense, TLR — mean_panel_form() == false): the A/B
//    panels carry the *transformed integration limits*, initialised to the
//    query limits and reduced in place by apply_update()'s wide GEMMs
//    (A -= Y L_ir^T). Every (i, r) tile pair carries an off-diagonal block,
//    named by off_handle() for dependency tracking.
//
//  * Mean form (Vecchia — mean_panel_form() == true): conditioning sets are
//    sparse, so per-pair GEMM tasks would drown in task/handle overhead.
//    Instead the A panel accumulates the *external conditional mean*
//    (initialised to zero by allocation) and the kernel standardises the
//    original query limits against it row by row. All external
//    contributions into tile row r are applied by accumulate_external()
//    at the head of row r's integrand task — a deterministic sequence of
//    unit-stride axpys — so the per-column-tile chain (already serialised
//    by the engine's probability-product handle) is the only dependency
//    needed and no per-pair handles or tasks exist at all. The B panel is
//    unused and never allocated.
//
// Both protocols keep the determinism contracts: every per-sample row of a
// panel is computed by arithmetic whose reduction order depends only on the
// dimension index, never on the panel width or task interleaving, so fused
// batches stay bitwise equal to single-query runs and results are identical
// across worker counts and scheduler arms *within* a factor kind.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "linalg/matrix.hpp"
#include "runtime/runtime.hpp"

namespace parmvn::engine {

enum class FactorKind { kDense, kTlr, kVecchia };

class FactorBackend {
 public:
  virtual ~FactorBackend() = default;

  [[nodiscard]] virtual FactorKind kind() const noexcept = 0;
  [[nodiscard]] virtual i64 dim() const noexcept = 0;
  [[nodiscard]] virtual i64 tile_size() const noexcept = 0;
  [[nodiscard]] virtual i64 row_tiles() const noexcept = 0;
  [[nodiscard]] virtual i64 tile_rows(i64 r) const noexcept = 0;

  /// Lower-triangular diagonal tile of tile row r. Reduced-limit backends
  /// return the Cholesky diagonal tile L_rr; mean-form backends return the
  /// local conditioning tile D_rr (unit structure: D(i,i) = conditional sd,
  /// D(i,k) = regression weight on in-tile neighbour k < i).
  [[nodiscard]] virtual la::ConstMatrixView diag_view(i64 r) const = 0;
  [[nodiscard]] virtual rt::DataHandle diag_handle(i64 r) const = 0;

  // ---- reduced-limit protocol (mean_panel_form() == false) ----

  /// Handle naming the (i, r) off-diagonal block, i > r.
  [[nodiscard]] virtual rt::DataHandle off_handle(i64 i, i64 r) const {
    PARMVN_ASSERT(!"off_handle: backend has no off-diagonal blocks");
    return rt::DataHandle{};
  }

  /// A -= Y * L_ir^T, B -= Y * L_ir^T over (possibly wide, multi-query)
  /// sample-contiguous panels (rows = samples, columns = dimensions).
  virtual void apply_update(i64 i, i64 r, la::ConstMatrixView y,
                            la::MatrixView a, la::MatrixView b) const {
    (void)i;
    (void)r;
    (void)y;
    (void)a;
    (void)b;
    PARMVN_ASSERT(!"apply_update: backend uses the mean-panel protocol");
  }

  // ---- mean-panel protocol (mean_panel_form() == true) ----

  [[nodiscard]] virtual bool mean_panel_form() const noexcept { return false; }

  /// Fold every external (earlier-tile) regression contribution into tile
  /// row r's mean panel: mean(:, c) += w * Y[src_tile](:, src_col) for each
  /// sparse weight, over panel rows [row_off, row_off + nrows). Applied in
  /// a fixed order (ascending target column, then ascending global
  /// neighbour), so the arithmetic is deterministic and — being a
  /// per-sample-row independent axpy sequence — width-independent.
  /// `y_panels` is the engine's per-tile-row conditioning panel array; only
  /// rows r' < r are read, which the caller's task chain has completed.
  virtual void accumulate_external(i64 r, std::span<const la::Matrix> y_panels,
                                   i64 row_off, i64 nrows,
                                   la::MatrixView mean_tile) const {
    (void)r;
    (void)y_panels;
    (void)row_off;
    (void)nrows;
    (void)mean_tile;
    PARMVN_ASSERT(!"accumulate_external: backend uses reduced-limit panels");
  }

  // ---- EP screening-row protocol (ep/ep_screen.hpp) ----
  //
  // Every arm expresses ordered coordinate k generatively as
  //   x_k = sum_j coef_j * s_j + d_k * z_k,   z_k ~ N(0, 1),
  // over parent slots s_j with j < k. Two slot spaces:
  //  * latent (dense, TLR — ep_latent_slots() == true): the slots are the
  //    Cholesky innovations z_j, coefficients are row k of L, d_k = L_kk;
  //  * observed (Vecchia — false): the slots are earlier coordinates x_j,
  //    coefficients are the conditioning-set regression weights, d_k the
  //    conditional sd, and z_k is private noise with no slot of its own.

  [[nodiscard]] virtual bool ep_latent_slots() const noexcept { return true; }

  /// Fill `parents` (cleared first) with row k's (slot, coefficient) pairs
  /// in ascending slot order — a fixed order, so the EP screen's reductions
  /// are deterministic — and return the innovation sd d_k. TLR backends
  /// materialise the row from U V^T on the fly; callers that sweep rows
  /// repeatedly should flatten once (the screen builds a CSR copy).
  virtual double ep_row(i64 k,
                        std::vector<std::pair<i64, double>>& parents) const = 0;
};

}  // namespace parmvn::engine
