#include "engine/cholesky_factor.hpp"

#include <cmath>
#include <utility>

#include "common/contracts.hpp"
#include "common/fault.hpp"
#include "common/timer.hpp"
#include "engine/dense_backend.hpp"
#include "engine/tlr_backend.hpp"
#include "geo/covgen.hpp"
#include "tile/tiled_potrf.hpp"
#include "tlr/tlr_potrf.hpp"
#include "vecchia/vecchia_backend.hpp"

namespace parmvn::engine {

namespace {

// Non-owning shared_ptr: the aliasing constructor with an empty owner leaves
// the control block null, so no deleter ever runs.
template <class T>
std::shared_ptr<const T> borrow(const T& ref) {
  return std::shared_ptr<const T>(std::shared_ptr<const T>{}, &ref);
}

// Build the dense backend for `gen` — the kDense arm, and the fallback rung
// the kTlr arm lands on when its retry ladder exhausts.
std::shared_ptr<const DenseBackend> build_dense(rt::Runtime& rt,
                                                const la::MatrixGenerator& gen,
                                                const FactorSpec& spec) {
  tile::TileMatrix l(rt, gen.rows(), gen.rows(), spec.tile,
                     tile::Layout::kLowerSymmetric, "Sigma");
  l.generate_async(rt, gen);
  rt.wait_all();
  tile::potrf_tiled_safeguarded(rt, l, spec.jitter_retries);
  return std::make_shared<const DenseBackend>(
      std::make_shared<const tile::TileMatrix>(std::move(l)));
}

}  // namespace

std::vector<double> standard_deviations(const la::MatrixGenerator& cov) {
  const i64 n = cov.rows();
  std::vector<double> sd(static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i) {
    const double var = cov.entry(i, i);
    PARMVN_EXPECTS(var > 0.0);
    sd[static_cast<std::size_t>(i)] = std::sqrt(var);
  }
  return sd;
}

CholeskyFactor CholeskyFactor::factor(rt::Runtime& rt,
                                      const la::MatrixGenerator& gen,
                                      const FactorSpec& spec) {
  PARMVN_EXPECTS(gen.rows() == gen.cols());
  PARMVN_EXPECTS(spec.tile >= 1);
  PARMVN_EXPECTS(spec.jitter_retries >= 0);
  // Factoring is a full submit…wait_all epoch: serialise it against other
  // host threads sharing `rt` (concurrent cache misses on different keys,
  // concurrent detect_confidence_regions callers).
  const auto epoch = rt.exclusive_epoch();
  PARMVN_FAULT_POINT("engine.factor");
  const i64 n = gen.rows();

  CholeskyFactor f;
  const WallTimer timer;
  switch (spec.kind) {
    case FactorKind::kDense: {
      f.backend_ = build_dense(rt, gen, spec);
      break;
    }
    case FactorKind::kTlr: {
      try {
        tlr::TlrMatrix l = tlr::TlrMatrix::compress(rt, gen, spec.tile,
                                                    spec.tlr_tol,
                                                    spec.tlr_max_rank);
        tlr::potrf_tlr(rt, l);
        f.backend_ = std::make_shared<const TlrBackend>(
            std::make_shared<const tlr::TlrMatrix>(std::move(l)));
      } catch (const Error&) {
        // Persistent non-PD under compression: with the opt-in fallback,
        // take the last rung of the degradation ladder — the exact dense
        // factor of the same matrix (no truncation perturbation to lose
        // definiteness to). Without it the typed error propagates.
        if (!spec.fallback) throw;
        f.backend_ = build_dense(rt, gen, spec);
        f.degraded_ = true;
      }
      break;
    }
    case FactorKind::kVecchia: {
      PARMVN_EXPECTS(spec.vecchia_m >= 1);
      const std::vector<double> xy = gen.coords_xy();
      if (static_cast<i64>(xy.size()) != 2 * n)
        throw Error(
            "CholeskyFactor: the Vecchia kind requires a generator with site "
            "coordinates (la::MatrixGenerator::coords_xy)");
      f.backend_ = std::make_shared<const vecchia::VecchiaBackend>(
          std::make_shared<const vecchia::VecchiaFactor>(
              vecchia::VecchiaFactor::build(rt, gen, xy, spec.tile,
                                            spec.vecchia_m)));
      break;
    }
  }
  f.factor_seconds_ = timer.seconds();
  return f;
}

CholeskyFactor CholeskyFactor::factor_ordered(rt::Runtime& rt,
                                              const la::MatrixGenerator& cov,
                                              std::vector<i64> order,
                                              const FactorSpec& spec,
                                              std::span<const double> sd) {
  const i64 n = cov.rows();
  PARMVN_EXPECTS(cov.cols() == n);
  PARMVN_EXPECTS(static_cast<i64>(order.size()) == n);
  PARMVN_EXPECTS(sd.empty() || static_cast<i64>(sd.size()) == n);

  const geo::CorrelationGenerator corr(cov);
  const geo::PermutedGenerator permuted(corr, order);
  CholeskyFactor f = factor(rt, permuted, spec);

  f.order_ = std::move(order);
  if (sd.empty()) {
    f.sd_ = standard_deviations(cov);
  } else {
    f.sd_.assign(sd.begin(), sd.end());
  }
  return f;
}

CholeskyFactor CholeskyFactor::borrow_dense(const tile::TileMatrix& l) {
  CholeskyFactor f;
  f.backend_ = std::make_shared<const DenseBackend>(borrow(l));
  return f;
}

CholeskyFactor CholeskyFactor::borrow_tlr(const tlr::TlrMatrix& l) {
  CholeskyFactor f;
  f.backend_ = std::make_shared<const TlrBackend>(borrow(l));
  return f;
}

CholeskyFactor CholeskyFactor::borrow_vecchia(const vecchia::VecchiaFactor& l) {
  CholeskyFactor f;
  f.backend_ = std::make_shared<const vecchia::VecchiaBackend>(borrow(l));
  return f;
}

const tile::TileMatrix& CholeskyFactor::dense() const {
  const auto* d = dynamic_cast<const DenseBackend*>(backend_.get());
  PARMVN_EXPECTS(d != nullptr);
  return d->matrix();
}

const tlr::TlrMatrix& CholeskyFactor::tlr() const {
  const auto* t = dynamic_cast<const TlrBackend*>(backend_.get());
  PARMVN_EXPECTS(t != nullptr);
  return t->matrix();
}

const vecchia::VecchiaFactor& CholeskyFactor::vecchia() const {
  const auto* v = dynamic_cast<const vecchia::VecchiaBackend*>(backend_.get());
  PARMVN_EXPECTS(v != nullptr);
  return v->factor();
}

}  // namespace parmvn::engine
