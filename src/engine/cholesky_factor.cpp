#include "engine/cholesky_factor.hpp"

#include <cmath>
#include <utility>

#include "common/contracts.hpp"
#include "common/timer.hpp"
#include "geo/covgen.hpp"
#include "linalg/blas.hpp"
#include "tile/tiled_potrf.hpp"
#include "tlr/lr_tile.hpp"
#include "tlr/tlr_potrf.hpp"

namespace parmvn::engine {

namespace {

// Non-owning shared_ptr: the aliasing constructor with an empty owner leaves
// the control block null, so no deleter ever runs.
template <class T>
std::shared_ptr<const T> borrow(const T& ref) {
  return std::shared_ptr<const T>(std::shared_ptr<const T>{}, &ref);
}

}  // namespace

std::vector<double> standard_deviations(const la::MatrixGenerator& cov) {
  const i64 n = cov.rows();
  std::vector<double> sd(static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i) {
    const double var = cov.entry(i, i);
    PARMVN_EXPECTS(var > 0.0);
    sd[static_cast<std::size_t>(i)] = std::sqrt(var);
  }
  return sd;
}

CholeskyFactor CholeskyFactor::factor(rt::Runtime& rt,
                                      const la::MatrixGenerator& gen,
                                      const FactorSpec& spec) {
  PARMVN_EXPECTS(gen.rows() == gen.cols());
  PARMVN_EXPECTS(spec.tile >= 1);
  const i64 n = gen.rows();

  CholeskyFactor f;
  f.kind_ = spec.kind;
  const WallTimer timer;
  if (spec.kind == FactorKind::kDense) {
    tile::TileMatrix l(rt, n, n, spec.tile, tile::Layout::kLowerSymmetric,
                       "Sigma");
    l.generate_async(rt, gen);
    rt.wait_all();
    tile::potrf_tiled(rt, l);
    f.dense_ = std::make_shared<const tile::TileMatrix>(std::move(l));
  } else {
    tlr::TlrMatrix l = tlr::TlrMatrix::compress(rt, gen, spec.tile,
                                                spec.tlr_tol,
                                                spec.tlr_max_rank);
    tlr::potrf_tlr(rt, l);
    f.tlr_ = std::make_shared<const tlr::TlrMatrix>(std::move(l));
  }
  f.factor_seconds_ = timer.seconds();
  return f;
}

CholeskyFactor CholeskyFactor::factor_ordered(rt::Runtime& rt,
                                              const la::MatrixGenerator& cov,
                                              std::vector<i64> order,
                                              const FactorSpec& spec,
                                              std::span<const double> sd) {
  const i64 n = cov.rows();
  PARMVN_EXPECTS(cov.cols() == n);
  PARMVN_EXPECTS(static_cast<i64>(order.size()) == n);
  PARMVN_EXPECTS(sd.empty() || static_cast<i64>(sd.size()) == n);

  const geo::CorrelationGenerator corr(cov);
  const geo::PermutedGenerator permuted(corr, order);
  CholeskyFactor f = factor(rt, permuted, spec);

  f.order_ = std::move(order);
  if (sd.empty()) {
    f.sd_ = standard_deviations(cov);
  } else {
    f.sd_.assign(sd.begin(), sd.end());
  }
  return f;
}

CholeskyFactor CholeskyFactor::borrow_dense(const tile::TileMatrix& l) {
  PARMVN_EXPECTS(l.layout() == tile::Layout::kLowerSymmetric);
  CholeskyFactor f;
  f.kind_ = FactorKind::kDense;
  f.dense_ = borrow(l);
  return f;
}

CholeskyFactor CholeskyFactor::borrow_tlr(const tlr::TlrMatrix& l) {
  CholeskyFactor f;
  f.kind_ = FactorKind::kTlr;
  f.tlr_ = borrow(l);
  return f;
}

i64 CholeskyFactor::dim() const noexcept {
  return kind_ == FactorKind::kDense ? dense_->rows() : tlr_->dim();
}

i64 CholeskyFactor::tile_size() const noexcept {
  return kind_ == FactorKind::kDense ? dense_->tile_size() : tlr_->tile_size();
}

i64 CholeskyFactor::row_tiles() const noexcept {
  return kind_ == FactorKind::kDense ? dense_->row_tiles() : tlr_->num_tiles();
}

i64 CholeskyFactor::tile_rows(i64 r) const noexcept {
  return kind_ == FactorKind::kDense ? dense_->tile_rows(r)
                                     : tlr_->tile_rows(r);
}

la::ConstMatrixView CholeskyFactor::diag_view(i64 r) const {
  return kind_ == FactorKind::kDense ? dense_->tile(r, r) : tlr_->diag(r);
}

rt::DataHandle CholeskyFactor::diag_handle(i64 r) const {
  return kind_ == FactorKind::kDense ? dense_->handle(r, r)
                                     : tlr_->diag_handle(r);
}

rt::DataHandle CholeskyFactor::off_handle(i64 i, i64 r) const {
  return kind_ == FactorKind::kDense ? dense_->handle(i, r)
                                     : tlr_->lr_handle(i, r);
}

void CholeskyFactor::apply_update(i64 i, i64 r, la::ConstMatrixView y,
                                  la::MatrixView a, la::MatrixView b) const {
  // Panels are sample-contiguous (samples x dims): A -= Y L_ir^T over the
  // (possibly wide, multi-query) panel. Each output element's reduction
  // order in the microkernel depends only on the k extent, so per-sample
  // rows stay bitwise independent of the panel width (the batched==single
  // contract).
  if (kind_ == FactorKind::kDense) {
    la::ConstMatrixView lir = dense_->tile(i, r);
    la::gemm(la::Trans::kNo, la::Trans::kYes, -1.0, y, lir, 1.0, a);
    la::gemm(la::Trans::kNo, la::Trans::kYes, -1.0, y, lir, 1.0, b);
  } else {
    // L_ir = U V^T, so A -= (Y V) U^T with the skinny inner product shared
    // by both targets.
    const tlr::LowRankTile& t = tlr_->lr(i, r);
    la::Matrix tmp(y.rows, t.rank());
    la::gemm(la::Trans::kNo, la::Trans::kNo, 1.0, y, t.v.view(), 0.0,
             tmp.view());
    la::gemm(la::Trans::kNo, la::Trans::kYes, -1.0, tmp.view(), t.u.view(), 1.0,
             a);
    la::gemm(la::Trans::kNo, la::Trans::kYes, -1.0, tmp.view(), t.u.view(), 1.0,
             b);
  }
}

const tile::TileMatrix& CholeskyFactor::dense() const {
  PARMVN_EXPECTS(kind_ == FactorKind::kDense);
  return *dense_;
}

const tlr::TlrMatrix& CholeskyFactor::tlr() const {
  PARMVN_EXPECTS(kind_ == FactorKind::kTlr);
  return *tlr_;
}

}  // namespace parmvn::engine
