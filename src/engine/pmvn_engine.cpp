#include "engine/pmvn_engine.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>
#include <utility>

#include "common/contracts.hpp"
#include "common/fault.hpp"
#include "ep/ep_screen.hpp"
#include "common/timer.hpp"
#include "core/qmc_kernel.hpp"
#include "linalg/matrix.hpp"
#include "runtime/priority.hpp"
#include "vecchia/vecchia_kernel.hpp"

namespace parmvn::engine {

namespace {

// One column tile of the fused batch panel: a tile-width slice of one
// query's samples. Column tiles never straddle queries — that alignment is
// what makes batched arithmetic bitwise identical to single-query runs.
struct ColTile {
  i64 query = 0;    // index into the batch
  i64 sample0 = 0;  // global sample offset within that query's stream
  i64 col0 = 0;     // column offset inside the wide panel
  i64 width = 0;
};

// Decision clearance: the interval mean +/- err lies entirely on one side
// of the threshold. A NaN threshold compares false on both sides, so
// "no decision" falls out without a separate flag.
bool clears_decision(double mean, double err, double decision) {
  return mean - err > decision || mean + err < decision;
}

}  // namespace

void EngineOptions::validate() const {
  const auto reject = [](const std::string& what) {
    throw Error("EngineOptions: " + what);
  };
  if (samples_per_shift < 1) reject("samples_per_shift must be >= 1");
  if (shifts < 1) reject("shifts must be >= 1");
  if (panel_bytes < 1) reject("panel_bytes must be >= 1");
  if (deadline_ms < 0) reject("deadline_ms must be >= 0");
  if (antithetic && shifts % 2 != 0)
    reject("antithetic pairing requires an even shift count");
  if (!(abs_tol >= 0.0) || !std::isfinite(abs_tol))
    reject("abs_tol must be finite and >= 0");
  if (!(ep_margin >= 0.0) || !std::isfinite(ep_margin))
    reject("ep_margin must be finite and >= 0");
  if (adaptive) {
    // The running estimate gates stop decisions, so at least two
    // (independent) blocks are required before the first check.
    if (shifts < 2) reject("adaptive evaluation requires shifts >= 2");
    if (min_shifts < 2 || min_shifts > shifts)
      reject("min_shifts must lie in [2, shifts]");
  }
}

PmvnEngine::PmvnEngine(rt::Runtime& rt,
                       std::shared_ptr<const CholeskyFactor> factor,
                       EngineOptions opts)
    : rt_(rt), factor_(std::move(factor)), opts_(opts) {
  PARMVN_EXPECTS(factor_ != nullptr);
  opts_.validate();
}

QueryResult PmvnEngine::evaluate_one(const LimitSet& query) const {
  std::vector<QueryResult> results = evaluate({&query, 1});
  return std::move(results.front());
}

std::vector<QueryResult> PmvnEngine::evaluate(
    std::span<const LimitSet> queries) const {
  // The whole evaluation (EP screens included — they share the factor's
  // SiteCache and precede the sweep's submit…wait_all rounds) runs as one
  // exclusive epoch, so host threads sharing `rt_` can evaluate
  // concurrently without racing submit() against wait_all().
  const auto epoch = rt_.exclusive_epoch();
  if (!opts_.tiered) return evaluate_qmc(queries);
  const i64 nq = static_cast<i64>(queries.size());
  if (nq == 0) return {};

  const WallTimer screen_timer;
  const double deadline_s = static_cast<double>(opts_.deadline_ms) / 1000.0;
  std::vector<QueryResult> results(static_cast<std::size_t>(nq));
  std::vector<char> retired(static_cast<std::size_t>(nq), 0);
  const double margin = opts_.ep_margin;
  ep::SiteCache& cache = factor_->ep_cache();
  // One screener for the whole batch: the O(nnz) factor-row flatten is
  // query-independent and dominates a single screen's cost at engine sizes.
  std::optional<ep::EpScreener> screener;

  for (i64 q = 0; q < nq; ++q) {
    // The deadline budget covers the screen tier too: once it expires, the
    // remaining queries skip their screens and face it again in the QMC
    // round loop (which always grants them one shift block).
    if (opts_.deadline_ms > 0 && screen_timer.seconds() >= deadline_s) break;
    const LimitSet& query = queries[static_cast<std::size_t>(q)];
    // Only queries carrying a decision threshold can be screened: without
    // one there is nothing for the EP band to decide, so the query goes
    // straight to QMC.
    if (std::isnan(query.decision)) continue;
    ep::EpResult er;
    try {
      if (!screener.has_value()) screener.emplace(factor_->backend());
      ep::EpState state;
      // Warm-start on exact limit repeats only (max_distance 0): a repeat
      // certifies its cached fixed point in one damped sweep, while a merely
      // nearby seed fails the certify and pays the direct solve on top.
      if (std::optional<ep::EpState> hit =
              cache.lookup(query.a, query.b, /*max_distance=*/0.0))
        state = std::move(*hit);
      er = screener->screen(query.a, query.b, {}, &state);
      if (er.converged) cache.store(query.a, query.b, std::move(state));
    } catch (const std::exception&) {
      // A failed screen demotes the query to the authoritative QMC tier —
      // the screen only ever *skips* work, so its failure never aborts the
      // batch or the sibling screens.
      continue;
    }
    if (!er.converged) continue;
    // A non-finite EP estimate cannot be trusted to clear anything: demote
    // to QMC rather than retire on garbage (the prefix walk below likewise
    // refuses non-finite rows, since NaN fails both clearance comparisons).
    if (!std::isfinite(er.logz)) continue;
    // Decision clearance against the EP band. Non-prefix: the scalar
    // probability must sit at least `margin` clear of the threshold.
    // Prefix: walk the (monotone non-increasing) curve; a row at least
    // `margin` below the threshold decides every later row at once, and
    // every row must be decided for the query to retire.
    const double decision = query.decision;
    bool decided;
    if (!query.prefix) {
      const double prob = std::exp(er.logz);
      decided = prob - margin > decision || prob + margin < decision;
    } else {
      decided = true;
      for (const double lz : er.prefix_logz) {
        const double prob = std::exp(lz);
        if (prob + margin < decision) break;  // monotone: rest decided
        if (!(prob - margin > decision)) {
          decided = false;
          break;
        }
      }
    }
    if (!decided) continue;
    QueryResult& res = results[static_cast<std::size_t>(q)];
    res.prob = std::exp(er.logz);
    res.error3sigma = margin;
    res.samples_used = 0;
    res.shifts_used = 0;
    res.converged = true;
    res.method = EvalMethod::kEp;
    if (query.prefix) {
      res.prefix_prob.reserve(er.prefix_logz.size());
      for (const double lz : er.prefix_logz)
        res.prefix_prob.push_back(std::exp(lz));
    }
    retired[static_cast<std::size_t>(q)] = 1;
  }
  const double screen_seconds = screen_timer.seconds();

  // Straddlers (and decision-free queries) run through the untiered QMC
  // sweep as a sub-batch; batch transparency makes their numbers bitwise
  // identical to the full untiered batch.
  std::vector<LimitSet> rest;
  std::vector<i64> rest_idx;
  for (i64 q = 0; q < nq; ++q)
    if (retired[static_cast<std::size_t>(q)] == 0) {
      rest.push_back(queries[static_cast<std::size_t>(q)]);
      rest_idx.push_back(q);
    }
  if (!rest.empty()) {
    std::vector<QueryResult> sub = evaluate_qmc(rest, screen_seconds);
    for (std::size_t i = 0; i < rest_idx.size(); ++i)
      results[static_cast<std::size_t>(rest_idx[i])] = std::move(sub[i]);
  }
  for (i64 q = 0; q < nq; ++q)
    if (retired[static_cast<std::size_t>(q)] != 0)
      results[static_cast<std::size_t>(q)].seconds = screen_seconds;
  return results;
}

std::vector<QueryResult> PmvnEngine::evaluate_qmc(
    std::span<const LimitSet> queries, double elapsed_s) const {
  const WallTimer timer;
  const CholeskyFactor& f = *factor_;
  const i64 n = f.dim();
  const i64 m = f.tile_size();
  const i64 mt = f.row_tiles();
  const i64 nq = static_cast<i64>(queries.size());
  if (nq == 0) return {};
  for (const LimitSet& q : queries) {
    PARMVN_EXPECTS(static_cast<i64>(q.a.size()) == n);
    PARMVN_EXPECTS(static_cast<i64>(q.b.size()) == n);
  }
  const i64 sps = opts_.samples_per_shift;
  const i64 num_samples = opts_.total_samples();

  // One deterministic point set per query, keyed by the query's seed — or
  // by the shared CRN seed, so nearby limit sets (bisection iterates) see
  // common random numbers.
  std::vector<stats::PointSet> pts;
  pts.reserve(static_cast<std::size_t>(nq));
  for (const LimitSet& q : queries)
    pts.emplace_back(opts_.sampler, n, sps, opts_.shifts,
                     opts_.crn ? opts_.crn_seed : q.seed, opts_.antithetic);

  std::vector<std::vector<double>> p(static_cast<std::size_t>(nq));
  for (auto& pq : p) pq.assign(static_cast<std::size_t>(num_samples), 1.0);

  // Per-query prefix accumulators. The fixed-budget path keeps one running
  // length-n total; the adaptive path keeps per-shift sums (n per shift) so
  // every prefix row gets its own block-mean error estimate. Both are
  // addressed through the per-sweep `prefix_target` pointers.
  std::vector<std::vector<double>> prefix_store(static_cast<std::size_t>(nq));
  std::vector<double*> prefix_target(static_cast<std::size_t>(nq), nullptr);

  std::vector<rt::DataAccess> wide_accesses;  // reused across submits

  // One fused sweep of the sample range [s_begin, s_end) for the queries in
  // `active`: the whole-budget loop of the fixed path with the range and the
  // participant set as parameters. Per-sample probability products land in
  // p[q]; range prefix sums land at prefix_target[q] (when non-null).
  const auto sweep_range = [&](std::span<const i64> active, i64 s_begin,
                               i64 s_end) {
    const i64 nact = static_cast<i64>(active.size());
    // Mean-panel backends (Vecchia) drive a different panel protocol: A
    // accumulates the external conditional mean (zero-initialised by
    // allocation, no init tasks), B is unused, and the per-column-tile task
    // chain — already serialised by the probability-product handle — is the
    // only dependency, so no per-pair panel handles or update tasks exist.
    // See engine/factor_backend.hpp.
    const bool meanp = f.mean_panel_form();
    // Per-query panel width: the sweep shares the panel budget (3 matrices
    // of n rows, 8 bytes each), floored at one tile width per query and
    // rounded to a tile multiple. For a 1-element batch this reproduces the
    // single-query decomposition exactly; panelling is exact regardless
    // (sample columns are independent chains, and column-tile boundaries
    // fall at tile multiples for every panel width).
    i64 panel_cols = opts_.panel_bytes / (3 * 8 * n * nact);
    panel_cols = std::max(panel_cols, m);
    panel_cols = (panel_cols / m) * m;

    for (i64 round0 = s_begin; round0 < s_end; round0 += panel_cols) {
      const i64 pc = std::min(panel_cols, s_end - round0);

      // Column-tile map for this round: every active query contributes the
      // same sample range [round0, round0 + pc), sliced into tile-width
      // columns.
      std::vector<ColTile> tiles;
      i64 width = 0;
      for (const i64 q : active) {
        for (i64 c = 0; c < pc; c += m) {
          const i64 w = std::min(m, pc - c);
          tiles.push_back({q, round0 + c, width, w});
          width += w;
        }
      }
      const i64 nct = static_cast<i64>(tiles.size());

      // Shared wide panels: one sample-contiguous (width x tile_rows(r))
      // matrix per tile row for each of A, B, Y — the same layout the QMC
      // integrand sweeps, so the fused propagation GEMMs and the kernel
      // share one panel format (rows = samples of the whole batch, columns =
      // the tile row's dimensions). A/B/Y of one (row, column-tile) are
      // always touched together, so they share a single dependency handle.
      std::vector<la::Matrix> A, B, Y;
      A.reserve(static_cast<std::size_t>(mt));
      B.reserve(static_cast<std::size_t>(mt));
      Y.reserve(static_cast<std::size_t>(mt));
      for (i64 r = 0; r < mt; ++r) {
        const i64 mr = f.tile_rows(r);
        A.emplace_back(width, mr);
        if (!meanp) B.emplace_back(width, mr);
        Y.emplace_back(width, mr);
      }
      std::vector<std::vector<double>> prefix_acc(
          static_cast<std::size_t>(nct));
      for (i64 t = 0; t < nct; ++t)
        if (prefix_target[static_cast<std::size_t>(
                tiles[static_cast<std::size_t>(t)].query)] != nullptr)
          prefix_acc[static_cast<std::size_t>(t)].assign(
              static_cast<std::size_t>(n), 0.0);

      // Handle registration happens inside the try below so that a failure
      // in register_data itself (e.g. bad_alloc growing the runtime's handle
      // table) still reaches release_round for the handles already taken.
      // The vectors are reserved up front, so push_back never throws and
      // every registered handle is recorded.
      std::vector<rt::DataHandle> panel_handles;
      panel_handles.reserve(static_cast<std::size_t>(mt * nct));
      const auto handle = [&](i64 r, i64 t) {
        return panel_handles[static_cast<std::size_t>(r * nct + t)];
      };
      // Per-column-tile probability products (and prefix accumulators) are
      // written by every tile row's QMC task; their own handle keeps that
      // chain explicit even though the A/B/Y data flow already orders it.
      std::vector<rt::DataHandle> p_handles;
      p_handles.reserve(static_cast<std::size_t>(nct));

      // The round's panel/p handles must go back to the runtime on every
      // exit path (a long-lived serving runtime's handle table stays
      // bounded), and may only be released once the epoch has drained —
      // wait_all() drains before rethrowing a task error, and the catch
      // below drains first when a submit itself throws (e.g. handle
      // validation) with earlier tasks still in flight.
      const auto release_round = [&] {
        for (const rt::DataHandle h : panel_handles) rt_.release_data(h);
        for (const rt::DataHandle h : p_handles) rt_.release_data(h);
      };
      try {
        if (!meanp)
          for (i64 k = 0; k < mt * nct; ++k) {
            PARMVN_FAULT_POINT("engine.register");
            panel_handles.push_back(rt_.register_data());
          }
        for (i64 t = 0; t < nct; ++t) p_handles.push_back(rt_.register_data());
        // Initialise A/B with the replicated per-query limit vectors (lines
        // 2-3 of Algorithm 2), one task per (tile row, column tile).
        // Mean-panel backends skip this: their A panel starts at zero (the
        // allocation already zero-fills on the host thread) and the limits
        // reach the kernel as per-dimension spans instead.
        for (i64 r = 0; !meanp && r < mt; ++r) {
          const i64 mr = f.tile_rows(r);
          const i64 row0 = r * m;
          for (i64 t = 0; t < nct; ++t) {
            const ColTile& ct = tiles[static_cast<std::size_t>(t)];
            la::MatrixView at = A[static_cast<std::size_t>(r)].sub(
                ct.col0, 0, ct.width, mr);
            la::MatrixView bt = B[static_cast<std::size_t>(r)].sub(
                ct.col0, 0, ct.width, mr);
            const LimitSet& q = queries[static_cast<std::size_t>(ct.query)];
            const std::span<const double> qa = q.a;
            const std::span<const double> qb = q.b;
            rt_.submit("pmvn_init", {{handle(r, t), rt::Access::kWrite}},
                       [at, bt, row0, qa, qb] {
                         PARMVN_FAULT_POINT("engine.panel_init");
                         // Sample-contiguous panels: replicate each limit
                         // down its dimension's (contiguous) column.
                         for (i64 i = 0; i < at.cols; ++i) {
                           const double va =
                               qa[static_cast<std::size_t>(row0 + i)];
                           const double vb =
                               qb[static_cast<std::size_t>(row0 + i)];
                           double* __restrict ac = at.col(i);
                           double* __restrict bc = bt.col(i);
                           for (i64 j = 0; j < at.rows; ++j) {
                             ac[j] = va;
                             bc[j] = vb;
                           }
                         }
                       });
          }
        }

        // The sweep: QMC on tile row r per column tile, then one wide
        // propagation GEMM per (i, r) pair spanning the whole batch.
        for (i64 r = 0; r < mt; ++r) {
          const i64 mr = f.tile_rows(r);
          const i64 row0 = r * m;
          la::ConstMatrixView lrr = f.diag_view(r);
          for (i64 t = 0; t < nct; ++t) {
            const ColTile& ct = tiles[static_cast<std::size_t>(t)];
            la::MatrixView at = A[static_cast<std::size_t>(r)].sub(
                ct.col0, 0, ct.width, mr);
            la::MatrixView yt = Y[static_cast<std::size_t>(r)].sub(
                ct.col0, 0, ct.width, mr);
            const stats::PointSet* ps =
                &pts[static_cast<std::size_t>(ct.query)];
            double* pk =
                p[static_cast<std::size_t>(ct.query)].data() + ct.sample0;
            double* acc = prefix_acc[static_cast<std::size_t>(t)].empty()
                              ? nullptr
                              : prefix_acc[static_cast<std::size_t>(t)].data() +
                                    row0;
            const i64 sample0 = ct.sample0;
            if (meanp) {
              // Mean-panel integrand: fold the cross-tile regression
              // contributions into this row's mean tile (reading earlier Y
              // tiles of the same column tile, completed by this chain),
              // then run the Vecchia chain step. The probability-product
              // handle serialises the whole per-column-tile chain.
              const LimitSet& q = queries[static_cast<std::size_t>(ct.query)];
              const std::span<const double> qa =
                  q.a.subspan(static_cast<std::size_t>(row0),
                              static_cast<std::size_t>(mr));
              const std::span<const double> qb =
                  q.b.subspan(static_cast<std::size_t>(row0),
                              static_cast<std::size_t>(mr));
              const FactorBackend* fb = &f.backend();
              const std::vector<la::Matrix>* yall = &Y;
              const i64 col0 = ct.col0;
              const i64 cw = ct.width;
              rt_.submit("vecchia_qmc",
                         {{f.diag_handle(r), rt::Access::kRead},
                          {p_handles[static_cast<std::size_t>(t)],
                           rt::Access::kReadWrite}},
                         [fb, r, lrr, ps, row0, sample0, qa, qb, at, yt, pk,
                          acc, yall, col0, cw] {
                           fb->accumulate_external(r, *yall, col0, cw, at);
                           vecchia::vecchia_tile_kernel(lrr, *ps, row0,
                                                        sample0, qa, qb, at,
                                                        yt, pk, acc);
                         },
                         rt::kPrioSweep);
              continue;
            }
            la::ConstMatrixView bt = B[static_cast<std::size_t>(r)].sub(
                ct.col0, 0, ct.width, mr);
            la::ConstMatrixView atc = at;
            rt_.submit("qmc",
                       {{f.diag_handle(r), rt::Access::kRead},
                        {handle(r, t), rt::Access::kReadWrite},
                        {p_handles[static_cast<std::size_t>(t)],
                         rt::Access::kReadWrite}},
                       [lrr, ps, row0, sample0, atc, bt, yt, pk, acc] {
                         PARMVN_FAULT_POINT("engine.qmc");
                         core::qmc_tile_kernel(lrr, *ps, row0, sample0, atc,
                                               bt, yt, pk, acc);
                       },
                       rt::kPrioSweep);
          }
          for (i64 i = r + 1; !meanp && i < mt; ++i) {
            const i64 mi = f.tile_rows(i);
            la::ConstMatrixView yw = Y[static_cast<std::size_t>(r)].sub(
                0, 0, width, mr);
            la::MatrixView aw = A[static_cast<std::size_t>(i)].sub(0, 0, width,
                                                                   mi);
            la::MatrixView bw = B[static_cast<std::size_t>(i)].sub(0, 0, width,
                                                                   mi);
            wide_accesses.clear();
            wide_accesses.push_back({f.off_handle(i, r), rt::Access::kRead});
            for (i64 t = 0; t < nct; ++t) {
              wide_accesses.push_back({handle(r, t), rt::Access::kRead});
              wide_accesses.push_back({handle(i, t), rt::Access::kReadWrite});
            }
            const CholeskyFactor* fp = factor_.get();
            // Host-side submit failure with earlier tasks already in flight:
            // the catch below must drain them before releasing handles.
            PARMVN_FAULT_POINT("engine.submit");
            // The i == r+1 update feeds the next tile row's QMC tasks
            // directly — the sweep's critical path — so it shares the QMC
            // lane; the remaining updates trail (same weighting as the
            // factorizations, see runtime/priority.hpp).
            rt_.submit("pmvn_update", wide_accesses,
                       [fp, i, r, yw, aw, bw] {
                         fp->apply_update(i, r, yw, aw, bw);
                       },
                       i == r + 1 ? rt::kPrioSweep : rt::kPrioUpdate);
          }
        }
        rt_.wait_all();
      } catch (...) {
        // Drain whatever was already submitted (swallowing any secondary
        // task error — the original exception is what propagates), then
        // release.
        try {
          rt_.wait_all();
        } catch (...) {  // NOLINT(bugprone-empty-catch)
        }
        release_round();
        throw;
      }

      // Fold this round's prefix sums into the per-query targets, in
      // ascending column-tile (== ascending sample) order so the
      // accumulation order is independent of the panelling.
      for (i64 t = 0; t < nct; ++t) {
        const std::vector<double>& acc =
            prefix_acc[static_cast<std::size_t>(t)];
        if (acc.empty()) continue;
        double* total = prefix_target[static_cast<std::size_t>(
            tiles[static_cast<std::size_t>(t)].query)];
        for (i64 i = 0; i < n; ++i)
          total[i] += acc[static_cast<std::size_t>(i)];
      }
      release_round();
    }
  };

  // Block estimate over the first `done` shifts of query q, pair-merged in
  // antithetic mode (pair members are dependent — see stats/qmc.hpp).
  const auto block_estimate = [&](i64 q, int done) {
    const std::vector<double>& pq = p[static_cast<std::size_t>(q)];
    std::vector<double> means(static_cast<std::size_t>(done), 0.0);
    for (i64 s = 0; s < static_cast<i64>(done) * sps; ++s)
      means[static_cast<std::size_t>(
          pts[static_cast<std::size_t>(q)].shift_of(s))] +=
          pq[static_cast<std::size_t>(s)];
    for (double& mean : means) mean /= static_cast<double>(sps);
    if (opts_.antithetic) means = stats::merge_antithetic_pairs(means);
    return stats::combine_block_means(means);
  };

  std::vector<QueryResult> results(static_cast<std::size_t>(nq));

  // A deadline routes the fixed-budget sweep through the round loop below
  // (one shift block at a time, deadline checked between rounds on the host
  // thread); without one, the fixed path stays bitwise untouched.
  const bool deadline_on = opts_.deadline_ms > 0;
  const double deadline_s = static_cast<double>(opts_.deadline_ms) / 1000.0;

  if (!opts_.adaptive && !deadline_on) {
    // Fixed budget: one sweep over the whole stream for every query — the
    // pre-adaptive code path, bitwise preserved (antithetic off).
    std::vector<i64> all(static_cast<std::size_t>(nq));
    std::iota(all.begin(), all.end(), i64{0});
    for (i64 q = 0; q < nq; ++q)
      if (queries[static_cast<std::size_t>(q)].prefix) {
        prefix_store[static_cast<std::size_t>(q)].assign(
            static_cast<std::size_t>(n), 0.0);
        prefix_target[static_cast<std::size_t>(q)] =
            prefix_store[static_cast<std::size_t>(q)].data();
      }
    sweep_range(all, 0, num_samples);

    const double batch_seconds = timer.seconds();
    for (i64 q = 0; q < nq; ++q) {
      const stats::BlockEstimate est = block_estimate(q, opts_.shifts);
      QueryResult& res = results[static_cast<std::size_t>(q)];
      res.prob = est.mean;
      res.error3sigma = est.error3sigma;
      res.seconds = batch_seconds;
      res.samples_used = num_samples;
      res.shifts_used = opts_.shifts;
      if (queries[static_cast<std::size_t>(q)].prefix) {
        res.prefix_prob = std::move(prefix_store[static_cast<std::size_t>(q)]);
        const double inv = 1.0 / static_cast<double>(num_samples);
        for (double& v : res.prefix_prob) v *= inv;
      }
    }
    return results;
  }

  // Round mode (adaptive and/or deadline-bounded): one shift block (one
  // antithetic pair) per round across the still-active queries, retiring
  // each query independently once its criterion is met — error3sigma <=
  // abs_tol, or the decision threshold cleanly cleared (adaptive only) —
  // or en masse when the deadline expires. All stop decisions run here on
  // the host thread from deterministic block sums, so the adaptive round
  // schedule (and therefore every result bit) is identical across worker
  // counts and scheduler arms; deadline stops are time-dependent and
  // exempt (see ROADMAP).
  const int step = opts_.antithetic ? 2 : 1;
  // First stop check no earlier than min_shifts, rounded up to whole rounds.
  const int first_check = ((opts_.min_shifts + step - 1) / step) * step;

  for (i64 q = 0; q < nq; ++q)
    if (queries[static_cast<std::size_t>(q)].prefix)
      prefix_store[static_cast<std::size_t>(q)].assign(
          static_cast<std::size_t>(n * opts_.shifts), 0.0);

  // A prefix query retires only when every prefix row meets the budget or
  // clears the decision — the confidence-region envelope is a running min
  // of these rows, so row-wise clearance implies the envelope's side cannot
  // flip with more samples inside the error model. The true prefix sequence
  // is non-increasing (each SOV factor is a probability in [0,1]), so the
  // first row whose interval lies cleanly *below* the decision decides
  // every later row at once.
  const auto prefix_decided = [&](i64 q, int done) {
    const double decision = queries[static_cast<std::size_t>(q)].decision;
    const std::vector<double>& store =
        prefix_store[static_cast<std::size_t>(q)];
    for (i64 i = 0; i < n; ++i) {
      std::vector<double> means(static_cast<std::size_t>(done), 0.0);
      for (int s = 0; s < done; ++s)
        means[static_cast<std::size_t>(s)] =
            store[static_cast<std::size_t>(static_cast<i64>(s) * n + i)] /
            static_cast<double>(sps);
      if (opts_.antithetic) means = stats::merge_antithetic_pairs(means);
      const stats::BlockEstimate est = stats::combine_block_means(means);
      if (est.mean + est.error3sigma < decision) return true;
      const bool ok =
          (opts_.abs_tol > 0.0 && est.error3sigma <= opts_.abs_tol) ||
          (est.mean - est.error3sigma > decision);
      if (!ok) return false;
    }
    return true;
  };

  std::vector<i64> active(static_cast<std::size_t>(nq));
  std::iota(active.begin(), active.end(), i64{0});
  std::vector<int> shifts_done(static_cast<std::size_t>(nq), 0);
  std::vector<char> converged(static_cast<std::size_t>(nq), 0);
  std::vector<char> deadline_hit(static_cast<std::size_t>(nq), 0);

  while (!active.empty()) {
    // All active queries have advanced in lockstep: one shared shift index.
    const int s = shifts_done[static_cast<std::size_t>(active.front())];
    // Deadline check between rounds — but only after the first round, so
    // every query retires with at least one shift block behind its estimate
    // (a deadline result is a partial answer, never an empty one).
    if (deadline_on && s > 0 && timer.seconds() + elapsed_s >= deadline_s) {
      for (const i64 qi : active)
        deadline_hit[static_cast<std::size_t>(qi)] = 1;
      break;
    }
    for (int k = 0; k < step; ++k) {
      for (const i64 qi : active)
        prefix_target[static_cast<std::size_t>(qi)] =
            queries[static_cast<std::size_t>(qi)].prefix
                ? prefix_store[static_cast<std::size_t>(qi)].data() +
                      static_cast<i64>(s + k) * n
                : nullptr;
      sweep_range(active, static_cast<i64>(s + k) * sps,
                  static_cast<i64>(s + k + 1) * sps);
    }
    std::vector<i64> still;
    still.reserve(active.size());
    for (const i64 qi : active) {
      shifts_done[static_cast<std::size_t>(qi)] += step;
      const int done = shifts_done[static_cast<std::size_t>(qi)];
      // Early-stop checks belong to adaptive mode only: a deadline-bounded
      // fixed-budget run sweeps every block the clock allows.
      if (opts_.adaptive && done >= first_check) {
        bool stop;
        if (queries[static_cast<std::size_t>(qi)].prefix) {
          stop = prefix_decided(qi, done);
        } else {
          const stats::BlockEstimate est = block_estimate(qi, done);
          stop = (opts_.abs_tol > 0.0 && est.error3sigma <= opts_.abs_tol) ||
                 clears_decision(est.mean, est.error3sigma,
                                 queries[static_cast<std::size_t>(qi)].decision);
        }
        if (stop) {
          converged[static_cast<std::size_t>(qi)] = 1;
          continue;
        }
      }
      if (done < opts_.shifts) still.push_back(qi);
    }
    active = std::move(still);
  }

  const double batch_seconds = timer.seconds();
  for (i64 q = 0; q < nq; ++q) {
    const int done = shifts_done[static_cast<std::size_t>(q)];
    const stats::BlockEstimate est = block_estimate(q, done);
    QueryResult& res = results[static_cast<std::size_t>(q)];
    res.prob = est.mean;
    res.error3sigma = est.error3sigma;
    res.seconds = batch_seconds;
    res.samples_used = static_cast<i64>(done) * sps;
    res.shifts_used = done;
    res.converged = converged[static_cast<std::size_t>(q)] != 0;
    res.method = deadline_hit[static_cast<std::size_t>(q)] != 0
                     ? EvalMethod::kDeadline
                     : EvalMethod::kQmc;
    if (queries[static_cast<std::size_t>(q)].prefix) {
      // Fold per-shift prefix sums in ascending shift order, then normalise
      // by the samples this query actually evaluated.
      res.prefix_prob.assign(static_cast<std::size_t>(n), 0.0);
      const std::vector<double>& store =
          prefix_store[static_cast<std::size_t>(q)];
      for (int sft = 0; sft < done; ++sft)
        for (i64 i = 0; i < n; ++i)
          res.prefix_prob[static_cast<std::size_t>(i)] +=
              store[static_cast<std::size_t>(static_cast<i64>(sft) * n + i)];
      const double inv = 1.0 / static_cast<double>(res.samples_used);
      for (double& v : res.prefix_prob) v *= inv;
    }
  }
  return results;
}

}  // namespace parmvn::engine
