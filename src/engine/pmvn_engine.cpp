#include "engine/pmvn_engine.hpp"

#include <algorithm>
#include <utility>

#include "common/contracts.hpp"
#include "common/timer.hpp"
#include "core/qmc_kernel.hpp"
#include "linalg/matrix.hpp"
#include "runtime/priority.hpp"

namespace parmvn::engine {

namespace {

// One column tile of the fused batch panel: a tile-width slice of one
// query's samples. Column tiles never straddle queries — that alignment is
// what makes batched arithmetic bitwise identical to single-query runs.
struct ColTile {
  i64 query = 0;    // index into the batch
  i64 sample0 = 0;  // global sample offset within that query's stream
  i64 col0 = 0;     // column offset inside the wide panel
  i64 width = 0;
};

}  // namespace

PmvnEngine::PmvnEngine(rt::Runtime& rt,
                       std::shared_ptr<const CholeskyFactor> factor,
                       EngineOptions opts)
    : rt_(rt), factor_(std::move(factor)), opts_(opts) {
  PARMVN_EXPECTS(factor_ != nullptr);
  PARMVN_EXPECTS(opts_.samples_per_shift >= 1 && opts_.shifts >= 1);
}

QueryResult PmvnEngine::evaluate_one(const LimitSet& query) const {
  std::vector<QueryResult> results = evaluate({&query, 1});
  return std::move(results.front());
}

std::vector<QueryResult> PmvnEngine::evaluate(
    std::span<const LimitSet> queries) const {
  const WallTimer timer;
  const CholeskyFactor& f = *factor_;
  const i64 n = f.dim();
  const i64 m = f.tile_size();
  const i64 mt = f.row_tiles();
  const i64 nq = static_cast<i64>(queries.size());
  if (nq == 0) return {};
  for (const LimitSet& q : queries) {
    PARMVN_EXPECTS(static_cast<i64>(q.a.size()) == n);
    PARMVN_EXPECTS(static_cast<i64>(q.b.size()) == n);
  }
  const i64 num_samples = opts_.total_samples();

  // One deterministic point set per query, keyed by the query's seed.
  std::vector<stats::PointSet> pts;
  pts.reserve(static_cast<std::size_t>(nq));
  for (const LimitSet& q : queries)
    pts.emplace_back(opts_.sampler, n, opts_.samples_per_shift, opts_.shifts,
                     q.seed);

  // Per-query panel width: the batch shares the panel budget (3 matrices of
  // n rows, 8 bytes each), floored at one tile width per query and rounded
  // to a tile multiple. For a 1-element batch this reproduces the
  // single-query decomposition exactly; panelling is exact regardless
  // (sample columns are independent chains, and column-tile boundaries fall
  // at tile multiples for every panel width).
  i64 panel_cols = opts_.panel_bytes / (3 * 8 * n * nq);
  panel_cols = std::max(panel_cols, m);
  panel_cols = (panel_cols / m) * m;

  std::vector<std::vector<double>> p(static_cast<std::size_t>(nq));
  for (auto& pq : p) pq.assign(static_cast<std::size_t>(num_samples), 1.0);
  std::vector<std::vector<double>> prefix_total(static_cast<std::size_t>(nq));
  for (i64 q = 0; q < nq; ++q)
    if (queries[static_cast<std::size_t>(q)].prefix)
      prefix_total[static_cast<std::size_t>(q)].assign(
          static_cast<std::size_t>(n), 0.0);

  std::vector<rt::DataAccess> wide_accesses;  // reused across submits

  for (i64 round0 = 0; round0 < num_samples; round0 += panel_cols) {
    const i64 pc = std::min(panel_cols, num_samples - round0);

    // Column-tile map for this round: every query contributes the same
    // sample range [round0, round0 + pc), sliced into tile-width columns.
    std::vector<ColTile> tiles;
    i64 width = 0;
    for (i64 q = 0; q < nq; ++q) {
      for (i64 c = 0; c < pc; c += m) {
        const i64 w = std::min(m, pc - c);
        tiles.push_back({q, round0 + c, width, w});
        width += w;
      }
    }
    const i64 nct = static_cast<i64>(tiles.size());

    // Shared wide panels: one sample-contiguous (width x tile_rows(r))
    // matrix per tile row for each of A, B, Y — the same layout the QMC
    // integrand sweeps, so the fused propagation GEMMs and the kernel share
    // one panel format (rows = samples of the whole batch, columns = the
    // tile row's dimensions). A/B/Y of one (row, column-tile) are always
    // touched together, so they share a single dependency handle.
    std::vector<la::Matrix> A, B, Y;
    A.reserve(static_cast<std::size_t>(mt));
    B.reserve(static_cast<std::size_t>(mt));
    Y.reserve(static_cast<std::size_t>(mt));
    for (i64 r = 0; r < mt; ++r) {
      const i64 mr = f.tile_rows(r);
      A.emplace_back(width, mr);
      B.emplace_back(width, mr);
      Y.emplace_back(width, mr);
    }
    std::vector<std::vector<double>> prefix_acc(
        static_cast<std::size_t>(nct));
    for (i64 t = 0; t < nct; ++t)
      if (queries[static_cast<std::size_t>(tiles[static_cast<std::size_t>(t)]
                                               .query)]
              .prefix)
        prefix_acc[static_cast<std::size_t>(t)].assign(
            static_cast<std::size_t>(n), 0.0);

    // Handle registration happens inside the try below so that a failure in
    // register_data itself (e.g. bad_alloc growing the runtime's handle
    // table) still reaches release_round for the handles already taken. The
    // vectors are reserved up front, so push_back never throws and every
    // registered handle is recorded.
    std::vector<rt::DataHandle> panel_handles;
    panel_handles.reserve(static_cast<std::size_t>(mt * nct));
    const auto handle = [&](i64 r, i64 t) {
      return panel_handles[static_cast<std::size_t>(r * nct + t)];
    };
    // Per-column-tile probability products (and prefix accumulators) are
    // written by every tile row's QMC task; their own handle keeps that
    // chain explicit even though the A/B/Y data flow already orders it.
    std::vector<rt::DataHandle> p_handles;
    p_handles.reserve(static_cast<std::size_t>(nct));

    // The round's panel/p handles must go back to the runtime on every exit
    // path (a long-lived serving runtime's handle table stays bounded), and
    // may only be released once the epoch has drained — wait_all() drains
    // before rethrowing a task error, and the catch below drains first when
    // a submit itself throws (e.g. handle validation) with earlier tasks
    // still in flight.
    const auto release_round = [&] {
      for (const rt::DataHandle h : panel_handles) rt_.release_data(h);
      for (const rt::DataHandle h : p_handles) rt_.release_data(h);
    };
    try {
      for (i64 k = 0; k < mt * nct; ++k)
        panel_handles.push_back(rt_.register_data());
      for (i64 t = 0; t < nct; ++t) p_handles.push_back(rt_.register_data());
      // Initialise A/B with the replicated per-query limit vectors (lines 2-3
      // of Algorithm 2), one task per (tile row, column tile).
      for (i64 r = 0; r < mt; ++r) {
        const i64 mr = f.tile_rows(r);
        const i64 row0 = r * m;
        for (i64 t = 0; t < nct; ++t) {
          const ColTile& ct = tiles[static_cast<std::size_t>(t)];
          la::MatrixView at = A[static_cast<std::size_t>(r)].sub(ct.col0, 0,
                                                                 ct.width, mr);
          la::MatrixView bt = B[static_cast<std::size_t>(r)].sub(ct.col0, 0,
                                                                 ct.width, mr);
          const LimitSet& q = queries[static_cast<std::size_t>(ct.query)];
          const std::span<const double> qa = q.a;
          const std::span<const double> qb = q.b;
          rt_.submit("pmvn_init", {{handle(r, t), rt::Access::kWrite}},
                     [at, bt, row0, qa, qb] {
                       // Sample-contiguous panels: replicate each limit down
                       // its dimension's (contiguous) column.
                       for (i64 i = 0; i < at.cols; ++i) {
                         const double va = qa[static_cast<std::size_t>(row0 + i)];
                         const double vb = qb[static_cast<std::size_t>(row0 + i)];
                         double* __restrict ac = at.col(i);
                         double* __restrict bc = bt.col(i);
                         for (i64 j = 0; j < at.rows; ++j) {
                           ac[j] = va;
                           bc[j] = vb;
                         }
                       }
                     });
        }
      }

      // The sweep: QMC on tile row r per column tile, then one wide
      // propagation GEMM per (i, r) pair spanning the whole batch.
      for (i64 r = 0; r < mt; ++r) {
        const i64 mr = f.tile_rows(r);
        const i64 row0 = r * m;
        la::ConstMatrixView lrr = f.diag_view(r);
        for (i64 t = 0; t < nct; ++t) {
          const ColTile& ct = tiles[static_cast<std::size_t>(t)];
          la::ConstMatrixView at = A[static_cast<std::size_t>(r)].sub(
              ct.col0, 0, ct.width, mr);
          la::ConstMatrixView bt = B[static_cast<std::size_t>(r)].sub(
              ct.col0, 0, ct.width, mr);
          la::MatrixView yt = Y[static_cast<std::size_t>(r)].sub(ct.col0, 0,
                                                                 ct.width, mr);
          const stats::PointSet* ps = &pts[static_cast<std::size_t>(ct.query)];
          double* pk = p[static_cast<std::size_t>(ct.query)].data() + ct.sample0;
          double* acc = prefix_acc[static_cast<std::size_t>(t)].empty()
                            ? nullptr
                            : prefix_acc[static_cast<std::size_t>(t)].data() +
                                  row0;
          const i64 sample0 = ct.sample0;
          rt_.submit("qmc",
                     {{f.diag_handle(r), rt::Access::kRead},
                      {handle(r, t), rt::Access::kReadWrite},
                      {p_handles[static_cast<std::size_t>(t)],
                       rt::Access::kReadWrite}},
                     [lrr, ps, row0, sample0, at, bt, yt, pk, acc] {
                       core::qmc_tile_kernel(lrr, *ps, row0, sample0, at, bt, yt,
                                             pk, acc);
                     },
                     rt::kPrioSweep);
        }
        for (i64 i = r + 1; i < mt; ++i) {
          const i64 mi = f.tile_rows(i);
          la::ConstMatrixView yw = Y[static_cast<std::size_t>(r)].sub(0, 0,
                                                                      width, mr);
          la::MatrixView aw = A[static_cast<std::size_t>(i)].sub(0, 0, width,
                                                                 mi);
          la::MatrixView bw = B[static_cast<std::size_t>(i)].sub(0, 0, width,
                                                                 mi);
          wide_accesses.clear();
          wide_accesses.push_back({f.off_handle(i, r), rt::Access::kRead});
          for (i64 t = 0; t < nct; ++t) {
            wide_accesses.push_back({handle(r, t), rt::Access::kRead});
            wide_accesses.push_back({handle(i, t), rt::Access::kReadWrite});
          }
          const CholeskyFactor* fp = factor_.get();
          // The i == r+1 update feeds the next tile row's QMC tasks
          // directly — the sweep's critical path — so it shares the QMC
          // lane; the remaining updates trail (same weighting as the
          // factorizations, see runtime/priority.hpp).
          rt_.submit("pmvn_update", wide_accesses,
                     [fp, i, r, yw, aw, bw] {
                       fp->apply_update(i, r, yw, aw, bw);
                     },
                     i == r + 1 ? rt::kPrioSweep : rt::kPrioUpdate);
        }
      }
      rt_.wait_all();
    } catch (...) {
      // Drain whatever was already submitted (swallowing any secondary task
      // error — the original exception is what propagates), then release.
      try {
        rt_.wait_all();
      } catch (...) {  // NOLINT(bugprone-empty-catch)
      }
      release_round();
      throw;
    }

    // Fold this round's prefix sums into the per-query totals, in ascending
    // column-tile (== ascending sample) order so the accumulation order is
    // independent of the panelling.
    for (i64 t = 0; t < nct; ++t) {
      const std::vector<double>& acc = prefix_acc[static_cast<std::size_t>(t)];
      if (acc.empty()) continue;
      std::vector<double>& total =
          prefix_total[static_cast<std::size_t>(
              tiles[static_cast<std::size_t>(t)].query)];
      for (i64 i = 0; i < n; ++i)
        total[static_cast<std::size_t>(i)] += acc[static_cast<std::size_t>(i)];
    }
    release_round();
  }

  // Per-query shift-block means -> estimate + error.
  std::vector<QueryResult> results(static_cast<std::size_t>(nq));
  const double batch_seconds = timer.seconds();
  for (i64 q = 0; q < nq; ++q) {
    const std::vector<double>& pq = p[static_cast<std::size_t>(q)];
    std::vector<double> block_means(static_cast<std::size_t>(opts_.shifts),
                                    0.0);
    for (i64 s = 0; s < num_samples; ++s)
      block_means[static_cast<std::size_t>(
          pts[static_cast<std::size_t>(q)].shift_of(s))] +=
          pq[static_cast<std::size_t>(s)];
    for (double& mean : block_means)
      mean /= static_cast<double>(opts_.samples_per_shift);
    const stats::BlockEstimate est = stats::combine_block_means(block_means);

    QueryResult& res = results[static_cast<std::size_t>(q)];
    res.prob = est.mean;
    res.error3sigma = est.error3sigma;
    res.seconds = batch_seconds;
    if (queries[static_cast<std::size_t>(q)].prefix) {
      res.prefix_prob = std::move(prefix_total[static_cast<std::size_t>(q)]);
      const double inv = 1.0 / static_cast<double>(num_samples);
      for (double& v : res.prefix_prob) v *= inv;
    }
  }
  return results;
}

}  // namespace parmvn::engine
