#include "engine/dense_backend.hpp"

#include "linalg/blas.hpp"

namespace parmvn::engine {

void DenseBackend::apply_update(i64 i, i64 r, la::ConstMatrixView y,
                                la::MatrixView a, la::MatrixView b) const {
  // Panels are sample-contiguous (samples x dims): A -= Y L_ir^T over the
  // (possibly wide, multi-query) panel. Each output element's reduction
  // order in the microkernel depends only on the k extent, so per-sample
  // rows stay bitwise independent of the panel width (the batched==single
  // contract).
  la::ConstMatrixView lir = l_->tile(i, r);
  la::gemm(la::Trans::kNo, la::Trans::kYes, -1.0, y, lir, 1.0, a);
  la::gemm(la::Trans::kNo, la::Trans::kYes, -1.0, y, lir, 1.0, b);
}

double DenseBackend::ep_row(
    i64 k, std::vector<std::pair<i64, double>>& parents) const {
  parents.clear();
  const i64 m = l_->tile_size();
  const i64 kt = k / m;
  const i64 l = k % m;
  for (i64 r = 0; r < kt; ++r) {
    const la::ConstMatrixView t = l_->tile(kt, r);
    for (i64 c = 0; c < t.cols; ++c) {
      const double w = t(l, c);
      if (w != 0.0) parents.emplace_back(r * m + c, w);
    }
  }
  const la::ConstMatrixView diag = l_->tile(kt, kt);
  for (i64 c = 0; c < l; ++c) {
    const double w = diag(l, c);
    if (w != 0.0) parents.emplace_back(kt * m + c, w);
  }
  return diag(l, l);
}

}  // namespace parmvn::engine
