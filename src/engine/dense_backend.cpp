#include "engine/dense_backend.hpp"

#include "linalg/blas.hpp"

namespace parmvn::engine {

void DenseBackend::apply_update(i64 i, i64 r, la::ConstMatrixView y,
                                la::MatrixView a, la::MatrixView b) const {
  // Panels are sample-contiguous (samples x dims): A -= Y L_ir^T over the
  // (possibly wide, multi-query) panel. Each output element's reduction
  // order in the microkernel depends only on the k extent, so per-sample
  // rows stay bitwise independent of the panel width (the batched==single
  // contract).
  la::ConstMatrixView lir = l_->tile(i, r);
  la::gemm(la::Trans::kNo, la::Trans::kYes, -1.0, y, lir, 1.0, a);
  la::gemm(la::Trans::kNo, la::Trans::kYes, -1.0, y, lir, 1.0, b);
}

}  // namespace parmvn::engine
