// Dense-tiled factor backend: a thin adapter exposing tile::TileMatrix
// through the FactorBackend sweep vocabulary (reduced-limit protocol).
#pragma once

#include <memory>
#include <utility>

#include "engine/factor_backend.hpp"
#include "tile/tile_matrix.hpp"

namespace parmvn::engine {

class DenseBackend final : public FactorBackend {
 public:
  explicit DenseBackend(std::shared_ptr<const tile::TileMatrix> l)
      : l_(std::move(l)) {
    PARMVN_EXPECTS(l_ != nullptr);
    PARMVN_EXPECTS(l_->layout() == tile::Layout::kLowerSymmetric);
  }

  [[nodiscard]] FactorKind kind() const noexcept override {
    return FactorKind::kDense;
  }
  [[nodiscard]] i64 dim() const noexcept override { return l_->rows(); }
  [[nodiscard]] i64 tile_size() const noexcept override {
    return l_->tile_size();
  }
  [[nodiscard]] i64 row_tiles() const noexcept override {
    return l_->row_tiles();
  }
  [[nodiscard]] i64 tile_rows(i64 r) const noexcept override {
    return l_->tile_rows(r);
  }

  [[nodiscard]] la::ConstMatrixView diag_view(i64 r) const override {
    return l_->tile(r, r);
  }
  [[nodiscard]] rt::DataHandle diag_handle(i64 r) const override {
    return l_->handle(r, r);
  }
  [[nodiscard]] rt::DataHandle off_handle(i64 i, i64 r) const override {
    return l_->handle(i, r);
  }

  void apply_update(i64 i, i64 r, la::ConstMatrixView y, la::MatrixView a,
                    la::MatrixView b) const override;

  double ep_row(i64 k,
                std::vector<std::pair<i64, double>>& parents) const override;

  [[nodiscard]] const tile::TileMatrix& matrix() const noexcept { return *l_; }

 private:
  std::shared_ptr<const tile::TileMatrix> l_;
};

}  // namespace parmvn::engine
