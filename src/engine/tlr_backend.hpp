// TLR factor backend: a thin adapter exposing tlr::TlrMatrix through the
// FactorBackend sweep vocabulary (reduced-limit protocol).
#pragma once

#include <memory>
#include <utility>

#include "engine/factor_backend.hpp"
#include "tlr/tlr_matrix.hpp"

namespace parmvn::engine {

class TlrBackend final : public FactorBackend {
 public:
  explicit TlrBackend(std::shared_ptr<const tlr::TlrMatrix> l)
      : l_(std::move(l)) {
    PARMVN_EXPECTS(l_ != nullptr);
  }

  [[nodiscard]] FactorKind kind() const noexcept override {
    return FactorKind::kTlr;
  }
  [[nodiscard]] i64 dim() const noexcept override { return l_->dim(); }
  [[nodiscard]] i64 tile_size() const noexcept override {
    return l_->tile_size();
  }
  [[nodiscard]] i64 row_tiles() const noexcept override {
    return l_->num_tiles();
  }
  [[nodiscard]] i64 tile_rows(i64 r) const noexcept override {
    return l_->tile_rows(r);
  }

  [[nodiscard]] la::ConstMatrixView diag_view(i64 r) const override {
    return l_->diag(r);
  }
  [[nodiscard]] rt::DataHandle diag_handle(i64 r) const override {
    return l_->diag_handle(r);
  }
  [[nodiscard]] rt::DataHandle off_handle(i64 i, i64 r) const override {
    return l_->lr_handle(i, r);
  }

  void apply_update(i64 i, i64 r, la::ConstMatrixView y, la::MatrixView a,
                    la::MatrixView b) const override;

  double ep_row(i64 k,
                std::vector<std::pair<i64, double>>& parents) const override;

  [[nodiscard]] const tlr::TlrMatrix& matrix() const noexcept { return *l_; }

 private:
  std::shared_ptr<const tlr::TlrMatrix> l_;
};

}  // namespace parmvn::engine
