#include "engine/factor_cache.hpp"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "common/contracts.hpp"
#include "common/hash.hpp"

namespace parmvn::engine {

namespace {

// FNV-1a over the ordering permutation: cheap key material; exactness is
// guaranteed separately by the element-wise comparison on hit.
u64 hash_order(const std::vector<i64>& order) {
  u64 h = kFnv1aOffset;
  for (const i64 v : order) h = fnv1a_append(h, &v, sizeof(v));
  return h;
}

// The runtime uid is part of the key (not just verified on hit) so two live
// runtimes sharing one cache each keep their own entry instead of evicting
// each other's on every alternating lookup.
std::string make_key(const std::string& gen_key, u64 runtime_uid,
                     const std::vector<i64>& order, const FactorSpec& spec) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "|rt=%" PRIu64 "|k=%d|tile=%" PRId64 "|tol=%.17g|cap=%" PRId64
                "|ord=%zu:%016" PRIx64,
                runtime_uid, static_cast<int>(spec.kind), spec.tile,
                spec.kind == FactorKind::kTlr ? spec.tlr_tol : 0.0,
                spec.kind == FactorKind::kTlr ? spec.tlr_max_rank : i64{-1},
                order.size(), hash_order(order));
  return gen_key + buf;
}

}  // namespace

FactorCache::FactorCache(std::size_t capacity) : capacity_(capacity) {
  PARMVN_EXPECTS(capacity >= 1);
}

std::shared_ptr<const CholeskyFactor> FactorCache::get_or_factor(
    rt::Runtime& rt, const la::MatrixGenerator& cov, std::vector<i64> order,
    const FactorSpec& spec, std::span<const double> sd) {
  // Entries of destroyed runtimes can never be hit again (uids are not
  // reused); drop them so they stop pinning factor memory and capacity.
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (rt::Runtime::uid_alive(it->runtime_uid)) {
      ++it;
    } else {
      index_.erase(it->key);
      it = lru_.erase(it);
      ++stats_.evictions;
    }
  }

  const std::string gen_key = cov.cache_key();
  if (gen_key.empty()) {
    // Generator opted out of caching: factor every time.
    ++stats_.misses;
    return std::make_shared<const CholeskyFactor>(
        CholeskyFactor::factor_ordered(rt, cov, std::move(order), spec, sd));
  }

  const std::string key = make_key(gen_key, rt.uid(), order, spec);
  if (const auto it = index_.find(key); it != index_.end()) {
    Entry& entry = *it->second;
    if (entry.order == order) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
      return entry.factor;
    }
    // Same key but a different permutation (hash collision): the entry
    // cannot be served — drop and refactor.
    lru_.erase(it->second);
    index_.erase(it);
  }

  ++stats_.misses;
  auto factor = std::make_shared<const CholeskyFactor>(
      CholeskyFactor::factor_ordered(rt, cov, order, spec, sd));
  lru_.push_front(Entry{key, std::move(order), rt.uid(), factor});
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  return factor;
}

void FactorCache::clear() {
  lru_.clear();
  index_.clear();
}

}  // namespace parmvn::engine
