#include "engine/factor_cache.hpp"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "common/contracts.hpp"
#include "common/hash.hpp"

namespace parmvn::engine {

namespace {

// FNV-1a over the ordering permutation: cheap key material; exactness is
// guaranteed separately by the element-wise comparison on hit.
u64 hash_order(const std::vector<i64>& order) {
  u64 h = kFnv1aOffset;
  for (const i64 v : order) h = fnv1a_append(h, &v, sizeof(v));
  return h;
}

// The runtime uid is part of the key (not just verified on hit) so two live
// runtimes sharing one cache each keep their own entry instead of evicting
// each other's on every alternating lookup.
std::string make_key(const std::string& gen_key, u64 runtime_uid,
                     const std::vector<i64>& order, const FactorSpec& spec) {
  // Every knob that changes the factored bits must appear here (kind-gated
  // to a fixed neutral value where it is ignored, so irrelevant knob noise
  // cannot split the cache): tile geometry, TLR accuracy, and the Vecchia
  // conditioning-set size — two specs differing only in vecchia_m describe
  // different sparse factors and must never alias.
  // jitter_retries changes the bits wherever a dense factor may be built
  // (the dense arm, or the TLR fallback rung); fallback changes what a
  // non-PD TLR factorization produces at all.
  const bool dense_rung = spec.kind == FactorKind::kDense ||
                          (spec.kind == FactorKind::kTlr && spec.fallback);
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "|rt=%" PRIu64 "|k=%d|tile=%" PRId64 "|tol=%.17g|cap=%" PRId64
                "|m=%" PRId64 "|jr=%d|fb=%d|ord=%zu:%016" PRIx64,
                runtime_uid, static_cast<int>(spec.kind), spec.tile,
                spec.kind == FactorKind::kTlr ? spec.tlr_tol : 0.0,
                spec.kind == FactorKind::kTlr ? spec.tlr_max_rank : i64{-1},
                spec.kind == FactorKind::kVecchia ? spec.vecchia_m : i64{0},
                dense_rung ? spec.jitter_retries : 0,
                spec.kind == FactorKind::kTlr ? int{spec.fallback} : 0,
                order.size(), hash_order(order));
  return gen_key + buf;
}

}  // namespace

FactorCache::FactorCache(std::size_t capacity) : capacity_(capacity) {
  PARMVN_EXPECTS(capacity >= 1);
}

std::shared_ptr<const CholeskyFactor> FactorCache::get_or_factor(
    rt::Runtime& rt, const la::MatrixGenerator& cov, std::vector<i64> order,
    const FactorSpec& spec, std::span<const double> sd,
    bool* served_from_cache) {
  if (served_from_cache != nullptr) *served_from_cache = false;
  const std::string gen_key = cov.cache_key();
  if (gen_key.empty()) {
    // Generator opted out of caching: factor every time.
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.misses;
    }
    return std::make_shared<const CholeskyFactor>(
        CholeskyFactor::factor_ordered(rt, cov, std::move(order), spec, sd));
  }

  const std::string key = make_key(gen_key, rt.uid(), order, spec);
  {
    std::unique_lock<std::mutex> lock(mu_);
    bool waited = false;
    for (;;) {
      // Entries of destroyed runtimes can never be hit again (uids are not
      // reused); drop them so they stop pinning factor memory and capacity.
      for (auto it = lru_.begin(); it != lru_.end();) {
        if (rt::Runtime::uid_alive(it->runtime_uid)) {
          ++it;
        } else {
          index_.erase(it->key);
          it = lru_.erase(it);
          ++stats_.evictions;
        }
      }

      if (const auto it = index_.find(key); it != index_.end()) {
        Entry& entry = *it->second;
        if (entry.factor->order() == order) {
          ++stats_.hits;
          lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
          if (served_from_cache != nullptr) *served_from_cache = true;
          return entry.factor;
        }
        // Same key but a different permutation (hash collision): the entry
        // cannot be served — drop and refactor.
        lru_.erase(it->second);
        index_.erase(it);
        break;
      }
      if (!in_flight_.contains(key)) {
        // Reaching here after at least one wait means the in-flight
        // factorization we waited on failed (a success would have hit the
        // index above): this caller takes the work over.
        if (waited) ++stats_.in_flight_takeovers;
        break;
      }
      // Another thread is factoring this key: duplicating the work would
      // not just waste the factorization — the discarded duplicate would
      // permanently leak its runtime tile-handle slots. Wait for the
      // winner's insert (or its failure) and re-check.
      factored_cv_.wait(lock);
      waited = true;
    }
    ++stats_.misses;
    in_flight_.insert(key);
  }

  // Factor outside the lock: this is the expensive part, and concurrent
  // misses on different keys must be able to proceed in parallel.
  std::shared_ptr<const CholeskyFactor> factor;
  try {
    factor = std::make_shared<const CholeskyFactor>(
        CholeskyFactor::factor_ordered(rt, cov, std::move(order), spec, sd));
  } catch (...) {
    const std::lock_guard<std::mutex> lock(mu_);
    in_flight_.erase(key);
    factored_cv_.notify_all();  // waiters take over the factorization
    throw;
  }

  const std::lock_guard<std::mutex> lock(mu_);
  in_flight_.erase(key);
  factored_cv_.notify_all();
  // No racing insert is possible while the key was in flight, so this
  // insert is unconditional.
  lru_.push_front(Entry{key, rt.uid(), factor});
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  return factor;
}

void FactorCache::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

}  // namespace parmvn::engine
