// Batched PMVN engine — the "evaluate many" half of factor-once /
// evaluate-many.
//
// A PmvnEngine holds one CholeskyFactor and evaluates a batch of limit sets
// (queries) against it in a single fused task graph: the sample panels of
// all queries are packed end to end into shared wide sample-contiguous
// panels (rows = samples of the whole batch, columns = dimensions — the
// same layout the QMC tile kernel sweeps), so
// each propagation step is one GEMM over the whole batch — every
// off-diagonal factor tile is read once per (tile-row pair, panel round)
// instead of once per query — and the QMC kernels of different queries run
// as independent tasks that fill the worker pool even when a single query's
// diagonal chain would leave it idle.
//
// Two contracts, enforced by tests/test_determinism.cpp:
//  * schedule independence: results are bitwise identical across worker
//    counts (all arithmetic happens in tasks with fixed reduction orders,
//    sequenced by the runtime's sequential-consistency dependency rules);
//  * batch transparency: each query's result is bitwise identical to
//    evaluating that query alone with the same seed. This holds because
//    sample columns are independent chains, column tiles never straddle
//    queries, and the microkernel's per-column arithmetic does not depend on
//    panel width or column position.
//
// Adaptive mode (EngineOptions::adaptive) evaluates shift blocks round by
// round and retires queries as their error budget is met; each round reuses
// the same fused wide-panel sweep over the still-active subset. All stop
// decisions happen on the host thread from deterministic block sums, so
// both contracts extend to the adaptive path (with CRN the stream is shared,
// so batch transparency holds against a single-query run with the CRN seed).
#pragma once

#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "engine/cholesky_factor.hpp"
#include "stats/qmc.hpp"

namespace parmvn::engine {

/// Batch-level integration parameters (shared by every query in a batch).
struct EngineOptions {
  i64 samples_per_shift = 1000;
  int shifts = 10;
  stats::SamplerKind sampler = stats::SamplerKind::kPseudoMC;
  /// Memory budget for the batch's A/B/Y panels, shared across all queries;
  /// floored at one tile-width of columns per query.
  i64 panel_bytes = i64{512} << 20;

  /// Error-budget-adaptive evaluation: sweep shift blocks round by round and
  /// retire each query independently once its running 3-sigma estimate fits
  /// `abs_tol`, or — when the query carries a decision threshold — once
  /// prob +/- error3sigma cleanly clears it. `shifts` stays the hard budget
  /// cap. Off (the default) keeps the fixed-budget sweep bitwise unchanged.
  /// The stop schedule is computed on the host thread from deterministic
  /// block sums, so adaptive results are identical across worker counts and
  /// scheduler arms given the same seed.
  bool adaptive = false;
  /// Target 3-sigma error for the adaptive stop (0 = decision-only stop).
  double abs_tol = 0.0;
  /// Shift blocks evaluated before the first stop decision (>= 2: a lone
  /// block's error estimate is infinite and must never gate a decision).
  int min_shifts = 2;
  /// Common random numbers: every query in the batch draws from one stream
  /// seeded with `crn_seed` (ignoring LimitSet::seed), so estimates of
  /// nearby limit sets — e.g. bisection iterates — are positively
  /// correlated and their differences low-variance.
  bool crn = false;
  u64 crn_seed = 42;
  /// Antithetic shift pairs (see stats::PointSet); `shifts` must be even,
  /// and the estimator pair-merges block means before combining.
  bool antithetic = false;

  /// Tiered evaluation: every query carrying a decision threshold is first
  /// screened by the deterministic EP estimator (src/ep/) on the host
  /// thread; a query whose threshold falls cleanly outside the EP band
  /// (every gated estimate at least `ep_margin` away, prefix rows using the
  /// same monotone shortcut as the adaptive path) retires immediately with
  /// method == EvalMethod::kEp and never enters the QMC sweep. QMC stays
  /// authoritative: EP only *skips* work for queries it decides with
  /// margin; the straddlers' QMC numbers are bitwise identical to the
  /// untiered run (batch transparency), and `tiered` off reproduces the
  /// QMC-only path bitwise. EP itself is a pure host-thread function of the
  /// factor bits, so the tiered path stays deterministic across worker
  /// counts and scheduler arms. Screens warm-start from the factor's site
  /// cache (CholeskyFactor::ep_cache()); an unconverged screen never
  /// retires anything.
  /// Wall-clock deadline for the whole evaluate() call in milliseconds
  /// (0 = none). Checked on the host thread between shift-block rounds (and
  /// between tiered EP screens): when it expires, every still-active query
  /// retires immediately with its best-so-far block estimate,
  /// converged == false and method == EvalMethod::kDeadline. Every query
  /// always completes at least one shift block, so a deadline result is an
  /// estimate, never empty. A deadline routes the fixed-budget sweep
  /// through the same round loop the adaptive path uses; deadline stops are
  /// time-dependent and therefore explicitly exempt from the bitwise
  /// determinism contracts (see ROADMAP) — the default (0) keeps every
  /// contracted path bitwise unchanged.
  i64 deadline_ms = 0;

  bool tiered = false;
  /// Conservative EP error band half-width (absolute probability). The
  /// default is calibrated against dense QMC on smooth GP fields
  /// (tests/test_ep.cpp holds |EP - QMC| well under it at n = 64..256).
  double ep_margin = 0.05;

  [[nodiscard]] i64 total_samples() const noexcept {
    return samples_per_shift * static_cast<i64>(shifts);
  }

  /// Range-check every knob and throw a typed parmvn::Error naming the
  /// offending one (negative deadline_ms, negative ep_margin, zero
  /// samples, an odd antithetic shift count, …). PmvnEngine's constructor
  /// and core::engine_options() both call this, so nonsense options fail
  /// at construction instead of as undefined downstream behavior.
  void validate() const;
};

/// One query: integration limits in the factor's (ordered, standardised)
/// space, plus the per-query sample-stream seed.
struct LimitSet {
  std::span<const double> a;
  std::span<const double> b;
  u64 seed = 42;
  bool prefix = false;  // also accumulate all prefix probabilities
  /// Decision threshold for adaptive early stop: the query retires once
  /// prob +/- error3sigma lies entirely on one side (for prefix queries:
  /// once every prefix probability does). NaN = no decision stop.
  double decision = std::numeric_limits<double>::quiet_NaN();
};

/// Which tier produced a result: the authoritative QMC sweep, the EP
/// screen (tiered mode only — the query's decision threshold fell cleanly
/// outside the EP error band, so no samples were spent on it), or a
/// deadline stop (EngineOptions::deadline_ms expired with the query still
/// active — prob is the best-so-far QMC block estimate).
enum class EvalMethod { kQmc, kEp, kDeadline };

struct QueryResult {
  double prob = 0.0;
  double error3sigma = 0.0;
  double seconds = 0.0;  // wall time of the whole batch (same for each query)
  std::vector<double> prefix_prob;  // filled when LimitSet::prefix
  i64 samples_used = 0;             // samples actually evaluated
  int shifts_used = 0;              // shift blocks actually evaluated
  /// Adaptive path only: the stop criterion was met before the `shifts`
  /// budget ran out (always false on the fixed-budget path).
  bool converged = false;
  /// Result provenance. For kEp, prob/prefix_prob are the EP estimates,
  /// error3sigma reports the EP band (EngineOptions::ep_margin),
  /// samples_used/shifts_used are 0 and converged is true.
  EvalMethod method = EvalMethod::kQmc;
};

class PmvnEngine {
 public:
  /// The factor must have been built with (and stay bound to) `rt`.
  PmvnEngine(rt::Runtime& rt, std::shared_ptr<const CholeskyFactor> factor,
             EngineOptions opts = {});

  /// Evaluate every query in one fused task graph. Results are positionally
  /// matched to `queries`.
  [[nodiscard]] std::vector<QueryResult> evaluate(
      std::span<const LimitSet> queries) const;

  /// Single-query convenience (a 1-element batch).
  [[nodiscard]] QueryResult evaluate_one(const LimitSet& query) const;

  [[nodiscard]] const CholeskyFactor& factor() const noexcept {
    return *factor_;
  }
  [[nodiscard]] const EngineOptions& options() const noexcept { return opts_; }

 private:
  /// The QMC wide-panel sweep (fixed-budget or adaptive) — the untiered
  /// evaluate(), bitwise independent of which queries the EP screen peeled
  /// off (batch transparency). `elapsed_s` is wall time already charged
  /// against the deadline before the sweep started (the tiered screen).
  [[nodiscard]] std::vector<QueryResult> evaluate_qmc(
      std::span<const LimitSet> queries, double elapsed_s = 0.0) const;

  rt::Runtime& rt_;
  std::shared_ptr<const CholeskyFactor> factor_;
  EngineOptions opts_;
};

}  // namespace parmvn::engine
