// Owning factor facade — the "factor once" half of the factor-once /
// evaluate-many engine.
//
// The PMVN sweep (Algorithm 2) only ever touches a factor through the
// FactorBackend vocabulary (engine/factor_backend.hpp): tile geometry, a
// readable diagonal tile, dependency handles, and a propagation rule.
// CholeskyFactor owns one backend — dense tiled, TLR, or Vecchia — behind
// that vocabulary, so it can outlive the stack frame that produced it (a
// prerequisite for caching), and carries the ordering/standardisation
// metadata the confidence-region detector previously recomputed on every
// call. Adding a fourth arithmetic format means writing a FactorBackend
// adapter and a branch in factor(); no sweep, cache, or excursion code
// changes.
//
// A factor is bound to the rt::Runtime that registered its tile handles:
// using it with a different runtime is undefined (the FactorCache keys on
// the runtime uid and never serves cross-runtime hits).
//
// Handle lifetime: a factor's tile handles are *leased* from the runtime
// (rt::HandleLease inside TileMatrix / TlrMatrix / VecchiaFactor). When the
// last shared owner of the factor dies, the lease returns every tile handle
// to the owning runtime's table — resolved through the uid registry behind
// Runtime::uid_alive(), so a factor that outlives its runtime (a dead cache
// entry) simply drops the handles instead of dangling. A long-lived serving
// runtime whose FactorCache evicts factors therefore keeps a bounded handle
// table; the engine's per-round panel handles — the high-frequency case —
// are released explicitly per round as before.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "engine/factor_backend.hpp"
#include "ep/site_cache.hpp"
#include "linalg/generator.hpp"
#include "linalg/matrix.hpp"
#include "runtime/runtime.hpp"

namespace parmvn::tile {
class TileMatrix;
}
namespace parmvn::tlr {
class TlrMatrix;
}
namespace parmvn::vecchia {
class VecchiaFactor;
}

namespace parmvn::engine {

/// sqrt of the diagonal of `cov` (throws unless strictly positive) — the
/// standardisation vector shared by factor_ordered's metadata and the
/// confidence-region marginal computation.
[[nodiscard]] std::vector<double> standard_deviations(
    const la::MatrixGenerator& cov);

/// How to build a factor: arithmetic format, tile size, format knobs.
/// New knobs append after vecchia_m with defaults — call sites aggregate-
/// initialise the prefix.
struct FactorSpec {
  FactorKind kind = FactorKind::kDense;
  i64 tile = 256;
  double tlr_tol = 1e-3;  // TLR compression accuracy (ignored for others)
  i64 tlr_max_rank = -1;  // TLR rank cap, < 0 = uncapped (ignored for others)
  i64 vecchia_m = 30;     // Vecchia conditioning-set size (ignored for others)
  /// Dense arm: bounded diagonal-boost retries on a non-PD pivot (shared
  /// escalation schedule with the TLR arm, linalg/jitter.hpp). 0 (default)
  /// = off: throw on the first non-PD pivot, bitwise identical to the
  /// pre-safeguard behavior. Also applies to the dense factor built by the
  /// TLR `fallback` below. The TLR arm keeps its own built-in retry ladder.
  int jitter_retries = 0;
  /// TLR arm: when its retry ladder exhausts (persistently non-PD under
  /// compression), fall back to a dense factor of the same ordered matrix
  /// instead of throwing — the last rung of the degradation ladder. Off by
  /// default; CholeskyFactor::degraded() reports when it fired.
  bool fallback = false;
};

class CholeskyFactor {
 public:
  /// Generate and factor the SPD matrix `gen` describes, as-is (no
  /// standardisation or reordering). Blocks until the factorization is
  /// done. The Vecchia kind additionally requires `gen` to expose site
  /// coordinates (la::MatrixGenerator::coords_xy()).
  [[nodiscard]] static CholeskyFactor factor(rt::Runtime& rt,
                                             const la::MatrixGenerator& gen,
                                             const FactorSpec& spec);

  /// Standardise `cov` to a correlation matrix, permute rows/columns by
  /// `order`, then generate and factor. Records `order` and the per-location
  /// standard deviations (original indexing) as metadata, so cache clients
  /// can map limits into the factor's ordered, standardised space without
  /// touching the generator again. Pass `sd` (sqrt of the covariance
  /// diagonal) when the caller has already computed it — e.g. for the
  /// marginal ordering — to skip the diagonal sweep; empty means compute.
  [[nodiscard]] static CholeskyFactor factor_ordered(
      rt::Runtime& rt, const la::MatrixGenerator& cov, std::vector<i64> order,
      const FactorSpec& spec, std::span<const double> sd = {});

  /// Non-owning wrappers around an existing factored matrix (the caller
  /// keeps it alive). Used by the single-query core::pmvn_* entry points.
  [[nodiscard]] static CholeskyFactor borrow_dense(const tile::TileMatrix& l);
  [[nodiscard]] static CholeskyFactor borrow_tlr(const tlr::TlrMatrix& l);
  [[nodiscard]] static CholeskyFactor borrow_vecchia(
      const vecchia::VecchiaFactor& l);

  [[nodiscard]] FactorKind kind() const noexcept { return backend_->kind(); }
  [[nodiscard]] i64 dim() const noexcept { return backend_->dim(); }
  [[nodiscard]] i64 tile_size() const noexcept {
    return backend_->tile_size();
  }
  [[nodiscard]] i64 row_tiles() const noexcept {
    return backend_->row_tiles();
  }
  [[nodiscard]] i64 tile_rows(i64 r) const noexcept {
    return backend_->tile_rows(r);
  }

  /// Wall-clock seconds spent generating + factoring (0 for borrowed).
  [[nodiscard]] double factor_seconds() const noexcept {
    return factor_seconds_;
  }

  /// Whether the factor was built by a degradation fallback (the requested
  /// TLR factorization was persistently non-PD and FactorSpec::fallback
  /// rebuilt it on the dense arm) — kind() then reports the arm actually
  /// built, not the one requested.
  [[nodiscard]] bool degraded() const noexcept { return degraded_; }

  /// Ordering metadata from factor_ordered(); empty for other constructors.
  [[nodiscard]] const std::vector<i64>& order() const noexcept {
    return order_;
  }
  /// sqrt(cov_ii) per original location from factor_ordered(); empty
  /// otherwise.
  [[nodiscard]] const std::vector<double>& sd() const noexcept { return sd_; }

  // ---- sweep interface (forwarded to the backend; see
  //      engine/factor_backend.hpp for the two panel protocols) ----
  [[nodiscard]] const FactorBackend& backend() const noexcept {
    return *backend_;
  }
  [[nodiscard]] bool mean_panel_form() const noexcept {
    return backend_->mean_panel_form();
  }
  [[nodiscard]] la::ConstMatrixView diag_view(i64 r) const {
    return backend_->diag_view(r);
  }
  [[nodiscard]] rt::DataHandle diag_handle(i64 r) const {
    return backend_->diag_handle(r);
  }
  [[nodiscard]] rt::DataHandle off_handle(i64 i, i64 r) const {
    return backend_->off_handle(i, r);
  }
  void apply_update(i64 i, i64 r, la::ConstMatrixView y, la::MatrixView a,
                    la::MatrixView b) const {
    backend_->apply_update(i, r, y, a, b);
  }

  /// The concrete factored matrix (throws unless kind() matches); for
  /// clients that need direct access (e.g. MC validation).
  [[nodiscard]] const tile::TileMatrix& dense() const;
  [[nodiscard]] const tlr::TlrMatrix& tlr() const;
  [[nodiscard]] const vecchia::VecchiaFactor& vecchia() const;

  /// EP warm-start store riding along with the factor (internally
  /// synchronised, so usable through shared_ptr<const CholeskyFactor>):
  /// tiered evaluation seeds each screen from the nearest previously
  /// converged site state for this factor — bisection neighbours are 1-2
  /// refine sweeps apart. Cached factors keep their sites across serving
  /// calls for free, since the store lives inside the cached object.
  [[nodiscard]] ep::SiteCache& ep_cache() const noexcept { return *ep_cache_; }

 private:
  CholeskyFactor() = default;

  std::shared_ptr<const FactorBackend> backend_;
  std::vector<i64> order_;
  std::vector<double> sd_;
  double factor_seconds_ = 0.0;
  bool degraded_ = false;
  std::shared_ptr<ep::SiteCache> ep_cache_ = std::make_shared<ep::SiteCache>();
};

}  // namespace parmvn::engine
