// LRU cache of CholeskyFactors for repeated confidence-region serving.
//
// A factor is keyed by (generator identity, ordering permutation, tile
// size, factor kind, TLR accuracy knobs). Generator identity comes from
// la::MatrixGenerator::cache_key(); a generator that returns an empty key
// opts out of caching, in which case get_or_factor() degrades to a plain
// factorization (counted as a miss, never stored). The stored ordering is
// compared element-wise on lookup, so hash collisions can never serve a
// factor for the wrong permutation.
//
// Entries are additionally keyed by the factoring runtime's process-unique
// uid (rt::Runtime::uid(), never an address and never reused): a destroyed-
// and-recreated runtime can never be served a stale factor, and two live
// runtimes sharing one cache hold independent entries instead of evicting
// each other. Entries whose runtime has since been destroyed are
// unreachable forever (uids are not reused), so every lookup first purges
// them — they must not pin factor memory or cache capacity.
//
// Not thread-safe: serve one request at a time, or shard one cache per
// serving thread.
#pragma once

#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/cholesky_factor.hpp"

namespace parmvn::engine {

struct FactorCacheStats {
  i64 hits = 0;
  i64 misses = 0;
  i64 evictions = 0;
};

class FactorCache {
 public:
  explicit FactorCache(std::size_t capacity = 4);

  /// Return the cached factor for (cov, order, spec), factoring (and
  /// caching) on a miss. `order` and the optional precomputed `sd` match
  /// CholeskyFactor::factor_ordered.
  [[nodiscard]] std::shared_ptr<const CholeskyFactor> get_or_factor(
      rt::Runtime& rt, const la::MatrixGenerator& cov, std::vector<i64> order,
      const FactorSpec& spec, std::span<const double> sd = {});

  [[nodiscard]] const FactorCacheStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return lru_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  void clear();

 private:
  struct Entry {
    std::string key;
    std::vector<i64> order;  // verified element-wise on every hit
    u64 runtime_uid;         // for purging entries of destroyed runtimes
    std::shared_ptr<const CholeskyFactor> factor;
  };

  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  FactorCacheStats stats_;
};

}  // namespace parmvn::engine
