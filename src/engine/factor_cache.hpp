// LRU cache of CholeskyFactors for repeated confidence-region serving.
//
// A factor is keyed by (generator identity, ordering permutation, tile
// size, factor kind, TLR accuracy knobs). Generator identity comes from
// la::MatrixGenerator::cache_key(); a generator that returns an empty key
// opts out of caching, in which case get_or_factor() degrades to a plain
// factorization (counted as a miss, never stored). The stored factor's own
// ordering is compared element-wise on lookup, so hash collisions can never
// serve a factor for the wrong permutation.
//
// Entries are additionally keyed by the factoring runtime's process-unique
// uid (rt::Runtime::uid(), never an address and never reused): a destroyed-
// and-recreated runtime can never be served a stale factor, and two live
// runtimes sharing one cache hold independent entries instead of evicting
// each other. Entries whose runtime has since been destroyed are
// unreachable forever (uids are not reused), so every lookup first purges
// them — they must not pin factor memory or cache capacity.
//
// Thread safety: one mutex serialises lookup/insert/evict/purge, so
// concurrent serving threads can share a single cache. The factorization
// itself runs outside the lock (it is the expensive part and may submit to
// a per-thread runtime); a per-key in-flight registry makes concurrent
// misses on the *same* key wait for the first thread's factor instead of
// duplicating the work — important beyond wasted time, because a discarded
// duplicate factor would permanently leak its runtime tile-handle slots
// (CholeskyFactor never releases them; see cholesky_factor.hpp). Note that
// each factor is still bound to the runtime that built it — concurrent
// callers with their own runtimes get their own entries by construction of
// the key.
#pragma once

#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "engine/cholesky_factor.hpp"

namespace parmvn::engine {

struct FactorCacheStats {
  i64 hits = 0;
  i64 misses = 0;
  i64 evictions = 0;
  /// Times a caller woke from waiting on another thread's in-flight
  /// factorization to find it had *failed* (the key gone from both the
  /// index and the in-flight registry) and took the work over itself. A
  /// non-zero value under serving means factor failures are being absorbed
  /// by waiters instead of wedging the key — the health signal the serve
  /// layer surfaces in its stats report.
  i64 in_flight_takeovers = 0;
};

class FactorCache {
 public:
  explicit FactorCache(std::size_t capacity = 4);

  /// Return the cached factor for (cov, order, spec), factoring (and
  /// caching) on a miss. `order` and the optional precomputed `sd` match
  /// CholeskyFactor::factor_ordered. When `served_from_cache` is non-null
  /// it is set to whether this call was handed an existing factor (a hit,
  /// or another thread's concurrent factorization) rather than paying for
  /// the factorization itself — callers attributing factor cost must use
  /// this, not a stats() delta, which races under concurrent serving.
  [[nodiscard]] std::shared_ptr<const CholeskyFactor> get_or_factor(
      rt::Runtime& rt, const la::MatrixGenerator& cov, std::vector<i64> order,
      const FactorSpec& spec, std::span<const double> sd = {},
      bool* served_from_cache = nullptr);

  /// Snapshot of the counters (by value: the cache may be shared across
  /// threads, so a reference into live state would race with updates).
  [[nodiscard]] FactorCacheStats stats() const noexcept {
    const std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  [[nodiscard]] std::size_t size() const noexcept {
    const std::lock_guard<std::mutex> lock(mu_);
    return lru_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  void clear();

 private:
  struct Entry {
    std::string key;
    u64 runtime_uid;  // for purging entries of destroyed runtimes
    // The entry's permutation lives in factor->order() (factor_ordered
    // always records it); it is verified element-wise on every hit.
    std::shared_ptr<const CholeskyFactor> factor;
  };

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable factored_cv_;   // signalled when an in-flight
  std::unordered_set<std::string> in_flight_;  // factorization completes
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  FactorCacheStats stats_;
};

}  // namespace parmvn::engine
