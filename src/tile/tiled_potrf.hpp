// Tiled Cholesky factorization (right-looking) over the task runtime —
// step (a) of the paper's Algorithm 1 in its dense form.
#pragma once

#include "tile/tile_matrix.hpp"

namespace parmvn::tile {

/// Lower Cholesky of a lower-symmetric tiled SPD matrix, in place: on
/// return the lower tiles hold L. Submits the full task DAG
/// (POTRF/TRSM/SYRK/GEMM per tile) and waits for completion.
/// Throws parmvn::Error if a diagonal block is not positive definite.
void potrf_tiled(rt::Runtime& rt, TileMatrix& a);

/// Result of the safeguarded dense factorization (mirror of
/// tlr::PotrfTlrInfo so the two arms report the same way).
struct PotrfTiledInfo {
  int retries = 0;          // diagonal-boost retries that were needed
  double diag_boost = 0.0;  // total boost added to every diagonal entry
};

/// potrf_tiled with the TLR arm's bounded diagonal-boost retry ladder
/// (linalg/jitter.hpp): on a non-PD pivot the matrix is restored from a
/// dense backup, a boost starting at machine epsilon of the diagonal scale
/// (and quadrupling per retry) is added to the diagonal, and the
/// factorization reruns. Throws once `max_retries` restarts are exhausted.
/// With max_retries == 0 this is exactly potrf_tiled (no backup is taken,
/// results bitwise identical). Opt in through FactorSpec::jitter_retries.
PotrfTiledInfo potrf_tiled_safeguarded(rt::Runtime& rt, TileMatrix& a,
                                       int max_retries);

/// Flop count of a dense lower Cholesky (n^3/3 + lower order), used by the
/// distributed-memory cost model and bench reporting.
[[nodiscard]] double potrf_flops(i64 n);

}  // namespace parmvn::tile
