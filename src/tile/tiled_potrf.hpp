// Tiled Cholesky factorization (right-looking) over the task runtime —
// step (a) of the paper's Algorithm 1 in its dense form.
#pragma once

#include "tile/tile_matrix.hpp"

namespace parmvn::tile {

/// Lower Cholesky of a lower-symmetric tiled SPD matrix, in place: on
/// return the lower tiles hold L. Submits the full task DAG
/// (POTRF/TRSM/SYRK/GEMM per tile) and waits for completion.
/// Throws parmvn::Error if a diagonal block is not positive definite.
void potrf_tiled(rt::Runtime& rt, TileMatrix& a);

/// Flop count of a dense lower Cholesky (n^3/3 + lower order), used by the
/// distributed-memory cost model and bench reporting.
[[nodiscard]] double potrf_flops(i64 n);

}  // namespace parmvn::tile
