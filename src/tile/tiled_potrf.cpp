#include "tile/tiled_potrf.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contracts.hpp"
#include "common/fault.hpp"
#include "linalg/blas.hpp"
#include "linalg/jitter.hpp"
#include "linalg/potrf.hpp"
#include "runtime/priority.hpp"

namespace parmvn::tile {

void potrf_tiled(rt::Runtime& rt, TileMatrix& a) {
  PARMVN_EXPECTS(a.layout() == Layout::kLowerSymmetric);
  const i64 nt = a.row_tiles();

  // Priorities follow the ladder in runtime/priority.hpp (Chameleon-style
  // hints): the critical path of panel k runs through TRSM(k+1,k) and
  // SYRK(k+1,k+1) into POTRF(k+1), so those two get panel priority along
  // with POTRF itself; GEMMs writing column k+1 feed the next panel's
  // TRSMs and outrank the far trailing updates.
  for (i64 k = 0; k < nt; ++k) {
    la::MatrixView akk = a.tile(k, k);
    rt.submit("potrf", {{a.handle(k, k), rt::Access::kReadWrite}},
              [akk] {
                PARMVN_FAULT_POINT("tile.potrf.pivot");
                la::potrf_lower_or_throw(akk);
              },
              rt::kPrioPanel);

    for (i64 i = k + 1; i < nt; ++i) {
      la::ConstMatrixView lkk = a.tile(k, k);
      la::MatrixView aik = a.tile(i, k);
      rt.submit("trsm",
                {{a.handle(k, k), rt::Access::kRead},
                 {a.handle(i, k), rt::Access::kReadWrite}},
                [lkk, aik] {
                  la::trsm(la::Side::kRight, la::Trans::kYes, 1.0, lkk, aik);
                },
                i == k + 1 ? rt::kPrioPanel : rt::kPrioSweep);
    }

    for (i64 i = k + 1; i < nt; ++i) {
      // Diagonal update: SYRK.
      la::ConstMatrixView aik = a.tile(i, k);
      la::MatrixView aii = a.tile(i, i);
      rt.submit("syrk",
                {{a.handle(i, k), rt::Access::kRead},
                 {a.handle(i, i), rt::Access::kReadWrite}},
                [aik, aii] { la::syrk(la::Trans::kNo, -1.0, aik, 1.0, aii); },
                i == k + 1 ? rt::kPrioPanel : rt::kPrioUpdate);
      // Off-diagonal updates: GEMM.
      for (i64 j = k + 1; j < i; ++j) {
        la::ConstMatrixView ajk = a.tile(j, k);
        la::MatrixView aij = a.tile(i, j);
        rt.submit("gemm",
                  {{a.handle(i, k), rt::Access::kRead},
                   {a.handle(j, k), rt::Access::kRead},
                   {a.handle(i, j), rt::Access::kReadWrite}},
                  [aik, ajk, aij] {
                    la::gemm(la::Trans::kNo, la::Trans::kYes, -1.0, aik, ajk,
                             1.0, aij);
                  },
                  j == k + 1 ? rt::kPrioUpdate : rt::kPrioBulk);
      }
    }
  }
  rt.wait_all();
}

PotrfTiledInfo potrf_tiled_safeguarded(rt::Runtime& rt, TileMatrix& a,
                                       int max_retries) {
  PARMVN_EXPECTS(max_retries >= 0);
  PotrfTiledInfo info;
  if (max_retries == 0) {
    potrf_tiled(rt, a);  // identical path, no backup cost
    return info;
  }
  // Dense backup for restarts; the boost unit is machine epsilon at the
  // diagonal scale — the rounding-level perturbation a dense factorization
  // has already accepted (the TLR arm's analog is its truncation tolerance).
  la::Matrix backup = a.to_dense();
  double max_diag = 0.0;
  for (i64 i = 0; i < backup.rows(); ++i)
    max_diag = std::max(max_diag, std::fabs(backup.view()(i, i)));
  const double boost_unit = la::jitter_unit(
      std::numeric_limits<double>::epsilon() * max_diag);
  for (int attempt = 0;; ++attempt) {
    try {
      potrf_tiled(rt, a);
      return info;
    } catch (const Error&) {
      if (attempt >= max_retries) throw;
      const double delta = la::jitter_delta(boost_unit, attempt);
      for (i64 i = 0; i < backup.rows(); ++i) backup.view()(i, i) += delta;
      a.from_dense(backup.view());
      info.diag_boost += delta;
      ++info.retries;
    }
  }
}

double potrf_flops(i64 n) {
  const double nd = static_cast<double>(n);
  return nd * nd * nd / 3.0 + 0.5 * nd * nd + nd / 6.0;
}

}  // namespace parmvn::tile
