#include "tile/tiled_potrf.hpp"

#include "common/contracts.hpp"
#include "linalg/blas.hpp"
#include "linalg/potrf.hpp"

namespace parmvn::tile {

void potrf_tiled(rt::Runtime& rt, TileMatrix& a) {
  PARMVN_EXPECTS(a.layout() == Layout::kLowerSymmetric);
  const i64 nt = a.row_tiles();

  // Priorities mirror Chameleon's hints: the critical path (POTRF, then the
  // TRSMs of the current panel) outranks trailing updates so the panel is
  // released as early as possible.
  for (i64 k = 0; k < nt; ++k) {
    la::MatrixView akk = a.tile(k, k);
    rt.submit("potrf", {{a.handle(k, k), rt::Access::kReadWrite}},
              [akk] { la::potrf_lower_or_throw(akk); }, /*priority=*/3);

    for (i64 i = k + 1; i < nt; ++i) {
      la::ConstMatrixView lkk = a.tile(k, k);
      la::MatrixView aik = a.tile(i, k);
      rt.submit("trsm",
                {{a.handle(k, k), rt::Access::kRead},
                 {a.handle(i, k), rt::Access::kReadWrite}},
                [lkk, aik] {
                  la::trsm(la::Side::kRight, la::Trans::kYes, 1.0, lkk, aik);
                },
                /*priority=*/2);
    }

    for (i64 i = k + 1; i < nt; ++i) {
      // Diagonal update: SYRK.
      la::ConstMatrixView aik = a.tile(i, k);
      la::MatrixView aii = a.tile(i, i);
      rt.submit("syrk",
                {{a.handle(i, k), rt::Access::kRead},
                 {a.handle(i, i), rt::Access::kReadWrite}},
                [aik, aii] { la::syrk(la::Trans::kNo, -1.0, aik, 1.0, aii); },
                /*priority=*/1);
      // Off-diagonal updates: GEMM.
      for (i64 j = k + 1; j < i; ++j) {
        la::ConstMatrixView ajk = a.tile(j, k);
        la::MatrixView aij = a.tile(i, j);
        rt.submit("gemm",
                  {{a.handle(i, k), rt::Access::kRead},
                   {a.handle(j, k), rt::Access::kRead},
                   {a.handle(i, j), rt::Access::kReadWrite}},
                  [aik, ajk, aij] {
                    la::gemm(la::Trans::kNo, la::Trans::kYes, -1.0, aik, ajk,
                             1.0, aij);
                  },
                  /*priority=*/1);
      }
    }
  }
  rt.wait_all();
}

double potrf_flops(i64 n) {
  const double nd = static_cast<double>(n);
  return nd * nd * nd / 3.0 + 0.5 * nd * nd + nd / 6.0;
}

}  // namespace parmvn::tile
