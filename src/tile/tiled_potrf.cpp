#include "tile/tiled_potrf.hpp"

#include "common/contracts.hpp"
#include "linalg/blas.hpp"
#include "linalg/potrf.hpp"
#include "runtime/priority.hpp"

namespace parmvn::tile {

void potrf_tiled(rt::Runtime& rt, TileMatrix& a) {
  PARMVN_EXPECTS(a.layout() == Layout::kLowerSymmetric);
  const i64 nt = a.row_tiles();

  // Priorities follow the ladder in runtime/priority.hpp (Chameleon-style
  // hints): the critical path of panel k runs through TRSM(k+1,k) and
  // SYRK(k+1,k+1) into POTRF(k+1), so those two get panel priority along
  // with POTRF itself; GEMMs writing column k+1 feed the next panel's
  // TRSMs and outrank the far trailing updates.
  for (i64 k = 0; k < nt; ++k) {
    la::MatrixView akk = a.tile(k, k);
    rt.submit("potrf", {{a.handle(k, k), rt::Access::kReadWrite}},
              [akk] { la::potrf_lower_or_throw(akk); }, rt::kPrioPanel);

    for (i64 i = k + 1; i < nt; ++i) {
      la::ConstMatrixView lkk = a.tile(k, k);
      la::MatrixView aik = a.tile(i, k);
      rt.submit("trsm",
                {{a.handle(k, k), rt::Access::kRead},
                 {a.handle(i, k), rt::Access::kReadWrite}},
                [lkk, aik] {
                  la::trsm(la::Side::kRight, la::Trans::kYes, 1.0, lkk, aik);
                },
                i == k + 1 ? rt::kPrioPanel : rt::kPrioSweep);
    }

    for (i64 i = k + 1; i < nt; ++i) {
      // Diagonal update: SYRK.
      la::ConstMatrixView aik = a.tile(i, k);
      la::MatrixView aii = a.tile(i, i);
      rt.submit("syrk",
                {{a.handle(i, k), rt::Access::kRead},
                 {a.handle(i, i), rt::Access::kReadWrite}},
                [aik, aii] { la::syrk(la::Trans::kNo, -1.0, aik, 1.0, aii); },
                i == k + 1 ? rt::kPrioPanel : rt::kPrioUpdate);
      // Off-diagonal updates: GEMM.
      for (i64 j = k + 1; j < i; ++j) {
        la::ConstMatrixView ajk = a.tile(j, k);
        la::MatrixView aij = a.tile(i, j);
        rt.submit("gemm",
                  {{a.handle(i, k), rt::Access::kRead},
                   {a.handle(j, k), rt::Access::kRead},
                   {a.handle(i, j), rt::Access::kReadWrite}},
                  [aik, ajk, aij] {
                    la::gemm(la::Trans::kNo, la::Trans::kYes, -1.0, aik, ajk,
                             1.0, aij);
                  },
                  j == k + 1 ? rt::kPrioUpdate : rt::kPrioBulk);
      }
    }
  }
  rt.wait_all();
}

double potrf_flops(i64 n) {
  const double nd = static_cast<double>(n);
  return nd * nd * nd / 3.0 + 0.5 * nd * nd + nd / 6.0;
}

}  // namespace parmvn::tile
