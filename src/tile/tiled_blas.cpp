#include "tile/tiled_blas.hpp"

#include "common/contracts.hpp"
#include "linalg/blas.hpp"

namespace parmvn::tile {

void gemm_tiled_async(rt::Runtime& rt, double alpha, const TileMatrix& a,
                      const TileMatrix& b, double beta, TileMatrix& c) {
  PARMVN_EXPECTS(a.layout() == Layout::kGeneral);
  PARMVN_EXPECTS(b.layout() == Layout::kGeneral);
  PARMVN_EXPECTS(a.cols() == b.rows());
  PARMVN_EXPECTS(c.rows() == a.rows() && c.cols() == b.cols());
  PARMVN_EXPECTS(a.tile_size() == b.tile_size() &&
                 a.tile_size() == c.tile_size());

  for (i64 i = 0; i < c.row_tiles(); ++i) {
    for (i64 j = 0; j < c.col_tiles(); ++j) {
      for (i64 l = 0; l < a.col_tiles(); ++l) {
        const double beta_l = (l == 0) ? beta : 1.0;
        la::ConstMatrixView at = a.tile(i, l);
        la::ConstMatrixView bt = b.tile(l, j);
        la::MatrixView ct = c.tile(i, j);
        rt.submit("gemm",
                  {{a.handle(i, l), rt::Access::kRead},
                   {b.handle(l, j), rt::Access::kRead},
                   {c.handle(i, j), rt::Access::kReadWrite}},
                  [=] {
                    la::gemm(la::Trans::kNo, la::Trans::kNo, alpha, at, bt,
                             beta_l, ct);
                  });
      }
    }
  }
}

void trsm_right_trans_tiled_async(rt::Runtime& rt, const TileMatrix& l,
                                  i64 lk, TileMatrix& b) {
  // B(:, k) <- B(:, k) * L(k,k)^-T for every tile-row of B's column k.
  la::ConstMatrixView lkk = l.tile(lk, lk);
  for (i64 i = 0; i < b.row_tiles(); ++i) {
    la::MatrixView bt = b.tile(i, lk);
    rt.submit("trsm",
              {{l.handle(lk, lk), rt::Access::kRead},
               {b.handle(i, lk), rt::Access::kReadWrite}},
              [=] { la::trsm(la::Side::kRight, la::Trans::kYes, 1.0, lkk, bt); });
  }
}

}  // namespace parmvn::tile
