#include "tile/tile_matrix.hpp"

#include "common/contracts.hpp"

namespace parmvn::tile {

TileMatrix::TileMatrix(rt::Runtime& rt, i64 rows, i64 cols, i64 tile_size,
                       Layout layout, std::string name)
    : rows_(rows), cols_(cols), nb_(tile_size), layout_(layout), lease_(rt) {
  PARMVN_EXPECTS(rows >= 1 && cols >= 1);
  PARMVN_EXPECTS(tile_size >= 1);
  if (layout_ == Layout::kLowerSymmetric) PARMVN_EXPECTS(rows == cols);
  mt_ = (rows_ + nb_ - 1) / nb_;
  nt_ = (cols_ + nb_ - 1) / nb_;

  const i64 count =
      (layout_ == Layout::kGeneral) ? mt_ * nt_ : mt_ * (mt_ + 1) / 2;
  tiles_.reserve(static_cast<std::size_t>(count));
  handles_.reserve(static_cast<std::size_t>(count));
  for (i64 i = 0; i < mt_; ++i) {
    const i64 jmax = (layout_ == Layout::kGeneral) ? nt_ - 1 : i;
    for (i64 j = 0; j <= jmax; ++j) {
      tiles_.emplace_back(tile_rows(i), tile_cols(j));
      handles_.push_back(lease_.acquire(rt, name + "(" + std::to_string(i) +
                                                "," + std::to_string(j) +
                                                ")"));
    }
  }
}

i64 TileMatrix::index(i64 i, i64 j) const {
  PARMVN_EXPECTS(i >= 0 && i < mt_ && j >= 0 && j < nt_);
  if (layout_ == Layout::kGeneral) return i * nt_ + j;
  PARMVN_EXPECTS(i >= j);  // lower-symmetric: upper tiles are not stored
  return i * (i + 1) / 2 + j;
}

la::MatrixView TileMatrix::tile(i64 i, i64 j) {
  return tiles_[static_cast<std::size_t>(index(i, j))].view();
}

la::ConstMatrixView TileMatrix::tile(i64 i, i64 j) const {
  return tiles_[static_cast<std::size_t>(index(i, j))].view();
}

rt::DataHandle TileMatrix::handle(i64 i, i64 j) const {
  return handles_[static_cast<std::size_t>(index(i, j))];
}

la::Matrix TileMatrix::to_dense() const {
  la::Matrix out(rows_, cols_);
  for (i64 i = 0; i < mt_; ++i) {
    const i64 jmax = (layout_ == Layout::kGeneral) ? nt_ - 1 : i;
    for (i64 j = 0; j <= jmax; ++j) {
      la::ConstMatrixView t = tile(i, j);
      const bool diag_sym = (layout_ == Layout::kLowerSymmetric && i == j);
      for (i64 jj = 0; jj < t.cols; ++jj) {
        // Diagonal tiles of a lower-symmetric matrix only carry valid data
        // in their lower triangle (e.g. after a Cholesky); mirror from the
        // lower part and never read the strictly-upper entries.
        const i64 ii0 = diag_sym ? jj : 0;
        for (i64 ii = ii0; ii < t.rows; ++ii) {
          const double v = t(ii, jj);
          out(i * nb_ + ii, j * nb_ + jj) = v;
          if (layout_ == Layout::kLowerSymmetric)
            out(j * nb_ + jj, i * nb_ + ii) = v;
        }
      }
    }
  }
  return out;
}

void TileMatrix::from_dense(la::ConstMatrixView a) {
  PARMVN_EXPECTS(a.rows == rows_ && a.cols == cols_);
  for (i64 i = 0; i < mt_; ++i) {
    const i64 jmax = (layout_ == Layout::kGeneral) ? nt_ - 1 : i;
    for (i64 j = 0; j <= jmax; ++j) {
      la::MatrixView t = tile(i, j);
      la::copy_into(a.sub(i * nb_, j * nb_, t.rows, t.cols), t);
    }
  }
}

void TileMatrix::generate_async(rt::Runtime& rt,
                                const la::MatrixGenerator& gen) {
  PARMVN_EXPECTS(gen.rows() == rows_ && gen.cols() == cols_);
  for (i64 i = 0; i < mt_; ++i) {
    const i64 jmax = (layout_ == Layout::kGeneral) ? nt_ - 1 : i;
    for (i64 j = 0; j <= jmax; ++j) {
      la::MatrixView t = tile(i, j);
      const i64 row0 = i * nb_;
      const i64 col0 = j * nb_;
      rt.submit("generate", {{handle(i, j), rt::Access::kWrite}},
                [&gen, t, row0, col0] { gen.fill(row0, col0, t); });
    }
  }
}

}  // namespace parmvn::tile
