// Tile algorithms for dense BLAS-3 operations, submitted as runtime task
// graphs (the Chameleon layer). Every task body executes a sequential
// la::* kernel backed by the blocked microkernel (linalg/microkernel.hpp);
// its per-thread packing scratch makes concurrent tile tasks allocation-free
// after warm-up, and its shape-only reduction order keeps tiled results
// bitwise identical across worker counts.
#pragma once

#include "tile/tile_matrix.hpp"

namespace parmvn::tile {

/// C = alpha A B + beta C on general tiled operands (no transposes; the
/// library's tile algorithms only need the NN case). Asynchronous: caller
/// must rt.wait_all().
void gemm_tiled_async(rt::Runtime& rt, double alpha, const TileMatrix& a,
                      const TileMatrix& b, double beta, TileMatrix& c);

/// B <- B L^-T applied tile-wise, L lower-symmetric tiled (right-trans TRSM,
/// the panel update of the tiled Cholesky). Asynchronous.
void trsm_right_trans_tiled_async(rt::Runtime& rt, const TileMatrix& l,
                                  i64 lk, TileMatrix& b);

}  // namespace parmvn::tile
