// Tile-matrix descriptor: the data structure Chameleon/HiCMA call a
// "descriptor". A matrix is stored as independently allocated column-major
// tiles, each registered with the runtime so tasks can declare per-tile
// accesses.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "linalg/generator.hpp"
#include "linalg/matrix.hpp"
#include "runtime/runtime.hpp"

namespace parmvn::tile {

enum class Layout {
  kGeneral,         // all mt x nt tiles allocated
  kLowerSymmetric,  // square matrix; only tiles with i >= j allocated
};

class TileMatrix {
 public:
  /// Creates a zero-initialised tiled matrix and registers one data handle
  /// per allocated tile with `rt`. The handles are leased: when the matrix
  /// is destroyed (after its tasks have drained) they go back to the
  /// runtime's handle table — or are silently dropped if the runtime died
  /// first — so long-lived caches that evict factors do not pin handle
  /// slots forever.
  TileMatrix(rt::Runtime& rt, i64 rows, i64 cols, i64 tile_size,
             Layout layout = Layout::kGeneral, std::string name = "tile");

  [[nodiscard]] i64 rows() const noexcept { return rows_; }
  [[nodiscard]] i64 cols() const noexcept { return cols_; }
  [[nodiscard]] i64 tile_size() const noexcept { return nb_; }
  [[nodiscard]] i64 row_tiles() const noexcept { return mt_; }
  [[nodiscard]] i64 col_tiles() const noexcept { return nt_; }
  [[nodiscard]] Layout layout() const noexcept { return layout_; }

  /// Rows in tile-row i / cols in tile-col j (edge tiles may be short).
  [[nodiscard]] i64 tile_rows(i64 i) const noexcept {
    const i64 r = rows_ - i * nb_;
    return r < nb_ ? r : nb_;
  }
  [[nodiscard]] i64 tile_cols(i64 j) const noexcept {
    const i64 c = cols_ - j * nb_;
    return c < nb_ ? c : nb_;
  }

  [[nodiscard]] la::MatrixView tile(i64 i, i64 j);
  [[nodiscard]] la::ConstMatrixView tile(i64 i, i64 j) const;
  [[nodiscard]] rt::DataHandle handle(i64 i, i64 j) const;

  /// Gather into one dense matrix (symmetric layouts mirror the lower part).
  [[nodiscard]] la::Matrix to_dense() const;

  /// Scatter a dense matrix into tiles (shape must match).
  void from_dense(la::ConstMatrixView a);

  /// Fill tiles from a generator using one runtime task per tile
  /// (the STARS-H pattern). Caller must rt.wait_all() afterwards.
  void generate_async(rt::Runtime& rt, const la::MatrixGenerator& gen);

 private:
  [[nodiscard]] i64 index(i64 i, i64 j) const;

  i64 rows_ = 0;
  i64 cols_ = 0;
  i64 nb_ = 0;
  i64 mt_ = 0;
  i64 nt_ = 0;
  Layout layout_ = Layout::kGeneral;
  std::vector<la::Matrix> tiles_;
  std::vector<rt::DataHandle> handles_;
  rt::HandleLease lease_;  // returns handles_ to the runtime on destruction
};

}  // namespace parmvn::tile
