// Synthetic stand-in for the Saudi Arabia wind-speed dataset of Section V-B.
//
// The real dataset (53,362 locations, hourly 2013-2016, from Giani et al.)
// is not redistributable; this module generates a field with the same
// statistical anatomy so the full pipeline of the paper runs unchanged:
//   * a Saudi-like lon/lat domain,
//   * a smooth orography-flavoured mean wind field (higher along the
//     north / west mountain ridges, as in the paper's Fig. 2a),
//   * day-to-day variation driven by a Matern GP with the paper's fitted
//     smoothness (1.43391),
//   * the same post-processing chain: per-location moments over summer
//     days, standardisation of one target day, Matern MLE fit on the
//     standardized snapshot, confidence-region detection at u = 4 m/s.
#pragma once

#include "geo/field.hpp"
#include "geo/geometry.hpp"
#include "linalg/matrix.hpp"

namespace parmvn::geo {

struct WindDataset {
  LocationSet locations;         // lon/lat
  la::Matrix daily_speed;        // n x num_days, m/s
  i64 target_day = 0;            // the "July 15, 2015" analogue
  FieldMoments moments;          // per-location mean/sd over days
  std::vector<double> target_standardized;  // standardized target-day field
  std::vector<double> mean_field;           // underlying truth (diagnostics)
};

struct WindOptions {
  i64 grid_nx = 40;
  i64 grid_ny = 30;
  i64 num_days = 60;
  double gp_sigma2 = 1.2;      // day-to-day anomaly variance (m/s)^2
  double gp_range = 0.08;      // anomaly correlation range (domain units)
  double gp_smoothness = 1.43391;  // the paper's fitted smoothness
  u64 seed = 20150715;
};

/// Generate the synthetic dataset. Locations live in the Saudi bounding box
/// (lon 34..56, lat 16..32) but the GP range is expressed in the unit-square
/// normalisation used for all covariance work.
[[nodiscard]] WindDataset simulate_wind(const WindOptions& opts);

/// The deterministic mean wind field (m/s) at a unit-square location:
/// plains ~3.5 m/s plus ridge bumps peaking ~8 m/s.
[[nodiscard]] double wind_mean_speed(double ux, double uy);

}  // namespace parmvn::geo
