#include "geo/field.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "linalg/blas.hpp"
#include "linalg/potrf.hpp"
#include "linalg/solve.hpp"
#include "stats/rng.hpp"

namespace parmvn::geo {

GpSampler::GpSampler(const la::MatrixGenerator& gen) {
  PARMVN_EXPECTS(gen.rows() == gen.cols());
  l_ = dense_from_generator(gen);
  la::potrf_lower_or_throw(l_.view());
  la::zero_strict_upper(l_.view());
}

std::vector<double> GpSampler::draw(u64 seed) const {
  const i64 n = l_.rows();
  stats::Xoshiro256pp g(seed);
  std::vector<double> z(static_cast<std::size_t>(n));
  for (double& v : z) v = g.next_normal();
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  la::gemv(la::Trans::kNo, 1.0, l_.view(), z.data(), 0.0, x.data());
  return x;
}

Posterior posterior_from_observations(const la::Matrix& prior_cov,
                                      const std::vector<double>& prior_mean,
                                      const std::vector<i64>& observed,
                                      const std::vector<double>& y,
                                      double tau2) {
  const i64 n = prior_cov.rows();
  PARMVN_EXPECTS(prior_cov.cols() == n);
  PARMVN_EXPECTS(static_cast<i64>(prior_mean.size()) == n);
  PARMVN_EXPECTS(observed.size() == y.size());
  PARMVN_EXPECTS(tau2 > 0.0);

  // Sigma_post = (Sigma^-1 + D)^-1 with D = (1/tau2) * diag(indicator).
  Posterior post;
  post.covariance = la::to_matrix(prior_cov.view());
  la::spd_inverse(post.covariance.view());
  for (const i64 idx : observed) {
    PARMVN_EXPECTS(idx >= 0 && idx < n);
    post.covariance(idx, idx) += 1.0 / tau2;
  }
  la::spd_inverse(post.covariance.view());

  // mu_post = mu + (1/tau2) Sigma_post A^T (y - A mu).
  std::vector<double> residual(static_cast<std::size_t>(n), 0.0);
  for (std::size_t k = 0; k < observed.size(); ++k) {
    const i64 idx = observed[k];
    residual[static_cast<std::size_t>(idx)] =
        (y[k] - prior_mean[static_cast<std::size_t>(idx)]) / tau2;
  }
  post.mean = prior_mean;
  la::gemv(la::Trans::kNo, 1.0, post.covariance.view(), residual.data(), 1.0,
           post.mean.data());
  return post;
}

FieldMoments field_moments(const la::Matrix& series) {
  const i64 n = series.rows();
  const i64 t = series.cols();
  PARMVN_EXPECTS(t >= 2);
  FieldMoments m;
  m.mean.assign(static_cast<std::size_t>(n), 0.0);
  m.sd.assign(static_cast<std::size_t>(n), 0.0);
  for (i64 j = 0; j < t; ++j)
    for (i64 i = 0; i < n; ++i)
      m.mean[static_cast<std::size_t>(i)] += series(i, j);
  for (double& v : m.mean) v /= static_cast<double>(t);
  for (i64 j = 0; j < t; ++j)
    for (i64 i = 0; i < n; ++i) {
      const double d = series(i, j) - m.mean[static_cast<std::size_t>(i)];
      m.sd[static_cast<std::size_t>(i)] += d * d;
    }
  for (double& v : m.sd) v = std::sqrt(v / static_cast<double>(t - 1));
  return m;
}

std::vector<double> standardize(const std::vector<double>& x,
                                const FieldMoments& moments) {
  PARMVN_EXPECTS(x.size() == moments.mean.size());
  std::vector<double> z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    PARMVN_EXPECTS(moments.sd[i] > 0.0);
    z[i] = (x[i] - moments.mean[i]) / moments.sd[i];
  }
  return z;
}

}  // namespace parmvn::geo
