// Spatial location sets and orderings.
//
// TLR compressibility depends on spatial locality of the index ordering:
// points are sorted along a Morton (Z-order) curve so that any contiguous
// index range is a spatially compact cluster and off-diagonal covariance
// tiles decay in rank (the STARS-H convention the paper inherits).
#pragma once

#include <vector>

#include "common/types.hpp"

namespace parmvn::geo {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

using LocationSet = std::vector<Point>;

/// Euclidean distance.
[[nodiscard]] double distance(const Point& a, const Point& b) noexcept;

/// nx * ny regular grid on [0,1]^2 (cell-centered).
[[nodiscard]] LocationSet regular_grid(i64 nx, i64 ny);

/// Regular grid with uniform jitter of +-jitter*cell inside each cell
/// (ExaGeoStat's irregular-location generator).
[[nodiscard]] LocationSet jittered_grid(i64 nx, i64 ny, double jitter,
                                        u64 seed);

/// n i.i.d. uniform points on [0,1]^2.
[[nodiscard]] LocationSet uniform_random(i64 n, u64 seed);

/// Affine-map points into [x0,x1] x [y0,y1].
void scale_to_box(LocationSet& points, double x0, double x1, double y0,
                  double y1);

/// Permutation that sorts points along a Morton (Z-order) curve over the
/// bounding box; perm[k] = index of the k-th point in Morton order.
[[nodiscard]] std::vector<i64> morton_order(const LocationSet& points);

/// points_out[k] = points[perm[k]] (works for any value vector).
template <class T>
[[nodiscard]] std::vector<T> apply_permutation(const std::vector<T>& values,
                                               const std::vector<i64>& perm) {
  std::vector<T> out;
  out.reserve(values.size());
  for (const i64 idx : perm) out.push_back(values[static_cast<std::size_t>(idx)]);
  return out;
}

/// Inverse permutation: inv[perm[k]] = k.
[[nodiscard]] std::vector<i64> invert_permutation(const std::vector<i64>& perm);

}  // namespace parmvn::geo
