#include "geo/covgen.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "common/contracts.hpp"
#include "common/hash.hpp"

namespace parmvn::geo {

KernelCovGenerator::KernelCovGenerator(
    LocationSet locations, std::shared_ptr<const stats::CovKernel> kernel,
    double nugget)
    : locations_(std::move(locations)),
      kernel_(std::move(kernel)),
      nugget_(nugget) {
  PARMVN_EXPECTS(!locations_.empty());
  PARMVN_EXPECTS(kernel_ != nullptr);
  PARMVN_EXPECTS(nugget >= 0.0);
}

double KernelCovGenerator::entry(i64 i, i64 j) const {
  const double d = distance(locations_[static_cast<std::size_t>(i)],
                            locations_[static_cast<std::size_t>(j)]);
  double v = (*kernel_)(d);
  if (i == j) v += nugget_;
  return v;
}

std::string KernelCovGenerator::cache_key() const {
  const std::string kernel_key = kernel_->cache_key();
  if (kernel_key.empty()) return {};
  // 128-bit content hash of the coordinates (two independently seeded
  // streams): the cache never re-verifies generator contents on a hit, so
  // the key alone must make serving a factor for the wrong location set
  // astronomically unlikely.
  u64 h1 = kFnv1aOffset;
  u64 h2 = kFnv1aOffset2;
  for (const Point& pt : locations_) {
    h1 = fnv1a_append(h1, &pt.x, sizeof(pt.x));
    h1 = fnv1a_append(h1, &pt.y, sizeof(pt.y));
    h2 = fnv1a_append(h2, &pt.x, sizeof(pt.x));
    h2 = fnv1a_append(h2, &pt.y, sizeof(pt.y));
  }
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "|nug=%.17g|locs=%zu:%016" PRIx64 "%016" PRIx64, nugget_,
                locations_.size(), h1, h2);
  return "kernelcov|" + kernel_key + buf;
}

std::vector<double> KernelCovGenerator::coords_xy() const {
  std::vector<double> xy;
  xy.reserve(2 * locations_.size());
  for (const Point& pt : locations_) {
    xy.push_back(pt.x);
    xy.push_back(pt.y);
  }
  return xy;
}

PermutedGenerator::PermutedGenerator(const la::MatrixGenerator& base,
                                     std::vector<i64> perm)
    : base_(base), perm_(std::move(perm)) {
  PARMVN_EXPECTS(base_.rows() == base_.cols());
  PARMVN_EXPECTS(static_cast<i64>(perm_.size()) <= base_.rows());
  for (const i64 p : perm_) PARMVN_EXPECTS(p >= 0 && p < base_.rows());
}

double PermutedGenerator::entry(i64 i, i64 j) const {
  return base_.entry(perm_[static_cast<std::size_t>(i)],
                     perm_[static_cast<std::size_t>(j)]);
}

std::string PermutedGenerator::cache_key() const {
  const std::string base_key = base_.cache_key();
  if (base_key.empty()) return {};
  u64 h1 = kFnv1aOffset;
  u64 h2 = kFnv1aOffset2;
  for (const i64 p : perm_) {
    h1 = fnv1a_append(h1, &p, sizeof(p));
    h2 = fnv1a_append(h2, &p, sizeof(p));
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "|perm=%zu:%016" PRIx64 "%016" PRIx64,
                perm_.size(), h1, h2);
  return "perm|" + base_key + buf;
}

std::vector<double> PermutedGenerator::coords_xy() const {
  const std::vector<double> base_xy = base_.coords_xy();
  if (base_xy.empty()) return {};
  std::vector<double> xy;
  xy.reserve(2 * perm_.size());
  for (const i64 p : perm_) {
    xy.push_back(base_xy[static_cast<std::size_t>(2 * p)]);
    xy.push_back(base_xy[static_cast<std::size_t>(2 * p + 1)]);
  }
  return xy;
}

CorrelationGenerator::CorrelationGenerator(const la::MatrixGenerator& base)
    : base_(base) {
  PARMVN_EXPECTS(base.rows() == base.cols());
  inv_sd_.resize(static_cast<std::size_t>(base.rows()));
  for (i64 i = 0; i < base.rows(); ++i) {
    const double var = base.entry(i, i);
    PARMVN_EXPECTS(var > 0.0);
    inv_sd_[static_cast<std::size_t>(i)] = 1.0 / std::sqrt(var);
  }
}

double CorrelationGenerator::entry(i64 i, i64 j) const {
  return base_.entry(i, j) * inv_sd_[static_cast<std::size_t>(i)] *
         inv_sd_[static_cast<std::size_t>(j)];
}

std::string CorrelationGenerator::cache_key() const {
  const std::string base_key = base_.cache_key();
  if (base_key.empty()) return {};
  return "corr|" + base_key;
}

la::Matrix dense_from_generator(const la::MatrixGenerator& gen) {
  la::Matrix out(gen.rows(), gen.cols());
  gen.fill(0, 0, out.view());
  return out;
}

}  // namespace parmvn::geo
