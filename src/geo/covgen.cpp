#include "geo/covgen.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace parmvn::geo {

KernelCovGenerator::KernelCovGenerator(
    LocationSet locations, std::shared_ptr<const stats::CovKernel> kernel,
    double nugget)
    : locations_(std::move(locations)),
      kernel_(std::move(kernel)),
      nugget_(nugget) {
  PARMVN_EXPECTS(!locations_.empty());
  PARMVN_EXPECTS(kernel_ != nullptr);
  PARMVN_EXPECTS(nugget >= 0.0);
}

double KernelCovGenerator::entry(i64 i, i64 j) const {
  const double d = distance(locations_[static_cast<std::size_t>(i)],
                            locations_[static_cast<std::size_t>(j)]);
  double v = (*kernel_)(d);
  if (i == j) v += nugget_;
  return v;
}

PermutedGenerator::PermutedGenerator(const la::MatrixGenerator& base,
                                     std::vector<i64> perm)
    : base_(base), perm_(std::move(perm)) {
  PARMVN_EXPECTS(base_.rows() == base_.cols());
  PARMVN_EXPECTS(static_cast<i64>(perm_.size()) <= base_.rows());
  for (const i64 p : perm_) PARMVN_EXPECTS(p >= 0 && p < base_.rows());
}

double PermutedGenerator::entry(i64 i, i64 j) const {
  return base_.entry(perm_[static_cast<std::size_t>(i)],
                     perm_[static_cast<std::size_t>(j)]);
}

CorrelationGenerator::CorrelationGenerator(const la::MatrixGenerator& base)
    : base_(base) {
  PARMVN_EXPECTS(base.rows() == base.cols());
  inv_sd_.resize(static_cast<std::size_t>(base.rows()));
  for (i64 i = 0; i < base.rows(); ++i) {
    const double var = base.entry(i, i);
    PARMVN_EXPECTS(var > 0.0);
    inv_sd_[static_cast<std::size_t>(i)] = 1.0 / std::sqrt(var);
  }
}

double CorrelationGenerator::entry(i64 i, i64 j) const {
  return base_.entry(i, j) * inv_sd_[static_cast<std::size_t>(i)] *
         inv_sd_[static_cast<std::size_t>(j)];
}

la::Matrix dense_from_generator(const la::MatrixGenerator& gen) {
  la::Matrix out(gen.rows(), gen.cols());
  gen.fill(0, 0, out.view());
  return out;
}

}  // namespace parmvn::geo
