#include "geo/io.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/contracts.hpp"

namespace parmvn::geo {

void write_field_csv(const std::string& path, const LocationSet& locations,
                     const std::vector<double>& values) {
  PARMVN_EXPECTS(locations.size() == values.size());
  std::ofstream out(path);
  if (!out) throw Error("cannot open for write: " + path);
  out << "x,y,value\n";
  out.precision(17);
  for (std::size_t i = 0; i < locations.size(); ++i) {
    out << locations[i].x << ',' << locations[i].y << ',' << values[i] << '\n';
  }
}

FieldCsv read_field_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open for read: " + path);
  FieldCsv data;
  std::string line;
  if (!std::getline(in, line)) throw Error("empty csv: " + path);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ss(line);
    std::string fx, fy, fv;
    if (!std::getline(ss, fx, ',') || !std::getline(ss, fy, ',') ||
        !std::getline(ss, fv, ',')) {
      throw Error("malformed csv row: " + line);
    }
    data.locations.push_back({std::stod(fx), std::stod(fy)});
    data.values.push_back(std::stod(fv));
  }
  return data;
}

std::string ascii_heatmap(const LocationSet& locations,
                          const std::vector<double>& values, int width,
                          int height, double vmin, double vmax) {
  PARMVN_EXPECTS(locations.size() == values.size());
  PARMVN_EXPECTS(!locations.empty());
  PARMVN_EXPECTS(width >= 2 && height >= 2);
  static const char kRamp[] = " .:-=+*#%@";
  constexpr int kLevels = 10;

  if (vmin >= vmax) {
    vmin = std::numeric_limits<double>::infinity();
    vmax = -vmin;
    for (const double v : values) {
      vmin = std::min(vmin, v);
      vmax = std::max(vmax, v);
    }
    if (vmax <= vmin) vmax = vmin + 1.0;
  }

  double minx = std::numeric_limits<double>::infinity(), maxx = -minx;
  double miny = minx, maxy = -minx;
  for (const Point& p : locations) {
    minx = std::min(minx, p.x);
    maxx = std::max(maxx, p.x);
    miny = std::min(miny, p.y);
    maxy = std::max(maxy, p.y);
  }
  const double dx = (maxx > minx) ? (maxx - minx) : 1.0;
  const double dy = (maxy > miny) ? (maxy - miny) : 1.0;

  // Nearest-sample-per-cell via accumulation: average all points landing in
  // a cell; cells with no points inherit the previous column's shade.
  std::vector<double> sum(static_cast<std::size_t>(width * height), 0.0);
  std::vector<int> count(static_cast<std::size_t>(width * height), 0);
  for (std::size_t i = 0; i < locations.size(); ++i) {
    int cx = static_cast<int>((locations[i].x - minx) / dx * (width - 1) + 0.5);
    int cy = static_cast<int>((locations[i].y - miny) / dy * (height - 1) + 0.5);
    cx = std::clamp(cx, 0, width - 1);
    cy = std::clamp(cy, 0, height - 1);
    sum[static_cast<std::size_t>(cy * width + cx)] += values[i];
    count[static_cast<std::size_t>(cy * width + cx)] += 1;
  }

  std::string out;
  out.reserve(static_cast<std::size_t>((width + 1) * height));
  for (int row = height - 1; row >= 0; --row) {  // north on top
    char prev = ' ';
    for (int col = 0; col < width; ++col) {
      const std::size_t cell = static_cast<std::size_t>(row * width + col);
      char c = prev;
      if (count[cell] > 0) {
        const double v = sum[cell] / count[cell];
        int level = static_cast<int>((v - vmin) / (vmax - vmin) * kLevels);
        level = std::clamp(level, 0, kLevels - 1);
        c = kRamp[level];
      }
      out.push_back(c);
      prev = c;
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace parmvn::geo
