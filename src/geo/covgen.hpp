// Covariance-matrix generators over spatial location sets — the bridge
// between geometry + kernels (stats) and matrix consumers (tile/TLR/PMVN).
#pragma once

#include <memory>

#include "geo/geometry.hpp"
#include "linalg/generator.hpp"
#include "stats/covariance.hpp"

namespace parmvn::geo {

/// Sigma(i,j) = C(||s_i - s_j||) + nugget * [i == j]. Thread-safe.
class KernelCovGenerator final : public la::MatrixGenerator {
 public:
  KernelCovGenerator(LocationSet locations,
                     std::shared_ptr<const stats::CovKernel> kernel,
                     double nugget = 0.0);

  [[nodiscard]] i64 rows() const override {
    return static_cast<i64>(locations_.size());
  }
  [[nodiscard]] i64 cols() const override { return rows(); }
  [[nodiscard]] double entry(i64 i, i64 j) const override;
  /// kernel key + nugget + a bit-exact hash of the location set; empty
  /// (non-cacheable) when the kernel does not implement cache_key().
  [[nodiscard]] std::string cache_key() const override;
  [[nodiscard]] std::vector<double> coords_xy() const override;

  [[nodiscard]] const LocationSet& locations() const noexcept {
    return locations_;
  }
  [[nodiscard]] const stats::CovKernel& kernel() const noexcept {
    return *kernel_;
  }
  [[nodiscard]] double nugget() const noexcept { return nugget_; }

 private:
  LocationSet locations_;
  std::shared_ptr<const stats::CovKernel> kernel_;
  double nugget_;
};

/// View of another generator with rows/cols re-indexed by a permutation:
/// entry(i, j) = base(perm[i], perm[j]). Used to reorder the covariance by
/// descending marginal probability (Algorithm 1, line 6) without copying.
class PermutedGenerator final : public la::MatrixGenerator {
 public:
  PermutedGenerator(const la::MatrixGenerator& base, std::vector<i64> perm);

  [[nodiscard]] i64 rows() const override {
    return static_cast<i64>(perm_.size());
  }
  [[nodiscard]] i64 cols() const override { return rows(); }
  [[nodiscard]] double entry(i64 i, i64 j) const override;
  [[nodiscard]] std::string cache_key() const override;
  /// Base coordinates re-indexed by the permutation (empty when the base
  /// has none).
  [[nodiscard]] std::vector<double> coords_xy() const override;

 private:
  const la::MatrixGenerator& base_;
  std::vector<i64> perm_;
};

/// Normalise a covariance generator into a correlation generator:
/// entry(i,j) = base(i,j) / sqrt(base(i,i) base(j,j)).
class CorrelationGenerator final : public la::MatrixGenerator {
 public:
  explicit CorrelationGenerator(const la::MatrixGenerator& base);

  [[nodiscard]] i64 rows() const override { return base_.rows(); }
  [[nodiscard]] i64 cols() const override { return rows(); }
  [[nodiscard]] double entry(i64 i, i64 j) const override;
  [[nodiscard]] std::string cache_key() const override;
  /// Standardisation does not move sites: forwards the base coordinates.
  [[nodiscard]] std::vector<double> coords_xy() const override {
    return base_.coords_xy();
  }

 private:
  const la::MatrixGenerator& base_;
  std::vector<double> inv_sd_;
};

/// Materialise any generator into a dense matrix.
[[nodiscard]] la::Matrix dense_from_generator(const la::MatrixGenerator& gen);

}  // namespace parmvn::geo
