#include "geo/geometry.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contracts.hpp"
#include "stats/rng.hpp"

namespace parmvn::geo {

double distance(const Point& a, const Point& b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

LocationSet regular_grid(i64 nx, i64 ny) {
  PARMVN_EXPECTS(nx >= 1 && ny >= 1);
  LocationSet pts;
  pts.reserve(static_cast<std::size_t>(nx * ny));
  for (i64 iy = 0; iy < ny; ++iy)
    for (i64 ix = 0; ix < nx; ++ix)
      pts.push_back({(static_cast<double>(ix) + 0.5) / static_cast<double>(nx),
                     (static_cast<double>(iy) + 0.5) / static_cast<double>(ny)});
  return pts;
}

LocationSet jittered_grid(i64 nx, i64 ny, double jitter, u64 seed) {
  PARMVN_EXPECTS(jitter >= 0.0 && jitter <= 0.5);
  LocationSet pts = regular_grid(nx, ny);
  stats::Xoshiro256pp g(seed);
  const double cell_x = 1.0 / static_cast<double>(nx);
  const double cell_y = 1.0 / static_cast<double>(ny);
  for (Point& p : pts) {
    p.x += (2.0 * g.next_u01() - 1.0) * jitter * cell_x;
    p.y += (2.0 * g.next_u01() - 1.0) * jitter * cell_y;
  }
  return pts;
}

LocationSet uniform_random(i64 n, u64 seed) {
  PARMVN_EXPECTS(n >= 1);
  stats::Xoshiro256pp g(seed);
  LocationSet pts(static_cast<std::size_t>(n));
  for (Point& p : pts) {
    p.x = g.next_u01();
    p.y = g.next_u01();
  }
  return pts;
}

void scale_to_box(LocationSet& points, double x0, double x1, double y0,
                  double y1) {
  PARMVN_EXPECTS(x1 > x0 && y1 > y0);
  if (points.empty()) return;
  double minx = std::numeric_limits<double>::infinity(), maxx = -minx;
  double miny = minx, maxy = -minx;
  for (const Point& p : points) {
    minx = std::min(minx, p.x);
    maxx = std::max(maxx, p.x);
    miny = std::min(miny, p.y);
    maxy = std::max(maxy, p.y);
  }
  const double sx = (maxx > minx) ? (x1 - x0) / (maxx - minx) : 0.0;
  const double sy = (maxy > miny) ? (y1 - y0) / (maxy - miny) : 0.0;
  for (Point& p : points) {
    p.x = x0 + (p.x - minx) * sx;
    p.y = y0 + (p.y - miny) * sy;
  }
}

namespace {

// Interleave the low 32 bits of x and y into a 64-bit Morton key.
u64 morton_key(u64 x, u64 y) {
  auto spread = [](u64 v) {
    v &= 0xffffffffULL;
    v = (v | (v << 16)) & 0x0000ffff0000ffffULL;
    v = (v | (v << 8)) & 0x00ff00ff00ff00ffULL;
    v = (v | (v << 4)) & 0x0f0f0f0f0f0f0f0fULL;
    v = (v | (v << 2)) & 0x3333333333333333ULL;
    v = (v | (v << 1)) & 0x5555555555555555ULL;
    return v;
  };
  return spread(x) | (spread(y) << 1);
}

}  // namespace

std::vector<i64> morton_order(const LocationSet& points) {
  double minx = std::numeric_limits<double>::infinity(), maxx = -minx;
  double miny = minx, maxy = -minx;
  for (const Point& p : points) {
    minx = std::min(minx, p.x);
    maxx = std::max(maxx, p.x);
    miny = std::min(miny, p.y);
    maxy = std::max(maxy, p.y);
  }
  const double sx = (maxx > minx) ? 1.0 / (maxx - minx) : 0.0;
  const double sy = (maxy > miny) ? 1.0 / (maxy - miny) : 0.0;
  constexpr double kCells = 4294967295.0;  // 2^32 - 1

  std::vector<std::pair<u64, i64>> keyed;
  keyed.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const u64 gx = static_cast<u64>((points[i].x - minx) * sx * kCells);
    const u64 gy = static_cast<u64>((points[i].y - miny) * sy * kCells);
    keyed.emplace_back(morton_key(gx, gy), static_cast<i64>(i));
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<i64> perm;
  perm.reserve(points.size());
  for (const auto& [key, idx] : keyed) perm.push_back(idx);
  return perm;
}

std::vector<i64> invert_permutation(const std::vector<i64>& perm) {
  std::vector<i64> inv(perm.size());
  for (std::size_t k = 0; k < perm.size(); ++k)
    inv[static_cast<std::size_t>(perm[k])] = static_cast<i64>(k);
  return inv;
}

}  // namespace parmvn::geo
