#include "geo/wind.hpp"

#include <cmath>
#include <memory>

#include "common/contracts.hpp"
#include "stats/covariance.hpp"
#include "stats/rng.hpp"

namespace parmvn::geo {

double wind_mean_speed(double ux, double uy) {
  auto bump = [](double x, double y, double cx, double cy, double sx,
                 double sy) {
    const double dx = (x - cx) / sx;
    const double dy = (y - cy) / sy;
    return std::exp(-0.5 * (dx * dx + dy * dy));
  };
  // Ridges loosely following the paper's Fig. 2a hot spots: the north-west
  // highlands, the eastern plateau and the south-western Asir mountains.
  double speed = 3.2;
  speed += 4.5 * bump(ux, uy, 0.25, 0.85, 0.18, 0.12);  // north-west
  speed += 3.5 * bump(ux, uy, 0.85, 0.55, 0.12, 0.20);  // east
  speed += 4.0 * bump(ux, uy, 0.15, 0.15, 0.10, 0.14);  // south-west (Asir)
  speed += 1.2 * std::sin(3.0 * ux) * std::cos(2.0 * uy);
  return speed;
}

WindDataset simulate_wind(const WindOptions& opts) {
  PARMVN_EXPECTS(opts.grid_nx >= 2 && opts.grid_ny >= 2);
  PARMVN_EXPECTS(opts.num_days >= 2);

  WindDataset data;
  // Unit-square grid used for all covariance math; lon/lat copy for maps.
  LocationSet unit = regular_grid(opts.grid_nx, opts.grid_ny);
  data.locations = unit;
  scale_to_box(data.locations, 34.0, 56.0, 16.0, 32.0);

  const i64 n = static_cast<i64>(unit.size());
  data.mean_field.resize(static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i)
    data.mean_field[static_cast<std::size_t>(i)] =
        wind_mean_speed(unit[static_cast<std::size_t>(i)].x,
                        unit[static_cast<std::size_t>(i)].y);

  // Day-to-day anomalies: exact GP draws with the paper-flavoured Matern.
  auto kernel = std::make_shared<stats::MaternKernel>(
      opts.gp_sigma2, opts.gp_range, opts.gp_smoothness);
  KernelCovGenerator gen(unit, kernel, /*nugget=*/1e-8);
  GpSampler sampler(gen);

  data.daily_speed = la::Matrix(n, opts.num_days);
  stats::Xoshiro256pp seeder(opts.seed);
  for (i64 day = 0; day < opts.num_days; ++day) {
    const std::vector<double> anomaly = sampler.draw(seeder.next());
    // Mild seasonal modulation across the window + small observation noise.
    const double season =
        0.6 * std::sin(2.0 * M_PI * static_cast<double>(day) /
                       static_cast<double>(opts.num_days));
    stats::Xoshiro256pp noise(seeder.next());
    for (i64 i = 0; i < n; ++i) {
      double v = data.mean_field[static_cast<std::size_t>(i)] + season +
                 anomaly[static_cast<std::size_t>(i)] +
                 0.15 * noise.next_normal();
      if (v < 0.0) v = 0.0;  // physical floor
      data.daily_speed(i, day) = v;
    }
  }

  data.target_day = opts.num_days / 2;
  data.moments = field_moments(data.daily_speed);
  std::vector<double> target(static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i) target[static_cast<std::size_t>(i)] =
      data.daily_speed(i, data.target_day);
  data.target_standardized = standardize(target, data.moments);
  return data;
}

}  // namespace parmvn::geo
