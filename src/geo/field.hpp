// Gaussian random field simulation and the posterior update of the paper's
// synthetic experiments (Section V-B, equations 7-8).
#pragma once

#include <vector>

#include "geo/covgen.hpp"
#include "linalg/matrix.hpp"

namespace parmvn::geo {

/// One exact draw of a zero-mean GP with covariance `gen` (dense Cholesky
/// sampling; O(n^3) once, O(n^2) per draw via the returned factor).
class GpSampler {
 public:
  explicit GpSampler(const la::MatrixGenerator& gen);

  /// x = L z, z ~ N(0, I).
  [[nodiscard]] std::vector<double> draw(u64 seed) const;

  [[nodiscard]] const la::Matrix& chol() const noexcept { return l_; }

 private:
  la::Matrix l_;
};

/// Posterior of x | y where y = A x + eps, eps ~ N(0, tau2 I), and A selects
/// `observed` indices (the paper's indicator matrix; eq. 7-8):
///   Sigma_post = (Sigma^-1 + (1/tau2) A^T A)^-1
///   mu_post    = mu + (1/tau2) Sigma_post A^T (y - A mu)
struct Posterior {
  la::Matrix covariance;
  std::vector<double> mean;
};

[[nodiscard]] Posterior posterior_from_observations(
    const la::Matrix& prior_cov, const std::vector<double>& prior_mean,
    const std::vector<i64>& observed, const std::vector<double>& y,
    double tau2);

/// Mean and standard deviation per location over a time series stored as
/// column-major (n x t).
struct FieldMoments {
  std::vector<double> mean;
  std::vector<double> sd;
};

[[nodiscard]] FieldMoments field_moments(const la::Matrix& series);

/// (x - mean) / sd element-wise.
[[nodiscard]] std::vector<double> standardize(const std::vector<double>& x,
                                              const FieldMoments& moments);

}  // namespace parmvn::geo
