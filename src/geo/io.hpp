// CSV field I/O and a terminal heat-map renderer used by the examples and
// benches to "plot" the paper's map figures as ASCII art.
#pragma once

#include <string>
#include <vector>

#include "geo/geometry.hpp"

namespace parmvn::geo {

/// Write "x,y,value" rows (with header) for one scalar field.
void write_field_csv(const std::string& path, const LocationSet& locations,
                     const std::vector<double>& values);

/// Read back a field written by write_field_csv.
struct FieldCsv {
  LocationSet locations;
  std::vector<double> values;
};
[[nodiscard]] FieldCsv read_field_csv(const std::string& path);

/// Render a scalar field on a width x height character grid: values are
/// binned to the shade ramp " .:-=+*#%@" between vmin and vmax (pass
/// vmin >= vmax to auto-scale). Nearest-point sampling.
[[nodiscard]] std::string ascii_heatmap(const LocationSet& locations,
                                        const std::vector<double>& values,
                                        int width, int height,
                                        double vmin = 1.0, double vmax = -1.0);

}  // namespace parmvn::geo
