#include "dist/cluster_sim.hpp"

#include <algorithm>
#include <queue>

#include "common/contracts.hpp"

namespace parmvn::dist {

ClusterSim::ClusterSim(i64 nodes, MachineModel machine)
    : nodes_(nodes), machine_(machine) {
  PARMVN_EXPECTS(nodes_ >= 1);
  PARMVN_EXPECTS(machine_.cores_per_node >= 1);
}

SimResult ClusterSim::run(const std::vector<SimTask>& tasks,
                          i64 prefix_count) const {
  PARMVN_EXPECTS(prefix_count <= static_cast<i64>(tasks.size()));
  // Min-heap of core-free times per node.
  using CoreHeap =
      std::priority_queue<double, std::vector<double>, std::greater<>>;
  std::vector<CoreHeap> cores(static_cast<std::size_t>(nodes_));
  for (auto& heap : cores)
    for (i64 c = 0; c < machine_.cores_per_node; ++c) heap.push(0.0);

  std::vector<double> finish(tasks.size(), 0.0);
  SimResult r;
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const SimTask& task = tasks[t];
    PARMVN_EXPECTS(task.owner >= 0 && task.owner < nodes_);
    PARMVN_EXPECTS(task.cost_s >= 0.0);

    double ready = 0.0;
    for (const i64 dep : task.deps) {
      PARMVN_EXPECTS(dep >= 0 && dep < static_cast<i64>(t));
      double arrive = finish[static_cast<std::size_t>(dep)];
      if (tasks[static_cast<std::size_t>(dep)].owner != task.owner) {
        const double wire =
            transfer_seconds(machine_, tasks[static_cast<std::size_t>(dep)]
                                           .output_bytes);
        arrive += wire;
        r.comm_s += wire;
      }
      ready = std::max(ready, arrive);
    }

    CoreHeap& heap = cores[static_cast<std::size_t>(task.owner)];
    const double core_free = heap.top();
    heap.pop();
    const double start = std::max(ready, core_free);
    finish[t] = start + task.cost_s;
    heap.push(finish[t]);

    r.makespan_s = std::max(r.makespan_s, finish[t]);
    if (prefix_count < 0 || static_cast<i64>(t) < prefix_count)
      r.prefix_makespan_s = std::max(r.prefix_makespan_s, finish[t]);
    r.total_busy_core_s += task.cost_s;
  }

  r.parallel_efficiency =
      r.makespan_s > 0.0
          ? r.total_busy_core_s /
                (r.makespan_s * static_cast<double>(total_cores()))
          : 1.0;
  return r;
}

}  // namespace parmvn::dist
