#include "dist/cost_model.hpp"

#include <algorithm>
#include <vector>

#include "common/contracts.hpp"
#include "common/timer.hpp"
#include "linalg/blas.hpp"
#include "linalg/matrix.hpp"
#include "stats/normal.hpp"

namespace parmvn::dist {

namespace {

double rate(const MachineModel& m) noexcept {
  return std::max(m.gflops_per_core, 1e-9) * 1e9;
}

double stream_rate(const MachineModel& m) noexcept {
  return rate(m) * std::clamp(m.stream_efficiency, 1e-6, 1.0);
}

double d(i64 v) noexcept { return static_cast<double>(v); }

}  // namespace

double transfer_seconds(const MachineModel& m, i64 bytes) noexcept {
  return m.latency_s + d(std::max<i64>(bytes, 0)) / m.bandwidth_bytes_per_s;
}

double cost_potrf(const MachineModel& m, i64 nb) noexcept {
  return d(nb) * d(nb) * d(nb) / 3.0 / rate(m);
}

double cost_trsm(const MachineModel& m, i64 nb) noexcept {
  return d(nb) * d(nb) * d(nb) / rate(m);
}

double cost_syrk(const MachineModel& m, i64 nb) noexcept {
  return d(nb) * d(nb) * d(nb) / rate(m);
}

double cost_gemm(const MachineModel& m, i64 nb) noexcept {
  return 2.0 * d(nb) * d(nb) * d(nb) / rate(m);
}

double cost_tlr_trsm(const MachineModel& m, i64 nb, i64 rank) noexcept {
  // Solve L X = V against the rank columns of the tile's V factor.
  return d(nb) * d(nb) * d(rank) / rate(m);
}

double cost_tlr_syrk(const MachineModel& m, i64 nb, i64 rank) noexcept {
  // Diagonal update by a low-rank product: (U V^T)(U V^T)^T into nb x nb.
  return (2.0 * d(nb) * d(nb) * d(rank) + 2.0 * d(nb) * d(rank) * d(rank)) /
         rate(m);
}

double cost_tlr_gemm(const MachineModel& m, i64 nb, i64 rank_a,
                     i64 rank_b) noexcept {
  // HiCMA low-rank GEMM: small inner products plus the QR/SVD recompression
  // of the concatenated (rank_a + rank_b)-column factor, which dominates.
  const double rsum = d(rank_a) + d(rank_b);
  const double inner = 2.0 * d(nb) * d(rank_a) * d(rank_b);
  const double recompress = 6.0 * d(nb) * rsum * rsum;
  return (inner + recompress) / rate(m);
}

double cost_pmvn_qmc(const MachineModel& m, i64 nb, i64 nc) noexcept {
  // Per sample: a dtrsv-like propagation within the diagonal tile (nb^2
  // flops) plus nb integrand entries.
  return d(nc) * (d(nb) * d(nb) + kQmcFlopsPerEntry * d(nb)) / stream_rate(m);
}

double cost_pmvn_update_dense(const MachineModel& m, i64 nb, i64 nc) noexcept {
  // GEMM of the nb x nb factor tile into an nb x nc sample panel.
  return 2.0 * d(nb) * d(nb) * d(nc) / stream_rate(m);
}

double cost_pmvn_update_tlr(const MachineModel& m, i64 nb, i64 nc,
                            i64 rank) noexcept {
  // U (V^T Y): two skinny GEMMs through the rank.
  return 4.0 * d(nb) * d(rank) * d(nc) / stream_rate(m);
}

HostCalibration calibrate_host(i64 n) {
  PARMVN_EXPECTS(n >= 8);
  HostCalibration cal;

  // dgemm probe: repeat until >= 20 ms of work has been timed.
  {
    la::Matrix a(n, n), b(n, n), c(n, n);
    for (i64 j = 0; j < n; ++j)
      for (i64 i = 0; i < n; ++i) {
        a(i, j) = 1.0 / d(1 + i + j);
        b(i, j) = 1.0 / d(1 + ((i * 7 + j) % 13));
      }
    const double flops = 2.0 * d(n) * d(n) * d(n);
    WallTimer timer;
    i64 reps = 0;
    do {
      la::gemm(la::Trans::kNo, la::Trans::kNo, 1.0, a.view(), b.view(),
               reps == 0 ? 0.0 : 1.0, c.view());
      ++reps;
    } while (timer.seconds() < 0.02);
    cal.gflops = flops * d(reps) / timer.seconds() / 1e9;
    PARMVN_ENSURES(c(0, 0) != 0.0);  // keep the probe observable
  }

  // Integrand probe: Phi^-1 followed by Phi, the pair evaluated once per
  // matrix entry — through the batched primitives, the way the
  // sample-contiguous sweep actually runs them, so stream_efficiency
  // reflects the vectorized (or fallback) integrand rate of this build.
  {
    const i64 nv = 4096;
    std::vector<double> u(static_cast<std::size_t>(nv));
    std::vector<double> q(static_cast<std::size_t>(nv));
    std::vector<double> f(static_cast<std::size_t>(nv));
    double v = 0.3;
    for (i64 i = 0; i < nv; ++i) {
      v = v * 0.999 + 0.0003;  // stays in (0, 1)
      u[static_cast<std::size_t>(i)] = v;
    }
    double sink = 0.0;
    WallTimer timer;
    i64 reps = 0;
    do {
      stats::norm_quantile_batch(nv, u.data(), q.data());
      for (i64 i = 0; i < nv; ++i)
        q[static_cast<std::size_t>(i)] *= 0.5;
      stats::norm_cdf_batch(nv, q.data(), f.data());
      sink += f[0];
      ++reps;
    } while (timer.seconds() < 0.02);
    const double elapsed = timer.seconds();
    PARMVN_ENSURES(sink > 0.0);
    cal.qmc_ns_per_entry = elapsed * 1e9 / (d(reps) * d(nv));
  }
  return cal;
}

MachineModel calibrated_machine(const HostCalibration& cal,
                                const MachineModel& base) noexcept {
  MachineModel m = base;
  if (cal.gflops > 0.0) m.gflops_per_core = cal.gflops;
  if (cal.gflops > 0.0 && cal.qmc_ns_per_entry > 0.0) {
    // The integrand probe measures ns per entry; at kQmcFlopsPerEntry flops
    // charged per entry that is an effective GFlop/s rate, and the sweep
    // kernels run at that rate relative to dgemm.
    const double qmc_gflops = kQmcFlopsPerEntry / cal.qmc_ns_per_entry;
    m.stream_efficiency = std::clamp(qmc_gflops / cal.gflops, 1e-3, 1.0);
  }
  return m;
}

}  // namespace parmvn::dist
