#include "dist/schedules.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace parmvn::dist {

BlockCyclic BlockCyclic::square(i64 nodes) {
  PARMVN_EXPECTS(nodes >= 1);
  BlockCyclic g;
  for (i64 p = 1; p * p <= nodes; ++p)
    if (nodes % p == 0) g.p = p;
  g.q = nodes / g.p;
  return g;
}

i64 RankProfile::rank(i64 distance) const noexcept {
  const i64 d = std::max<i64>(distance, 1);
  double r = near_rank * std::pow(decay, static_cast<double>(d - 1));
  r = std::round(r);
  i64 out = static_cast<i64>(r);
  out = std::max(out, floor_rank);
  if (cap > 0) out = std::min(out, cap);
  return out;
}

RankProfile RankProfile::fit(const tlr::TlrMatrix& m) {
  const i64 nt = m.num_tiles();
  PARMVN_EXPECTS(nt >= 2);

  // Mean rank per tile distance.
  std::vector<double> mean_rank;
  i64 max_rank = 1;
  for (i64 d = 1; d < nt; ++d) {
    double sum = 0.0;
    i64 count = 0;
    for (i64 i = d; i < nt; ++i) {
      const i64 r = m.lr(i, i - d).rank();
      sum += static_cast<double>(r);
      max_rank = std::max(max_rank, r);
      ++count;
    }
    mean_rank.push_back(sum / static_cast<double>(count));
  }

  // Least squares of log(mean rank) on (d - 1) over the informative head of
  // the curve (distant tiles sit at the floor and would flatten the fit).
  const std::size_t use =
      std::min<std::size_t>(mean_rank.size(), 8);
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  std::size_t pts = 0;
  for (std::size_t k = 0; k < use; ++k) {
    if (mean_rank[k] < 1.0) continue;
    const double x = static_cast<double>(k);
    const double y = std::log(mean_rank[k]);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++pts;
  }

  RankProfile out;
  out.cap = max_rank;
  if (pts < 2) {
    out.near_rank = std::max(mean_rank.empty() ? 1.0 : mean_rank[0], 1.0);
    out.decay = 1.0;
    return out;
  }
  const double n = static_cast<double>(pts);
  const double denom = n * sxx - sx * sx;
  const double slope = denom != 0.0 ? (n * sxy - sx * sy) / denom : 0.0;
  const double intercept = (sy - slope * sx) / n;
  out.near_rank = std::max(std::exp(intercept), 1.0);
  out.decay = std::clamp(std::exp(slope), 1e-3, 1.0);
  return out;
}

namespace {

// Last task to write each tile, keyed by i * nt + j; -1 = untouched input.
class WriterMap {
 public:
  WriterMap(i64 nt) : nt_(nt), map_(static_cast<std::size_t>(nt * nt), -1) {}

  [[nodiscard]] i64 get(i64 i, i64 j) const {
    return map_[static_cast<std::size_t>(i * nt_ + j)];
  }
  void set(i64 i, i64 j, i64 task) {
    map_[static_cast<std::size_t>(i * nt_ + j)] = task;
  }

 private:
  i64 nt_;
  std::vector<i64> map_;
};

void add_dep(SimTask& t, i64 dep) {
  if (dep >= 0) t.deps.push_back(dep);
}

// Shared skeleton for the dense and TLR factorizations; the lambdas price
// the four kernels and the tile payloads.
template <class PotrfCost, class TrsmCost, class SyrkCost, class GemmCost,
          class LrBytes>
std::vector<SimTask> cholesky_dag(i64 nt, BlockCyclic grid, i64 diag_bytes,
                                  PotrfCost potrf_cost, TrsmCost trsm_cost,
                                  SyrkCost syrk_cost, GemmCost gemm_cost,
                                  LrBytes lr_bytes) {
  PARMVN_EXPECTS(nt >= 1);
  std::vector<SimTask> tasks;
  WriterMap writer(nt);

  for (i64 k = 0; k < nt; ++k) {
    SimTask potrf;
    potrf.cost_s = potrf_cost(k);
    potrf.owner = grid.owner(k, k);
    potrf.output_bytes = diag_bytes;
    add_dep(potrf, writer.get(k, k));
    writer.set(k, k, static_cast<i64>(tasks.size()));
    tasks.push_back(std::move(potrf));

    for (i64 i = k + 1; i < nt; ++i) {
      SimTask trsm;
      trsm.cost_s = trsm_cost(i, k);
      trsm.owner = grid.owner(i, k);
      trsm.output_bytes = lr_bytes(i, k);
      add_dep(trsm, writer.get(k, k));
      add_dep(trsm, writer.get(i, k));
      writer.set(i, k, static_cast<i64>(tasks.size()));
      tasks.push_back(std::move(trsm));
    }

    for (i64 i = k + 1; i < nt; ++i) {
      SimTask syrk;
      syrk.cost_s = syrk_cost(i, k);
      syrk.owner = grid.owner(i, i);
      syrk.output_bytes = diag_bytes;
      add_dep(syrk, writer.get(i, k));
      add_dep(syrk, writer.get(i, i));
      writer.set(i, i, static_cast<i64>(tasks.size()));
      tasks.push_back(std::move(syrk));

      for (i64 j = k + 1; j < i; ++j) {
        SimTask gemm;
        gemm.cost_s = gemm_cost(i, j, k);
        gemm.owner = grid.owner(i, j);
        gemm.output_bytes = lr_bytes(i, j);
        add_dep(gemm, writer.get(i, k));
        add_dep(gemm, writer.get(j, k));
        add_dep(gemm, writer.get(i, j));
        writer.set(i, j, static_cast<i64>(tasks.size()));
        tasks.push_back(std::move(gemm));
      }
    }
  }
  return tasks;
}

}  // namespace

std::vector<SimTask> cholesky_dag_dense(i64 nt, i64 tile, BlockCyclic grid,
                                        const MachineModel& m) {
  const i64 tile_bytes = tile * tile * 8;
  return cholesky_dag(
      nt, grid, tile_bytes, [&](i64) { return cost_potrf(m, tile); },
      [&](i64, i64) { return cost_trsm(m, tile); },
      [&](i64, i64) { return cost_syrk(m, tile); },
      [&](i64, i64, i64) { return cost_gemm(m, tile); },
      [&](i64, i64) { return tile_bytes; });
}

std::vector<SimTask> cholesky_dag_tlr(i64 nt, i64 tile,
                                      const RankProfile& ranks,
                                      BlockCyclic grid, const MachineModel& m) {
  return cholesky_dag(
      nt, grid, tile * tile * 8,
      [&](i64) { return cost_potrf(m, tile); },
      [&](i64 i, i64 k) { return cost_tlr_trsm(m, tile, ranks.rank(i - k)); },
      [&](i64 i, i64 k) { return cost_tlr_syrk(m, tile, ranks.rank(i - k)); },
      [&](i64 i, i64 j, i64 k) {
        return cost_tlr_gemm(m, tile, ranks.rank(i - k), ranks.rank(j - k));
      },
      [&](i64 i, i64 j) { return 2 * tile * ranks.rank(i - j) * 8; });
}

PmvnDag pmvn_dag(i64 nt, i64 tile, i64 nc, bool tlr, const RankProfile& ranks,
                 BlockCyclic grid, const MachineModel& m, i64 samples_per_panel,
                 bool tlr_sweep) {
  PARMVN_EXPECTS(nc >= 1);
  PARMVN_EXPECTS(samples_per_panel >= 1);

  PmvnDag dag;
  dag.tasks = tlr ? cholesky_dag_tlr(nt, tile, ranks, grid, m)
                  : cholesky_dag_dense(nt, tile, grid, m);
  dag.chol_task_count = static_cast<i64>(dag.tasks.size());

  // Final writer of factor tile (i, k): trsm for i > k, potrf for i == k.
  // Reconstructed from the deterministic emission order of cholesky_dag.
  WriterMap factor(nt);
  {
    i64 id = 0;
    for (i64 k = 0; k < nt; ++k) {
      factor.set(k, k, id++);            // potrf
      for (i64 i = k + 1; i < nt; ++i) factor.set(i, k, id++);  // trsm
      id += (nt - 1 - k) * (nt - k) / 2; // syrk + gemm block of step k
    }
    PARMVN_ASSERT(id == dag.chol_task_count);
  }

  const i64 nodes = grid.p * grid.q;
  const i64 panel_bytes = tile * samples_per_panel * 8;

  // Sample panels are independent MC chains; panel c is pinned to node
  // c mod nodes (sample parallelism, as in the paper's distributed runs).
  for (i64 c = 0; c < nc; ++c) {
    const i64 node = c % nodes;
    std::vector<i64> row_writer(static_cast<std::size_t>(nt), -1);
    for (i64 k = 0; k < nt; ++k) {
      SimTask qmc;
      qmc.cost_s = cost_pmvn_qmc(m, tile, samples_per_panel);
      qmc.owner = node;
      qmc.output_bytes = panel_bytes;
      add_dep(qmc, factor.get(k, k));
      add_dep(qmc, row_writer[static_cast<std::size_t>(k)]);
      const i64 qmc_id = static_cast<i64>(dag.tasks.size());
      row_writer[static_cast<std::size_t>(k)] = qmc_id;
      dag.tasks.push_back(std::move(qmc));

      for (i64 i = k + 1; i < nt; ++i) {
        SimTask upd;
        upd.cost_s = tlr_sweep ? cost_pmvn_update_tlr(m, tile,
                                                      samples_per_panel,
                                                      ranks.rank(i - k))
                               : cost_pmvn_update_dense(m, tile,
                                                        samples_per_panel);
        upd.owner = node;
        upd.output_bytes = panel_bytes;
        add_dep(upd, qmc_id);
        add_dep(upd, factor.get(i, k));
        add_dep(upd, row_writer[static_cast<std::size_t>(i)]);
        row_writer[static_cast<std::size_t>(i)] =
            static_cast<i64>(dag.tasks.size());
        dag.tasks.push_back(std::move(upd));
      }
    }
  }
  return dag;
}

}  // namespace parmvn::dist
