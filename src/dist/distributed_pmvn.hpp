// End-to-end prediction of one distributed PMVN integration (Fig. 7 /
// Table III): build the Cholesky + sweep DAG for the requested
// configuration, replay it through the cluster simulator, report makespans.
//
// Problems larger than `max_sim_tiles` tiles are simulated at a capped tile
// count with a proportionally enlarged tile size (total matrix dimension
// preserved), which keeps predictions smooth and monotone in n while
// bounding DAG size.
#pragma once

#include "common/types.hpp"
#include "dist/cluster_sim.hpp"
#include "dist/cost_model.hpp"
#include "dist/schedules.hpp"

namespace parmvn::dist {

struct DistConfig {
  i64 n = 0;                  // problem dimension
  i64 tile = 980;             // tile size (the paper's Shaheen II choice)
  i64 qmc_samples = 10000;    // total QMC samples in the sweep
  i64 nodes = 1;
  bool tlr = false;           // TLR Cholesky factor
  bool tlr_sweep = false;     // low-rank sweep updates (Table II variant)
  RankProfile ranks;
  i64 max_sim_tiles = 140;    // cap on simulated tile count (<= 0: uncapped)
  MachineModel machine = MachineModel::cray_xc40();
};

struct DistPrediction {
  double total_s = 0.0;   // Cholesky + sweep makespan
  double chol_s = 0.0;    // Cholesky-only makespan
  double efficiency = 0.0;
  double comm_s = 0.0;
};

[[nodiscard]] DistPrediction predict_pmvn(const DistConfig& cfg);

}  // namespace parmvn::dist
