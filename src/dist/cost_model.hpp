// Analytic kernel/network cost model for the simulated distributed-memory
// system (the paper's Cray XC40 "Shaheen II" runs, Sec. V-D).
//
// Every tile kernel is mapped to a flop count divided by a per-core
// sustained rate; transfers follow the classic latency + size/bandwidth
// model. Bandwidth-bound sweep kernels (QMC sampling and the per-sample
// GEMM propagation read a panel per tile) run at `stream_efficiency` of the
// dgemm rate — the reason the paper's end-to-end TLR speedup (1.3-1.8x)
// trails its Cholesky-only speedup (1.9-5.2x).
#pragma once

#include "common/types.hpp"

namespace parmvn::dist {

struct MachineModel {
  i64 cores_per_node = 1;
  double gflops_per_core = 1.0;        // sustained per-core dgemm rate
  double latency_s = 1e-6;             // per-message network latency
  double bandwidth_bytes_per_s = 1e9;  // per-link network bandwidth
  double stream_efficiency = 0.25;     // sweep-kernel rate / dgemm rate

  /// Cray XC40 (Shaheen II): dual 16-core Haswell nodes, Aries dragonfly.
  [[nodiscard]] static MachineModel cray_xc40() noexcept {
    MachineModel m;
    m.cores_per_node = 32;
    m.gflops_per_core = 20.0;
    m.latency_s = 1.5e-6;
    m.bandwidth_bytes_per_s = 8e9;
    m.stream_efficiency = 0.25;
    return m;
  }
};

/// Seconds to move `bytes` between two nodes; latency floor at zero bytes.
[[nodiscard]] double transfer_seconds(const MachineModel& m, i64 bytes) noexcept;

// Dense tile kernels (tile size nb).
[[nodiscard]] double cost_potrf(const MachineModel& m, i64 nb) noexcept;
[[nodiscard]] double cost_trsm(const MachineModel& m, i64 nb) noexcept;
[[nodiscard]] double cost_syrk(const MachineModel& m, i64 nb) noexcept;
[[nodiscard]] double cost_gemm(const MachineModel& m, i64 nb) noexcept;

// TLR tile kernels (HiCMA-style; rank(s) of the low-rank operands).
[[nodiscard]] double cost_tlr_trsm(const MachineModel& m, i64 nb,
                                   i64 rank) noexcept;
[[nodiscard]] double cost_tlr_syrk(const MachineModel& m, i64 nb,
                                   i64 rank) noexcept;
[[nodiscard]] double cost_tlr_gemm(const MachineModel& m, i64 nb, i64 rank_a,
                                   i64 rank_b) noexcept;

// PMVN sweep kernels for a panel of `nc` sample columns.
[[nodiscard]] double cost_pmvn_qmc(const MachineModel& m, i64 nb,
                                   i64 nc) noexcept;
[[nodiscard]] double cost_pmvn_update_dense(const MachineModel& m, i64 nb,
                                            i64 nc) noexcept;
[[nodiscard]] double cost_pmvn_update_tlr(const MachineModel& m, i64 nb,
                                          i64 nc, i64 rank) noexcept;

/// Flops-per-entry charged for one QMC integrand entry (uniform -> shifted
/// point, Phi, Phi^-1, product update). erfc/log dominate; ~60 flops is the
/// conventional equivalent. Shared by the cost model and the calibration
/// inversion below.
inline constexpr double kQmcFlopsPerEntry = 60.0;

/// Micro-benchmarked host parameters, for pinning the simulator's
/// MachineModel to the machine actually running the benches.
struct HostCalibration {
  double gflops = 0.0;            // sustained dgemm rate, one core
  double qmc_ns_per_entry = 0.0;  // ns per Phi/Phi^-1 pair in the integrand
};

/// Probe this host with an n x n dgemm and a quantile/CDF loop.
[[nodiscard]] HostCalibration calibrate_host(i64 n);

/// MachineModel whose compute parameters come from calibrate_host() probes:
/// gflops_per_core is the measured dgemm rate and stream_efficiency is the
/// measured integrand rate (kQmcFlopsPerEntry / qmc_ns_per_entry, in
/// GFlop/s) divided by the dgemm rate. Network parameters are taken from
/// `base`, and a degenerate probe (non-positive readings) falls back to the
/// corresponding analytic `base` value — by default Cray XC40's documented
/// stream_efficiency = 0.25.
[[nodiscard]] MachineModel calibrated_machine(
    const HostCalibration& cal,
    const MachineModel& base = MachineModel::cray_xc40()) noexcept;

}  // namespace parmvn::dist
