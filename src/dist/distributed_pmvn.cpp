#include "dist/distributed_pmvn.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace parmvn::dist {

DistPrediction predict_pmvn(const DistConfig& cfg) {
  PARMVN_EXPECTS(cfg.n >= 1);
  PARMVN_EXPECTS(cfg.tile >= 1);
  PARMVN_EXPECTS(cfg.nodes >= 1);
  PARMVN_EXPECTS(cfg.qmc_samples >= 1);

  i64 nt = (cfg.n + cfg.tile - 1) / cfg.tile;
  i64 tile = cfg.tile;
  if (cfg.max_sim_tiles > 0 && nt > cfg.max_sim_tiles) {
    nt = cfg.max_sim_tiles;
    tile = (cfg.n + nt - 1) / nt;
  }

  const BlockCyclic grid = BlockCyclic::square(cfg.nodes);
  // One sample panel per node (capped): panels are the sweep's unit of
  // node-level parallelism; more nodes shrink each panel.
  const i64 nc = std::clamp<i64>(cfg.nodes, 1, 64);
  const i64 samples_per_panel = (cfg.qmc_samples + nc - 1) / nc;

  const PmvnDag dag = pmvn_dag(nt, tile, nc, cfg.tlr, cfg.ranks, grid,
                               cfg.machine, samples_per_panel,
                               cfg.tlr && cfg.tlr_sweep);

  const ClusterSim sim(cfg.nodes, cfg.machine);
  const SimResult full = sim.run(dag.tasks, dag.chol_task_count);

  DistPrediction p;
  p.total_s = full.makespan_s;
  p.chol_s = full.prefix_makespan_s;
  p.efficiency = full.parallel_efficiency;
  p.comm_s = full.comm_s;
  return p;
}

}  // namespace parmvn::dist
