// Discrete-event simulator for a cluster of multicore nodes — the stand-in
// for the paper's Cray XC40 runs (Fig. 7, Table III). A task DAG annotated
// with per-task cost, owning node and output size is replayed under list
// scheduling: each task runs on its owner's earliest-free core once every
// dependency has finished and, for cross-node dependencies, its output has
// been transferred (latency + size/bandwidth).
//
// Tasks are scheduled in submission order (the same sequential-consistency
// discipline as rt::Runtime), so results are deterministic.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "dist/cost_model.hpp"

namespace parmvn::dist {

struct SimTask {
  double cost_s = 0.0;        // pure compute time on one core
  i64 owner = 0;              // owning node in [0, nodes)
  i64 output_bytes = 0;       // payload consumers on other nodes must fetch
  std::vector<i64> deps;      // indices of prerequisite tasks (all < self)
};

struct SimResult {
  double makespan_s = 0.0;          // finish time of the last task
  double total_busy_core_s = 0.0;   // sum of task costs (work conservation)
  double parallel_efficiency = 0.0; // busy / (makespan * total cores)
  double comm_s = 0.0;              // sum of cross-node transfer times
  double prefix_makespan_s = 0.0;   // finish time of the first prefix_count
                                    // tasks (== makespan_s if no prefix)
};

class ClusterSim {
 public:
  ClusterSim(i64 nodes, MachineModel machine);

  /// Replay the DAG; throws parmvn::Error on out-of-range owners or deps.
  /// Under submission-order scheduling a task prefix runs identically with
  /// or without its suffix, so `prefix_count >= 0` additionally reports the
  /// makespan of the first prefix_count tasks from the same replay.
  [[nodiscard]] SimResult run(const std::vector<SimTask>& tasks,
                              i64 prefix_count = -1) const;

  [[nodiscard]] i64 nodes() const noexcept { return nodes_; }
  [[nodiscard]] i64 total_cores() const noexcept {
    return nodes_ * machine_.cores_per_node;
  }

 private:
  i64 nodes_;
  MachineModel machine_;
};

}  // namespace parmvn::dist
