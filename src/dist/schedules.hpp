// DAG builders for the simulated distributed runs: 2D block-cyclic tile
// ownership (the ScaLAPACK/Chameleon distribution the paper uses), a fitted
// per-tile-distance rank profile for TLR cost prediction, and the task
// graphs for tiled Cholesky (dense + TLR) and the full PMVN sweep.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "dist/cluster_sim.hpp"
#include "dist/cost_model.hpp"
#include "tlr/tlr_matrix.hpp"

namespace parmvn::dist {

/// 2D block-cyclic process grid: tile (i, j) lives on node
/// (i mod p) * q + (j mod q).
struct BlockCyclic {
  i64 p = 1;
  i64 q = 1;

  /// Most-square p x q factorisation with p * q == nodes and p <= q.
  [[nodiscard]] static BlockCyclic square(i64 nodes);

  [[nodiscard]] i64 owner(i64 i, i64 j) const noexcept {
    return (i % p) * q + (j % q);
  }
};

/// Off-diagonal tile rank as a function of tile distance |i - j|:
/// rank(d) = near_rank * decay^(d-1), clamped to [floor_rank, cap].
/// Matches the geometric decay of Matern/exponential covariance ranks under
/// Morton ordering (paper Fig. 5).
struct RankProfile {
  double near_rank = 16.0;
  double decay = 0.7;   // in (0, 1]
  i64 floor_rank = 2;
  i64 cap = 0;          // <= 0: uncapped

  [[nodiscard]] i64 rank(i64 distance) const noexcept;

  /// Fit near_rank/decay from a genuinely compressed matrix by regressing
  /// log(mean rank) on tile distance.
  [[nodiscard]] static RankProfile fit(const tlr::TlrMatrix& m);
};

/// Right-looking tiled Cholesky, dense tiles: nt potrf + nt(nt-1)/2 trsm +
/// nt(nt-1)/2 syrk + C(nt,3) gemm, dependencies topological (deps < index).
[[nodiscard]] std::vector<SimTask> cholesky_dag_dense(i64 nt, i64 tile,
                                                      BlockCyclic grid,
                                                      const MachineModel& m);

/// Same topology with HiCMA TLR kernel costs from the rank profile.
[[nodiscard]] std::vector<SimTask> cholesky_dag_tlr(i64 nt, i64 tile,
                                                    const RankProfile& ranks,
                                                    BlockCyclic grid,
                                                    const MachineModel& m);

struct PmvnDag {
  std::vector<SimTask> tasks;  // Cholesky prefix, then the sweep
  i64 chol_task_count = 0;
};

/// Cholesky followed by the PMVN sweep over `nc` independent sample panels:
/// per panel, per tile-row k, one QMC kernel on the diagonal tile and one
/// propagation update per sub-diagonal tile (nc * (nt + nt(nt-1)/2) sweep
/// tasks). `samples_per_panel` scales the sweep task costs; `tlr_sweep`
/// prices the updates in low-rank form (Table II's shared-memory variant —
/// the paper's distributed sweep is dense).
[[nodiscard]] PmvnDag pmvn_dag(i64 nt, i64 tile, i64 nc, bool tlr,
                               const RankProfile& ranks, BlockCyclic grid,
                               const MachineModel& m,
                               i64 samples_per_panel = 256,
                               bool tlr_sweep = false);

}  // namespace parmvn::dist
