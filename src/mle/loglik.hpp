// Gaussian log-likelihood of a zero-mean field under an isotropic kernel —
// the objective ExaGeoStat maximises to produce theta_hat for Algorithm 1.
#pragma once

#include <vector>

#include "geo/geometry.hpp"
#include "stats/covariance.hpp"

namespace parmvn::mle {

/// log L(theta) = -1/2 [ z^T Sigma^-1 z + log|Sigma| + n log(2 pi) ].
/// Throws if Sigma(theta) is not SPD.
[[nodiscard]] double gaussian_loglik(const geo::LocationSet& locations,
                                     const std::vector<double>& z,
                                     const stats::CovKernel& kernel,
                                     double nugget = 0.0);

}  // namespace parmvn::mle
