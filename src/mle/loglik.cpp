#include "mle/loglik.hpp"

#include <cmath>
#include <memory>

#include "common/contracts.hpp"
#include "geo/covgen.hpp"
#include "linalg/blas.hpp"
#include "linalg/potrf.hpp"
#include "linalg/solve.hpp"

namespace parmvn::mle {

double gaussian_loglik(const geo::LocationSet& locations,
                       const std::vector<double>& z,
                       const stats::CovKernel& kernel, double nugget) {
  const i64 n = static_cast<i64>(locations.size());
  PARMVN_EXPECTS(static_cast<i64>(z.size()) == n);

  la::Matrix sigma(n, n);
  for (i64 j = 0; j < n; ++j)
    for (i64 i = j; i < n; ++i) {
      const double d = geo::distance(locations[static_cast<std::size_t>(i)],
                                     locations[static_cast<std::size_t>(j)]);
      double v = kernel(d);
      if (i == j) v += nugget;
      sigma(i, j) = v;
      sigma(j, i) = v;
    }
  la::potrf_lower_or_throw(sigma.view());
  const double logdet = la::chol_logdet(sigma.view());

  std::vector<double> w = z;
  la::MatrixView wv{w.data(), n, 1, n};
  la::trsm(la::Side::kLeft, la::Trans::kNo, 1.0, sigma.view(), wv);
  const double quad = la::dot(n, w.data(), w.data());

  return -0.5 * (quad + logdet +
                 static_cast<double>(n) * std::log(2.0 * M_PI));
}

}  // namespace parmvn::mle
