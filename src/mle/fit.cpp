#include "mle/fit.hpp"

#include <cmath>
#include <limits>

#include "common/contracts.hpp"
#include "mle/loglik.hpp"
#include "stats/covariance.hpp"

namespace parmvn::mle {

MaternFit fit_matern(const geo::LocationSet& locations,
                     const std::vector<double>& z,
                     const MaternFitOptions& opts) {
  PARMVN_EXPECTS(locations.size() == z.size());
  PARMVN_EXPECTS(locations.size() >= 4);

  const double fixed_nu = opts.init_smoothness;
  auto objective = [&](const std::vector<double>& logp) {
    const double sigma2 = std::exp(logp[0]);
    const double range = std::exp(logp[1]);
    const double nu =
        opts.fix_smoothness ? fixed_nu : std::exp(logp[2]);
    // Clamp to a numerically sane box; outside -> +inf objective.
    if (sigma2 > 1e4 || sigma2 < 1e-6 || range > 50.0 || range < 1e-5 ||
        nu > 10.0 || nu < 0.05) {
      return std::numeric_limits<double>::infinity();
    }
    try {
      const stats::MaternKernel kernel(sigma2, range, nu);
      return -gaussian_loglik(locations, z, kernel, opts.nugget);
    } catch (const Error&) {
      return std::numeric_limits<double>::infinity();  // non-SPD draw
    }
  };

  std::vector<double> x0{std::log(opts.init_sigma2), std::log(opts.init_range)};
  if (!opts.fix_smoothness) x0.push_back(std::log(opts.init_smoothness));

  NelderMeadOptions nm = opts.nm;
  const NelderMeadResult r = nelder_mead(objective, x0, nm);

  MaternFit fit;
  fit.sigma2 = std::exp(r.x[0]);
  fit.range = std::exp(r.x[1]);
  fit.smoothness = opts.fix_smoothness ? fixed_nu : std::exp(r.x[2]);
  fit.loglik = -r.fmin;
  fit.evals = r.evals;
  fit.converged = r.converged;
  return fit;
}

}  // namespace parmvn::mle
