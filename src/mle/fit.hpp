// Matern maximum-likelihood fit (the ExaGeoStat theta_hat step feeding
// Algorithm 1).
#pragma once

#include <vector>

#include "geo/geometry.hpp"
#include "mle/neldermead.hpp"

namespace parmvn::mle {

struct MaternFit {
  double sigma2 = 1.0;
  double range = 0.1;
  double smoothness = 0.5;
  double loglik = 0.0;
  i64 evals = 0;
  bool converged = false;
};

struct MaternFitOptions {
  double init_sigma2 = 1.0;
  double init_range = 0.1;
  double init_smoothness = 1.0;
  bool fix_smoothness = false;  // 2-parameter fit when the smoothness is known
  double nugget = 1e-8;         // jitter for numerical SPD-ness
  NelderMeadOptions nm;
};

/// Fit (sigma2, range, smoothness) of a zero-mean Matern field observed as
/// `z` at `locations`. Parameters are optimised in log-space to enforce
/// positivity.
[[nodiscard]] MaternFit fit_matern(const geo::LocationSet& locations,
                                   const std::vector<double>& z,
                                   const MaternFitOptions& opts = {});

}  // namespace parmvn::mle
