#include "mle/neldermead.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace parmvn::mle {

NelderMeadResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& f,
    const std::vector<double>& x0, const NelderMeadOptions& opts) {
  PARMVN_EXPECTS(!x0.empty());
  const std::size_t d = x0.size();

  // Initial simplex: x0 plus a step along each axis.
  std::vector<std::vector<double>> simplex(d + 1, x0);
  for (std::size_t i = 0; i < d; ++i) simplex[i + 1][i] += opts.initial_step;

  NelderMeadResult res;
  std::vector<double> fv(d + 1);
  for (std::size_t i = 0; i <= d; ++i) {
    fv[i] = f(simplex[i]);
    ++res.evals;
  }

  constexpr double kAlpha = 1.0;  // reflection
  constexpr double kGamma = 2.0;  // expansion
  constexpr double kRho = 0.5;    // contraction
  constexpr double kSigma = 0.5;  // shrink

  auto order = [&] {
    std::vector<std::size_t> idx(d + 1);
    for (std::size_t i = 0; i <= d; ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) { return fv[a] < fv[b]; });
    std::vector<std::vector<double>> s2;
    std::vector<double> f2;
    for (std::size_t i : idx) {
      s2.push_back(simplex[i]);
      f2.push_back(fv[i]);
    }
    simplex.swap(s2);
    fv.swap(f2);
  };

  while (res.evals < opts.max_evals) {
    order();
    // Convergence: simplex extent and f-spread.
    double xspread = 0.0;
    for (std::size_t i = 0; i < d; ++i) {
      double lo = simplex[0][i], hi = simplex[0][i];
      for (std::size_t k = 1; k <= d; ++k) {
        lo = std::min(lo, simplex[k][i]);
        hi = std::max(hi, simplex[k][i]);
      }
      xspread = std::max(xspread, hi - lo);
    }
    // Require both criteria: an f-spread of zero alone can be a symmetric
    // straddle of the minimum (e.g. cosh at x0 +- h), not convergence.
    if (xspread < opts.xtol && std::fabs(fv[d] - fv[0]) < opts.ftol) {
      res.converged = true;
      break;
    }

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(d, 0.0);
    for (std::size_t k = 0; k < d; ++k)
      for (std::size_t i = 0; i < d; ++i) centroid[i] += simplex[k][i];
    for (double& c : centroid) c /= static_cast<double>(d);

    auto along = [&](double t) {
      std::vector<double> x(d);
      for (std::size_t i = 0; i < d; ++i)
        x[i] = centroid[i] + t * (simplex[d][i] - centroid[i]);
      return x;
    };

    const std::vector<double> xr = along(-kAlpha);
    const double fr = f(xr);
    ++res.evals;
    if (fr < fv[0]) {
      const std::vector<double> xe = along(-kGamma);
      const double fe = f(xe);
      ++res.evals;
      if (fe < fr) {
        simplex[d] = xe;
        fv[d] = fe;
      } else {
        simplex[d] = xr;
        fv[d] = fr;
      }
    } else if (fr < fv[d - 1]) {
      simplex[d] = xr;
      fv[d] = fr;
    } else {
      const bool outside = fr < fv[d];
      const std::vector<double> xc = along(outside ? -kRho : kRho);
      const double fc = f(xc);
      ++res.evals;
      if (fc < std::min(fr, fv[d])) {
        simplex[d] = xc;
        fv[d] = fc;
      } else {
        // Shrink toward the best vertex.
        for (std::size_t k = 1; k <= d; ++k) {
          for (std::size_t i = 0; i < d; ++i)
            simplex[k][i] =
                simplex[0][i] + kSigma * (simplex[k][i] - simplex[0][i]);
          fv[k] = f(simplex[k]);
          ++res.evals;
        }
      }
    }
  }
  order();
  res.x = simplex[0];
  res.fmin = fv[0];
  return res;
}

}  // namespace parmvn::mle
