// Derivative-free Nelder-Mead simplex minimiser (the NLopt substitute used
// for Matern maximum-likelihood estimation).
#pragma once

#include <functional>
#include <vector>

#include "common/types.hpp"

namespace parmvn::mle {

struct NelderMeadOptions {
  i64 max_evals = 2000;
  double xtol = 1e-7;  // simplex size convergence
  double ftol = 1e-10; // function spread convergence
  double initial_step = 0.5;
};

struct NelderMeadResult {
  std::vector<double> x;
  double fmin = 0.0;
  i64 evals = 0;
  bool converged = false;
};

/// Minimise f over R^d starting at x0.
[[nodiscard]] NelderMeadResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& f,
    const std::vector<double>& x0, const NelderMeadOptions& opts = {});

}  // namespace parmvn::mle
