// Sequential Separation-of-Variables (Genz 1992) MVN probability — the
// reference oracle the parallel tile implementation is tested against, and
// the natural API for small problems.
//
// Computes  Phi_n(a, b; 0, Sigma) = P(a <= X <= b), X ~ N(0, Sigma),
// via the transformation of paper eq. (2)-(3): after Cholesky Sigma = L L^T,
// the integral becomes an expectation over the unit hypercube, evaluated
// with (quasi-)Monte-Carlo samples organised in randomized shift blocks for
// an error estimate.
#pragma once

#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "stats/qmc.hpp"

namespace parmvn::core {

struct SovOptions {
  i64 samples_per_shift = 500;
  int shifts = 20;
  stats::SamplerKind sampler = stats::SamplerKind::kRichtmyer;
  u64 seed = 42;
  /// Error budget: when > 0 the estimator evaluates shift block by shift
  /// block and stops as soon as error3sigma <= abs_tol (never before
  /// min_shifts blocks, never beyond `shifts` — the fixed budget is the
  /// cap). 0 keeps the classic fixed-budget sweep, bitwise unchanged.
  double abs_tol = 0.0;
  /// Blocks evaluated before the first stop decision (>= 2: a lone block's
  /// error estimate is infinite and must never gate a stop).
  int min_shifts = 2;
  /// Decision threshold: when finite, the block-adaptive path also engages
  /// (even with abs_tol == 0) and stops as soon as the running estimate
  /// clears the threshold by its 3-sigma band — the per-query contract the
  /// engine's adaptive tier uses, here available to the sequential oracles
  /// (and through mvt_probability_chol, to the Student-t path). NaN (the
  /// default) disables it; with abs_tol also 0 the classic fixed-budget
  /// sweep stays bitwise unchanged.
  double decision = std::numeric_limits<double>::quiet_NaN();
  /// Antithetic shift pairs (see stats::PointSet); `shifts` must be even.
  bool antithetic = false;

  [[nodiscard]] i64 total_samples() const noexcept {
    return samples_per_shift * static_cast<i64>(shifts);
  }
};

struct SovResult {
  double prob = 0.0;
  double error3sigma = 0.0;  // 3-sigma spread of the shift-block means
  i64 samples_used = 0;      // samples actually evaluated
  int shifts_used = 0;       // shift blocks actually evaluated
  /// Adaptive paths: whether an early-stop criterion (abs_tol or decision
  /// clearance) was met before the budget cap. Always true on the classic
  /// fixed-budget sweep (the full budget *is* the contract there).
  bool converged = true;
};

/// MVN probability given the lower Cholesky factor of Sigma.
[[nodiscard]] SovResult mvn_probability_chol(la::ConstMatrixView l,
                                             std::span<const double> a,
                                             std::span<const double> b,
                                             const SovOptions& opts = {});

/// Convenience: factorises a copy of Sigma internally.
[[nodiscard]] SovResult mvn_probability(la::ConstMatrixView sigma,
                                        std::span<const double> a,
                                        std::span<const double> b,
                                        const SovOptions& opts = {});

/// All prefix probabilities in one sweep: out[i] = P(a_j <= X_j <= b_j for
/// all j <= i) under the *given variable order*. The SOV integrand is a
/// product over dimensions, so the running product after row i is exactly
/// the MVN probability of the first i+1 variables — this is what makes the
/// confidence-region sweep one factorization + one integration instead of n
/// of them.
[[nodiscard]] std::vector<double> mvn_prefix_probabilities_chol(
    la::ConstMatrixView l, std::span<const double> a,
    std::span<const double> b, const SovOptions& opts = {});

/// Genz's variable-reordering heuristic: greedily pick, at each elimination
/// step, the variable with the smallest conditional probability mass
/// (hardest constraint first), which reduces the variance of the SOV
/// estimator. Reorders sigma/a/b in place and returns the permutation
/// applied. An ablation in the benches quantifies the effect.
std::vector<i64> genz_reorder(la::MatrixView sigma, std::span<double> a,
                              std::span<double> b);

namespace detail {

/// Shared sample-contiguous panel sweep of the sequential estimators (MVN
/// and MVT): runs the QMC tile kernel over panels of samples against the
/// whole factor (one "tile" of size n), handing each finished panel's
/// per-sample probability products to `consume(s0, pc, p)` in ascending
/// sample order. Panelling is exact — per-sample values are independent of
/// the chunk boundaries.
/// @param dim0   point-set dimension feeding tile row 0 (MVT passes 1: its
///               dimension 0 drives the chi^2 scale draw)
/// @param sample0, count  global sample range to sweep
/// @param scale  optional per-sample limit scaling, indexed by *global*
///               sample (empty = none): panel limits become scale[s] * a[i]
///               — the MVT chi scaling
/// @param prefix_acc optional length-n prefix accumulator (see
///               qmc_tile_kernel)
void sov_panel_sweep(
    la::ConstMatrixView l, std::span<const double> a,
    std::span<const double> b, const stats::PointSet& pts, i64 dim0,
    i64 sample0, i64 count, std::span<const double> scale, double* prefix_acc,
    const std::function<void(i64, i64, const double*)>& consume);

/// The shared block estimator over sov_panel_sweep: classic fixed budget
/// when opts.abs_tol == 0 (bitwise identical to the pre-adaptive code),
/// else shift-block-adaptive with early stop on the running 3-sigma
/// estimate. Handles antithetic pair merging.
[[nodiscard]] SovResult sov_block_estimate(la::ConstMatrixView l,
                                           std::span<const double> a,
                                           std::span<const double> b,
                                           const stats::PointSet& pts,
                                           i64 dim0,
                                           std::span<const double> scale,
                                           const SovOptions& opts);

}  // namespace detail

}  // namespace parmvn::core
