// Sequential Separation-of-Variables (Genz 1992) MVN probability — the
// reference oracle the parallel tile implementation is tested against, and
// the natural API for small problems.
//
// Computes  Phi_n(a, b; 0, Sigma) = P(a <= X <= b), X ~ N(0, Sigma),
// via the transformation of paper eq. (2)-(3): after Cholesky Sigma = L L^T,
// the integral becomes an expectation over the unit hypercube, evaluated
// with (quasi-)Monte-Carlo samples organised in randomized shift blocks for
// an error estimate.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "stats/qmc.hpp"

namespace parmvn::core {

struct SovOptions {
  i64 samples_per_shift = 500;
  int shifts = 20;
  stats::SamplerKind sampler = stats::SamplerKind::kRichtmyer;
  u64 seed = 42;

  [[nodiscard]] i64 total_samples() const noexcept {
    return samples_per_shift * static_cast<i64>(shifts);
  }
};

struct SovResult {
  double prob = 0.0;
  double error3sigma = 0.0;  // 3-sigma spread of the shift-block means
};

/// MVN probability given the lower Cholesky factor of Sigma.
[[nodiscard]] SovResult mvn_probability_chol(la::ConstMatrixView l,
                                             std::span<const double> a,
                                             std::span<const double> b,
                                             const SovOptions& opts = {});

/// Convenience: factorises a copy of Sigma internally.
[[nodiscard]] SovResult mvn_probability(la::ConstMatrixView sigma,
                                        std::span<const double> a,
                                        std::span<const double> b,
                                        const SovOptions& opts = {});

/// All prefix probabilities in one sweep: out[i] = P(a_j <= X_j <= b_j for
/// all j <= i) under the *given variable order*. The SOV integrand is a
/// product over dimensions, so the running product after row i is exactly
/// the MVN probability of the first i+1 variables — this is what makes the
/// confidence-region sweep one factorization + one integration instead of n
/// of them.
[[nodiscard]] std::vector<double> mvn_prefix_probabilities_chol(
    la::ConstMatrixView l, std::span<const double> a,
    std::span<const double> b, const SovOptions& opts = {});

/// Genz's variable-reordering heuristic: greedily pick, at each elimination
/// step, the variable with the smallest conditional probability mass
/// (hardest constraint first), which reduces the variance of the SOV
/// estimator. Reorders sigma/a/b in place and returns the permutation
/// applied. An ablation in the benches quantifies the effect.
std::vector<i64> genz_reorder(la::MatrixView sigma, std::span<double> a,
                              std::span<double> b);

}  // namespace parmvn::core
