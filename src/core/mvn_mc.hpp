// Plain Monte-Carlo MVN probability (the paper's "naive MC" baseline): draw
// x = L z and count box membership. Converges like sigma/sqrt(N) with no
// dimension-robust variance reduction — the method the SOV transform
// replaces, kept as a baseline and cross-check.
#pragma once

#include <span>

#include "linalg/matrix.hpp"

namespace parmvn::core {

struct MvnMcResult {
  double prob = 0.0;
  double error3sigma = 0.0;  // binomial 3-sigma
  double seconds = 0.0;
};

[[nodiscard]] MvnMcResult mvn_probability_mc(la::ConstMatrixView l,
                                             std::span<const double> a,
                                             std::span<const double> b,
                                             i64 num_samples, u64 seed);

}  // namespace parmvn::core
