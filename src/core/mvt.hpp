// Multivariate Student-t probabilities — the companion problem of the
// authors' tlrmvnmvt package (Cao et al. 2022), and the natural first
// extension of the SOV machinery: X = Z / sqrt(W/nu) with Z ~ N(0, Sigma)
// and W ~ chi^2_nu, so
//   P(a <= X <= b) = E_W [ Phi_n(a * s, b * s; Sigma) ],  s = sqrt(W/nu).
// Each MC chain draws its own scaling s and then runs the standard Genz
// recursion on the scaled limits.
#pragma once

#include <span>

#include "core/sov.hpp"

namespace parmvn::core {

/// MVT probability given the lower Cholesky factor of the *scale* matrix
/// Sigma (not the covariance, which is Sigma * nu/(nu-2) for nu > 2).
/// @param nu degrees of freedom (> 0)
[[nodiscard]] SovResult mvt_probability_chol(la::ConstMatrixView l, double nu,
                                             std::span<const double> a,
                                             std::span<const double> b,
                                             const SovOptions& opts = {});

/// Convenience: factorises a copy of Sigma internally.
[[nodiscard]] SovResult mvt_probability(la::ConstMatrixView sigma, double nu,
                                        std::span<const double> a,
                                        std::span<const double> b,
                                        const SovOptions& opts = {});

/// Chi distribution sampling helper exposed for tests: returns
/// sqrt(chi^2_nu / nu) via the quantile of the gamma distribution evaluated
/// with Newton iterations on a uniform input (deterministic per (u, nu)).
[[nodiscard]] double chi_scale_from_uniform(double u, double nu);

}  // namespace parmvn::core
