// Parallel tile MVN probability — the paper's Algorithm 2 (PMVN).
//
// Since the engine refactor these entry points are thin single-query
// wrappers over engine::PmvnEngine: they borrow the caller's factored
// matrix, evaluate a 1-element batch, and return the classic PmvnResult.
// Multi-query workloads (many limit sets against one factor) should use
// engine/pmvn_engine.hpp directly — the batched graph packs all queries
// into shared wide column panels so the factorization, the per-tile GEMM
// propagation and the off-diagonal tile reads amortize across queries.
//
// All three factor backends are supported:
//  * dense tiled L (Chameleon-style potrf_tiled output),
//  * TLR L (HiCMA-style potrf_tlr output) — the GEMM propagation then uses
//    the low-rank form U (V^T Y), the source of the TLR speedup at equal
//    QMC cost,
//  * Vecchia sparse inverse-Cholesky (vecchia::VecchiaFactor) — a
//    *different estimand*: the integral of the Vecchia-approximate density,
//    which agrees with the exact PMVN statistically (tighter as vecchia_m
//    grows, exact at m = n-1) but not bitwise.
//
// Memory: A/B/Y panels are bounded by `panel_bytes`; sample columns are
// processed panel-by-panel (columns are independent MC chains, so panelling
// is exact, not an approximation).
#pragma once

#include <span>
#include <vector>

#include "engine/pmvn_engine.hpp"
#include "runtime/runtime.hpp"
#include "stats/qmc.hpp"
#include "tile/tile_matrix.hpp"
#include "tlr/tlr_matrix.hpp"
#include "vecchia/vecchia_factor.hpp"

namespace parmvn::core {

struct PmvnOptions {
  i64 samples_per_shift = 1000;
  int shifts = 10;
  // The paper's Algorithm 2 fills R with i.i.d. U(0,1); Richtmyer QMC is
  // what Genz recommends and converges faster (see the sampler ablation).
  stats::SamplerKind sampler = stats::SamplerKind::kPseudoMC;
  u64 seed = 42;
  bool prefix = false;           // also return all prefix probabilities
  i64 panel_bytes = i64{512} << 20;

  // Error-budget-adaptive evaluation + variance reduction, forwarded
  // verbatim to engine::EngineOptions (see engine/pmvn_engine.hpp for the
  // contracts). `shifts` stays the hard budget cap in adaptive mode.
  bool adaptive = false;
  double abs_tol = 0.0;
  int min_shifts = 2;
  bool crn = false;
  u64 crn_seed = 42;
  bool antithetic = false;
  bool tiered = false;
  double ep_margin = 0.05;
  /// Wall-clock deadline in milliseconds (0 = none): an expired query
  /// retires with its best-so-far estimate, converged == false and
  /// method == EvalMethod::kDeadline (see EngineOptions::deadline_ms).
  i64 deadline_ms = 0;

  [[nodiscard]] i64 total_samples() const noexcept {
    return samples_per_shift * static_cast<i64>(shifts);
  }
};

struct PmvnResult {
  double prob = 0.0;
  double error3sigma = 0.0;
  double seconds = 0.0;
  std::vector<double> prefix_prob;  // filled when opts.prefix
  i64 samples_used = 0;             // samples actually evaluated
  int shifts_used = 0;              // shift blocks actually evaluated
  bool converged = false;           // adaptive stop criterion met (see engine)
  /// kEp when the tiered EP screen decided the query without QMC samples.
  engine::EvalMethod method = engine::EvalMethod::kQmc;
};

/// PMVN with a dense tiled lower Cholesky factor (lower-symmetric layout).
[[nodiscard]] PmvnResult pmvn_dense(rt::Runtime& rt, const tile::TileMatrix& l,
                                    std::span<const double> a,
                                    std::span<const double> b,
                                    const PmvnOptions& opts = {});

/// PMVN with a TLR lower Cholesky factor (potrf_tlr output).
[[nodiscard]] PmvnResult pmvn_tlr(rt::Runtime& rt, const tlr::TlrMatrix& l,
                                  std::span<const double> a,
                                  std::span<const double> b,
                                  const PmvnOptions& opts = {});

/// PMVN with a Vecchia sparse inverse-Cholesky factor (the Vecchia
/// estimand — see the header note).
[[nodiscard]] PmvnResult pmvn_vecchia(rt::Runtime& rt,
                                      const vecchia::VecchiaFactor& l,
                                      std::span<const double> a,
                                      std::span<const double> b,
                                      const PmvnOptions& opts = {});

/// The engine-level view of `opts` (seed and prefix live per-LimitSet);
/// the one translation point between the legacy options and the engine.
[[nodiscard]] engine::EngineOptions engine_options(const PmvnOptions& opts);

}  // namespace parmvn::core
