#include "core/mvt.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "linalg/potrf.hpp"
#include "stats/normal.hpp"
#include "stats/qmc.hpp"

namespace parmvn::core {

namespace {

constexpr double kUEps = 1e-16;

// Regularised lower incomplete gamma P(k, x) by series / continued fraction
// (Numerical Recipes gammp) — the chi^2 CDF is P(nu/2, x/2).
double gammp(double k, double x) {
  PARMVN_EXPECTS(k > 0.0 && x >= 0.0);
  if (x == 0.0) return 0.0;
  if (x < k + 1.0) {
    // Series representation.
    double ap = k;
    double sum = 1.0 / k;
    double del = sum;
    for (int i = 0; i < 500; ++i) {
      ap += 1.0;
      del *= x / ap;
      sum += del;
      if (std::fabs(del) < std::fabs(sum) * 1e-16) break;
    }
    return sum * std::exp(-x + k * std::log(x) - std::lgamma(k));
  }
  // Continued fraction for Q(k, x), then P = 1 - Q.
  double b = x + 1.0 - k;
  double c = 1e300;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - k);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < 1e-300) d = 1e-300;
    c = b + an / c;
    if (std::fabs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-16) break;
  }
  const double q = std::exp(-x + k * std::log(x) - std::lgamma(k)) * h;
  return 1.0 - q;
}

}  // namespace

double chi_scale_from_uniform(double u, double nu) {
  PARMVN_EXPECTS(nu > 0.0);
  u = std::clamp(u, kUEps, 1.0 - kUEps);
  // Invert the chi^2_nu CDF with a guarded Newton iteration started at the
  // Wilson-Hilferty approximation.
  const double k = 0.5 * nu;
  const double z = stats::norm_quantile(u);
  const double wh = nu * std::pow(1.0 - 2.0 / (9.0 * nu) +
                                      z * std::sqrt(2.0 / (9.0 * nu)),
                                  3.0);
  double x = std::max(wh, 1e-8);
  for (int it = 0; it < 60; ++it) {
    const double f = gammp(k, 0.5 * x) - u;
    // chi^2 pdf.
    const double logpdf = (k - 1.0) * std::log(0.5 * x) - 0.5 * x -
                          std::lgamma(k) - std::log(2.0);
    const double pdf = std::exp(logpdf);
    if (pdf <= 0.0) break;
    double step = f / pdf;
    // Guard the step to keep x positive and the iteration stable.
    step = std::clamp(step, -0.5 * x, 0.5 * x + 1.0);
    x -= step;
    if (std::fabs(step) < 1e-12 * (1.0 + x)) break;
  }
  return std::sqrt(std::max(x, 1e-300) / nu);
}

SovResult mvt_probability_chol(la::ConstMatrixView l, double nu,
                               std::span<const double> a,
                               std::span<const double> b,
                               const SovOptions& opts) {
  const i64 n = l.rows;
  PARMVN_EXPECTS(l.cols == n);
  PARMVN_EXPECTS(nu > 0.0);
  PARMVN_EXPECTS(static_cast<i64>(a.size()) == n &&
                 static_cast<i64>(b.size()) == n);

  // Dimension 0 of the point set drives the chi^2 scaling; dimensions
  // 1..n drive the Genz recursion (Genz & Bretz's MVT algorithm). The
  // recursion itself runs through the shared sample-contiguous panel sweep
  // (dim0 = 1) with the chi scale applied as a per-sample limit scaling —
  // bitwise identical to the scalar sample-major loop on the fallback
  // build (the batched Phi/Phi^-1 primitives' documented contract).
  const stats::PointSet pts(opts.sampler, n + 1, opts.samples_per_shift,
                            opts.shifts, opts.seed, opts.antithetic);
  // Chi scales for the whole budget up front: one quantile inversion per
  // sample, a ~1/n fraction of the sweep's transcendental work, so the
  // adaptive early-stop waste is negligible.
  std::vector<double> scale(static_cast<std::size_t>(pts.num_samples()));
  for (i64 s = 0; s < pts.num_samples(); ++s)
    scale[static_cast<std::size_t>(s)] =
        chi_scale_from_uniform(pts.value(0, s), nu);
  return detail::sov_block_estimate(l, a, b, pts, /*dim0=*/1, scale, opts);
}

SovResult mvt_probability(la::ConstMatrixView sigma, double nu,
                          std::span<const double> a, std::span<const double> b,
                          const SovOptions& opts) {
  la::Matrix l = la::to_matrix(sigma);
  la::potrf_lower_or_throw(l.view());
  return mvt_probability_chol(l.view(), nu, a, b, opts);
}

}  // namespace parmvn::core
