#include "core/mc_validation.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/timer.hpp"
#include "linalg/microkernel.hpp"
#include "stats/rng.hpp"

namespace parmvn::core {

i64 region_size_at_level(std::span<const double> prefix_prob, double level) {
  double running = 1.0;
  i64 size = 0;
  for (std::size_t i = 0; i < prefix_prob.size(); ++i) {
    running = std::min(running, prefix_prob[i]);
    if (running >= level) {
      size = static_cast<i64>(i) + 1;
    } else {
      break;  // monotone envelope: once below the level it stays below
    }
  }
  return size;
}

McValidationResult validate_region_mc(la::ConstMatrixView l_ord,
                                      std::span<const double> a_ord,
                                      std::span<const double> prefix_prob,
                                      std::span<const double> levels,
                                      i64 num_samples, u64 seed) {
  const WallTimer timer;
  const i64 n = l_ord.rows;
  PARMVN_EXPECTS(l_ord.cols == n);
  PARMVN_EXPECTS(static_cast<i64>(a_ord.size()) == n);
  PARMVN_EXPECTS(static_cast<i64>(prefix_prob.size()) == n);
  PARMVN_EXPECTS(num_samples >= 1);

  // Histogram of "first failure index" over samples; cumulative counts then
  // answer every level at once.
  std::vector<i64> fail_hist(static_cast<std::size_t>(n + 1), 0);

  // Sample-contiguous panels, like mvn_probability_mc: dimension i of the
  // whole batch is the unit-stride column sum_{k <= i} L(i, k) Z(:, k), and
  // the first-failure index advances down the dimensions with an alive
  // mask — once every sample in the batch has failed, later dimensions
  // cannot change any histogram bin and the sweep exits early.
  constexpr i64 kBatch = 64;
  la::Matrix z(kBatch, n);
  std::vector<double> xv(static_cast<std::size_t>(kBatch));
  std::vector<i64> fail(static_cast<std::size_t>(kBatch));
  stats::Xoshiro256pp g(seed);
  for (i64 s0 = 0; s0 < num_samples; s0 += kBatch) {
    const i64 bs = std::min(kBatch, num_samples - s0);
    // Per-sample draw order (j outer): the histogram depends on the seed
    // alone, not on the compute layout.
    for (i64 j = 0; j < bs; ++j)
      for (i64 i = 0; i < n; ++i) z(j, i) = g.next_normal();
    std::fill(fail.begin(), fail.begin() + bs, n);
    i64 live = bs;
    for (i64 i = 0; i < n && live > 0; ++i) {
      std::fill(xv.begin(), xv.begin() + bs, 0.0);
      la::detail::gemv_notrans_strided_simd(1.0, z.sub(0, 0, bs, i + 1),
                                            l_ord.data + i, l_ord.ld,
                                            xv.data());
      const double ai = a_ord[static_cast<std::size_t>(i)];
      for (i64 j = 0; j < bs; ++j) {
        if (fail[static_cast<std::size_t>(j)] == n &&
            xv[static_cast<std::size_t>(j)] < ai) {
          fail[static_cast<std::size_t>(j)] = i;
          --live;
        }
      }
    }
    for (i64 j = 0; j < bs; ++j)
      ++fail_hist[static_cast<std::size_t>(fail[static_cast<std::size_t>(j)])];
  }

  // survivors_at[k] = #samples whose failure index >= k  (i.e. that jointly
  // exceed the first k ordered locations).
  std::vector<i64> survivors(static_cast<std::size_t>(n + 1), 0);
  survivors[static_cast<std::size_t>(n)] = fail_hist[static_cast<std::size_t>(n)];
  for (i64 k = n - 1; k >= 0; --k)
    survivors[static_cast<std::size_t>(k)] =
        survivors[static_cast<std::size_t>(k + 1)] +
        fail_hist[static_cast<std::size_t>(k)];

  McValidationResult out;
  out.levels.assign(levels.begin(), levels.end());
  out.p_hat.resize(levels.size());
  for (std::size_t li = 0; li < levels.size(); ++li) {
    const i64 size = region_size_at_level(prefix_prob, levels[li]);
    out.p_hat[li] = (size == 0)
                        ? 1.0  // empty region: trivially exceeded
                        : static_cast<double>(
                              survivors[static_cast<std::size_t>(size)]) /
                              static_cast<double>(num_samples);
  }
  out.seconds = timer.seconds();
  return out;
}

}  // namespace parmvn::core
