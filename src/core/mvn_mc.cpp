#include "core/mvn_mc.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/timer.hpp"
#include "linalg/blas.hpp"
#include "stats/rng.hpp"

namespace parmvn::core {

MvnMcResult mvn_probability_mc(la::ConstMatrixView l, std::span<const double> a,
                               std::span<const double> b, i64 num_samples,
                               u64 seed) {
  const WallTimer timer;
  const i64 n = l.rows;
  PARMVN_EXPECTS(l.cols == n);
  PARMVN_EXPECTS(static_cast<i64>(a.size()) == n &&
                 static_cast<i64>(b.size()) == n);
  PARMVN_EXPECTS(num_samples >= 1);

  constexpr i64 kBatch = 64;
  la::Matrix x(n, kBatch);
  stats::Xoshiro256pp g(seed);
  i64 inside = 0;
  for (i64 s0 = 0; s0 < num_samples; s0 += kBatch) {
    const i64 bs = std::min(kBatch, num_samples - s0);
    for (i64 j = 0; j < bs; ++j)
      for (i64 i = 0; i < n; ++i) x(i, j) = g.next_normal();
    la::MatrixView xb = x.sub(0, 0, n, bs);
    la::trmm_lower_notrans(l, xb);  // only the lower triangle of L is valid
    for (i64 j = 0; j < bs; ++j) {
      bool ok = true;
      for (i64 i = 0; i < n && ok; ++i) {
        const double v = xb(i, j);
        ok = (v >= a[static_cast<std::size_t>(i)]) &&
             (v <= b[static_cast<std::size_t>(i)]);
      }
      inside += ok ? 1 : 0;
    }
  }
  MvnMcResult out;
  out.prob = static_cast<double>(inside) / static_cast<double>(num_samples);
  out.error3sigma =
      3.0 * std::sqrt(std::max(out.prob * (1.0 - out.prob), 1e-12) /
                      static_cast<double>(num_samples));
  out.seconds = timer.seconds();
  return out;
}

}  // namespace parmvn::core
