#include "core/mvn_mc.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/contracts.hpp"
#include "common/timer.hpp"
#include "linalg/microkernel.hpp"
#include "stats/rng.hpp"

namespace parmvn::core {

// Sample-contiguous panel layout (the QMC sweep's layout, applied to the
// naive baseline): Z is (batch x n) with row = sample, so dimension i's
// values for the whole batch are one unit-stride column
//   x(:, i) = sum_{k <= i} L(i, k) * Z(:, k),
// a strided-SIMD row sweep over the column-major factor — instead of the
// per-sample trmm of the transposed layout. Membership then updates a
// unit-stride alive mask per dimension, and a batch whose samples are all
// dead exits the dimension loop early (common for tight boxes, where most
// samples fail in the first few dimensions).
MvnMcResult mvn_probability_mc(la::ConstMatrixView l, std::span<const double> a,
                               std::span<const double> b, i64 num_samples,
                               u64 seed) {
  const WallTimer timer;
  const i64 n = l.rows;
  PARMVN_EXPECTS(l.cols == n);
  PARMVN_EXPECTS(static_cast<i64>(a.size()) == n &&
                 static_cast<i64>(b.size()) == n);
  PARMVN_EXPECTS(num_samples >= 1);

  constexpr i64 kBatch = 64;
  la::Matrix z(kBatch, n);
  std::vector<double> xv(static_cast<std::size_t>(kBatch));
  std::vector<unsigned char> alive(static_cast<std::size_t>(kBatch));
  stats::Xoshiro256pp g(seed);
  i64 inside = 0;
  for (i64 s0 = 0; s0 < num_samples; s0 += kBatch) {
    const i64 bs = std::min(kBatch, num_samples - s0);
    // Per-sample draw order (j outer) keeps the estimate a function of the
    // seed alone, independent of the compute layout.
    for (i64 j = 0; j < bs; ++j)
      for (i64 i = 0; i < n; ++i) z(j, i) = g.next_normal();
    std::fill(alive.begin(), alive.begin() + bs, 1);
    for (i64 i = 0; i < n; ++i) {
      std::fill(xv.begin(), xv.begin() + bs, 0.0);
      la::detail::gemv_notrans_strided_simd(1.0, z.sub(0, 0, bs, i + 1),
                                            l.data + i, l.ld, xv.data());
      const double ai = a[static_cast<std::size_t>(i)];
      const double bi = b[static_cast<std::size_t>(i)];
      i64 live = 0;
      for (i64 j = 0; j < bs; ++j) {
        alive[static_cast<std::size_t>(j)] &=
            static_cast<unsigned char>(xv[static_cast<std::size_t>(j)] >= ai &&
                                       xv[static_cast<std::size_t>(j)] <= bi);
        live += alive[static_cast<std::size_t>(j)];
      }
      if (live == 0) break;
    }
    for (i64 j = 0; j < bs; ++j) inside += alive[static_cast<std::size_t>(j)];
  }
  MvnMcResult out;
  out.prob = static_cast<double>(inside) / static_cast<double>(num_samples);
  out.error3sigma =
      3.0 * std::sqrt(std::max(out.prob * (1.0 - out.prob), 1e-12) /
                      static_cast<double>(num_samples));
  out.seconds = timer.seconds();
  return out;
}

}  // namespace parmvn::core
