#include "core/pmvn.hpp"

#include <memory>
#include <utility>

#include "common/contracts.hpp"
#include "engine/pmvn_engine.hpp"

namespace parmvn::core {

engine::EngineOptions engine_options(const PmvnOptions& opts) {
  engine::EngineOptions eo;
  eo.samples_per_shift = opts.samples_per_shift;
  eo.shifts = opts.shifts;
  eo.sampler = opts.sampler;
  eo.panel_bytes = opts.panel_bytes;
  eo.adaptive = opts.adaptive;
  eo.abs_tol = opts.abs_tol;
  eo.min_shifts = opts.min_shifts;
  eo.crn = opts.crn;
  eo.crn_seed = opts.crn_seed;
  eo.antithetic = opts.antithetic;
  eo.tiered = opts.tiered;
  eo.ep_margin = opts.ep_margin;
  eo.deadline_ms = opts.deadline_ms;
  // Reject nonsense (negative deadline, negative ep_margin, zero samples…)
  // here at the translation point, so every PmvnOptions consumer fails
  // typed at construction instead of as undefined downstream behavior.
  eo.validate();
  return eo;
}

namespace {

PmvnResult run_single(rt::Runtime& rt, engine::CholeskyFactor factor,
                      std::span<const double> a, std::span<const double> b,
                      const PmvnOptions& opts) {
  const engine::PmvnEngine eng(
      rt, std::make_shared<const engine::CholeskyFactor>(std::move(factor)),
      engine_options(opts));
  engine::QueryResult qr = eng.evaluate_one({a, b, opts.seed, opts.prefix});
  PmvnResult result;
  result.prob = qr.prob;
  result.error3sigma = qr.error3sigma;
  result.seconds = qr.seconds;
  result.prefix_prob = std::move(qr.prefix_prob);
  result.samples_used = qr.samples_used;
  result.shifts_used = qr.shifts_used;
  result.converged = qr.converged;
  result.method = qr.method;
  return result;
}

}  // namespace

PmvnResult pmvn_dense(rt::Runtime& rt, const tile::TileMatrix& l,
                      std::span<const double> a, std::span<const double> b,
                      const PmvnOptions& opts) {
  PARMVN_EXPECTS(l.layout() == tile::Layout::kLowerSymmetric);
  return run_single(rt, engine::CholeskyFactor::borrow_dense(l), a, b, opts);
}

PmvnResult pmvn_tlr(rt::Runtime& rt, const tlr::TlrMatrix& l,
                    std::span<const double> a, std::span<const double> b,
                    const PmvnOptions& opts) {
  return run_single(rt, engine::CholeskyFactor::borrow_tlr(l), a, b, opts);
}

PmvnResult pmvn_vecchia(rt::Runtime& rt, const vecchia::VecchiaFactor& l,
                        std::span<const double> a, std::span<const double> b,
                        const PmvnOptions& opts) {
  return run_single(rt, engine::CholeskyFactor::borrow_vecchia(l), a, b,
                    opts);
}

}  // namespace parmvn::core
