#include "core/pmvn.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/timer.hpp"
#include "core/qmc_kernel.hpp"
#include "linalg/blas.hpp"
#include "tlr/lr_tile.hpp"

namespace parmvn::core {

namespace {

// Policy wrapper for the dense tiled factor.
struct DenseFactor {
  const tile::TileMatrix& l;

  [[nodiscard]] i64 dim() const { return l.rows(); }
  [[nodiscard]] i64 tile_size() const { return l.tile_size(); }
  [[nodiscard]] i64 row_tiles() const { return l.row_tiles(); }

  [[nodiscard]] la::ConstMatrixView diag_view(i64 r) const {
    return l.tile(r, r);
  }
  [[nodiscard]] rt::DataHandle diag_handle(i64 r) const {
    return l.handle(r, r);
  }
  [[nodiscard]] rt::DataHandle off_handle(i64 i, i64 r) const {
    return l.handle(i, r);
  }

  void apply_update(i64 i, i64 r, la::ConstMatrixView y, la::MatrixView a,
                    la::MatrixView b) const {
    la::ConstMatrixView lir = l.tile(i, r);
    la::gemm(la::Trans::kNo, la::Trans::kNo, -1.0, lir, y, 1.0, a);
    la::gemm(la::Trans::kNo, la::Trans::kNo, -1.0, lir, y, 1.0, b);
  }
};

// Policy wrapper for the TLR factor: the propagation GEMM becomes
// A -= U (V^T Y), B -= U (V^T Y).
struct TlrFactor {
  const tlr::TlrMatrix& l;

  [[nodiscard]] i64 dim() const { return l.dim(); }
  [[nodiscard]] i64 tile_size() const { return l.tile_size(); }
  [[nodiscard]] i64 row_tiles() const { return l.num_tiles(); }

  [[nodiscard]] la::ConstMatrixView diag_view(i64 r) const { return l.diag(r); }
  [[nodiscard]] rt::DataHandle diag_handle(i64 r) const {
    return l.diag_handle(r);
  }
  [[nodiscard]] rt::DataHandle off_handle(i64 i, i64 r) const {
    return l.lr_handle(i, r);
  }

  void apply_update(i64 i, i64 r, la::ConstMatrixView y, la::MatrixView a,
                    la::MatrixView b) const {
    const tlr::LowRankTile& t = l.lr(i, r);
    la::Matrix tmp(t.rank(), y.cols);
    la::gemm(la::Trans::kYes, la::Trans::kNo, 1.0, t.v.view(), y, 0.0,
             tmp.view());
    la::gemm(la::Trans::kNo, la::Trans::kNo, -1.0, t.u.view(), tmp.view(), 1.0,
             a);
    la::gemm(la::Trans::kNo, la::Trans::kNo, -1.0, t.u.view(), tmp.view(), 1.0,
             b);
  }
};

template <class Factor>
PmvnResult pmvn_impl(rt::Runtime& rt, const Factor& factor,
                     std::span<const double> a, std::span<const double> b,
                     const PmvnOptions& opts) {
  const WallTimer timer;
  const i64 n = factor.dim();
  PARMVN_EXPECTS(static_cast<i64>(a.size()) == n);
  PARMVN_EXPECTS(static_cast<i64>(b.size()) == n);
  PARMVN_EXPECTS(opts.samples_per_shift >= 1 && opts.shifts >= 1);
  const i64 m = factor.tile_size();
  const i64 mt = factor.row_tiles();
  const i64 num_samples = opts.total_samples();

  const stats::PointSet pts(opts.sampler, n, opts.samples_per_shift,
                            opts.shifts, opts.seed);

  // Column-panel width: multiple of the tile size within the memory budget
  // (3 matrices of n rows, 8 bytes each).
  i64 panel_cols = opts.panel_bytes / (3 * 8 * n);
  panel_cols = std::max(panel_cols, m);
  panel_cols = (panel_cols / m) * m;

  std::vector<double> p(static_cast<std::size_t>(num_samples), 1.0);
  std::vector<double> prefix_total;
  if (opts.prefix) prefix_total.assign(static_cast<std::size_t>(n), 0.0);

  for (i64 col0 = 0; col0 < num_samples; col0 += panel_cols) {
    const i64 pc = std::min(panel_cols, num_samples - col0);
    tile::TileMatrix A(rt, n, pc, m, tile::Layout::kGeneral, "A");
    tile::TileMatrix B(rt, n, pc, m, tile::Layout::kGeneral, "B");
    tile::TileMatrix Y(rt, n, pc, m, tile::Layout::kGeneral, "Y");
    const i64 nc = A.col_tiles();

    // Per-column-tile probability blocks and prefix accumulators get their
    // own dependency handles (they are written by every QMC task in the
    // column, in tile-row order).
    std::vector<rt::DataHandle> p_handles;
    p_handles.reserve(static_cast<std::size_t>(nc));
    for (i64 k = 0; k < nc; ++k) p_handles.push_back(rt.register_data("p"));
    std::vector<std::vector<double>> prefix_acc;
    if (opts.prefix) {
      prefix_acc.assign(static_cast<std::size_t>(nc),
                        std::vector<double>(static_cast<std::size_t>(n), 0.0));
    }

    // Initialise A/B tiles with the (replicated) limit vectors — the
    // paper's lines 2-3 of Algorithm 2, one task per tile.
    for (i64 r = 0; r < mt; ++r) {
      for (i64 k = 0; k < nc; ++k) {
        la::MatrixView at = A.tile(r, k);
        la::MatrixView bt = B.tile(r, k);
        const i64 row0 = r * m;
        rt.submit("pmvn_init",
                  {{A.handle(r, k), rt::Access::kWrite},
                   {B.handle(r, k), rt::Access::kWrite}},
                  [at, bt, row0, a, b] {
                    for (i64 j = 0; j < at.cols; ++j)
                      for (i64 i = 0; i < at.rows; ++i) {
                        at(i, j) = a[static_cast<std::size_t>(row0 + i)];
                        bt(i, j) = b[static_cast<std::size_t>(row0 + i)];
                      }
                  });
      }
    }

    // The sweep: QMC on tile-row r, then propagate Y(r,:) into rows > r.
    for (i64 r = 0; r < mt; ++r) {
      la::ConstMatrixView lrr = factor.diag_view(r);
      for (i64 k = 0; k < nc; ++k) {
        la::ConstMatrixView at = A.tile(r, k);
        la::ConstMatrixView bt = B.tile(r, k);
        la::MatrixView yt = Y.tile(r, k);
        double* pk = p.data() + col0 + k * m;
        double* acc = opts.prefix
                          ? prefix_acc[static_cast<std::size_t>(k)].data() + r * m
                          : nullptr;
        const i64 row0 = r * m;
        const i64 sample0 = col0 + k * m;
        rt.submit("qmc",
                  {{factor.diag_handle(r), rt::Access::kRead},
                   {A.handle(r, k), rt::Access::kRead},
                   {B.handle(r, k), rt::Access::kRead},
                   {Y.handle(r, k), rt::Access::kWrite},
                   {p_handles[static_cast<std::size_t>(k)],
                    rt::Access::kReadWrite}},
                  [lrr, &pts, row0, sample0, at, bt, yt, pk, acc] {
                    qmc_tile_kernel(lrr, pts, row0, sample0, at, bt, yt, pk,
                                    acc);
                  },
                  /*priority=*/2);
      }
      for (i64 i = r + 1; i < mt; ++i) {
        for (i64 k = 0; k < nc; ++k) {
          la::ConstMatrixView yt = Y.tile(r, k);
          la::MatrixView at = A.tile(i, k);
          la::MatrixView bt = B.tile(i, k);
          rt.submit("pmvn_update",
                    {{factor.off_handle(i, r), rt::Access::kRead},
                     {Y.handle(r, k), rt::Access::kRead},
                     {A.handle(i, k), rt::Access::kReadWrite},
                     {B.handle(i, k), rt::Access::kReadWrite}},
                    [&factor, i, r, yt, at, bt] {
                      factor.apply_update(i, r, yt, at, bt);
                    },
                    /*priority=*/1);
        }
      }
    }
    rt.wait_all();

    if (opts.prefix) {
      for (const auto& acc : prefix_acc)
        for (i64 i = 0; i < n; ++i)
          prefix_total[static_cast<std::size_t>(i)] +=
              acc[static_cast<std::size_t>(i)];
    }
  }

  // Shift-block means -> estimate + error.
  std::vector<double> block_means(static_cast<std::size_t>(opts.shifts), 0.0);
  for (i64 s = 0; s < num_samples; ++s)
    block_means[static_cast<std::size_t>(pts.shift_of(s))] +=
        p[static_cast<std::size_t>(s)];
  for (double& mmean : block_means)
    mmean /= static_cast<double>(opts.samples_per_shift);
  const stats::BlockEstimate est = stats::combine_block_means(block_means);

  PmvnResult result;
  result.prob = est.mean;
  result.error3sigma = est.error3sigma;
  if (opts.prefix) {
    result.prefix_prob = std::move(prefix_total);
    const double inv = 1.0 / static_cast<double>(num_samples);
    for (double& v : result.prefix_prob) v *= inv;
  }
  result.seconds = timer.seconds();
  return result;
}

}  // namespace

PmvnResult pmvn_dense(rt::Runtime& rt, const tile::TileMatrix& l,
                      std::span<const double> a, std::span<const double> b,
                      const PmvnOptions& opts) {
  PARMVN_EXPECTS(l.layout() == tile::Layout::kLowerSymmetric);
  return pmvn_impl(rt, DenseFactor{l}, a, b, opts);
}

PmvnResult pmvn_tlr(rt::Runtime& rt, const tlr::TlrMatrix& l,
                    std::span<const double> a, std::span<const double> b,
                    const PmvnOptions& opts) {
  return pmvn_impl(rt, TlrFactor{l}, a, b, opts);
}

}  // namespace parmvn::core
