// The per-tile QMC update of the paper's Algorithm 3: runs m Monte-Carlo
// chain steps for a block of samples against one diagonal Cholesky tile.
//
// Panel layout (since the sample-contiguous rewrite): the A/B/Y panels are
// stored samples-contiguous — an (mc x m) column-major matrix whose row
// index is the sample and whose column index is the tile-local dimension,
// so column i holds the mc samples of chain step i at unit stride. The
// sweep walks rows i = 0..m-1 of the tile; per row it accumulates the
// triangular products s_j = sum_{k<i} L(i,k) Y(j,k) across the whole panel
// with unit-stride SIMD axpy updates, then evaluates Phi / Phi^-1 / the CDF
// difference over all mc samples at once through the batched
// stats::*_batch primitives. The engine's wide multi-query panels use the
// same layout, so the fused propagation GEMMs and this integrand share one
// panel format.
//
// Fidelity note (documented in DESIGN.md): the paper's listing writes
// Y = Phi^-1[R * (Phi(B') - Phi(A'))], dropping the Phi(A') offset; the
// correct Genz update implemented here is
//   y = Phi^-1( Phi(a') + w * (Phi(b') - Phi(a')) ).
#pragma once

#include "linalg/matrix.hpp"
#include "stats/qmc.hpp"

namespace parmvn::core {

/// Process one (tile-row, tile-column) block.
///
/// @param l     m x m lower-triangular diagonal Cholesky tile
/// @param pts   sample set; dimension index = row0 + local column,
///              sample index = col0 + local row
/// @param row0  global row (dimension) offset of this tile
/// @param col0  global sample offset of this tile column
/// @param a,b   mc x m sample-contiguous tiles of transformed lower/upper
///              limits (already reduced by the GEMM propagation of earlier
///              tile rows): a(j, i) is sample j's limit for dimension i
/// @param y     mc x m output tile of conditioning values, same layout
/// @param p     mc running per-sample probability products (updated)
/// @param prefix_acc optional array of length m: prefix_acc[i] accumulates
///              the sum over this tile's samples of the running product
///              after global row row0 + i (confidence-function sweep),
///              added in ascending sample order; pass nullptr when not
///              needed.
void qmc_tile_kernel(la::ConstMatrixView l, const stats::PointSet& pts,
                     i64 row0, i64 col0, la::ConstMatrixView a,
                     la::ConstMatrixView b, la::MatrixView y, double* p,
                     double* prefix_acc);

/// Flop estimate for one kernel call (for the distributed cost model).
[[nodiscard]] double qmc_kernel_flops(i64 m, i64 mc);

}  // namespace parmvn::core
