// The per-tile QMC update of the paper's Algorithm 3: runs m Monte-Carlo
// chain steps for a block of samples against one diagonal Cholesky tile.
//
// Fidelity note (documented in DESIGN.md): the paper's listing writes
// Y = Phi^-1[R * (Phi(B') - Phi(A'))], dropping the Phi(A') offset; the
// correct Genz update implemented here is
//   y = Phi^-1( Phi(a') + w * (Phi(b') - Phi(a')) ).
#pragma once

#include "linalg/matrix.hpp"
#include "stats/qmc.hpp"

namespace parmvn::core {

/// Process one (tile-row, tile-column) block.
///
/// @param l     m x m lower-triangular diagonal Cholesky tile
/// @param pts   sample set; dimension index = row0 + local row,
///              sample index = col0 + local column
/// @param row0  global row (dimension) offset of this tile
/// @param col0  global sample offset of this tile column
/// @param a,b   m x mc tiles of transformed lower/upper limits (already
///              reduced by the GEMM propagation of earlier tile rows)
/// @param y     m x mc output tile of conditioning values
/// @param p     mc running per-sample probability products (updated)
/// @param prefix_acc optional array of length m: prefix_acc[i] accumulates
///              the sum over this tile's samples of the running product
///              after global row row0 + i (confidence-function sweep);
///              pass nullptr when not needed.
void qmc_tile_kernel(la::ConstMatrixView l, const stats::PointSet& pts,
                     i64 row0, i64 col0, la::ConstMatrixView a,
                     la::ConstMatrixView b, la::MatrixView y, double* p,
                     double* prefix_acc);

/// Flop estimate for one kernel call (for the distributed cost model).
[[nodiscard]] double qmc_kernel_flops(i64 m, i64 mc);

}  // namespace parmvn::core
