// Confidence-region (excursion-set) detection — the paper's Algorithm 1,
// built on the factor-once / evaluate-many PMVN engine.
//
// Given a covariance model over n locations, a mean field, a threshold u and
// a confidence level 1-alpha, computes the positive confidence function
// F+(s) (paper eq. 5) and the region E+_{u,alpha} = {s : F+(s) >= 1-alpha}.
//
// Two strategies:
//  * kSweep (default): one Cholesky + one prefix-PMVN sweep over the
//    marginal-probability ordering gives every prefix's joint probability at
//    once — the running SOV product after row i IS the joint probability of
//    the top-(i+1) locations (this is what makes large n tractable).
//  * kNaivePerPrefix: the literal Algorithm 1 loop (one PMVN call per
//    prefix); O(n) integrations, kept as a test oracle for small n. Since
//    the engine refactor the prefixes are evaluated as batched limit sets
//    against one factor, so even the oracle no longer refactors.
//
// Multi-query serving: detect_confidence_regions() evaluates many
// (threshold, alpha, direction) queries against one mean field. Queries
// whose marginal ordering agrees share a single Cholesky factor — obtained
// from the optional engine::FactorCache, so repeated calls (serving) reuse
// factors across requests — and are integrated in one fused batched sweep.
// Each query's numbers are bitwise identical to a detect_confidence_region
// call with the same parameters and seed. Concurrent host threads may call
// this with one shared Runtime + FactorCache: the factor and engine entry
// points serialise their submit…wait_all epochs through
// Runtime::exclusive_epoch() (test_serve drives this on both scheduler
// arms). The managed alternative is serve::Server (src/serve/), which adds
// admission control, cross-caller batching and overload degradation.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "core/pmvn.hpp"
#include "engine/factor_cache.hpp"
#include "geo/covgen.hpp"
#include "linalg/generator.hpp"

namespace parmvn::core {

/// Factor arm for the sweep. kVecchia targets fields too large for a dense
/// or TLR Cholesky (O(n m^3) build, O(n m) memory) and computes the
/// *Vecchia estimand* — the confidence function of the Vecchia-approximate
/// density — which agrees with the other arms statistically, not bitwise.
enum class CrdMode { kDense, kTlr, kVecchia };
enum class CrdStrategy { kSweep, kNaivePerPrefix };

/// Excursion direction: E+ = {X > u} (the paper's case) or E- = {X < u}
/// (Bolin & Lindgren's negative excursions, e.g. drought or low-pressure
/// regions). E- is computed by the exact reflection X < u <=> -X > -u.
enum class CrdDirection { kAbove, kBelow };

struct CrdOptions {
  double threshold = 0.0;  // u
  double alpha = 0.05;     // confidence level 1 - alpha
  CrdDirection direction = CrdDirection::kAbove;
  i64 tile = 256;
  CrdMode mode = CrdMode::kDense;
  double tlr_tol = 1e-3;   // TLR compression accuracy (paper's sweep values)
  i64 tlr_max_rank = -1;
  i64 vecchia_m = 30;      // Vecchia conditioning-set size (kVecchia only)
  CrdStrategy strategy = CrdStrategy::kSweep;
  PmvnOptions pmvn;
};

/// One query of a batched detection: threshold/level/direction against the
/// shared mean field. An unset seed inherits CrdOptions::pmvn.seed.
struct CrdQuery {
  double threshold = 0.0;
  double alpha = 0.05;
  CrdDirection direction = CrdDirection::kAbove;
  std::optional<u64> seed;
};

struct CrdResult {
  std::vector<double> marginal;     // pM[i] = P(X_i > u), original indexing
                                    // (P(X_i < u) for kBelow queries)
  std::vector<i64> order;           // opM: locations by descending marginal
  std::vector<double> prefix_prob;  // joint prob of the top-(i+1) set
  std::vector<double> confidence;   // F+ per original location (monotone
                                    // envelope of prefix_prob)
  std::vector<std::uint8_t> region; // 1 where F+ >= 1 - alpha
  i64 region_size = 0;
  double factor_seconds = 0.0;      // Cholesky time paid by this call,
                                    // attributed to the first query of each
                                    // ordering group (0 for the group's
                                    // other members and on cache hits), so
                                    // a batch sum equals the true cost
  double sweep_seconds = 0.0;       // PMVN integration time, attributed
                                    // like factor_seconds: the group's
                                    // fused-batch wall time on its first
                                    // member, 0 on the others
  bool factor_cached = false;       // factor came from the FactorCache
  i64 samples_used = 0;             // QMC samples this query's sweep spent
                                    // (less than the budget when the
                                    // adaptive stop retired it early;
                                    // shared-slot members report the same)
  int shifts_used = 0;              // shift blocks actually evaluated
  bool converged = false;           // adaptive stop criterion met
  /// kEp when the tiered EP screen (PmvnOptions::tiered) decided this
  /// query's region without spending QMC samples on it; kDeadline when
  /// PmvnOptions::deadline_ms expired mid-sweep (prefix_prob and the region
  /// are then computed from the partial estimate, converged == false).
  engine::EvalMethod method = engine::EvalMethod::kQmc;
  /// Per-query outcome of a batched detection. A failed ordering group
  /// (factorization or sweep) marks each of its members instead of aborting
  /// the sibling groups: marginal/order stay filled (they are computed
  /// before anything can fail), prefix_prob/confidence/region are empty.
  /// The single-query detect_confidence_region still throws, as before.
  Status status;
};

/// Detect the confidence region for the Gaussian field X ~ N(mean, cov).
/// `cov` must be symmetric positive definite; it is standardised to a
/// correlation matrix internally (Algorithm 1 divides by sqrt(Sigma_ii)).
[[nodiscard]] CrdResult detect_confidence_region(
    rt::Runtime& rt, const la::MatrixGenerator& cov,
    std::span<const double> mean, const CrdOptions& opts);

/// Batched detection: evaluate every query against the shared field,
/// factoring each distinct marginal ordering once (served from `cache` when
/// provided) and integrating all queries of an ordering in one fused PMVN
/// batch. Requires CrdStrategy::kSweep. Results are positionally matched to
/// `queries`.
[[nodiscard]] std::vector<CrdResult> detect_confidence_regions(
    rt::Runtime& rt, const la::MatrixGenerator& cov,
    std::span<const double> mean, const CrdOptions& opts,
    std::span<const CrdQuery> queries,
    engine::FactorCache* cache = nullptr);

}  // namespace parmvn::core
