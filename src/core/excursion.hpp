// Confidence-region (excursion-set) detection — the paper's Algorithm 1,
// built on the PMVN sweep.
//
// Given a covariance model over n locations, a mean field, a threshold u and
// a confidence level 1-alpha, computes the positive confidence function
// F+(s) (paper eq. 5) and the region E+_{u,alpha} = {s : F+(s) >= 1-alpha}.
//
// Two strategies:
//  * kSweep (default): one Cholesky + one prefix-PMVN sweep over the
//    marginal-probability ordering gives every prefix's joint probability at
//    once — the running SOV product after row i IS the joint probability of
//    the top-(i+1) locations (this is what makes large n tractable).
//  * kNaivePerPrefix: the literal Algorithm 1 loop (one PMVN call per
//    prefix); O(n) integrations, kept as a test oracle for small n.
#pragma once

#include <span>

#include "core/pmvn.hpp"
#include "geo/covgen.hpp"
#include "linalg/generator.hpp"

namespace parmvn::core {

enum class CrdMode { kDense, kTlr };
enum class CrdStrategy { kSweep, kNaivePerPrefix };

/// Excursion direction: E+ = {X > u} (the paper's case) or E- = {X < u}
/// (Bolin & Lindgren's negative excursions, e.g. drought or low-pressure
/// regions). E- is computed by the exact reflection X < u <=> -X > -u.
enum class CrdDirection { kAbove, kBelow };

struct CrdOptions {
  double threshold = 0.0;  // u
  double alpha = 0.05;     // confidence level 1 - alpha
  CrdDirection direction = CrdDirection::kAbove;
  i64 tile = 256;
  CrdMode mode = CrdMode::kDense;
  double tlr_tol = 1e-3;   // TLR compression accuracy (paper's sweep values)
  i64 tlr_max_rank = -1;
  CrdStrategy strategy = CrdStrategy::kSweep;
  PmvnOptions pmvn;
};

struct CrdResult {
  std::vector<double> marginal;     // pM[i] = P(X_i > u), original indexing
  std::vector<i64> order;           // opM: locations by descending marginal
  std::vector<double> prefix_prob;  // joint prob of the top-(i+1) set
  std::vector<double> confidence;   // F+ per original location (monotone
                                    // envelope of prefix_prob)
  std::vector<std::uint8_t> region; // 1 where F+ >= 1 - alpha
  i64 region_size = 0;
  double factor_seconds = 0.0;      // Cholesky (dense or TLR) time
  double sweep_seconds = 0.0;       // PMVN integration time
};

/// Detect the confidence region for the Gaussian field X ~ N(mean, cov).
/// `cov` must be symmetric positive definite; it is standardised to a
/// correlation matrix internally (Algorithm 1 divides by sqrt(Sigma_ii)).
[[nodiscard]] CrdResult detect_confidence_region(
    rt::Runtime& rt, const la::MatrixGenerator& cov,
    std::span<const double> mean, const CrdOptions& opts);

}  // namespace parmvn::core
