#include "core/sov.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "core/qmc_kernel.hpp"
#include "linalg/blas.hpp"
#include "linalg/potrf.hpp"
#include "stats/normal.hpp"

namespace parmvn::core {

namespace {

constexpr double kUEps = 1e-16;  // keeps Phi^-1 arguments inside (0,1)

// Samples per panel of the sample-contiguous sweep: wide enough to fill the
// batched Phi/Phi^-1 lanes, small enough that the three (panel x n) buffers
// stay cache-friendly at typical n.
constexpr i64 kPanelSamples = 128;

}  // namespace

namespace detail {

void sov_panel_sweep(
    la::ConstMatrixView l, std::span<const double> a,
    std::span<const double> b, const stats::PointSet& pts, i64 dim0,
    i64 sample0, i64 count, std::span<const double> scale, double* prefix_acc,
    const std::function<void(i64, i64, const double*)>& consume) {
  const i64 n = l.rows;
  const i64 chunk = std::min<i64>(kPanelSamples, count);
  la::Matrix ap(chunk, n), bp(chunk, n), yp(chunk, n);
  const bool constant_limits = scale.empty();
  if (constant_limits) {
    for (i64 i = 0; i < n; ++i) {
      std::fill_n(ap.view().col(i), chunk, a[static_cast<std::size_t>(i)]);
      std::fill_n(bp.view().col(i), chunk, b[static_cast<std::size_t>(i)]);
    }
  }
  std::vector<double> p(static_cast<std::size_t>(chunk));
  for (i64 s0 = sample0; s0 < sample0 + count; s0 += chunk) {
    const i64 pc = std::min(chunk, sample0 + count - s0);
    if (!constant_limits) {
      // Per-sample scaled limits (MVT): a'(j, i) = scale_j * a_i, the same
      // product the scalar recursion computed per (sample, dimension).
      for (i64 i = 0; i < n; ++i) {
        double* __restrict ac = ap.view().col(i);
        double* __restrict bc = bp.view().col(i);
        const double ai = a[static_cast<std::size_t>(i)];
        const double bi = b[static_cast<std::size_t>(i)];
        for (i64 j = 0; j < pc; ++j) {
          const double sc = scale[static_cast<std::size_t>(s0 + j)];
          ac[j] = sc * ai;
          bc[j] = sc * bi;
        }
      }
    }
    std::fill_n(p.data(), pc, 1.0);
    qmc_tile_kernel(l, pts, dim0, s0, ap.sub(0, 0, pc, n), bp.sub(0, 0, pc, n),
                    yp.view().sub(0, 0, pc, n), p.data(), prefix_acc);
    consume(s0, pc, p.data());
  }
}

SovResult sov_block_estimate(la::ConstMatrixView l, std::span<const double> a,
                             std::span<const double> b,
                             const stats::PointSet& pts, i64 dim0,
                             std::span<const double> scale,
                             const SovOptions& opts) {
  const i64 sps = opts.samples_per_shift;
  std::vector<double> block_sums(static_cast<std::size_t>(opts.shifts), 0.0);
  const auto consume = [&](i64 s0, i64 pc, const double* p) {
    for (i64 j = 0; j < pc; ++j)
      block_sums[static_cast<std::size_t>(pts.shift_of(s0 + j))] += p[j];
  };
  // Block means over the first `done` shifts, pair-merged in antithetic
  // mode (pair members are dependent — see stats/qmc.hpp).
  const auto estimate = [&](int done) {
    std::vector<double> means(block_sums.begin(), block_sums.begin() + done);
    for (double& m : means) m /= static_cast<double>(sps);
    if (opts.antithetic) means = stats::merge_antithetic_pairs(means);
    return stats::combine_block_means(means);
  };

  SovResult res;
  if (opts.abs_tol <= 0.0 && std::isnan(opts.decision)) {
    // Fixed budget: one sweep over the whole stream (the pre-adaptive code
    // path, bitwise preserved).
    sov_panel_sweep(l, a, b, pts, dim0, 0, pts.num_samples(), scale, nullptr,
                    consume);
    const stats::BlockEstimate est = estimate(opts.shifts);
    res.prob = est.mean;
    res.error3sigma = est.error3sigma;
    res.samples_used = pts.num_samples();
    res.shifts_used = opts.shifts;
    return res;
  }

  // Adaptive: one shift block (one antithetic pair) per round, stop as soon
  // as the running estimate meets a criterion — 3-sigma spread under the
  // abs_tol budget, or the decision threshold cleanly outside the 3-sigma
  // band (the result's side of the threshold is then settled; more samples
  // only sharpen a decided number). The estimate gates a decision, so at
  // least two (independent) blocks are required.
  PARMVN_EXPECTS(opts.shifts >= 2);
  PARMVN_EXPECTS(opts.min_shifts >= 2);
  const int step = opts.antithetic ? 2 : 1;
  int done = 0;
  bool converged = false;
  stats::BlockEstimate est;
  while (done < opts.shifts) {
    sov_panel_sweep(l, a, b, pts, dim0, static_cast<i64>(done) * sps,
                    static_cast<i64>(step) * sps, scale, nullptr, consume);
    done += step;
    est = estimate(done);
    if (done >= opts.min_shifts) {
      const bool tol_met = opts.abs_tol > 0.0 && est.error3sigma <= opts.abs_tol;
      const bool decided =
          !std::isnan(opts.decision) &&
          (est.mean + est.error3sigma < opts.decision ||
           est.mean - est.error3sigma > opts.decision);
      if (tol_met || decided) {
        converged = true;
        break;
      }
    }
  }
  res.prob = est.mean;
  res.error3sigma = est.error3sigma;
  res.samples_used = static_cast<i64>(done) * sps;
  res.shifts_used = done;
  res.converged = converged;
  return res;
}

}  // namespace detail

SovResult mvn_probability_chol(la::ConstMatrixView l, std::span<const double> a,
                               std::span<const double> b,
                               const SovOptions& opts) {
  const i64 n = l.rows;
  PARMVN_EXPECTS(l.cols == n);
  PARMVN_EXPECTS(static_cast<i64>(a.size()) == n);
  PARMVN_EXPECTS(static_cast<i64>(b.size()) == n);

  const stats::PointSet pts(opts.sampler, n, opts.samples_per_shift,
                            opts.shifts, opts.seed, opts.antithetic);
  return detail::sov_block_estimate(l, a, b, pts, /*dim0=*/0, /*scale=*/{},
                                    opts);
}

SovResult mvn_probability(la::ConstMatrixView sigma, std::span<const double> a,
                          std::span<const double> b, const SovOptions& opts) {
  la::Matrix l = la::to_matrix(sigma);
  la::potrf_lower_or_throw(l.view());
  return mvn_probability_chol(l.view(), a, b, opts);
}

std::vector<double> mvn_prefix_probabilities_chol(la::ConstMatrixView l,
                                                  std::span<const double> a,
                                                  std::span<const double> b,
                                                  const SovOptions& opts) {
  const i64 n = l.rows;
  PARMVN_EXPECTS(l.cols == n);
  PARMVN_EXPECTS(static_cast<i64>(a.size()) == n);
  PARMVN_EXPECTS(static_cast<i64>(b.size()) == n);

  const stats::PointSet pts(opts.sampler, n, opts.samples_per_shift,
                            opts.shifts, opts.seed, opts.antithetic);
  std::vector<double> acc(static_cast<std::size_t>(n), 0.0);
  detail::sov_panel_sweep(l, a, b, pts, /*dim0=*/0, 0, pts.num_samples(),
                          /*scale=*/{}, acc.data(),
                          [](i64, i64, const double*) {});
  const double inv = 1.0 / static_cast<double>(pts.num_samples());
  for (double& v : acc) v *= inv;
  return acc;
}

std::vector<i64> genz_reorder(la::MatrixView sigma, std::span<double> a,
                              std::span<double> b) {
  const i64 n = sigma.rows;
  PARMVN_EXPECTS(sigma.cols == n);
  PARMVN_EXPECTS(static_cast<i64>(a.size()) == n &&
                 static_cast<i64>(b.size()) == n);

  std::vector<i64> perm(static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;

  // Greedy: at step i, among remaining variables pick the one whose
  // (conditional) probability Phi(b') - Phi(a') is smallest, swap it into
  // position i, and take one step of outer-product Cholesky so subsequent
  // choices condition on it (Genz & Bretz 2009, Sec. 4.1.3, expectation
  // approximated by the midpoint y = Phi^-1((Phi(a')+Phi(b'))/2)).
  std::vector<double> y(static_cast<std::size_t>(n), 0.0);
  for (i64 i = 0; i < n; ++i) {
    i64 best = -1;
    double best_mass = 2.0;
    for (i64 j = i; j < n; ++j) {
      double dotv = 0.0;
      for (i64 k = 0; k < i; ++k) dotv += sigma(j, k) * y[static_cast<std::size_t>(k)];
      const double denom_sq = sigma(j, j);
      if (denom_sq <= 0.0) continue;
      const double denom = std::sqrt(denom_sq);
      const double aj = (a[static_cast<std::size_t>(j)] - dotv) / denom;
      const double bj = (b[static_cast<std::size_t>(j)] - dotv) / denom;
      const double mass = stats::norm_cdf_diff(aj, bj);
      if (mass < best_mass) {
        best_mass = mass;
        best = j;
      }
    }
    if (best < 0) best = i;
    if (best != i) {
      // Swap variable `best` into position i: rows/cols of sigma, limits,
      // permutation record.
      for (i64 k = 0; k < n; ++k) std::swap(sigma(i, k), sigma(best, k));
      for (i64 k = 0; k < n; ++k) std::swap(sigma(k, i), sigma(k, best));
      std::swap(a[static_cast<std::size_t>(i)], a[static_cast<std::size_t>(best)]);
      std::swap(b[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(best)]);
      std::swap(perm[static_cast<std::size_t>(i)], perm[static_cast<std::size_t>(best)]);
    }

    // One outer-product Cholesky step on column i (writes L into the lower
    // triangle of sigma).
    double diag = sigma(i, i);
    for (i64 k = 0; k < i; ++k) diag -= sigma(i, k) * sigma(i, k);
    PARMVN_EXPECTS(diag > 0.0);
    const double lii = std::sqrt(diag);
    sigma(i, i) = lii;
    for (i64 j = i + 1; j < n; ++j) {
      double v = sigma(j, i);
      for (i64 k = 0; k < i; ++k) v -= sigma(j, k) * sigma(i, k);
      sigma(j, i) = v / lii;
    }
    // Midpoint y for conditioning subsequent choices.
    double dotv = 0.0;
    for (i64 k = 0; k < i; ++k) dotv += sigma(i, k) * y[static_cast<std::size_t>(k)];
    const double ai = (a[static_cast<std::size_t>(i)] - dotv) / lii;
    const double bi = (b[static_cast<std::size_t>(i)] - dotv) / lii;
    const double mid =
        std::clamp(0.5 * (stats::norm_cdf(ai) + stats::norm_cdf(bi)), kUEps,
                   1.0 - kUEps);
    y[static_cast<std::size_t>(i)] = stats::norm_quantile(mid);
  }
  return perm;
}

}  // namespace parmvn::core
