// Monte-Carlo validation of detected confidence regions (paper Section V-C
// and Fig. 6): draw samples from the fitted field and check that the
// detected region is jointly exceeded with frequency ~ 1 - alpha.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace parmvn::core {

struct McValidationResult {
  std::vector<double> levels;  // evaluated 1 - alpha grid
  std::vector<double> p_hat;   // MC estimate of the joint exceedance prob
  double seconds = 0.0;
};

/// @param l_ord       lower Cholesky factor of the (correlation) matrix in
///                    the same variable order as `a_ord`
/// @param a_ord       standardized lower limits in that order
/// @param prefix_prob prefix joint probabilities from the CRD sweep (defines
///                    the region for each level)
/// @param levels      the 1-alpha values to validate
/// @param num_samples MC sample count N
///
/// For each sample x = L z, the first index f where x_f < a_f is recorded;
/// the sample jointly exceeds every prefix shorter than f. p_hat(level) is
/// then the fraction of samples whose failure index is >= the region size
/// at that level. One O(n^2) pass per sample, batched through GEMM.
[[nodiscard]] McValidationResult validate_region_mc(
    la::ConstMatrixView l_ord, std::span<const double> a_ord,
    std::span<const double> prefix_prob, std::span<const double> levels,
    i64 num_samples, u64 seed);

/// Region size (prefix length) whose monotone-envelope probability still
/// meets `level`; shared by CRD and the validator.
[[nodiscard]] i64 region_size_at_level(std::span<const double> prefix_prob,
                                       double level);

}  // namespace parmvn::core
