#include "core/excursion.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>
#include <utility>

#include "common/contracts.hpp"
#include "common/timer.hpp"
#include "engine/pmvn_engine.hpp"
#include "stats/normal.hpp"

namespace parmvn::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

engine::FactorSpec factor_spec(const CrdOptions& opts) {
  engine::FactorSpec spec;
  switch (opts.mode) {
    case CrdMode::kDense:
      spec.kind = engine::FactorKind::kDense;
      break;
    case CrdMode::kTlr:
      spec.kind = engine::FactorKind::kTlr;
      break;
    case CrdMode::kVecchia:
      spec.kind = engine::FactorKind::kVecchia;
      break;
  }
  spec.tile = opts.tile;
  spec.tlr_tol = opts.tlr_tol;
  spec.tlr_max_rank = opts.tlr_max_rank;
  spec.vecchia_m = opts.vecchia_m;
  return spec;
}

// A query normalised into E+ space: kBelow becomes kAbove of the reflected
// field (X < u <=> -X > -u; the covariance is reflection-invariant), which
// only flips the sign of the standardised threshold z.
struct PreparedQuery {
  double alpha = 0.0;
  u64 seed = 0;
  std::vector<double> marginal;  // original indexing
  std::vector<i64> order;        // descending marginal
  std::vector<double> a_ord;     // lower limits in the ordered space
};

PreparedQuery prepare_query(std::span<const double> sd,
                            std::span<const double> mean, const CrdQuery& q,
                            u64 default_seed) {
  PARMVN_EXPECTS(q.alpha > 0.0 && q.alpha < 1.0);
  const i64 n = static_cast<i64>(mean.size());
  PreparedQuery pq;
  pq.alpha = q.alpha;
  pq.seed = q.seed.value_or(default_seed);

  // Lines 3-5 of Algorithm 1: marginal exceedance probabilities of the
  // (possibly reflected) field.
  pq.marginal.resize(static_cast<std::size_t>(n));
  std::vector<double> z(static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i) {
    const double zi =
        (q.threshold - mean[static_cast<std::size_t>(i)]) /
        sd[static_cast<std::size_t>(i)];
    z[static_cast<std::size_t>(i)] =
        q.direction == CrdDirection::kAbove ? zi : -zi;
    pq.marginal[static_cast<std::size_t>(i)] =
        1.0 - stats::norm_cdf(z[static_cast<std::size_t>(i)]);
  }

  // Line 6: order locations by descending marginal probability.
  pq.order.resize(static_cast<std::size_t>(n));
  std::iota(pq.order.begin(), pq.order.end(), i64{0});
  std::stable_sort(pq.order.begin(), pq.order.end(), [&](i64 x, i64 y) {
    return pq.marginal[static_cast<std::size_t>(x)] >
           pq.marginal[static_cast<std::size_t>(y)];
  });

  // Limits in the ordered, standardised space: the event is
  // {X_ord > z_ord} component-wise, i.e. a = z, b = +inf.
  pq.a_ord.resize(static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i)
    pq.a_ord[static_cast<std::size_t>(i)] =
        z[static_cast<std::size_t>(pq.order[static_cast<std::size_t>(i)])];
  return pq;
}

// Confidence function (monotone non-increasing envelope of the prefix
// probabilities mapped back to original indices) and the level set.
void finalize_result(PreparedQuery&& pq, std::vector<double> prefix_prob,
                     CrdResult& res) {
  const i64 n = static_cast<i64>(pq.marginal.size());
  res.marginal = std::move(pq.marginal);
  res.order = std::move(pq.order);
  res.prefix_prob = std::move(prefix_prob);

  res.confidence.resize(static_cast<std::size_t>(n));
  double running = 1.0;
  for (i64 i = 0; i < n; ++i) {
    running = std::min(running, res.prefix_prob[static_cast<std::size_t>(i)]);
    res.confidence[static_cast<std::size_t>(
        res.order[static_cast<std::size_t>(i)])] = running;
  }

  const double level = 1.0 - pq.alpha;
  res.region.assign(static_cast<std::size_t>(n), 0);
  res.region_size = 0;
  for (i64 i = 0; i < n; ++i) {
    if (res.confidence[static_cast<std::size_t>(i)] >= level) {
      res.region[static_cast<std::size_t>(i)] = 1;
      ++res.region_size;
    }
  }
}

// Literal Algorithm 1 oracle: one full PMVN per prefix. The prefixes are
// evaluated as chunked batches of limit sets against one dense factor —
// per-query arithmetic is identical to one-at-a-time evaluation, so this
// stays a bitwise-faithful oracle for the sweep strategy.
CrdResult naive_per_prefix(rt::Runtime& rt, const la::MatrixGenerator& cov,
                           std::span<const double> sd,
                           std::span<const double> mean,
                           const CrdOptions& opts) {
  const i64 n = cov.rows();
  CrdQuery query{opts.threshold, opts.alpha, opts.direction,
                 opts.pmvn.seed};
  PreparedQuery pq = prepare_query(sd, mean, query, opts.pmvn.seed);

  const engine::FactorSpec spec{engine::FactorKind::kDense, opts.tile, 0.0,
                                -1};
  auto factor = std::make_shared<const engine::CholeskyFactor>(
      engine::CholeskyFactor::factor_ordered(rt, cov, pq.order, spec, sd));
  const engine::PmvnEngine eng(rt, factor, engine_options(opts.pmvn));

  const WallTimer sweep_timer;
  std::vector<double> prefix_prob(static_cast<std::size_t>(n));
  const std::vector<double> b_ord(static_cast<std::size_t>(n), kInf);
  constexpr i64 kChunk = 16;
  for (i64 k0 = 0; k0 < n; k0 += kChunk) {
    const i64 kc = std::min(kChunk, n - k0);
    // Prefix k keeps limits on the first k+1 coordinates only; the rest are
    // (-inf, inf) and contribute an exact factor 1.
    std::vector<std::vector<double>> partials(static_cast<std::size_t>(kc));
    std::vector<engine::LimitSet> limits(static_cast<std::size_t>(kc));
    for (i64 c = 0; c < kc; ++c) {
      std::vector<double>& a_partial = partials[static_cast<std::size_t>(c)];
      a_partial.assign(static_cast<std::size_t>(n), -kInf);
      for (i64 i = 0; i <= k0 + c; ++i)
        a_partial[static_cast<std::size_t>(i)] =
            pq.a_ord[static_cast<std::size_t>(i)];
      limits[static_cast<std::size_t>(c)] =
          engine::LimitSet{a_partial, b_ord, pq.seed, /*prefix=*/false};
    }
    const std::vector<engine::QueryResult> chunk = eng.evaluate(limits);
    for (i64 c = 0; c < kc; ++c)
      prefix_prob[static_cast<std::size_t>(k0 + c)] =
          chunk[static_cast<std::size_t>(c)].prob;
  }

  CrdResult res;
  res.factor_seconds = factor->factor_seconds();
  res.sweep_seconds = sweep_timer.seconds();
  finalize_result(std::move(pq), std::move(prefix_prob), res);
  return res;
}

}  // namespace

CrdResult detect_confidence_region(rt::Runtime& rt,
                                   const la::MatrixGenerator& cov,
                                   std::span<const double> mean,
                                   const CrdOptions& opts) {
  const i64 n = cov.rows();
  PARMVN_EXPECTS(cov.cols() == n);
  PARMVN_EXPECTS(static_cast<i64>(mean.size()) == n);
  PARMVN_EXPECTS(opts.alpha > 0.0 && opts.alpha < 1.0);

  if (opts.strategy == CrdStrategy::kNaivePerPrefix) {
    const std::vector<double> sd = engine::standard_deviations(cov);
    return naive_per_prefix(rt, cov, sd, mean, opts);
  }
  const CrdQuery query{opts.threshold, opts.alpha, opts.direction,
                       opts.pmvn.seed};
  std::vector<CrdResult> results =
      detect_confidence_regions(rt, cov, mean, opts, {&query, 1});
  // The batch API isolates failures per group; the single-query entry point
  // keeps its historical throwing contract.
  if (!results.front().status.ok()) throw Error(results.front().status.message);
  return std::move(results.front());
}

std::vector<CrdResult> detect_confidence_regions(
    rt::Runtime& rt, const la::MatrixGenerator& cov,
    std::span<const double> mean, const CrdOptions& opts,
    std::span<const CrdQuery> queries, engine::FactorCache* cache) {
  const i64 n = cov.rows();
  PARMVN_EXPECTS(cov.cols() == n);
  PARMVN_EXPECTS(static_cast<i64>(mean.size()) == n);
  PARMVN_EXPECTS(opts.strategy == CrdStrategy::kSweep);
  if (queries.empty()) return {};

  const std::vector<double> sd = engine::standard_deviations(cov);

  std::vector<PreparedQuery> prepared;
  prepared.reserve(queries.size());
  for (const CrdQuery& q : queries)
    prepared.push_back(prepare_query(sd, mean, q, opts.pmvn.seed));

  // Group queries by marginal ordering: one factor (and one fused batched
  // sweep) per distinct permutation. With a constant-variance field the
  // ordering is threshold-independent, so typical multi-threshold batches
  // collapse into a single group.
  std::map<std::vector<i64>, std::vector<std::size_t>> groups;
  for (std::size_t qi = 0; qi < prepared.size(); ++qi)
    groups[prepared[qi].order].push_back(qi);

  const engine::FactorSpec spec = factor_spec(opts);
  std::vector<CrdResult> results(queries.size());
  const std::vector<double> b_ord(static_cast<std::size_t>(n), kInf);

  for (auto& [order, members] : groups) {
    // A failing group marks its own members and moves on: sibling groups
    // (other orderings, already-finished results) must never be torn down
    // by one group's bad factorization or sweep. Marginals and the ordering
    // are computed before anything can fail, so even a failed member
    // reports what it was integrating.
    const auto fail_group = [&](const std::vector<std::size_t>& group_members,
                                Status status) {
      for (const std::size_t qi : group_members) {
        CrdResult& res = results[qi];
        res.status = status;
        res.marginal = std::move(prepared[qi].marginal);
        res.order = std::move(prepared[qi].order);
      }
    };

    std::shared_ptr<const engine::CholeskyFactor> factor;
    bool cached = false;
    double factor_paid_s = 0.0;
    try {
      if (cache != nullptr) {
        const WallTimer factor_timer;
        // `cached` comes from the call itself, not a stats() delta — the
        // counters are shared across serving threads and race.
        factor = cache->get_or_factor(rt, cov, order, spec, sd, &cached);
        factor_paid_s = cached ? 0.0 : factor_timer.seconds();
      } else {
        factor = std::make_shared<const engine::CholeskyFactor>(
            engine::CholeskyFactor::factor_ordered(rt, cov, order, spec, sd));
        factor_paid_s = factor->factor_seconds();
      }
    } catch (const std::exception& e) {
      fail_group(members, Status::factor_failed(e.what()));
      continue;
    }

    // Deduplicate identical integrals within the group: queries differing
    // only in alpha share (a_ord, seed) and therefore the exact same prefix
    // sweep — an alpha-level sweep costs one integration, not k.
    const engine::PmvnEngine eng(rt, factor, engine_options(opts.pmvn));
    std::vector<engine::LimitSet> limits;
    std::vector<std::size_t> slot_of_member(members.size());
    // Decision threshold for adaptive early stop: the region test compares
    // the confidence envelope against 1 - alpha, so a slot whose members all
    // share one alpha can retire as soon as every prefix clears that level.
    // Members at different alphas reuse one sweep — the slot then keeps NaN
    // (no decision stop) so no member's level is starved of accuracy.
    std::vector<double> slot_alpha;
    for (std::size_t mi = 0; mi < members.size(); ++mi) {
      const PreparedQuery& pq = prepared[members[mi]];
      std::size_t slot = limits.size();
      for (std::size_t s = 0; s < limits.size(); ++s) {
        if (limits[s].seed == pq.seed &&
            std::equal(limits[s].a.begin(), limits[s].a.end(),
                       pq.a_ord.begin(), pq.a_ord.end())) {
          slot = s;
          break;
        }
      }
      if (slot == limits.size()) {
        limits.push_back(
            engine::LimitSet{pq.a_ord, b_ord, pq.seed, /*prefix=*/true});
        slot_alpha.push_back(pq.alpha);
      } else if (slot_alpha[slot] != pq.alpha) {
        slot_alpha[slot] = std::numeric_limits<double>::quiet_NaN();
      }
      slot_of_member[mi] = slot;
    }
    for (std::size_t s = 0; s < limits.size(); ++s)
      limits[s].decision = 1.0 - slot_alpha[s];  // NaN stays NaN
    std::vector<engine::QueryResult> batch;
    try {
      batch = eng.evaluate(limits);
    } catch (const std::exception& e) {
      fail_group(members, Status::eval_failed(e.what()));
      continue;
    }

    // The last member consuming a dedup slot takes the prefix vector by
    // move (a sole-owner slot — the common alpha-sweep case — never copies).
    std::vector<i64> slot_remaining(limits.size(), 0);
    for (const std::size_t slot : slot_of_member) ++slot_remaining[slot];

    for (std::size_t mi = 0; mi < members.size(); ++mi) {
      const std::size_t qi = members[mi];
      const std::size_t slot = slot_of_member[mi];
      engine::QueryResult& qr = batch[slot];
      CrdResult& res = results[qi];
      // Attribute the group's one Cholesky and its one fused sweep to the
      // first member, so summing the per-query costs over a batch gives the
      // true totals.
      res.factor_seconds = mi == 0 ? factor_paid_s : 0.0;
      res.factor_cached = cached;
      res.sweep_seconds = mi == 0 ? qr.seconds : 0.0;
      res.samples_used = qr.samples_used;
      res.shifts_used = qr.shifts_used;
      res.converged = qr.converged;
      res.method = qr.method;
      std::vector<double> prefix = (--slot_remaining[slot] == 0)
                                       ? std::move(qr.prefix_prob)
                                       : qr.prefix_prob;
      finalize_result(std::move(prepared[qi]), std::move(prefix), res);
    }
  }
  return results;
}

}  // namespace parmvn::core
