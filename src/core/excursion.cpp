#include "core/excursion.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/contracts.hpp"
#include "common/timer.hpp"
#include "stats/normal.hpp"
#include "tile/tiled_potrf.hpp"
#include "tlr/tlr_potrf.hpp"

namespace parmvn::core {

CrdResult detect_confidence_region(rt::Runtime& rt,
                                   const la::MatrixGenerator& cov,
                                   std::span<const double> mean,
                                   const CrdOptions& opts) {
  const i64 n = cov.rows();
  PARMVN_EXPECTS(cov.cols() == n);
  PARMVN_EXPECTS(static_cast<i64>(mean.size()) == n);
  PARMVN_EXPECTS(opts.alpha > 0.0 && opts.alpha < 1.0);

  if (opts.direction == CrdDirection::kBelow) {
    // E-_{u,alpha}(X) == E+_{-u,alpha}(-X): negate the mean and threshold
    // (the covariance is reflection-invariant) and recurse.
    std::vector<double> neg_mean(mean.begin(), mean.end());
    for (double& m : neg_mean) m = -m;
    CrdOptions flipped = opts;
    flipped.direction = CrdDirection::kAbove;
    flipped.threshold = -opts.threshold;
    return detect_confidence_region(rt, cov, neg_mean, flipped);
  }

  CrdResult res;

  // Lines 3-5 of Algorithm 1: marginal exceedance probabilities.
  res.marginal.resize(static_cast<std::size_t>(n));
  std::vector<double> z_threshold(static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i) {
    const double sd = std::sqrt(cov.entry(i, i));
    PARMVN_EXPECTS(sd > 0.0);
    const double z = (opts.threshold - mean[static_cast<std::size_t>(i)]) / sd;
    z_threshold[static_cast<std::size_t>(i)] = z;
    res.marginal[static_cast<std::size_t>(i)] = 1.0 - stats::norm_cdf(z);
  }

  // Line 6: order locations by descending marginal probability.
  res.order.resize(static_cast<std::size_t>(n));
  std::iota(res.order.begin(), res.order.end(), i64{0});
  std::stable_sort(res.order.begin(), res.order.end(), [&](i64 x, i64 y) {
    return res.marginal[static_cast<std::size_t>(x)] >
           res.marginal[static_cast<std::size_t>(y)];
  });

  // Limits in the ordered, standardised space: the event is
  // {X_ord > z_ord} component-wise, i.e. a = z, b = +inf.
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> a_ord(static_cast<std::size_t>(n));
  std::vector<double> b_ord(static_cast<std::size_t>(n), inf);
  for (i64 i = 0; i < n; ++i)
    a_ord[static_cast<std::size_t>(i)] =
        z_threshold[static_cast<std::size_t>(res.order[static_cast<std::size_t>(i)])];

  // Correlation matrix in the opM order.
  const geo::CorrelationGenerator corr(cov);
  const geo::PermutedGenerator permuted(corr, res.order);

  // Lines 7-8: factorization (dense tiled or TLR), then the PMVN sweep.
  PmvnOptions pmvn_opts = opts.pmvn;
  pmvn_opts.prefix = (opts.strategy == CrdStrategy::kSweep);

  if (opts.strategy == CrdStrategy::kSweep) {
    if (opts.mode == CrdMode::kDense) {
      WallTimer factor_timer;
      tile::TileMatrix l(rt, n, n, opts.tile, tile::Layout::kLowerSymmetric,
                         "Sigma");
      l.generate_async(rt, permuted);
      rt.wait_all();
      tile::potrf_tiled(rt, l);
      res.factor_seconds = factor_timer.seconds();
      const PmvnResult pr = pmvn_dense(rt, l, a_ord, b_ord, pmvn_opts);
      res.prefix_prob = pr.prefix_prob;
      res.sweep_seconds = pr.seconds;
    } else {
      WallTimer factor_timer;
      tlr::TlrMatrix l =
          tlr::TlrMatrix::compress(rt, permuted, opts.tile, opts.tlr_tol,
                                   opts.tlr_max_rank);
      tlr::potrf_tlr(rt, l);
      res.factor_seconds = factor_timer.seconds();
      const PmvnResult pr = pmvn_tlr(rt, l, a_ord, b_ord, pmvn_opts);
      res.prefix_prob = pr.prefix_prob;
      res.sweep_seconds = pr.seconds;
    }
  } else {
    // Literal Algorithm 1: one full PMVN per prefix (test oracle).
    WallTimer factor_timer;
    tile::TileMatrix l(rt, n, n, opts.tile, tile::Layout::kLowerSymmetric,
                       "Sigma");
    l.generate_async(rt, permuted);
    rt.wait_all();
    tile::potrf_tiled(rt, l);
    res.factor_seconds = factor_timer.seconds();
    WallTimer sweep_timer;
    res.prefix_prob.resize(static_cast<std::size_t>(n));
    std::vector<double> a_partial(static_cast<std::size_t>(n), -inf);
    for (i64 i = 0; i < n; ++i) {
      a_partial[static_cast<std::size_t>(i)] = a_ord[static_cast<std::size_t>(i)];
      const PmvnResult pr = pmvn_dense(rt, l, a_partial, b_ord, pmvn_opts);
      res.prefix_prob[static_cast<std::size_t>(i)] = pr.prob;
    }
    res.sweep_seconds = sweep_timer.seconds();
  }

  // Confidence function: monotone (non-increasing) envelope of the prefix
  // probabilities mapped back to original indices. Prefix probabilities are
  // mathematically non-increasing; the envelope removes QMC noise.
  res.confidence.resize(static_cast<std::size_t>(n));
  double running = 1.0;
  for (i64 i = 0; i < n; ++i) {
    running = std::min(running, res.prefix_prob[static_cast<std::size_t>(i)]);
    res.confidence[static_cast<std::size_t>(
        res.order[static_cast<std::size_t>(i)])] = running;
  }

  const double level = 1.0 - opts.alpha;
  res.region.assign(static_cast<std::size_t>(n), 0);
  for (i64 i = 0; i < n; ++i) {
    if (res.confidence[static_cast<std::size_t>(i)] >= level) {
      res.region[static_cast<std::size_t>(i)] = 1;
      ++res.region_size;
    }
  }
  return res;
}

}  // namespace parmvn::core
