#include "core/qmc_kernel.hpp"

#include <algorithm>

#include "common/aligned.hpp"
#include "common/contracts.hpp"
#include "linalg/microkernel.hpp"
#include "stats/normal.hpp"

namespace parmvn::core {

namespace {

constexpr double kUEps = 1e-16;

// Per-thread row scratch: s (triangular products), a'/b' (standardised
// limits), phi/d (batched CDF outputs), u/w (quantile argument, sample
// coordinates). Sized to the widest panel this worker has seen; contents
// are fully rewritten every row, so reuse cannot leak state between tasks.
struct RowScratch {
  aligned_vector<double> buf;
  double* s = nullptr;
  double* av = nullptr;
  double* bv = nullptr;
  double* phi = nullptr;
  double* d = nullptr;
  double* u = nullptr;
  double* w = nullptr;

  void ensure(i64 mc) {
    // Round each lane up to a cache line so the seven slices stay aligned.
    const i64 stride = (mc + 7) / 8 * 8;
    if (static_cast<i64>(buf.size()) < 7 * stride) {
      buf.resize(static_cast<std::size_t>(7 * stride));
    }
    s = buf.data();
    av = s + stride;
    bv = av + stride;
    phi = bv + stride;
    d = phi + stride;
    u = d + stride;
    w = u + stride;
  }
};

RowScratch& scratch() {
  thread_local RowScratch rs;
  return rs;
}

}  // namespace

void qmc_tile_kernel(la::ConstMatrixView l, const stats::PointSet& pts,
                     i64 row0, i64 col0, la::ConstMatrixView a,
                     la::ConstMatrixView b, la::MatrixView y, double* p,
                     double* prefix_acc) {
  const i64 m = l.rows;
  const i64 mc = a.rows;
  PARMVN_EXPECTS(l.cols == m);
  PARMVN_EXPECTS(a.cols == m && b.cols == m && y.cols == m);
  PARMVN_EXPECTS(b.rows == mc && y.rows == mc);

  RowScratch& rs = scratch();
  rs.ensure(mc);

  const la::ConstMatrixView yc = y;  // read view of the growing panel
  for (i64 i = 0; i < m; ++i) {
    // s = Y(:, 0:i) * L(i, 0:i)^T over the whole sample panel: one
    // unit-stride SIMD axpy per previous chain step, reading the factor row
    // straight out of the column-major tile (stride l.ld). The per-sample
    // reduction order is ascending k — a function of i only.
    std::fill_n(rs.s, mc, 0.0);
    la::detail::gemv_notrans_strided_simd(1.0, yc.sub(0, 0, mc, i),
                                          l.data + i, l.ld, rs.s);

    const double lii = l(i, i);
    const double* __restrict acol = a.col(i);
    const double* __restrict bcol = b.col(i);
    for (i64 j = 0; j < mc; ++j) rs.av[j] = (acol[j] - rs.s[j]) / lii;
    for (i64 j = 0; j < mc; ++j) rs.bv[j] = (bcol[j] - rs.s[j]) / lii;

    // Batched transcendentals: Phi(a') and Phi(b') - Phi(a') fused (two
    // erfc evaluations per entry), then the whole row's quantiles.
    stats::norm_cdf_and_diff_batch(mc, rs.av, rs.bv, rs.phi, rs.d);
    pts.fill_row(row0 + i, col0, mc, rs.w);
    for (i64 j = 0; j < mc; ++j)
      rs.u[j] = std::clamp(rs.phi[j] + rs.w[j] * rs.d[j], kUEps, 1.0 - kUEps);
    stats::norm_quantile_batch(mc, rs.u, y.col(i));

    for (i64 j = 0; j < mc; ++j) p[j] *= rs.d[j];
    if (prefix_acc != nullptr) {
      // Ascending sample order, exactly the order the sample-major loop
      // used, so prefix accumulation stays panelling-independent.
      double t = prefix_acc[i];
      for (i64 j = 0; j < mc; ++j) t += p[j];
      prefix_acc[i] = t;
    }
  }
}

double qmc_kernel_flops(i64 m, i64 mc) {
  // Triangular dot products dominate: mc * m^2 multiply-adds, plus ~60 flops
  // per entry for Phi / Phi^-1 evaluations.
  return static_cast<double>(mc) * static_cast<double>(m) *
             static_cast<double>(m) +
         60.0 * static_cast<double>(mc) * static_cast<double>(m);
}

}  // namespace parmvn::core
