#include "core/qmc_kernel.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "linalg/blas.hpp"
#include "stats/normal.hpp"

namespace parmvn::core {

namespace {
constexpr double kUEps = 1e-16;
}

void qmc_tile_kernel(la::ConstMatrixView l, const stats::PointSet& pts,
                     i64 row0, i64 col0, la::ConstMatrixView a,
                     la::ConstMatrixView b, la::MatrixView y, double* p,
                     double* prefix_acc) {
  const i64 m = l.rows;
  const i64 mc = a.cols;
  PARMVN_EXPECTS(l.cols == m);
  PARMVN_EXPECTS(a.rows == m && b.rows == m && y.rows == m);
  PARMVN_EXPECTS(b.cols == mc && y.cols == mc);

  // Transpose L once so the inner dot product streams a contiguous column
  // (row i of L becomes column i of lt).
  la::Matrix lt(m, m);
  for (i64 i = 0; i < m; ++i)
    for (i64 k = 0; k <= i; ++k) lt(k, i) = l(i, k);

  for (i64 j = 0; j < mc; ++j) {
    const i64 sample = col0 + j;
    double pj = p[j];
    double* __restrict yj = y.col(j);
    for (i64 i = 0; i < m; ++i) {
      const double* __restrict lrow = lt.view().col(i);
      // SIMD triangular dot — the sweep's per-entry hot spot.
      const double s = la::dot(i, lrow, yj);
      const double lii = lrow[i];
      const double ai = (a(i, j) - s) / lii;
      const double bi = (b(i, j) - s) / lii;
      const double phi_a = stats::norm_cdf(ai);
      const double d = stats::norm_cdf_diff(ai, bi);
      pj *= d;
      const double w = pts.value(row0 + i, sample);
      const double u = std::clamp(phi_a + w * d, kUEps, 1.0 - kUEps);
      yj[i] = stats::norm_quantile(u);
      if (prefix_acc != nullptr) prefix_acc[i] += pj;
    }
    p[j] = pj;
  }
}

double qmc_kernel_flops(i64 m, i64 mc) {
  // Triangular dot products dominate: mc * m^2 multiply-adds, plus ~60 flops
  // per entry for Phi / Phi^-1 evaluations.
  return static_cast<double>(mc) * static_cast<double>(m) *
             static_cast<double>(m) +
         60.0 * static_cast<double>(mc) * static_cast<double>(m);
}

}  // namespace parmvn::core
