// Adaptive Cross Approximation with partial pivoting: compress a block of a
// generator-defined matrix without materialising it. This is the
// O(nb * rank^2) alternative to dense-then-RRQR compression, useful when the
// problem is too large to generate every dense tile (the STARS-H role).
#pragma once

#include "linalg/generator.hpp"
#include "tlr/lr_tile.hpp"

namespace parmvn::tlr {

/// Approximate the (rows x cols) block of `gen` at offset (row0, col0) with
/// a low-rank tile. Stops when the estimated Frobenius norm of the residual
/// drops below `tol_rel` times the estimated block norm, or at `max_rank`
/// (max_rank < 0 = uncapped).
///
/// ACA is a heuristic: for the smooth, asymptotically-decaying covariance
/// kernels used here it matches RRQR ranks closely (tested), but it offers
/// no worst-case guarantee — callers that need certainty use
/// compress_block() on a generated dense tile.
[[nodiscard]] LowRankTile aca_block(const la::MatrixGenerator& gen, i64 row0,
                                    i64 col0, i64 rows, i64 cols,
                                    double accuracy, i64 max_rank);

}  // namespace parmvn::tlr
