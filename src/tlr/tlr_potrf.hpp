// TLR Cholesky factorization (the HiCMA dpotrf): dense POTRF on diagonal
// tiles, TRSM applied to V factors, low-rank GEMM updates with
// recompression. This is the operation that gives the paper its headline
// speedups (Table II): the flop count drops from O(nb^3) to O(nb k^2)-ish
// per off-diagonal tile.
#pragma once

#include "runtime/runtime.hpp"
#include "tlr/tlr_matrix.hpp"

namespace parmvn::tlr {

/// Result of the safeguarded TLR factorization.
struct PotrfTlrInfo {
  int retries = 0;          // diagonal-boost retries that were needed
  double diag_boost = 0.0;  // total boost added to every diagonal entry
};

/// In-place TLR Cholesky: on return, diagonal tiles hold dense lower
/// Cholesky factors and off-diagonal tiles hold the low-rank blocks of L.
/// Recompression accuracy/rank-cap default to the matrix's compression
/// settings. Submits the full task DAG and waits.
///
/// SPD safeguarding: tile truncation perturbs the matrix by up to
/// ~accuracy * sigma_1 per tile, which can push a barely-positive-definite
/// covariance (short-range kernels on fine grids) below zero. Like
/// CHOLMOD-style solvers, the factorization then retries with a small
/// diagonal boost of the same order as the compression error the caller
/// already accepted; the boost is reported in the returned info (it is
/// statistically a nugget). Throws once retries are exhausted — the matrix
/// is then genuinely far from SPD.
PotrfTlrInfo potrf_tlr(rt::Runtime& rt, TlrMatrix& a, int max_retries = 4);

/// Approximate flop count of the TLR factorization given the realised rank
/// grid (used by the distributed cost model and bench reports).
[[nodiscard]] double potrf_tlr_flops(const TlrMatrix& a);

}  // namespace parmvn::tlr
