#include "tlr/lr_tile.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "linalg/blas.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"

namespace parmvn::tlr {

la::Matrix LowRankTile::to_dense() const {
  la::Matrix out(rows(), cols());
  la::gemm(la::Trans::kNo, la::Trans::kYes, 1.0, u.view(), v.view(), 0.0,
           out.view());
  return out;
}

LowRankTile compress_block(la::ConstMatrixView a, double accuracy,
                           i64 max_rank) {
  // HiCMA accuracy semantics: keep singular components down to
  // accuracy * sigma_1(tile) (RRQR pivot norms track the residual's leading
  // singular value; the first pivot anchors the scale). This relative rule
  // reproduces the paper's Fig. 5 rank structure: rough (weak-correlation)
  // tiles keep many components, smooth (strong-correlation) tiles few.
  la::RrqrResult r = la::rrqr_truncated(a, 0.0, max_rank, 0.0, accuracy);
  return LowRankTile{std::move(r.u), std::move(r.v)};
}

LowRankTile recompress(const LowRankTile& t, double accuracy, i64 max_rank) {
  const i64 r = t.rank();
  // QR of both factors, SVD of the r x r core R_u R_v^T, then truncate.
  la::Matrix qu = la::to_matrix(t.u.view());
  la::Matrix qv = la::to_matrix(t.v.view());
  std::vector<double> tau_u, tau_v;
  la::householder_qr(qu.view(), tau_u);
  la::householder_qr(qv.view(), tau_v);
  const i64 ku = std::min(qu.rows(), r);
  const i64 kv = std::min(qv.rows(), r);
  // Core = R_u (ku x r) * R_v^T (r x kv).
  la::Matrix ru(ku, r), rv(kv, r);
  for (i64 j = 0; j < r; ++j) {
    for (i64 i = 0; i <= std::min(j, ku - 1); ++i) ru(i, j) = qu(i, j);
    for (i64 i = 0; i <= std::min(j, kv - 1); ++i) rv(i, j) = qv(i, j);
  }
  la::Matrix core(ku, kv);
  la::gemm(la::Trans::kNo, la::Trans::kYes, 1.0, ru.view(), rv.view(), 0.0,
           core.view());
  la::SvdResult svd = la::svd_jacobi(core.view());
  // The core's singular values are the tile's singular values; keep the
  // components with sigma_k >= accuracy * sigma_1 (HiCMA accuracy rule).
  i64 keep = la::truncation_rank_sv(svd.sigma, accuracy * svd.sigma.front());
  if (max_rank > 0) keep = std::min(keep, max_rank);

  la::Matrix qu_thin = la::form_q_thin(qu.view(), tau_u, ku);
  la::Matrix qv_thin = la::form_q_thin(qv.view(), tau_v, kv);
  // U = Q_u * (W_r * diag(sigma_r)), V = Q_v * Z_r.
  la::Matrix w_scaled(ku, keep);
  for (i64 j = 0; j < keep; ++j)
    for (i64 i = 0; i < ku; ++i)
      w_scaled(i, j) = svd.u(i, j) * svd.sigma[static_cast<std::size_t>(j)];
  LowRankTile out;
  out.u = la::Matrix(t.rows(), keep);
  out.v = la::Matrix(t.cols(), keep);
  la::gemm(la::Trans::kNo, la::Trans::kNo, 1.0, qu_thin.view(),
           w_scaled.view(), 0.0, out.u.view());
  la::Matrix z(kv, keep);
  for (i64 j = 0; j < keep; ++j)
    for (i64 i = 0; i < kv; ++i) z(i, j) = svd.v(i, j);
  la::gemm(la::Trans::kNo, la::Trans::kNo, 1.0, qv_thin.view(), z.view(), 0.0,
           out.v.view());
  return out;
}

void add_lowrank_inplace(LowRankTile& t, double alpha, la::ConstMatrixView u2,
                         la::ConstMatrixView v2, double accuracy,
                         i64 max_rank) {
  PARMVN_EXPECTS(u2.rows == t.rows());
  PARMVN_EXPECTS(v2.rows == t.cols());
  PARMVN_EXPECTS(u2.cols == v2.cols);
  const i64 r1 = t.rank();
  const i64 r2 = u2.cols;
  LowRankTile wide;
  wide.u = la::Matrix(t.rows(), r1 + r2);
  wide.v = la::Matrix(t.cols(), r1 + r2);
  la::copy_into(t.u.view(), wide.u.sub(0, 0, t.rows(), r1));
  la::copy_into(t.v.view(), wide.v.sub(0, 0, t.cols(), r1));
  {
    la::MatrixView dst = wide.u.sub(0, r1, t.rows(), r2);
    for (i64 j = 0; j < r2; ++j)
      for (i64 i = 0; i < t.rows(); ++i) dst(i, j) = alpha * u2(i, j);
  }
  la::copy_into(v2, wide.v.sub(0, r1, t.cols(), r2));
  t = recompress(wide, accuracy, max_rank);
}

void lr_gemm_accum(double alpha, const LowRankTile& t, la::ConstMatrixView b,
                   la::MatrixView c) {
  PARMVN_EXPECTS(b.rows == t.cols());
  PARMVN_EXPECTS(c.rows == t.rows() && c.cols == b.cols);
  // tmp = V^T B (rank x n), then C += alpha * U tmp.
  la::Matrix tmp(t.rank(), b.cols);
  la::gemm(la::Trans::kYes, la::Trans::kNo, 1.0, t.v.view(), b, 0.0,
           tmp.view());
  la::gemm(la::Trans::kNo, la::Trans::kNo, alpha, t.u.view(), tmp.view(), 1.0,
           c);
}

double lr_error_fro(const LowRankTile& t, la::ConstMatrixView a) {
  PARMVN_EXPECTS(a.rows == t.rows() && a.cols == t.cols());
  const la::Matrix d = t.to_dense();
  return la::frobenius_diff(d.view(), a);
}

}  // namespace parmvn::tlr
