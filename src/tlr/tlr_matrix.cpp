#include "tlr/tlr_matrix.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "linalg/blas.hpp"
#include "tlr/aca.hpp"

namespace parmvn::tlr {

i64 TlrMatrix::lr_index(i64 i, i64 j) const {
  PARMVN_EXPECTS(i > j && i < nt_ && j >= 0);
  return i * (i - 1) / 2 + j;
}

la::MatrixView TlrMatrix::diag(i64 k) {
  PARMVN_EXPECTS(k >= 0 && k < nt_);
  return diag_[static_cast<std::size_t>(k)].view();
}

la::ConstMatrixView TlrMatrix::diag(i64 k) const {
  PARMVN_EXPECTS(k >= 0 && k < nt_);
  return diag_[static_cast<std::size_t>(k)].view();
}

LowRankTile& TlrMatrix::lr(i64 i, i64 j) {
  return lower_[static_cast<std::size_t>(lr_index(i, j))];
}

const LowRankTile& TlrMatrix::lr(i64 i, i64 j) const {
  return lower_[static_cast<std::size_t>(lr_index(i, j))];
}

rt::DataHandle TlrMatrix::diag_handle(i64 k) const {
  PARMVN_EXPECTS(k >= 0 && k < nt_);
  return diag_handles_[static_cast<std::size_t>(k)];
}

rt::DataHandle TlrMatrix::lr_handle(i64 i, i64 j) const {
  return lr_handles_[static_cast<std::size_t>(lr_index(i, j))];
}

TlrMatrix::TlrMatrix(const TlrMatrix& other)
    : n_(other.n_),
      nb_(other.nb_),
      nt_(other.nt_),
      tol_(other.tol_),
      max_rank_(other.max_rank_),
      diag_(other.diag_),
      lower_(other.lower_),
      diag_handles_(other.diag_handles_),
      lr_handles_(other.lr_handles_) {}  // lease_ stays empty: handles shared

TlrMatrix& TlrMatrix::operator=(const TlrMatrix& other) {
  if (this != &other) {
    n_ = other.n_;
    nb_ = other.nb_;
    nt_ = other.nt_;
    tol_ = other.tol_;
    max_rank_ = other.max_rank_;
    diag_ = other.diag_;
    lower_ = other.lower_;
    diag_handles_ = other.diag_handles_;
    lr_handles_ = other.lr_handles_;
    // lease_ untouched: if *this owns slots they stay owned (the copied
    // handle values are the same slots in the backup/restore use case).
  }
  return *this;
}

TlrMatrix TlrMatrix::compress(rt::Runtime& rt, const la::MatrixGenerator& gen,
                              i64 tile_size, double accuracy, i64 max_rank,
                              CompressionMethod method, std::string name) {
  PARMVN_EXPECTS(gen.rows() == gen.cols());
  PARMVN_EXPECTS(tile_size >= 1);
  PARMVN_EXPECTS(accuracy >= 0.0);

  TlrMatrix m;
  m.n_ = gen.rows();
  m.nb_ = tile_size;
  m.nt_ = (m.n_ + tile_size - 1) / tile_size;
  m.tol_ = accuracy;
  m.max_rank_ = max_rank;
  m.lease_ = rt::HandleLease(rt);
  m.diag_.resize(static_cast<std::size_t>(m.nt_));
  m.lower_.resize(static_cast<std::size_t>(m.nt_ * (m.nt_ - 1) / 2));
  for (i64 k = 0; k < m.nt_; ++k) {
    m.diag_handles_.push_back(
        m.lease_.acquire(rt, name + ".d(" + std::to_string(k) + ")"));
  }
  for (i64 i = 1; i < m.nt_; ++i)
    for (i64 j = 0; j < i; ++j)
      m.lr_handles_.push_back(m.lease_.acquire(
          rt, name + "(" + std::to_string(i) + "," + std::to_string(j) + ")"));

  // Diagonal tiles: dense generation.
  for (i64 k = 0; k < m.nt_; ++k) {
    la::Matrix& tile = m.diag_[static_cast<std::size_t>(k)];
    tile = la::Matrix(m.tile_rows(k), m.tile_rows(k));
    const i64 off = k * m.nb_;
    la::MatrixView view = tile.view();
    rt.submit("tlr_gen_diag", {{m.diag_handle(k), rt::Access::kWrite}},
              [&gen, view, off] { gen.fill(off, off, view); });
  }
  // Off-diagonal tiles: compress.
  for (i64 i = 1; i < m.nt_; ++i) {
    for (i64 j = 0; j < i; ++j) {
      LowRankTile* dst = &m.lr(i, j);
      const i64 r0 = i * m.nb_;
      const i64 c0 = j * m.nb_;
      const i64 tr = m.tile_rows(i);
      const i64 tc = m.tile_rows(j);
      rt.submit(
          "tlr_compress", {{m.lr_handle(i, j), rt::Access::kWrite}},
          [&gen, dst, r0, c0, tr, tc, accuracy, max_rank, method] {
            if (method == CompressionMethod::kAca) {
              *dst = aca_block(gen, r0, c0, tr, tc, accuracy, max_rank);
            } else {
              la::Matrix dense(tr, tc);
              gen.fill(r0, c0, dense.view());
              *dst = compress_block(dense.view(), accuracy, max_rank);
            }
          });
    }
  }
  rt.wait_all();
  return m;
}

la::Matrix TlrMatrix::to_dense() const {
  la::Matrix out(n_, n_);
  for (i64 k = 0; k < nt_; ++k) {
    la::ConstMatrixView d = diag(k);
    const i64 off = k * nb_;
    for (i64 j = 0; j < d.cols; ++j)
      for (i64 i = 0; i < d.rows; ++i) out(off + i, off + j) = d(i, j);
  }
  for (i64 i = 1; i < nt_; ++i) {
    for (i64 j = 0; j < i; ++j) {
      const la::Matrix block = lr(i, j).to_dense();
      const i64 r0 = i * nb_;
      const i64 c0 = j * nb_;
      for (i64 jj = 0; jj < block.cols(); ++jj)
        for (i64 ii = 0; ii < block.rows(); ++ii) {
          out(r0 + ii, c0 + jj) = block(ii, jj);
          out(c0 + jj, r0 + ii) = block(ii, jj);
        }
    }
  }
  return out;
}

std::vector<std::vector<i64>> TlrMatrix::rank_grid() const {
  std::vector<std::vector<i64>> grid(static_cast<std::size_t>(nt_));
  for (i64 i = 0; i < nt_; ++i) {
    grid[static_cast<std::size_t>(i)].resize(static_cast<std::size_t>(i + 1));
    for (i64 j = 0; j < i; ++j)
      grid[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          lr(i, j).rank();
    grid[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] =
        tile_rows(i);
  }
  return grid;
}

i64 TlrMatrix::max_tile_rank() const {
  i64 best = 0;
  for (const LowRankTile& t : lower_) best = std::max(best, t.rank());
  return best;
}

double TlrMatrix::mean_offdiag_rank() const {
  if (lower_.empty()) return 0.0;
  double acc = 0.0;
  for (const LowRankTile& t : lower_) acc += static_cast<double>(t.rank());
  return acc / static_cast<double>(lower_.size());
}

i64 TlrMatrix::memory_bytes() const {
  i64 bytes = 0;
  for (const la::Matrix& d : diag_) bytes += d.size() * 8;
  for (const LowRankTile& t : lower_)
    bytes += (t.u.size() + t.v.size()) * 8;
  return bytes;
}

}  // namespace parmvn::tlr
