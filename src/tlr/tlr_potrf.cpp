#include "tlr/tlr_potrf.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/fault.hpp"
#include "linalg/blas.hpp"
#include "linalg/jitter.hpp"
#include "linalg/potrf.hpp"
#include "runtime/priority.hpp"

namespace parmvn::tlr {

namespace {

// One factorization attempt; throws parmvn::Error on a non-positive pivot.
void potrf_tlr_attempt(rt::Runtime& rt, TlrMatrix& a) {
  const i64 nt = a.num_tiles();
  const double tol = a.tolerance();
  const i64 cap = a.rank_cap();

  for (i64 k = 0; k < nt; ++k) {
    // POTRF on the dense diagonal tile.
    la::MatrixView dkk = a.diag(k);
    rt.submit("tlr_potrf", {{a.diag_handle(k), rt::Access::kReadWrite}},
              [dkk] {
                PARMVN_FAULT_POINT("tlr.potrf.pivot");
                la::potrf_lower_or_throw(dkk);
              },
              rt::kPrioPanel);

    // TRSM on the V factor of every tile below the pivot:
    // A_ik L_kk^-T = U_ik (L_kk^-1 V_ik)^T  =>  V <- L_kk^-1 V.
    for (i64 i = k + 1; i < nt; ++i) {
      LowRankTile* tik = &a.lr(i, k);
      la::ConstMatrixView lkk = a.diag(k);
      rt.submit("tlr_trsm",
                {{a.diag_handle(k), rt::Access::kRead},
                 {a.lr_handle(i, k), rt::Access::kReadWrite}},
                [lkk, tik] {
                  la::trsm(la::Side::kLeft, la::Trans::kNo, 1.0, lkk,
                           tik->v.view());
                },
                i == k + 1 ? rt::kPrioPanel : rt::kPrioSweep);
    }

    for (i64 i = k + 1; i < nt; ++i) {
      // Diagonal update (dense SYRK shape):
      // D_ii -= A_ik A_ik^T = U (V^T V) U^T.
      LowRankTile* tik = &a.lr(i, k);
      la::MatrixView dii = a.diag(i);
      rt.submit("tlr_syrk",
                {{a.lr_handle(i, k), rt::Access::kRead},
                 {a.diag_handle(i), rt::Access::kReadWrite}},
                [tik, dii] {
                  const i64 r = tik->rank();
                  la::Matrix gram(r, r);
                  la::gemm(la::Trans::kYes, la::Trans::kNo, 1.0,
                           tik->v.view(), tik->v.view(), 0.0, gram.view());
                  la::Matrix w(tik->rows(), r);
                  la::gemm(la::Trans::kNo, la::Trans::kNo, 1.0, tik->u.view(),
                           gram.view(), 0.0, w.view());
                  la::gemm(la::Trans::kNo, la::Trans::kYes, -1.0, w.view(),
                           tik->u.view(), 1.0, dii);
                },
                i == k + 1 ? rt::kPrioPanel : rt::kPrioUpdate);

      // Off-diagonal updates:
      // A_ij -= A_ik A_jk^T = U_i (V_i^T V_j) U_j^T, then recompress.
      for (i64 j = k + 1; j < i; ++j) {
        LowRankTile* tjk = &a.lr(j, k);
        LowRankTile* tij = &a.lr(i, j);
        rt.submit("tlr_gemm",
                  {{a.lr_handle(i, k), rt::Access::kRead},
                   {a.lr_handle(j, k), rt::Access::kRead},
                   {a.lr_handle(i, j), rt::Access::kReadWrite}},
                  [tik, tjk, tij, tol, cap] {
                    const i64 ri = tik->rank();
                    const i64 rj = tjk->rank();
                    la::Matrix cross(ri, rj);
                    la::gemm(la::Trans::kYes, la::Trans::kNo, 1.0,
                             tik->v.view(), tjk->v.view(), 0.0, cross.view());
                    la::Matrix unew(tik->rows(), rj);
                    la::gemm(la::Trans::kNo, la::Trans::kNo, 1.0,
                             tik->u.view(), cross.view(), 0.0, unew.view());
                    add_lowrank_inplace(*tij, -1.0, unew.view(),
                                        tjk->u.view(), tol, cap);
                  },
                  j == k + 1 ? rt::kPrioUpdate : rt::kPrioBulk);
      }
    }
  }
  rt.wait_all();
}

// Estimate of the largest off-diagonal tile spectral norm: the leading
// columns of U/V are ordered by singular value in both compression paths,
// so |u_0||v_0| tracks sigma_1.
double max_tile_sigma1(const TlrMatrix& a) {
  double best = 0.0;
  for (i64 i = 1; i < a.num_tiles(); ++i) {
    for (i64 j = 0; j < i; ++j) {
      const LowRankTile& t = a.lr(i, j);
      const double u0 = la::dot(t.rows(), t.u.view().col(0), t.u.view().col(0));
      const double v0 = la::dot(t.cols(), t.v.view().col(0), t.v.view().col(0));
      best = std::max(best, std::sqrt(u0 * v0));
    }
  }
  return best;
}

}  // namespace

PotrfTlrInfo potrf_tlr(rt::Runtime& rt, TlrMatrix& a, int max_retries) {
  PotrfTlrInfo info;
  // Backup for retries (compressed form: cheap relative to dense).
  TlrMatrix backup = a;
  const double boost_unit = la::jitter_unit(a.tolerance() * max_tile_sigma1(a));
  for (int attempt = 0;; ++attempt) {
    try {
      potrf_tlr_attempt(rt, a);
      return info;
    } catch (const Error&) {
      if (attempt >= max_retries) throw;
      // Restore and boost: the shared escalation schedule (linalg/jitter.hpp)
      // starting at the order of the per-tile truncation error.
      a = backup;
      const double delta = la::jitter_delta(boost_unit, attempt);
      for (i64 k = 0; k < a.num_tiles(); ++k) {
        la::MatrixView d = a.diag(k);
        for (i64 i = 0; i < d.rows; ++i) d(i, i) += delta;
      }
      backup = a;
      info.diag_boost += delta;
      ++info.retries;
    }
  }
}

double potrf_tlr_flops(const TlrMatrix& a) {
  const auto grid = a.rank_grid();
  const i64 nt = a.num_tiles();
  double flops = 0.0;
  auto rank_of = [&](i64 i, i64 j) {
    return static_cast<double>(grid[static_cast<std::size_t>(i)]
                                   [static_cast<std::size_t>(j)]);
  };
  for (i64 k = 0; k < nt; ++k) {
    const double nb = static_cast<double>(a.tile_rows(k));
    flops += nb * nb * nb / 3.0;  // diagonal POTRF
    for (i64 i = k + 1; i < nt; ++i) {
      const double r = rank_of(i, k);
      const double m = static_cast<double>(a.tile_rows(i));
      flops += nb * nb * r;            // TRSM on V
      flops += 2.0 * m * r * (r + m);  // SYRK-shaped diagonal update
      for (i64 j = k + 1; j < i; ++j) {
        const double rj = rank_of(j, k);
        const double rij = rank_of(i, j);
        const double rsum = rij + rj;
        // cross product, U construction, QR+SVD recompression (~c * m rsum^2)
        flops += 2.0 * nb * r * rj + 2.0 * m * r * rj +
                 6.0 * (m + nb) * rsum * rsum;
      }
    }
  }
  return flops;
}

}  // namespace parmvn::tlr
