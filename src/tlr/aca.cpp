#include "tlr/aca.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/contracts.hpp"
#include "linalg/blas.hpp"

namespace parmvn::tlr {

LowRankTile aca_block(const la::MatrixGenerator& gen, i64 row0, i64 col0,
                      i64 rows, i64 cols, double accuracy, i64 max_rank) {
  PARMVN_EXPECTS(rows >= 1 && cols >= 1);
  PARMVN_EXPECTS(row0 >= 0 && col0 >= 0);
  PARMVN_EXPECTS(row0 + rows <= gen.rows() && col0 + cols <= gen.cols());

  const i64 kmax =
      (max_rank < 0) ? std::min(rows, cols) : std::min(max_rank, std::min(rows, cols));
  std::vector<la::Matrix> us, vs;  // rank-1 crosses
  std::vector<bool> row_used(static_cast<std::size_t>(rows), false);
  std::vector<bool> col_used(static_cast<std::size_t>(cols), false);

  double approx_norm_sq = 0.0;  // running ||sum u_k v_k^T||_F^2 estimate
  double first_cross = 0.0;     // |u_1||v_1|, the sigma_1 scale anchor
  i64 next_row = 0;
  i64 rank = 0;

  auto residual_row = [&](i64 i, std::vector<double>& out) {
    for (i64 j = 0; j < cols; ++j) out[static_cast<std::size_t>(j)] =
        gen.entry(row0 + i, col0 + j);
    for (i64 k = 0; k < rank; ++k) {
      const double uik = us[static_cast<std::size_t>(k)](i, 0);
      if (uik == 0.0) continue;
      const la::Matrix& vk = vs[static_cast<std::size_t>(k)];
      for (i64 j = 0; j < cols; ++j)
        out[static_cast<std::size_t>(j)] -= uik * vk(j, 0);
    }
  };
  auto residual_col = [&](i64 j, std::vector<double>& out) {
    for (i64 i = 0; i < rows; ++i) out[static_cast<std::size_t>(i)] =
        gen.entry(row0 + i, col0 + j);
    for (i64 k = 0; k < rank; ++k) {
      const double vjk = vs[static_cast<std::size_t>(k)](j, 0);
      if (vjk == 0.0) continue;
      const la::Matrix& uk = us[static_cast<std::size_t>(k)];
      for (i64 i = 0; i < rows; ++i)
        out[static_cast<std::size_t>(i)] -= vjk * uk(i, 0);
    }
  };

  std::vector<double> row_buf(static_cast<std::size_t>(cols));
  std::vector<double> col_buf(static_cast<std::size_t>(rows));

  while (rank < kmax) {
    row_used[static_cast<std::size_t>(next_row)] = true;
    residual_row(next_row, row_buf);
    // Pivot column: largest |residual| among unused columns.
    i64 jpiv = -1;
    double best = 0.0;
    for (i64 j = 0; j < cols; ++j) {
      if (col_used[static_cast<std::size_t>(j)]) continue;
      const double v = std::fabs(row_buf[static_cast<std::size_t>(j)]);
      if (v > best) {
        best = v;
        jpiv = j;
      }
    }
    if (jpiv < 0 || best == 0.0) {
      // Dead row; try the next unused row, or stop if exhausted.
      i64 candidate = -1;
      for (i64 i = 0; i < rows; ++i)
        if (!row_used[static_cast<std::size_t>(i)]) {
          candidate = i;
          break;
        }
      if (candidate < 0) break;
      next_row = candidate;
      continue;
    }
    col_used[static_cast<std::size_t>(jpiv)] = true;
    residual_col(jpiv, col_buf);
    const double pivot = row_buf[static_cast<std::size_t>(jpiv)];

    la::Matrix uk(rows, 1), vk(cols, 1);
    for (i64 i = 0; i < rows; ++i) uk(i, 0) = col_buf[static_cast<std::size_t>(i)] / pivot;
    for (i64 j = 0; j < cols; ++j) vk(j, 0) = row_buf[static_cast<std::size_t>(j)];

    // Update the running norm estimate (standard ACA bookkeeping):
    // ||A_k||^2 = ||A_{k-1}||^2 + 2 sum_l <u_k,u_l><v_k,v_l> + |u_k|^2 |v_k|^2.
    double cross = 0.0;
    for (i64 k = 0; k < rank; ++k) {
      const double uu =
          la::dot(rows, uk.data(), us[static_cast<std::size_t>(k)].data());
      const double vv =
          la::dot(cols, vk.data(), vs[static_cast<std::size_t>(k)].data());
      cross += uu * vv;
    }
    const double unorm_sq = la::dot(rows, uk.data(), uk.data());
    const double vnorm_sq = la::dot(cols, vk.data(), vk.data());
    approx_norm_sq += 2.0 * cross + unorm_sq * vnorm_sq;

    // Pivot row for the next step: largest |u_k| among unused rows.
    next_row = -1;
    double rbest = -1.0;
    for (i64 i = 0; i < rows; ++i) {
      if (row_used[static_cast<std::size_t>(i)]) continue;
      const double v = std::fabs(uk(i, 0));
      if (v > rbest) {
        rbest = v;
        next_row = i;
      }
    }

    us.push_back(std::move(uk));
    vs.push_back(std::move(vk));
    ++rank;

    // |u_k||v_k| estimates the residual's leading singular value; stop once
    // it falls below accuracy * (the first cross's scale) — the same
    // relative rule as compress_block. ACA's estimate is optimistic (it
    // probes single crosses, not the full residual), so a 10x safety margin
    // keeps the realised error near the requested accuracy.
    const double cross_norm = std::sqrt(unorm_sq * vnorm_sq);
    if (rank == 1) first_cross = cross_norm;
    if (cross_norm <= 0.1 * accuracy * first_cross) break;
    if (next_row < 0) break;  // all rows visited
  }

  LowRankTile out;
  if (rank == 0) {
    out.u = la::Matrix(rows, 1);
    out.v = la::Matrix(cols, 1);
    return out;
  }
  out.u = la::Matrix(rows, rank);
  out.v = la::Matrix(cols, rank);
  for (i64 k = 0; k < rank; ++k) {
    for (i64 i = 0; i < rows; ++i) out.u(i, k) = us[static_cast<std::size_t>(k)](i, 0);
    for (i64 j = 0; j < cols; ++j) out.v(j, k) = vs[static_cast<std::size_t>(k)](j, 0);
  }
  return out;
}

}  // namespace parmvn::tlr
