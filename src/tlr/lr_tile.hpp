// Low-rank tile representation A ~= U V^T and its algebra: compression,
// recompression (the "SVD-recompress after addition" kernel of TLR
// Cholesky), and applications against dense blocks.
#pragma once

#include "common/types.hpp"
#include "linalg/matrix.hpp"

namespace parmvn::tlr {

/// A (rows x cols) tile approximated as U V^T, U: rows x rank,
/// V: cols x rank. The all-zero tile is represented with rank 1.
struct LowRankTile {
  la::Matrix u;
  la::Matrix v;

  [[nodiscard]] i64 rows() const noexcept { return u.rows(); }
  [[nodiscard]] i64 cols() const noexcept { return v.rows(); }
  [[nodiscard]] i64 rank() const noexcept { return u.cols(); }

  [[nodiscard]] la::Matrix to_dense() const;
};

/// Compress a dense block to a low-rank tile with HiCMA's *fixed accuracy*
/// semantics: keep exactly the singular components whose singular value is
/// >= `accuracy` (an absolute threshold — the paper's "compression accuracy"
/// 1e-1 .. 1e-9 on unit-variance correlation matrices). This rule is what
/// produces Fig. 5's rank structure: rough (weak-correlation) kernels keep
/// many components near the diagonal while far tiles vanish entirely.
/// Optional rank cap (max_rank < 0 = uncapped; a binding cap degrades
/// accuracy — the wind study caps at 145).
[[nodiscard]] LowRankTile compress_block(la::ConstMatrixView a, double accuracy,
                                         i64 max_rank);

/// Recompress an existing factorisation under the same fixed-accuracy rule
/// (QR of both factors + SVD of the small core; components with singular
/// value < accuracy are dropped). Used after additions inflate the rank.
[[nodiscard]] LowRankTile recompress(const LowRankTile& t, double accuracy,
                                     i64 max_rank);

/// t <- t + alpha * (u2 v2^T), recompressed to the fixed accuracy. Shapes
/// must agree.
void add_lowrank_inplace(LowRankTile& t, double alpha, la::ConstMatrixView u2,
                         la::ConstMatrixView v2, double accuracy, i64 max_rank);

/// C (dense) += alpha * (t.u t.v^T) * B, with B dense (cols(t) x n).
/// Cost O((rows+cols) * rank * n) instead of the dense O(rows*cols*n) —
/// this is the kernel that accelerates the PMVN GEMM propagation when L is
/// in TLR format.
void lr_gemm_accum(double alpha, const LowRankTile& t, la::ConstMatrixView b,
                   la::MatrixView c);

/// Exact Frobenius error ||A - U V^T||_F against a dense reference.
[[nodiscard]] double lr_error_fro(const LowRankTile& t, la::ConstMatrixView a);

}  // namespace parmvn::tlr
