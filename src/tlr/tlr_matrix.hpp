// Tile Low-Rank symmetric matrix: dense diagonal tiles, low-rank
// off-diagonal tiles (HiCMA's weak-admissibility format). Stores the lower
// triangle only.
#pragma once

#include <string>
#include <vector>

#include "linalg/generator.hpp"
#include "linalg/matrix.hpp"
#include "runtime/runtime.hpp"
#include "tlr/lr_tile.hpp"

namespace parmvn::tlr {

enum class CompressionMethod {
  kRrqr,  // generate dense tile, rank-revealing QR (deterministic, bounded)
  kAca,   // adaptive cross approximation straight from the generator
};

class TlrMatrix {
 public:
  /// Compress the symmetric matrix described by `gen` (must be square) into
  /// TLR format. `accuracy` is HiCMA's fixed-accuracy threshold: every tile
  /// keeps exactly its singular components with singular value >= accuracy
  /// (the paper's "compression accuracy" 1e-1 ... 1e-9, well-scaled for
  /// unit-variance correlation matrices). `max_rank` caps tile ranks
  /// (< 0 = uncapped). One runtime task per tile.
  static TlrMatrix compress(rt::Runtime& rt, const la::MatrixGenerator& gen,
                            i64 tile_size, double accuracy, i64 max_rank,
                            CompressionMethod method = CompressionMethod::kRrqr,
                            std::string name = "tlr");

  // Copies duplicate the tile data but *share* the original's data handles
  // without extending their lease (potrf_tlr's retry backup): the handle
  // slots stay owned by the matrix compress() built, and go back to the
  // runtime when that owner — not a copy — dies. Moves transfer the lease.
  TlrMatrix(const TlrMatrix& other);
  TlrMatrix& operator=(const TlrMatrix& other);
  TlrMatrix(TlrMatrix&&) noexcept = default;
  TlrMatrix& operator=(TlrMatrix&&) noexcept = default;
  ~TlrMatrix() = default;

  [[nodiscard]] i64 dim() const noexcept { return n_; }
  [[nodiscard]] i64 tile_size() const noexcept { return nb_; }
  [[nodiscard]] i64 num_tiles() const noexcept { return nt_; }
  [[nodiscard]] double tolerance() const noexcept { return tol_; }
  [[nodiscard]] i64 rank_cap() const noexcept { return max_rank_; }

  [[nodiscard]] i64 tile_rows(i64 i) const noexcept {
    const i64 r = n_ - i * nb_;
    return r < nb_ ? r : nb_;
  }

  /// Dense diagonal tile k.
  [[nodiscard]] la::MatrixView diag(i64 k);
  [[nodiscard]] la::ConstMatrixView diag(i64 k) const;
  /// Low-rank tile (i, j), i > j.
  [[nodiscard]] LowRankTile& lr(i64 i, i64 j);
  [[nodiscard]] const LowRankTile& lr(i64 i, i64 j) const;

  [[nodiscard]] rt::DataHandle diag_handle(i64 k) const;
  [[nodiscard]] rt::DataHandle lr_handle(i64 i, i64 j) const;

  /// Reconstruct the full symmetric dense matrix (tests/small problems).
  [[nodiscard]] la::Matrix to_dense() const;

  /// Rank of every tile: grid[i][j] for j < i; grid[i][i] = tile_rows(i)
  /// (dense marker, as in the paper's Fig. 5 heatmaps).
  [[nodiscard]] std::vector<std::vector<i64>> rank_grid() const;

  [[nodiscard]] i64 max_tile_rank() const;
  [[nodiscard]] double mean_offdiag_rank() const;

  /// Bytes held in factors (dense diag + U/V), and the dense-storage
  /// equivalent, for compression-ratio reporting.
  [[nodiscard]] i64 memory_bytes() const;
  [[nodiscard]] i64 dense_bytes() const noexcept { return n_ * n_ * 8; }

 private:
  TlrMatrix() = default;

  [[nodiscard]] i64 lr_index(i64 i, i64 j) const;

  i64 n_ = 0;
  i64 nb_ = 0;
  i64 nt_ = 0;
  double tol_ = 0.0;
  i64 max_rank_ = -1;
  std::vector<la::Matrix> diag_;
  std::vector<LowRankTile> lower_;
  std::vector<rt::DataHandle> diag_handles_;
  std::vector<rt::DataHandle> lr_handles_;
  rt::HandleLease lease_;  // returns the handles on destruction
};

}  // namespace parmvn::tlr
