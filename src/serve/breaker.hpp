// Per-field circuit breaker: fail fast after repeated factor failures.
//
// A field whose covariance persistently fails to factor (non-PD under its
// configured jitter/fallback ladder, bad generator state) would otherwise
// burn a full retry ladder per request forever. The breaker counts
// *consecutive* factor failures; at `threshold` it opens and requests for
// the field are rejected at admission — no queue slot, no factor attempt —
// until `cooldown` has passed. The first request after cooldown probes
// (half-open): success closes the breaker and resets the count, another
// failure re-opens it for a fresh cooldown.
//
// Classic three-state breaker semantics, folded into two pieces of state
// (consecutive failure count + open-until timestamp); internally locked so
// admission (client threads) and outcome recording (the batcher) can race.
#pragma once

#include <chrono>
#include <mutex>

#include "common/types.hpp"

namespace parmvn::serve {

class CircuitBreaker {
 public:
  using Clock = std::chrono::steady_clock;

  /// `threshold` consecutive failures open the breaker for `cooldown`.
  CircuitBreaker(int threshold, std::chrono::milliseconds cooldown)
      : threshold_(threshold), cooldown_(cooldown) {}

  /// Admission check: false while open (inside cooldown). After cooldown
  /// the breaker lets requests through half-open; it re-opens only on the
  /// next recorded failure.
  [[nodiscard]] bool allow(Clock::time_point now = Clock::now());

  /// Record a factor success: closes the breaker, resets the count.
  void record_success();

  /// Record a factor failure. Returns true when this failure opened (or
  /// re-opened) the breaker — the caller's "breaker tripped" signal.
  bool record_failure(Clock::time_point now = Clock::now());

  [[nodiscard]] bool open(Clock::time_point now = Clock::now());

 private:
  const int threshold_;
  const std::chrono::milliseconds cooldown_;
  std::mutex mu_;
  int consecutive_failures_ = 0;
  Clock::time_point open_until_{};  // epoch = never opened
};

}  // namespace parmvn::serve
