// parmvn serve — a resilient, long-lived, multi-tenant serving loop over
// the factor-once / evaluate-many engine.
//
// The traffic shape this serves is the confidence-region detector's: each
// user request is a boundary bisection emitting dozens-to-hundreds of
// correlated probability queries against one field (one ordering, one
// cached factor). The server composes the primitives the lower layers
// already provide — thread-safe FactorCache, fused PmvnEngine batches,
// deadlines, the jitter/fallback factor ladder, typed Status — into one
// loop with the robustness properties a server actually needs:
//
//  * bounded admission queue with backpressure — submits beyond
//    queue_capacity are rejected with Status::kOverloaded; an admitted
//    request is never silently dropped (exactly one typed response each,
//    enforced down to injected respond-path faults);
//  * dynamic batching — concurrent queries against the same field coalesce
//    under a latency budget (batch_window_ms / max_batch) into one fused
//    engine batch on a cached factor; responses scatter back per request
//    and are bitwise equal to evaluating the same query directly against
//    the engine (the batched==single contract, extended through serving);
//  * per-request deadlines — the remaining budget is recomputed at dequeue
//    time and propagated onto EngineOptions::deadline_ms; a request that
//    already expired in the queue retires with Status::kDeadline before
//    touching the engine;
//  * retry with jittered backoff for transient factor failures, riding the
//    FactorSpec jitter/fallback ladder, plus a per-field circuit breaker
//    that fails fast after repeated factor failures;
//  * an overload degradation ladder — under queue pressure the server
//    first forces tiered EP screening, then caps the QMC shift budget, and
//    only then sheds at admission; every response reports its rung;
//  * graceful drain — shutdown stops admission, completes or
//    deadline-retires everything admitted, joins the dispatcher and
//    asserts zero leaked runtime handles.
//
// Concurrency model: client threads call submit() (or the blocking
// evaluate()) from anywhere; one dispatcher thread forms batches and runs
// them on the server's own Runtime + FactorCache. Engine entry points
// serialise their epochs through Runtime::exclusive_epoch(), so external
// callers may additionally share the server's runtime.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/factor_cache.hpp"
#include "runtime/runtime.hpp"
#include "serve/breaker.hpp"
#include "serve/request.hpp"

namespace parmvn::serve {

/// A served field: the covariance model, the (fixed) ordering requests are
/// expressed in, and how to factor it. The factor arm's robustness knobs
/// (FactorSpec::jitter_retries / fallback) ride along, so per-field
/// degradation policy is part of registration.
struct FieldSpec {
  std::shared_ptr<const la::MatrixGenerator> cov;
  /// Permutation mapping request limits into factor order; empty =
  /// identity. Typically the marginal ordering of the field's thresholds.
  std::vector<i64> order;
  engine::FactorSpec factor;
};

class Server {
 public:
  /// Validates `opts` (typed errors), builds the serving Runtime (with
  /// `runtime_threads` workers on the given scheduler arm) and the
  /// FactorCache, and starts the dispatcher thread.
  explicit Server(ServeOptions opts, int runtime_threads = 2,
                  rt::SchedulerKind sched = rt::SchedulerKind::kDefault);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Drains (see drain()) if the caller has not already.
  ~Server();

  /// Register a field. Computes and stores the standardisation vector
  /// eagerly, so a bad covariance diagonal fails here, typed, not
  /// mid-traffic. Re-registering a live name throws (replacement under
  /// in-flight requests is not supported).
  void register_field(const std::string& name, FieldSpec spec);

  /// Admission: validate, consult the field's circuit breaker, then try to
  /// enqueue. Never blocks on the queue — a full queue (or a draining
  /// server) rejects immediately with Status::kOverloaded. The returned
  /// future always yields exactly one Response.
  [[nodiscard]] std::future<Response> submit(Request req);

  /// Blocking convenience: submit and wait.
  [[nodiscard]] Response evaluate(Request req);

  /// Graceful shutdown: stop admission (subsequent submits are rejected
  /// kOverloaded), let the dispatcher complete or deadline-retire every
  /// admitted request, then join it. Idempotent; called by the destructor.
  void drain();

  [[nodiscard]] ServerStats stats() const;

  /// Handle slots the serving runtime could not reclaim — the drain
  /// contract is that this is zero after drain().
  [[nodiscard]] i64 handles_leaked() const noexcept;

  [[nodiscard]] const ServeOptions& options() const noexcept { return opts_; }
  [[nodiscard]] rt::Runtime& runtime() noexcept { return *rt_; }
  [[nodiscard]] engine::FactorCache& cache() noexcept { return *cache_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Field {
    FieldSpec spec;
    std::vector<double> sd;   // standardisation vector (original indexing)
    std::vector<i64> order;   // resolved (identity when spec.order empty)
    CircuitBreaker breaker;
    Field(FieldSpec s, std::vector<double> sd_arg, std::vector<i64> ord,
          int threshold, std::chrono::milliseconds cooldown)
        : spec(std::move(s)), sd(std::move(sd_arg)), order(std::move(ord)),
          breaker(threshold, cooldown) {}
  };

  /// One admitted request waiting in the queue.
  struct Pending {
    Field* field = nullptr;
    Request req;
    std::promise<Response> promise;
    Clock::time_point arrival;
  };

  void dispatch_loop();
  void process_batch(std::vector<Pending> batch, std::size_t depth_at_close);
  /// Deliver exactly one response (counting it), absorbing respond-path
  /// faults into a typed failure rather than a lost request.
  void respond(Pending& p, Response r);
  /// Members whose deadline already passed retire with Status::kDeadline;
  /// returns the still-live ones.
  std::vector<Pending> retire_expired(std::vector<Pending> batch,
                                      Clock::time_point now);
  /// Count a retry and sleep the jittered exponential backoff for this
  /// (1-based) attempt. Dispatcher thread only.
  void backoff_sleep(int attempt);

  ServeOptions opts_;
  std::unique_ptr<rt::Runtime> rt_;
  std::unique_ptr<engine::FactorCache> cache_;

  mutable std::mutex mu_;          // queue + counters + draining flag
  std::condition_variable cv_;     // queue producers -> dispatcher
  std::deque<Pending> queue_;
  bool draining_ = false;
  ServerStats counters_;           // cache/queue_depth/… filled by stats()

  mutable std::mutex fields_mu_;
  std::unordered_map<std::string, std::unique_ptr<Field>> fields_;

  std::mt19937_64 backoff_rng_{0x5eedf00d};  // dispatcher-only (jitter)
  std::mutex drain_mu_;  // serialises concurrent drain() joins
  std::thread dispatcher_;
};

}  // namespace parmvn::serve
