// Serving vocabulary: requests, typed responses, server options and the
// stats/health report.
//
// A request is one probability query — integration limits in a registered
// field's (ordered, standardised) space, exactly an engine::LimitSet plus
// routing (`field`) and a per-request wall-clock budget (`deadline_ms`).
// The response carries a typed Status (admission rejection, queue-expired
// deadline, factor/eval failure) alongside the engine result, plus the
// degradation rung the serving batch ran at, so clients can always see
// *why* an answer is partial or missing. Every admitted request receives
// exactly one response; the server never silently drops work.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "engine/factor_cache.hpp"
#include "engine/pmvn_engine.hpp"

namespace parmvn::serve {

/// Overload degradation rung a batch was evaluated at (reported in every
/// response of the batch, so degradation is observable, never silent).
/// Rungs are ordered: each one includes everything milder than it.
///  * kNone     — queue pressure below every threshold; the configured
///                EngineOptions run unmodified.
///  * kTiered   — queue depth crossed ServeOptions::degrade_tiered_at:
///                the EP screening tier is forced on, so decision-bearing
///                queries the cheap estimator can decide spend no QMC
///                samples at all.
///  * kShiftCap — depth crossed ServeOptions::degrade_shift_cap_at: the
///                QMC shift budget is additionally capped at
///                ServeOptions::degraded_shifts (wider error bars, same
///                estimator). Beyond this rung the only lever left is
///                shedding at admission (Status::kOverloaded).
enum class DegradeRung { kNone = 0, kTiered = 1, kShiftCap = 2 };

[[nodiscard]] constexpr const char* to_string(DegradeRung r) noexcept {
  switch (r) {
    case DegradeRung::kNone: return "none";
    case DegradeRung::kTiered: return "tiered";
    case DegradeRung::kShiftCap: return "shift_cap";
  }
  return "unknown";
}

/// One serving request: a probability query against a registered field.
struct Request {
  std::string field;      // registered field name (routing key)
  std::vector<double> a;  // lower limits, ordered space, length n
  /// Upper limits; empty means +inf everywhere (the excursion-set shape).
  std::vector<double> b;
  u64 seed = 42;
  bool prefix = false;    // also return all prefix probabilities
  /// Decision threshold (see engine::LimitSet::decision); NaN = none.
  double decision = std::numeric_limits<double>::quiet_NaN();
  /// Wall-clock budget in ms from admission (0 = none). Still queued when
  /// it expires -> Status::kDeadline without touching the engine; expiring
  /// mid-sweep -> kOk with EvalMethod::kDeadline and a partial estimate.
  i64 deadline_ms = 0;
};

/// One typed response per request — always exactly one, whatever happened.
struct Response {
  Status status;
  /// Valid when status.ok(); untouched otherwise.
  engine::QueryResult result;
  /// Degradation rung of the batch this request was evaluated in (kNone
  /// for requests rejected before evaluation).
  DegradeRung degrade = DegradeRung::kNone;
  /// Transient-failure retries the serving batch spent before this
  /// response (factor or evaluation attempts beyond the first).
  int retries = 0;
  /// The request was rejected fast by the per-field circuit breaker
  /// (status is then kFactorFailed without a new factor attempt).
  bool breaker_open = false;
};

struct ServeOptions {
  /// Bounded admission queue: submits beyond this depth are rejected with
  /// Status::kOverloaded (backpressure, never unbounded growth).
  std::size_t queue_capacity = 64;
  /// Dynamic-batching latency budget: an open batch waits up to this long
  /// (wall clock) for more same-field requests before evaluating. 0 = no
  /// coalescing wait (each batch takes only what is already queued).
  i64 batch_window_ms = 2;
  /// Most requests fused into one engine batch.
  int max_batch = 16;
  /// Base evaluation options (validated; per-batch degradation may force
  /// `tiered` on or cap `shifts` — see DegradeRung).
  engine::EngineOptions engine;
  /// Factors cached per server (LRU entries).
  std::size_t cache_capacity = 4;

  /// Transient-failure retries per batch (factor or evaluation), with
  /// jittered exponential backoff starting at retry_backoff_ms.
  int max_retries = 2;
  i64 retry_backoff_ms = 1;

  /// Per-field circuit breaker: this many *consecutive* factor failures
  /// open it; while open, requests for the field fail fast with
  /// kFactorFailed (breaker_open = true) instead of re-queueing doomed
  /// work. After breaker_cooldown_ms the next request probes again
  /// (half-open); success closes the breaker, failure re-opens it.
  int breaker_threshold = 3;
  i64 breaker_cooldown_ms = 250;

  /// Overload degradation ladder, as fractions of queue_capacity: queue
  /// depth at batch close >= degrade_tiered_at * capacity forces the EP
  /// tier (DegradeRung::kTiered); >= degrade_shift_cap_at * capacity
  /// additionally caps shifts at degraded_shifts (DegradeRung::kShiftCap).
  double degrade_tiered_at = 0.5;
  double degrade_shift_cap_at = 0.75;
  int degraded_shifts = 2;

  /// Range-check every knob; throws a typed parmvn::Error naming the
  /// offending one (max_batch == 0, zero capacity, negative window, …).
  /// Server's constructor calls this, so a misconfigured server fails at
  /// construction, not mid-traffic.
  void validate() const;
};

/// Snapshot of the server's counters (by value — the server is live).
/// Invariant (checked by the saturation test): every submitted request is
/// accounted exactly once —
///   submitted == rejected_invalid + rejected_overload + rejected_breaker
///              + rejected_admit_fault + expired_in_queue + completed_ok
///              + failed + queued (still in flight).
struct ServerStats {
  i64 submitted = 0;            // every submit() call
  i64 admitted = 0;             // passed admission into the queue
  i64 rejected_invalid = 0;     // kInvalidArgument before admission
  i64 rejected_overload = 0;    // kOverloaded (queue full or draining)
  i64 rejected_breaker = 0;     // circuit breaker failed the request fast
  i64 rejected_admit_fault = 0; // admission fault (serve.admit site)
  i64 completed_ok = 0;         // evaluated, status kOk
  i64 expired_in_queue = 0;     // kDeadline before touching the engine
  i64 failed = 0;               // kFactorFailed / kEvalFailed after admission
  i64 batches = 0;              // engine batches evaluated
  i64 batched_queries = 0;      // requests summed over those batches
  i64 max_batch_size = 0;
  i64 max_queue_depth = 0;
  i64 retries = 0;              // transient-failure retries spent
  i64 breaker_trips = 0;        // times a field's breaker opened
  i64 degraded_tiered = 0;      // batches run at DegradeRung::kTiered
  i64 degraded_shift_capped = 0;  // …and at DegradeRung::kShiftCap
  engine::FactorCacheStats cache;  // incl. in-flight takeovers
  std::size_t queue_depth = 0;
  bool draining = false;
  i64 handles_leaked = 0;       // serving runtime's leaked handle slots
};

}  // namespace parmvn::serve
