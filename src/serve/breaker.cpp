#include "serve/breaker.hpp"

namespace parmvn::serve {

bool CircuitBreaker::allow(Clock::time_point now) {
  const std::lock_guard<std::mutex> lock(mu_);
  return now >= open_until_;
}

void CircuitBreaker::record_success() {
  const std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  open_until_ = Clock::time_point{};
}

bool CircuitBreaker::record_failure(Clock::time_point now) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++consecutive_failures_;
  if (consecutive_failures_ < threshold_) return false;
  // At or past the threshold every further failure restarts the cooldown:
  // a half-open probe that fails re-opens immediately.
  open_until_ = now + cooldown_;
  return true;
}

bool CircuitBreaker::open(Clock::time_point now) {
  const std::lock_guard<std::mutex> lock(mu_);
  return now < open_until_;
}

}  // namespace parmvn::serve
