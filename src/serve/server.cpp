#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <numeric>
#include <span>
#include <thread>
#include <utility>

#include "common/contracts.hpp"
#include "common/fault.hpp"
#include "engine/cholesky_factor.hpp"

namespace parmvn::serve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using std::chrono::duration_cast;
using std::chrono::milliseconds;

}  // namespace

void ServeOptions::validate() const {
  const auto reject = [](const std::string& what) {
    throw Error("ServeOptions: " + what);
  };
  if (queue_capacity < 1) reject("queue_capacity must be >= 1");
  if (batch_window_ms < 0) reject("batch_window_ms must be >= 0");
  if (max_batch < 1) reject("max_batch must be >= 1");
  if (cache_capacity < 1) reject("cache_capacity must be >= 1");
  if (max_retries < 0) reject("max_retries must be >= 0");
  if (retry_backoff_ms < 0) reject("retry_backoff_ms must be >= 0");
  if (breaker_threshold < 1) reject("breaker_threshold must be >= 1");
  if (breaker_cooldown_ms < 0) reject("breaker_cooldown_ms must be >= 0");
  if (!(degrade_tiered_at > 0.0) || !(degrade_tiered_at <= degrade_shift_cap_at) ||
      !(degrade_shift_cap_at <= 1.0))
    reject(
        "degradation thresholds must satisfy "
        "0 < degrade_tiered_at <= degrade_shift_cap_at <= 1");
  if (degraded_shifts < 2)
    reject("degraded_shifts must be >= 2 (a lone shift block has no error "
           "estimate)");
  if (engine.antithetic && degraded_shifts % 2 != 0)
    reject("degraded_shifts must be even under antithetic pairing");
  engine.validate();
}

Server::Server(ServeOptions opts, int runtime_threads, rt::SchedulerKind sched)
    : opts_(std::move(opts)) {
  PARMVN_EXPECTS(runtime_threads >= 0);
  opts_.validate();
  rt_ = std::make_unique<rt::Runtime>(runtime_threads, /*enable_trace=*/false,
                                      sched);
  cache_ = std::make_unique<engine::FactorCache>(opts_.cache_capacity);
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

Server::~Server() { drain(); }

void Server::register_field(const std::string& name, FieldSpec spec) {
  PARMVN_EXPECTS(spec.cov != nullptr);
  const i64 n = spec.cov->rows();
  PARMVN_EXPECTS(spec.cov->cols() == n);
  if (!spec.order.empty() && static_cast<i64>(spec.order.size()) != n)
    throw Error("serve: field '" + name + "': order length does not match n");
  // Standardisation fails typed here (a non-positive covariance diagonal),
  // not on the first request that routes to the field.
  std::vector<double> sd = engine::standard_deviations(*spec.cov);
  std::vector<i64> order = spec.order;
  if (order.empty()) {
    order.resize(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), i64{0});
  }
  auto field = std::make_unique<Field>(
      std::move(spec), std::move(sd), std::move(order), opts_.breaker_threshold,
      milliseconds(opts_.breaker_cooldown_ms));
  const std::lock_guard<std::mutex> lock(fields_mu_);
  if (fields_.contains(name))
    throw Error("serve: field '" + name + "' is already registered");
  fields_.emplace(name, std::move(field));
}

std::future<Response> Server::submit(Request req) {
  std::promise<Response> promise;
  std::future<Response> fut = promise.get_future();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++counters_.submitted;
  }
  // Fulfill the promise immediately with a typed rejection (the request
  // was never admitted, so this is the one response it gets).
  const auto reject = [&](Status status, i64 ServerStats::* counter,
                          bool breaker = false) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++(counters_.*counter);
    }
    Response r;
    r.status = std::move(status);
    r.breaker_open = breaker;
    promise.set_value(std::move(r));
  };

  // ---- request validation (typed, before admission)
  Field* field = nullptr;
  {
    const std::lock_guard<std::mutex> lock(fields_mu_);
    if (const auto it = fields_.find(req.field); it != fields_.end())
      field = it->second.get();
  }
  if (field == nullptr) {
    reject(Status::invalid_argument("serve: unknown field '" + req.field + "'"),
           &ServerStats::rejected_invalid);
    return fut;
  }
  const i64 n = field->spec.cov->rows();
  if (static_cast<i64>(req.a.size()) != n ||
      (!req.b.empty() && req.b.size() != req.a.size()) || req.deadline_ms < 0) {
    reject(Status::invalid_argument(
               "serve: malformed request (limit lengths or deadline)"),
           &ServerStats::rejected_invalid);
    return fut;
  }

  // ---- circuit breaker: fail doomed fields fast, before they cost a
  // queue slot or another factor attempt
  if (!field->breaker.allow()) {
    reject(Status::factor_failed("serve: circuit breaker open for field '" +
                                 req.field + "'"),
           &ServerStats::rejected_breaker, /*breaker=*/true);
    return fut;
  }

  // ---- admission (fault-injectable; a tripped admit still yields exactly
  // one typed response)
  try {
    PARMVN_FAULT_POINT("serve.admit");
  } catch (const Error& e) {
    reject(Status::eval_failed(e.what()), &ServerStats::rejected_admit_fault);
    return fut;
  }

  bool admitted = false;
  bool draining = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    draining = draining_;
    if (!draining_ && queue_.size() < opts_.queue_capacity) {
      Pending p;
      p.field = field;
      p.req = std::move(req);
      p.promise = std::move(promise);
      p.arrival = Clock::now();
      queue_.push_back(std::move(p));
      ++counters_.admitted;
      counters_.max_queue_depth = std::max(
          counters_.max_queue_depth, static_cast<i64>(queue_.size()));
      admitted = true;
    }
  }
  if (admitted) {
    cv_.notify_one();
    return fut;
  }
  reject(Status::overloaded(draining ? "serve: draining, admission closed"
                                     : "serve: admission queue full"),
         &ServerStats::rejected_overload);
  return fut;
}

Response Server::evaluate(Request req) { return submit(std::move(req)).get(); }

void Server::dispatch_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait(lk, [&] { return !queue_.empty() || draining_; });
    if (queue_.empty()) {
      if (draining_) return;
      continue;
    }

    // Open a batch with the oldest request; (field, has-deadline) is the
    // coalescing key. Splitting on deadline presence keeps a neighbour's
    // budget from imposing an engine deadline on budget-free requests.
    std::vector<Pending> batch;
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
    Field* const key_field = batch.front().field;
    const bool key_deadline = batch.front().req.deadline_ms > 0;

    const auto window_end =
        Clock::now() + milliseconds(opts_.batch_window_ms);
    while (static_cast<int>(batch.size()) < opts_.max_batch) {
      for (auto it = queue_.begin();
           it != queue_.end() &&
           static_cast<int>(batch.size()) < opts_.max_batch;) {
        if (it->field == key_field &&
            (it->req.deadline_ms > 0) == key_deadline) {
          batch.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
      if (static_cast<int>(batch.size()) >= opts_.max_batch) break;
      // Draining must not dawdle on the coalescing window — the queue is
      // finite and admission closed, so just take what is there.
      if (draining_ || opts_.batch_window_ms == 0) break;
      if (Clock::now() >= window_end) break;
      cv_.wait_until(lk, window_end);
    }

    const std::size_t depth_at_close = queue_.size();
    lk.unlock();
    process_batch(std::move(batch), depth_at_close);
    lk.lock();
  }
}

std::vector<Server::Pending> Server::retire_expired(std::vector<Pending> batch,
                                                    Clock::time_point now) {
  std::vector<Pending> live;
  live.reserve(batch.size());
  for (Pending& p : batch) {
    if (p.req.deadline_ms > 0 &&
        now - p.arrival >= milliseconds(p.req.deadline_ms)) {
      Response r;
      r.status = Status::deadline("serve: deadline expired in queue");
      respond(p, std::move(r));
    } else {
      live.push_back(std::move(p));
    }
  }
  return live;
}

void Server::process_batch(std::vector<Pending> batch,
                           std::size_t depth_at_close) {
  // Requests that spent their whole budget queued retire right here with
  // Status::kDeadline — the engine never sees them.
  batch = retire_expired(std::move(batch), Clock::now());
  if (batch.empty()) return;
  Field* const field = batch.front().field;

  // ---- degradation rung from queue pressure at batch close
  DegradeRung rung = DegradeRung::kNone;
  const double cap = static_cast<double>(opts_.queue_capacity);
  if (static_cast<double>(depth_at_close) >= opts_.degrade_shift_cap_at * cap)
    rung = DegradeRung::kShiftCap;
  else if (static_cast<double>(depth_at_close) >= opts_.degrade_tiered_at * cap)
    rung = DegradeRung::kTiered;

  engine::EngineOptions eff = opts_.engine;
  if (rung >= DegradeRung::kTiered) eff.tiered = true;
  if (rung == DegradeRung::kShiftCap) {
    // degraded_shifts is validated even under antithetic pairing, so the
    // min of two even counts stays even.
    eff.shifts = std::min(eff.shifts, opts_.degraded_shifts);
    if (eff.adaptive) eff.min_shifts = std::min(eff.min_shifts, eff.shifts);
  }

  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++counters_.batches;
    counters_.batched_queries += static_cast<i64>(batch.size());
    counters_.max_batch_size = std::max(counters_.max_batch_size,
                                        static_cast<i64>(batch.size()));
    if (rung == DegradeRung::kTiered) ++counters_.degraded_tiered;
    if (rung == DegradeRung::kShiftCap) ++counters_.degraded_shift_capped;
  }

  int attempt = 0;
  for (;;) {
    // Deadlines are re-checked at every attempt (a backoff sleep may have
    // consumed a member's whole budget) and the engine deadline is the
    // batch's tightest remaining budget, recomputed now — not at admission.
    const auto now = Clock::now();
    batch = retire_expired(std::move(batch), now);
    if (batch.empty()) return;
    i64 engine_deadline = 0;
    for (const Pending& p : batch) {
      if (p.req.deadline_ms <= 0) continue;
      const i64 remaining =
          p.req.deadline_ms - duration_cast<milliseconds>(now - p.arrival).count();
      const i64 rem = std::max<i64>(remaining, 1);
      engine_deadline = engine_deadline == 0 ? rem : std::min(engine_deadline, rem);
    }
    eff.deadline_ms = engine_deadline;

    const auto fail_batch = [&](Status status) {
      for (Pending& p : batch) {
        Response r;
        r.status = status;
        r.degrade = rung;
        r.retries = attempt;
        respond(p, std::move(r));
      }
    };

    // ---- factor (served from the cache; failures feed the breaker)
    std::shared_ptr<const engine::CholeskyFactor> factor;
    try {
      bool cached = false;
      factor = cache_->get_or_factor(*rt_, *field->spec.cov, field->order,
                                     field->spec.factor, field->sd, &cached);
      field->breaker.record_success();
    } catch (const std::exception& e) {
      if (field->breaker.record_failure()) {
        const std::lock_guard<std::mutex> lock(mu_);
        ++counters_.breaker_trips;
      }
      if (attempt >= opts_.max_retries) {
        fail_batch(Status::factor_failed(e.what()));
        return;
      }
      backoff_sleep(++attempt);
      continue;
    }

    // ---- fused evaluation, scattered back per request
    try {
      PARMVN_FAULT_POINT("serve.batch");
      const i64 n = field->spec.cov->rows();
      const std::vector<double> b_inf(static_cast<std::size_t>(n), kInf);
      std::vector<engine::LimitSet> limits;
      limits.reserve(batch.size());
      for (const Pending& p : batch) {
        const std::span<const double> b =
            p.req.b.empty() ? std::span<const double>(b_inf)
                            : std::span<const double>(p.req.b);
        limits.push_back(engine::LimitSet{p.req.a, b, p.req.seed, p.req.prefix,
                                          p.req.decision});
      }
      const engine::PmvnEngine eng(*rt_, factor, eff);
      std::vector<engine::QueryResult> results = eng.evaluate(limits);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        Response r;
        r.result = std::move(results[i]);
        r.degrade = rung;
        r.retries = attempt;
        respond(batch[i], std::move(r));
      }
      return;
    } catch (const std::exception& e) {
      if (attempt >= opts_.max_retries) {
        fail_batch(Status::eval_failed(e.what()));
        return;
      }
      backoff_sleep(++attempt);
    }
  }
}

void Server::backoff_sleep(int attempt) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++counters_.retries;
  }
  if (opts_.retry_backoff_ms <= 0) return;
  // Exponential base with multiplicative jitter in [0.5, 1.5), capped so a
  // deep retry ladder cannot stall the dispatcher for long.
  const double base = static_cast<double>(opts_.retry_backoff_ms) *
                      static_cast<double>(i64{1} << std::min(attempt - 1, 10));
  std::uniform_real_distribution<double> jitter(0.5, 1.5);
  const double ms = std::min(base * jitter(backoff_rng_), 100.0);
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(ms));
}

void Server::respond(Pending& p, Response r) {
  try {
    PARMVN_FAULT_POINT("serve.respond");
  } catch (const Error& e) {
    // The response path itself failed. The one thing the server must never
    // do is lose an admitted request, so the response degrades to a typed
    // failure and is still delivered.
    Response failed;
    failed.status = Status::eval_failed(e.what());
    failed.degrade = r.degrade;
    failed.retries = r.retries;
    r = std::move(failed);
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    switch (r.status.code) {
      case StatusCode::kOk:
        ++counters_.completed_ok;
        break;
      case StatusCode::kDeadline:
        ++counters_.expired_in_queue;
        break;
      default:
        ++counters_.failed;
        break;
    }
  }
  p.promise.set_value(std::move(r));
}

void Server::drain() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  cv_.notify_all();
  // Serialise concurrent drain() calls around the join itself.
  {
    const std::lock_guard<std::mutex> lock(drain_mu_);
    if (dispatcher_.joinable()) dispatcher_.join();
  }
}

ServerStats Server::stats() const {
  ServerStats s;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    s = counters_;
    s.queue_depth = queue_.size();
    s.draining = draining_;
  }
  s.cache = cache_->stats();
  s.handles_leaked = rt_->handles_leaked();
  return s;
}

i64 Server::handles_leaked() const noexcept { return rt_->handles_leaked(); }

}  // namespace parmvn::serve
