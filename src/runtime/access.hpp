// Data access modes for task dependency inference.
#pragma once

#include "common/types.hpp"

namespace parmvn::rt {

/// How a task touches a piece of registered data. The runtime derives task
/// dependencies from these declarations exactly like StarPU's
/// sequential-consistency mode: tasks appear to execute in submission order
/// with respect to each data item.
enum class Access {
  kRead,       // concurrent readers allowed
  kWrite,      // exclusive; previous value not needed
  kReadWrite,  // exclusive; previous value needed
};

namespace detail {
struct HandleMint;
}

/// Opaque name for a unit of data tracked by the runtime (e.g. one tile).
/// Handles are cheap value types; they do not own the data they describe.
class DataHandle {
 public:
  DataHandle() = default;

  [[nodiscard]] bool valid() const noexcept { return id_ >= 0; }
  [[nodiscard]] i64 id() const noexcept { return id_; }

 private:
  friend class Runtime;
  friend struct detail::HandleMint;
  explicit DataHandle(i64 id) : id_(id) {}
  i64 id_ = -1;
};

namespace detail {
/// Internal factory used by the scheduler implementations (runtime-private
/// translation units) to mint handles; not for library users.
struct HandleMint {
  static DataHandle make(i64 id) noexcept { return DataHandle(id); }
};
}  // namespace detail

/// One (handle, mode) pair in a task's access list.
struct DataAccess {
  DataHandle handle;
  Access mode = Access::kRead;
};

}  // namespace parmvn::rt
