// Work-stealing scheduler arm (SchedulerKind::kWorkSteal, the default).
//
// Layout per worker:
//   * kNumPriorityLanes Chase–Lev deques (common/ws_deque.hpp). The owner
//     pushes/pops at the bottom (newest-first, cache-hot); thieves steal at
//     the top (oldest-first — for graphs submitted in dependency order that
//     is the deepest remaining critical path, see runtime/priority.hpp).
//   * a mutex-guarded inbox for cross-worker placement: tasks whose
//     tile-owner affinity points at another worker, and tasks made ready by
//     external (non-worker) submitter threads.
//
// Locality rule: when a task becomes ready it goes to the worker that last
// wrote its first ReadWrite handle (= the worker whose cache holds the tile
// it is about to mutate). If that is the enqueuing worker itself — the
// common case, since the completing task usually *is* that writer — the
// push is a lock-free own-deque operation. Otherwise the task lands in the
// owner's inbox. External submitters fall back to round-robin inboxes.
//
// No runtime-wide lock exists on the execution path:
//   * dependency tracking: per-task atomic `unmet` counts, decremented with
//     acq_rel RMWs; successor lists appended under a per-task spinlock that
//     also latches the `done` flag, so completion never misses an edge.
//   * submit()'s hazard bookkeeping: the handle table is split into
//     kShards shards, each with its own mutex; a submission locks exactly
//     the shards its access list touches, in ascending order. Two
//     concurrent submissions with any overlapping handle serialize on a
//     common shard and therefore observe each other's hazard updates
//     atomically — dependency edges can never form a cycle.
//   * completion: decrement counters, push ready successors, adjust the
//     in-flight count; the only blocking constructs are the idle/done
//     condition variables, touched when workers sleep or an epoch drains.
//
// Determinism: scheduling decides only *when* a task runs, never its
// inputs — every ordering constraint comes from the declared data accesses,
// which are identical across arms and worker counts. The bitwise contracts
// (test_determinism, batched==single) therefore hold unchanged.
#include <algorithm>
#include <bit>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "common/contracts.hpp"
#include "common/env.hpp"
#include "common/fault.hpp"
#include "common/timer.hpp"
#include "common/ws_deque.hpp"
#include "runtime/priority.hpp"
#include "runtime/runtime_impl.hpp"

namespace parmvn::rt {

namespace {

using common::Spinlock;
using common::SpinlockGuard;
using common::WsDeque;

// Submission guard: unmet starts here and the submitter subtracts
// (kSubmitGuard - actual dependency count) once the hazard phase is done.
// Dependencies completing mid-submission decrement freely — the count
// cannot reach zero until the guard is lifted, and the submitter learns
// from its own fetch_sub whether it is the one that must enqueue. This
// keeps the hazard phase free of per-dependency atomic RMWs.
inline constexpr i64 kSubmitGuard = i64{1} << 40;

struct WsTask {
  std::string name;
  std::function<void()> fn;
  int lane = 0;
  // Worker whose deque/inbox the task was first placed in; a different
  // executing worker means the task was stolen (trace/stats only).
  int home_worker = -1;
  // Last writer of the task's first ReadWrite handle at submit time. By
  // construction it is a dependency (or already done), so by the time this
  // task is ready its executed_by is set — that worker is the affinity
  // target.
  WsTask* affinity_src = nullptr;
  WsTask* next_all = nullptr;  // intrusive epoch-ownership list
  std::atomic<int> executed_by{-1};
  // Unmet dependency count (guarded, see kSubmitGuard): the task is
  // enqueued by whoever drops it to zero (the submitter when all deps were
  // already done, else the last completing dependency).
  std::atomic<i64> unmet{kSubmitGuard};
  // done + successors are guarded by succ_lock; completion latches done, so
  // a racing submit either registers its edge before the latch or observes
  // done and skips the edge.
  Spinlock succ_lock;
  bool done = false;
  std::vector<WsTask*> successors;
};

struct WsHandle {
  WsTask* last_writer = nullptr;
  std::vector<WsTask*> readers_since_write;
  std::string debug_name;
  bool in_use = false;
};

struct HandleShard {
  std::mutex mu;
  std::vector<WsHandle> slots;
  std::vector<i64> free_indices;  // released slot indices within this shard
};

struct alignas(64) Worker {
  WsDeque<WsTask*> lanes[kNumPriorityLanes];
  std::mutex inbox_mu;
  std::deque<WsTask*> inbox;           // guarded by inbox_mu
  std::atomic<i64> inbox_size{0};      // lock-free emptiness peek
  std::vector<TaskRecord> records;  // merged into the impl at epoch end
  std::atomic<i64> steals{0};
  std::thread thread;
};

class WsImpl;

// Worker identity of the current thread (null/-1 on submitter threads).
// Keyed by impl pointer so coexisting runtimes never cross wires.
thread_local WsImpl* tls_impl = nullptr;
thread_local int tls_worker = -1;

class WsImpl final : public Runtime::Impl {
 public:
  WsImpl(u64 uid_arg, int threads, bool trace_on)
      : Impl(uid_arg, trace_on, SchedulerKind::kWorkSteal),
        nworkers_(threads),
        steal_batch_(env_i64("PARMVN_STEAL_BATCH", 1) != 0) {
    PARMVN_EXPECTS(threads >= 1);
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int w = 0; w < threads; ++w)
      workers_.push_back(std::make_unique<Worker>());
    for (int w = 0; w < threads; ++w)
      workers_[static_cast<std::size_t>(w)]->thread =
          std::thread([this, w] { worker_loop(w); });
  }

  ~WsImpl() override {
    {
      std::lock_guard<std::mutex> g(idle_mu_);
      shutting_down_.store(true, std::memory_order_seq_cst);
    }
    idle_cv_.notify_all();
    for (auto& w : workers_) w->thread.join();
    // Free an epoch that was drained but never wait_all()'d (the facade's
    // destructor path); workers are gone, so plain teardown is safe.
    WsTask* head = all_tasks_.exchange(nullptr, std::memory_order_acquire);
    while (head != nullptr) {
      WsTask* next = head->next_all;
      delete head;
      head = next;
    }
  }

  // ---- handle table (sharded) ----
  DataHandle register_handle(std::string debug_name) override {
    // Prefer recycling a released slot (scanning shards in a fixed order
    // keeps id reuse deterministic for a quiescent runtime); only append —
    // round-robin for balance — when no shard has a free slot.
    for (int s = 0; s < kShards; ++s) {
      HandleShard& shard = shards_[s];
      std::lock_guard<std::mutex> g(shard.mu);
      if (shard.free_indices.empty()) continue;
      const i64 index = shard.free_indices.back();
      shard.free_indices.pop_back();
      WsHandle& hs = shard.slots[static_cast<std::size_t>(index)];
      hs.debug_name = std::move(debug_name);
      hs.in_use = true;
      return detail::HandleMint::make(index * kShards + s);
    }
    const int s = static_cast<int>(
        next_shard_.fetch_add(1, std::memory_order_relaxed) %
        static_cast<u64>(kShards));
    HandleShard& shard = shards_[s];
    std::lock_guard<std::mutex> g(shard.mu);
    const i64 index = static_cast<i64>(shard.slots.size());
    shard.slots.push_back(WsHandle{});
    WsHandle& hs = shard.slots.back();
    hs.debug_name = std::move(debug_name);
    hs.in_use = true;
    return detail::HandleMint::make(index * kShards + s);
  }

  void release_handle(DataHandle handle) override {
    PARMVN_EXPECTS(handle.valid());
    HandleShard& shard = shards_[shard_of(handle)];
    std::lock_guard<std::mutex> g(shard.mu);
    const i64 index = index_of(handle);
    PARMVN_EXPECTS(index < static_cast<i64>(shard.slots.size()));
    WsHandle& hs = shard.slots[static_cast<std::size_t>(index)];
    PARMVN_EXPECTS(hs.in_use);
    // Releasing a handle the current epoch still references would let a
    // recycled slot's tasks miss their dependency edges against in-flight
    // work: reject it here instead of racing later (wait_all() clears these
    // on epoch completion).
    PARMVN_EXPECTS(hs.last_writer == nullptr &&
                   hs.readers_since_write.empty());
    hs = WsHandle{};
    shard.free_indices.push_back(index);
  }

  // ---- submission ----
  void submit(std::string_view name, std::span<const DataAccess> accesses,
              std::function<void()> fn, int priority) override {
    auto node = std::make_unique<WsTask>();
    if (tracing) node->name.assign(name);
    node->fn = std::move(fn);
    node->lane = priority_lane(priority);
    WsTask* task = node.get();

    // Fast path for a single access — the dominant shape in the engine's
    // sweeps (per-column-tile chain tasks and Vecchia fit tasks carry
    // exactly one handle): lock that handle's shard directly, skipping the
    // mask build and both bit-scan lock/unlock loops of the general case.
    if (accesses.size() == 1) {
      const DataAccess& acc = accesses[0];
      PARMVN_EXPECTS(acc.handle.valid());
      HandleShard& shard = shards_[shard_of(acc.handle)];
      i64 ndeps = 0;
      {
        std::lock_guard<std::mutex> g(shard.mu);
        const i64 index = index_of(acc.handle);
        PARMVN_EXPECTS(index < static_cast<i64>(shard.slots.size()));
        WsHandle& hs = shard.slots[static_cast<std::size_t>(index)];
        PARMVN_EXPECTS(hs.in_use);
        in_flight_.fetch_add(1, std::memory_order_relaxed);
        publish_to_epoch(task);
        node.release();
        bool have_affinity = false;
        ndeps = apply_access(task, hs, acc.mode, have_affinity);
      }
      finish_submit(task, ndeps);
      return;
    }

    // Lock the shards this access list touches, in ascending order.
    // Holding all of them for the whole hazard phase makes the update
    // atomic against any overlapping submission (they share a shard), which
    // is what rules out dependency cycles between concurrent submitters.
    u64 shard_mask = 0;
    for (const DataAccess& acc : accesses) {
      PARMVN_EXPECTS(acc.handle.valid());
      shard_mask |= u64{1} << shard_of(acc.handle);
    }
    std::unique_lock<std::mutex> shard_locks[kShards];
    for (u64 mset = shard_mask; mset != 0; mset &= mset - 1) {
      const int s = std::countr_zero(mset);
      shard_locks[s] = std::unique_lock<std::mutex>(shards_[s].mu);
    }

    // Validate every access before any bookkeeping: a rejected submission
    // leaves no phantom task or half-applied hazard state behind.
    for (const DataAccess& acc : accesses) {
      HandleShard& shard = shards_[shard_of(acc.handle)];
      const i64 index = index_of(acc.handle);
      PARMVN_EXPECTS(index < static_cast<i64>(shard.slots.size()));
      PARMVN_EXPECTS(shard.slots[static_cast<std::size_t>(index)].in_use);
    }

    in_flight_.fetch_add(1, std::memory_order_relaxed);
    publish_to_epoch(task);
    node.release();

    i64 ndeps = 0;
    bool have_affinity = false;
    for (const DataAccess& acc : accesses) {
      WsHandle& hs = shards_[shard_of(acc.handle)]
                         .slots[static_cast<std::size_t>(index_of(acc.handle))];
      ndeps += apply_access(task, hs, acc.mode, have_affinity);
    }
    for (u64 mset = shard_mask; mset != 0; mset &= mset - 1)
      shard_locks[std::countr_zero(mset)].unlock();

    finish_submit(task, ndeps);
  }

  void wait_all() override {
    {
      std::unique_lock<std::mutex> lk(done_mu_);
      done_cv_.wait(lk, [this] {
        return in_flight_.load(std::memory_order_acquire) == 0;
      });
    }
    finish_epoch();
  }

  // External cancel token: flips the same flag the first task error does,
  // without recording an error — execute() skips every not-yet-started
  // task, in_flight_ drains through the no-op path, and wait_all() returns
  // normally (finish_epoch clears the flag either way).
  void cancel() override {
    cancelled_.store(true, std::memory_order_release);
  }

  [[nodiscard]] bool cancel_requested() const noexcept override {
    return cancelled_.load(std::memory_order_acquire);
  }

  std::exception_ptr drain_pending_error() noexcept override {
    {
      std::unique_lock<std::mutex> lk(done_mu_);
      done_cv_.wait(lk, [this] {
        return in_flight_.load(std::memory_order_acquire) == 0;
      });
    }
    std::lock_guard<std::mutex> g(error_mu_);
    return first_error_;
  }

  [[nodiscard]] int num_threads() const noexcept override {
    return nworkers_;
  }

  [[nodiscard]] const std::vector<TaskRecord>& trace() const override {
    return records_;
  }

  [[nodiscard]] i64 tasks_stolen() const noexcept override {
    i64 total = 0;
    for (const auto& w : workers_)
      total += w->steals.load(std::memory_order_relaxed);
    return total;
  }

 private:
  static constexpr int kShards = 16;
  // Bound on tasks transferred per batch steal: keeps the thief's time on
  // the victim's lane (CAS per task) short even against a huge backlog.
  static constexpr i64 kMaxStealBatch = 64;

  static int shard_of(DataHandle h) noexcept {
    return static_cast<int>(h.id() % kShards);
  }
  static i64 index_of(DataHandle h) noexcept { return h.id() / kShards; }

  // Publish epoch ownership (lock-free Treiber push; finish_epoch walks and
  // frees). After this the node must not be freed on the submit path.
  void publish_to_epoch(WsTask* task) {
    task->next_all = all_tasks_.load(std::memory_order_relaxed);
    while (!all_tasks_.compare_exchange_weak(task->next_all, task,
                                             std::memory_order_release,
                                             std::memory_order_relaxed)) {
    }
  }

  // Hazard bookkeeping for one access under its shard lock: registers the
  // dependency edges the access implies and updates the handle's
  // last-writer/reader state. Returns the number of edges added.
  i64 apply_access(WsTask* task, WsHandle& hs, Access mode,
                   bool& have_affinity) {
    i64 ndeps = 0;
    switch (mode) {
      case Access::kRead:
        ndeps += add_dep(task, hs.last_writer);
        hs.readers_since_write.push_back(task);
        break;
      case Access::kWrite:
      case Access::kReadWrite:
        if (!have_affinity) {
          task->affinity_src = hs.last_writer;  // may be null: no affinity
          have_affinity = true;
        }
        ndeps += add_dep(task, hs.last_writer);
        for (WsTask* r : hs.readers_since_write) ndeps += add_dep(task, r);
        hs.readers_since_write.clear();
        hs.last_writer = task;
        break;
    }
    return ndeps;
  }

  // Lift the submission guard, crediting the registered dependencies; if
  // they all completed already (or there were none) the count lands on zero
  // and the submitter is the one that enqueues.
  void finish_submit(WsTask* task, i64 ndeps) {
    const i64 prev =
        task->unmet.fetch_sub(kSubmitGuard - ndeps, std::memory_order_acq_rel);
    if (prev - (kSubmitGuard - ndeps) == 0) {
      if (enqueue_ready(task) == Placement::kOwnSurplus) signal_work();
    }
  }

  // Register `task`'s dependency on `dep` unless dep already completed;
  // returns the number of edges added (0 or 1) for the submitter's local
  // dependency count. Caller holds the shard lock of the handle that
  // produced the edge; the per-task spinlock orders the append against
  // dep's completion latch.
  static i64 add_dep(WsTask* task, WsTask* dep) {
    if (dep == nullptr || dep == task) return 0;
    SpinlockGuard g(dep->succ_lock);
    if (dep->done) return 0;
    dep->successors.push_back(task);
    return 1;
  }

  // How a ready task was placed; drives the caller's batched wake decision.
  enum class Placement {
    kInbox,       // cross-worker inbox: published (lazily) by this call
    kOwnFirst,    // own deque, no other task queued there yet
    kOwnSurplus,  // own deque that already held work — steal-worthy
  };

  // Place a ready task. Callers batch the wake signal — one signal_work per
  // completion walk rather than one per successor, and only when the walk
  // left steal-worthy surplus (a lane that already had work, or two or more
  // own placements in the same walk, which may land in *different* empty
  // lanes): a woken worker's own completions signal further, so the pool
  // ramps up as a cascade without the futex storm of per-task notifies,
  // which on oversubscribed cores were measurably slower than the work they
  // recruited.
  [[nodiscard]] Placement enqueue_ready(WsTask* task) {
    int target = -1;
    if (task->affinity_src != nullptr)
      target = task->affinity_src->executed_by.load(std::memory_order_relaxed);
    const bool on_worker = tls_impl == this;
    if (on_worker && (target < 0 || target == tls_worker)) {
      Worker& me = *workers_[static_cast<std::size_t>(tls_worker)];
      task->home_worker = tls_worker;
      const bool surplus = !me.lanes[task->lane].empty_hint();
      me.lanes[task->lane].push(task);
      // This worker is awake and drains its own deques before it ever
      // sleeps, so a single queued task needs no signal — the common
      // potrf/sweep chains (one completion readies one successor) run
      // completely futex-free.
      return surplus ? Placement::kOwnSurplus : Placement::kOwnFirst;
    }
    if (target < 0) {
      target = static_cast<int>(
          next_inbox_.fetch_add(1, std::memory_order_relaxed) %
          static_cast<u64>(nworkers_));
    }
    task->home_worker = target;
    Worker& w = *workers_[static_cast<std::size_t>(target)];
    bool first_pending = false;
    {
      std::lock_guard<std::mutex> g(w.inbox_mu);
      w.inbox.push_back(task);
      first_pending =
          w.inbox_size.fetch_add(1, std::memory_order_relaxed) == 0;
    }
    // Cross-worker placements publish lazily: the epoch bump keeps "task
    // exists" visible to every pre-sleep rescan, so an awake worker always
    // finds it eventually. A wakeup fires only for the *first* pending item
    // of an inbox (later items ride the drain, which signals surplus) or
    // when the whole pool sleeps — a burst of external submissions (the
    // engine's per-round panel inits) costs at most nworkers futexes, not
    // one per task.
    ready_epoch_.fetch_add(1, std::memory_order_seq_cst);
    const int sleepers = num_sleepers_.load(std::memory_order_seq_cst);
    if ((first_pending && sleepers > 0) || sleepers >= nworkers_) {
      std::lock_guard<std::mutex> g(idle_mu_);
      idle_cv_.notify_one();
    }
    return Placement::kInbox;
  }

  // Publish "new work exists" to sleeping workers. The epoch counter and
  // sleeper count are both seq_cst so the producer/sleeper pair cannot both
  // miss each other (Dekker-style): a sleeper re-checks the epoch under the
  // idle mutex after announcing itself, and a producer that saw zero
  // sleepers is ordered before that announcement — the sleeper's re-check
  // then sees the bumped epoch and does not sleep.
  void signal_work() {
    ready_epoch_.fetch_add(1, std::memory_order_seq_cst);
    if (num_sleepers_.load(std::memory_order_seq_cst) > 0) {
      std::lock_guard<std::mutex> g(idle_mu_);
      idle_cv_.notify_one();
    }
  }

  WsTask* find_task(Worker& me, int wid, u64& steal_cursor) {
    // 1. Inbox first: affinity placements targeted at this worker. Drain
    //    everything into the own lanes so priority ordering applies —
    //    pushed in reverse so the LIFO pop returns arrivals in submission
    //    order (tasks spawned *after* the drain still pop first, keeping
    //    chains depth-first). Without the reversal a burst of root tasks
    //    runs back to front, and every producer→consumer pair (panel init →
    //    QMC sweep) ends up separated by the whole burst — measurably
    //    colder caches than the global arm's FIFO order.
    if (me.inbox_size.load(std::memory_order_relaxed) > 0) {
      std::deque<WsTask*> drained;
      {
        std::lock_guard<std::mutex> g(me.inbox_mu);
        drained.swap(me.inbox);
        me.inbox_size.store(0, std::memory_order_relaxed);
      }
      for (auto it = drained.rbegin(); it != drained.rend(); ++it)
        me.lanes[(*it)->lane].push(*it);
      // Inbox placements are published lazily; the drain is where surplus
      // becomes visible in stealable lanes, so recruit help here (this
      // worker is about to run the first one itself).
      if (drained.size() > 1) signal_work();
    }
    // 2. Own deques, highest lane first, newest first.
    for (int lane = kNumPriorityLanes - 1; lane >= 0; --lane)
      if (WsTask* t = me.lanes[lane].pop()) return t;
    // 3. One stealing sweep over the other workers, round-robin start:
    //    victims' lanes highest-first (critical path first), then their
    //    inboxes (work parked for a busy owner is better run remotely than
    //    left waiting).
    // The sweep must visit every other worker exactly once — a skipped
    // victim could hold the epoch's last ready task while everyone sleeps.
    const u64 start = static_cast<u64>(wid) + 1 + steal_cursor;
    for (int k = 0; k < nworkers_; ++k) {
      const int v = static_cast<int>((start + static_cast<u64>(k)) %
                                     static_cast<u64>(nworkers_));
      if (v == wid) continue;
      Worker& victim = *workers_[static_cast<std::size_t>(v)];
      for (int lane = kNumPriorityLanes - 1; lane >= 0; --lane) {
        if (WsTask* t = victim.lanes[lane].steal()) {
          steal_cursor += static_cast<u64>(k);
          me.steals.fetch_add(1, std::memory_order_relaxed);
          if (steal_batch_) batch_steal(me, wid, victim.lanes[lane], lane);
          return t;
        }
      }
      if (victim.inbox_size.load(std::memory_order_relaxed) > 0) {
        std::lock_guard<std::mutex> g(victim.inbox_mu);
        if (!victim.inbox.empty()) {
          WsTask* t = victim.inbox.front();
          victim.inbox.pop_front();
          victim.inbox_size.fetch_sub(1, std::memory_order_relaxed);
          steal_cursor += static_cast<u64>(k);
          me.steals.fetch_add(1, std::memory_order_relaxed);
          return t;
        }
      }
    }
    return nullptr;
  }

  // Batch steal (PARMVN_STEAL_BATCH, default on): having won one task from
  // a victim lane, take up to half of what the lane still holds in the same
  // visit and park it in the thief's matching lane. A thief that found work
  // once tends to come back — batching amortises the steal-sweep (and its
  // CAS traffic on the victim's `top_`) over several tasks and spreads a
  // deep backlog across the pool in O(log) rounds instead of one-at-a-time.
  // The half cap always leaves the victim the larger share of its own
  // (cache-hot) work. Transferred tasks are *re-homed* to the thief and not
  // counted as steals — only the directly-returned task is — which keeps
  // the trace invariant exact (a record is `stolen` iff its executor
  // differs from the worker whose queue last held it, and that count must
  // equal tasks_stolen()). The new surplus in this worker's lane is
  // advertised so further thieves can split it again. Determinism is
  // untouched: like every other scheduling choice, this moves *where/when*
  // a ready task runs, never its inputs.
  void batch_steal(Worker& me, int wid, WsDeque<WsTask*>& victim_lane,
                   int lane) {
    const i64 want = victim_lane.size_hint() / 2;
    if (want <= 0) return;
    WsTask* batch[kMaxStealBatch];
    i64 taken = 0;
    while (taken < want && taken < kMaxStealBatch) {
      WsTask* t = victim_lane.steal();
      if (t == nullptr) break;  // drained or lost a race: stop politely
      t->home_worker = wid;  // exclusive owner after the steal CAS; the
                             // deque push below publishes the write
      batch[taken++] = t;
    }
    if (taken == 0) return;
    // Stolen oldest-first; push in reverse so the LIFO pop runs the batch
    // in victim-queue order (critical path first), matching the inbox
    // drain's reversal idiom above.
    for (i64 i = taken - 1; i >= 0; --i) me.lanes[lane].push(batch[i]);
    signal_work();
  }

  void execute(WsTask* task, Worker& me, int wid) {
    const bool skip = cancelled_.load(std::memory_order_acquire);
    const bool rec = trace_enabled();
    const double t0 = rec ? global_time_s() : 0.0;
    std::exception_ptr err;
    if (!skip) {
      try {
        task->fn();
      } catch (...) {
        err = std::current_exception();
      }
    }
    const double t1 = rec ? global_time_s() : 0.0;
    if (rec) {
      // The record append runs outside the task's error capture: a failure
      // here (ENOMEM growing the record vector) must not masquerade as a
      // task error, and letting it escape the worker loop would terminate.
      // Downgrade tracing instead — the computation is unharmed.
      try {
        PARMVN_FAULT_POINT("rt.trace");
        me.records.push_back(
            {task->name, wid, t0, t1, /*stolen=*/task->home_worker != wid});
      } catch (...) {
        trace_record_failed();
      }
    }
    if (err) {
      std::lock_guard<std::mutex> g(error_mu_);
      if (!first_error_) {
        first_error_ = err;
        // Ordered before the successor walk below: every task that becomes
        // ready because of this completion already observes the flag.
        cancelled_.store(true, std::memory_order_release);
      }
    }
    task->executed_by.store(wid, std::memory_order_relaxed);
    {
      SpinlockGuard g(task->succ_lock);
      task->done = true;
    }
    // Safe to walk without the lock: submitters only append while !done
    // (checked under succ_lock), so the latch above freezes the list.
    bool want_signal = false;
    int own_placements = 0;
    for (WsTask* s : task->successors) {
      if (s->unmet.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        const Placement p = enqueue_ready(s);
        want_signal |= p == Placement::kOwnSurplus;
        own_placements += p != Placement::kInbox;
      }
    }
    // Two own placements are surplus even when each landed in an empty
    // *different* lane — this worker can only run one next.
    if (want_signal || own_placements >= 2) signal_work();
    executed.fetch_add(1, std::memory_order_relaxed);
    if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> g(done_mu_);
      done_cv_.notify_all();
    }
  }

  void worker_loop(int wid) {
    tls_impl = this;
    tls_worker = wid;
    Worker& me = *workers_[static_cast<std::size_t>(wid)];
    u64 steal_cursor = 0;
    for (;;) {
      if (WsTask* t = find_task(me, wid, steal_cursor)) {
        execute(t, me, wid);
        continue;
      }
      // Idle path: snapshot the epoch, announce ourselves as a sleeper,
      // re-scan once (a task published after the snapshot bumps the epoch
      // and the wait predicate catches it), then sleep.
      const i64 e = ready_epoch_.load(std::memory_order_seq_cst);
      if (shutting_down_.load(std::memory_order_seq_cst)) return;
      num_sleepers_.fetch_add(1, std::memory_order_seq_cst);
      if (WsTask* t = find_task(me, wid, steal_cursor)) {
        num_sleepers_.fetch_sub(1, std::memory_order_seq_cst);
        execute(t, me, wid);
        continue;
      }
      {
        std::unique_lock<std::mutex> lk(idle_mu_);
        idle_cv_.wait(lk, [&] {
          return shutting_down_.load(std::memory_order_seq_cst) ||
                 ready_epoch_.load(std::memory_order_seq_cst) != e;
        });
      }
      num_sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    }
  }

  void finish_epoch() {
    // in_flight == 0: every submitted task has fully completed (records
    // written, successors walked), workers at most scan empty deques.
    // Hazard state is cleared *before* the nodes are freed so no shard ever
    // exposes a dangling last_writer to a concurrent release_data().
    for (HandleShard& shard : shards_) {
      std::lock_guard<std::mutex> g(shard.mu);
      for (WsHandle& hs : shard.slots) {
        hs.last_writer = nullptr;
        hs.readers_since_write.clear();
      }
    }
    WsTask* head = all_tasks_.exchange(nullptr, std::memory_order_acquire);
    while (head != nullptr) {
      WsTask* next = head->next_all;
      delete head;
      head = next;
    }
    if (tracing) {
      const auto by_start = [](const TaskRecord& a, const TaskRecord& b) {
        return a.start_s < b.start_s;
      };
      // Sort only this epoch's tail, then merge — earlier epochs are
      // already ordered, and re-sorting the whole history would make a
      // traced many-epoch run (one wait_all per engine sweep round)
      // quadratic in total record count.
      const std::ptrdiff_t prior = static_cast<std::ptrdiff_t>(records_.size());
      for (auto& w : workers_) {
        records_.insert(records_.end(), w->records.begin(), w->records.end());
        w->records.clear();
      }
      const auto mid = records_.begin() + prior;
      std::stable_sort(mid, records_.end(), by_start);
      std::inplace_merge(records_.begin(), mid, records_.end(), by_start);
    }
    std::unique_lock<std::mutex> g(error_mu_);
    if (first_error_) {
      std::exception_ptr err = first_error_;
      first_error_ = nullptr;
      cancelled_.store(false, std::memory_order_relaxed);
      g.unlock();
      std::rethrow_exception(err);
    }
    cancelled_.store(false, std::memory_order_relaxed);
  }

  const int nworkers_;
  // PARMVN_STEAL_BATCH (default on), latched at construction: thieves take
  // up to half a victim lane per successful steal instead of one task.
  const bool steal_batch_;
  std::vector<std::unique_ptr<Worker>> workers_;

  HandleShard shards_[kShards];
  std::atomic<u64> next_shard_{0};  // append balancing for register_handle
  std::atomic<u64> next_inbox_{0};  // round-robin for external submitters

  // Epoch task ownership: lock-free intrusive stack (freed in finish_epoch).
  std::atomic<WsTask*> all_tasks_{nullptr};

  std::atomic<i64> in_flight_{0};
  std::mutex done_mu_;
  std::condition_variable done_cv_;

  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::atomic<i64> ready_epoch_{0};
  std::atomic<int> num_sleepers_{0};
  std::atomic<bool> shutting_down_{false};

  std::mutex error_mu_;
  std::exception_ptr first_error_;
  std::atomic<bool> cancelled_{false};

  std::vector<TaskRecord> records_;  // merged at epoch end
};

}  // namespace

std::unique_ptr<Runtime::Impl> make_worksteal_impl(u64 uid, int threads,
                                                   bool tracing) {
  return std::make_unique<WsImpl>(uid, threads, tracing);
}

}  // namespace parmvn::rt
