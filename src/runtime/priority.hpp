// Named priority ladder for Runtime::submit.
//
// `Runtime::submit(..., int priority)` was historically a bare tie-break
// int with no documented scale; these constants define the scale and how
// the schedulers interpret it.
//
// The ladder (higher runs earlier):
//
//   kPrioPanel  (3)  panel factorization and the tasks that feed the *next*
//                    panel directly — the critical path of a tiled/TLR
//                    Cholesky (POTRF, the first sub-diagonal TRSM, the SYRK
//                    into the next diagonal tile).
//   kPrioSweep  (2)  panel-release work: the remaining TRSMs of the current
//                    panel, and the QMC integrand tasks of the PMVN sweep.
//   kPrioUpdate (1)  trailing updates that feed the next panel's TRSMs
//                    (GEMMs into column k+1).
//   kPrioBulk   (0)  everything else: far trailing updates, panel
//                    initialisation, default for unannotated tasks.
//
// Scheduler interaction:
//
//  * The work-stealing scheduler maps priorities onto kNumPriorityLanes
//    per-worker deques via priority_lane() (values clamp at the ends, so
//    any int remains legal). Owners pop their highest non-empty lane
//    newest-first; thieves scan victims highest-lane-first and steal
//    oldest-first. Because panel k's tasks are always submitted before
//    panel k+1's, oldest-first steal order *within* a lane is exactly
//    descending remaining-critical-path depth — stealing prefers the
//    critical path without a per-task depth integer.
//  * The legacy global-queue scheduler (PARMVN_SCHED_GLOBAL=1) orders its
//    single ready queue by the raw int, FIFO within equal priority.
//  * Priorities are scheduling hints only; correctness (sequential
//    consistency per data handle, bitwise determinism across worker
//    counts) comes solely from the declared data accesses.
#pragma once

namespace parmvn::rt {

inline constexpr int kPrioBulk = 0;
inline constexpr int kPrioUpdate = 1;
inline constexpr int kPrioSweep = 2;
inline constexpr int kPrioPanel = 3;

/// Number of ready-queue lanes per worker in the work-stealing scheduler.
inline constexpr int kNumPriorityLanes = 4;

/// Lane a submitted priority lands in: the ladder value, clamped.
constexpr int priority_lane(int priority) noexcept {
  if (priority < 0) return 0;
  if (priority >= kNumPriorityLanes) return kNumPriorityLanes - 1;
  return priority;
}

}  // namespace parmvn::rt
