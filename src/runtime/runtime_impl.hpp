// Internal interface between the Runtime facade and its scheduler arms.
// Not installed / not part of the public surface — runtime.cpp and the
// scheduler_*.cpp translation units are the only includers.
//
// Three implementations exist:
//   * make_inline_impl      — 0 workers: tasks execute inside submit().
//   * make_global_impl      — the pre-PR-5 single-lock scheduler, frozen as
//                             the A/B baseline arm (scheduler_global.cpp).
//   * make_worksteal_impl   — per-worker Chase–Lev lane deques with
//                             locality-aware placement and atomic
//                             dependency counting (scheduler_worksteal.cpp).
#pragma once

#include <atomic>
#include <exception>
#include <memory>
#include <mutex>

#include "runtime/runtime.hpp"

namespace parmvn::rt {

struct Runtime::Impl {
  Impl(u64 uid_arg, bool tracing_arg, SchedulerKind kind_arg)
      : uid(uid_arg), tracing(tracing_arg), kind(kind_arg) {}
  virtual ~Impl() = default;

  virtual DataHandle register_handle(std::string debug_name) = 0;
  virtual void release_handle(DataHandle handle) = 0;
  virtual void submit(std::string_view name,
                      std::span<const DataAccess> accesses,
                      std::function<void()> fn, int priority) = 0;
  virtual void wait_all() = 0;

  /// External cancel token: make every not-yet-started task of the current
  /// epoch a no-op, exactly as the first-error plumbing does, but without
  /// recording an error — wait_all() returns normally (after the no-op
  /// drain) and clears the flag. Callable from any thread.
  virtual void cancel() = 0;
  [[nodiscard]] virtual bool cancel_requested() const noexcept = 0;

  /// Destructor support: wait for in-flight tasks to drain, then hand back
  /// (without clearing epoch state) any pending never-retrieved task error
  /// so the facade can surface it on stderr. Must not throw.
  virtual std::exception_ptr drain_pending_error() noexcept = 0;

  [[nodiscard]] virtual int num_threads() const noexcept = 0;
  [[nodiscard]] virtual const std::vector<TaskRecord>& trace() const = 0;
  [[nodiscard]] virtual i64 tasks_stolen() const noexcept { return 0; }

  /// One mid-run trace failure (ENOMEM appending a record) downgrades
  /// tracing to off for the rest of the runtime's life instead of
  /// propagating an error out of a worker loop; see trace_record_failed().
  [[nodiscard]] bool trace_enabled() const noexcept {
    return tracing && trace_ok.load(std::memory_order_relaxed);
  }
  void trace_record_failed() noexcept;

  const u64 uid;
  const bool tracing;
  const SchedulerKind kind;  // resolved arm (never kDefault)
  /// Backs Runtime::exclusive_epoch(): host threads sharing one runtime
  /// serialise their submit…wait_all phases on this mutex (the scheduler
  /// itself never touches it — it only orders *host-side* epochs).
  std::mutex epoch_mu;
  std::atomic<i64> executed{0};
  /// Handle slots a HandleLease::release() had to abandon because they were
  /// not quiescent (see Runtime::handles_leaked()).
  std::atomic<i64> handles_leaked{0};
  std::atomic<bool> trace_ok{true};
};

std::unique_ptr<Runtime::Impl> make_inline_impl(u64 uid, bool tracing,
                                                SchedulerKind kind);
std::unique_ptr<Runtime::Impl> make_global_impl(u64 uid, int threads,
                                                bool tracing);
std::unique_ptr<Runtime::Impl> make_worksteal_impl(u64 uid, int threads,
                                                   bool tracing);

}  // namespace parmvn::rt
