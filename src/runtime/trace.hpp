// Execution trace of a runtime session (one record per task).
#pragma once

#include <string>
#include <vector>

namespace parmvn::rt {

struct TaskRecord {
  std::string name;
  int worker = -1;
  double start_s = 0.0;
  double end_s = 0.0;
  // Work-stealing arm: true when the task ran on a worker other than the
  // one whose deque/inbox it was first placed in (always false on the
  // global-queue arm, which has no task placement).
  bool stolen = false;
};

/// Write records as a Chrome `chrome://tracing` / Perfetto JSON file.
void write_chrome_trace(const std::vector<TaskRecord>& records,
                        const std::string& path);

/// Aggregate per-task-name totals, formatted as an aligned text table.
std::string summarize_trace(const std::vector<TaskRecord>& records);

}  // namespace parmvn::rt
