#include "runtime/trace.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>

#include "common/contracts.hpp"

namespace parmvn::rt {

void write_chrome_trace(const std::vector<TaskRecord>& records,
                        const std::string& path) {
  errno = 0;
  std::ofstream out(path);
  if (!out) {
    // ofstream swallows the reason; errno from the underlying open is the
    // only context available, and "permission denied" vs "no such
    // directory" is exactly what the caller needs to act on.
    throw Error("cannot open trace file: " + path + ": " +
                (errno != 0 ? std::strerror(errno) : "unknown error"));
  }
  out << "[\n";
  bool first = true;
  for (const TaskRecord& r : records) {
    if (!first) out << ",\n";
    first = false;
    out << R"({"name":")" << r.name << R"(","ph":"X","pid":0,"tid":)"
        << r.worker << R"(,"ts":)" << std::fixed << std::setprecision(3)
        << r.start_s * 1e6 << R"(,"dur":)" << (r.end_s - r.start_s) * 1e6
        << R"(,"args":{"stolen":)" << (r.stolen ? "true" : "false") << "}}";
  }
  out << "\n]\n";
  out.flush();
  if (!out) {
    throw Error("trace write failed: " + path + ": " +
                (errno != 0 ? std::strerror(errno) : "unknown error"));
  }
}

std::string summarize_trace(const std::vector<TaskRecord>& records) {
  struct Agg {
    int count = 0;
    int stolen = 0;
    double total_s = 0.0;
  };
  std::map<std::string, Agg> by_name;
  for (const TaskRecord& r : records) {
    Agg& a = by_name[r.name];
    ++a.count;
    if (r.stolen) ++a.stolen;
    a.total_s += r.end_s - r.start_s;
  }
  std::ostringstream os;
  os << std::left << std::setw(24) << "task" << std::right << std::setw(10)
     << "count" << std::setw(10) << "stolen" << std::setw(14) << "total_s"
     << std::setw(14) << "mean_ms" << "\n";
  for (const auto& [name, agg] : by_name) {
    os << std::left << std::setw(24) << name << std::right << std::setw(10)
       << agg.count << std::setw(10) << agg.stolen << std::setw(14)
       << std::fixed << std::setprecision(4) << agg.total_s << std::setw(14)
       << std::setprecision(4)
       << (agg.count > 0 ? 1e3 * agg.total_s / agg.count : 0.0) << "\n";
  }
  return os.str();
}

}  // namespace parmvn::rt
