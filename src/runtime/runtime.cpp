// Runtime facade: uid registry, scheduler-arm selection, and the inline
// (0-worker) implementation. The two threaded scheduler arms live in
// scheduler_worksteal.cpp (default) and scheduler_global.cpp (the frozen
// pre-PR-5 single-lock baseline, PARMVN_SCHED_GLOBAL=1).
#include "runtime/runtime.hpp"

#include <cstdio>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/contracts.hpp"
#include "common/env.hpp"
#include "runtime/runtime_impl.hpp"

namespace parmvn::rt {

namespace {

// Registry of live runtimes keyed by uid, so uid_alive() can answer for
// caches that hold handle-bearing objects across runtime lifetimes, and so
// HandleLease::release() can hand handles back through a uid without ever
// dereferencing a destroyed runtime: ~Runtime erases its entry under the
// same mutex *before* its Impl is destroyed, and the runtime internals
// never take this mutex, so holding it across release_handle() is safe.
std::mutex& uid_registry_mutex() {
  static std::mutex m;
  return m;
}

std::unordered_map<u64, Runtime::Impl*>& uid_registry() {
  static std::unordered_map<u64, Runtime::Impl*> s;
  return s;
}

std::atomic<u64> next_uid{1};

// Process-wide leak tally (see Runtime::total_handles_leaked()): bumped in
// the same uid-registry critical section that skips a non-quiescent slot,
// so it survives the leaking runtime's destruction.
std::atomic<i64> total_leaked{0};

SchedulerKind resolve_kind(SchedulerKind requested) {
  if (requested != SchedulerKind::kDefault) return requested;
  return env_i64("PARMVN_SCHED_GLOBAL", 0) != 0 ? SchedulerKind::kGlobalQueue
                                                : SchedulerKind::kWorkSteal;
}

// Inline mode: tasks execute immediately on submit — submission order is
// always a valid topological order under sequential consistency, so no
// hazard tracking is needed, only handle-table bookkeeping. Single-threaded
// by contract (see runtime.hpp): with tasks running inside submit() on the
// calling thread, concurrent submitters would interleave task bodies
// anyway, so no synchronization is provided here.
class InlineImpl final : public Runtime::Impl {
 public:
  InlineImpl(u64 uid_arg, bool trace_on, SchedulerKind kind_arg)
      : Impl(uid_arg, trace_on, kind_arg) {}

  DataHandle register_handle(std::string debug_name) override {
    i64 id;
    if (!free_ids_.empty()) {
      id = free_ids_.back();
      free_ids_.pop_back();
    } else {
      id = static_cast<i64>(in_use_.size());
      in_use_.push_back(false);
    }
    in_use_[static_cast<std::size_t>(id)] = true;
    (void)debug_name;  // inline mode never traces hazards
    return detail::HandleMint::make(id);
  }

  void release_handle(DataHandle handle) override {
    PARMVN_EXPECTS(handle.valid());
    PARMVN_EXPECTS(handle.id() < static_cast<i64>(in_use_.size()));
    PARMVN_EXPECTS(in_use_[static_cast<std::size_t>(handle.id())]);
    in_use_[static_cast<std::size_t>(handle.id())] = false;
    free_ids_.push_back(handle.id());
  }

  void submit(std::string_view /*name*/, std::span<const DataAccess> accesses,
              std::function<void()> fn, int /*priority*/) override {
    for (const DataAccess& acc : accesses) {
      PARMVN_EXPECTS(acc.handle.valid());
      PARMVN_EXPECTS(acc.handle.id() < static_cast<i64>(in_use_.size()));
      PARMVN_EXPECTS(in_use_[static_cast<std::size_t>(acc.handle.id())]);
    }
    if (!first_error_ && !cancelled_) {
      try {
        fn();
      } catch (...) {
        first_error_ = std::current_exception();
      }
    }
    executed.fetch_add(1, std::memory_order_relaxed);
  }

  void wait_all() override {
    cancelled_ = false;
    if (first_error_) {
      std::exception_ptr err = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(err);
    }
  }

  // Inline mode runs tasks inside submit(), so cancel() from the submitting
  // thread simply turns the remaining submissions into no-ops; cancel()
  // from another thread has no stronger meaning in a single-threaded
  // runtime (see the thread-safety note in runtime.hpp).
  void cancel() override { cancelled_ = true; }
  [[nodiscard]] bool cancel_requested() const noexcept override {
    return cancelled_ || first_error_ != nullptr;
  }

  std::exception_ptr drain_pending_error() noexcept override {
    return first_error_;
  }

  [[nodiscard]] int num_threads() const noexcept override { return 0; }

  [[nodiscard]] const std::vector<TaskRecord>& trace() const override {
    return records_;
  }

 private:
  std::vector<bool> in_use_;
  std::vector<i64> free_ids_;
  std::exception_ptr first_error_;
  bool cancelled_ = false;
  std::vector<TaskRecord> records_;  // inline mode records nothing
};

}  // namespace

Runtime::Runtime(int num_threads, bool enable_trace, SchedulerKind sched) {
  PARMVN_EXPECTS(num_threads >= 0);
  const u64 uid = next_uid.fetch_add(1);
  const SchedulerKind kind = resolve_kind(sched);
  if (num_threads == 0) {
    impl_ = make_inline_impl(uid, enable_trace, kind);
  } else if (kind == SchedulerKind::kGlobalQueue) {
    impl_ = make_global_impl(uid, num_threads, enable_trace);
  } else {
    impl_ = make_worksteal_impl(uid, num_threads, enable_trace);
  }
  // Register only after construction succeeded: a throwing impl constructor
  // must not leave a dead uid marked alive.
  std::unique_lock registry_lock(uid_registry_mutex());
  uid_registry().emplace(uid, impl_.get());
}

Runtime::Runtime() : Runtime(default_num_threads(), false) {}

Runtime::~Runtime() {
  if (!impl_) return;
  const std::exception_ptr pending = impl_->drain_pending_error();
  // A destructor cannot throw, but an epoch error the caller never
  // wait_all()'d for must not vanish silently either: surface it on stderr.
  if (pending) {
    try {
      std::rethrow_exception(pending);
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "[parmvn::rt] Runtime destroyed with an unretrieved task "
                   "error (no wait_all() after the failing submit): %s\n",
                   e.what());
    } catch (...) {
      std::fprintf(stderr,
                   "[parmvn::rt] Runtime destroyed with an unretrieved "
                   "non-std task exception (no wait_all() after the failing "
                   "submit)\n");
    }
  }
  const i64 leaked = impl_->handles_leaked.load(std::memory_order_relaxed);
  if (leaked > 0) {
    std::fprintf(stderr,
                 "[parmvn::rt] Runtime destroyed with %lld leaked handle "
                 "slot(s) (HandleLease released while tasks were in "
                 "flight)\n",
                 static_cast<long long>(leaked));
  }
  {
    std::unique_lock registry_lock(uid_registry_mutex());
    uid_registry().erase(impl_->uid);
  }
}

DataHandle Runtime::register_data(std::string debug_name) {
  return impl_->register_handle(std::move(debug_name));
}

void Runtime::release_data(DataHandle handle) {
  impl_->release_handle(handle);
}

void Runtime::submit(std::string_view name,
                     std::span<const DataAccess> accesses,
                     std::function<void()> fn, int priority) {
  impl_->submit(name, accesses, std::move(fn), priority);
}

void Runtime::wait_all() { impl_->wait_all(); }

std::unique_lock<std::mutex> Runtime::exclusive_epoch() const {
  return std::unique_lock<std::mutex>(impl_->epoch_mu);
}

void Runtime::cancel() { impl_->cancel(); }

bool Runtime::cancel_requested() const noexcept {
  return impl_->cancel_requested();
}

int Runtime::num_threads() const noexcept { return impl_->num_threads(); }

SchedulerKind Runtime::scheduler() const noexcept { return impl_->kind; }

u64 Runtime::uid() const noexcept { return impl_->uid; }

bool Runtime::uid_alive(u64 uid) {
  std::unique_lock registry_lock(uid_registry_mutex());
  return uid_registry().count(uid) != 0;
}

DataHandle HandleLease::acquire(Runtime& rt, std::string debug_name) {
  PARMVN_EXPECTS(uid_ != 0);
  PARMVN_EXPECTS(rt.uid() == uid_);
  const DataHandle h = rt.register_data(std::move(debug_name));
  handles_.push_back(h);
  return h;
}

void HandleLease::release() noexcept {
  if (handles_.empty()) return;
  std::unique_lock registry_lock(uid_registry_mutex());
  const auto it = uid_registry().find(uid_);
  if (it != uid_registry().end()) {
    for (const DataHandle h : handles_) {
      // A non-quiescent handle (in-flight task references) fails its
      // release preconditions; skip it — one leaked slot beats throwing
      // from a destructor — but count it, so the leak is observable
      // (Runtime::handles_leaked(), stderr warning at destruction) instead
      // of silent.
      try {
        it->second->release_handle(h);
      } catch (...) {
        it->second->handles_leaked.fetch_add(1, std::memory_order_relaxed);
        total_leaked.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  handles_.clear();
}

i64 Runtime::tasks_executed() const noexcept {
  return impl_->executed.load(std::memory_order_relaxed);
}

i64 Runtime::tasks_stolen() const noexcept { return impl_->tasks_stolen(); }

i64 Runtime::handles_leaked() const noexcept {
  return impl_->handles_leaked.load(std::memory_order_relaxed);
}

i64 Runtime::total_handles_leaked() noexcept {
  return total_leaked.load(std::memory_order_relaxed);
}

// Shared by every arm's record-append guard: first failure downgrades
// tracing (workers check trace_enabled()) and warns once — a trace is a
// diagnostic artifact, never worth failing the computation for.
void Runtime::Impl::trace_record_failed() noexcept {
  if (trace_ok.exchange(false, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "[parmvn::rt] trace record append failed; tracing disabled "
                 "for the rest of this runtime's life\n");
  }
}

const std::vector<TaskRecord>& Runtime::trace() const {
  return impl_->trace();
}

std::unique_ptr<Runtime::Impl> make_inline_impl(u64 uid, bool tracing,
                                                SchedulerKind kind) {
  return std::make_unique<InlineImpl>(uid, tracing, kind);
}

}  // namespace parmvn::rt
