#include "runtime/runtime.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <exception>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_set>

#include "common/contracts.hpp"
#include "common/env.hpp"
#include "common/timer.hpp"

namespace parmvn::rt {

namespace {

enum class TaskState { kWaiting, kReady, kRunning, kDone };

struct TaskNode {
  std::string name;
  std::function<void()> fn;
  int priority = 0;
  i64 seq = 0;  // submission order; FIFO tie-break in the ready queue
  i64 unmet = 0;
  TaskState state = TaskState::kWaiting;
  std::vector<TaskNode*> successors;
};

struct ReadyOrder {
  bool operator()(const TaskNode* a, const TaskNode* b) const {
    if (a->priority != b->priority) return a->priority < b->priority;
    return a->seq > b->seq;  // earlier submission first
  }
};

struct HandleState {
  TaskNode* last_writer = nullptr;
  std::vector<TaskNode*> readers_since_write;
  std::string debug_name;
  bool in_use = false;  // guards double-release / use-after-release
};

// Registry of live runtime uids, so uid_alive() can answer for caches that
// hold handle-bearing objects across runtime lifetimes.
std::mutex& uid_registry_mutex() {
  static std::mutex m;
  return m;
}

std::unordered_set<u64>& uid_registry() {
  static std::unordered_set<u64> s;
  return s;
}

}  // namespace

struct Runtime::Impl {
  inline static std::atomic<u64> next_uid{1};

  explicit Impl(int threads, bool trace_on)
      : uid(next_uid.fetch_add(1)), inline_mode(threads == 0),
        tracing(trace_on) {
    {
      std::unique_lock registry_lock(uid_registry_mutex());
      uid_registry().insert(uid);
    }
    if (!inline_mode) {
      workers.reserve(static_cast<std::size_t>(threads));
      for (int w = 0; w < threads; ++w) {
        workers.emplace_back([this, w] { worker_loop(w); });
      }
    }
  }

  ~Impl() {
    {
      std::unique_lock lock(mutex);
      shutting_down = true;
    }
    ready_cv.notify_all();
    for (std::thread& t : workers) t.join();
    std::unique_lock registry_lock(uid_registry_mutex());
    uid_registry().erase(uid);
  }

  // ---- submission path (main thread) ----
  DataHandle register_handle(std::string debug_name) {
    std::unique_lock lock(mutex);
    i64 id;
    if (!free_ids.empty()) {
      id = free_ids.back();
      free_ids.pop_back();
    } else {
      id = static_cast<i64>(handles.size());
      handles.push_back(HandleState{});
    }
    HandleState& hs = handles[static_cast<std::size_t>(id)];
    hs.debug_name = std::move(debug_name);
    hs.in_use = true;
    return DataHandle(id);
  }

  void release_handle(DataHandle handle) {
    std::unique_lock lock(mutex);
    PARMVN_EXPECTS(handle.valid());
    PARMVN_EXPECTS(handle.id() < static_cast<i64>(handles.size()));
    HandleState& hs = handles[static_cast<std::size_t>(handle.id())];
    PARMVN_EXPECTS(hs.in_use);
    // Releasing a handle the current epoch still references would let a
    // recycled slot's tasks miss their dependency edges against in-flight
    // work: reject it here instead of racing later (wait_all() clears these
    // on epoch completion).
    PARMVN_EXPECTS(hs.last_writer == nullptr &&
                   hs.readers_since_write.empty());
    hs = HandleState{};
    free_ids.push_back(handle.id());
  }

  void submit(std::string_view name, std::span<const DataAccess> accesses,
              std::function<void()> fn, int priority) {
    if (inline_mode) {
      // Handles are only ever registered from the submitting thread, so the
      // validation can read `handles` without the lock in inline mode.
      for (const DataAccess& acc : accesses) {
        PARMVN_EXPECTS(acc.handle.valid());
        PARMVN_EXPECTS(acc.handle.id() < static_cast<i64>(handles.size()));
        PARMVN_EXPECTS(
            handles[static_cast<std::size_t>(acc.handle.id())].in_use);
      }
      // Submission order is a topological order under sequential
      // consistency, so inline execution is always legal.
      if (!first_error) {
        try {
          fn();
        } catch (...) {
          first_error = std::current_exception();
        }
      }
      ++executed;
      return;
    }

    // The task node is heap-allocated up front; the name is only stored when
    // tracing asked for it, and the access list is consumed in place — the
    // submit path performs no other per-task allocation.
    auto node = std::make_unique<TaskNode>();
    if (tracing) node->name.assign(name);
    node->fn = std::move(fn);
    node->priority = priority;
    TaskNode* task = node.get();

    std::unique_lock lock(mutex);
    // Validate under the same lock acquisition as the bookkeeping (one lock
    // round-trip per submit); rejected submissions leave no phantom task
    // behind because nothing below has run yet. The in_use check catches
    // tasks submitted with a handle that was released (and possibly already
    // recycled to another owner).
    for (const DataAccess& acc : accesses) {
      PARMVN_EXPECTS(acc.handle.valid());
      PARMVN_EXPECTS(acc.handle.id() < static_cast<i64>(handles.size()));
      PARMVN_EXPECTS(
          handles[static_cast<std::size_t>(acc.handle.id())].in_use);
    }
    task->seq = next_seq++;
    ++in_flight;
    all_tasks.push_back(std::move(node));

    auto add_dep = [&](TaskNode* dep) {
      if (dep == nullptr || dep == task || dep->state == TaskState::kDone)
        return;
      dep->successors.push_back(task);
      ++task->unmet;
    };

    for (const DataAccess& acc : accesses) {
      HandleState& hs = handles[static_cast<std::size_t>(acc.handle.id())];
      switch (acc.mode) {
        case Access::kRead:
          add_dep(hs.last_writer);
          hs.readers_since_write.push_back(task);
          break;
        case Access::kWrite:
        case Access::kReadWrite:
          add_dep(hs.last_writer);
          for (TaskNode* r : hs.readers_since_write) add_dep(r);
          hs.readers_since_write.clear();
          hs.last_writer = task;
          break;
      }
    }

    if (task->unmet == 0) {
      task->state = TaskState::kReady;
      ready.push(task);
      lock.unlock();
      ready_cv.notify_one();
    }
  }

  void wait_all() {
    if (inline_mode) {
      finish_epoch();
      return;
    }
    std::unique_lock lock(mutex);
    done_cv.wait(lock, [this] { return in_flight == 0; });
    lock.unlock();
    finish_epoch();
  }

  void finish_epoch() {
    std::unique_lock lock(mutex);
    all_tasks.clear();
    for (HandleState& hs : handles) {
      hs.last_writer = nullptr;
      hs.readers_since_write.clear();
    }
    if (first_error) {
      std::exception_ptr err = first_error;
      first_error = nullptr;
      cancelled = false;
      lock.unlock();
      std::rethrow_exception(err);
    }
    cancelled = false;
  }

  // ---- worker path ----
  void worker_loop(int worker_id) {
    std::unique_lock lock(mutex);
    for (;;) {
      ready_cv.wait(lock, [this] { return shutting_down || !ready.empty(); });
      if (ready.empty()) {
        if (shutting_down) return;
        continue;
      }
      TaskNode* task = ready.top();
      ready.pop();
      task->state = TaskState::kRunning;
      const bool skip = cancelled;
      lock.unlock();

      const double t0 = tracing ? global_time_s() : 0.0;
      std::exception_ptr err;
      if (!skip) {
        try {
          task->fn();
        } catch (...) {
          err = std::current_exception();
        }
      }
      const double t1 = tracing ? global_time_s() : 0.0;

      lock.lock();
      if (tracing) records.push_back({task->name, worker_id, t0, t1});
      if (err && !first_error) {
        first_error = err;
        cancelled = true;  // not-yet-started tasks become no-ops
      }
      task->state = TaskState::kDone;
      ++executed;
      bool notify_ready = false;
      for (TaskNode* succ : task->successors) {
        if (--succ->unmet == 0) {
          succ->state = TaskState::kReady;
          ready.push(succ);
          notify_ready = true;
        }
      }
      --in_flight;
      if (in_flight == 0) done_cv.notify_all();
      if (notify_ready) ready_cv.notify_all();
    }
  }

  // All mutable state below is guarded by `mutex` (single-lock design: tasks
  // are >= tens of microseconds, so lock traffic is noise).
  std::mutex mutex;
  std::condition_variable ready_cv;
  std::condition_variable done_cv;
  std::vector<HandleState> handles;
  std::vector<i64> free_ids;  // released slots, reused by register_handle
  std::deque<std::unique_ptr<TaskNode>> all_tasks;
  std::priority_queue<TaskNode*, std::vector<TaskNode*>, ReadyOrder> ready;
  std::vector<std::thread> workers;
  std::vector<TaskRecord> records;
  std::exception_ptr first_error;
  const u64 uid;
  i64 next_seq = 0;
  i64 in_flight = 0;
  std::atomic<i64> executed{0};
  bool shutting_down = false;
  bool cancelled = false;
  bool inline_mode = false;
  bool tracing = false;
};

Runtime::Runtime(int num_threads, bool enable_trace)
    : impl_(std::make_unique<Impl>(num_threads, enable_trace)) {
  PARMVN_EXPECTS(num_threads >= 0);
}

Runtime::Runtime() : Runtime(default_num_threads(), false) {}

Runtime::~Runtime() {
  if (!impl_) return;
  std::exception_ptr pending;
  if (impl_->inline_mode) {
    pending = impl_->first_error;
  } else {
    std::unique_lock lock(impl_->mutex);
    impl_->done_cv.wait(lock, [this] { return impl_->in_flight == 0; });
    pending = impl_->first_error;
  }
  // A destructor cannot throw, but an epoch error the caller never
  // wait_all()'d for must not vanish silently either: surface it on stderr.
  if (pending) {
    try {
      std::rethrow_exception(pending);
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "[parmvn::rt] Runtime destroyed with an unretrieved task "
                   "error (no wait_all() after the failing submit): %s\n",
                   e.what());
    } catch (...) {
      std::fprintf(stderr,
                   "[parmvn::rt] Runtime destroyed with an unretrieved "
                   "non-std task exception (no wait_all() after the failing "
                   "submit)\n");
    }
  }
}

DataHandle Runtime::register_data(std::string debug_name) {
  return impl_->register_handle(std::move(debug_name));
}

void Runtime::release_data(DataHandle handle) {
  impl_->release_handle(handle);
}

void Runtime::submit(std::string_view name,
                     std::span<const DataAccess> accesses,
                     std::function<void()> fn, int priority) {
  impl_->submit(name, accesses, std::move(fn), priority);
}

void Runtime::wait_all() { impl_->wait_all(); }

int Runtime::num_threads() const noexcept {
  return impl_->inline_mode ? 0 : static_cast<int>(impl_->workers.size());
}

u64 Runtime::uid() const noexcept { return impl_->uid; }

bool Runtime::uid_alive(u64 uid) {
  std::unique_lock registry_lock(uid_registry_mutex());
  return uid_registry().count(uid) != 0;
}

i64 Runtime::tasks_executed() const noexcept { return impl_->executed.load(); }

const std::vector<TaskRecord>& Runtime::trace() const {
  return impl_->records;
}

}  // namespace parmvn::rt
