// Task-based runtime with data-driven dependency inference — the library's
// StarPU substitute.
//
// Usage mirrors StarPU's sequential-consistency model:
//
//   rt::Runtime rt(8);
//   auto hA = rt.register_data("A00");
//   auto hB = rt.register_data("B00");
//   rt.submit("potrf", {{hA, rt::Access::kReadWrite}}, [&]{ ... });
//   rt.submit("trsm",  {{hA, rt::Access::kRead}, {hB, rt::Access::kReadWrite}},
//             [&]{ ... });
//   rt.wait_all();
//
// Tasks behave *as if* executed in submission order with respect to every
// data handle (RAW, WAR and WAW hazards ordered); independent tasks run
// concurrently on the worker pool. Priorities (see runtime/priority.hpp for
// the named ladder) steer which ready task runs first.
//
// Two scheduler arms share this API (selected per Runtime, default via the
// PARMVN_SCHED_GLOBAL environment variable):
//
//  * SchedulerKind::kWorkSteal (default) — per-worker Chase–Lev deques, one
//    per priority lane. Task completion decrements successor dependency
//    counts on atomics and pushes newly ready tasks to the completing
//    worker's own deque (or, when the task's first ReadWrite handle was
//    last written by another worker, to that worker's inbox — tile-owner
//    affinity). Idle workers steal oldest-first from victims scanned
//    round-robin, highest priority lane first. submit()'s hazard
//    bookkeeping runs under sharded handle locks, so neither submission
//    nor completion ever takes a runtime-wide lock.
//  * SchedulerKind::kGlobalQueue — the pre-PR-5 single-mutex design (one
//    priority queue, one lock around all state), kept as the A/B baseline
//    for bench_scheduler and as a bisection aid. Set PARMVN_SCHED_GLOBAL=1
//    to make it the default for Runtimes constructed with kDefault.
//
// Both arms keep the same contracts: bitwise-deterministic results across
// worker counts (scheduling never reorders any data dependency), first-
// exception cancellation, release_data() recycling, trace records, and
// inline mode (0 workers).
//
// Thread-safety (threaded arms): submit(), register_data() and
// release_data() may be called from any thread, concurrently. wait_all()
// must not race with submit() on the same runtime (an epoch boundary
// concurrent with submission has no meaningful semantics); host threads
// that share a Runtime serialise their submit…wait_all phases through
// exclusive_epoch() — the engine's factor/evaluate entry points do so
// automatically, so concurrent engine-level callers need no external
// fencing. Inline
// mode (0 workers) is single-threaded by construction: tasks run inside
// submit() on the calling thread, and all calls must come from one thread
// at a time.
//
// Error model: the first exception thrown by a task cancels all
// not-yet-started tasks; wait_all() rethrows it.
#pragma once

#include <functional>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "runtime/access.hpp"
#include "runtime/trace.hpp"

namespace parmvn::rt {

/// Which scheduler implementation a Runtime uses. kDefault resolves to
/// kGlobalQueue when the PARMVN_SCHED_GLOBAL environment variable is set to
/// a non-zero value, else kWorkSteal.
enum class SchedulerKind {
  kDefault,
  kWorkSteal,
  kGlobalQueue,
};

class Runtime {
 public:
  /// @param num_threads worker threads; 0 = inline mode (tasks execute
  ///        immediately on submit — submission order is always a valid
  ///        topological order under sequential consistency).
  /// @param enable_trace record per-task timing (see trace()).
  /// @param sched scheduler arm; kDefault consults PARMVN_SCHED_GLOBAL.
  explicit Runtime(int num_threads, bool enable_trace = false,
                   SchedulerKind sched = SchedulerKind::kDefault);
  Runtime();  // default_num_threads() workers

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Drains remaining work (ignoring task errors) and joins workers.
  ~Runtime();

  /// Register a unit of data for dependency tracking.
  [[nodiscard]] DataHandle register_data(std::string debug_name = {});

  /// Return a handle's slot to the runtime for reuse by a future
  /// register_data(). Callers that register transient per-round data (e.g.
  /// the engine's sample panels) must release it, or a long-lived runtime's
  /// handle table grows without bound. Only legal when no in-flight task
  /// references the handle (wait_all() first); the handle value is recycled,
  /// so any further use of it is a bug.
  void release_data(DataHandle handle);

  /// Submit a task. `accesses` lists every handle the task touches; it is
  /// consumed during the call (never stored), so fine-grained graphs pay no
  /// per-task access-list copy. The name is only materialised when tracing
  /// is enabled. `priority` follows the ladder in runtime/priority.hpp
  /// (any int is legal; the work-stealing arm clamps it into its lanes).
  void submit(std::string_view name, std::span<const DataAccess> accesses,
              std::function<void()> fn, int priority = 0);
  void submit(std::string_view name,
              std::initializer_list<DataAccess> accesses,
              std::function<void()> fn, int priority = 0) {
    submit(name, std::span<const DataAccess>(accesses.begin(), accesses.size()),
           std::move(fn), priority);
  }

  /// Block until all submitted tasks completed; rethrows the first task
  /// exception if any. Afterwards the runtime is reusable.
  void wait_all();

  /// Serialise a whole submit…wait_all phase against other host threads
  /// sharing this runtime: hold the returned lock for the duration of the
  /// phase and concurrent phases queue up instead of racing submit()
  /// against wait_all() (which has no meaningful semantics — see the
  /// thread-safety note above). The engine's epoch-shaped entry points
  /// (CholeskyFactor::factor*, PmvnEngine::evaluate) take this lock
  /// themselves, so concurrent detect_confidence_regions callers — and the
  /// serving layer — can share one Runtime + FactorCache without external
  /// fencing; raw submit()/wait_all() callers must still take it (or fence
  /// some other way) when they share a runtime across threads.
  [[nodiscard]] std::unique_lock<std::mutex> exclusive_epoch() const;

  /// Cooperatively cancel the current epoch from any thread: every
  /// not-yet-started task becomes a no-op (exactly the first-error
  /// cancellation plumbing — tasks already running finish normally), so a
  /// pending wait_all() returns promptly instead of draining the remaining
  /// work. Unlike a task error, cancellation is not itself reported:
  /// wait_all() returns normally (still rethrowing a task error if one
  /// happened first) and clears the flag, leaving the runtime reusable.
  /// Tasks that want to stop mid-body can poll cancel_requested().
  void cancel();

  /// Whether the current epoch is cancelling — set by cancel() or by the
  /// first task error; cleared at the wait_all() epoch boundary.
  [[nodiscard]] bool cancel_requested() const noexcept;

  [[nodiscard]] int num_threads() const noexcept;

  /// The scheduler arm this runtime resolved to at construction (kDefault
  /// is resolved; inline-mode runtimes report the arm they would have used
  /// with workers).
  [[nodiscard]] SchedulerKind scheduler() const noexcept;

  /// Process-unique id of this runtime instance (monotonic, never reused).
  /// Data handles are only meaningful within the runtime that registered
  /// them; caches that hold handle-bearing objects across calls key on this
  /// id — unlike the object address, it cannot alias a destroyed runtime.
  [[nodiscard]] u64 uid() const noexcept;

  /// Whether the runtime with this uid is still alive. Lets caches purge
  /// entries bound to destroyed runtimes (their handles can never be used
  /// again, so such entries only pin memory).
  [[nodiscard]] static bool uid_alive(u64 uid);

  /// Total tasks executed since construction.
  [[nodiscard]] i64 tasks_executed() const noexcept;

  /// Tasks executed by a worker other than the one whose deque/inbox they
  /// were first placed in (work-stealing arm only; 0 elsewhere).
  [[nodiscard]] i64 tasks_stolen() const noexcept;

  /// Handle slots this runtime could not reclaim because a
  /// HandleLease::release() found them non-quiescent (an in-flight task
  /// still referenced them — a caller bug; the lease skips the slot rather
  /// than throw from a destructor). A healthy program keeps this at zero;
  /// the destructor warns on stderr otherwise.
  [[nodiscard]] i64 handles_leaked() const noexcept;

  /// Process-wide sum of handles_leaked() over every runtime ever
  /// constructed — lets test suites assert zero leaks at the end without
  /// keeping each runtime alive.
  [[nodiscard]] static i64 total_handles_leaked() noexcept;

  /// Timing records (only populated when enable_trace was set); stable to
  /// read after wait_all().
  [[nodiscard]] const std::vector<TaskRecord>& trace() const;

  /// Internal scheduler interface (see runtime/runtime_impl.hpp); publicly
  /// *named* so the scheduler translation units can derive from it, but
  /// defined only in the internal header.
  struct Impl;

 private:
  friend class HandleLease;
  std::unique_ptr<Impl> impl_;
};

/// Move-only RAII lease over a set of data handles, safe under shared
/// ownership that may outlive the runtime: the lease records the owning
/// runtime's uid at construction and, on destruction (or release()), hands
/// every held handle back *only if* that runtime is still alive — resolved
/// through the same registry that backs Runtime::uid_alive(), under its
/// lock, so the release can never race with the runtime's destruction.
/// This is what lets long-lived handle-bearing objects (factor tiles held
/// by a FactorCache, shared across shared_ptr owners) return their handle
/// slots instead of pinning them forever.
///
/// Handles acquired through the lease are normal handles: use them in
/// submit() as usual, but do not release_data() them manually, and only let
/// the lease die when the handles are quiescent (no in-flight task
/// references, i.e. after a wait_all() epoch boundary — the natural state
/// for anything whose tasks have completed).
class HandleLease {
 public:
  HandleLease() = default;
  explicit HandleLease(const Runtime& rt) : uid_(rt.uid()) {}
  HandleLease(HandleLease&& other) noexcept
      : uid_(other.uid_), handles_(std::move(other.handles_)) {
    other.handles_.clear();
  }
  HandleLease& operator=(HandleLease&& other) noexcept {
    if (this != &other) {
      release();
      uid_ = other.uid_;
      handles_ = std::move(other.handles_);
      other.handles_.clear();
    }
    return *this;
  }
  HandleLease(const HandleLease&) = delete;
  HandleLease& operator=(const HandleLease&) = delete;
  ~HandleLease() { release(); }

  /// Register a handle with `rt` (which must be the runtime the lease was
  /// bound to) and record it for release.
  [[nodiscard]] DataHandle acquire(Runtime& rt, std::string debug_name = {});

  /// Return every held handle to the owning runtime if it is still alive;
  /// idempotent, never throws (a handle that is not quiescent is skipped —
  /// leaking one slot beats crashing a destructor — and the owning runtime
  /// counts it in Runtime::handles_leaked()).
  void release() noexcept;

  [[nodiscard]] u64 runtime_uid() const noexcept { return uid_; }
  [[nodiscard]] std::size_t size() const noexcept { return handles_.size(); }

 private:
  u64 uid_ = 0;
  std::vector<DataHandle> handles_;
};

}  // namespace parmvn::rt
