// Task-based runtime with data-driven dependency inference — the library's
// StarPU substitute.
//
// Usage mirrors StarPU's sequential-consistency model:
//
//   rt::Runtime rt(8);
//   auto hA = rt.register_data("A00");
//   auto hB = rt.register_data("B00");
//   rt.submit("potrf", {{hA, rt::Access::kReadWrite}}, [&]{ ... });
//   rt.submit("trsm",  {{hA, rt::Access::kRead}, {hB, rt::Access::kReadWrite}},
//             [&]{ ... });
//   rt.wait_all();
//
// Tasks behave *as if* executed in submission order with respect to every
// data handle (RAW, WAR and WAW hazards ordered); independent tasks run
// concurrently on the worker pool. Priorities break ties in the ready queue
// (critical-path tasks such as POTRF get high priority, like Chameleon's
// priority hints to StarPU).
//
// Error model: the first exception thrown by a task cancels all
// not-yet-started tasks; wait_all() rethrows it.
#pragma once

#include <functional>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "common/types.hpp"
#include "runtime/access.hpp"
#include "runtime/trace.hpp"

namespace parmvn::rt {

class Runtime {
 public:
  /// @param num_threads worker threads; 0 = inline mode (tasks execute
  ///        immediately on submit — submission order is always a valid
  ///        topological order under sequential consistency).
  /// @param enable_trace record per-task timing (see trace()).
  explicit Runtime(int num_threads, bool enable_trace = false);
  Runtime();  // default_num_threads() workers

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Drains remaining work (ignoring task errors) and joins workers.
  ~Runtime();

  /// Register a unit of data for dependency tracking.
  [[nodiscard]] DataHandle register_data(std::string debug_name = {});

  /// Return a handle's slot to the runtime for reuse by a future
  /// register_data(). Callers that register transient per-round data (e.g.
  /// the engine's sample panels) must release it, or a long-lived runtime's
  /// handle table grows without bound. Only legal when no in-flight task
  /// references the handle (wait_all() first); the handle value is recycled,
  /// so any further use of it is a bug.
  void release_data(DataHandle handle);

  /// Submit a task. `accesses` lists every handle the task touches; it is
  /// consumed during the call (never stored), so fine-grained graphs pay no
  /// per-task access-list copy. The name is only materialised when tracing
  /// is enabled.
  void submit(std::string_view name, std::span<const DataAccess> accesses,
              std::function<void()> fn, int priority = 0);
  void submit(std::string_view name,
              std::initializer_list<DataAccess> accesses,
              std::function<void()> fn, int priority = 0) {
    submit(name, std::span<const DataAccess>(accesses.begin(), accesses.size()),
           std::move(fn), priority);
  }

  /// Block until all submitted tasks completed; rethrows the first task
  /// exception if any. Afterwards the runtime is reusable.
  void wait_all();

  [[nodiscard]] int num_threads() const noexcept;

  /// Process-unique id of this runtime instance (monotonic, never reused).
  /// Data handles are only meaningful within the runtime that registered
  /// them; caches that hold handle-bearing objects across calls key on this
  /// id — unlike the object address, it cannot alias a destroyed runtime.
  [[nodiscard]] u64 uid() const noexcept;

  /// Whether the runtime with this uid is still alive. Lets caches purge
  /// entries bound to destroyed runtimes (their handles can never be used
  /// again, so such entries only pin memory).
  [[nodiscard]] static bool uid_alive(u64 uid);

  /// Total tasks executed since construction.
  [[nodiscard]] i64 tasks_executed() const noexcept;

  /// Timing records (only populated when enable_trace was set); stable to
  /// read after wait_all().
  [[nodiscard]] const std::vector<TaskRecord>& trace() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace parmvn::rt
