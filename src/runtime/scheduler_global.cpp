// The pre-PR-5 single-lock scheduler, frozen as the A/B baseline arm
// (SchedulerKind::kGlobalQueue, or PARMVN_SCHED_GLOBAL=1 for Runtimes
// constructed with kDefault).
//
// Design: every piece of mutable state — the handle table, the task graph,
// the ready priority queue — lives under one mutex; workers take that lock
// to pop a task and again to record its completion. Simple and correct, but
// at fine task granularity (nb = 64 tiles, engine sweep rounds) the lock —
// not the kernels — bounds strong scaling, which is exactly what
// bench_scheduler measures against the work-stealing arm. Do not "improve"
// this file; it is the experiment control.
#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/contracts.hpp"
#include "common/fault.hpp"
#include "common/timer.hpp"
#include "runtime/runtime_impl.hpp"

namespace parmvn::rt {

namespace {

enum class TaskState { kWaiting, kReady, kRunning, kDone };

struct TaskNode {
  std::string name;
  std::function<void()> fn;
  int priority = 0;
  i64 seq = 0;  // submission order; FIFO tie-break in the ready queue
  i64 unmet = 0;
  TaskState state = TaskState::kWaiting;
  std::vector<TaskNode*> successors;
};

struct ReadyOrder {
  bool operator()(const TaskNode* a, const TaskNode* b) const {
    if (a->priority != b->priority) return a->priority < b->priority;
    return a->seq > b->seq;  // earlier submission first
  }
};

struct HandleState {
  TaskNode* last_writer = nullptr;
  std::vector<TaskNode*> readers_since_write;
  std::string debug_name;
  bool in_use = false;  // guards double-release / use-after-release
};

class GlobalImpl final : public Runtime::Impl {
 public:
  GlobalImpl(u64 uid_arg, int threads, bool trace_on)
      : Impl(uid_arg, trace_on, SchedulerKind::kGlobalQueue) {
    PARMVN_EXPECTS(threads >= 1);
    workers.reserve(static_cast<std::size_t>(threads));
    for (int w = 0; w < threads; ++w) {
      workers.emplace_back([this, w] { worker_loop(w); });
    }
  }

  ~GlobalImpl() override {
    {
      std::unique_lock lock(mutex);
      shutting_down = true;
    }
    ready_cv.notify_all();
    for (std::thread& t : workers) t.join();
  }

  // ---- submission path (submitter threads) ----
  DataHandle register_handle(std::string debug_name) override {
    std::unique_lock lock(mutex);
    i64 id;
    if (!free_ids.empty()) {
      id = free_ids.back();
      free_ids.pop_back();
    } else {
      id = static_cast<i64>(handles.size());
      handles.push_back(HandleState{});
    }
    HandleState& hs = handles[static_cast<std::size_t>(id)];
    hs.debug_name = std::move(debug_name);
    hs.in_use = true;
    return detail::HandleMint::make(id);
  }

  void release_handle(DataHandle handle) override {
    std::unique_lock lock(mutex);
    PARMVN_EXPECTS(handle.valid());
    PARMVN_EXPECTS(handle.id() < static_cast<i64>(handles.size()));
    HandleState& hs = handles[static_cast<std::size_t>(handle.id())];
    PARMVN_EXPECTS(hs.in_use);
    // Releasing a handle the current epoch still references would let a
    // recycled slot's tasks miss their dependency edges against in-flight
    // work: reject it here instead of racing later (wait_all() clears these
    // on epoch completion).
    PARMVN_EXPECTS(hs.last_writer == nullptr &&
                   hs.readers_since_write.empty());
    hs = HandleState{};
    free_ids.push_back(handle.id());
  }

  void submit(std::string_view name, std::span<const DataAccess> accesses,
              std::function<void()> fn, int priority) override {
    // The task node is heap-allocated up front; the name is only stored when
    // tracing asked for it, and the access list is consumed in place — the
    // submit path performs no other per-task allocation.
    auto node = std::make_unique<TaskNode>();
    if (tracing) node->name.assign(name);
    node->fn = std::move(fn);
    node->priority = priority;
    TaskNode* task = node.get();

    std::unique_lock lock(mutex);
    // Validate under the same lock acquisition as the bookkeeping (one lock
    // round-trip per submit); rejected submissions leave no phantom task
    // behind because nothing below has run yet. The in_use check catches
    // tasks submitted with a handle that was released (and possibly already
    // recycled to another owner).
    for (const DataAccess& acc : accesses) {
      PARMVN_EXPECTS(acc.handle.valid());
      PARMVN_EXPECTS(acc.handle.id() < static_cast<i64>(handles.size()));
      PARMVN_EXPECTS(
          handles[static_cast<std::size_t>(acc.handle.id())].in_use);
    }
    task->seq = next_seq++;
    ++in_flight;
    all_tasks.push_back(std::move(node));

    auto add_dep = [&](TaskNode* dep) {
      if (dep == nullptr || dep == task || dep->state == TaskState::kDone)
        return;
      dep->successors.push_back(task);
      ++task->unmet;
    };

    for (const DataAccess& acc : accesses) {
      HandleState& hs = handles[static_cast<std::size_t>(acc.handle.id())];
      switch (acc.mode) {
        case Access::kRead:
          add_dep(hs.last_writer);
          hs.readers_since_write.push_back(task);
          break;
        case Access::kWrite:
        case Access::kReadWrite:
          add_dep(hs.last_writer);
          for (TaskNode* r : hs.readers_since_write) add_dep(r);
          hs.readers_since_write.clear();
          hs.last_writer = task;
          break;
      }
    }

    if (task->unmet == 0) {
      task->state = TaskState::kReady;
      ready.push(task);
      lock.unlock();
      ready_cv.notify_one();
    }
  }

  void wait_all() override {
    std::unique_lock lock(mutex);
    done_cv.wait(lock, [this] { return in_flight == 0; });
    lock.unlock();
    finish_epoch();
  }

  // External cancel token: sets the same flag a first task error does
  // (not-yet-started tasks become no-ops) without recording an error, so a
  // pending wait_all() drains and returns normally; finish_epoch clears it.
  void cancel() override {
    std::unique_lock lock(mutex);
    cancelled = true;
  }

  [[nodiscard]] bool cancel_requested() const noexcept override {
    std::unique_lock lock(mutex);
    return cancelled;
  }

  std::exception_ptr drain_pending_error() noexcept override {
    std::unique_lock lock(mutex);
    done_cv.wait(lock, [this] { return in_flight == 0; });
    return first_error;
  }

  [[nodiscard]] int num_threads() const noexcept override {
    return static_cast<int>(workers.size());
  }

  [[nodiscard]] const std::vector<TaskRecord>& trace() const override {
    return records;
  }

 private:
  void finish_epoch() {
    std::unique_lock lock(mutex);
    all_tasks.clear();
    for (HandleState& hs : handles) {
      hs.last_writer = nullptr;
      hs.readers_since_write.clear();
    }
    if (first_error) {
      std::exception_ptr err = first_error;
      first_error = nullptr;
      cancelled = false;
      lock.unlock();
      std::rethrow_exception(err);
    }
    cancelled = false;
  }

  // ---- worker path ----
  void worker_loop(int worker_id) {
    std::unique_lock lock(mutex);
    for (;;) {
      ready_cv.wait(lock, [this] { return shutting_down || !ready.empty(); });
      if (ready.empty()) {
        if (shutting_down) return;
        continue;
      }
      TaskNode* task = ready.top();
      ready.pop();
      task->state = TaskState::kRunning;
      const bool skip = cancelled;
      lock.unlock();

      const bool rec = trace_enabled();
      const double t0 = rec ? global_time_s() : 0.0;
      std::exception_ptr err;
      if (!skip) {
        try {
          task->fn();
        } catch (...) {
          err = std::current_exception();
        }
      }
      const double t1 = rec ? global_time_s() : 0.0;

      lock.lock();
      if (rec) {
        // Never let a record-append failure escape the worker loop (it
        // would terminate) or masquerade as a task error: downgrade
        // tracing instead. Same policy as the work-stealing arm.
        try {
          PARMVN_FAULT_POINT("rt.trace");
          records.push_back({task->name, worker_id, t0, t1,
                             /*stolen=*/false});
        } catch (...) {
          trace_record_failed();
        }
      }
      if (err && !first_error) {
        first_error = err;
        cancelled = true;  // not-yet-started tasks become no-ops
      }
      task->state = TaskState::kDone;
      executed.fetch_add(1, std::memory_order_relaxed);
      bool notify_ready = false;
      for (TaskNode* succ : task->successors) {
        if (--succ->unmet == 0) {
          succ->state = TaskState::kReady;
          ready.push(succ);
          notify_ready = true;
        }
      }
      --in_flight;
      if (in_flight == 0) done_cv.notify_all();
      if (notify_ready) ready_cv.notify_all();
    }
  }

  // All mutable state below is guarded by `mutex` — the single-lock design
  // this arm exists to preserve (mutable so the const cancel_requested()
  // probe can take it).
  mutable std::mutex mutex;
  std::condition_variable ready_cv;
  std::condition_variable done_cv;
  std::vector<HandleState> handles;
  std::vector<i64> free_ids;  // released slots, reused by register_handle
  std::deque<std::unique_ptr<TaskNode>> all_tasks;
  std::priority_queue<TaskNode*, std::vector<TaskNode*>, ReadyOrder> ready;
  std::vector<std::thread> workers;
  std::vector<TaskRecord> records;
  std::exception_ptr first_error;
  i64 next_seq = 0;
  i64 in_flight = 0;
  bool shutting_down = false;
  bool cancelled = false;
};

}  // namespace

std::unique_ptr<Runtime::Impl> make_global_impl(u64 uid, int threads,
                                                bool tracing) {
  return std::make_unique<GlobalImpl>(uid, threads, tracing);
}

}  // namespace parmvn::rt
