#include "vecchia/ordering.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <utility>

#include "common/contracts.hpp"

namespace parmvn::vecchia {

namespace {

constexpr i64 kExactMaxminCutoff = 4096;

struct BBox {
  double xmin = std::numeric_limits<double>::infinity();
  double ymin = std::numeric_limits<double>::infinity();
  double xmax = -std::numeric_limits<double>::infinity();
  double ymax = -std::numeric_limits<double>::infinity();
};

BBox bounding_box(std::span<const double> xy) {
  BBox b;
  const i64 n = static_cast<i64>(xy.size()) / 2;
  for (i64 i = 0; i < n; ++i) {
    const double x = xy[static_cast<std::size_t>(2 * i)];
    const double y = xy[static_cast<std::size_t>(2 * i + 1)];
    b.xmin = std::min(b.xmin, x);
    b.ymin = std::min(b.ymin, y);
    b.xmax = std::max(b.xmax, x);
    b.ymax = std::max(b.ymax, y);
  }
  return b;
}

double dist2(std::span<const double> xy, i64 i, i64 j) {
  const double dx = xy[static_cast<std::size_t>(2 * i)] -
                    xy[static_cast<std::size_t>(2 * j)];
  const double dy = xy[static_cast<std::size_t>(2 * i + 1)] -
                    xy[static_cast<std::size_t>(2 * j + 1)];
  return dx * dx + dy * dy;
}

// Exact greedy maxmin: seed with the point farthest from the centroid, then
// repeatedly take the point whose min distance to the selected set is
// largest (ties toward the smaller index). O(n^2) via the standard
// min-distance array update.
std::vector<i64> maxmin_exact(std::span<const double> xy) {
  const i64 n = static_cast<i64>(xy.size()) / 2;
  double cx = 0.0;
  double cy = 0.0;
  for (i64 i = 0; i < n; ++i) {
    cx += xy[static_cast<std::size_t>(2 * i)];
    cy += xy[static_cast<std::size_t>(2 * i + 1)];
  }
  cx /= static_cast<double>(n);
  cy /= static_cast<double>(n);

  i64 first = 0;
  double best = -1.0;
  for (i64 i = 0; i < n; ++i) {
    const double dx = xy[static_cast<std::size_t>(2 * i)] - cx;
    const double dy = xy[static_cast<std::size_t>(2 * i + 1)] - cy;
    const double d = dx * dx + dy * dy;
    if (d > best) {
      best = d;
      first = i;
    }
  }

  std::vector<i64> order;
  order.reserve(static_cast<std::size_t>(n));
  order.push_back(first);
  std::vector<double> mind(static_cast<std::size_t>(n),
                           std::numeric_limits<double>::infinity());
  std::vector<char> taken(static_cast<std::size_t>(n), 0);
  taken[static_cast<std::size_t>(first)] = 1;
  for (i64 i = 0; i < n; ++i)
    if (!taken[static_cast<std::size_t>(i)])
      mind[static_cast<std::size_t>(i)] = dist2(xy, i, first);

  for (i64 k = 1; k < n; ++k) {
    i64 pick = -1;
    double far = -1.0;
    for (i64 i = 0; i < n; ++i) {
      if (taken[static_cast<std::size_t>(i)]) continue;
      if (mind[static_cast<std::size_t>(i)] > far) {
        far = mind[static_cast<std::size_t>(i)];
        pick = i;
      }
    }
    order.push_back(pick);
    taken[static_cast<std::size_t>(pick)] = 1;
    for (i64 i = 0; i < n; ++i) {
      if (taken[static_cast<std::size_t>(i)]) continue;
      mind[static_cast<std::size_t>(i)] =
          std::min(mind[static_cast<std::size_t>(i)], dist2(xy, i, pick));
    }
  }
  return order;
}

// Coarse-to-fine grid-level approximation for large n: at level L the
// domain is a 2^L x 2^L grid and each non-empty cell's representative (the
// point nearest the cell centre, ties toward the smaller index) is emitted
// unless already emitted at a coarser level. Cells are visited in row-major
// order, so the result is deterministic. Early levels are spread across the
// domain exactly like exact maxmin's early picks; within-level spacing is
// cell-width accurate, which is all the conditioning sets need.
std::vector<i64> maxmin_grid_levels(std::span<const double> xy) {
  const i64 n = static_cast<i64>(xy.size()) / 2;
  const BBox b = bounding_box(xy);
  const double wx = std::max(b.xmax - b.xmin, 1e-300);
  const double wy = std::max(b.ymax - b.ymin, 1e-300);

  std::vector<i64> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> taken(static_cast<std::size_t>(n), 0);
  i64 remaining = n;

  for (int level = 0; level < 32 && remaining > 0; ++level) {
    const i64 side = i64{1} << level;
    // cell -> representative candidate (best dist2 to centre, then index)
    std::vector<i64> rep(static_cast<std::size_t>(side * side), -1);
    std::vector<double> repd(static_cast<std::size_t>(side * side), 0.0);
    for (i64 i = 0; i < n; ++i) {
      const double x = xy[static_cast<std::size_t>(2 * i)];
      const double y = xy[static_cast<std::size_t>(2 * i + 1)];
      i64 cxi = static_cast<i64>((x - b.xmin) / wx * static_cast<double>(side));
      i64 cyi = static_cast<i64>((y - b.ymin) / wy * static_cast<double>(side));
      cxi = std::clamp(cxi, i64{0}, side - 1);
      cyi = std::clamp(cyi, i64{0}, side - 1);
      const std::size_t c = static_cast<std::size_t>(cyi * side + cxi);
      const double ccx =
          b.xmin + (static_cast<double>(cxi) + 0.5) * wx / static_cast<double>(side);
      const double ccy =
          b.ymin + (static_cast<double>(cyi) + 0.5) * wy / static_cast<double>(side);
      const double d = (x - ccx) * (x - ccx) + (y - ccy) * (y - ccy);
      if (rep[c] < 0 || d < repd[c]) {
        rep[c] = i;
        repd[c] = d;
      }
    }
    for (std::size_t c = 0; c < rep.size(); ++c) {
      const i64 i = rep[c];
      if (i >= 0 && !taken[static_cast<std::size_t>(i)]) {
        taken[static_cast<std::size_t>(i)] = 1;
        order.push_back(i);
        --remaining;
      }
    }
  }
  // Duplicate coordinates never become their own representative; append
  // them (and anything past the level cap) in index order.
  for (i64 i = 0; i < n && remaining > 0; ++i)
    if (!taken[static_cast<std::size_t>(i)]) {
      order.push_back(i);
      --remaining;
    }
  return order;
}

}  // namespace

std::vector<i64> maxmin_order(std::span<const double> xy) {
  PARMVN_EXPECTS(xy.size() % 2 == 0);
  const i64 n = static_cast<i64>(xy.size()) / 2;
  if (n == 0) return {};
  if (n <= kExactMaxminCutoff) return maxmin_exact(xy);
  return maxmin_grid_levels(xy);
}

ConditioningSets nearest_predecessors(std::span<const double> xy, i64 m) {
  PARMVN_EXPECTS(xy.size() % 2 == 0);
  PARMVN_EXPECTS(m >= 1);
  const i64 n = static_cast<i64>(xy.size()) / 2;

  ConditioningSets sets;
  sets.offsets.assign(static_cast<std::size_t>(n + 1), 0);
  if (n == 0) return sets;
  sets.neighbors.reserve(static_cast<std::size_t>(
      std::min(n * m, n * (n - 1) / 2 + 1)));

  const BBox b = bounding_box(xy);
  const double wx = std::max(b.xmax - b.xmin, 1e-300);
  const double wy = std::max(b.ymax - b.ymin, 1e-300);
  // ~2 points per cell when full; rings stay shallow once the index fills.
  const i64 side =
      std::max<i64>(1, static_cast<i64>(std::sqrt(static_cast<double>(n) / 2.0)));
  // Conservative per-ring distance bound: the smaller cell extent (the
  // bbox may be anisotropic), so early termination never misses a closer
  // point in an unscanned ring.
  const double cw = std::min(wx, wy) / static_cast<double>(side);
  std::vector<std::vector<i64>> cells(static_cast<std::size_t>(side * side));
  const auto cell_of = [&](i64 i) {
    i64 cxi = static_cast<i64>((xy[static_cast<std::size_t>(2 * i)] - b.xmin) /
                               wx * static_cast<double>(side));
    i64 cyi = static_cast<i64>(
        (xy[static_cast<std::size_t>(2 * i + 1)] - b.ymin) / wy *
        static_cast<double>(side));
    cxi = std::clamp(cxi, i64{0}, side - 1);
    cyi = std::clamp(cyi, i64{0}, side - 1);
    return std::pair<i64, i64>{cxi, cyi};
  };

  // Worse = farther, ties toward the larger index; the heap top is the
  // worst kept candidate, so the final sets prefer near-then-small-index.
  using Cand = std::pair<double, i64>;  // (dist2, site)
  const auto worse = [](const Cand& a, const Cand& b2) {
    return a.first < b2.first ||
           (a.first == b2.first && a.second < b2.second);
  };
  std::priority_queue<Cand, std::vector<Cand>, decltype(worse)> heap(worse);
  std::vector<i64> nb;
  nb.reserve(static_cast<std::size_t>(m));

  for (i64 i = 0; i < n; ++i) {
    const auto [ci, cj] = cell_of(i);
    while (!heap.empty()) heap.pop();
    for (i64 ring = 0; ring < side; ++ring) {
      // Stop once the heap is full and even the nearest point of this ring
      // (>= (ring - 1) * cell width away) cannot beat the worst kept one.
      if (static_cast<i64>(heap.size()) == m && ring >= 2) {
        const double reach = static_cast<double>(ring - 1) * cw;
        if (reach * reach > heap.top().first) break;
      }
      const i64 x0 = ci - ring;
      const i64 x1 = ci + ring;
      const i64 y0 = cj - ring;
      const i64 y1 = cj + ring;
      // Ring cells in fixed row-major order (top row, bottom row, then the
      // two side columns) for determinism.
      const auto scan_cell = [&](i64 cx, i64 cy) {
        if (cx < 0 || cy < 0 || cx >= side || cy >= side) return;
        for (const i64 j : cells[static_cast<std::size_t>(cy * side + cx)]) {
          const Cand c{dist2(xy, i, j), j};
          if (static_cast<i64>(heap.size()) < m) {
            heap.push(c);
          } else if (worse(c, heap.top())) {
            heap.pop();
            heap.push(c);
          }
        }
      };
      if (ring == 0) {
        scan_cell(ci, cj);
      } else {
        for (i64 cx = x0; cx <= x1; ++cx) scan_cell(cx, y0);
        for (i64 cx = x0; cx <= x1; ++cx) scan_cell(cx, y1);
        for (i64 cy = y0 + 1; cy <= y1 - 1; ++cy) {
          scan_cell(x0, cy);
          scan_cell(x1, cy);
        }
      }
    }
    nb.clear();
    while (!heap.empty()) {
      nb.push_back(heap.top().second);
      heap.pop();
    }
    std::sort(nb.begin(), nb.end());
    sets.neighbors.insert(sets.neighbors.end(), nb.begin(), nb.end());
    sets.offsets[static_cast<std::size_t>(i + 1)] =
        static_cast<i64>(sets.neighbors.size());

    cells[static_cast<std::size_t>(cj * side + ci)].push_back(i);
  }
  return sets;
}

}  // namespace parmvn::vecchia
