// Orderings and conditioning sets for the Vecchia approximation.
//
// A Vecchia factor is defined by (1) an integration order over the sites
// and (2) per-site conditioning sets drawn from each site's *predecessors*
// in that order. This header provides both building blocks:
//
//  * maxmin_order(): the classical maximum-minimum-distance ordering
//    (Guinness's recommendation for Vecchia accuracy): each picked point
//    maximises its distance to everything picked before it, so early points
//    are spread coarsely across the domain and every site conditions on a
//    multi-scale neighbourhood. Exact greedy O(n^2) for small n; a
//    deterministic coarse-to-fine grid-level approximation above that.
//    Confidence-region sweeps do NOT use this — their order is dictated by
//    descending marginal probability (the prefix estimand) — but plain PMVN
//    queries and benchmarks do.
//
//  * nearest_predecessors(): for each site i (in whatever order the
//    coordinates arrive, i.e. after any permutation has been applied), the
//    up-to-m nearest earlier sites, found through an incremental uniform
//    grid index in O(n * m) expected time. Deterministic: candidate cells
//    are scanned in a fixed ring order and ties in distance break toward
//    the smaller site index, so the sets are a pure function of the input.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace parmvn::vecchia {

/// Coordinates are flat (x0, y0, x1, y1, ...) as produced by
/// la::MatrixGenerator::coords_xy().
[[nodiscard]] std::vector<i64> maxmin_order(std::span<const double> xy);

/// CSR conditioning sets: neighbors[offsets[i] .. offsets[i+1]) are the
/// conditioning sites of site i, each < i, sorted ascending.
struct ConditioningSets {
  std::vector<i64> offsets;   // size n + 1
  std::vector<i64> neighbors;

  [[nodiscard]] i64 count(i64 i) const noexcept {
    return offsets[static_cast<std::size_t>(i + 1)] -
           offsets[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] std::span<const i64> of(i64 i) const noexcept {
    return {neighbors.data() + offsets[static_cast<std::size_t>(i)],
            static_cast<std::size_t>(count(i))};
  }
};

/// Up-to-m nearest predecessors per site under Euclidean distance.
[[nodiscard]] ConditioningSets nearest_predecessors(std::span<const double> xy,
                                                    i64 m);

}  // namespace parmvn::vecchia
