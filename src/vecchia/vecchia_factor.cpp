#include "vecchia/vecchia_factor.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "common/fault.hpp"
#include "common/timer.hpp"

namespace parmvn::vecchia {

namespace {

// Sites per fitting task: each solve is O(m^3) on an (<= m)-dim local
// system, so a chunk amortises task overhead without starving parallelism.
constexpr i64 kFitChunk = 512;

// Regression weights and conditional sd of site i given its conditioning
// set: one local Cholesky solve, entirely in stack/thread-local storage.
// Deterministic: plain ascending-index loops, no reduction reassociation.
void fit_site(const la::MatrixGenerator& gen, i64 i, std::span<const i64> nb,
              la::MatrixView c, double* z, double* w_out, double* d_out) {
  const i64 k = static_cast<i64>(nb.size());
  const double kii = gen.entry(i, i);
  if (k == 0) {
    PARMVN_EXPECTS(kii > 0.0);
    *d_out = std::sqrt(kii);
    return;
  }
  for (i64 q = 0; q < k; ++q)
    for (i64 p = q; p < k; ++p)
      c(p, q) = gen.entry(nb[static_cast<std::size_t>(p)],
                          nb[static_cast<std::size_t>(q)]);
  // In-place lower Cholesky of the k x k local covariance.
  for (i64 q = 0; q < k; ++q) {
    double diag = c(q, q);
    for (i64 t = 0; t < q; ++t) diag -= c(q, t) * c(q, t);
    if (!(diag > 0.0))
      throw Error("VecchiaFactor: conditioning set covariance not SPD at site " +
                  std::to_string(i));
    const double l = std::sqrt(diag);
    c(q, q) = l;
    for (i64 p = q + 1; p < k; ++p) {
      double s = c(p, q);
      for (i64 t = 0; t < q; ++t) s -= c(p, t) * c(q, t);
      c(p, q) = s / l;
    }
  }
  // Forward substitution L z = k_ci.
  for (i64 p = 0; p < k; ++p) {
    double s = gen.entry(nb[static_cast<std::size_t>(p)], i);
    for (i64 t = 0; t < p; ++t) s -= c(p, t) * z[t];
    z[p] = s / c(p, p);
  }
  double d2 = kii;
  for (i64 p = 0; p < k; ++p) d2 -= z[p] * z[p];
  if (!(d2 > 0.0))
    throw Error(
        "VecchiaFactor: non-positive conditional variance at site " +
        std::to_string(i) + " (increase the nugget or reduce vecchia_m)");
  *d_out = std::sqrt(d2);
  // Back substitution L^T w = z.
  for (i64 p = k - 1; p >= 0; --p) {
    double s = z[p];
    for (i64 t = p + 1; t < k; ++t) s -= c(t, p) * w_out[t];
    w_out[p] = s / c(p, p);
  }
}

}  // namespace

VecchiaFactor VecchiaFactor::build(rt::Runtime& rt,
                                   const la::MatrixGenerator& gen,
                                   std::span<const double> xy, i64 tile,
                                   i64 m) {
  const i64 n = gen.rows();
  PARMVN_EXPECTS(gen.cols() == n);
  PARMVN_EXPECTS(static_cast<i64>(xy.size()) == 2 * n);
  PARMVN_EXPECTS(tile >= 1);
  PARMVN_EXPECTS(m >= 1);

  VecchiaFactor f;
  const WallTimer timer;
  f.n_ = n;
  f.tile_ = tile;
  f.mt_ = (n + tile - 1) / tile;
  f.m_ = m;
  f.sets_ = nearest_predecessors(xy, m);
  f.w_.assign(f.sets_.neighbors.size(), 0.0);
  f.d_.assign(static_cast<std::size_t>(n), 0.0);

  // Per-site local solves, chunked into independent tasks (each writes its
  // own CSR slots, so no declared accesses are needed).
  const ConditioningSets* sets = &f.sets_;
  const la::MatrixGenerator* g = &gen;
  double* weights = f.w_.data();
  double* sds = f.d_.data();
  for (i64 lo = 0; lo < n; lo += kFitChunk) {
    const i64 hi = std::min(n, lo + kFitChunk);
    rt.submit("vecchia_fit", {}, [g, sets, weights, sds, lo, hi, m] {
      PARMVN_FAULT_POINT("vecchia.fit");
      la::Matrix c(m, m);
      std::vector<double> z(static_cast<std::size_t>(m), 0.0);
      for (i64 i = lo; i < hi; ++i) {
        const std::span<const i64> nb = sets->of(i);
        fit_site(*g, i, nb, c.view(), z.data(),
                 weights + sets->offsets[static_cast<std::size_t>(i)],
                 sds + i);
      }
    });
  }
  rt.wait_all();

  // Materialise the tiled form: dense lower-triangular local tiles plus
  // sorted cross-tile entry lists (ascending target column, then ascending
  // global source — the order the CSR walk below produces).
  f.diag_.reserve(static_cast<std::size_t>(f.mt_));
  f.off_.resize(static_cast<std::size_t>(f.mt_));
  for (i64 r = 0; r < f.mt_; ++r) {
    const i64 mr = f.tile_rows(r);
    const i64 row0 = r * tile;
    la::Matrix d(mr, mr);
    for (i64 li = 0; li < mr; ++li) {
      const i64 i = row0 + li;
      d(li, li) = f.d_[static_cast<std::size_t>(i)];
      const std::span<const i64> nb = f.sets_.of(i);
      const double* wi =
          f.w_.data() + f.sets_.offsets[static_cast<std::size_t>(i)];
      for (std::size_t p = 0; p < nb.size(); ++p) {
        const i64 k = nb[p];
        if (k >= row0) {
          d(li, k - row0) = wi[p];
        } else {
          f.off_[static_cast<std::size_t>(r)].push_back(
              {static_cast<i32>(k / tile), static_cast<i32>(k % tile),
               static_cast<i32>(li), wi[p]});
        }
      }
    }
    f.diag_.push_back(std::move(d));
  }

  f.lease_ = rt::HandleLease(rt);
  f.diag_handles_.reserve(static_cast<std::size_t>(f.mt_));
  for (i64 r = 0; r < f.mt_; ++r)
    f.diag_handles_.push_back(
        f.lease_.acquire(rt, "V" + std::to_string(r) + "," + std::to_string(r)));

  f.build_seconds_ = timer.seconds();
  return f;
}

}  // namespace parmvn::vecchia
