#include "vecchia/vecchia_backend.hpp"

#include "linalg/blas.hpp"

namespace parmvn::vecchia {

void VecchiaBackend::accumulate_external(i64 r,
                                         std::span<const la::Matrix> y_panels,
                                         i64 row_off, i64 nrows,
                                         la::MatrixView mean_tile) const {
  // mean(:, dst) += w * Y[src_tile](:, src_col) over the column tile's
  // sample rows: one unit-stride axpy per cross-tile weight, in the fixed
  // (dst_col, global source) order the factor stored them in. Per-sample
  // independence keeps fused batches bitwise equal to single-query runs.
  for (const OffEntry& e : v_->off_entries(r)) {
    const la::ConstMatrixView src =
        y_panels[static_cast<std::size_t>(e.src_tile)].view();
    la::axpy(nrows, e.w, src.col(e.src_col) + row_off,
             mean_tile.col(e.dst_col));
  }
}

double VecchiaBackend::ep_row(
    i64 k, std::vector<std::pair<i64, double>>& parents) const {
  // The generative row is the conditioning regression itself: neighbours
  // are stored ascending (ConditioningSets), weights CSR-aligned.
  parents.clear();
  const std::span<const i64> nb = v_->sets().of(k);
  const std::span<const double> w =
      v_->weights().subspan(static_cast<std::size_t>(v_->sets().offsets[
                                static_cast<std::size_t>(k)]),
                            nb.size());
  for (std::size_t j = 0; j < nb.size(); ++j)
    parents.emplace_back(nb[j], w[j]);
  return v_->cond_sd()[static_cast<std::size_t>(k)];
}

}  // namespace parmvn::vecchia
