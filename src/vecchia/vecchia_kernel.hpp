// The per-tile QMC chain step for the Vecchia factor — the mean-panel
// counterpart of core::qmc_tile_kernel.
//
// Same sample-contiguous panel layout (rows = samples, columns = tile-local
// dimensions) and the same batched Phi / Phi^-1 primitives; the protocol
// differs because a Vecchia factor propagates *realized field values*, not
// standardised innovations:
//
//   mu_j   = mean(j, i) + sum_{k<i in tile} D(i,k) y(j,k)   (strided gemv)
//   a'_j   = (a_i - mu_j) / D(i,i),  b'_j = (b_i - mu_j) / D(i,i)
//   u_j    = clamp(Phi(a') + w * (Phi(b') - Phi(a')), eps)
//   y(j,i) = mu_j + D(i,i) * Phi^-1(u_j)
//
// `mean` carries the accumulated external conditional mean (zero plus every
// cross-tile weight applied by VecchiaFactor's off entries); `a`/`b` are
// the per-dimension query limits in the factor's ordered, standardised
// space — constant down each column, so they are passed as spans instead
// of replicated panels. The per-sample arithmetic depends only on the
// dimension index, preserving the batched==single and worker-count
// determinism contracts.
#pragma once

#include <span>

#include "linalg/matrix.hpp"
#include "stats/qmc.hpp"

namespace parmvn::vecchia {

/// Process one (tile-row, tile-column) block.
///
/// @param d     m x m lower-triangular local conditioning tile
///              (VecchiaFactor::diag)
/// @param pts   sample set; dimension index = row0 + local column,
///              sample index = col0 + local row
/// @param row0  global row (dimension) offset of this tile
/// @param col0  global sample offset of this tile column
/// @param a,b   m-length spans of this tile's lower/upper limits
/// @param mean  mc x m external conditional mean tile (read-only)
/// @param y     mc x m output tile of realized values, sample-contiguous
/// @param p     mc running per-sample probability products (updated)
/// @param prefix_acc optional array of length m accumulating the per-row
///              running-product sums (see core::qmc_tile_kernel)
void vecchia_tile_kernel(la::ConstMatrixView d, const stats::PointSet& pts,
                         i64 row0, i64 col0, std::span<const double> a,
                         std::span<const double> b, la::ConstMatrixView mean,
                         la::MatrixView y, double* p, double* prefix_acc);

}  // namespace parmvn::vecchia
