// Sparse inverse-Cholesky (Vecchia) factor — the third factor arm, for
// fields whose dense/TLR Cholesky does not fit time or memory budgets.
//
// The Vecchia approximation replaces the joint density with a product of
// low-dimensional conditionals: in the integration order, site i conditions
// only on its m nearest predecessors c(i), giving
//
//   x_i = sum_{k in c(i)} w_ik x_k + d_i z_i,   z_i ~ N(0, 1)
//
// with the regression weights w_i = K_cc^{-1} k_ci and conditional sd
// d_i = sqrt(k_ii - k_ci^T K_cc^{-1} k_ci) from one (|c| <= m)-dimensional
// Cholesky solve per site: O(n m^3) build work and O(n m) memory, versus
// O(n^3) / O(n^2) for a dense factor. Because conditioning sets contain
// only predecessors, the running SOV product after row i is exactly the
// Vecchia-approximate joint probability of the first i+1 sites — the
// prefix estimand the confidence-region sweep needs — so the arm slots
// into the same engine sweep.
//
// Storage is tiled to match the engine's panel sweep: per tile row r a
// dense lower-triangular local tile D_r (diagonal = d_i, sub-diagonal =
// weights on in-tile neighbours, consumed by the same strided-SIMD row
// sweep as a Cholesky diagonal tile) plus a flat list of cross-tile weight
// entries applied as unit-stride axpys. Handles are leased from the
// runtime (rt::HandleLease) exactly like TileMatrix tiles, so cached
// factors return their slots when evicted.
#pragma once

#include <span>
#include <vector>

#include "linalg/generator.hpp"
#include "linalg/matrix.hpp"
#include "runtime/runtime.hpp"
#include "vecchia/ordering.hpp"

namespace parmvn::vecchia {

/// One cross-tile regression weight into tile row r: mean-panel column
/// dst_col accumulates w * Y[src_tile](:, src_col). Entries are stored
/// sorted by (dst_col, global source index), fixing the accumulation order.
struct OffEntry {
  i32 src_tile = 0;
  i32 src_col = 0;
  i32 dst_col = 0;
  double w = 0.0;
};

class VecchiaFactor {
 public:
  /// Build over `gen` (an SPD covariance/correlation generator, already in
  /// integration order) with site coordinates `xy` (flat x,y pairs, also in
  /// integration order — la::MatrixGenerator::coords_xy()). Per-site solves
  /// run as parallel runtime tasks; blocks until done.
  [[nodiscard]] static VecchiaFactor build(rt::Runtime& rt,
                                           const la::MatrixGenerator& gen,
                                           std::span<const double> xy,
                                           i64 tile, i64 m);

  [[nodiscard]] i64 dim() const noexcept { return n_; }
  [[nodiscard]] i64 tile_size() const noexcept { return tile_; }
  [[nodiscard]] i64 row_tiles() const noexcept { return mt_; }
  [[nodiscard]] i64 tile_rows(i64 r) const noexcept {
    return r == mt_ - 1 ? n_ - r * tile_ : tile_;
  }
  [[nodiscard]] i64 cond_m() const noexcept { return m_; }

  /// Lower-triangular local conditioning tile D_r: D(i,i) = d_{r*tile+i},
  /// D(i,k) = weight of in-tile neighbour k < i (0 when not a neighbour).
  [[nodiscard]] la::ConstMatrixView diag(i64 r) const {
    return diag_[static_cast<std::size_t>(r)].view();
  }
  [[nodiscard]] rt::DataHandle diag_handle(i64 r) const {
    return diag_handles_[static_cast<std::size_t>(r)];
  }
  /// Cross-tile weights into tile row r, in application order.
  [[nodiscard]] std::span<const OffEntry> off_entries(i64 r) const {
    return off_[static_cast<std::size_t>(r)];
  }

  // Introspection for tests / validation.
  [[nodiscard]] const ConditioningSets& sets() const noexcept { return sets_; }
  [[nodiscard]] std::span<const double> weights() const noexcept { return w_; }
  [[nodiscard]] std::span<const double> cond_sd() const noexcept { return d_; }

  /// Wall-clock seconds spent building (conditioning sets + solves).
  [[nodiscard]] double build_seconds() const noexcept {
    return build_seconds_;
  }

 private:
  VecchiaFactor() = default;

  i64 n_ = 0;
  i64 tile_ = 0;
  i64 mt_ = 0;
  i64 m_ = 0;
  ConditioningSets sets_;
  std::vector<double> w_;  // CSR weights aligned with sets_.neighbors
  std::vector<double> d_;  // conditional sd per site
  std::vector<la::Matrix> diag_;
  std::vector<rt::DataHandle> diag_handles_;
  std::vector<std::vector<OffEntry>> off_;
  rt::HandleLease lease_;
  double build_seconds_ = 0.0;
};

}  // namespace parmvn::vecchia
