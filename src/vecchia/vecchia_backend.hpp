// FactorBackend adapter for the Vecchia factor (mean-panel protocol).
#pragma once

#include <memory>
#include <utility>

#include "engine/factor_backend.hpp"
#include "vecchia/vecchia_factor.hpp"

namespace parmvn::vecchia {

class VecchiaBackend final : public engine::FactorBackend {
 public:
  explicit VecchiaBackend(std::shared_ptr<const VecchiaFactor> v)
      : v_(std::move(v)) {
    PARMVN_EXPECTS(v_ != nullptr);
  }

  [[nodiscard]] engine::FactorKind kind() const noexcept override {
    return engine::FactorKind::kVecchia;
  }
  [[nodiscard]] i64 dim() const noexcept override { return v_->dim(); }
  [[nodiscard]] i64 tile_size() const noexcept override {
    return v_->tile_size();
  }
  [[nodiscard]] i64 row_tiles() const noexcept override {
    return v_->row_tiles();
  }
  [[nodiscard]] i64 tile_rows(i64 r) const noexcept override {
    return v_->tile_rows(r);
  }

  [[nodiscard]] la::ConstMatrixView diag_view(i64 r) const override {
    return v_->diag(r);
  }
  [[nodiscard]] rt::DataHandle diag_handle(i64 r) const override {
    return v_->diag_handle(r);
  }

  [[nodiscard]] bool mean_panel_form() const noexcept override { return true; }

  void accumulate_external(i64 r, std::span<const la::Matrix> y_panels,
                           i64 row_off, i64 nrows,
                           la::MatrixView mean_tile) const override;

  [[nodiscard]] bool ep_latent_slots() const noexcept override {
    return false;  // slots are earlier coordinates, not latent innovations
  }
  double ep_row(i64 k,
                std::vector<std::pair<i64, double>>& parents) const override;

  [[nodiscard]] const VecchiaFactor& factor() const noexcept { return *v_; }

 private:
  std::shared_ptr<const VecchiaFactor> v_;
};

}  // namespace parmvn::vecchia
