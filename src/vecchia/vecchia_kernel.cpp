#include "vecchia/vecchia_kernel.hpp"

#include <algorithm>

#include "common/aligned.hpp"
#include "common/contracts.hpp"
#include "linalg/microkernel.hpp"
#include "stats/normal.hpp"

namespace parmvn::vecchia {

namespace {

constexpr double kUEps = 1e-16;

// Per-thread row scratch, mirroring core::qmc_tile_kernel's: mu (running
// conditional mean), a'/b' (standardised limits), phi/dv (batched CDF
// outputs), u/w (quantile argument, sample coordinates). Contents are fully
// rewritten every row.
struct RowScratch {
  aligned_vector<double> buf;
  double* mu = nullptr;
  double* av = nullptr;
  double* bv = nullptr;
  double* phi = nullptr;
  double* dv = nullptr;
  double* u = nullptr;
  double* w = nullptr;

  void ensure(i64 mc) {
    const i64 stride = (mc + 7) / 8 * 8;
    if (static_cast<i64>(buf.size()) < 7 * stride) {
      buf.resize(static_cast<std::size_t>(7 * stride));
    }
    mu = buf.data();
    av = mu + stride;
    bv = av + stride;
    phi = bv + stride;
    dv = phi + stride;
    u = dv + stride;
    w = u + stride;
  }
};

RowScratch& scratch() {
  thread_local RowScratch rs;
  return rs;
}

}  // namespace

void vecchia_tile_kernel(la::ConstMatrixView d, const stats::PointSet& pts,
                         i64 row0, i64 col0, std::span<const double> a,
                         std::span<const double> b, la::ConstMatrixView mean,
                         la::MatrixView y, double* p, double* prefix_acc) {
  const i64 m = d.rows;
  const i64 mc = mean.rows;
  PARMVN_EXPECTS(d.cols == m);
  PARMVN_EXPECTS(static_cast<i64>(a.size()) == m &&
                 static_cast<i64>(b.size()) == m);
  PARMVN_EXPECTS(mean.cols == m && y.cols == m);
  PARMVN_EXPECTS(y.rows == mc);

  RowScratch& rs = scratch();
  rs.ensure(mc);

  const la::ConstMatrixView yc = y;  // read view of the growing panel
  for (i64 i = 0; i < m; ++i) {
    // mu = mean(:, i) + Y(:, 0:i) * D(i, 0:i)^T: the in-tile regression
    // contribution via the same unit-stride strided-SIMD sweep the dense
    // kernel uses (reduction order a function of i only), then the external
    // contribution already accumulated in the mean panel.
    std::fill_n(rs.mu, mc, 0.0);
    la::detail::gemv_notrans_strided_simd(1.0, yc.sub(0, 0, mc, i),
                                          d.data + i, d.ld, rs.mu);
    const double* __restrict mcol = mean.col(i);
    for (i64 j = 0; j < mc; ++j) rs.mu[j] += mcol[j];

    const double di = d(i, i);
    const double ai = a[static_cast<std::size_t>(i)];
    const double bi = b[static_cast<std::size_t>(i)];
    for (i64 j = 0; j < mc; ++j) rs.av[j] = (ai - rs.mu[j]) / di;
    for (i64 j = 0; j < mc; ++j) rs.bv[j] = (bi - rs.mu[j]) / di;

    stats::norm_cdf_and_diff_batch(mc, rs.av, rs.bv, rs.phi, rs.dv);
    pts.fill_row(row0 + i, col0, mc, rs.w);
    for (i64 j = 0; j < mc; ++j)
      rs.u[j] = std::clamp(rs.phi[j] + rs.w[j] * rs.dv[j], kUEps, 1.0 - kUEps);
    stats::norm_quantile_batch(mc, rs.u, y.col(i));

    // Realize the field value: x = mu + d * z (the dense kernel stores z
    // itself because its propagation GEMM carries the L factor; here the
    // weights regress on x directly).
    double* __restrict ycol = y.col(i);
    for (i64 j = 0; j < mc; ++j) ycol[j] = rs.mu[j] + di * ycol[j];

    for (i64 j = 0; j < mc; ++j) p[j] *= rs.dv[j];
    if (prefix_acc != nullptr) {
      double t = prefix_acc[i];
      for (i64 j = 0; j < mc; ++j) t += p[j];
      prefix_acc[i] = t;
    }
  }
}

}  // namespace parmvn::vecchia
