#include "stats/qmc.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "stats/rng.hpp"

namespace parmvn::stats {

const char* to_string(SamplerKind kind) noexcept {
  switch (kind) {
    case SamplerKind::kPseudoMC: return "mc";
    case SamplerKind::kRichtmyer: return "richtmyer";
    case SamplerKind::kHalton: return "halton";
  }
  return "?";
}

std::vector<i64> first_primes(i64 count) {
  PARMVN_EXPECTS(count >= 0);
  std::vector<i64> primes;
  if (count == 0) return primes;
  primes.reserve(static_cast<std::size_t>(count));
  // Upper bound on the count-th prime (Rosser): n(ln n + ln ln n) for n>=6.
  const double n = static_cast<double>(count < 6 ? 6 : count);
  const i64 bound =
      static_cast<i64>(n * (std::log(n) + std::log(std::log(n)))) + 16;
  std::vector<bool> composite(static_cast<std::size_t>(bound + 1), false);
  for (i64 p = 2; p <= bound && static_cast<i64>(primes.size()) < count; ++p) {
    if (composite[static_cast<std::size_t>(p)]) continue;
    primes.push_back(p);
    for (i64 q = p * p; q <= bound; q += p)
      composite[static_cast<std::size_t>(q)] = true;
  }
  PARMVN_ENSURES(static_cast<i64>(primes.size()) == count);
  return primes;
}

namespace {

inline double frac(double x) noexcept { return x - std::floor(x); }

// Scrambled radical inverse of `index` in base `base` with a multiplicative
// digit permutation derived from `seed` (Faure-style linear scrambling).
double scrambled_radical_inverse(i64 index, i64 base, u64 seed) {
  // Multiplier coprime with base: any value in [1, base).
  const i64 mult =
      1 + static_cast<i64>(mix64(seed ^ static_cast<u64>(base)) %
                           static_cast<u64>(base - 1));
  double inv_base = 1.0 / static_cast<double>(base);
  double scale = inv_base;
  double value = 0.0;
  i64 n = index;
  while (n > 0) {
    const i64 digit = (n % base * mult) % base;
    value += static_cast<double>(digit) * scale;
    scale *= inv_base;
    n /= base;
  }
  return value;
}

}  // namespace

PointSet::PointSet(SamplerKind kind, i64 dim, i64 samples_per_shift,
                   int num_shifts, u64 seed)
    : kind_(kind),
      dim_(dim),
      samples_per_shift_(samples_per_shift),
      num_shifts_(num_shifts),
      seed_(seed) {
  PARMVN_EXPECTS(dim >= 1);
  PARMVN_EXPECTS(samples_per_shift >= 1);
  PARMVN_EXPECTS(num_shifts >= 1);
  if (kind_ == SamplerKind::kRichtmyer) {
    const std::vector<i64> primes = first_primes(dim_);
    alpha_.resize(static_cast<std::size_t>(dim_));
    for (i64 i = 0; i < dim_; ++i) {
      alpha_[static_cast<std::size_t>(i)] =
          frac(std::sqrt(static_cast<double>(primes[static_cast<std::size_t>(i)])));
    }
  } else if (kind_ == SamplerKind::kHalton) {
    halton_base_ = first_primes(dim_);
  }
}

double PointSet::value(i64 dim_index, i64 sample_index) const {
  PARMVN_EXPECTS(dim_index >= 0 && dim_index < dim_);
  PARMVN_EXPECTS(sample_index >= 0 && sample_index < num_samples());
  const int shift = shift_of(sample_index);
  const i64 local = sample_index - static_cast<i64>(shift) * samples_per_shift_;
  switch (kind_) {
    case SamplerKind::kPseudoMC:
      return counter_u01(seed_, dim_index,
                         sample_index + 0x51ed2701);  // offset decorrelates
                                                      // from other users of
                                                      // the same seed
    case SamplerKind::kRichtmyer: {
      const double shift_u = counter_u01(seed_ ^ 0x7ac3591bd1e8a2c4ULL,
                                         dim_index, shift);
      const double a = alpha_[static_cast<std::size_t>(dim_index)];
      return frac(static_cast<double>(local + 1) * a + shift_u);
    }
    case SamplerKind::kHalton: {
      const double shift_u = counter_u01(seed_ ^ 0x2cb9ae11f53dc049ULL,
                                         dim_index, shift);
      const double h = scrambled_radical_inverse(
          local + 1, halton_base_[static_cast<std::size_t>(dim_index)], seed_);
      return frac(h + shift_u);
    }
  }
  PARMVN_ASSERT(false);
  return 0.0;
}

void PointSet::fill_row(i64 dim_index, i64 sample0, i64 count,
                        double* out) const {
  PARMVN_EXPECTS(dim_index >= 0 && dim_index < dim_);
  PARMVN_EXPECTS(count >= 0);
  PARMVN_EXPECTS(sample0 >= 0 && sample0 + count <= num_samples());
  switch (kind_) {
    case SamplerKind::kPseudoMC:
      for (i64 j = 0; j < count; ++j)
        out[j] = counter_u01(seed_, dim_index, sample0 + j + 0x51ed2701);
      return;
    case SamplerKind::kRichtmyer: {
      const double a = alpha_[static_cast<std::size_t>(dim_index)];
      for (i64 j = 0; j < count; ++j) {
        const int shift = shift_of(sample0 + j);
        const i64 local =
            sample0 + j - static_cast<i64>(shift) * samples_per_shift_;
        const double shift_u =
            counter_u01(seed_ ^ 0x7ac3591bd1e8a2c4ULL, dim_index, shift);
        out[j] = frac(static_cast<double>(local + 1) * a + shift_u);
      }
      return;
    }
    case SamplerKind::kHalton: {
      const i64 base = halton_base_[static_cast<std::size_t>(dim_index)];
      for (i64 j = 0; j < count; ++j) {
        const int shift = shift_of(sample0 + j);
        const i64 local =
            sample0 + j - static_cast<i64>(shift) * samples_per_shift_;
        const double shift_u =
            counter_u01(seed_ ^ 0x2cb9ae11f53dc049ULL, dim_index, shift);
        const double h = scrambled_radical_inverse(local + 1, base, seed_);
        out[j] = frac(h + shift_u);
      }
      return;
    }
  }
  PARMVN_ASSERT(false);
}

BlockEstimate combine_block_means(const std::vector<double>& block_means) {
  PARMVN_EXPECTS(!block_means.empty());
  const auto count = static_cast<double>(block_means.size());
  double mean = 0.0;
  for (const double m : block_means) mean += m;
  mean /= count;
  double var = 0.0;
  for (const double m : block_means) var += (m - mean) * (m - mean);
  BlockEstimate est;
  est.mean = mean;
  if (block_means.size() > 1) {
    var /= (count - 1.0);
    est.error3sigma = 3.0 * std::sqrt(var / count);
  }
  return est;
}

}  // namespace parmvn::stats
