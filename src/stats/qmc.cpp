#include "stats/qmc.hpp"

#include <cmath>
#include <limits>

#include "common/contracts.hpp"
#include "stats/rng.hpp"

namespace parmvn::stats {

const char* to_string(SamplerKind kind) noexcept {
  switch (kind) {
    case SamplerKind::kPseudoMC: return "mc";
    case SamplerKind::kRichtmyer: return "richtmyer";
    case SamplerKind::kHalton: return "halton";
  }
  return "?";
}

std::vector<i64> first_primes(i64 count) {
  PARMVN_EXPECTS(count >= 0);
  std::vector<i64> primes;
  if (count == 0) return primes;
  primes.reserve(static_cast<std::size_t>(count));
  // Upper bound on the count-th prime (Rosser): n(ln n + ln ln n) for n>=6.
  const double n = static_cast<double>(count < 6 ? 6 : count);
  const i64 bound =
      static_cast<i64>(n * (std::log(n) + std::log(std::log(n)))) + 16;
  std::vector<bool> composite(static_cast<std::size_t>(bound + 1), false);
  for (i64 p = 2; p <= bound && static_cast<i64>(primes.size()) < count; ++p) {
    if (composite[static_cast<std::size_t>(p)]) continue;
    primes.push_back(p);
    for (i64 q = p * p; q <= bound; q += p)
      composite[static_cast<std::size_t>(q)] = true;
  }
  PARMVN_ENSURES(static_cast<i64>(primes.size()) == count);
  return primes;
}

namespace {

inline double frac(double x) noexcept { return x - std::floor(x); }

// Point reflection u -> 1 - u kept inside [0, 1): the (measure-zero) image
// of u == 0 wraps to 0 so the half-open-interval invariant holds.
inline double reflect(double u) noexcept {
  const double r = 1.0 - u;
  return r < 1.0 ? r : 0.0;
}

// Scrambled radical inverse of `index` in base `base` with a multiplicative
// digit permutation derived from `seed` (Faure-style linear scrambling).
double scrambled_radical_inverse(i64 index, i64 base, u64 seed) {
  // Multiplier coprime with base: any value in [1, base).
  const i64 mult =
      1 + static_cast<i64>(mix64(seed ^ static_cast<u64>(base)) %
                           static_cast<u64>(base - 1));
  double inv_base = 1.0 / static_cast<double>(base);
  double scale = inv_base;
  double value = 0.0;
  i64 n = index;
  while (n > 0) {
    const i64 digit = (n % base * mult) % base;
    value += static_cast<double>(digit) * scale;
    scale *= inv_base;
    n /= base;
  }
  return value;
}

}  // namespace

PointSet::PointSet(SamplerKind kind, i64 dim, i64 samples_per_shift,
                   int num_shifts, u64 seed, bool antithetic)
    : kind_(kind),
      dim_(dim),
      samples_per_shift_(samples_per_shift),
      num_shifts_(num_shifts),
      seed_(seed),
      antithetic_(antithetic) {
  PARMVN_EXPECTS(dim >= 1);
  PARMVN_EXPECTS(samples_per_shift >= 1);
  PARMVN_EXPECTS(num_shifts >= 1);
  PARMVN_EXPECTS(!antithetic || num_shifts % 2 == 0);
  if (kind_ == SamplerKind::kRichtmyer) {
    const std::vector<i64> primes = first_primes(dim_);
    alpha_.resize(static_cast<std::size_t>(dim_));
    for (i64 i = 0; i < dim_; ++i) {
      alpha_[static_cast<std::size_t>(i)] =
          frac(std::sqrt(static_cast<double>(primes[static_cast<std::size_t>(i)])));
    }
  } else if (kind_ == SamplerKind::kHalton) {
    halton_base_ = first_primes(dim_);
  }
}

double PointSet::value(i64 dim_index, i64 sample_index) const {
  PARMVN_EXPECTS(dim_index >= 0 && dim_index < dim_);
  PARMVN_EXPECTS(sample_index >= 0 && sample_index < num_samples());
  int shift = shift_of(sample_index);
  const i64 local = sample_index - static_cast<i64>(shift) * samples_per_shift_;
  // Antithetic pairing: an odd block mirrors the preceding even block's
  // point (same local index, same shift randomisation) through u -> 1 - u.
  const bool mirror = antithetic_ && shift % 2 == 1;
  if (mirror) {
    --shift;
    sample_index -= samples_per_shift_;
  }
  double v = 0.0;
  switch (kind_) {
    case SamplerKind::kPseudoMC:
      v = counter_u01(seed_, dim_index,
                      sample_index + 0x51ed2701);  // offset decorrelates
                                                   // from other users of
                                                   // the same seed
      break;
    case SamplerKind::kRichtmyer: {
      const double shift_u = counter_u01(seed_ ^ 0x7ac3591bd1e8a2c4ULL,
                                         dim_index, shift);
      const double a = alpha_[static_cast<std::size_t>(dim_index)];
      v = frac(static_cast<double>(local + 1) * a + shift_u);
      break;
    }
    case SamplerKind::kHalton: {
      const double shift_u = counter_u01(seed_ ^ 0x2cb9ae11f53dc049ULL,
                                         dim_index, shift);
      const double h = scrambled_radical_inverse(
          local + 1, halton_base_[static_cast<std::size_t>(dim_index)], seed_);
      v = frac(h + shift_u);
      break;
    }
  }
  return mirror ? reflect(v) : v;
}

void PointSet::fill_row(i64 dim_index, i64 sample0, i64 count,
                        double* out) const {
  PARMVN_EXPECTS(dim_index >= 0 && dim_index < dim_);
  PARMVN_EXPECTS(count >= 0);
  PARMVN_EXPECTS(sample0 >= 0 && sample0 + count <= num_samples());
  switch (kind_) {
    case SamplerKind::kPseudoMC:
      for (i64 j = 0; j < count; ++j) {
        i64 s = sample0 + j;
        const bool mirror = antithetic_ && shift_of(s) % 2 == 1;
        if (mirror) s -= samples_per_shift_;
        const double v = counter_u01(seed_, dim_index, s + 0x51ed2701);
        out[j] = mirror ? reflect(v) : v;
      }
      return;
    case SamplerKind::kRichtmyer: {
      const double a = alpha_[static_cast<std::size_t>(dim_index)];
      for (i64 j = 0; j < count; ++j) {
        int shift = shift_of(sample0 + j);
        const i64 local =
            sample0 + j - static_cast<i64>(shift) * samples_per_shift_;
        const bool mirror = antithetic_ && shift % 2 == 1;
        if (mirror) --shift;
        const double shift_u =
            counter_u01(seed_ ^ 0x7ac3591bd1e8a2c4ULL, dim_index, shift);
        const double v = frac(static_cast<double>(local + 1) * a + shift_u);
        out[j] = mirror ? reflect(v) : v;
      }
      return;
    }
    case SamplerKind::kHalton: {
      const i64 base = halton_base_[static_cast<std::size_t>(dim_index)];
      for (i64 j = 0; j < count; ++j) {
        int shift = shift_of(sample0 + j);
        const i64 local =
            sample0 + j - static_cast<i64>(shift) * samples_per_shift_;
        const bool mirror = antithetic_ && shift % 2 == 1;
        if (mirror) --shift;
        const double shift_u =
            counter_u01(seed_ ^ 0x2cb9ae11f53dc049ULL, dim_index, shift);
        const double h = scrambled_radical_inverse(local + 1, base, seed_);
        const double v = frac(h + shift_u);
        out[j] = mirror ? reflect(v) : v;
      }
      return;
    }
  }
  PARMVN_ASSERT(false);
}

BlockEstimate combine_block_means(const std::vector<double>& block_means) {
  PARMVN_EXPECTS(!block_means.empty());
  const auto count = static_cast<double>(block_means.size());
  double mean = 0.0;
  for (const double m : block_means) mean += m;
  mean /= count;
  double var = 0.0;
  for (const double m : block_means) var += (m - mean) * (m - mean);
  BlockEstimate est;
  est.mean = mean;
  if (block_means.size() > 1) {
    var /= (count - 1.0);
    est.error3sigma = 3.0 * std::sqrt(var / count);
  } else {
    // A lone block carries no spread information. Returning 0 here would be
    // indistinguishable from exact convergence — an adaptive caller would
    // stop after its first shift every time — so the honest answer is an
    // infinite error bar.
    est.error3sigma = std::numeric_limits<double>::infinity();
  }
  return est;
}

std::vector<double> merge_antithetic_pairs(
    const std::vector<double>& block_means) {
  PARMVN_EXPECTS(!block_means.empty());
  PARMVN_EXPECTS(block_means.size() % 2 == 0);
  std::vector<double> merged(block_means.size() / 2);
  for (std::size_t k = 0; k < merged.size(); ++k)
    merged[k] = 0.5 * (block_means[2 * k] + block_means[2 * k + 1]);
  return merged;
}

}  // namespace parmvn::stats
