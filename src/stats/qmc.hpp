// Sample generators for the SOV integrand: plain pseudo-Monte-Carlo (what
// the paper's Algorithm 2 uses for the matrix R) and randomized
// quasi-Monte-Carlo rules (Richtmyer/Kronecker lattice, scrambled Halton)
// as recommended by Genz for faster convergence.
//
// A PointSet is a *pure function* (dim index, sample index) -> U(0,1); this
// statelessness is what lets concurrent tasks fill different tiles of R
// reproducibly regardless of scheduling order.
//
// Samples are organised in `shifts` blocks. Each block uses an independent
// random shift (QMC) or an independent stream (MC); block means provide the
// classic 3-sigma error estimate of randomized QMC.
//
// Antithetic mode pairs the blocks: every odd block is the point reflection
// u -> 1 - u of the preceding even block (same lattice points, same random
// shift), a classic variance-reduction device for integrands monotone in
// each coordinate. Pair members are *dependent*, so the error estimate must
// treat each pair as one block — merge_antithetic_pairs() averages the
// per-shift means pairwise before combine_block_means().
#pragma once

#include <vector>

#include "common/types.hpp"

namespace parmvn::stats {

enum class SamplerKind {
  kPseudoMC,   // i.i.d. U(0,1), as in the paper's Algorithm 2 (matrix R)
  kRichtmyer,  // Kronecker lattice with sqrt(prime) generators + random shift
  kHalton,     // scrambled Halton radical-inverse (ablation baseline)
};

const char* to_string(SamplerKind kind) noexcept;

/// First `count` prime numbers.
std::vector<i64> first_primes(i64 count);

/// Deterministic sample set of `num_samples()` points in [0,1)^dim.
class PointSet {
 public:
  /// @param dim        dimensionality (rows of R in Algorithm 2)
  /// @param samples_per_shift  points per randomized block
  /// @param num_shifts independent randomized blocks (>=1)
  /// @param antithetic pair the blocks: odd block s mirrors block s-1
  ///        through u -> 1 - u (requires an even num_shifts)
  PointSet(SamplerKind kind, i64 dim, i64 samples_per_shift, int num_shifts,
           u64 seed, bool antithetic = false);

  /// Coordinate `dim_index` of global sample `sample_index`.
  [[nodiscard]] double value(i64 dim_index, i64 sample_index) const;

  /// out[j] = value(dim_index, sample0 + j) for j in [0, count): one panel
  /// row of the sample-contiguous QMC sweep, bitwise identical to per-call
  /// value() but with the kind dispatch and bounds checks hoisted out of
  /// the loop.
  void fill_row(i64 dim_index, i64 sample0, i64 count, double* out) const;

  [[nodiscard]] i64 dim() const noexcept { return dim_; }
  [[nodiscard]] i64 num_samples() const noexcept {
    return samples_per_shift_ * num_shifts_;
  }
  [[nodiscard]] i64 samples_per_shift() const noexcept {
    return samples_per_shift_;
  }
  [[nodiscard]] int num_shifts() const noexcept { return num_shifts_; }
  [[nodiscard]] int shift_of(i64 sample_index) const noexcept {
    return static_cast<int>(sample_index / samples_per_shift_);
  }
  [[nodiscard]] SamplerKind kind() const noexcept { return kind_; }
  [[nodiscard]] bool antithetic() const noexcept { return antithetic_; }

 private:
  SamplerKind kind_;
  i64 dim_;
  i64 samples_per_shift_;
  int num_shifts_;
  u64 seed_;
  bool antithetic_ = false;
  std::vector<double> alpha_;     // Richtmyer generators frac(sqrt(p_i))
  std::vector<i64> halton_base_;  // Halton bases (primes)
};

/// Mean and 3-sigma error estimate over per-shift block means.
struct BlockEstimate {
  double mean = 0.0;
  double error3sigma = 0.0;
};

/// Combine per-shift means into an estimate; `block_means.size()` must equal
/// the number of shifts used to produce them. A single block carries no
/// spread information, so its error3sigma is +infinity (never 0, which any
/// error-budget-driven caller would read as exact convergence); callers that
/// gate decisions on the estimate must use at least two blocks.
BlockEstimate combine_block_means(const std::vector<double>& block_means);

/// Average adjacent (even, odd) block-mean pairs: the valid per-block means
/// for an antithetic PointSet, whose pair members are dependent and must not
/// enter the error spread as independent blocks. Requires an even, non-zero
/// count.
std::vector<double> merge_antithetic_pairs(
    const std::vector<double>& block_means);

}  // namespace parmvn::stats
