#include "stats/rng.hpp"

#include "stats/normal.hpp"

namespace parmvn::stats {

namespace {
inline u64 rotl(u64 x, int k) noexcept { return (x << k) | (x >> (64 - k)); }

inline double u64_to_u01(u64 x) noexcept {
  // Top 53 bits -> [0,1). Never returns exactly 1.
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}
}  // namespace

u64 splitmix64(u64& state) noexcept {
  u64 z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

u64 mix64(u64 x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Xoshiro256pp::Xoshiro256pp(u64 seed) noexcept {
  u64 sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

u64 Xoshiro256pp::next() noexcept {
  const u64 result = rotl(s_[0] + s_[3], 23) + s_[0];
  const u64 t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256pp::next_u01() noexcept { return u64_to_u01(next()); }

double Xoshiro256pp::next_normal() noexcept {
  // Quantile transform; nudge away from 0 to keep the result finite.
  double u = next_u01();
  if (u <= 0.0) u = 0x1.0p-53;
  return norm_quantile(u);
}

Xoshiro256pp Xoshiro256pp::split() noexcept {
  return Xoshiro256pp(next() ^ 0xa3ec647659359acdULL);
}

double counter_u01(u64 seed, i64 i, i64 j) noexcept {
  // Two rounds of 64-bit mixing over a Weyl-combined key. One round leaves
  // visible lattice correlations between adjacent (i,j); two rounds pass
  // practical uniformity tests (see tests/test_stats_rng.cpp).
  u64 key = seed;
  key ^= mix64(static_cast<u64>(i) * 0x9e3779b97f4a7c15ULL + 0x243f6a8885a308d3ULL);
  key ^= mix64(static_cast<u64>(j) * 0xd1b54a32d192ed03ULL + 0x452821e638d01377ULL);
  const u64 r = mix64(key + 0x9e3779b97f4a7c15ULL);
  return static_cast<double>(r >> 11) * 0x1.0p-53;
}

double counter_normal(u64 seed, i64 i, i64 j) noexcept {
  double u = counter_u01(seed, i, j);
  if (u <= 0.0) u = 0x1.0p-53;
  return norm_quantile(u);
}

}  // namespace parmvn::stats
