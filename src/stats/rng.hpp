// Deterministic, splittable random number generation.
//
// Two layers:
//  * Xoshiro256pp — fast sequential generator for bulk sampling.
//  * counter_u01 — a counter-based (stateless) generator mapping
//    (seed, i, j) -> U(0,1). The tile PMVN algorithm fills the random matrix
//    R tile-by-tile from concurrent tasks; a counter-based generator makes
//    every tile's content independent of task execution order, so parallel
//    runs are bitwise reproducible (same property StarPU codes get from
//    pre-generated R).
#pragma once

#include <array>

#include "common/types.hpp"

namespace parmvn::stats {

/// SplitMix64 step; also used to derive seeds and as the mixing function of
/// the counter-based generator.
u64 splitmix64(u64& state) noexcept;

/// Stateless mix of a 64-bit value (the finalizer of SplitMix64).
u64 mix64(u64 x) noexcept;

/// xoshiro256++ PRNG (Blackman & Vigna). Not cryptographic; excellent
/// statistical quality for simulation work.
class Xoshiro256pp {
 public:
  explicit Xoshiro256pp(u64 seed) noexcept;

  u64 next() noexcept;

  /// Uniform double in [0,1) with 53 random bits.
  double next_u01() noexcept;

  /// Standard normal via the quantile transform (reproducible across
  /// platforms, unlike std::normal_distribution).
  double next_normal() noexcept;

  /// Long-jump equivalent: derive an independent stream.
  [[nodiscard]] Xoshiro256pp split() noexcept;

 private:
  std::array<u64, 4> s_;
};

/// Counter-based U(0,1): pure function of (seed, i, j).
double counter_u01(u64 seed, i64 i, i64 j) noexcept;

/// Counter-based standard normal: pure function of (seed, i, j).
double counter_normal(u64 seed, i64 i, i64 j) noexcept;

}  // namespace parmvn::stats
