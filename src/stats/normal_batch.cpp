// Batched Phi / Phi^-1 / Phi-difference — the transcendental half of the
// sample-contiguous QMC sweep (core/qmc_kernel.cpp evaluates one panel row
// of mc samples per call).
//
// Two code paths, selected at build time:
//
//  * Native (PARMVN_KERNEL_NATIVE_TU + GCC/Clang vector extensions): 8-lane
//    vector evaluation. erfc runs as a branch-blended piecewise polynomial
//    (erf Taylor-region fit + four erfcx fits from stats/erfcx_coeffs.inc,
//    scaled by a hand-rolled vector exp whose argument comes from a
//    Dekker-split z^2 so the |z^2| * 2^-53 squaring error cannot exceed the
//    accuracy budget); Phi^-1 is Wichura's AS241 with the central/tail
//    branches evaluated on all lanes and blended, the tail r = sqrt(-log p)
//    built from a vector log. Lanes whose inputs sit outside the fitted
//    range (|x| > 26 finite, p outside [1e-300, 1)) or are NaN make their
//    8-wide chunk fall back to the scalar routines — endpoint, far-tail and
//    NaN semantics are therefore bitwise identical to the scalar kernels,
//    and the QMC hot range (clamped u in [1e-16, 1 - 1e-16], moderate
//    z-scores) never leaves the vector path. Agreement with the scalar
//    routines is <= ~1e-14 relative everywhere (tests/test_stats_normal.cpp
//    pins it; the golden 1e-12 Phi/Phi^-1 band holds on both paths).
//
//  * Fallback (everything else): plain loops over the scalar routines —
//    bitwise identical to per-element calls by construction.
//
// Determinism: chunk boundaries are a pure function of the array position,
// every lane's value is element-wise, and the only cross-lane coupling is
// the chunk-eligibility test — identical inputs at identical positions give
// bitwise identical outputs on every run, worker count and batch shape.
#include <cmath>

#include "common/simd.hpp"
#include "stats/normal.hpp"

#if defined(PARMVN_KERNEL_NATIVE_TU) && defined(PARMVN_SIMD_VECTOR_EXT)
#include "stats/erfcx_coeffs.inc"
#endif

namespace parmvn::stats {

namespace {

void cdf_scalar(i64 n, const double* x, double* out) noexcept {
  for (i64 i = 0; i < n; ++i) out[i] = norm_cdf(x[i]);
}

// Unused on the native path (its two-input chunks delegate through the
// fused scalar helper below), hence the attribute.
[[maybe_unused]] void cdf_diff_scalar(i64 n, const double* a, const double* b,
                                      double* out) noexcept {
  for (i64 i = 0; i < n; ++i) out[i] = norm_cdf_diff(a[i], b[i]);
}

void quantile_scalar(i64 n, const double* p, double* out) noexcept {
  for (i64 i = 0; i < n; ++i) out[i] = norm_quantile(p[i]);
}

void cdf_and_diff_scalar(i64 n, const double* a, const double* b, double* phi,
                         double* diff) noexcept {
  for (i64 i = 0; i < n; ++i) {
    phi[i] = norm_cdf(a[i]);
    diff[i] = norm_cdf_diff(a[i], b[i]);
  }
}

}  // namespace

#if defined(PARMVN_KERNEL_NATIVE_TU) && defined(PARMVN_SIMD_VECTOR_EXT)

namespace {

using simd::all_true;
using simd::any_true;
using simd::bits_of;
using simd::load8;
using simd::select;
using simd::splat;
using simd::store8;
using simd::v8df;
using simd::v8di;
using simd::vabs;
using simd::value_of;
using simd::vmax;
using simd::vmin;

constexpr double kInvSqrt2 = 0.7071067811865475244008443621048490;
constexpr double kInf = __builtin_inf();

// Finite |x| beyond this goes to the scalar routines: the erfcx fits stop at
// z = 18.6 (x ~ 26.3) and erfc drifts into the subnormal range soon after.
constexpr double kVecMaxArg = 26.0;

template <int N>
inline v8df poly(const double (&coef)[N], v8df x) noexcept {
  v8df p = splat(coef[N - 1]);
  for (int i = N - 2; i >= 0; --i) p = p * x + splat(coef[i]);
  return p;
}

template <int N>
inline v8df poly_mapped(const double (&coef)[N], double center, double invhalf,
                        v8df v) noexcept {
  return poly(coef, (v - splat(center)) * splat(invhalf));
}

// exp(-(shi + slo)) for shi in [0.42, 346], |slo| <= shi * 2^-26: magic-
// number round-to-nearest, hi/lo ln2 reduction with the slo correction
// folded into the reduced argument, degree-13 Taylor, exponent-bit 2^k
// scaling (k in [-500, -1]: always a normal scale factor).
inline v8df vexp_neg(v8df shi, v8df slo) noexcept {
  constexpr double kLog2e = 1.4426950408889634073599246810018921;
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  constexpr double kShift = 6755399441055744.0;  // 1.5 * 2^52
  const v8df x = -shi;
  const v8df t = x * splat(kLog2e) + splat(kShift);
  const v8df kd = t - splat(kShift);
  const v8df r = (x - kd * splat(kLn2Hi)) - kd * splat(kLn2Lo) - slo;
  v8df p = splat(1.0 / 6227020800.0);  // 1/13!
  p = p * r + splat(1.0 / 479001600.0);
  p = p * r + splat(1.0 / 39916800.0);
  p = p * r + splat(1.0 / 3628800.0);
  p = p * r + splat(1.0 / 362880.0);
  p = p * r + splat(1.0 / 40320.0);
  p = p * r + splat(1.0 / 5040.0);
  p = p * r + splat(1.0 / 720.0);
  p = p * r + splat(1.0 / 120.0);
  p = p * r + splat(1.0 / 24.0);
  p = p * r + splat(1.0 / 6.0);
  p = p * r + splat(0.5);
  p = p * r + splat(1.0);
  p = p * r + splat(1.0);
  const v8di ki = __builtin_convertvector(kd, v8di);
  const v8di scale_bits = (ki + 1023) << 52;
  return p * value_of(scale_bits);
}

// log(x) for normal positive x (the quantile tails call it with
// x in [~1e-300, 0.5]): exponent/mantissa split into m in [sqrt(1/2),
// sqrt(2)), atanh series in s = (m-1)/(m+1) through s^21, hi/lo ln2
// recombination.
inline v8df vlog(v8df x) noexcept {
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  constexpr double kSqrt2 = 1.4142135623730950488016887242096981;
  const v8di bits = bits_of(x);
  v8di e = (bits >> 52) - 1023;
  const v8di mant_bits =
      (bits & static_cast<i64>(0x000FFFFFFFFFFFFFLL)) |
      static_cast<i64>(0x3FF0000000000000LL);
  v8df m = value_of(mant_bits);  // in [1, 2)
  const v8di big = (m > splat(kSqrt2));
  m = select(big, m * splat(0.5), m);
  e = e + (big & static_cast<i64>(1));
  const v8df ed = __builtin_convertvector(e, v8df);
  const v8df s = (m - splat(1.0)) / (m + splat(1.0));
  const v8df s2 = s * s;
  v8df t = splat(1.0 / 21.0);
  t = t * s2 + splat(1.0 / 19.0);
  t = t * s2 + splat(1.0 / 17.0);
  t = t * s2 + splat(1.0 / 15.0);
  t = t * s2 + splat(1.0 / 13.0);
  t = t * s2 + splat(1.0 / 11.0);
  t = t * s2 + splat(1.0 / 9.0);
  t = t * s2 + splat(1.0 / 7.0);
  t = t * s2 + splat(1.0 / 5.0);
  t = t * s2 + splat(1.0 / 3.0);
  const v8df logm = splat(2.0) * s + splat(2.0) * s * (s2 * t);
  return (ed * splat(kLn2Hi) + logm) + ed * splat(kLn2Lo);
}

// Lanewise sqrt; the TU is compiled -fno-math-errno so this lowers to a
// vector sqrt instruction (correctly rounded either way, so the result is
// bitwise identical to std::sqrt per lane).
inline v8df vsqrt(v8df x) noexcept {
  alignas(64) double a[simd::kLanes];
  store8(a, x);
  for (double& v : a) v = __builtin_sqrt(v);
  return load8(a);
}

// erfc(z) for |z| <= kZMax (18.6), NaN-free input. Branch-blended piecewise
// evaluation; branches whose mask is empty are skipped, and every lane's
// value depends only on that lane.
v8df erfc_core(v8df z) noexcept {
  namespace et = erfc_tables;
  const v8df az = vabs(z);
  const v8di taylor = (az <= splat(et::kZTaylor));
  v8df r = splat(0.0);
  if (any_true(taylor)) {
    const v8df p =
        poly_mapped(et::kErfP0, et::kErfP0Center, et::kErfP0InvHalf, az * az);
    r = select(taylor, splat(1.0) - az * p, r);
  }
  if (!all_true(taylor)) {
    // Dekker split of az^2: shi exact (zh has 26 significant bits), slo the
    // exact remainder — vexp_neg folds it into the reduced argument.
    const v8df t = az * splat(134217729.0);  // 2^27 + 1
    const v8df zh = t - (t - az);
    const v8df zl = az - zh;
    const v8df shi = zh * zh;
    const v8df slo = splat(2.0) * zh * zl + zl * zl;
    const v8df ex = vexp_neg(shi, slo);
    const v8df u = splat(1.0) / az;
    v8df g = splat(0.0);
    const v8di in1 = ~taylor & (az <= splat(et::kZSplit1));
    const v8di in2 = (az > splat(et::kZSplit1)) & (az <= splat(et::kZSplit2));
    const v8di in3 = (az > splat(et::kZSplit2)) & (az <= splat(et::kZSplit3));
    const v8di in4 = (az > splat(et::kZSplit3));
    if (any_true(in1))
      g = select(in1,
                 poly_mapped(et::kErfcx1, et::kErfcx1Center, et::kErfcx1InvHalf,
                             az),
                 g);
    if (any_true(in2))
      g = select(in2,
                 poly_mapped(et::kErfcx2, et::kErfcx2Center, et::kErfcx2InvHalf,
                             u),
                 g);
    if (any_true(in3))
      g = select(in3,
                 poly_mapped(et::kErfcx3, et::kErfcx3Center, et::kErfcx3InvHalf,
                             u),
                 g);
    if (any_true(in4))
      g = select(in4,
                 poly_mapped(et::kErfcx4, et::kErfcx4Center, et::kErfcx4InvHalf,
                             u),
                 g);
    r = select(taylor, r, ex * g);
  }
  return select(z < splat(0.0), splat(2.0) - r, r);
}

// ---- 8-wide chunk kernels (scalar delegation for ineligible chunks) ----

void cdf_chunk(const double* x, double* out) noexcept {
  const v8df vx = load8(x);
  // Eligible: x >= -26 (catches NaN: compares false) or exactly -inf.
  const v8di ok = (vx >= splat(-kVecMaxArg)) | (vx == splat(-kInf));
  if (!all_true(ok)) {
    cdf_scalar(simd::kLanes, x, out);
    return;
  }
  const v8di lo = (vx == splat(-kInf));
  const v8di hi = (vx >= splat(kVecMaxArg));  // includes +inf
  const v8df xc = vmin(vmax(vx, splat(-kVecMaxArg)), splat(kVecMaxArg));
  const v8df e = erfc_core(-xc * splat(kInvSqrt2));
  v8df phi = splat(0.5) * e;
  // Phi saturates to exactly 1.0 well before x = 26 (erfc(z) < 2^-53 * 2
  // from z ~ 6), matching the scalar result bitwise.
  phi = select(hi, splat(1.0), phi);
  phi = select(lo, splat(0.0), phi);
  store8(out, phi);
}

// erfc(t) over selected-limit arguments: |t| <= 18.39 or +-inf.
inline v8df erfc_limits(v8df t) noexcept {
  namespace et = erfc_tables;
  const v8df tc = vmin(vmax(t, splat(-et::kZMax)), splat(et::kZMax));
  v8df e = erfc_core(tc);
  e = select(t == splat(kInf), splat(0.0), e);
  e = select(t == splat(-kInf), splat(2.0), e);
  return e;
}

// Fused Phi(a) + (Phi(b) - Phi(a)) — the one two-input chunk kernel (the
// diff-only entry point runs through it with a discarded Phi lane, so there
// is a single copy of the formula and of the ragged-tail handling).
//
// The diff uses one formula for the scalar routine's three branches: with
// Phi(x) = erfc(-x/sqrt(2))/2,
//   a >= 0:  Phi(b)-Phi(a) = (erfc(a c) - erfc(b c)) / 2
//   a <  0:  Phi(b)-Phi(a) = (erfc(-b c) - erfc(-a c)) / 2
// (the scalar b <= 0 and straddle branches compute the same expression;
// halving is exact, so the rounding matches the scalar code). Phi(a) is
// recovered from the same two erfc evaluations: for a >= 0 lanes, u = a c
// and norm_cdf's erfc(-a c) is the reflection 2 - erfc(a c) = 2 - E(u); for
// a < 0 lanes, v = -a c and erfc(-a c) = E(v) directly. Both reproduce
// norm_cdf_batch's vector-path arithmetic bitwise; note the *eligibility*
// test here also looks at b, so a chunk with an extreme b delegates wholly
// to the scalar routines where a cdf-only chunk would have stayed
// vectorized (phi then differs from norm_cdf_batch by <= ~1e-14 — see the
// contract note in normal.hpp).
void cdf_and_diff_chunk(const double* a, const double* b, double* phi,
                        double* diff) noexcept {
  const v8df va = load8(a);
  const v8df vb = load8(b);
  const v8df aa = vabs(va);
  const v8df ab = vabs(vb);
  const v8di ok = ((aa <= splat(kVecMaxArg)) | (aa == splat(kInf))) &
                  ((ab <= splat(kVecMaxArg)) | (ab == splat(kInf)));
  if (!all_true(ok)) {
    cdf_and_diff_scalar(simd::kLanes, a, b, phi, diff);
    return;
  }
  const v8di a_pos = (va >= splat(0.0));
  const v8df u = select(a_pos, va, -vb) * splat(kInvSqrt2);
  const v8df v = select(a_pos, vb, -va) * splat(kInvSqrt2);
  const v8df eu = erfc_limits(u);
  const v8df ev = erfc_limits(v);
  const v8df d = splat(0.5) * (eu - ev);
  store8(diff, select(va < vb, d, splat(0.0)));
  store8(phi, splat(0.5) * select(a_pos, splat(2.0) - eu, ev));
}

// AS241 rational coefficients, ascending degree (transcribed from the
// scalar norm_quantile — the vector Horner evaluates in the same order).
constexpr double kQNumC[] = {
    3.3871328727963666080e+0, 1.3314166789178437745e+2,
    1.9715909503065514427e+3, 1.3731693765509461125e+4,
    4.5921953931549871457e+4, 6.7265770927008700853e+4,
    3.3430575583588128105e+4, 2.5090809287301226727e+3};
constexpr double kQDenC[] = {
    1.0,                      4.2313330701600911252e+1,
    6.8718700749205790830e+2, 5.3941960214247511077e+3,
    2.1213794301586595867e+4, 3.9307895800092710610e+4,
    2.8729085735721942674e+4, 5.2264952788528545610e+3};
constexpr double kQNumM[] = {
    1.42343711074968357734e+0, 4.63033784615654529590e+0,
    5.76949722146069140550e+0, 3.64784832476320460504e+0,
    1.27045825245236838258e+0, 2.41780725177450611770e-1,
    2.27238449892691845833e-2, 7.74545014278341407640e-4};
constexpr double kQDenM[] = {
    1.0,                       2.05319162663775882187e+0,
    1.67638483018380384940e+0, 6.89767334985100004550e-1,
    1.48103976427480074590e-1, 1.51986665636164571966e-2,
    5.47593808499534494600e-4, 1.05075007164441684324e-9};
constexpr double kQNumF[] = {
    6.65790464350110377720e+0, 5.46378491116411436990e+0,
    1.78482653991729133580e+0, 2.96560571828504891230e-1,
    2.65321895265761230930e-2, 1.24266094738807843860e-3,
    2.71155556874348757815e-5, 2.01033439929228813265e-7};
constexpr double kQDenF[] = {
    1.0,                       5.99832206555887937690e-1,
    1.36929880922735805310e-1, 1.48753612908506148525e-2,
    7.86869131145613259100e-4, 1.84631831751005468180e-5,
    1.42151175831644588870e-7, 2.04426310338993978564e-15};

void quantile_chunk(const double* p, double* out) noexcept {
  const v8df vp = load8(p);
  // Normal positive p strictly inside (0, 1); min(p, 1-p) stays normal, the
  // tail r stays inside AS241's fitted range, and NaN/endpoints go scalar.
  const v8di ok = (vp >= splat(1e-300)) & (vp < splat(1.0));
  if (!all_true(ok)) {
    quantile_scalar(simd::kLanes, p, out);
    return;
  }
  const v8df q = vp - splat(0.5);
  const v8di central = (vabs(q) <= splat(0.425));
  v8df vc = splat(0.0);
  if (any_true(central)) {
    const v8df r = splat(0.180625) - q * q;
    vc = q * poly(kQNumC, r) / poly(kQDenC, r);
  }
  v8df vt = splat(0.0);
  if (!all_true(central)) {
    const v8df pr = select(q < splat(0.0), vp, splat(1.0) - vp);
    const v8df r = vsqrt(-vlog(pr));
    const v8di near = (r <= splat(5.0));
    const v8df rr = select(near, r - splat(1.6), r - splat(5.0));
    const v8df num = select(near, poly(kQNumM, rr), poly(kQNumF, rr));
    const v8df den = select(near, poly(kQDenM, rr), poly(kQDenF, rr));
    const v8df val = num / den;
    vt = select(q < splat(0.0), -val, val);
  }
  store8(out, select(central, vc, vt));
}

// Drive an 8-wide chunk kernel over [0, n) with a padded final chunk; the
// pad values are fixed eligible inputs, so the tail chunk's path depends
// only on its real lanes.
template <class Chunk1, class Fill1>
void run_batch1(i64 n, const double* x, double* out, Chunk1 chunk,
                Fill1 pad) noexcept {
  i64 i = 0;
  for (; i + simd::kLanes <= n; i += simd::kLanes) chunk(x + i, out + i);
  if (i < n) {
    alignas(64) double xa[simd::kLanes];
    alignas(64) double oa[simd::kLanes];
    for (int l = 0; l < simd::kLanes; ++l)
      xa[l] = (i + l < n) ? x[i + l] : pad();
    chunk(xa, oa);
    for (int l = 0; i + l < n; ++l) out[i + l] = oa[l];
  }
}

// Shared driver for the two-input entry points: `phi` may be null (the
// diff-only primitive), in which case the fused chunk writes Phi into a
// discarded stack lane. Tail pads (a=0, b=1) are vector-eligible, so the
// final chunk's path depends only on its real lanes.
void run_cdf_diff(i64 n, const double* a, const double* b, double* phi,
                  double* diff) noexcept {
  alignas(64) double phi_scratch[simd::kLanes];
  i64 i = 0;
  for (; i + simd::kLanes <= n; i += simd::kLanes)
    cdf_and_diff_chunk(a + i, b + i, phi != nullptr ? phi + i : phi_scratch,
                       diff + i);
  if (i < n) {
    alignas(64) double aa[simd::kLanes];
    alignas(64) double ba[simd::kLanes];
    alignas(64) double pa[simd::kLanes];
    alignas(64) double da[simd::kLanes];
    for (int l = 0; l < simd::kLanes; ++l) {
      aa[l] = (i + l < n) ? a[i + l] : 0.0;
      ba[l] = (i + l < n) ? b[i + l] : 1.0;
    }
    cdf_and_diff_chunk(aa, ba, pa, da);
    for (int l = 0; i + l < n; ++l) {
      diff[i + l] = da[l];
      if (phi != nullptr) phi[i + l] = pa[l];
    }
  }
}

}  // namespace

void norm_cdf_batch(i64 n, const double* x, double* out) noexcept {
  run_batch1(n, x, out, cdf_chunk, [] { return 0.0; });
}

void norm_cdf_diff_batch(i64 n, const double* a, const double* b,
                         double* out) noexcept {
  run_cdf_diff(n, a, b, nullptr, out);
}

void norm_quantile_batch(i64 n, const double* p, double* out) noexcept {
  run_batch1(n, p, out, quantile_chunk, [] { return 0.5; });
}

void norm_cdf_and_diff_batch(i64 n, const double* a, const double* b,
                             double* phi, double* diff) noexcept {
  run_cdf_diff(n, a, b, phi, diff);
}

bool norm_batch_vectorized() noexcept { return true; }

#else  // scalar fallback: loops over the scalar routines, bitwise identical

void norm_cdf_batch(i64 n, const double* x, double* out) noexcept {
  cdf_scalar(n, x, out);
}

void norm_cdf_diff_batch(i64 n, const double* a, const double* b,
                         double* out) noexcept {
  cdf_diff_scalar(n, a, b, out);
}

void norm_quantile_batch(i64 n, const double* p, double* out) noexcept {
  quantile_scalar(n, p, out);
}

void norm_cdf_and_diff_batch(i64 n, const double* a, const double* b,
                             double* phi, double* diff) noexcept {
  cdf_and_diff_scalar(n, a, b, phi, diff);
}

bool norm_batch_vectorized() noexcept { return false; }

#endif

}  // namespace parmvn::stats
