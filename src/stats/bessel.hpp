// Modified Bessel function of the second kind K_nu(x) for real order
// nu >= 0, the special-function core of the Matern covariance (paper eq. 6).
//
// Algorithm: Temme's series for x <= 2 combined with the Steed/Thompson-
// Barnett continued fraction (CF2) for x > 2, then stable upward recurrence
// in the order (the classic scheme popularised by Numerical Recipes'
// `bessik`). Relative accuracy is ~1e-13 over the ranges exercised by the
// Matern kernels in this library (validated in tests against a
// double-exponential quadrature oracle).
#pragma once

namespace parmvn::stats {

/// K_nu(x) for x > 0 and any real nu (K is even in the order).
/// Throws parmvn::Error on domain violation.
double bessel_k(double nu, double x);

/// Scaled version e^x * K_nu(x); avoids underflow for large x.
double bessel_k_scaled(double nu, double x);

}  // namespace parmvn::stats
