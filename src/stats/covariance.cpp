#include "stats/covariance.hpp"

#include <cmath>
#include <cstdio>

#include "common/contracts.hpp"
#include "stats/bessel.hpp"

namespace parmvn::stats {

namespace {

// %.17g round-trips doubles exactly, so equal keys imply bitwise-equal
// kernel parameters.
std::string kernel_key(const char* kind, double p0, double p1, double p2) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s(%.17g,%.17g,%.17g)", kind, p0, p1, p2);
  return buf;
}

}  // namespace

MaternKernel::MaternKernel(double sigma2, double range, double smoothness)
    : sigma2_(sigma2), range_(range), nu_(smoothness) {
  PARMVN_EXPECTS(sigma2 > 0.0);
  PARMVN_EXPECTS(range > 0.0);
  PARMVN_EXPECTS(smoothness > 0.0);
  scale_ = std::pow(2.0, 1.0 - nu_) / std::tgamma(nu_);
}

double MaternKernel::operator()(double distance) const {
  PARMVN_EXPECTS(distance >= 0.0);
  if (distance == 0.0) return sigma2_;
  const double z = distance / range_;
  // Closed forms avoid the Bessel evaluation for the half-integer orders
  // that dominate geostatistics practice.
  if (nu_ == 0.5) return sigma2_ * std::exp(-z);
  if (nu_ == 1.5) return sigma2_ * (1.0 + z) * std::exp(-z);
  if (nu_ == 2.5) return sigma2_ * (1.0 + z + z * z / 3.0) * std::exp(-z);
  if (z > 705.0) return 0.0;  // K_nu underflows; covariance is exactly 0 in
                              // double precision anyway
  const double k = bessel_k(nu_, z);
  const double value = sigma2_ * scale_ * std::pow(z, nu_) * k;
  // Guard against rounding pushing C(d) above C(0) for tiny distances.
  return value > sigma2_ ? sigma2_ : value;
}

std::string MaternKernel::name() const {
  return "matern(nu=" + std::to_string(nu_) + ")";
}

std::string MaternKernel::cache_key() const {
  return kernel_key("matern", sigma2_, range_, nu_);
}

ExponentialKernel::ExponentialKernel(double sigma2, double range)
    : sigma2_(sigma2), range_(range) {
  PARMVN_EXPECTS(sigma2 > 0.0);
  PARMVN_EXPECTS(range > 0.0);
}

double ExponentialKernel::operator()(double distance) const {
  PARMVN_EXPECTS(distance >= 0.0);
  return sigma2_ * std::exp(-distance / range_);
}

std::string ExponentialKernel::name() const { return "exponential"; }

std::string ExponentialKernel::cache_key() const {
  return kernel_key("exponential", sigma2_, range_, 0.0);
}

GaussianKernel::GaussianKernel(double sigma2, double range)
    : sigma2_(sigma2), range_(range) {
  PARMVN_EXPECTS(sigma2 > 0.0);
  PARMVN_EXPECTS(range > 0.0);
}

double GaussianKernel::operator()(double distance) const {
  PARMVN_EXPECTS(distance >= 0.0);
  const double z = distance / range_;
  return sigma2_ * std::exp(-z * z);
}

std::string GaussianKernel::name() const { return "gaussian"; }

std::string GaussianKernel::cache_key() const {
  return kernel_key("gaussian", sigma2_, range_, 0.0);
}

PoweredExponentialKernel::PoweredExponentialKernel(double sigma2, double range,
                                                   double power)
    : sigma2_(sigma2), range_(range), power_(power) {
  PARMVN_EXPECTS(sigma2 > 0.0);
  PARMVN_EXPECTS(range > 0.0);
  PARMVN_EXPECTS(power > 0.0 && power <= 2.0);
}

double PoweredExponentialKernel::operator()(double distance) const {
  PARMVN_EXPECTS(distance >= 0.0);
  return sigma2_ * std::exp(-std::pow(distance / range_, power_));
}

std::string PoweredExponentialKernel::name() const {
  return "powexp(p=" + std::to_string(power_) + ")";
}

std::string PoweredExponentialKernel::cache_key() const {
  return kernel_key("powexp", sigma2_, range_, power_);
}

std::unique_ptr<CovKernel> make_kernel(const std::string& kind, double sigma2,
                                       double range, double extra) {
  if (kind == "matern")
    return std::make_unique<MaternKernel>(sigma2, range, extra);
  if (kind == "exponential")
    return std::make_unique<ExponentialKernel>(sigma2, range);
  if (kind == "gaussian")
    return std::make_unique<GaussianKernel>(sigma2, range);
  if (kind == "powexp")
    return std::make_unique<PoweredExponentialKernel>(sigma2, range, extra);
  throw Error("unknown covariance kernel kind: " + kind);
}

}  // namespace parmvn::stats
