// Univariate standard normal distribution: density, CDF, log-CDF and
// quantile function.
//
// These are the innermost scalar kernels of the SOV/QMC integrand
// (Algorithm 3 of the paper evaluates Phi and Phi^-1 once per matrix entry),
// so they must be both accurate to ~1 ulp and cheap.
#pragma once

namespace parmvn::stats {

/// Standard normal density phi(x).
double norm_pdf(double x) noexcept;

/// Standard normal CDF Phi(x) = P(Z <= x). Accurate in both tails
/// (implemented via erfc). Phi(-inf)=0, Phi(inf)=1.
double norm_cdf(double x) noexcept;

/// log Phi(x), stable for x << 0 where Phi underflows (asymptotic series in
/// the far left tail).
double norm_logcdf(double x) noexcept;

/// Quantile function Phi^-1(p) for p in [0,1]; returns -inf/+inf at the
/// endpoints. Wichura's AS241 (PPND16) rational approximations, |rel err|
/// below ~1e-15 over the full range.
double norm_quantile(double p) noexcept;

/// Difference Phi(b) - Phi(a) computed to avoid cancellation when both
/// arguments sit in the same tail (uses symmetry to evaluate in the left
/// tail where erfc is accurate).
double norm_cdf_diff(double a, double b) noexcept;

}  // namespace parmvn::stats
