// Univariate standard normal distribution: density, CDF, log-CDF and
// quantile function — scalar kernels plus batched (array) variants.
//
// These are the innermost kernels of the SOV/QMC integrand (Algorithm 3 of
// the paper evaluates Phi and Phi^-1 once per matrix entry), so they must be
// both accurate to ~1 ulp and cheap. The *_batch variants evaluate a whole
// sample-contiguous panel row at once; under PARMVN_KERNEL_NATIVE they run
// on vector-extension lanes (branch-blended erfc polynomials, AS241
// central/tail select — see stats/normal_batch.cpp), otherwise they loop
// over the scalar routines below, bitwise identically.
#pragma once

#include "common/types.hpp"

namespace parmvn::stats {

/// Standard normal density phi(x).
double norm_pdf(double x) noexcept;

/// Standard normal CDF Phi(x) = P(Z <= x). Accurate in both tails
/// (implemented via erfc). Phi(-inf)=0, Phi(inf)=1.
double norm_cdf(double x) noexcept;

/// log Phi(x), stable for x << 0 where Phi underflows (asymptotic series in
/// the far left tail).
double norm_logcdf(double x) noexcept;

/// Quantile function Phi^-1(p) for p in [0,1]; returns -inf/+inf at the
/// endpoints. Wichura's AS241 (PPND16) rational approximations, |rel err|
/// below ~1e-15 over the full range.
double norm_quantile(double p) noexcept;

/// Difference Phi(b) - Phi(a) computed to avoid cancellation when both
/// arguments sit in the same tail (uses symmetry to evaluate in the left
/// tail where erfc is accurate).
double norm_cdf_diff(double a, double b) noexcept;

// ---- batched variants (the QMC sweep's per-row primitives) ----
//
// Semantics match the scalar functions element-wise, including endpoints
// (+-inf, p outside (0,1)) and NaN propagation. On the scalar fallback
// build the results are bitwise identical to calling the scalar routine per
// element; on the native (vectorized) build they agree to <= ~1e-14
// relative — lanes with extreme inputs (|x| > 26, subnormal-adjacent p) are
// delegated to the scalar routine, so the far-tail/endpoint values stay
// bitwise exact there too. Per-sample lanes are independent: out[i] depends
// only on the inputs at i and on i's position within the fixed 8-wide
// chunking of [0, n), never on neighbouring values' magnitudes beyond the
// shared chunk-eligibility test. `out` must not alias the inputs.

/// out[i] = Phi(x[i]).
void norm_cdf_batch(i64 n, const double* x, double* out) noexcept;

/// out[i] = Phi(b[i]) - Phi(a[i]) with the scalar routine's anti-
/// cancellation evaluation; 0 where !(a < b), NaN limits included.
void norm_cdf_diff_batch(i64 n, const double* a, const double* b,
                         double* out) noexcept;

/// out[i] = Phi^-1(p[i]).
void norm_quantile_batch(i64 n, const double* p, double* out) noexcept;

/// Fused row transform of the QMC integrand: phi[i] = Phi(a[i]) and
/// diff[i] = Phi(b[i]) - Phi(a[i]) in one pass. Phi(a) falls out of the
/// diff's own erfc evaluations through the reflection erfc(-t) = 2 - erfc(t),
/// so the row costs two erfc evaluations instead of three. The phi lane is
/// bitwise identical to norm_cdf_batch whenever the two take the same path
/// for the chunk — always on the fallback build, and on the native build
/// except when an extreme *b* (finite |b| > 26 or NaN) pushes the fused
/// chunk to the scalar routines while a cdf-only chunk of the same `a`
/// values would stay vectorized (then they differ by the usual <= ~1e-14).
/// Either way phi always satisfies the norm_cdf_batch accuracy contract.
void norm_cdf_and_diff_batch(i64 n, const double* a, const double* b,
                             double* phi, double* diff) noexcept;

/// True when the batch variants run on the native vector-lane path (the
/// library was built with PARMVN_KERNEL_NATIVE and a vector-extension
/// compiler); false on the scalar fallback. Tests and benches key their
/// expectations (bitwise vs 1e-14) off this.
[[nodiscard]] bool norm_batch_vectorized() noexcept;

}  // namespace parmvn::stats
