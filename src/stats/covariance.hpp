// Isotropic covariance kernels C(d; theta). The paper builds covariance
// matrices from the Matern family (eq. 6); the synthetic experiments of
// Fig. 1/Fig. 5 use the exponential kernel (Matern with smoothness 1/2) with
// ranges {0.033, 0.1, 0.234}.
#pragma once

#include <memory>
#include <string>

namespace parmvn::stats {

/// Isotropic positive-definite kernel: covariance as a function of distance.
class CovKernel {
 public:
  virtual ~CovKernel() = default;

  /// C(d), d >= 0. C(0) == variance().
  [[nodiscard]] virtual double operator()(double distance) const = 0;

  /// Marginal variance sigma^2 = C(0).
  [[nodiscard]] virtual double variance() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Parameter-complete identity for factor caching: kernels with the same
  /// key must be bitwise-identical functions. Empty (the default) opts the
  /// kernel out of caching.
  [[nodiscard]] virtual std::string cache_key() const { return {}; }
};

/// Matern kernel (paper eq. 6):
///   C(d) = sigma2 * 2^(1-nu)/Gamma(nu) * (d/range)^nu * K_nu(d/range).
/// Closed forms are used for nu in {1/2, 3/2, 5/2}; otherwise K_nu is
/// evaluated numerically.
class MaternKernel final : public CovKernel {
 public:
  MaternKernel(double sigma2, double range, double smoothness);

  [[nodiscard]] double operator()(double distance) const override;
  [[nodiscard]] double variance() const override { return sigma2_; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string cache_key() const override;

  [[nodiscard]] double range() const noexcept { return range_; }
  [[nodiscard]] double smoothness() const noexcept { return nu_; }

 private:
  double sigma2_;
  double range_;
  double nu_;
  double scale_;  // 2^(1-nu)/Gamma(nu)
};

/// Exponential kernel C(d) = sigma2 * exp(-d/range)  (== Matern nu=1/2).
class ExponentialKernel final : public CovKernel {
 public:
  ExponentialKernel(double sigma2, double range);

  [[nodiscard]] double operator()(double distance) const override;
  [[nodiscard]] double variance() const override { return sigma2_; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string cache_key() const override;

 private:
  double sigma2_;
  double range_;
};

/// Squared-exponential (Gaussian) kernel C(d) = sigma2 * exp(-(d/range)^2).
class GaussianKernel final : public CovKernel {
 public:
  GaussianKernel(double sigma2, double range);

  [[nodiscard]] double operator()(double distance) const override;
  [[nodiscard]] double variance() const override { return sigma2_; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string cache_key() const override;

 private:
  double sigma2_;
  double range_;
};

/// Powered exponential C(d) = sigma2 * exp(-(d/range)^power), 0 < power <= 2.
class PoweredExponentialKernel final : public CovKernel {
 public:
  PoweredExponentialKernel(double sigma2, double range, double power);

  [[nodiscard]] double operator()(double distance) const override;
  [[nodiscard]] double variance() const override { return sigma2_; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string cache_key() const override;

 private:
  double sigma2_;
  double range_;
  double power_;
};

/// Factory used by tools/tests: kind in {"matern","exponential","gaussian",
/// "powexp"}.
std::unique_ptr<CovKernel> make_kernel(const std::string& kind, double sigma2,
                                       double range, double extra);

}  // namespace parmvn::stats
