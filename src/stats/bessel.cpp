#include "stats/bessel.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace parmvn::stats {

namespace {

constexpr int kMaxIter = 20000;
constexpr double kEps = 1e-16;
constexpr double kEulerGamma = 0.5772156649015328606065120900824024;

// gam1 = [1/Gamma(1-mu) - 1/Gamma(1+mu)] / (2 mu)
// gam2 = [1/Gamma(1-mu) + 1/Gamma(1+mu)] / 2
// gampl = 1/Gamma(1+mu), gammi = 1/Gamma(1-mu); |mu| <= 1/2.
void temme_gammas(double mu, double& gam1, double& gam2, double& gampl,
                  double& gammi) {
  gampl = 1.0 / std::tgamma(1.0 + mu);
  gammi = 1.0 / std::tgamma(1.0 - mu);
  if (std::fabs(mu) < 1e-8) {
    // Limit mu -> 0 of (gammi - gampl)/(2 mu): d/dmu[1/Gamma(1-mu)] = -psi(1)
    // and d/dmu[1/Gamma(1+mu)] = +psi(1) at mu=0, psi(1) = -EulerGamma.
    gam1 = -kEulerGamma;
  } else {
    gam1 = (gammi - gampl) / (2.0 * mu);
  }
  gam2 = 0.5 * (gammi + gampl);
}

// K_mu(x) and K_{mu+1}(x) for |mu| <= 1/2, 0 < x <= 2 (Temme's series).
void bessel_k_small(double mu, double x, double& kmu, double& kmu1) {
  const double x2 = 0.5 * x;
  const double pimu = M_PI * mu;
  const double fact =
      (std::fabs(pimu) < kEps) ? 1.0 : pimu / std::sin(pimu);
  double d = -std::log(x2);
  double e = mu * d;
  const double fact2 = (std::fabs(e) < kEps) ? 1.0 : std::sinh(e) / e;
  double gam1, gam2, gampl, gammi;
  temme_gammas(mu, gam1, gam2, gampl, gammi);
  double ff = fact * (gam1 * std::cosh(e) + gam2 * fact2 * d);
  double sum = ff;
  e = std::exp(e);
  double p = 0.5 * e / gampl;
  double q = 0.5 / (e * gammi);
  double c = 1.0;
  const double d2 = x2 * x2;
  double sum1 = p;
  int i = 1;
  for (; i <= kMaxIter; ++i) {
    ff = (i * ff + p + q) / (i * i - mu * mu);
    c *= d2 / i;
    p /= (i - mu);
    q /= (i + mu);
    const double del = c * ff;
    sum += del;
    const double del1 = c * (p - i * ff);
    sum1 += del1;
    if (std::fabs(del) < std::fabs(sum) * kEps) break;
  }
  PARMVN_ASSERT(i <= kMaxIter);
  kmu = sum;
  kmu1 = sum1 * (2.0 / x);
}

// K_mu(x) and K_{mu+1}(x) for |mu| <= 1/2, x > 2 (Steed's CF2); returns the
// *scaled* values e^x K.
void bessel_k_cf2_scaled(double mu, double x, double& kmu, double& kmu1) {
  double b = 2.0 * (1.0 + x);
  double d = 1.0 / b;
  double h = d;
  double delh = d;
  double q1 = 0.0, q2 = 1.0;
  const double a1 = 0.25 - mu * mu;
  double q = a1, c = a1, a = -a1;
  double s = 1.0 + q * delh;
  int i = 2;
  for (; i <= kMaxIter; ++i) {
    a -= 2 * (i - 1);
    c = -a * c / i;
    const double qnew = (q1 - b * q2) / a;
    q1 = q2;
    q2 = qnew;
    q += c * qnew;
    b += 2.0;
    d = 1.0 / (b + a * d);
    delh = (b * d - 1.0) * delh;
    h += delh;
    const double dels = q * delh;
    s += dels;
    if (std::fabs(dels / s) < kEps) break;
  }
  PARMVN_ASSERT(i <= kMaxIter);
  h = a1 * h;
  kmu = std::sqrt(M_PI / (2.0 * x)) / s;  // scaled: e^x K_mu(x)
  kmu1 = kmu * (mu + x + 0.5 - h) / x;
}

double bessel_k_impl(double nu, double x, bool scaled) {
  PARMVN_EXPECTS(x > 0.0);
  nu = std::fabs(nu);  // K_{-nu}(x) == K_nu(x)
  const int nl = static_cast<int>(nu + 0.5);  // recurrence steps
  const double mu = nu - nl;                  // |mu| <= 1/2
  double kmu, kmu1;
  bool have_scaled = false;
  if (x <= 2.0) {
    bessel_k_small(mu, x, kmu, kmu1);
  } else {
    bessel_k_cf2_scaled(mu, x, kmu, kmu1);
    have_scaled = true;
  }
  // Upward recurrence K_{m+1}(x) = K_{m-1}(x) + 2m/x K_m(x) (stable for K).
  for (int i = 1; i <= nl; ++i) {
    const double knext = kmu + (2.0 * (mu + i) / x) * kmu1;
    kmu = kmu1;
    kmu1 = knext;
  }
  double result = kmu;  // == K_nu
  if (scaled && !have_scaled) result *= std::exp(x);
  if (!scaled && have_scaled) result *= std::exp(-x);
  return result;
}

}  // namespace

double bessel_k(double nu, double x) { return bessel_k_impl(nu, x, false); }

double bessel_k_scaled(double nu, double x) {
  return bessel_k_impl(nu, x, true);
}

}  // namespace parmvn::stats
