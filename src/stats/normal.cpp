#include "stats/normal.hpp"

#include <cmath>
#include <limits>

namespace parmvn::stats {

namespace {
constexpr double kInvSqrt2 = 0.7071067811865475244008443621048490;
constexpr double kInvSqrt2Pi = 0.3989422804014326779399460599343819;
}  // namespace

double norm_pdf(double x) noexcept {
  return kInvSqrt2Pi * std::exp(-0.5 * x * x);
}

double norm_cdf(double x) noexcept {
  // 0.5*erfc(-x/sqrt(2)) is accurate in both tails: erfc handles the left
  // tail directly and saturates to 2 on the right without cancellation.
  return 0.5 * std::erfc(-x * kInvSqrt2);
}

double norm_cdf_diff(double a, double b) noexcept {
  if (!(a < b)) return 0.0;
  // Evaluate both CDFs in the left tail: Phi(b)-Phi(a) = Phi(-a)-Phi(-b)
  // by symmetry. Choosing the side where both arguments are <= 0 keeps
  // erfc in its accurate (non-cancelling) regime.
  if (a >= 0.0) return 0.5 * (std::erfc(a * kInvSqrt2) - std::erfc(b * kInvSqrt2));
  if (b <= 0.0) return 0.5 * (std::erfc(-b * kInvSqrt2) - std::erfc(-a * kInvSqrt2));
  // Straddles zero: both terms are O(1); plain difference is fine.
  return norm_cdf(b) - norm_cdf(a);
}

double norm_logcdf(double x) noexcept {
  if (x > -1.0) {
    // Phi(x) is far from 0; log of the direct value is accurate.
    return std::log1p(-0.5 * std::erfc(x * kInvSqrt2));
  }
  if (x > -37.5) {
    // erfc still representable: log(erfc/2).
    return std::log(0.5 * std::erfc(-x * kInvSqrt2));
  }
  // Far left tail: Phi(x) ~ phi(x)/(-x) * (1 - 1/x^2 + 3/x^4 - 15/x^6 ...).
  const double z = -x;
  const double z2 = z * z;
  double series = 1.0 - 1.0 / z2 + 3.0 / (z2 * z2) - 15.0 / (z2 * z2 * z2);
  return -0.5 * z2 - 0.5 * std::log(2.0 * M_PI) - std::log(z) + std::log(series);
}

double norm_quantile(double p) noexcept {
  // Wichura (1988), Algorithm AS 241, PPND16.
  if (std::isnan(p)) return p;
  if (p <= 0.0) return -std::numeric_limits<double>::infinity();
  if (p >= 1.0) return std::numeric_limits<double>::infinity();

  const double q = p - 0.5;
  if (std::fabs(q) <= 0.425) {
    const double r = 0.180625 - q * q;
    return q *
           (((((((2.5090809287301226727e+3 * r + 3.3430575583588128105e+4) * r +
                 6.7265770927008700853e+4) * r + 4.5921953931549871457e+4) * r +
               1.3731693765509461125e+4) * r + 1.9715909503065514427e+3) * r +
             1.3314166789178437745e+2) * r + 3.3871328727963666080e+0) /
           (((((((5.2264952788528545610e+3 * r + 2.8729085735721942674e+4) * r +
                 3.9307895800092710610e+4) * r + 2.1213794301586595867e+4) * r +
               5.3941960214247511077e+3) * r + 6.8718700749205790830e+2) * r +
             4.2313330701600911252e+1) * r + 1.0);
  }

  double r = (q < 0.0) ? p : 1.0 - p;
  r = std::sqrt(-std::log(r));
  double val;
  if (r <= 5.0) {
    r -= 1.6;
    val = (((((((7.74545014278341407640e-4 * r + 2.27238449892691845833e-2) * r +
                2.41780725177450611770e-1) * r + 1.27045825245236838258e+0) * r +
              3.64784832476320460504e+0) * r + 5.76949722146069140550e+0) * r +
            4.63033784615654529590e+0) * r + 1.42343711074968357734e+0) /
          (((((((1.05075007164441684324e-9 * r + 5.47593808499534494600e-4) * r +
                1.51986665636164571966e-2) * r + 1.48103976427480074590e-1) * r +
              6.89767334985100004550e-1) * r + 1.67638483018380384940e+0) * r +
            2.05319162663775882187e+0) * r + 1.0);
  } else {
    r -= 5.0;
    val = (((((((2.01033439929228813265e-7 * r + 2.71155556874348757815e-5) * r +
                1.24266094738807843860e-3) * r + 2.65321895265761230930e-2) * r +
              2.96560571828504891230e-1) * r + 1.78482653991729133580e+0) * r +
            5.46378491116411436990e+0) * r + 6.65790464350110377720e+0) /
          (((((((2.04426310338993978564e-15 * r + 1.42151175831644588870e-7) * r +
                1.84631831751005468180e-5) * r + 7.86869131145613259100e-4) * r +
              1.48753612908506148525e-2) * r + 1.36929880922735805310e-1) * r +
            5.99832206555887937690e-1) * r + 1.0);
  }
  return (q < 0.0) ? -val : val;
}

}  // namespace parmvn::stats
