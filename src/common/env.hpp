// Environment-variable configuration knobs shared by tests and benches.
#pragma once

#include <string>

#include "common/types.hpp"

namespace parmvn {

/// Number of worker threads to use by default: $PARMVN_NUM_THREADS if set,
/// else std::thread::hardware_concurrency(), else 1.
int default_num_threads();

/// Integer environment variable with fallback.
i64 env_i64(const char* name, i64 fallback);

/// Floating-point environment variable with fallback.
double env_f64(const char* name, double fallback);

/// String environment variable with fallback.
std::string env_str(const char* name, const std::string& fallback);

}  // namespace parmvn
