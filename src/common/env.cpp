#include "common/env.hpp"

#include <cstdlib>
#include <string>
#include <thread>

namespace parmvn {

i64 env_i64(const char* name, i64 fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::stoll(v);
}

double env_f64(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::stod(v);
}

std::string env_str(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return v;
}

int default_num_threads() {
  const i64 env = env_i64("PARMVN_NUM_THREADS", 0);
  if (env > 0) return static_cast<int>(env);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace parmvn
