// Deterministic fault injection for failure-path testing.
//
// The library's error paths (first-error task cancellation, round-handle
// release on a submit-time throw, FactorCache in-flight takeover, TLR
// jitter escalation, EP-tier demotion) are reachable only through rare
// events — a non-PD pivot, a bad allocation — so without help they are
// tested by hope. Named injection sites make them drivable on purpose:
//
//   // library code (hot path — one relaxed atomic load when nothing is
//   // armed, nothing else):
//   PARMVN_FAULT_POINT("tlr.potrf.pivot");
//
//   // test code:
//   fault::ScopedFault f("tlr.potrf.pivot", /*first_hit=*/1, /*trips=*/2);
//   EXPECT_THROW(potrf_tlr(rt, a), Error);   // attempts 1 and 2 trip
//
// A plan is counter-based: hits of the site are counted from the moment
// the plan is armed, and hits numbered [first_hit, first_hit + trips)
// (1-based) throw parmvn::Error("fault injected: <site>"). Counting is
// process-global and mutex-serialised, so a plan over a site hit from one
// thread at a time is fully deterministic; for sites hit concurrently by
// worker tasks the *set* of tripped hits is deterministic but which task
// observes them follows the schedule — tests over such sites should assert
// outcomes (an error propagated, state recovered), not victim identity.
//
// Sites are plain string literals; the catalog lives in README.md
// ("Failure model & degradation ladder"). Production builds keep the
// macro compiled in: the disarmed fast path is a single relaxed load of a
// process-wide counter, measured in the noise even inside task bodies.
#pragma once

#include <atomic>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace parmvn::fault {

namespace detail {
// Number of armed plans; non-zero gates the slow path. Relaxed is enough:
// tests arm plans before starting the work that should trip them, and any
// later synchronisation (task submission, thread start) publishes the plan
// map itself.
extern std::atomic<int> g_armed_plans;
// Slow path: count the hit against an armed plan (if any) and throw
// parmvn::Error when the hit is scheduled to trip.
void on_hit(const char* site);
}  // namespace detail

/// Arm a plan for `site`: hits numbered [first_hit, first_hit + trips)
/// (1-based, counted from this call) throw parmvn::Error. Re-arming a site
/// replaces its plan and resets its counters.
void arm(std::string_view site, i64 first_hit = 1, i64 trips = 1);

/// Remove the plan for `site` (no-op when none is armed).
void disarm(std::string_view site);

/// Remove every plan. Tests should leave the process clean; ScopedFault
/// does this per site automatically.
void disarm_all();

/// Hits observed at `site` while its current plan has been armed
/// (0 when no plan is or was armed since the last re-arm).
[[nodiscard]] i64 hits(std::string_view site);

/// Times `site` actually threw under its current plan.
[[nodiscard]] i64 trips(std::string_view site);

/// RAII plan for tests: arms in the constructor, disarms its site in the
/// destructor.
class ScopedFault {
 public:
  explicit ScopedFault(std::string_view site, i64 first_hit = 1,
                       i64 trip_count = 1);
  ~ScopedFault();
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  std::string site_;
};

}  // namespace parmvn::fault

/// Injection site: no-op (one relaxed load) unless a test armed a plan
/// anywhere in the process; with a plan covering this site, the scheduled
/// hits throw parmvn::Error from right here. `site` must be a string
/// literal (or otherwise outlive the call).
#define PARMVN_FAULT_POINT(site)                                      \
  do {                                                                \
    if (::parmvn::fault::detail::g_armed_plans.load(                  \
            std::memory_order_relaxed) != 0)                          \
      ::parmvn::fault::detail::on_hit(site);                          \
  } while (false)
