// Fundamental index and size types used across the library.
//
// Tile indices, matrix dimensions and flop counts routinely exceed 2^31 for
// the problem sizes in the paper (n up to 760,384), so all sizes are signed
// 64-bit (signed per Core Guidelines ES.102/ES.106 to keep arithmetic sane).
#pragma once

#include <cstdint>

namespace parmvn {

using i32 = std::int32_t;
using i64 = std::int64_t;
using u64 = std::uint64_t;

}  // namespace parmvn
