// FNV-1a — the library's one non-cryptographic byte hash, used for cache-key
// material (factor cache, generator identities). Exactness guarantees must
// come from the caller (e.g. element-wise comparison on cache hits); the
// hash only provides cheap discrimination.
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace parmvn {

inline constexpr u64 kFnv1aOffset = 14695981039346656037ull;
inline constexpr u64 kFnv1aPrime = 1099511628211ull;
/// Second, independently seeded stream for 128-bit content keys (the golden
/// ratio in 64 bits xored into the offset): run both streams over the same
/// bytes and concatenate.
inline constexpr u64 kFnv1aOffset2 = kFnv1aOffset ^ 0x9e3779b97f4a7c15ull;

/// Fold `bytes` bytes at `data` into the running hash `h` (seed with
/// kFnv1aOffset).
[[nodiscard]] inline u64 fnv1a_append(u64 h, const void* data,
                                      std::size_t bytes) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnv1aPrime;
  }
  return h;
}

}  // namespace parmvn
