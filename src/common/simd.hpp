// Shared SIMD lane types for the -march=native kernel TUs.
//
// GCC/Clang vector extensions, not intrinsics: the same source lowers to the
// best ISA the translation unit is compiled for (AVX-512 down to SSE2), so
// the GEMM microkernel and the batched stats primitives stay portable while
// still mapping onto full-width registers under PARMVN_KERNEL_NATIVE.
//
// Only the TUs that CMake compiles with the native flags should include
// this; everything else keeps the default target so baseline numerics stay
// flag-stable. On compilers without the extension, PARMVN_SIMD_VECTOR_EXT
// stays undefined and callers must provide a scalar path.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define PARMVN_SIMD_VECTOR_EXT 1

// Below-native builds lower v8df to narrower registers and warn that the
// vector-call ABI differs across GCC versions; every vector value here stays
// within one TU (the helpers inline), so the ABI never crosses a boundary.
#pragma GCC diagnostic ignored "-Wpsabi"

#include <cstring>

#include "common/types.hpp"

namespace parmvn::simd {

inline constexpr int kLanes = 8;

using v8df = double __attribute__((vector_size(64), aligned(64)));
// Comparison results on v8df: one i64 lane of all-ones (true) / zero per
// double lane.
using v8di = i64 __attribute__((vector_size(64), aligned(64)));
using v8du = u64 __attribute__((vector_size(64), aligned(64)));

inline v8df splat(double x) noexcept { return v8df{x, x, x, x, x, x, x, x}; }

/// Unaligned-safe load/store; memcpy keeps it strict-aliasing clean and
/// compiles to a single vector move.
inline v8df load8(const double* p) noexcept {
  v8df v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

inline void store8(double* p, v8df v) noexcept {
  __builtin_memcpy(p, &v, sizeof(v));
}

inline v8di bits_of(v8df v) noexcept {
  v8di b;
  __builtin_memcpy(&b, &v, sizeof(b));
  return b;
}

inline v8df value_of(v8di b) noexcept {
  v8df v;
  __builtin_memcpy(&v, &b, sizeof(v));
  return v;
}

/// Lanewise mask ? a : b, with `mask` an all-ones/zero comparison result.
inline v8df select(v8di mask, v8df a, v8df b) noexcept {
  return value_of((mask & bits_of(a)) | (~mask & bits_of(b)));
}

using v8qi = char __attribute__((vector_size(8)));

/// Compress an all-ones/zero comparison mask to one byte per lane (a single
/// vpmovqb on AVX-512, a short pack sequence elsewhere) — the cheap form of
/// movemask for branch probing.
inline u64 mask_bytes(v8di mask) noexcept {
  const v8qi b = __builtin_convertvector(mask, v8qi);
  u64 r;
  __builtin_memcpy(&r, &b, sizeof(r));
  return r;
}

inline bool all_true(v8di mask) noexcept {
  return mask_bytes(mask) == ~u64{0};
}

inline bool any_true(v8di mask) noexcept { return mask_bytes(mask) != 0; }

/// min/max with the select's NaN semantics: picks `b` when the comparison
/// with a NaN lane is false (callers screen NaNs before relying on these).
inline v8df vmin(v8df a, v8df b) noexcept { return select(a < b, a, b); }
inline v8df vmax(v8df a, v8df b) noexcept { return select(a > b, a, b); }

inline v8df vabs(v8df a) noexcept {
  return value_of(bits_of(a) & static_cast<i64>(0x7fffffffffffffffLL));
}

}  // namespace parmvn::simd

#endif  // __GNUC__ || __clang__
