// Lock-free work-stealing deque (Chase–Lev) and the tiny spinlock used by
// the task runtime's per-task bookkeeping.
//
// The deque follows Chase & Lev, "Dynamic Circular Work-Stealing Deque"
// (SPAA 2005) with the memory-order discipline of Lê et al., "Correct and
// Efficient Work-Stealing for Weak Memory Models" (PPoPP 2013), with one
// deliberate deviation: the standalone fences of the PPoPP version are
// strengthened into seq_cst operations on `top_`/`bottom_` themselves.
// ThreadSanitizer does not model std::atomic_thread_fence, so the
// fence-based formulation reports false races; the seq_cst formulation is
// strictly stronger, TSan-exact, and on x86 costs one locked instruction on
// the owner's push/pop — noise next to a task body.
//
// Ownership protocol:
//  * push()/pop() may only be called by the deque's owner thread (the
//    worker whose ready queue this is). They operate on the bottom end, so
//    the owner runs newest-first (LIFO, cache-hot).
//  * steal() may be called by any thread. It takes from the top end, so
//    thieves run oldest-first (FIFO) — for task graphs submitted in
//    dependency order that is the deepest remaining critical path.
//  * Values must be trivially copyable (the runtime stores raw task
//    pointers). A null value is reserved for "empty / lost the race".
//
// Growth: the ring doubles when full. Only the owner grows; retired rings
// are kept alive until the deque is destroyed so a concurrently racing
// thief can still read through a stale ring pointer (its CAS on `top_`
// decides whether the read value is used, so stale *contents* are safe).
#pragma once

#include <atomic>
#include <bit>
#include <memory>
#include <thread>
#include <vector>

#include "common/contracts.hpp"
#include "common/types.hpp"

namespace parmvn::common {

/// Pause hint for spin loops; falls back to a plain yield-less no-op where
/// the ISA has no cheap pause instruction.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

/// Minimal test-and-set spinlock for critical sections of a few dozen
/// instructions (successor-list append, done-flag flip). Spins with a pause
/// hint and yields to the OS after a burst so an oversubscribed core (more
/// workers than CPUs) cannot starve the lock holder.
class Spinlock {
 public:
  void lock() noexcept {
    int spins = 0;
    while (locked_.exchange(true, std::memory_order_acquire)) {
      do {
        if (++spins >= kSpinsBeforeYield) {
          spins = 0;
          std::this_thread::yield();
        } else {
          cpu_relax();
        }
      } while (locked_.load(std::memory_order_relaxed));
    }
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

 private:
  static constexpr int kSpinsBeforeYield = 64;
  std::atomic<bool> locked_{false};
};

/// RAII guard for Spinlock (std::lock_guard works too; this avoids the
/// <mutex> include in headers that only need the spinlock).
class SpinlockGuard {
 public:
  explicit SpinlockGuard(Spinlock& lock) noexcept : lock_(lock) {
    lock_.lock();
  }
  ~SpinlockGuard() { lock_.unlock(); }
  SpinlockGuard(const SpinlockGuard&) = delete;
  SpinlockGuard& operator=(const SpinlockGuard&) = delete;

 private:
  Spinlock& lock_;
};

template <typename T>
class WsDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "WsDeque stores values in atomic ring slots");

 public:
  explicit WsDeque(i64 capacity = kDefaultCapacity) {
    rings_.push_back(std::make_unique<Ring>(capacity));
    ring_.store(rings_.back().get(), std::memory_order_relaxed);
  }

  WsDeque(const WsDeque&) = delete;
  WsDeque& operator=(const WsDeque&) = delete;

  /// Owner only: push one item at the bottom.
  void push(T item) {
    const i64 b = bottom_.load(std::memory_order_relaxed);
    const i64 t = top_.load(std::memory_order_acquire);
    Ring* ring = ring_.load(std::memory_order_relaxed);
    if (b - t >= ring->capacity) ring = grow(ring, t, b);
    ring->put(b, item);
    // seq_cst publish: a thief that observes the new bottom also observes
    // the slot write (release) and orders against its own top CAS.
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }

  /// Owner only: pop the most recently pushed item; returns T{} when the
  /// deque is empty or the last item was lost to a concurrent thief.
  T pop() {
    // Empty fast path without the seq_cst reservation: top only grows, so
    // a stale top under-reports it and the test can only false-*negative*
    // into the slow path — "empty" here is always truly empty.
    if (bottom_.load(std::memory_order_relaxed) -
            top_.load(std::memory_order_relaxed) <=
        0)
      return T{};
    const i64 b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring* ring = ring_.load(std::memory_order_relaxed);
    // Reserve the bottom slot before inspecting top (the seq_cst store is
    // the fence that orders this reservation against concurrent steals).
    bottom_.store(b, std::memory_order_seq_cst);
    i64 t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // empty: undo the reservation
      bottom_.store(b + 1, std::memory_order_relaxed);
      return T{};
    }
    T item = ring->get(b);
    if (t == b) {
      // Last element: race the thieves for it via the top CAS.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        item = T{};  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Any thread: steal the oldest item; returns T{} when the deque looks
  /// empty or the CAS lost a race (callers just move to the next victim).
  T steal() {
    i64 t = top_.load(std::memory_order_seq_cst);
    const i64 b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return T{};
    Ring* ring = ring_.load(std::memory_order_acquire);
    T item = ring->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return T{};
    }
    return item;
  }

  /// Racy size hint (stale top/bottom may over- or under-report; a negative
  /// value is a transient artefact of a mid-pop reservation). Scan-loop
  /// heuristic only — never a correctness signal.
  [[nodiscard]] i64 size_hint() const noexcept {
    return bottom_.load(std::memory_order_relaxed) -
           top_.load(std::memory_order_relaxed);
  }

  /// Racy emptiness hint for scan loops — never a correctness signal.
  [[nodiscard]] bool empty_hint() const noexcept { return size_hint() <= 0; }

 private:
  static constexpr i64 kDefaultCapacity = 256;

  struct Ring {
    explicit Ring(i64 cap)
        : capacity(cap),
          mask(cap - 1),
          slots(std::make_unique<std::atomic<T>[]>(static_cast<std::size_t>(cap))) {
      // The mask-based wraparound silently corrupts indexing otherwise.
      PARMVN_EXPECTS(cap > 0 && std::has_single_bit(static_cast<u64>(cap)));
    }

    [[nodiscard]] T get(i64 i) const noexcept {
      return slots[static_cast<std::size_t>(i & mask)].load(
          std::memory_order_relaxed);
    }
    void put(i64 i, T v) noexcept {
      slots[static_cast<std::size_t>(i & mask)].store(
          v, std::memory_order_relaxed);
    }

    const i64 capacity;  // power of two
    const i64 mask;
    std::unique_ptr<std::atomic<T>[]> slots;
  };

  Ring* grow(Ring* old, i64 t, i64 b) {
    rings_.push_back(std::make_unique<Ring>(old->capacity * 2));
    Ring* bigger = rings_.back().get();
    for (i64 i = t; i < b; ++i) bigger->put(i, old->get(i));
    // Thieves latch the ring pointer with acquire; the retired ring stays
    // allocated (rings_ is owner-touched only), so a thief mid-steal on the
    // old ring reads stale-but-valid memory and its CAS arbitrates.
    ring_.store(bigger, std::memory_order_release);
    return bigger;
  }

  std::atomic<i64> top_{0};
  std::atomic<i64> bottom_{0};
  std::atomic<Ring*> ring_{nullptr};
  std::vector<std::unique_ptr<Ring>> rings_;  // owner only; keeps retirees
};

}  // namespace parmvn::common
