// Typed per-query outcome for batch APIs that must not let one failing
// query abort its siblings (the graceful-degradation contract of
// excursion::detect_confidence_regions): instead of an exception tearing
// down the whole batch, each result carries a Status and failed queries
// report *what stage* failed while the rest of the batch stays valid.
//
// The serving layer (src/serve) extends the taxonomy with request-lifecycle
// outcomes: kOverloaded (admission rejected under backpressure or drain),
// kDeadline (the request's budget expired before evaluation began — an
// engine-level mid-sweep expiry instead returns kOk with
// EvalMethod::kDeadline and a partial estimate), and kInvalidArgument (a
// malformed request rejected before admission).
//
// Single-query convenience wrappers keep throwing parmvn::Error — Status
// is the batch-boundary representation of the same taxonomy.
#pragma once

#include <string>
#include <utility>

namespace parmvn {

enum class StatusCode {
  kOk = 0,
  /// The query group's covariance factorization failed (non-PD after any
  /// configured jitter retries / fallback, or a task error inside the
  /// factor DAG).
  kFactorFailed,
  /// The factor was built but the probability evaluation (EP screen + QMC
  /// sweep) failed.
  kEvalFailed,
  /// Admission control rejected the request: the bounded queue was full, or
  /// the server was draining. The request was never admitted, so retrying
  /// later is always safe.
  kOverloaded,
  /// The request's deadline expired while it was still queued — it was
  /// retired before touching the engine, so no samples were spent on it.
  kDeadline,
  /// The request was malformed (unknown field, mismatched limit lengths,
  /// negative deadline) and was rejected before admission.
  kInvalidArgument,
};

struct Status {
  StatusCode code = StatusCode::kOk;
  std::string message;  // empty when ok

  [[nodiscard]] bool ok() const noexcept { return code == StatusCode::kOk; }

  [[nodiscard]] static Status factor_failed(std::string msg) {
    return {StatusCode::kFactorFailed, std::move(msg)};
  }
  [[nodiscard]] static Status eval_failed(std::string msg) {
    return {StatusCode::kEvalFailed, std::move(msg)};
  }
  [[nodiscard]] static Status overloaded(std::string msg) {
    return {StatusCode::kOverloaded, std::move(msg)};
  }
  [[nodiscard]] static Status deadline(std::string msg) {
    return {StatusCode::kDeadline, std::move(msg)};
  }
  [[nodiscard]] static Status invalid_argument(std::string msg) {
    return {StatusCode::kInvalidArgument, std::move(msg)};
  }
};

[[nodiscard]] constexpr const char* to_string(StatusCode c) noexcept {
  switch (c) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kFactorFailed: return "factor_failed";
    case StatusCode::kEvalFailed: return "eval_failed";
    case StatusCode::kOverloaded: return "overloaded";
    case StatusCode::kDeadline: return "deadline";
    case StatusCode::kInvalidArgument: return "invalid_argument";
  }
  return "unknown";
}

}  // namespace parmvn
