// Typed per-query outcome for batch APIs that must not let one failing
// query abort its siblings (the graceful-degradation contract of
// excursion::detect_confidence_regions): instead of an exception tearing
// down the whole batch, each result carries a Status and failed queries
// report *what stage* failed while the rest of the batch stays valid.
//
// Single-query convenience wrappers keep throwing parmvn::Error — Status
// is the batch-boundary representation of the same taxonomy.
#pragma once

#include <string>
#include <utility>

namespace parmvn {

enum class StatusCode {
  kOk = 0,
  /// The query group's covariance factorization failed (non-PD after any
  /// configured jitter retries / fallback, or a task error inside the
  /// factor DAG).
  kFactorFailed,
  /// The factor was built but the probability evaluation (EP screen + QMC
  /// sweep) failed.
  kEvalFailed,
};

struct Status {
  StatusCode code = StatusCode::kOk;
  std::string message;  // empty when ok

  [[nodiscard]] bool ok() const noexcept { return code == StatusCode::kOk; }

  [[nodiscard]] static Status factor_failed(std::string msg) {
    return {StatusCode::kFactorFailed, std::move(msg)};
  }
  [[nodiscard]] static Status eval_failed(std::string msg) {
    return {StatusCode::kEvalFailed, std::move(msg)};
  }
};

[[nodiscard]] constexpr const char* to_string(StatusCode c) noexcept {
  switch (c) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kFactorFailed: return "factor_failed";
    case StatusCode::kEvalFailed: return "eval_failed";
  }
  return "unknown";
}

}  // namespace parmvn
