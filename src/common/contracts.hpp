// Contract-checking macros and the library error type.
//
// Follows the C++ Core Guidelines (I.6 "Prefer Expects() for expressing
// preconditions", E.x error-handling rules): preconditions/postconditions are
// checked in all build types because this library is used for statistical
// decisions where silent corruption is worse than an abort-with-message.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace parmvn {

/// Exception thrown for all recoverable library errors (bad input shape,
/// non-SPD matrix handed to a Cholesky, file I/O failures, ...).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const std::source_location loc =
                                              std::source_location::current()) {
  throw Error(std::string(kind) + " violation: (" + expr + ") at " +
              loc.file_name() + ":" + std::to_string(loc.line()));
}
}  // namespace detail

}  // namespace parmvn

/// Precondition check: throws parmvn::Error when violated.
#define PARMVN_EXPECTS(cond)                                        \
  do {                                                              \
    if (!(cond)) ::parmvn::detail::contract_failure("precondition", #cond); \
  } while (false)

/// Postcondition / invariant check: throws parmvn::Error when violated.
#define PARMVN_ENSURES(cond)                                         \
  do {                                                               \
    if (!(cond)) ::parmvn::detail::contract_failure("postcondition", #cond); \
  } while (false)

/// Unrecoverable internal invariant; still throws so tests can observe it.
#define PARMVN_ASSERT(cond)                                      \
  do {                                                           \
    if (!(cond)) ::parmvn::detail::contract_failure("invariant", #cond); \
  } while (false)
