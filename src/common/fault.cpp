#include "common/fault.hpp"

#include <map>
#include <mutex>

#include "common/contracts.hpp"

namespace parmvn::fault {

namespace detail {
std::atomic<int> g_armed_plans{0};
}  // namespace detail

namespace {

struct Plan {
  i64 first_hit = 1;  // 1-based hit number of the first trip
  i64 trip_span = 1;  // hits [first_hit, first_hit + trip_span) throw
  i64 hits = 0;       // hits observed since the plan was armed
  i64 tripped = 0;    // hits that actually threw
};

// Plans are rare (tests only) and sites are short literals: a plain
// ordered map under one mutex is simple and, on the disarmed fast path,
// never touched.
std::mutex& plan_mutex() {
  static std::mutex m;
  return m;
}

std::map<std::string, Plan, std::less<>>& plans() {
  static std::map<std::string, Plan, std::less<>> p;
  return p;
}

}  // namespace

namespace detail {

void on_hit(const char* site) {
  std::lock_guard<std::mutex> g(plan_mutex());
  const auto it = plans().find(std::string_view(site));
  if (it == plans().end()) return;
  Plan& plan = it->second;
  const i64 hit = ++plan.hits;
  if (hit >= plan.first_hit && hit < plan.first_hit + plan.trip_span) {
    ++plan.tripped;
    throw Error(std::string("fault injected: ") + site);
  }
}

}  // namespace detail

void arm(std::string_view site, i64 first_hit, i64 trips) {
  PARMVN_EXPECTS(first_hit >= 1);
  PARMVN_EXPECTS(trips >= 1);
  std::lock_guard<std::mutex> g(plan_mutex());
  auto [it, inserted] = plans().insert_or_assign(
      std::string(site), Plan{first_hit, trips, 0, 0});
  (void)it;
  if (inserted)
    detail::g_armed_plans.fetch_add(1, std::memory_order_relaxed);
}

void disarm(std::string_view site) {
  std::lock_guard<std::mutex> g(plan_mutex());
  const auto it = plans().find(site);
  if (it == plans().end()) return;
  plans().erase(it);
  detail::g_armed_plans.fetch_sub(1, std::memory_order_relaxed);
}

void disarm_all() {
  std::lock_guard<std::mutex> g(plan_mutex());
  detail::g_armed_plans.fetch_sub(static_cast<int>(plans().size()),
                                  std::memory_order_relaxed);
  plans().clear();
}

i64 hits(std::string_view site) {
  std::lock_guard<std::mutex> g(plan_mutex());
  const auto it = plans().find(site);
  return it == plans().end() ? 0 : it->second.hits;
}

i64 trips(std::string_view site) {
  std::lock_guard<std::mutex> g(plan_mutex());
  const auto it = plans().find(site);
  return it == plans().end() ? 0 : it->second.tripped;
}

ScopedFault::ScopedFault(std::string_view site, i64 first_hit, i64 trip_count)
    : site_(site) {
  arm(site_, first_hit, trip_count);
}

ScopedFault::~ScopedFault() { disarm(site_); }

}  // namespace parmvn::fault
