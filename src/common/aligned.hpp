// Cache-line / SIMD aligned allocation for numeric buffers.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

namespace parmvn {

inline constexpr std::size_t kSimdAlign = 64;  // one cache line / AVX-512 lane

/// Minimal std::allocator-compatible aligned allocator (Core Guidelines R.10:
/// no naked malloc/free escape this class).
template <class T, std::size_t Align = kSimdAlign>
struct AlignedAllocator {
  using value_type = T;

  // The non-type Align parameter defeats allocator_traits' automatic rebind
  // deduction, so spell it out.
  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T))
      throw std::bad_alloc();
    void* p = std::aligned_alloc(Align, round_up(n * sizeof(T)));
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <class U>
  bool operator==(const AlignedAllocator<U, Align>&) const noexcept {
    return true;
  }

 private:
  static constexpr std::size_t round_up(std::size_t bytes) {
    return (bytes + Align - 1) / Align * Align;
  }
};

/// Vector whose data pointer is 64-byte aligned.
template <class T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace parmvn
