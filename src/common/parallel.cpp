#include "common/parallel.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace parmvn::common {

HelperPool::HelperPool(int helpers) {
  PARMVN_EXPECTS(helpers >= 0);
  threads_.reserve(static_cast<std::size_t>(helpers));
  for (int i = 0; i < helpers; ++i)
    threads_.emplace_back([this] { helper_loop(); });
}

HelperPool::~HelperPool() {
  {
    std::lock_guard<std::mutex> g(mu_);
    stop_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool HelperPool::try_run(i64 total, i64 align,
                         const std::function<void(i64, i64)>& fn) {
  PARMVN_EXPECTS(total >= 0 && align >= 1);
  if (threads_.empty()) return false;
  if (busy_.exchange(true, std::memory_order_acquire)) return false;

  const int parts = helpers() + 1;
  // Aligned even split; trailing chunks may be empty when total is small.
  i64 chunk = (total + parts - 1) / parts;
  chunk = ((chunk + align - 1) / align) * align;
  {
    std::lock_guard<std::mutex> g(mu_);
    fn_ = &fn;
    total_ = total;
    chunk_ = chunk;
    next_chunk_ = 1;  // the caller takes chunk 0
    remaining_ = helpers();
    ++generation_;
  }
  job_cv_.notify_all();

  fn(0, std::min(total, chunk));

  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [this] { return remaining_ == 0; });
    fn_ = nullptr;
  }
  busy_.store(false, std::memory_order_release);
  return true;
}

void HelperPool::helper_loop() {
  u64 seen = 0;
  for (;;) {
    const std::function<void(i64, i64)>* fn = nullptr;
    i64 begin = 0;
    i64 end = 0;
    {
      std::unique_lock<std::mutex> lk(mu_);
      job_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      fn = fn_;
      const int part = next_chunk_++;
      begin = std::min(total_, static_cast<i64>(part) * chunk_);
      end = std::min(total_, begin + chunk_);
    }
    if (begin < end) (*fn)(begin, end);
    {
      std::lock_guard<std::mutex> g(mu_);
      --remaining_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace parmvn::common
