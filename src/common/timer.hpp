// Wall-clock timing utilities for benchmarks and runtime tracing.
#pragma once

#include <chrono>

namespace parmvn {

/// Monotonic wall-clock stopwatch. Started on construction.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Global monotonic timestamp in seconds; used by the task tracer so all
/// workers share one time origin.
inline double global_time_s() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point origin = clock::now();
  return std::chrono::duration<double>(clock::now() - origin).count();
}

}  // namespace parmvn
