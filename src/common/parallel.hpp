// A tiny single-flight fork-join helper pool.
//
// Built for the microkernel's parallel panel packing (ROADMAP: "parallel
// packing for very large single GEMMs"): pure data-movement loops whose
// output is byte-identical however the index range is split, so spreading
// them over a few threads is free of determinism concerns.
//
// Why not the task runtime's own workers? linalg sits *below* runtime in
// the layer graph (the runtime schedules tasks that call into linalg);
// lending runtime workers to a GEMM running inside one of their own tasks
// would invert that dependency and nest schedulers. Instead the pool owns
// `helpers` parked threads of its own, and `try_run` is single-flight: if
// another caller holds the pool (e.g. several runtime workers hit large
// GEMMs at once), the loser simply runs its loop serially — parallel
// packing is an opportunistic accelerator, never a semantic dependency.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace parmvn::common {

class HelperPool {
 public:
  /// Spawns `helpers` parked worker threads (0 = pool disabled; try_run
  /// then always returns false).
  explicit HelperPool(int helpers);
  ~HelperPool();

  HelperPool(const HelperPool&) = delete;
  HelperPool& operator=(const HelperPool&) = delete;

  /// Split [0, total) into helpers+1 contiguous chunks whose boundaries are
  /// multiples of `align`, run `fn(begin, end)` on every chunk (the caller
  /// executes one, each helper one — possibly empty), and wait for all of
  /// them. Returns false without calling fn when the pool is disabled or
  /// another try_run is in flight — the caller then runs its loop serially.
  /// `fn` must not throw (it is pure data movement by contract).
  bool try_run(i64 total, i64 align, const std::function<void(i64, i64)>& fn);

  [[nodiscard]] int helpers() const noexcept {
    return static_cast<int>(threads_.size());
  }

 private:
  void helper_loop();

  std::mutex mu_;
  std::condition_variable job_cv_;   // helpers wait for a new generation
  std::condition_variable done_cv_;  // the caller waits for remaining == 0
  u64 generation_ = 0;
  int remaining_ = 0;
  bool stop_ = false;
  // Current job (valid while remaining_ > 0): chunk p covers
  // [p * chunk_, min(total_, (p+1) * chunk_)), caller = chunk 0.
  const std::function<void(i64, i64)>* fn_ = nullptr;
  i64 total_ = 0;
  i64 chunk_ = 0;
  int next_chunk_ = 0;

  std::atomic<bool> busy_{false};  // single-flight gate
  std::vector<std::thread> threads_;
};

}  // namespace parmvn::common
