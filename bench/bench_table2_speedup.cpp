// Reproduces Table II: speedup of the TLR implementation over dense for one
// MVN integration, as a function of the QMC sample size.
//
// Paper expectation (shared memory): ~2-5x at QMC 100/1000 rising to 9-20x
// at QMC 10000 — the low-rank sweep amortises better the more samples are
// propagated through L.
#include <cstdio>
#include <limits>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "common/env.hpp"
#include "common/timer.hpp"
#include "core/pmvn.hpp"
#include "geo/covgen.hpp"
#include "geo/geometry.hpp"
#include "runtime/runtime.hpp"
#include "stats/covariance.hpp"
#include "tile/tiled_potrf.hpp"
#include "tlr/tlr_potrf.hpp"

int main(int argc, char** argv) {
  using namespace parmvn;
  const bench::Args args = bench::Args::parse(argc, argv);
  bench::header("Table II", "TLR vs dense speedup by QMC sample size", args);

  const i64 side = args.full ? 140 : (args.quick ? 24 : 48);
  const i64 dense_tile = args.full ? 320 : 144;
  // At laptop scale the paper's 3x-wider TLR tile would make the
  // Phi-heavy QMC kernel (cost ~ N*n*tile/2) dominate the TLR sweep and
  // hide the low-rank update gain; equal tiles expose the paper's trend
  // (speedup growing with QMC size). --full keeps the paper's 320/980.
  const i64 tlr_tile = args.full ? 980 : 144;
  const std::vector<i64> qmc_sizes =
      args.quick ? std::vector<i64>{100, 1000}
                 : std::vector<i64>{100, 1000, 10000};

  geo::LocationSet locs = geo::regular_grid(side, side);
  locs = geo::apply_permutation(locs, geo::morton_order(locs));
  const double range = 0.1 * 140.0 / static_cast<double>(side);
  auto kernel = std::make_shared<stats::MaternKernel>(1.0, range, 0.5);
  // Timing-only experiment: nugget stabilises TLR potrf at loose accuracy.
  const geo::KernelCovGenerator gen(locs, kernel, 1e-2);
  const i64 n = gen.rows();
  const std::vector<double> a(static_cast<std::size_t>(n), -1.0);
  const std::vector<double> b(static_cast<std::size_t>(n),
                              std::numeric_limits<double>::infinity());

  rt::Runtime rt(args.threads > 0 ? static_cast<int>(args.threads)
                                  : default_num_threads());

  // Factor once per format; sweep per QMC size (matches the paper's "one
  // MVN integration" but avoids refactoring identical matrices).
  WallTimer dense_factor_timer;
  tile::TileMatrix ld(rt, n, n, dense_tile, tile::Layout::kLowerSymmetric);
  ld.generate_async(rt, gen);
  rt.wait_all();
  tile::potrf_tiled(rt, ld);
  const double dense_factor_s = dense_factor_timer.seconds();

  WallTimer tlr_factor_timer;
  tlr::TlrMatrix lt = tlr::TlrMatrix::compress(rt, gen, tlr_tile, 1e-3, -1,
                                               tlr::CompressionMethod::kAca);
  tlr::potrf_tlr(rt, lt);
  const double tlr_factor_s = tlr_factor_timer.seconds();

  std::printf("n=%lld dense_factor=%.3fs tlr_factor=%.3fs\n",
              static_cast<long long>(n), dense_factor_s, tlr_factor_s);
  std::printf("qmc,dense_total_s,tlr_total_s,speedup\n");
  for (const i64 qmc : qmc_sizes) {
    core::PmvnOptions opts;
    opts.samples_per_shift = qmc / 10 > 0 ? qmc / 10 : 1;
    opts.shifts = 10;
    opts.sampler = stats::SamplerKind::kPseudoMC;
    const double ds = core::pmvn_dense(rt, ld, a, b, opts).seconds;
    const double ts = core::pmvn_tlr(rt, lt, a, b, opts).seconds;
    const double dense_total = dense_factor_s + ds;
    const double tlr_total = tlr_factor_s + ts;
    std::printf("%lld,%.3f,%.3f,%.2fx\n", static_cast<long long>(qmc),
                dense_total, tlr_total, dense_total / tlr_total);
    std::fflush(stdout);
  }
  bench::row_comment(
      "paper Table II: 3X/3X/14X (Ice Lake), 3/3/19 (Cascade Lake), "
      "5/5/20 (Milan), 2/2/9 (Naples) for QMC 100/1000/10000");
  return 0;
}
