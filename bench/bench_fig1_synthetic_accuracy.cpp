// Reproduces Fig. 1: confidence-region detection accuracy on synthetic
// datasets with weak / medium / strong correlation.
//
// Per correlation level, four outputs mirror the figure's four panels:
//   (1) marginal-probability map, (2) joint confidence region map,
//   (3) MC-validation error 1-alpha - p_hat(alpha) for dense and TLR,
//   (4) dense-vs-TLR confidence difference across TLR accuracies.
//
// Paper expectations: MC error within ~±5e-3 across all levels (column 3);
// dense-TLR differences below 1e-3 at accuracy 1e-1 and vanishing beyond
// 1e-3 (column 4).
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "common/env.hpp"
#include "core/excursion.hpp"
#include "core/mc_validation.hpp"
#include "geo/covgen.hpp"
#include "geo/field.hpp"
#include "geo/geometry.hpp"
#include "geo/io.hpp"
#include "linalg/generator.hpp"
#include "linalg/potrf.hpp"
#include "runtime/runtime.hpp"
#include "stats/covariance.hpp"
#include "stats/rng.hpp"

namespace {
using namespace parmvn;
}

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  bench::header("Fig. 1", "CRD accuracy on synthetic datasets", args);

  const i64 side = args.full ? 200 : (args.quick ? 16 : 22);
  const i64 n = side * side;
  const i64 tile = args.full ? 400 : 121;
  const i64 mc_samples = args.full ? 50000 : 20000;
  // Ranges spacing-matched to the paper's 200x200 grid.
  const double scale = 200.0 / static_cast<double>(side);
  struct Setting {
    const char* name;
    double range;
  };
  const Setting settings[] = {{"weak", 0.033}, {"medium", 0.1},
                              {"strong", 0.234}};

  for (const Setting& s : settings) {
    const double range = s.range * scale;
    std::printf("\n## correlation=%s (1, %.3f, 0.5), n=%lld\n", s.name,
                s.range, static_cast<long long>(n));
    const geo::LocationSet locs = geo::regular_grid(side, side);
    auto kernel = std::make_shared<stats::ExponentialKernel>(1.0, range);
    const geo::KernelCovGenerator prior_gen(locs, kernel, 1e-8);
    const la::Matrix prior = geo::dense_from_generator(prior_gen);

    // Paper's recipe: sample the field, observe ~15% of locations with
    // N(0, 0.5^2) noise, and work on the posterior (eq. 7-8). A smooth
    // bump in the prior mean creates genuine excursion structure (the
    // paper's synthetic fields likewise contain regions clearly above u).
    std::vector<double> prior_mean(static_cast<std::size_t>(n));
    for (i64 i = 0; i < n; ++i) {
      const auto& p = locs[static_cast<std::size_t>(i)];
      const double dx = p.x - 0.35, dy = p.y - 0.6;
      prior_mean[static_cast<std::size_t>(i)] =
          4.2 * std::exp(-9.0 * (dx * dx + dy * dy));
    }
    const geo::GpSampler sampler(prior_gen);
    std::vector<double> truth = sampler.draw(1000 + static_cast<u64>(side));
    for (i64 i = 0; i < n; ++i)
      truth[static_cast<std::size_t>(i)] += prior_mean[static_cast<std::size_t>(i)];
    std::vector<i64> observed;
    std::vector<double> y;
    stats::Xoshiro256pp g(77);
    for (i64 i = 0; i < n; ++i) {
      if (g.next_u01() < 0.15625) {  // 6250/40000
        observed.push_back(i);
        y.push_back(truth[static_cast<std::size_t>(i)] + 0.5 * g.next_normal());
      }
    }
    const geo::Posterior post = geo::posterior_from_observations(
        prior, prior_mean, observed, y, 0.25);

    rt::Runtime rt(args.threads > 0 ? static_cast<int>(args.threads)
                                    : default_num_threads());
    la::DenseGenerator post_gen(la::to_matrix(post.covariance.view()));

    core::CrdOptions opts;
    opts.threshold = 1.0;
    opts.alpha = 0.05;
    opts.tile = tile;
    opts.pmvn.samples_per_shift = 500;
    opts.pmvn.shifts = 10;
    opts.pmvn.sampler = stats::SamplerKind::kRichtmyer;
    const core::CrdResult dense =
        core::detect_confidence_region(rt, post_gen, post.mean, opts);

    core::CrdOptions topts = opts;
    topts.mode = core::CrdMode::kTlr;
    topts.tlr_tol = 1e-3;
    const core::CrdResult tlr =
        core::detect_confidence_region(rt, post_gen, post.mean, topts);

    // Panel 1+2: maps.
    std::printf("marginal probability map:\n%s",
                geo::ascii_heatmap(locs, dense.marginal, 44, 14, 0.0, 1.0)
                    .c_str());
    std::vector<double> region(dense.region.begin(), dense.region.end());
    std::printf("confidence region (1-alpha=0.95), %lld locations:\n%s",
                static_cast<long long>(dense.region_size),
                geo::ascii_heatmap(locs, region, 44, 14, 0.0, 1.0).c_str());

    // Panel 3: MC validation of dense and TLR regions.
    const geo::CorrelationGenerator corr(post_gen);
    const geo::PermutedGenerator permuted(corr, dense.order);
    la::Matrix l_ord = geo::dense_from_generator(permuted);
    la::potrf_lower_or_throw(l_ord.view());
    std::vector<double> a_ord(static_cast<std::size_t>(n));
    for (i64 i = 0; i < n; ++i) {
      const i64 src = dense.order[static_cast<std::size_t>(i)];
      a_ord[static_cast<std::size_t>(i)] =
          (opts.threshold - post.mean[static_cast<std::size_t>(src)]) /
          std::sqrt(post.covariance(src, src));
    }
    std::vector<double> levels;
    for (double lv = 0.1; lv < 0.96; lv += 0.1) levels.push_back(lv);
    levels.push_back(0.95);
    const core::McValidationResult vd = core::validate_region_mc(
        l_ord.view(), a_ord, dense.prefix_prob, levels, mc_samples, 5);
    const core::McValidationResult vt = core::validate_region_mc(
        l_ord.view(), a_ord, tlr.prefix_prob, levels, mc_samples, 5);
    std::printf("level,err_dense,err_tlr   (err = 1-alpha - p_hat)\n");
    for (std::size_t i = 0; i < levels.size(); ++i) {
      std::printf("%.2f,%+.4f,%+.4f\n", levels[i], levels[i] - vd.p_hat[i],
                  levels[i] - vt.p_hat[i]);
    }

    // Panel 4: dense vs TLR across compression accuracies. The difference
    // is measured over locations with non-negligible confidence (> 1%);
    // deeper prefixes carry probabilities near zero where the comparison
    // is vacuous.
    std::printf("tlr_accuracy,max_abs_confidence_diff\n");
    for (double acc : {1e-1, 1e-2, 1e-3, 1e-5, 1e-7}) {
      core::CrdOptions aopts = topts;
      aopts.tlr_tol = acc;
      const core::CrdResult ra =
          core::detect_confidence_region(rt, post_gen, post.mean, aopts);
      double max_diff = 0.0;
      for (i64 i = 0; i < n; ++i) {
        if (dense.confidence[static_cast<std::size_t>(i)] < 0.01) continue;
        max_diff = std::max(
            max_diff, std::fabs(ra.confidence[static_cast<std::size_t>(i)] -
                                dense.confidence[static_cast<std::size_t>(i)]));
      }
      std::printf("%.0e,%.2e\n", acc, max_diff);
      std::fflush(stdout);
    }
  }
  bench::row_comment(
      "paper: MC error within ~5e-3 of zero at all levels; dense-TLR gap "
      "< 1e-3 already at accuracy 1e-1, negligible beyond 1e-3");
  return 0;
}
