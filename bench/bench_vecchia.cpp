// Factor-backend comparison for the Vecchia arm, two experiments:
//
//  1. pmvn_vs_tlr — on sizes where a dense factor is still affordable,
//     integrate the same box with the dense (truth), TLR and Vecchia arms
//     and report each approximation's probability error and wall time
//     (build + sweep). Vecchia trades the TLR compression error for the
//     conditioning-set truncation error at O(n m^3) build cost.
//
//  2. crd_100k — the confidence-region sweep on a >= 100k-site grid, the
//     scale the Vecchia arm exists for (a dense factor would need ~80 GB
//     and O(n^3) time). Runs under every worker count x scheduler arm and
//     verifies the full determinism contract: the confidence function and
//     region must be bitwise identical across all runs.
//
// The numbers land in BENCH_vecchia.json at the repo root (regenerate
// with:  ./bench_vecchia --json > ../BENCH_vecchia.json ).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "common/env.hpp"
#include "common/timer.hpp"
#include "core/excursion.hpp"
#include "core/pmvn.hpp"
#include "geo/covgen.hpp"
#include "geo/geometry.hpp"
#include "runtime/runtime.hpp"
#include "stats/covariance.hpp"
#include "tile/tile_matrix.hpp"
#include "tile/tiled_potrf.hpp"
#include "tlr/tlr_potrf.hpp"
#include "vecchia/vecchia_factor.hpp"

namespace {

using namespace parmvn;

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Row {
  i64 n = 0;
  const char* arm = "";
  i64 param = 0;  // TLR tile or Vecchia m
  double prob = 0.0;
  double err3 = 0.0;
  double abs_err = 0.0;  // |prob - dense prob|
  double build_s = 0.0;
  double sweep_s = 0.0;
};

std::vector<double> grid_xy(const geo::LocationSet& locs) {
  std::vector<double> xy;
  xy.reserve(2 * locs.size());
  for (const geo::Point& p : locs) {
    xy.push_back(p.x);
    xy.push_back(p.y);
  }
  return xy;
}

core::PmvnOptions sweep_opts() {
  core::PmvnOptions o;
  o.samples_per_shift = 500;
  o.shifts = 10;
  o.sampler = stats::SamplerKind::kRichtmyer;
  o.seed = 20240517;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  bool json = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  if (!json)
    bench::header("Factor backends", "Vecchia vs TLR accuracy and wall time",
                  args);

  rt::Runtime rt(args.threads > 0 ? static_cast<int>(args.threads)
                                  : default_num_threads());

  // ---- experiment 1: accuracy/time against dense truth ----
  const std::vector<i64> sides =
      args.quick ? std::vector<i64>{20} : std::vector<i64>{32, 48};
  std::vector<Row> rows;
  for (const i64 side : sides) {
    geo::LocationSet locs = geo::regular_grid(side, side);
    locs = geo::apply_permutation(locs, geo::morton_order(locs));
    // Long range + a wide box keep the joint probability well above the QMC
    // noise floor, so the cross-arm deltas measure approximation error, not
    // sampling noise.
    auto kernel = std::make_shared<stats::ExponentialKernel>(1.0, 0.4);
    const geo::KernelCovGenerator gen(locs, kernel, 1e-6);
    const std::vector<double> xy = grid_xy(locs);
    const i64 n = gen.rows();
    const std::vector<double> a(static_cast<std::size_t>(n), -2.0);
    const std::vector<double> b(static_cast<std::size_t>(n), kInf);
    const core::PmvnOptions opts = sweep_opts();

    WallTimer td;
    tile::TileMatrix ld(rt, n, n, 256, tile::Layout::kLowerSymmetric);
    ld.generate_async(rt, gen);
    rt.wait_all();
    tile::potrf_tiled(rt, ld);
    const double dense_build = td.seconds();
    const core::PmvnResult rd = core::pmvn_dense(rt, ld, a, b, opts);
    rows.push_back({n, "dense", 256, rd.prob, rd.error3sigma, 0.0, dense_build,
                    rd.seconds});

    // The smooth long-range correlation is severely ill-conditioned, so the
    // TLR tolerance must sit well below the smallest eigenvalues it needs
    // to preserve — 1e-3 (the paper's sweep value for short ranges) factors
    // to a visibly wrong probability here.
    WallTimer tt;
    tlr::TlrMatrix lt = tlr::TlrMatrix::compress(rt, gen, 256, 1e-7, -1);
    tlr::potrf_tlr(rt, lt);
    const double tlr_build = tt.seconds();
    const core::PmvnResult rtl = core::pmvn_tlr(rt, lt, a, b, opts);
    rows.push_back({n, "tlr", 256, rtl.prob, rtl.error3sigma,
                    std::abs(rtl.prob - rd.prob), tlr_build, rtl.seconds});

    for (const i64 m : {15, 30, 60}) {
      const vecchia::VecchiaFactor f =
          vecchia::VecchiaFactor::build(rt, gen, xy, 256, m);
      const core::PmvnResult rv = core::pmvn_vecchia(rt, f, a, b, opts);
      rows.push_back({n, "vecchia", m, rv.prob, rv.error3sigma,
                      std::abs(rv.prob - rd.prob), f.build_seconds(),
                      rv.seconds});
    }
    if (!json) {
      for (const Row& r : rows)
        if (r.n == n)
          std::printf("n=%lld %s(%lld): p=%.6e err3=%.1e |dp|=%.2e "
                      "build=%.3fs sweep=%.3fs\n",
                      static_cast<long long>(r.n), r.arm,
                      static_cast<long long>(r.param), r.prob, r.err3,
                      r.abs_err, r.build_s, r.sweep_s);
      std::fflush(stdout);
    }
  }

  // ---- experiment 2: confidence regions at >= 100k sites ----
  const i64 crd_side = args.quick ? 64 : 320;
  const i64 crd_n = crd_side * crd_side;
  const geo::LocationSet locs = geo::regular_grid(crd_side, crd_side);
  auto kernel = std::make_shared<stats::ExponentialKernel>(1.0, 0.05);
  const geo::KernelCovGenerator cov(locs, kernel, 1e-6);
  std::vector<double> mean(locs.size());
  for (std::size_t i = 0; i < locs.size(); ++i) {
    const double dx = locs[i].x - 0.4;
    const double dy = locs[i].y - 0.55;
    mean[i] = 3.5 * std::exp(-14.0 * (dx * dx + dy * dy));
  }
  core::CrdOptions copts;
  copts.threshold = 1.0;
  copts.alpha = 0.1;
  copts.mode = core::CrdMode::kVecchia;
  copts.vecchia_m = 30;
  copts.tile = 256;
  copts.pmvn.samples_per_shift = 100;
  copts.pmvn.shifts = 4;
  copts.pmvn.sampler = stats::SamplerKind::kRichtmyer;
  copts.pmvn.seed = 20240517;

  struct CrdRun {
    int workers;
    const char* sched;
    double factor_s, sweep_s;
    i64 region_size;
  };
  std::vector<CrdRun> crd_runs;
  std::vector<double> ref_conf;
  bool bitwise = true;
  const std::pair<rt::SchedulerKind, const char*> arms[] = {
      {rt::SchedulerKind::kWorkSteal, "worksteal"},
      {rt::SchedulerKind::kGlobalQueue, "global"}};
  for (const auto& [sched, sched_name] : arms) {
    for (const int workers : {1, 2, 8}) {
      rt::Runtime crt(workers, /*enable_trace=*/false, sched);
      const core::CrdResult r =
          core::detect_confidence_region(crt, cov, mean, copts);
      if (ref_conf.empty()) {
        ref_conf = r.confidence;
      } else {
        for (std::size_t i = 0; i < ref_conf.size(); ++i)
          if (r.confidence[i] != ref_conf[i]) bitwise = false;
      }
      crd_runs.push_back({workers, sched_name, r.factor_seconds,
                          r.sweep_seconds, r.region_size});
      if (!json)
        std::printf("crd n=%lld m=30 workers=%d sched=%s factor=%.2fs "
                    "sweep=%.2fs region=%lld\n",
                    static_cast<long long>(crd_n), workers, sched_name,
                    r.factor_seconds, r.sweep_seconds,
                    static_cast<long long>(r.region_size));
      std::fflush(stdout);
    }
  }
  if (!json)
    std::printf("crd determinism across workers x schedulers: %s\n",
                bitwise ? "bitwise" : "FAILED");

  if (json) {
    std::printf("{\n  \"bench\": \"vecchia\",\n  \"host_cpus\": %d,\n",
                default_num_threads());
    std::printf("  \"pmvn_vs_tlr\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::printf("    {\"n\": %lld, \"arm\": \"%s\", \"param\": %lld, "
                  "\"prob\": %.6e, \"err3sigma\": %.3e, \"abs_err_vs_dense\": "
                  "%.3e, \"build_s\": %.3e, \"sweep_s\": %.3e}%s\n",
                  static_cast<long long>(r.n), r.arm,
                  static_cast<long long>(r.param), r.prob, r.err3, r.abs_err,
                  r.build_s, r.sweep_s, i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ],\n");
    std::printf("  \"crd\": {\"n\": %lld, \"vecchia_m\": 30, \"tile\": 256, "
                "\"qmc_samples\": 400, \"bitwise_across_runs\": %s, "
                "\"runs\": [\n",
                static_cast<long long>(crd_n), bitwise ? "true" : "false");
    for (std::size_t i = 0; i < crd_runs.size(); ++i) {
      const CrdRun& r = crd_runs[i];
      std::printf("    {\"workers\": %d, \"sched\": \"%s\", \"factor_s\": "
                  "%.3e, \"sweep_s\": %.3e, \"region_size\": %lld}%s\n",
                  r.workers, r.sched, r.factor_s, r.sweep_s,
                  static_cast<long long>(r.region_size),
                  i + 1 < crd_runs.size() ? "," : "");
    }
    std::printf("  ]}\n}\n");
  }
  return bitwise ? 0 : 1;
}
