// Reproduces Fig. 7: time of one MVN integration on the (simulated)
// distributed-memory system across dimensions and node counts, dense vs
// TLR. DESIGN.md documents the Cray XC40 -> discrete-event-simulator
// substitution; the rank profile is fitted from a real compression.
//
// Paper expectation: both formats scale with node count; TLR sits below
// dense by 1.3-1.8x end-to-end (its sweep runs dense — Sec. IV-C); some
// scalability loss at the largest node counts.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "common/env.hpp"
#include "dist/distributed_pmvn.hpp"
#include "geo/covgen.hpp"
#include "geo/geometry.hpp"
#include "runtime/runtime.hpp"
#include "stats/covariance.hpp"
#include "tlr/tlr_matrix.hpp"

int main(int argc, char** argv) {
  using namespace parmvn;
  const bench::Args args = bench::Args::parse(argc, argv);
  bench::header("Fig. 7", "distributed one-MVN-integration time (simulated)",
                args);

  // The simulated machine stays the paper's Cray XC40, but its
  // stream_efficiency (sweep-kernel rate / dgemm rate — a machine-relative
  // ratio) is calibrated from this host's probes instead of the analytic
  // 0.25 default, which calibrated_machine keeps as the fallback when a
  // probe is degenerate.
  const dist::HostCalibration cal = dist::calibrate_host(256);
  dist::MachineModel machine = dist::MachineModel::cray_xc40();
  machine.stream_efficiency =
      dist::calibrated_machine(cal).stream_efficiency;
  std::printf(
      "# host calibration: dgemm %.1f GFlop/s, integrand %.1f ns/entry -> "
      "stream_efficiency %.3f (analytic fallback 0.25)\n",
      cal.gflops, cal.qmc_ns_per_entry, machine.stream_efficiency);

  // Fit the TLR rank profile from a genuine compression at a feasible size
  // (19600, tile 980 — the Fig. 5 configuration, medium correlation).
  dist::RankProfile ranks;
  {
    geo::LocationSet locs = geo::regular_grid(140, 140);
    locs = geo::apply_permutation(locs, geo::morton_order(locs));
    auto kernel = std::make_shared<stats::MaternKernel>(1.0, 0.1, 0.5);
    const geo::KernelCovGenerator gen(locs, kernel, 0.0);
    rt::Runtime rt(default_num_threads());
    const tlr::TlrMatrix m = tlr::TlrMatrix::compress(
        rt, gen, 980, 1e-3, -1, tlr::CompressionMethod::kAca);
    ranks = dist::RankProfile::fit(m);
    std::printf("# fitted rank profile: near=%.1f decay=%.2f cap=%lld\n",
                ranks.near_rank, ranks.decay,
                static_cast<long long>(ranks.cap));
  }

  struct Panel {
    const char* name;
    std::vector<i64> dims;
    std::vector<i64> nodes;
  };
  std::vector<Panel> panels;
  if (args.quick) {
    panels.push_back({"left", {108900, 187489}, {16, 32}});
  } else {
    panels.push_back(
        {"left", {108900, 187489, 266256, 360000}, {16, 32, 64, 128}});
    panels.push_back({"right",
                      {266256, 360000, 435600, 537289, 760384},
                      {64, 128, 256, 512}});
  }

  std::printf("panel,nodes,n,method,total_s,chol_s,efficiency\n");
  for (const Panel& panel : panels) {
    for (const i64 nodes : panel.nodes) {
      for (const i64 n : panel.dims) {
        for (const bool tlr : {false, true}) {
          dist::DistConfig cfg;
          cfg.n = n;
          cfg.tile = 980;
          cfg.qmc_samples = 10000;
          cfg.nodes = nodes;
          cfg.tlr = tlr;
          cfg.tlr_sweep = false;  // the paper's distributed sweep is dense
          cfg.ranks = ranks;
          cfg.max_sim_tiles = args.quick ? 80 : 140;
          cfg.machine = machine;
          const dist::DistPrediction p = dist::predict_pmvn(cfg);
          std::printf("%s,%lld,%lld,%s,%.2f,%.2f,%.3f\n", panel.name,
                      static_cast<long long>(nodes), static_cast<long long>(n),
                      tlr ? "tlr" : "dense", p.total_s, p.chol_s,
                      p.efficiency);
          std::fflush(stdout);
        }
      }
    }
  }
  bench::row_comment(
      "paper: dense scales to n=360k on 16-128 nodes and 760k on 512; TLR "
      "curves sit 1.3-1.8x lower end-to-end");
  return 0;
}
