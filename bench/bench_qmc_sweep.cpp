// Before/after series for the sample-contiguous QMC integrand rewrite:
// entries/sec of core::qmc_tile_kernel (row-major panel sweep + batched
// SIMD Phi / Phi^-1) against a frozen copy of the seed's sample-major
// scalar kernel, at m in {128, 512} x mc in {64, 256}.
//
// The numbers land in BENCH_qmc_sweep.json at the repo root (regenerate
// with:  ./bench_qmc_sweep --json > ../BENCH_qmc_sweep.json ).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "core/qmc_kernel.hpp"
#include "linalg/blas.hpp"
#include "linalg/matrix.hpp"
#include "linalg/potrf.hpp"
#include "stats/normal.hpp"
#include "stats/qmc.hpp"
#include "stats/rng.hpp"

namespace {

using namespace parmvn;

la::Matrix lower_factor(i64 n, u64 seed) {
  stats::Xoshiro256pp g(seed);
  la::Matrix m(n, n);
  for (i64 j = 0; j < n; ++j)
    for (i64 i = 0; i < n; ++i) m(i, j) = g.next_normal();
  la::Matrix s(n, n);
  la::gemm(la::Trans::kNo, la::Trans::kYes, 1.0, m.view(), m.view(), 0.0,
           s.view());
  for (i64 i = 0; i < n; ++i) s(i, i) += static_cast<double>(n);
  la::potrf_lower_or_throw(s.view());
  return s;
}

// The seed's qmc_tile_kernel, frozen verbatim as the baseline: sample-major
// loop, L transposed once for a contiguous dot, one scalar Phi / diff /
// Phi^-1 per entry. (Panels here are the seed's dimension-major (m x mc)
// layout; the driver below transposes its inputs accordingly.)
void seed_kernel(la::ConstMatrixView l, const stats::PointSet& pts, i64 row0,
                 i64 col0, la::ConstMatrixView a, la::ConstMatrixView b,
                 la::MatrixView y, double* p, double* prefix_acc) {
  constexpr double kUEps = 1e-16;
  const i64 m = l.rows;
  const i64 mc = a.cols;
  la::Matrix lt(m, m);
  for (i64 i = 0; i < m; ++i)
    for (i64 k = 0; k <= i; ++k) lt(k, i) = l(i, k);

  for (i64 j = 0; j < mc; ++j) {
    const i64 sample = col0 + j;
    double pj = p[j];
    double* __restrict yj = y.col(j);
    for (i64 i = 0; i < m; ++i) {
      const double* __restrict lrow = lt.view().col(i);
      const double s = la::dot(i, lrow, yj);
      const double lii = lrow[i];
      const double ai = (a(i, j) - s) / lii;
      const double bi = (b(i, j) - s) / lii;
      const double phi_a = stats::norm_cdf(ai);
      const double d = stats::norm_cdf_diff(ai, bi);
      pj *= d;
      const double w = pts.value(row0 + i, sample);
      const double u = std::clamp(phi_a + w * d, kUEps, 1.0 - kUEps);
      yj[i] = stats::norm_quantile(u);
      if (prefix_acc != nullptr) prefix_acc[i] += pj;
    }
    p[j] = pj;
  }
}

struct Rate {
  double entries_per_s = 0.0;
  double checksum = 0.0;
};

template <class Run>
Rate measure(i64 m, i64 mc, double min_seconds, Run&& run) {
  // One warmup call, then repeat until the timed region is long enough.
  double checksum = run();
  const WallTimer timer;
  i64 reps = 0;
  do {
    checksum += run();
    ++reps;
  } while (timer.seconds() < min_seconds);
  Rate r;
  r.entries_per_s =
      static_cast<double>(m) * static_cast<double>(mc) * static_cast<double>(reps) /
      timer.seconds();
  r.checksum = checksum;
  return r;
}

struct Row {
  i64 m, mc;
  double seed_rate, batched_rate;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  bool json = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  const double min_s = args.quick ? 0.05 : 0.5;

  const std::vector<i64> ms = {128, 512};
  const std::vector<i64> mcs = {64, 256};
  std::vector<Row> rows;

  for (const i64 m : ms) {
    const la::Matrix l = lower_factor(m, 3);
    for (const i64 mc : mcs) {
      const stats::PointSet pts(stats::SamplerKind::kRichtmyer, m,
                                std::max<i64>(mc, 64), 4, 7);
      // Batched layout: sample-contiguous (mc x m).
      la::Matrix ab(mc, m), bb(mc, m), yb(mc, m);
      // Seed layout: dimension-major (m x mc).
      la::Matrix as(m, mc), bs(m, mc), ys(m, mc);
      for (i64 i = 0; i < m; ++i)
        for (i64 j = 0; j < mc; ++j) {
          const double av = -1.4 - 0.05 * static_cast<double>((i + j) % 5);
          const double bv = 0.9 + 0.04 * static_cast<double>((2 * i + j) % 7);
          ab(j, i) = av;
          bb(j, i) = bv;
          as(i, j) = av;
          bs(i, j) = bv;
        }
      std::vector<double> p(static_cast<std::size_t>(mc));

      const Rate batched = measure(m, mc, min_s, [&] {
        std::fill(p.begin(), p.end(), 1.0);
        core::qmc_tile_kernel(l.view(), pts, 0, 0, ab.view(), bb.view(),
                              yb.view(), p.data(), nullptr);
        return p[0];
      });
      const Rate seed = measure(m, mc, min_s, [&] {
        std::fill(p.begin(), p.end(), 1.0);
        seed_kernel(l.view(), pts, 0, 0, as.view(), bs.view(), ys.view(),
                    p.data(), nullptr);
        return p[0];
      });
      rows.push_back({m, mc, seed.entries_per_s, batched.entries_per_s});
    }
  }

  if (json) {
    std::printf("{\n  \"bench\": \"qmc_sweep\",\n");
    std::printf("  \"kernel_native\": %s,\n",
                stats::norm_batch_vectorized() ? "true" : "false");
    std::printf("  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::printf("    {\"m\": %lld, \"mc\": %lld, "
                  "\"seed_entries_per_s\": %.6e, "
                  "\"batched_entries_per_s\": %.6e, \"speedup\": %.3f}%s\n",
                  static_cast<long long>(r.m), static_cast<long long>(r.mc),
                  r.seed_rate, r.batched_rate, r.batched_rate / r.seed_rate,
                  i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
  } else {
    bench::header("qmc_sweep",
                  "integrand entries/sec: seed sample-major scalar kernel vs "
                  "sample-contiguous batched sweep",
                  args);
    std::printf("# batched transcendentals: %s\n",
                stats::norm_batch_vectorized() ? "native vector lanes"
                                               : "scalar fallback");
    std::printf("%6s %6s %16s %16s %9s\n", "m", "mc", "seed_entries/s",
                "batched_entries/s", "speedup");
    for (const Row& r : rows)
      std::printf("%6lld %6lld %16.3e %16.3e %8.2fx\n",
                  static_cast<long long>(r.m), static_cast<long long>(r.mc),
                  r.seed_rate, r.batched_rate, r.batched_rate / r.seed_rate);
  }
  return 0;
}
