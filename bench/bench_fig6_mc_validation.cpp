// Reproduces Fig. 6: runtime of the MC validation process across problem
// dimensions.
//
// Paper expectation: cost grows ~n^2 per sample (dominated by the
// triangular multiply x = L z) — roughly 100-500 s for dims 4900-44100 with
// N = 50,000 on the four shared-memory machines.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "common/env.hpp"
#include "core/excursion.hpp"
#include "core/mc_validation.hpp"
#include "geo/covgen.hpp"
#include "geo/geometry.hpp"
#include "linalg/potrf.hpp"
#include "runtime/runtime.hpp"
#include "stats/covariance.hpp"

int main(int argc, char** argv) {
  using namespace parmvn;
  const bench::Args args = bench::Args::parse(argc, argv);
  bench::header("Fig. 6", "MC validation runtime vs dimension", args);

  const std::vector<i64> sides =
      args.full ? std::vector<i64>{70, 140, 210}  // 4900, 19600, 44100
                : (args.quick ? std::vector<i64>{16, 24}
                              : std::vector<i64>{32, 45, 64});
  const i64 mc_samples = args.full ? 50000 : (args.quick ? 2000 : 5000);

  std::printf("n,mc_samples,validation_s,p_hat_at_0.95\n");
  for (const i64 side : sides) {
    geo::LocationSet locs = geo::regular_grid(side, side);
    const double range = 0.1 * 140.0 / static_cast<double>(side);
    auto kernel = std::make_shared<stats::ExponentialKernel>(1.0, range);
    const geo::KernelCovGenerator gen(locs, kernel, 1e-8);
    const i64 n = gen.rows();

    // A mild excursion problem so the region is non-trivial.
    std::vector<double> mean(static_cast<std::size_t>(n));
    for (i64 i = 0; i < n; ++i) {
      const auto& p = locs[static_cast<std::size_t>(i)];
      const double dx = p.x - 0.4, dy = p.y - 0.5;
      mean[static_cast<std::size_t>(i)] =
          3.0 * std::exp(-8.0 * (dx * dx + dy * dy));
    }
    rt::Runtime rt(args.threads > 0 ? static_cast<int>(args.threads)
                                    : default_num_threads());
    core::CrdOptions opts;
    opts.threshold = 1.0;
    opts.alpha = 0.05;
    opts.tile = 128;
    opts.pmvn.samples_per_shift = 100;
    opts.pmvn.shifts = 5;
    opts.pmvn.sampler = stats::SamplerKind::kRichtmyer;
    const core::CrdResult crd =
        core::detect_confidence_region(rt, gen, mean, opts);

    const geo::CorrelationGenerator corr(gen);
    const geo::PermutedGenerator permuted(corr, crd.order);
    la::Matrix l_ord = geo::dense_from_generator(permuted);
    la::potrf_lower_or_throw(l_ord.view());
    std::vector<double> a_ord(static_cast<std::size_t>(n));
    for (i64 i = 0; i < n; ++i) {
      const i64 src = crd.order[static_cast<std::size_t>(i)];
      a_ord[static_cast<std::size_t>(i)] =
          opts.threshold - mean[static_cast<std::size_t>(src)];
    }
    const std::vector<double> levels{0.95};
    const core::McValidationResult v = core::validate_region_mc(
        l_ord.view(), a_ord, crd.prefix_prob, levels, mc_samples, 11);
    std::printf("%lld,%lld,%.3f,%.4f\n", static_cast<long long>(n),
                static_cast<long long>(mc_samples), v.seconds, v.p_hat[0]);
    std::fflush(stdout);
  }
  bench::row_comment(
      "paper: validation time grows ~quadratically with dimension and is "
      "excluded from algorithm-time comparisons; p_hat ~ 0.95 confirms "
      "calibration");
  return 0;
}
