// Microbenchmarks (google-benchmark) of the hot kernels: dense BLAS-3, the
// QMC tile kernel, tile compression and the scalar normal functions. These
// are the quantities the distributed cost model is calibrated against.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/qmc_kernel.hpp"
#include "geo/covgen.hpp"
#include "geo/geometry.hpp"
#include "linalg/blas.hpp"
#include "linalg/potrf.hpp"
#include "stats/bessel.hpp"
#include "stats/covariance.hpp"
#include "stats/normal.hpp"
#include "stats/qmc.hpp"
#include "stats/rng.hpp"
#include "tlr/lr_tile.hpp"

namespace {

using namespace parmvn;

la::Matrix random_matrix(i64 m, i64 n, u64 seed) {
  stats::Xoshiro256pp g(seed);
  la::Matrix a(m, n);
  for (i64 j = 0; j < n; ++j)
    for (i64 i = 0; i < m; ++i) a(i, j) = g.next_normal();
  return a;
}

la::Matrix spd_lower(i64 n) {
  la::Matrix a = random_matrix(n, n, 3);
  la::Matrix s(n, n);
  la::gemm(la::Trans::kNo, la::Trans::kYes, 1.0, a.view(), a.view(), 0.0,
           s.view());
  for (i64 i = 0; i < n; ++i) s(i, i) += static_cast<double>(n);
  la::potrf_lower_or_throw(s.view());
  return s;
}

void BM_gemm(benchmark::State& state) {
  const i64 nb = state.range(0);
  const la::Matrix a = random_matrix(nb, nb, 1);
  const la::Matrix b = random_matrix(nb, nb, 2);
  la::Matrix c(nb, nb);
  for (auto _ : state) {
    la::gemm(la::Trans::kNo, la::Trans::kNo, 1.0, a.view(), b.view(), 1.0,
             c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      2.0 * nb * nb * nb * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_gemm)->Arg(128)->Arg(256)->Arg(512);

// The seed's unblocked axpy-sweep GEMM (four C columns per pass), kept as
// the baseline for the blocked/register-tiled kernel that replaced it —
// modulo the column-remainder `if (blj == 0.0) continue;` zero-skip, a
// NaN-propagation bug fixed in PR 2 (perf-neutral on random bench data).
// BM_gemm vs BM_gemm_axpy_seed at equal sizes is the before/after series
// for la::gemm.
void gemm_axpy_seed(double alpha, la::ConstMatrixView a, la::ConstMatrixView b,
                    la::MatrixView c) {
  const i64 m = c.rows;
  const i64 n = c.cols;
  const i64 k = a.cols;
  i64 j = 0;
  for (; j + 4 <= n; j += 4) {
    double* __restrict c0 = c.col(j);
    double* __restrict c1 = c.col(j + 1);
    double* __restrict c2 = c.col(j + 2);
    double* __restrict c3 = c.col(j + 3);
    for (i64 l = 0; l < k; ++l) {
      const double* __restrict al = a.col(l);
      const double b0 = alpha * b(l, j);
      const double b1 = alpha * b(l, j + 1);
      const double b2 = alpha * b(l, j + 2);
      const double b3 = alpha * b(l, j + 3);
      for (i64 i = 0; i < m; ++i) {
        const double ai = al[i];
        c0[i] += b0 * ai;
        c1[i] += b1 * ai;
        c2[i] += b2 * ai;
        c3[i] += b3 * ai;
      }
    }
  }
  for (; j < n; ++j) {
    double* __restrict cj = c.col(j);
    for (i64 l = 0; l < k; ++l) {
      const double blj = alpha * b(l, j);
      const double* __restrict al = a.col(l);
      for (i64 i = 0; i < m; ++i) cj[i] += blj * al[i];
    }
  }
}

void BM_gemm_axpy_seed(benchmark::State& state) {
  const i64 nb = state.range(0);
  const la::Matrix a = random_matrix(nb, nb, 1);
  const la::Matrix b = random_matrix(nb, nb, 2);
  la::Matrix c(nb, nb);
  for (auto _ : state) {
    gemm_axpy_seed(1.0, a.view(), b.view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      2.0 * nb * nb * nb * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_gemm_axpy_seed)->Arg(128)->Arg(256)->Arg(512);

void BM_potrf(benchmark::State& state) {
  const i64 nb = state.range(0);
  la::Matrix a = random_matrix(nb, nb, 4);
  la::Matrix s(nb, nb);
  la::gemm(la::Trans::kNo, la::Trans::kYes, 1.0, a.view(), a.view(), 0.0,
           s.view());
  for (i64 i = 0; i < nb; ++i) s(i, i) += static_cast<double>(nb);
  for (auto _ : state) {
    la::Matrix work = la::to_matrix(s.view());
    la::potrf_lower_or_throw(work.view());
    benchmark::DoNotOptimize(work.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      nb * nb * nb / 3.0 * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_potrf)->Arg(128)->Arg(256)->Arg(512);

void BM_trsm(benchmark::State& state) {
  const i64 nb = state.range(0);
  const la::Matrix l = spd_lower(nb);
  const la::Matrix b0 = random_matrix(nb, nb, 5);
  for (auto _ : state) {
    la::Matrix b = la::to_matrix(b0.view());
    la::trsm(la::Side::kRight, la::Trans::kYes, 1.0, l.view(), b.view());
    benchmark::DoNotOptimize(b.data());
  }
}
BENCHMARK(BM_trsm)->Arg(128)->Arg(256);

// The sample-contiguous panel sweep (rows = samples); square nb x nb panels,
// so the counter is integrand entries (chain steps x samples) per second.
// bench_qmc_sweep has the full before/after series against the seed's
// sample-major scalar kernel.
void BM_qmc_kernel(benchmark::State& state) {
  const i64 nb = state.range(0);
  const la::Matrix l = spd_lower(nb);
  const stats::PointSet pts(stats::SamplerKind::kPseudoMC, nb, nb, 1, 7);
  la::Matrix a(nb, nb), b(nb, nb), y(nb, nb);
  for (i64 j = 0; j < nb; ++j)
    for (i64 i = 0; i < nb; ++i) {
      a(i, j) = -1.0;
      b(i, j) = 1.0;
    }
  std::vector<double> p(static_cast<std::size_t>(nb), 1.0);
  for (auto _ : state) {
    std::fill(p.begin(), p.end(), 1.0);
    core::qmc_tile_kernel(l.view(), pts, 0, 0, a.view(), b.view(), y.view(),
                          p.data(), nullptr);
    benchmark::DoNotOptimize(p.data());
  }
  state.counters["entries/s"] = benchmark::Counter(
      static_cast<double>(nb * nb) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_qmc_kernel)->Arg(128)->Arg(256)->Arg(512);

void BM_norm_cdf_batch(benchmark::State& state) {
  const i64 n = 4096;
  std::vector<double> x(static_cast<std::size_t>(n)), out(
      static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i)
    x[static_cast<std::size_t>(i)] = -4.0 + 8.0 * static_cast<double>(i) /
                                                static_cast<double>(n);
  for (auto _ : state) {
    stats::norm_cdf_batch(n, x.data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["values/s"] = benchmark::Counter(
      static_cast<double>(n) * state.iterations(), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_norm_cdf_batch);

void BM_norm_quantile_batch(benchmark::State& state) {
  const i64 n = 4096;
  std::vector<double> p(static_cast<std::size_t>(n)), out(
      static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i)
    p[static_cast<std::size_t>(i)] =
        (static_cast<double>(i) + 0.5) / static_cast<double>(n);
  for (auto _ : state) {
    stats::norm_quantile_batch(n, p.data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["values/s"] = benchmark::Counter(
      static_cast<double>(n) * state.iterations(), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_norm_quantile_batch);

void BM_compress_block(benchmark::State& state) {
  const i64 nb = state.range(0);
  geo::LocationSet locs = geo::regular_grid(32, 32);
  locs = geo::apply_permutation(locs, geo::morton_order(locs));
  auto kernel = std::make_shared<stats::MaternKernel>(1.0, 0.4, 0.5);
  const geo::KernelCovGenerator gen(locs, kernel, 0.0);
  la::Matrix block(nb, nb);
  gen.fill(nb, 0, block.view());
  for (auto _ : state) {
    const tlr::LowRankTile t = tlr::compress_block(block.view(), 1e-3, -1);
    benchmark::DoNotOptimize(t.rank());
  }
}
BENCHMARK(BM_compress_block)->Arg(128)->Arg(256);

void BM_norm_cdf(benchmark::State& state) {
  double x = -4.0;
  double acc = 0.0;
  for (auto _ : state) {
    acc += stats::norm_cdf(x);
    x += 1e-5;
    if (x > 4.0) x = -4.0;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_norm_cdf);

void BM_norm_quantile(benchmark::State& state) {
  double p = 1e-6;
  double acc = 0.0;
  for (auto _ : state) {
    acc += stats::norm_quantile(p);
    p += 1e-7;
    if (p > 1.0 - 1e-6) p = 1e-6;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_norm_quantile);

void BM_bessel_k(benchmark::State& state) {
  double x = 0.1;
  double acc = 0.0;
  for (auto _ : state) {
    acc += stats::bessel_k(1.43391, x);
    x += 1e-4;
    if (x > 20.0) x = 0.1;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_bessel_k);

}  // namespace

BENCHMARK_MAIN();
