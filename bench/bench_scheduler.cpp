// A/B series for the PR-5 scheduler rewrite: the work-stealing runtime
// (per-worker Chase–Lev lane deques, tile-owner affinity, atomic dependency
// counts) against the frozen single-lock global-queue arm, on the three
// task graphs whose granularity the scheduler bounds:
//
//   * dense tiled POTRF  — nb in {64, 128, 256} x workers in {1, 2, 4, 8, 16}
//   * TLR POTRF          — same sweep (finer, ragged task costs)
//   * fused engine batch — one PmvnEngine::evaluate over 8 queries at nb=64
//
// Each row reports wall time and tasks/sec for both arms (best of
// kTrials timed reps each) plus the work-stealing arm's steal count, and a
// bitwise cross-check that both arms produced identical numbers.
//
// The numbers land in BENCH_scheduler.json at the repo root (regenerate
// with:  ./bench_scheduler --json > ../BENCH_scheduler.json ).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "engine/cholesky_factor.hpp"
#include "engine/pmvn_engine.hpp"
#include "geo/covgen.hpp"
#include "geo/geometry.hpp"
#include "linalg/matrix.hpp"
#include "runtime/runtime.hpp"
#include "stats/covariance.hpp"
#include "tile/tile_matrix.hpp"
#include "tile/tiled_potrf.hpp"
#include "tlr/tlr_matrix.hpp"
#include "tlr/tlr_potrf.hpp"

namespace {

using namespace parmvn;
using rt::SchedulerKind;

struct Spatial {
  geo::LocationSet locs;
  std::shared_ptr<stats::ExponentialKernel> kernel;

  explicit Spatial(i64 side)
      : locs(geo::apply_permutation(
            geo::regular_grid(side, side),
            geo::morton_order(geo::regular_grid(side, side)))),
        kernel(std::make_shared<stats::ExponentialKernel>(1.0, 0.2)) {}
};

struct Measurement {
  double seconds = 0.0;        // best (min) wall time per run
  double tasks_per_s = 0.0;    // tasks of one run / best wall time
  double checksum = 0.0;       // bitwise cross-arm comparison hook
  i64 steals = 0;              // total stolen tasks over every rep
};

struct Row {
  std::string graph;
  i64 n, nb;
  int workers;
  Measurement global, ws;
};

// One sample: the run's self-timed graph execution (resets/copies excluded
// — a serial reset identical in both arms would only dilute the cross-arm
// ratio toward 1.0) plus its checksum witness.
struct Sample {
  double seconds = 0.0;
  double checksum = 0.0;
};

// Repeat `run` until at least min_seconds of samples accumulate, then keep
// the *minimum* single-run time — the noise-robust estimator on a
// shared/virtualised host, where steal time only ever adds.
// `tasks_per_run` comes from the runtime's counter (reset tasks are zero:
// the resets are plain copies, not submissions).
template <class Run>
Measurement measure(rt::Runtime& rt, double min_seconds, Run&& run) {
  Measurement m;
  m.checksum = run().checksum;  // warmup; also the checksum witness
  double best = 1e300;
  double total = 0.0;
  i64 reps = 0;
  const i64 tasks0 = rt.tasks_executed();
  const i64 steals0 = rt.tasks_stolen();  // exclude the warmup's steals too
  while (total < min_seconds || reps < 5) {
    const double s = run().seconds;
    total += s;
    ++reps;
    best = std::min(best, s);
  }
  const i64 tasks_per_run = (rt.tasks_executed() - tasks0) / reps;
  m.seconds = best;
  m.tasks_per_s = static_cast<double>(tasks_per_run) / best;
  m.steals = rt.tasks_stolen() - steals0;
  return m;
}

double tile_checksum(rt::Runtime& rt, tile::TileMatrix& l) {
  (void)rt;
  double sum = 0.0;
  for (i64 k = 0; k < l.row_tiles(); ++k) {
    la::ConstMatrixView t = l.tile(k, k);
    for (i64 i = 0; i < t.rows; ++i) sum += t(i, i);
  }
  return sum;
}

Measurement run_dense(SchedulerKind arm, int workers, const la::Matrix& sigma,
                      i64 nb, double min_s) {
  rt::Runtime rt(workers, false, arm);
  tile::TileMatrix l(rt, sigma.rows(), sigma.cols(), nb,
                     tile::Layout::kLowerSymmetric);
  return measure(rt, min_s, [&] {
    l.from_dense(sigma.view());  // reset, untimed
    const WallTimer timer;
    tile::potrf_tiled(rt, l);
    return Sample{timer.seconds(), tile_checksum(rt, l)};
  });
}

double tlr_checksum(const tlr::TlrMatrix& l) {
  double sum = 0.0;
  for (i64 k = 0; k < l.num_tiles(); ++k) {
    la::ConstMatrixView t = l.diag(k);
    for (i64 i = 0; i < t.rows; ++i) sum += t(i, i);
  }
  return sum;
}

Measurement run_tlr(SchedulerKind arm, int workers, const Spatial& sp, i64 nb,
                    double min_s) {
  rt::Runtime rt(workers, false, arm);
  const geo::KernelCovGenerator gen(sp.locs, sp.kernel, 1e-6);
  // Compress once (outside the timed region; its tasks are excluded by the
  // counter snapshots inside measure()); each rep factors a fresh copy.
  tlr::TlrMatrix compressed = tlr::TlrMatrix::compress(rt, gen, nb, 1e-7, -1);
  tlr::TlrMatrix work = compressed;
  return measure(rt, min_s, [&] {
    work = compressed;  // reset, untimed
    const WallTimer timer;
    tlr::potrf_tlr(rt, work);
    return Sample{timer.seconds(), tlr_checksum(work)};
  });
}

Measurement run_engine(SchedulerKind arm, int workers, const Spatial& sp,
                       i64 nb, double min_s) {
  rt::Runtime rt(workers, false, arm);
  const geo::KernelCovGenerator gen(sp.locs, sp.kernel, 1e-6);
  const i64 n = gen.rows();
  std::vector<i64> identity(static_cast<std::size_t>(n));
  std::iota(identity.begin(), identity.end(), i64{0});
  const engine::FactorSpec spec{engine::FactorKind::kDense, nb, 0.0, -1};
  auto factor = std::make_shared<const engine::CholeskyFactor>(
      engine::CholeskyFactor::factor_ordered(rt, gen, identity, spec));
  engine::EngineOptions opts;
  opts.samples_per_shift = 50;
  opts.shifts = 4;
  opts.sampler = stats::SamplerKind::kRichtmyer;
  const engine::PmvnEngine eng(rt, factor, opts);

  constexpr i64 kBatch = 8;
  const std::vector<double> hi(static_cast<std::size_t>(n), 10.0);
  std::vector<std::vector<double>> lows;
  std::vector<engine::LimitSet> batch;
  for (i64 q = 0; q < kBatch; ++q) {
    lows.emplace_back(static_cast<std::size_t>(n),
                      -0.8 + 0.1 * static_cast<double>(q));
    batch.push_back({lows.back(), hi, 20240517 + static_cast<u64>(q), false});
  }
  return measure(rt, min_s, [&] {
    const WallTimer timer;
    const std::vector<engine::QueryResult> res = eng.evaluate(batch);
    const double s = timer.seconds();
    double sum = 0.0;
    for (const engine::QueryResult& r : res) sum += r.prob;
    return Sample{s, sum};
  });
}

void print_rows(const std::vector<Row>& rows, bool json) {
  if (json) {
    std::printf("{\n  \"bench\": \"scheduler\",\n");
    std::printf("  \"host_cpus\": %u,\n", std::thread::hardware_concurrency());
    std::printf(
        "  \"note\": \"ratios are ws/global at equal worker count; on a "
        "single-CPU host the OS serializes all workers, so the single-lock "
        "arm sees zero contention and the ratio measures serialized "
        "per-task overhead only — the contention regime the work-stealing "
        "scheduler targets needs a multi-core host\",\n");
    std::printf("  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::printf(
          "    {\"graph\": \"%s\", \"n\": %lld, \"nb\": %lld, "
          "\"workers\": %d, \"global_s\": %.6e, \"ws_s\": %.6e, "
          "\"global_tasks_per_s\": %.6e, \"ws_tasks_per_s\": %.6e, "
          "\"tasks_per_s_speedup\": %.3f, \"ws_steals\": %lld}%s\n",
          r.graph.c_str(), static_cast<long long>(r.n),
          static_cast<long long>(r.nb), r.workers, r.global.seconds,
          r.ws.seconds, r.global.tasks_per_s, r.ws.tasks_per_s,
          r.ws.tasks_per_s / r.global.tasks_per_s,
          static_cast<long long>(r.ws.steals),
          i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
  } else {
    std::printf("%-12s %6s %5s %8s %12s %12s %14s %14s %9s %10s\n", "graph",
                "n", "nb", "workers", "global_s", "ws_s", "global_tasks/s",
                "ws_tasks/s", "speedup", "ws_steals");
    for (const Row& r : rows)
      std::printf(
          "%-12s %6lld %5lld %8d %12.4e %12.4e %14.3e %14.3e %8.2fx %10lld\n",
          r.graph.c_str(), static_cast<long long>(r.n),
          static_cast<long long>(r.nb), r.workers, r.global.seconds,
          r.ws.seconds, r.global.tasks_per_s, r.ws.tasks_per_s,
          r.ws.tasks_per_s / r.global.tasks_per_s,
          static_cast<long long>(r.ws.steals));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  bool json = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0) json = true;

  const double min_s = args.quick ? 0.05 : 0.4;
  const i64 side = args.quick ? 16 : (args.full ? 48 : 32);
  const i64 engine_side = args.quick ? 16 : 24;
  const std::vector<int> worker_counts = {1, 2, 4, 8, 16};
  const std::vector<i64> tile_sizes = {64, 128, 256};

  const Spatial sp(side);             // n = side^2 for the POTRF graphs
  const Spatial sp_engine(engine_side);
  const geo::KernelCovGenerator gen(sp.locs, sp.kernel, 1e-6);
  const la::Matrix sigma = geo::dense_from_generator(gen);
  const i64 n = sigma.rows();

  std::vector<Row> rows;
  int mismatches = 0;
  // Each arm is measured over several interleaved passes (G/W/G/W/…), one
  // fresh Runtime per pass, and min-merged: on a shared host the noise is
  // bursty and per-instance (allocation layout) variance is real, so
  // interleaving plus the min over instances keeps a burst from landing
  // entirely on one arm of a row.
  const auto push = [&](const char* graph, i64 rn, i64 nb, int workers,
                        auto&& run_arm, int passes = 3) {
    Measurement global, ws;
    for (int pass = 0; pass < passes; ++pass) {
      const Measurement g = run_arm(SchedulerKind::kGlobalQueue);
      const Measurement w = run_arm(SchedulerKind::kWorkSteal);
      if (g.checksum != w.checksum) {
        std::fprintf(
            stderr, "MISMATCH %s nb=%lld workers=%d: global %.17g != ws %.17g\n",
            graph, static_cast<long long>(nb), workers, g.checksum, w.checksum);
        ++mismatches;
      }
      if (pass == 0) {
        global = g;
        ws = w;
      } else {
        global.seconds = std::min(global.seconds, g.seconds);
        global.tasks_per_s = std::max(global.tasks_per_s, g.tasks_per_s);
        ws.seconds = std::min(ws.seconds, w.seconds);
        ws.tasks_per_s = std::max(ws.tasks_per_s, w.tasks_per_s);
        ws.steals += w.steals;
      }
    }
    rows.push_back({graph, rn, nb, workers, global, ws});
  };

  for (const i64 nb : tile_sizes) {
    for (const int workers : worker_counts) {
      push("dense_potrf", n, nb, workers, [&](SchedulerKind arm) {
        return run_dense(arm, workers, sigma, nb, min_s);
      });
    }
  }
  for (const i64 nb : tile_sizes) {
    for (const int workers : worker_counts) {
      push("tlr_potrf", n, nb, workers, [&](SchedulerKind arm) {
        return run_tlr(arm, workers, sp, nb, min_s);
      });
    }
  }
  for (const int workers : worker_counts) {
    // The engine rows carry the largest per-instance variance (allocation
    // layout of the MB-scale sample panels), so they get extra passes.
    push("engine_batch", engine_side * engine_side, 64, workers,
         [&](SchedulerKind arm) {
           return run_engine(arm, workers, sp_engine, 64, min_s);
         },
         /*passes=*/6);
  }

  if (!json)
    bench::header("scheduler",
                  "work-stealing vs single-lock global-queue scheduler: "
                  "time-to-solution and tasks/sec per graph",
                  args);
  print_rows(rows, json);
  if (mismatches != 0) {
    std::fprintf(stderr, "%d cross-arm checksum mismatches\n", mismatches);
    return 1;
  }
  return 0;
}
