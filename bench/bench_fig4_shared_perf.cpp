// Reproduces Fig. 4: elapsed time of one MVN integration operation (tiled
// Cholesky + PMVN sweep) on shared memory, dense vs TLR, across problem
// dimensions and QMC sample sizes.
//
// Paper expectation: TLR beats dense increasingly with dimension and with
// QMC size (its Table II reports up to 9-20x at QMC 10000); dense grows
// ~n^3 for the factorization plus ~n^2*N for the sweep.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "common/env.hpp"
#include "common/timer.hpp"
#include "core/pmvn.hpp"
#include "geo/covgen.hpp"
#include "geo/geometry.hpp"
#include "runtime/runtime.hpp"
#include "stats/covariance.hpp"
#include "tile/tiled_potrf.hpp"
#include "tlr/tlr_potrf.hpp"

namespace {

using namespace parmvn;

struct Timing {
  double factor_s = 0.0;
  double sweep_s = 0.0;
  [[nodiscard]] double total() const { return factor_s + sweep_s; }
};

Timing run_dense(rt::Runtime& rt, const la::MatrixGenerator& gen, i64 tile,
                 std::span<const double> a, std::span<const double> b,
                 const core::PmvnOptions& opts) {
  Timing t;
  WallTimer factor;
  tile::TileMatrix l(rt, gen.rows(), gen.cols(), tile,
                     tile::Layout::kLowerSymmetric);
  l.generate_async(rt, gen);
  rt.wait_all();
  tile::potrf_tiled(rt, l);
  t.factor_s = factor.seconds();
  t.sweep_s = core::pmvn_dense(rt, l, a, b, opts).seconds;
  return t;
}

Timing run_tlr(rt::Runtime& rt, const la::MatrixGenerator& gen, i64 tile,
               std::span<const double> a, std::span<const double> b,
               const core::PmvnOptions& opts) {
  Timing t;
  WallTimer factor;
  tlr::TlrMatrix l = tlr::TlrMatrix::compress(
      rt, gen, tile, 1e-3, -1, tlr::CompressionMethod::kAca);
  tlr::potrf_tlr(rt, l);
  t.factor_s = factor.seconds();
  t.sweep_s = core::pmvn_tlr(rt, l, a, b, opts).seconds;
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  bench::header("Fig. 4",
                "one MVN integration (factor + sweep), dense vs TLR", args);

  std::vector<i64> sides;        // grid side; n = side^2
  std::vector<i64> qmc_sizes;
  i64 dense_tile = 0;
  i64 tlr_tile = 0;
  if (args.full) {
    sides = {70, 140, 210, 280};  // 4900, 19600, 44100, 78400 (paper)
    qmc_sizes = {100, 1000, 10000};
    dense_tile = 320;
    tlr_tile = 980;
  } else if (args.quick) {
    sides = {24, 32};
    qmc_sizes = {100, 500};
    dense_tile = 128;
    tlr_tile = 288;
  } else {
    sides = {28, 40, 52};  // 784, 1600, 2704
    qmc_sizes = {100, 1000};
    dense_tile = 196;
    tlr_tile = 400;
  }

  std::printf("method,n,qmc,factor_s,sweep_s,total_s\n");
  for (const i64 side : sides) {
    geo::LocationSet locs = geo::regular_grid(side, side);
    locs = geo::apply_permutation(locs, geo::morton_order(locs));
    // Medium correlation, spacing-matched to the paper's (0.1 on 140^2).
    const double range = 0.1 * 140.0 / static_cast<double>(side);
    auto kernel = std::make_shared<stats::MaternKernel>(1.0, range, 0.5);
    // Timing-only experiment: a small nugget keeps the TLR-truncated matrix
    // SPD at loose accuracies (the standard geostatistics stabilisation).
    const geo::KernelCovGenerator gen(locs, kernel, 1e-2);
    const i64 n = gen.rows();
    const std::vector<double> a(static_cast<std::size_t>(n), -1.0);
    const std::vector<double> b(static_cast<std::size_t>(n),
                                std::numeric_limits<double>::infinity());
    rt::Runtime rt(args.threads > 0 ? static_cast<int>(args.threads)
                                    : default_num_threads());
    for (const i64 qmc : qmc_sizes) {
      core::PmvnOptions opts;
      opts.samples_per_shift = qmc / 10 > 0 ? qmc / 10 : 1;
      opts.shifts = 10;
      opts.sampler = stats::SamplerKind::kPseudoMC;  // as in Algorithm 2
      const Timing d = run_dense(rt, gen, dense_tile, a, b, opts);
      std::printf("dense,%lld,%lld,%.3f,%.3f,%.3f\n",
                  static_cast<long long>(n), static_cast<long long>(qmc),
                  d.factor_s, d.sweep_s, d.total());
      std::fflush(stdout);
      const Timing t = run_tlr(rt, gen, tlr_tile, a, b, opts);
      std::printf("tlr,%lld,%lld,%.3f,%.3f,%.3f\n", static_cast<long long>(n),
                  static_cast<long long>(qmc), t.factor_s, t.sweep_s,
                  t.total());
      std::fflush(stdout);
    }
  }
  bench::row_comment(
      "paper: TLR's dashed curves sit below dense at every dimension, with "
      "the gap widening as dimension and QMC size grow");
  return 0;
}
