// Reproduces Fig. 2: the wind-speed application maps — (a) original data,
// (b) marginal probability, (c) confidence regions dense, (d) confidence
// regions TLR — on the synthetic Saudi wind dataset (DESIGN.md documents
// the data substitution).
//
// Paper expectation: the marginal map is unrealistically permissive (most
// of the map exceeds 0.8 probability) while the joint confidence regions
// concentrate on the high-wind ridges; dense and TLR regions are nearly
// identical.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "common/env.hpp"
#include "core/excursion.hpp"
#include "geo/covgen.hpp"
#include "geo/io.hpp"
#include "geo/wind.hpp"
#include "mle/fit.hpp"
#include "runtime/runtime.hpp"

int main(int argc, char** argv) {
  using namespace parmvn;
  const bench::Args args = bench::Args::parse(argc, argv);
  bench::header("Fig. 2", "wind-speed confidence regions (synthetic Saudi)",
                args);

  geo::WindOptions wopts;
  wopts.grid_nx = args.full ? 96 : (args.quick ? 20 : 40);
  wopts.grid_ny = args.full ? 72 : (args.quick ? 15 : 30);
  const geo::WindDataset data = geo::simulate_wind(wopts);
  const i64 n = static_cast<i64>(data.locations.size());
  std::printf("n=%lld locations, %lld days\n", static_cast<long long>(n),
              static_cast<long long>(data.daily_speed.cols()));

  // (a) original data.
  std::vector<double> target(static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i)
    target[static_cast<std::size_t>(i)] = data.daily_speed(i, data.target_day);
  std::printf("\n(a) target-day wind speed (m/s):\n%s",
              geo::ascii_heatmap(data.locations, target, 66, 20).c_str());

  // Fit + CRD, as in examples/wind_farm_siting.
  const geo::LocationSet unit = geo::regular_grid(wopts.grid_nx, wopts.grid_ny);
  mle::MaternFitOptions fopts;
  fopts.init_sigma2 = 1.0;
  fopts.init_range = 0.05;
  fopts.init_smoothness = 1.43391;
  fopts.fix_smoothness = true;
  geo::LocationSet fit_locs;
  std::vector<double> fit_z;
  for (i64 i = 0; i < n; i += (n > 1200 ? 3 : 2)) {
    fit_locs.push_back(unit[static_cast<std::size_t>(i)]);
    fit_z.push_back(data.target_standardized[static_cast<std::size_t>(i)]);
  }
  const mle::MaternFit fit = mle::fit_matern(fit_locs, fit_z, fopts);
  std::printf("\nfitted Matern theta = (%.3f, %.4f, %.5f)\n", fit.sigma2,
              fit.range, fit.smoothness);

  auto kernel = std::make_shared<stats::MaternKernel>(fit.sigma2, fit.range,
                                                      fit.smoothness);
  const geo::KernelCovGenerator cov(unit, kernel, 1e-6);
  std::vector<double> mean_shift(static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i) {
    const double u_std =
        (4.0 - data.moments.mean[static_cast<std::size_t>(i)]) /
        data.moments.sd[static_cast<std::size_t>(i)];
    mean_shift[static_cast<std::size_t>(i)] =
        data.target_standardized[static_cast<std::size_t>(i)] - u_std;
  }

  rt::Runtime rt(args.threads > 0 ? static_cast<int>(args.threads)
                                  : default_num_threads());
  core::CrdOptions opts;
  opts.threshold = 0.0;
  opts.alpha = 0.05;
  opts.tile = args.full ? 320 : 150;
  opts.pmvn.samples_per_shift = 1000;
  opts.pmvn.shifts = 10;
  opts.pmvn.sampler = stats::SamplerKind::kRichtmyer;
  const core::CrdResult dense =
      core::detect_confidence_region(rt, cov, mean_shift, opts);

  core::CrdOptions topts = opts;
  topts.mode = core::CrdMode::kTlr;
  topts.tile = args.full ? 980 : 300;
  topts.tlr_tol = 1e-4;
  topts.tlr_max_rank = 145;
  const core::CrdResult tlr =
      core::detect_confidence_region(rt, cov, mean_shift, topts);

  std::printf("\n(b) marginal probability P(wind > 4 m/s):\n%s",
              geo::ascii_heatmap(data.locations, dense.marginal, 66, 20, 0.0,
                                 1.0)
                  .c_str());
  std::vector<double> rd(dense.region.begin(), dense.region.end());
  std::vector<double> rtl(tlr.region.begin(), tlr.region.end());
  std::printf("\n(c) confidence regions, dense (%lld locations):\n%s",
              static_cast<long long>(dense.region_size),
              geo::ascii_heatmap(data.locations, rd, 66, 20, 0.0, 1.0).c_str());
  std::printf("\n(d) confidence regions, TLR 1e-4 (%lld locations):\n%s",
              static_cast<long long>(tlr.region_size),
              geo::ascii_heatmap(data.locations, rtl, 66, 20, 0.0, 1.0)
                  .c_str());

  i64 marginal_permissive = 0;
  for (const double m : dense.marginal)
    if (m > 0.8) ++marginal_permissive;
  std::printf(
      "\nsummary: marginal>0.8 at %lld/%lld locations vs %lld in the joint "
      "region; dense/TLR region overlap %lld\n",
      static_cast<long long>(marginal_permissive), static_cast<long long>(n),
      static_cast<long long>(dense.region_size),
      static_cast<long long>([&] {
        i64 overlap = 0;
        for (i64 i = 0; i < n; ++i)
          if (dense.region[static_cast<std::size_t>(i)] &&
              tlr.region[static_cast<std::size_t>(i)])
            ++overlap;
        return overlap;
      }()));
  bench::row_comment(
      "paper: marginal map exceeds 0.8 over much of the country (judged "
      "unrealistic); dense and TLR excursion maps are substantially similar");
  return 0;
}
