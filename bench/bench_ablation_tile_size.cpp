// Ablation A3: tile-size sweep for the PMVN sweep + tiled Cholesky. Tile
// size trades scheduler overhead and parallelism (small tiles) against
// kernel efficiency (large tiles); the paper uses 320 dense / 980 TLR.
#include <cstdio>
#include <limits>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "common/env.hpp"
#include "common/timer.hpp"
#include "core/pmvn.hpp"
#include "geo/covgen.hpp"
#include "geo/geometry.hpp"
#include "runtime/runtime.hpp"
#include "stats/covariance.hpp"
#include "tile/tiled_potrf.hpp"

int main(int argc, char** argv) {
  using namespace parmvn;
  const bench::Args args = bench::Args::parse(argc, argv);
  bench::header("Ablation A3", "PMVN tile-size sweep (dense)", args);

  const i64 side = args.full ? 70 : (args.quick ? 24 : 40);
  geo::LocationSet locs = geo::regular_grid(side, side);
  locs = geo::apply_permutation(locs, geo::morton_order(locs));
  const double range = 0.1 * 140.0 / static_cast<double>(side);
  auto kernel = std::make_shared<stats::MaternKernel>(1.0, range, 0.5);
  // Timing-only experiment: nugget stabilises TLR potrf at loose accuracy.
  const geo::KernelCovGenerator gen(locs, kernel, 1e-2);
  const i64 n = gen.rows();
  const std::vector<double> a(static_cast<std::size_t>(n), -1.0);
  const std::vector<double> b(static_cast<std::size_t>(n),
                              std::numeric_limits<double>::infinity());

  const std::vector<i64> tiles = args.quick
                                     ? std::vector<i64>{64, 192}
                                     : std::vector<i64>{50, 100, 200, 400, 800};
  std::printf("n=%lld\n", static_cast<long long>(n));
  std::printf("tile,factor_s,sweep_s,total_s,prob\n");
  for (const i64 tile : tiles) {
    if (tile > n) continue;
    rt::Runtime rt(args.threads > 0 ? static_cast<int>(args.threads)
                                    : default_num_threads());
    WallTimer factor;
    tile::TileMatrix l(rt, n, n, tile, tile::Layout::kLowerSymmetric);
    l.generate_async(rt, gen);
    rt.wait_all();
    tile::potrf_tiled(rt, l);
    const double factor_s = factor.seconds();
    core::PmvnOptions opts;
    opts.samples_per_shift = 100;
    opts.shifts = 10;
    const core::PmvnResult r = core::pmvn_dense(rt, l, a, b, opts);
    std::printf("%lld,%.3f,%.3f,%.3f,%.5e\n", static_cast<long long>(tile),
                factor_s, r.seconds, factor_s + r.seconds, r.prob);
    std::fflush(stdout);
  }
  bench::row_comment(
      "the probability column is tile-size invariant (same chains, "
      "different blocking); time has a sweet spot between scheduling "
      "overhead and kernel efficiency");
  return 0;
}
