// Reproduces Table III: TLR-vs-dense speedup on the (simulated) distributed
// system per node count at QMC sample size 10,000, plus the factor-only
// speedups quoted in Sec. V-D2.
//
// Paper expectation: end-to-end speedups 1.8/1.8/1.4/1.7/1.3/1.5x for
// 16/32/64/128/256/512 nodes; Cholesky-only speedups 5.2/4.5/2.6/3.1/1.9/
// 2.6x.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "common/env.hpp"
#include "dist/distributed_pmvn.hpp"
#include "geo/covgen.hpp"
#include "geo/geometry.hpp"
#include "runtime/runtime.hpp"
#include "stats/covariance.hpp"
#include "tlr/tlr_matrix.hpp"

int main(int argc, char** argv) {
  using namespace parmvn;
  const bench::Args args = bench::Args::parse(argc, argv);
  bench::header("Table III", "distributed TLR/dense speedup by node count",
                args);

  dist::RankProfile ranks;
  {
    geo::LocationSet locs = geo::regular_grid(140, 140);
    locs = geo::apply_permutation(locs, geo::morton_order(locs));
    auto kernel = std::make_shared<stats::MaternKernel>(1.0, 0.1, 0.5);
    const geo::KernelCovGenerator gen(locs, kernel, 0.0);
    rt::Runtime rt(default_num_threads());
    ranks = dist::RankProfile::fit(tlr::TlrMatrix::compress(
        rt, gen, 980, 1e-3, -1, tlr::CompressionMethod::kAca));
  }

  // One representative dimension per node count (larger machines run the
  // larger problems, as in the paper's two Fig. 7 panels).
  struct Row {
    i64 nodes;
    i64 n;
  };
  const std::vector<Row> rows = args.quick
                                    ? std::vector<Row>{{16, 108900}, {64, 266256}}
                                    : std::vector<Row>{{16, 108900},
                                                       {32, 187489},
                                                       {64, 266256},
                                                       {128, 360000},
                                                       {256, 537289},
                                                       {512, 760384}};

  // Cray XC40 rates with the host-calibrated stream_efficiency ratio (see
  // bench_fig7_distributed; analytic 0.25 remains the degenerate-probe
  // fallback).
  dist::MachineModel machine = dist::MachineModel::cray_xc40();
  machine.stream_efficiency =
      dist::calibrated_machine(dist::calibrate_host(256)).stream_efficiency;
  std::printf("# calibrated stream_efficiency %.3f\n",
              machine.stream_efficiency);

  std::printf("nodes,n,dense_s,tlr_s,speedup,chol_speedup\n");
  for (const Row& row : rows) {
    dist::DistConfig cfg;
    cfg.n = row.n;
    cfg.tile = 980;
    cfg.qmc_samples = 10000;
    cfg.nodes = row.nodes;
    cfg.ranks = ranks;
    cfg.max_sim_tiles = args.quick ? 80 : 140;
    cfg.machine = machine;
    cfg.tlr = false;
    const dist::DistPrediction dense = dist::predict_pmvn(cfg);
    cfg.tlr = true;
    const dist::DistPrediction tlr = dist::predict_pmvn(cfg);
    std::printf("%lld,%lld,%.2f,%.2f,%.2fx,%.2fx\n",
                static_cast<long long>(row.nodes),
                static_cast<long long>(row.n), dense.total_s, tlr.total_s,
                dense.total_s / tlr.total_s, dense.chol_s / tlr.chol_s);
    std::fflush(stdout);
  }
  bench::row_comment(
      "paper Table III: 1.8/1.8/1.4/1.7/1.3/1.5x end-to-end; Sec. V-D2 "
      "factor-only: 5.2/4.5/2.6/3.1/1.9/2.6x");
  return 0;
}
