// Amortization curve of the factor-once / evaluate-many engine: time to
// detect confidence regions for 1 / 4 / 16 thresholds over one field,
// batched against a single cached Cholesky factor, versus the pre-refactor
// pattern of one full detect_confidence_region call (generation +
// factorization + sweep) per threshold.
//
// The field has constant marginal variance, so every threshold induces the
// same marginal ordering and the whole batch shares one factor: the batched
// cost is one factorization plus k fused sweeps whose propagation GEMMs and
// factor-tile reads amortize across queries, while the loop pays k
// factorizations. Expectation: 16 batched thresholds land well under 3x the
// single-query time at n >= 2048, against ~16x for the loop.
//
// An adaptive-vs-fixed sweep rides along: the same 16 thresholds evaluated
// with the error-budget-adaptive engine (decision stop at 1-alpha plus an
// abs_tol fallback) against the fixed-budget sweep, checking the detected
// regions match and reporting per-query sample savings. `--json` emits just
// that sweep for BENCH_adaptive.json at the repo root (regenerate with:
// ./bench_batched_queries --json > ../BENCH_adaptive.json ).
//
// Build & run:  ./build/bench/bench_batched_queries [--quick|--full]
//               [--threads=N] [--json]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "common/env.hpp"
#include "common/timer.hpp"
#include "core/excursion.hpp"
#include "engine/factor_cache.hpp"
#include "geo/covgen.hpp"
#include "geo/geometry.hpp"
#include "runtime/runtime.hpp"
#include "stats/covariance.hpp"

namespace {

using namespace parmvn;

std::vector<double> bump_mean(const geo::LocationSet& locs) {
  std::vector<double> mean(locs.size());
  for (std::size_t i = 0; i < locs.size(); ++i) {
    const double dx = locs[i].x - 0.35;
    const double dy = locs[i].y - 0.6;
    // Smooth bump well above the threshold band, plus a deterministic tilt
    // that keeps marginals strictly ordered (no near-ties whose rounding
    // could split the batch into several ordering groups).
    mean[i] = 3.2 * std::exp(-10.0 * (dx * dx + dy * dy)) +
              1e-4 * static_cast<double>(i % 101);
  }
  return mean;
}

std::vector<core::CrdQuery> threshold_queries(i64 count) {
  std::vector<core::CrdQuery> queries;
  queries.reserve(static_cast<std::size_t>(count));
  for (i64 k = 0; k < count; ++k) {
    core::CrdQuery q;
    q.threshold =
        0.7 + 0.75 * static_cast<double>(k) / static_cast<double>(count);
    q.alpha = 0.1;
    queries.push_back(q);
  }
  return queries;
}

// Field for the adaptive-vs-fixed sweep: a high plateau over a deep
// background, so the prefix-probability curve jumps across the 1-alpha
// level between adjacent rows instead of grazing it. Decision-aware early
// stop retires exactly such decisive queries; rows whose interval straddles
// the level run to the cap by design (that is the no-flip guarantee), which
// the gradual bump field above would force on every threshold.
std::vector<double> plateau_mean(const geo::LocationSet& locs) {
  std::vector<double> mean(locs.size());
  for (std::size_t i = 0; i < locs.size(); ++i) {
    const double dx = locs[i].x - 0.35;
    const double dy = locs[i].y - 0.6;
    const bool high = dx * dx + dy * dy < 0.0144;
    mean[i] = (high ? 4.1 : -0.8) + 1e-4 * static_cast<double>(i % 101);
  }
  return mean;
}

struct AdaptiveRow {
  double threshold = 0.0;
  i64 fixed_samples = 0;
  i64 adaptive_samples = 0;
  bool converged = false;
  bool region_match = false;
};

// Adaptive-vs-fixed sweep over `k` thresholds: same seed, same shift-budget
// cap; the adaptive run may only stop early, never change the answer.
struct AdaptiveSweep {
  std::vector<AdaptiveRow> rows;
  double fixed_s = 0.0;
  double adaptive_s = 0.0;
  double median_ratio = 1.0;
};

AdaptiveSweep run_adaptive_sweep(rt::Runtime& rt,
                                 const la::MatrixGenerator& cov,
                                 const geo::LocationSet& locs,
                                 const core::CrdOptions& base, i64 k) {
  const std::vector<core::CrdQuery> queries = threshold_queries(k);
  const std::vector<double> mean = plateau_mean(locs);

  // A budget sized so the error actually resolves the decision: the rows
  // straddling the 1-alpha level need err3sigma ~ 1e-2 before either the
  // decision clearance or the abs_tol fallback can retire them, and the
  // adaptive loop retires per shift block — 16 blocks give stop-granularity
  // headroom at the same total budget.
  core::CrdOptions fixed = base;
  fixed.pmvn.samples_per_shift = 50;
  fixed.pmvn.shifts = 16;

  core::CrdOptions adaptive = fixed;
  adaptive.pmvn.adaptive = true;
  adaptive.pmvn.abs_tol = 0.0;  // decision-only: ambiguous rows run to the cap

  AdaptiveSweep sweep;
  {
    engine::FactorCache cache(2);
    const WallTimer timer;
    const std::vector<core::CrdResult> res =
        core::detect_confidence_regions(rt, cov, mean, fixed, queries, &cache);
    sweep.fixed_s = timer.seconds();
    sweep.rows.resize(res.size());
    for (std::size_t i = 0; i < res.size(); ++i) {
      sweep.rows[i].threshold = queries[i].threshold;
      sweep.rows[i].fixed_samples = res[i].samples_used;
    }
    const WallTimer ada_timer;
    const std::vector<core::CrdResult> ares = core::detect_confidence_regions(
        rt, cov, mean, adaptive, queries, &cache);
    sweep.adaptive_s = ada_timer.seconds();
    for (std::size_t i = 0; i < ares.size(); ++i) {
      sweep.rows[i].adaptive_samples = ares[i].samples_used;
      sweep.rows[i].converged = ares[i].converged;
      sweep.rows[i].region_match = ares[i].region == res[i].region;
    }
  }
  std::vector<double> ratios;
  ratios.reserve(sweep.rows.size());
  for (const AdaptiveRow& r : sweep.rows)
    ratios.push_back(static_cast<double>(r.adaptive_samples) /
                     static_cast<double>(r.fixed_samples));
  std::sort(ratios.begin(), ratios.end());
  sweep.median_ratio = ratios[ratios.size() / 2];
  return sweep;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  bool json = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  if (!json)
    bench::header("batched queries",
                  "multi-threshold confidence regions on one cached factor",
                  args);

  const i64 nx = args.full ? 64 : (args.quick ? 24 : 64);
  const i64 ny = args.full ? 64 : (args.quick ? 24 : 32);
  const i64 tile = args.quick ? 96 : 256;
  const geo::LocationSet locs = geo::regular_grid(nx, ny);
  const auto kernel = std::make_shared<stats::ExponentialKernel>(1.0, 0.1);
  const geo::KernelCovGenerator cov(locs, kernel, 1e-6);
  const std::vector<double> mean = bump_mean(locs);
  const i64 n = cov.rows();

  core::CrdOptions opts;
  opts.alpha = 0.1;
  opts.tile = tile;
  opts.pmvn.samples_per_shift = args.full ? 50 : 10;
  opts.pmvn.shifts = 4;
  opts.pmvn.sampler = stats::SamplerKind::kRichtmyer;

  rt::Runtime rt(args.threads > 0 ? static_cast<int>(args.threads)
                                  : default_num_threads());

  // Warm-up: touch the code paths once so first-run effects (page faults,
  // lazy allocations) do not land on the single-query measurement.
  {
    const std::vector<core::CrdQuery> one = threshold_queries(1);
    engine::FactorCache warm_cache(2);
    (void)core::detect_confidence_regions(rt, cov, mean, opts, one,
                                          &warm_cache);
  }

  if (json) {
    // JSON mode emits only the adaptive-vs-fixed sweep (BENCH_adaptive.json).
    const AdaptiveSweep sweep = run_adaptive_sweep(rt, cov, locs, opts, 16);
    std::printf("{\n  \"bench\": \"adaptive_vs_fixed\",\n");
    std::printf("  \"n\": %lld, \"tile\": %lld, \"workers\": %d,\n",
                static_cast<long long>(n), static_cast<long long>(tile),
                rt.num_threads());
    std::printf("  \"fixed_s\": %.3f, \"adaptive_s\": %.3f,\n", sweep.fixed_s,
                sweep.adaptive_s);
    std::printf("  \"median_sample_ratio\": %.3f,\n", sweep.median_ratio);
    std::printf("  \"rows\": [\n");
    for (std::size_t i = 0; i < sweep.rows.size(); ++i) {
      const AdaptiveRow& r = sweep.rows[i];
      std::printf("    {\"threshold\": %.4f, \"fixed_samples\": %lld, "
                  "\"adaptive_samples\": %lld, \"converged\": %s, "
                  "\"region_match\": %s}%s\n",
                  r.threshold, static_cast<long long>(r.fixed_samples),
                  static_cast<long long>(r.adaptive_samples),
                  r.converged ? "true" : "false",
                  r.region_match ? "true" : "false",
                  i + 1 < sweep.rows.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
    return 0;
  }

  std::printf("# n=%lld tile=%lld samples/query=%lld workers=%d\n",
              static_cast<long long>(n), static_cast<long long>(tile),
              static_cast<long long>(opts.pmvn.total_samples()),
              rt.num_threads());
  std::printf("mode,queries,total_s,per_query_s,vs_single\n");
  double single_s = 0.0;
  std::vector<double> batch_ratio(17, 0.0);
  for (const i64 k : {i64{1}, i64{4}, i64{16}}) {
    const std::vector<core::CrdQuery> queries = threshold_queries(k);
    engine::FactorCache cache(2);  // fresh: the batch itself shares a factor
    const WallTimer timer;
    const std::vector<core::CrdResult> results =
        core::detect_confidence_regions(rt, cov, mean, opts, queries, &cache);
    const double elapsed = timer.seconds();
    if (k == 1) single_s = elapsed;
    batch_ratio[static_cast<std::size_t>(k)] = elapsed / single_s;
    std::printf("batched,%lld,%.3f,%.3f,%.2fx\n", static_cast<long long>(k),
                elapsed, elapsed / static_cast<double>(k),
                elapsed / single_s);
    std::fflush(stdout);
    if (cache.stats().misses != 1) {
      std::printf("# WARNING: batch split into %lld factor groups\n",
                  static_cast<long long>(cache.stats().misses));
    }
    (void)results;
  }

  // Pre-refactor pattern: one full detection (factor + sweep) per threshold.
  // Default mode times 4 and extrapolates; --full times all 16.
  const i64 loop_k = args.full ? 16 : 4;
  {
    const std::vector<core::CrdQuery> queries = threshold_queries(loop_k);
    const WallTimer timer;
    for (const core::CrdQuery& q : queries) {
      core::CrdOptions one = opts;
      one.threshold = q.threshold;
      one.alpha = q.alpha;
      (void)core::detect_confidence_region(rt, cov, mean, one);
    }
    const double elapsed = timer.seconds();
    const double per_query = elapsed / static_cast<double>(loop_k);
    std::printf("loop,%lld,%.3f,%.3f,%.2fx\n",
                static_cast<long long>(loop_k), elapsed, per_query,
                elapsed / single_s);
    std::printf("loop_extrapolated,16,%.3f,%.3f,%.2fx\n", per_query * 16.0,
                per_query, per_query * 16.0 / single_s);
  }

  std::printf(
      "# acceptance: 16 batched thresholds ran at %.2fx the single-query "
      "time (target < 3x; the per-query loop sits near 16x)\n",
      batch_ratio[16]);

  // Adaptive vs fixed on the same 16 thresholds.
  {
    const AdaptiveSweep sweep = run_adaptive_sweep(rt, cov, locs, opts, 16);
    bool all_match = true;
    for (const AdaptiveRow& r : sweep.rows) all_match &= r.region_match;
    std::printf("adaptive,threshold,fixed_samples,adaptive_samples,ratio,"
                "converged,region_match\n");
    for (const AdaptiveRow& r : sweep.rows)
      std::printf("adaptive,%.4f,%lld,%lld,%.3f,%d,%d\n", r.threshold,
                  static_cast<long long>(r.fixed_samples),
                  static_cast<long long>(r.adaptive_samples),
                  static_cast<double>(r.adaptive_samples) /
                      static_cast<double>(r.fixed_samples),
                  r.converged ? 1 : 0, r.region_match ? 1 : 0);
    std::printf(
        "# acceptance: adaptive median sample ratio %.3f (target <= 0.5), "
        "regions %s (fixed %.3fs vs adaptive %.3fs)\n",
        sweep.median_ratio, all_match ? "all match" : "MISMATCH",
        sweep.fixed_s, sweep.adaptive_s);
  }
  return 0;
}
