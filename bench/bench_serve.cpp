// Serving-layer throughput/latency sweep: how the dynamic-batching window
// trades per-request latency against fused-batch throughput, and what the
// degradation ladder buys under a saturating client load.
//
// Rows: (batch_window_ms, clients) -> completed/shed counts, mean batch
// size, wall time, throughput. The interesting comparison is window 0 (no
// coalescing: every request pays its own engine sweep) against a few ms of
// window (requests share one wide-panel sweep per batch — the serving-side
// realisation of the paper's batched-query fusion).
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "geo/covgen.hpp"
#include "geo/geometry.hpp"
#include "serve/server.hpp"
#include "stats/covariance.hpp"

namespace {

using namespace parmvn;

struct LoadResult {
  double seconds = 0.0;
  serve::ServerStats stats;
};

LoadResult run_load(i64 side, i64 window_ms, int clients, int per_client,
                    int threads) {
  serve::ServeOptions opts;
  opts.queue_capacity = 64;
  opts.batch_window_ms = window_ms;
  opts.max_batch = 16;
  opts.engine.samples_per_shift = 500;
  opts.engine.shifts = 8;
  opts.engine.sampler = stats::SamplerKind::kRichtmyer;
  serve::Server server(opts, threads);

  const auto grid = geo::regular_grid(side, side);
  const auto locs = geo::apply_permutation(grid, geo::morton_order(grid));
  const auto kernel = std::make_shared<stats::ExponentialKernel>(1.0, 0.2);
  serve::FieldSpec field;
  field.cov = std::make_shared<geo::KernelCovGenerator>(locs, kernel, 1e-6);
  field.factor = engine::FactorSpec{engine::FactorKind::kDense, 32, 0.0, -1};
  const i64 n = field.cov->rows();
  server.register_field("gp", std::move(field));

  // Warm the factor cache so rows measure serving, not the one-time factor.
  {
    serve::Request warm;
    warm.field = "gp";
    warm.a.assign(static_cast<std::size_t>(n), 0.0);
    (void)server.evaluate(std::move(warm));
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads_v;
  threads_v.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads_v.emplace_back([&, c] {
      std::vector<std::future<serve::Response>> futs;
      futs.reserve(static_cast<std::size_t>(per_client));
      for (int q = 0; q < per_client; ++q) {
        serve::Request req;
        req.field = "gp";
        req.a.assign(static_cast<std::size_t>(n),
                     -1.0 + 0.05 * static_cast<double>(q % 16));
        req.seed = static_cast<u64>(c * 1000 + q);
        futs.push_back(server.submit(std::move(req)));
      }
      for (auto& f : futs) (void)f.get();
    });
  }
  for (auto& t : threads_v) t.join();
  LoadResult r;
  r.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count();
  server.drain();
  r.stats = server.stats();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  const i64 side = args.full ? 16 : (args.quick ? 6 : 10);
  const int per_client = args.full ? 32 : (args.quick ? 4 : 16);
  const int threads =
      args.threads > 0 ? static_cast<int>(args.threads) : 2;

  bench::header("serve_throughput",
                "dynamic-batching window vs serving throughput", args);
  std::printf("%-10s %-8s %-10s %-10s %-10s %-12s %-10s\n", "window_ms",
              "clients", "completed", "shed", "batches", "mean_batch",
              "req_per_s");
  for (const i64 window_ms : {i64{0}, i64{2}, i64{10}}) {
    for (const int clients : {1, 4, 8}) {
      const LoadResult r =
          run_load(side, window_ms, clients, per_client, threads);
      const double mean_batch =
          r.stats.batches > 0
              ? static_cast<double>(r.stats.batched_queries) /
                    static_cast<double>(r.stats.batches)
              : 0.0;
      const double rps =
          r.seconds > 0.0
              ? static_cast<double>(r.stats.completed_ok) / r.seconds
              : 0.0;
      std::printf("%-10lld %-8d %-10lld %-10lld %-10lld %-12.2f %-10.1f\n",
                  static_cast<long long>(window_ms), clients,
                  static_cast<long long>(r.stats.completed_ok),
                  static_cast<long long>(r.stats.rejected_overload),
                  static_cast<long long>(r.stats.batches), mean_batch, rps);
    }
  }
  bench::row_comment(
      "window 0 = no coalescing; larger windows fuse concurrent requests "
      "into shared wide-panel sweeps");
  return 0;
}
