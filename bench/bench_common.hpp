// Shared plumbing for the bench harness: flag parsing and consistent row
// printing. Every bench binary regenerates one table or figure of the paper
// (see DESIGN.md section 3) at a laptop-scale default, or at the paper's
// scale with --full.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace parmvn::bench {

struct Args {
  bool full = false;   // paper-scale dimensions
  bool quick = false;  // CI-sized smoke run
  i64 threads = 0;     // 0 = default_num_threads()

  static Args parse(int argc, char** argv) {
    Args args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--full") == 0) args.full = true;
      else if (std::strcmp(argv[i], "--quick") == 0) args.quick = true;
      else if (std::strncmp(argv[i], "--threads=", 10) == 0)
        args.threads = std::stoll(argv[i] + 10);
    }
    return args;
  }
};

inline void header(const char* experiment, const char* description,
                   const Args& args) {
  std::printf("# %s\n# %s\n# mode: %s\n", experiment, description,
              args.full ? "full (paper scale)"
                        : (args.quick ? "quick" : "default (laptop scale)"));
}

inline void row_comment(const char* text) { std::printf("# %s\n", text); }

}  // namespace parmvn::bench
