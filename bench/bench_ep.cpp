// Tiered evaluation: the EP screening front tier against the QMC-only
// engine on multi-threshold confidence-region detection.
//
// Arm 1 (fixed): the default fixed-budget QMC sweep over all queries.
// Arm 2 (adaptive): the decision-aware adaptive QMC sweep (each query still
//   pays at least min_shifts blocks of samples).
// Arm 3 (tiered): the EP screen retires every query whose decision level
//   falls cleanly outside the calibrated EP band before any QMC runs; only
//   the straddlers enter the (adaptive) QMC sweep.
//
// The field is the decisive plateau of bench_batched_queries: the prefix
// curve jumps across the 1-alpha level between adjacent rows, exactly the
// queries the screen can retire. The no-flip contract is checked, not
// assumed — all three arms must detect identical regions.
//
// A Vecchia run rides along: a 320x320 grid (102,400 sites, --full and the
// committed JSON; smaller otherwise) screened and detected through the
// Vecchia arm's observed-slot EP rows, the regime where a dense factor is
// not even an option.
//
// `--json` emits BENCH_ep.json for the repo root (regenerate with:
// ./bench_ep --json > ../BENCH_ep.json ).
//
// Build & run:  ./build/bench/bench_ep [--quick|--full] [--threads=N]
//               [--json]
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "common/env.hpp"
#include "common/timer.hpp"
#include "core/excursion.hpp"
#include "engine/factor_cache.hpp"
#include "geo/covgen.hpp"
#include "geo/geometry.hpp"
#include "runtime/runtime.hpp"
#include "stats/covariance.hpp"

namespace {

using namespace parmvn;

// High plateau over a deep background (the bench_batched_queries geometry
// at higher contrast): marginals strictly ordered, and the plateau-to-
// background gap is wide enough that every threshold's prefix curve jumps
// across the whole 1-alpha +- ep_margin band between adjacent rows — the
// decisive regime the screen is for. (At the softer 4.1/-0.8 contrast a
// third of the ladder grazes the band and stays with QMC; the bench prints
// the screened fraction, so a weaker field shows up as a number, not a
// silent slowdown.)
std::vector<double> plateau_mean(const geo::LocationSet& locs) {
  std::vector<double> mean(locs.size());
  for (std::size_t i = 0; i < locs.size(); ++i) {
    const double dx = locs[i].x - 0.35;
    const double dy = locs[i].y - 0.6;
    const bool high = dx * dx + dy * dy < 0.0144;
    mean[i] = (high ? 6.0 : -2.0) + 1e-4 * static_cast<double>(i % 101);
  }
  return mean;
}

std::vector<core::CrdQuery> threshold_queries(i64 count) {
  std::vector<core::CrdQuery> queries;
  queries.reserve(static_cast<std::size_t>(count));
  for (i64 k = 0; k < count; ++k) {
    core::CrdQuery q;
    q.threshold =
        0.7 + 0.75 * static_cast<double>(k) / static_cast<double>(count);
    q.alpha = 0.1;
    queries.push_back(q);
  }
  return queries;
}

struct ArmRun {
  double seconds = 0.0;
  i64 samples = 0;       // total QMC samples across queries
  i64 ep_retired = 0;    // queries decided by the EP screen alone
  std::vector<core::CrdResult> results;
};

ArmRun run_arm(rt::Runtime& rt, const la::MatrixGenerator& cov,
               std::span<const double> mean, const core::CrdOptions& opts,
               std::span<const core::CrdQuery> queries,
               engine::FactorCache& cache) {
  ArmRun arm;
  const WallTimer timer;
  arm.results = core::detect_confidence_regions(rt, cov, mean, opts, queries,
                                                &cache);
  arm.seconds = timer.seconds();
  for (const core::CrdResult& r : arm.results) {
    arm.samples += r.samples_used;
    arm.ep_retired += r.method == engine::EvalMethod::kEp ? 1 : 0;
  }
  return arm;
}

bool regions_match(const ArmRun& a, const ArmRun& b) {
  if (a.results.size() != b.results.size()) return false;
  for (std::size_t i = 0; i < a.results.size(); ++i)
    if (a.results[i].region != b.results[i].region) return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  bool json = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  if (!json)
    bench::header("tiered EP screen",
                  "EP front tier vs QMC-only confidence-region detection",
                  args);

  rt::Runtime rt(args.threads > 0 ? static_cast<int>(args.threads)
                                  : default_num_threads());

  // ---- decisive 16-threshold plateau field (dense arm) ----
  const i64 nx = args.quick ? 24 : 64;
  const i64 ny = args.quick ? 24 : 32;
  const i64 kq = 16;
  const geo::LocationSet locs = geo::regular_grid(nx, ny);
  const auto kernel = std::make_shared<stats::ExponentialKernel>(1.0, 0.1);
  const geo::KernelCovGenerator cov(locs, kernel, 1e-6);
  const std::vector<double> mean = plateau_mean(locs);
  const i64 n = cov.rows();
  const std::vector<core::CrdQuery> queries = threshold_queries(kq);

  core::CrdOptions fixed;
  fixed.alpha = 0.1;
  fixed.tile = args.quick ? 96 : 256;
  fixed.pmvn.samples_per_shift = 50;
  fixed.pmvn.shifts = 16;
  fixed.pmvn.sampler = stats::SamplerKind::kRichtmyer;

  core::CrdOptions adaptive = fixed;
  adaptive.pmvn.adaptive = true;
  adaptive.pmvn.abs_tol = 0.0;  // decision-only: straddlers run to the cap

  core::CrdOptions tiered = adaptive;
  tiered.pmvn.tiered = true;

  // One shared factor, paid before any timer: all three arms evaluate the
  // same ordering against a cache hit, so the comparison isolates the
  // evaluation tiers (the serving regime the engine is built for).
  engine::FactorCache cache(2);
  (void)core::detect_confidence_regions(rt, cov, mean, fixed, queries,
                                        &cache);

  const ArmRun fx = run_arm(rt, cov, mean, fixed, queries, cache);
  const ArmRun ad = run_arm(rt, cov, mean, adaptive, queries, cache);
  const ArmRun tr = run_arm(rt, cov, mean, tiered, queries, cache);

  const bool match_ad = regions_match(fx, ad);
  const bool match_tr = regions_match(fx, tr);
  const double screened =
      static_cast<double>(tr.ep_retired) / static_cast<double>(kq);
  const double speedup_fixed = fx.seconds / tr.seconds;
  const double speedup_adaptive = ad.seconds / tr.seconds;

  // ---- Vecchia arm at scale (observed-slot EP rows) ----
  const i64 vside = args.full ? 320 : (args.quick ? 48 : 320);
  const geo::LocationSet vlocs = geo::regular_grid(vside, vside);
  const geo::KernelCovGenerator vcov(vlocs, kernel, 1e-6);
  const std::vector<double> vmean = plateau_mean(vlocs);
  const i64 vn = vcov.rows();

  core::CrdOptions vopts = tiered;
  vopts.mode = core::CrdMode::kVecchia;
  vopts.vecchia_m = 30;
  vopts.tile = 512;
  const std::vector<core::CrdQuery> vqueries = threshold_queries(4);

  engine::FactorCache vcache(2);
  const WallTimer vfactor_timer;
  const ArmRun vr = run_arm(rt, vcov, vmean, vopts, vqueries, vcache);
  const double vtotal = vfactor_timer.seconds();
  double vfactor_s = 0.0;
  for (const core::CrdResult& r : vr.results) vfactor_s += r.factor_seconds;
  const double vscreened = static_cast<double>(vr.ep_retired) /
                           static_cast<double>(vqueries.size());

  if (json) {
    std::printf("{\n  \"bench\": \"tiered_ep\",\n");
    std::printf("  \"n\": %lld, \"queries\": %lld, \"workers\": %d,\n",
                static_cast<long long>(n), static_cast<long long>(kq),
                rt.num_threads());
    std::printf("  \"qmc_fixed_s\": %.4f, \"qmc_adaptive_s\": %.4f, "
                "\"tiered_s\": %.4f,\n",
                fx.seconds, ad.seconds, tr.seconds);
    std::printf("  \"speedup_vs_fixed\": %.2f, \"speedup_vs_adaptive\": "
                "%.2f,\n",
                speedup_fixed, speedup_adaptive);
    std::printf("  \"screened_fraction\": %.4f, \"ep_retired\": %lld,\n",
                screened, static_cast<long long>(tr.ep_retired));
    std::printf("  \"samples_fixed\": %lld, \"samples_adaptive\": %lld, "
                "\"samples_tiered\": %lld,\n",
                static_cast<long long>(fx.samples),
                static_cast<long long>(ad.samples),
                static_cast<long long>(tr.samples));
    std::printf("  \"regions_match_adaptive\": %s, \"regions_match_tiered\": "
                "%s,\n",
                match_ad ? "true" : "false", match_tr ? "true" : "false");
    std::printf("  \"vecchia\": {\"n\": %lld, \"m\": %lld, \"queries\": %zu, "
                "\"total_s\": %.3f, \"factor_s\": %.3f, "
                "\"screened_fraction\": %.4f, \"qmc_samples\": %lld}\n",
                static_cast<long long>(vn),
                static_cast<long long>(vopts.vecchia_m), vqueries.size(),
                vtotal, vfactor_s, vscreened,
                static_cast<long long>(vr.samples));
    std::printf("}\n");
    return 0;
  }

  std::printf("# n=%lld queries=%lld workers=%d samples/query cap=%lld\n",
              static_cast<long long>(n), static_cast<long long>(kq),
              rt.num_threads(),
              static_cast<long long>(fixed.pmvn.total_samples()));
  std::printf("arm,seconds,qmc_samples,ep_retired,regions_match\n");
  std::printf("qmc_fixed,%.4f,%lld,0,1\n", fx.seconds,
              static_cast<long long>(fx.samples));
  std::printf("qmc_adaptive,%.4f,%lld,%lld,%d\n", ad.seconds,
              static_cast<long long>(ad.samples),
              static_cast<long long>(ad.ep_retired), match_ad ? 1 : 0);
  std::printf("tiered,%.4f,%lld,%lld,%d\n", tr.seconds,
              static_cast<long long>(tr.samples),
              static_cast<long long>(tr.ep_retired), match_tr ? 1 : 0);
  std::printf(
      "# acceptance: tiered %.2fx vs fixed QMC (target >= 5x), %.2fx vs "
      "adaptive; screened %.0f%% of queries; regions %s\n",
      speedup_fixed, speedup_adaptive, screened * 100.0,
      match_tr && match_ad ? "all match" : "MISMATCH");
  std::printf(
      "vecchia,n=%lld,m=%lld,total_s=%.3f,factor_s=%.3f,screened=%.0f%%,"
      "qmc_samples=%lld\n",
      static_cast<long long>(vn), static_cast<long long>(vopts.vecchia_m),
      vtotal, vfactor_s, vscreened * 100.0,
      static_cast<long long>(vr.samples));
  return 0;
}
