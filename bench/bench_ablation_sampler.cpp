// Ablation A2: sampler choice. The paper's Algorithm 2 fills R with i.i.d.
// U(0,1); Genz recommends Richtmyer lattice rules. This bench measures the
// actual convergence of all three samplers on a problem with a known
// answer (exchangeable rho=1/2 orthant: P = 1/(n+1)).
//
// Expectation: Richtmyer converges ~N^-1 vs MC's N^-1/2; scrambled Halton
// degrades in high dimension (bad high-dim projections).
#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

#include "bench_common.hpp"
#include "core/sov.hpp"
#include "linalg/matrix.hpp"
#include "stats/qmc.hpp"

int main(int argc, char** argv) {
  using namespace parmvn;
  const bench::Args args = bench::Args::parse(argc, argv);
  bench::header("Ablation A2", "MC vs Richtmyer vs Halton convergence", args);

  const i64 n = args.quick ? 16 : 64;
  const double truth = 1.0 / static_cast<double>(n + 1);
  la::Matrix sigma(n, n);
  for (i64 j = 0; j < n; ++j)
    for (i64 i = 0; i < n; ++i) sigma(i, j) = (i == j) ? 1.0 : 0.5;
  const std::vector<double> a(static_cast<std::size_t>(n), 0.0);
  const std::vector<double> b(static_cast<std::size_t>(n),
                              std::numeric_limits<double>::infinity());

  std::printf("n=%lld truth=%.6e\n", static_cast<long long>(n), truth);
  std::printf("sampler,samples,rel_error,reported_3sigma\n");
  const std::vector<i64> budgets =
      args.full ? std::vector<i64>{512, 2048, 8192, 32768, 131072}
                : std::vector<i64>{512, 2048, 8192, 32768};
  for (const auto kind :
       {stats::SamplerKind::kPseudoMC, stats::SamplerKind::kRichtmyer,
        stats::SamplerKind::kHalton}) {
    for (const i64 total : budgets) {
      core::SovOptions opts;
      opts.sampler = kind;
      opts.shifts = 8;
      opts.samples_per_shift = total / 8;
      opts.seed = 1234;
      const core::SovResult r = core::mvn_probability(sigma.view(), a, b, opts);
      std::printf("%s,%lld,%.3e,%.3e\n", stats::to_string(kind),
                  static_cast<long long>(total),
                  std::fabs(r.prob - truth) / truth, r.error3sigma / truth);
      std::fflush(stdout);
    }
  }
  bench::row_comment(
      "expect richtmyer ~1 order of magnitude below mc at the largest "
      "budget; this is why the library defaults to Richtmyer even though "
      "the paper's listing uses plain U(0,1)");
  return 0;
}
