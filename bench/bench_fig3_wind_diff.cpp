// Reproduces Fig. 3: difference between dense and TLR confidence functions
// for the wind dataset, across probability levels.
//
// Paper expectation: the discrepancy is of order 1e-4 across all levels
// (TLR accuracy 1e-4, max rank 145).
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "common/env.hpp"
#include "core/excursion.hpp"
#include "geo/covgen.hpp"
#include "geo/wind.hpp"
#include "runtime/runtime.hpp"
#include "stats/covariance.hpp"

int main(int argc, char** argv) {
  using namespace parmvn;
  const bench::Args args = bench::Args::parse(argc, argv);
  bench::header("Fig. 3", "dense vs TLR confidence difference (wind)", args);

  geo::WindOptions wopts;
  wopts.grid_nx = args.full ? 80 : (args.quick ? 16 : 36);
  wopts.grid_ny = args.full ? 60 : (args.quick ? 12 : 27);
  const geo::WindDataset data = geo::simulate_wind(wopts);
  const i64 n = static_cast<i64>(data.locations.size());
  const geo::LocationSet unit = geo::regular_grid(wopts.grid_nx, wopts.grid_ny);

  // Use the paper's fitted parameters directly (the MLE is exercised in
  // bench_fig2); range is expressed in unit-square coordinates.
  auto kernel = std::make_shared<stats::MaternKernel>(1.0, 0.05, 1.43391);
  const geo::KernelCovGenerator cov(unit, kernel, 1e-6);
  std::vector<double> mean_shift(static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i) {
    const double u_std =
        (4.0 - data.moments.mean[static_cast<std::size_t>(i)]) /
        data.moments.sd[static_cast<std::size_t>(i)];
    mean_shift[static_cast<std::size_t>(i)] =
        data.target_standardized[static_cast<std::size_t>(i)] - u_std;
  }

  rt::Runtime rt(args.threads > 0 ? static_cast<int>(args.threads)
                                  : default_num_threads());
  core::CrdOptions opts;
  opts.threshold = 0.0;
  opts.alpha = 0.05;
  opts.tile = args.full ? 320 : 135;
  opts.pmvn.samples_per_shift = 1500;
  opts.pmvn.shifts = 10;
  opts.pmvn.sampler = stats::SamplerKind::kRichtmyer;
  const core::CrdResult dense =
      core::detect_confidence_region(rt, cov, mean_shift, opts);
  core::CrdOptions topts = opts;
  topts.mode = core::CrdMode::kTlr;
  topts.tile = args.full ? 980 : 270;
  topts.tlr_tol = 1e-4;
  topts.tlr_max_rank = 145;
  const core::CrdResult tlr =
      core::detect_confidence_region(rt, cov, mean_shift, topts);

  // Bin the per-location confidence differences by dense confidence level,
  // mirroring the figure's x-axis (probability level).
  std::printf("level_bin,mean_diff,max_abs_diff,count\n");
  for (int bin = 0; bin < 10; ++bin) {
    const double lo = bin / 10.0;
    const double hi = lo + 0.1;
    double sum = 0.0, max_abs = 0.0;
    i64 count = 0;
    for (i64 i = 0; i < n; ++i) {
      const double c = dense.confidence[static_cast<std::size_t>(i)];
      if (c < lo || c >= hi) continue;
      const double d = tlr.confidence[static_cast<std::size_t>(i)] - c;
      sum += d;
      max_abs = std::max(max_abs, std::fabs(d));
      ++count;
    }
    std::printf("[%.1f,%.1f),%.3e,%.3e,%lld\n", lo, hi,
                count > 0 ? sum / static_cast<double>(count) : 0.0, max_abs,
                static_cast<long long>(count));
  }
  double global_max = 0.0;
  for (i64 i = 0; i < n; ++i)
    global_max = std::max(global_max,
                          std::fabs(dense.confidence[static_cast<std::size_t>(i)] -
                                    tlr.confidence[static_cast<std::size_t>(i)]));
  std::printf("global_max_abs_diff,%.3e\n", global_max);
  bench::row_comment("paper: differences on the order of 1e-4 at all levels");
  return 0;
}
