// Reproduces Fig. 5: rank distributions of a 19600 x 19600 covariance
// matrix (tile size 980, accuracy 1e-3) for the weak / medium / strong
// correlation settings. Runs at the paper's true scale by default — ACA
// compression makes this cheap.
//
// Paper expectation: weak correlation keeps the highest ranks near the
// diagonal (tiles in the tens, e.g. 47/66), strong correlation degrades
// ranks hardest (near-diagonal 8-16), and ranks decay with distance from
// the diagonal for every setting.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "common/env.hpp"
#include "geo/covgen.hpp"
#include "geo/geometry.hpp"
#include "runtime/runtime.hpp"
#include "stats/covariance.hpp"
#include "tlr/tlr_matrix.hpp"

int main(int argc, char** argv) {
  using namespace parmvn;
  const bench::Args args = bench::Args::parse(argc, argv);
  bench::header("Fig. 5", "tile rank distributions at accuracy 1e-3", args);

  const i64 side = args.quick ? 70 : 140;  // 140x140 = 19600 (paper scale)
  const i64 tile = args.quick ? 490 : 980;
  struct Setting {
    const char* name;
    double range;
  };
  const Setting settings[] = {{"weak (1, 0.033, 0.5)", 0.033},
                              {"medium (1, 0.1, 0.5)", 0.1},
                              {"strong (1, 0.234, 0.5)", 0.234}};

  for (const Setting& s : settings) {
    geo::LocationSet locs = geo::regular_grid(side, side);
    locs = geo::apply_permutation(locs, geo::morton_order(locs));
    auto kernel = std::make_shared<stats::MaternKernel>(1.0, s.range, 0.5);
    const geo::KernelCovGenerator gen(locs, kernel, 0.0);
    rt::Runtime rt(args.threads > 0 ? static_cast<int>(args.threads)
                                    : default_num_threads());
    const tlr::TlrMatrix m = tlr::TlrMatrix::compress(
        rt, gen, tile, 1e-3, -1, tlr::CompressionMethod::kAca);

    std::printf("\n## %s  (n=%lld, tile=%lld)\n", s.name,
                static_cast<long long>(m.dim()),
                static_cast<long long>(tile));
    const auto grid = m.rank_grid();
    for (std::size_t i = 0; i < grid.size(); ++i) {
      std::printf("  ");
      for (std::size_t j = 0; j < grid[i].size(); ++j)
        std::printf("%4lld", static_cast<long long>(grid[i][j]));
      std::printf("\n");
    }
    // Bucket histogram like the figure's legend.
    i64 buckets[6] = {0, 0, 0, 0, 0, 0};  // [1,5][6,10][11,20][21,50][51,100][101+]
    for (std::size_t i = 1; i < grid.size(); ++i)
      for (std::size_t j = 0; j < i; ++j) {
        const i64 r = grid[i][j];
        if (r <= 5) ++buckets[0];
        else if (r <= 10) ++buckets[1];
        else if (r <= 20) ++buckets[2];
        else if (r <= 50) ++buckets[3];
        else if (r <= 100) ++buckets[4];
        else ++buckets[5];
      }
    std::printf(
        "buckets [1,5]=%lld [6,10]=%lld [11,20]=%lld [21,50]=%lld "
        "[51,100]=%lld [101+]=%lld  mean=%.1f max=%lld\n",
        static_cast<long long>(buckets[0]), static_cast<long long>(buckets[1]),
        static_cast<long long>(buckets[2]), static_cast<long long>(buckets[3]),
        static_cast<long long>(buckets[4]), static_cast<long long>(buckets[5]),
        m.mean_offdiag_rank(), static_cast<long long>(m.max_tile_rank()));
  }
  bench::row_comment(
      "paper: weak correlation shows the largest near-diagonal ranks; "
      "strong correlation degrades ranks most, speeding up TLR execution");
  return 0;
}
