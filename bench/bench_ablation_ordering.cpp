// Ablation A4: Genz variable-reordering heuristic. Reordering variables so
// the tightest constraints integrate first reduces the variance of the SOV
// estimator; the confidence-region algorithm's opM ordering (by marginal
// probability) has the same flavour. Measures estimator spread across seeds
// with and without reordering on an inhomogeneous box problem.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/sov.hpp"
#include "linalg/matrix.hpp"
#include "stats/rng.hpp"

int main(int argc, char** argv) {
  using namespace parmvn;
  const bench::Args args = bench::Args::parse(argc, argv);
  bench::header("Ablation A4", "Genz variable reordering effect", args);

  const i64 n = args.quick ? 16 : 48;
  // AR(1)-style covariance with strongly varying limit widths: the worst
  // case for a fixed ordering.
  la::Matrix sigma(n, n);
  for (i64 j = 0; j < n; ++j)
    for (i64 i = 0; i < n; ++i)
      sigma(i, j) = std::pow(0.7, std::abs(static_cast<double>(i - j)));
  std::vector<double> a(static_cast<std::size_t>(n)), b(static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i) {
    // Alternate tight and loose constraints.
    const bool tight = (i % 3 == 0);
    a[static_cast<std::size_t>(i)] = tight ? 1.0 : -2.0;
    b[static_cast<std::size_t>(i)] = tight ? 1.5 : 2.5;
  }

  const int trials = args.quick ? 8 : 24;
  const i64 samples = 2000;
  auto spread = [&](bool reorder) {
    std::vector<double> estimates;
    for (int trial = 0; trial < trials; ++trial) {
      core::SovOptions opts;
      opts.samples_per_shift = samples / 10;
      opts.shifts = 10;
      opts.seed = 9000 + static_cast<u64>(trial);
      double prob;
      if (reorder) {
        la::Matrix s2 = la::to_matrix(sigma.view());
        std::vector<double> a2 = a, b2 = b;
        (void)core::genz_reorder(s2.view(), a2, b2);
        prob = core::mvn_probability_chol(s2.view(), a2, b2, opts).prob;
      } else {
        prob = core::mvn_probability(sigma.view(), a, b, opts).prob;
      }
      estimates.push_back(prob);
    }
    double mean = 0.0;
    for (double e : estimates) mean += e;
    mean /= estimates.size();
    double var = 0.0;
    for (double e : estimates) var += (e - mean) * (e - mean);
    var /= (estimates.size() - 1);
    return std::pair<double, double>{mean, std::sqrt(var)};
  };

  const auto [mean_plain, sd_plain] = spread(false);
  const auto [mean_reord, sd_reord] = spread(true);
  std::printf("ordering,mean,sd_across_seeds,relative_sd\n");
  std::printf("original,%.6e,%.2e,%.3f%%\n", mean_plain, sd_plain,
              100.0 * sd_plain / mean_plain);
  std::printf("genz_reordered,%.6e,%.2e,%.3f%%\n", mean_reord, sd_reord,
              100.0 * sd_reord / mean_reord);
  std::printf("variance_reduction,%.2fx\n",
              (sd_plain * sd_plain) / (sd_reord * sd_reord));
  bench::row_comment(
      "expect the reordered estimator to show a materially smaller spread "
      "at equal sample budget (Genz & Bretz 2009, Sec. 4.1.3)");
  return 0;
}
