// Tests for the RNG layer: determinism, splitting, statistical sanity of the
// sequential and counter-based generators.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/rng.hpp"

namespace {

using namespace parmvn;
using stats::counter_normal;
using stats::counter_u01;
using stats::mix64;
using stats::splitmix64;
using stats::Xoshiro256pp;

TEST(SplitMix, DeterministicAndAdvancesState) {
  u64 s1 = 12345;
  u64 s2 = 12345;
  const u64 first = splitmix64(s1);
  EXPECT_EQ(first, splitmix64(s2));
  EXPECT_EQ(s1, s2);
  EXPECT_NE(s1, 12345u) << "state must advance";
  EXPECT_NE(splitmix64(s1), first) << "successive draws differ";
  u64 s3 = 12346;
  u64 a = 12345;
  EXPECT_NE(splitmix64(s3), splitmix64(a));
}

TEST(Mix64, BijectiveLooking) {
  // Distinct inputs map to distinct outputs on a sample.
  std::vector<u64> outs;
  for (u64 i = 0; i < 1000; ++i) outs.push_back(mix64(i));
  std::sort(outs.begin(), outs.end());
  EXPECT_EQ(std::adjacent_find(outs.begin(), outs.end()), outs.end());
}

TEST(Xoshiro, Reproducible) {
  Xoshiro256pp a(42);
  Xoshiro256pp b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  Xoshiro256pp c(43);
  Xoshiro256pp d(42);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (c.next() != d.next());
  EXPECT_TRUE(any_diff);
}

TEST(Xoshiro, U01MomentsAndRange) {
  Xoshiro256pp g(7);
  const int n = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = g.next_u01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
    sumsq += u * u;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.003);
}

TEST(Xoshiro, NormalMoments) {
  Xoshiro256pp g(11);
  const int n = 200000;
  double sum = 0.0, sumsq = 0.0, sumcube = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = g.next_normal();
    sum += z;
    sumsq += z * z;
    sumcube += z * z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
  EXPECT_NEAR(sumcube / n, 0.0, 0.1);
}

TEST(Xoshiro, SplitStreamsDecorrelated) {
  Xoshiro256pp parent(5);
  Xoshiro256pp child = parent.split();
  const int n = 50000;
  double corr = 0.0;
  for (int i = 0; i < n; ++i) {
    corr += (parent.next_u01() - 0.5) * (child.next_u01() - 0.5);
  }
  corr /= n * (1.0 / 12.0);
  EXPECT_LT(std::fabs(corr), 0.03);
}

TEST(CounterU01, PureFunctionOfInputs) {
  EXPECT_EQ(counter_u01(1, 2, 3), counter_u01(1, 2, 3));
  EXPECT_NE(counter_u01(1, 2, 3), counter_u01(1, 2, 4));
  EXPECT_NE(counter_u01(1, 2, 3), counter_u01(1, 3, 3));
  EXPECT_NE(counter_u01(1, 2, 3), counter_u01(2, 2, 3));
}

TEST(CounterU01, MomentsOverGrid) {
  double sum = 0.0, sumsq = 0.0;
  const i64 rows = 500, cols = 400;
  for (i64 i = 0; i < rows; ++i)
    for (i64 j = 0; j < cols; ++j) {
      const double u = counter_u01(99, i, j);
      sum += u;
      sumsq += u * u;
    }
  const double n = static_cast<double>(rows * cols);
  EXPECT_NEAR(sum / n, 0.5, 0.005);
  EXPECT_NEAR(sumsq / n - 0.25, 1.0 / 12.0, 0.003);
}

TEST(CounterU01, NeighborDecorrelation) {
  // Adjacent cells in both indices should be uncorrelated.
  double cr = 0.0, cc = 0.0;
  const i64 n = 100000;
  for (i64 k = 0; k < n; ++k) {
    const double u = counter_u01(3, k, 17);
    cr += (u - 0.5) * (counter_u01(3, k + 1, 17) - 0.5);
    cc += (u - 0.5) * (counter_u01(3, k, 18) - 0.5);
  }
  EXPECT_LT(std::fabs(cr / (n / 12.0)), 0.03);
  EXPECT_LT(std::fabs(cc / (n / 12.0)), 0.03);
}

TEST(CounterNormal, MomentsOverGrid) {
  double sum = 0.0, sumsq = 0.0;
  const i64 n = 200000;
  for (i64 i = 0; i < n; ++i) {
    const double z = counter_normal(123, i, 0);
    sum += z;
    sumsq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

}  // namespace
