// Error-budget-adaptive evaluation: the engine sweeps shift blocks round by
// round and retires queries as their 3-sigma estimate fits the budget (or
// cleanly clears a decision threshold). These tests pin the contracts the
// adaptive path adds on top of the fixed-budget engine:
//
//  * adaptive determinism: the stop schedule is computed on the host thread
//    from deterministic block sums, so adaptive results — including
//    samples_used — are bitwise identical across worker counts AND across
//    both scheduler arms (work-steal and global-queue);
//  * budget honesty: a converged adaptive estimate agrees with the
//    full-budget reference within the combined error bars, never spends
//    more than the fixed budget, and reports error3sigma <= abs_tol;
//  * decision-aware early stop never flips a confidence-region side versus
//    the full-budget sweep;
//  * a single shift block reports *infinite* error, not the old silent 0.0;
//  * evicted factors return their runtime handle slots (HandleLease), so a
//    factor->evict serving loop keeps the handle table bounded.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <vector>

#include "common/contracts.hpp"
#include "core/excursion.hpp"
#include "core/mvt.hpp"
#include "core/pmvn.hpp"
#include "core/sov.hpp"
#include "engine/cholesky_factor.hpp"
#include "engine/factor_cache.hpp"
#include "engine/pmvn_engine.hpp"
#include "geo/covgen.hpp"
#include "geo/geometry.hpp"
#include "linalg/matrix.hpp"
#include "linalg/potrf.hpp"
#include "runtime/runtime.hpp"
#include "stats/covariance.hpp"

namespace {

using namespace parmvn;

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr int kWorkerMatrix[] = {1, 2, 8};
constexpr rt::SchedulerKind kArms[] = {rt::SchedulerKind::kWorkSteal,
                                       rt::SchedulerKind::kGlobalQueue};

struct Problem {
  geo::LocationSet locs;
  std::shared_ptr<stats::ExponentialKernel> kernel;
  std::vector<double> a, b;

  explicit Problem(i64 side)
      : locs(geo::apply_permutation(
            geo::regular_grid(side, side),
            geo::morton_order(geo::regular_grid(side, side)))),
        kernel(std::make_shared<stats::ExponentialKernel>(1.0, 0.2)),
        a(static_cast<std::size_t>(side * side), -0.6),
        b(static_cast<std::size_t>(side * side), kInf) {}
};

engine::EngineOptions adaptive_opts(bool antithetic) {
  engine::EngineOptions opts;
  opts.samples_per_shift = 200;
  opts.shifts = 8;
  opts.sampler = stats::SamplerKind::kRichtmyer;
  opts.adaptive = true;
  opts.abs_tol = 5e-3;
  opts.min_shifts = 2;
  opts.antithetic = antithetic;
  return opts;
}

std::shared_ptr<const engine::CholeskyFactor> dense_factor(
    rt::Runtime& rt, const geo::KernelCovGenerator& gen) {
  const i64 n = gen.rows();
  std::vector<i64> identity(static_cast<std::size_t>(n));
  std::iota(identity.begin(), identity.end(), i64{0});
  const engine::FactorSpec spec{engine::FactorKind::kDense, 25, 0.0, -1};
  return std::make_shared<const engine::CholeskyFactor>(
      engine::CholeskyFactor::factor_ordered(rt, gen, identity, spec));
}

// Adaptive batch against a dense factor: three queries with distinct limits,
// one carrying a decision threshold, one a prefix sweep. Every per-query
// number (probability, error, samples_used, shifts_used, converged flag,
// prefix sweep) goes into the flattened comparison vector.
std::vector<double> run_adaptive(int workers, rt::SchedulerKind sched,
                                 const Problem& pb, bool antithetic) {
  const geo::KernelCovGenerator gen(pb.locs, pb.kernel, 1e-6);
  rt::Runtime rt(workers, /*enable_trace=*/false, sched);
  const i64 n = gen.rows();
  const engine::PmvnEngine eng(rt, dense_factor(rt, gen),
                               adaptive_opts(antithetic));

  const std::vector<double> lo1(static_cast<std::size_t>(n), -0.6);
  const std::vector<double> lo2(static_cast<std::size_t>(n), -0.1);
  const std::vector<double> lo3(static_cast<std::size_t>(n), 0.4);
  const std::vector<double> hi(static_cast<std::size_t>(n), kInf);
  std::vector<engine::LimitSet> batch;
  batch.push_back({lo1, hi, 20240517, /*prefix=*/true});
  batch.push_back({lo2, hi, 20240517, /*prefix=*/false, /*decision=*/0.5});
  batch.push_back({lo3, hi, 777, /*prefix=*/false});
  const std::vector<engine::QueryResult> results = eng.evaluate(batch);

  std::vector<double> flat;
  for (const engine::QueryResult& r : results) {
    flat.push_back(r.prob);
    flat.push_back(r.error3sigma);
    flat.push_back(static_cast<double>(r.samples_used));
    flat.push_back(static_cast<double>(r.shifts_used));
    flat.push_back(r.converged ? 1.0 : 0.0);
    flat.insert(flat.end(), r.prefix_prob.begin(), r.prefix_prob.end());
  }
  return flat;
}

TEST(Adaptive, BitwiseIdenticalAcrossWorkersAndSchedulerArms) {
  const Problem pb(10);
  for (const bool antithetic : {false, true}) {
    const std::vector<double> reference =
        run_adaptive(1, rt::SchedulerKind::kWorkSteal, pb, antithetic);
    for (const rt::SchedulerKind sched : kArms) {
      for (const int workers : kWorkerMatrix) {
        const std::vector<double> got =
            run_adaptive(workers, sched, pb, antithetic);
        ASSERT_EQ(got.size(), reference.size());
        for (std::size_t i = 0; i < reference.size(); ++i)
          EXPECT_DOUBLE_EQ(got[i], reference[i])
              << "adaptive drifted, workers=" << workers
              << " arm=" << static_cast<int>(sched) << " value=" << i
              << " antithetic=" << antithetic;
      }
    }
  }
}

TEST(Adaptive, ConvergedEstimateAgreesWithFixedBudgetReference) {
  const Problem pb(10);
  const geo::KernelCovGenerator gen(pb.locs, pb.kernel, 1e-6);
  rt::Runtime rt(4);
  const auto factor = dense_factor(rt, gen);

  engine::EngineOptions fixed = adaptive_opts(false);
  fixed.adaptive = false;
  fixed.abs_tol = 0.0;
  const engine::PmvnEngine ref_eng(rt, factor, fixed);
  const engine::PmvnEngine ada_eng(rt, factor, adaptive_opts(false));

  const engine::LimitSet q{pb.a, pb.b, 20240517, false};
  const engine::QueryResult ref = ref_eng.evaluate_one(q);
  const engine::QueryResult ada = ada_eng.evaluate_one(q);

  // Fixed path fills the accounting fields with the whole budget.
  EXPECT_EQ(ref.samples_used, fixed.total_samples());
  EXPECT_EQ(ref.shifts_used, fixed.shifts);
  EXPECT_FALSE(ref.converged);

  // Adaptive never exceeds the cap; if it stopped early it must both claim
  // convergence and back it with an in-budget error bar.
  EXPECT_LE(ada.samples_used, fixed.total_samples());
  EXPECT_GE(ada.shifts_used, 2);
  if (ada.converged) EXPECT_LE(ada.error3sigma, 5e-3);
  EXPECT_NEAR(ada.prob, ref.prob, ada.error3sigma + ref.error3sigma);

  // Exhausting the cap reproduces the fixed-budget estimate bitwise: the
  // same shift blocks, accumulated in the same order.
  engine::EngineOptions strict = adaptive_opts(false);
  strict.abs_tol = 1e-300;
  const engine::PmvnEngine strict_eng(rt, factor, strict);
  const engine::QueryResult capped = strict_eng.evaluate_one(q);
  EXPECT_EQ(capped.samples_used, fixed.total_samples());
  EXPECT_FALSE(capped.converged);
  EXPECT_DOUBLE_EQ(capped.prob, ref.prob);
  EXPECT_DOUBLE_EQ(capped.error3sigma, ref.error3sigma);
}

TEST(Adaptive, CommonRandomNumbersShareOneStream) {
  // With CRN on, per-query seeds are ignored in favour of the batch-wide
  // stream: identical limit sets must produce identical estimates no matter
  // their seeds — the property that makes bisection iterates comparable.
  const Problem pb(8);
  const geo::KernelCovGenerator gen(pb.locs, pb.kernel, 1e-6);
  rt::Runtime rt(2);
  engine::EngineOptions opts = adaptive_opts(false);
  opts.crn = true;
  opts.crn_seed = 99;
  const engine::PmvnEngine eng(rt, dense_factor(rt, gen), opts);

  std::vector<engine::LimitSet> batch;
  batch.push_back({pb.a, pb.b, 1, false});
  batch.push_back({pb.a, pb.b, 2, false});
  const std::vector<engine::QueryResult> results = eng.evaluate(batch);
  EXPECT_DOUBLE_EQ(results[0].prob, results[1].prob);
  EXPECT_DOUBLE_EQ(results[0].error3sigma, results[1].error3sigma);
  EXPECT_EQ(results[0].samples_used, results[1].samples_used);
}

// Confidence-region detection with decision-aware early stop: the adaptive
// sweep may retire prefixes early only when their interval cleanly clears
// the 1-alpha level, so the detected region must match the full-budget
// sweep exactly on every location.
TEST(Adaptive, DecisionStopNeverFlipsRegionSide) {
  const i64 side = 8;
  const Problem pb(side);
  const geo::KernelCovGenerator gen(pb.locs, pb.kernel, 1e-6);

  // Smooth bump mean over the unit square: a real excursion geometry with
  // locations on both sides of the threshold and a genuine boundary.
  std::vector<double> mean(pb.locs.size());
  for (std::size_t i = 0; i < pb.locs.size(); ++i) {
    const double dx = pb.locs[i].x - 0.5;
    const double dy = pb.locs[i].y - 0.5;
    mean[i] = 1.6 * std::exp(-(dx * dx + dy * dy) / 0.08);
  }

  core::CrdOptions opts;
  opts.threshold = 0.8;
  opts.alpha = 0.1;
  opts.tile = 16;
  opts.pmvn.samples_per_shift = 200;
  opts.pmvn.shifts = 8;
  opts.pmvn.sampler = stats::SamplerKind::kRichtmyer;
  opts.pmvn.seed = 20240517;

  const std::vector<core::CrdQuery> queries = {
      {0.6, 0.1, core::CrdDirection::kAbove, {}},
      {0.8, 0.1, core::CrdDirection::kAbove, {}},
      {1.1, 0.1, core::CrdDirection::kAbove, {}},
  };

  rt::Runtime rt(4);
  const std::vector<core::CrdResult> fixed =
      core::detect_confidence_regions(rt, gen, mean, opts, queries);

  core::CrdOptions ada = opts;
  ada.pmvn.adaptive = true;
  ada.pmvn.abs_tol = 1e-3;  // decision stop + a tight fallback budget
  const std::vector<core::CrdResult> adaptive =
      core::detect_confidence_regions(rt, gen, mean, ada, queries);

  ASSERT_EQ(adaptive.size(), fixed.size());
  for (std::size_t qi = 0; qi < fixed.size(); ++qi) {
    ASSERT_EQ(adaptive[qi].region.size(), fixed[qi].region.size());
    EXPECT_EQ(adaptive[qi].region_size, fixed[qi].region_size)
        << "query=" << qi;
    for (std::size_t i = 0; i < fixed[qi].region.size(); ++i)
      EXPECT_EQ(adaptive[qi].region[i], fixed[qi].region[i])
          << "query=" << qi << " location=" << i;
  }
}

TEST(Adaptive, StudentTDecisionStopRidesTheSharedBlockLoop) {
  // The decision-aware early stop lives in sov_block_estimate, the round
  // loop shared by the sequential MVN and MVT estimators — so wiring a
  // decision through SovOptions must adapt the Student-t budget too.
  const Problem pb(8);
  const geo::KernelCovGenerator gen(pb.locs, pb.kernel, 1e-6);
  const la::Matrix sigma = geo::dense_from_generator(gen);
  la::Matrix l = sigma;
  la::potrf_lower_or_throw(l.view());
  const double nu = 7.0;

  core::SovOptions fixed;
  fixed.samples_per_shift = 250;
  fixed.shifts = 16;
  const core::SovResult ref =
      core::mvt_probability_chol(l.view(), nu, pb.a, pb.b, fixed);
  EXPECT_EQ(ref.shifts_used, fixed.shifts);
  EXPECT_TRUE(ref.converged);  // the fixed sweep *is* its own contract

  // A decision far from the estimate: the running interval clears it after
  // min_shifts and the sweep retires most of the budget.
  core::SovOptions decided = fixed;
  decided.decision = ref.prob < 0.5 ? 0.9 : 1e-3;
  const core::SovResult early =
      core::mvt_probability_chol(l.view(), nu, pb.a, pb.b, decided);
  EXPECT_TRUE(early.converged);
  EXPECT_LT(early.shifts_used, fixed.shifts);
  EXPECT_GE(early.shifts_used, decided.min_shifts);
  EXPECT_EQ(early.samples_used,
            static_cast<i64>(early.shifts_used) * decided.samples_per_shift);
  // Same side of the threshold as the full-budget reference (no flip).
  EXPECT_EQ(early.prob > decided.decision, ref.prob > decided.decision);
  EXPECT_NEAR(early.prob, ref.prob, early.error3sigma + ref.error3sigma);

  // A decision pinned on top of the estimate can never be cleared: the
  // sweep runs to the cap and reports the failure to converge — and the
  // exhausted-cap estimate is the fixed-budget one, bitwise.
  core::SovOptions pinned = fixed;
  pinned.decision = ref.prob;
  const core::SovResult capped =
      core::mvt_probability_chol(l.view(), nu, pb.a, pb.b, pinned);
  EXPECT_FALSE(capped.converged);
  EXPECT_EQ(capped.shifts_used, fixed.shifts);
  EXPECT_DOUBLE_EQ(capped.prob, ref.prob);
  EXPECT_DOUBLE_EQ(capped.error3sigma, ref.error3sigma);

  // decision == NaN and abs_tol == 0 stays the classic fixed path: the
  // whole budget in one sweep, bitwise unchanged (checked against ref
  // above by construction — fixed *is* that path).
  const core::SovResult again =
      core::mvt_probability_chol(l.view(), nu, pb.a, pb.b, fixed);
  EXPECT_DOUBLE_EQ(again.prob, ref.prob);
  EXPECT_DOUBLE_EQ(again.error3sigma, ref.error3sigma);
}

TEST(Adaptive, SingleShiftBlockReportsInfiniteError) {
  // Regression for the silent zero error estimate: shifts == 1 has no
  // between-block spread to estimate from, and must say so loudly.
  const Problem pb(6);
  const geo::KernelCovGenerator gen(pb.locs, pb.kernel, 1e-6);
  const la::Matrix sigma = geo::dense_from_generator(gen);

  core::SovOptions sov;
  sov.samples_per_shift = 100;
  sov.shifts = 1;
  const core::SovResult res = core::mvn_probability(sigma.view(), pb.a, pb.b,
                                                    sov);
  EXPECT_TRUE(std::isinf(res.error3sigma));
  EXPECT_GT(res.prob, 0.0);

  rt::Runtime rt(2);
  engine::EngineOptions eo;
  eo.samples_per_shift = 100;
  eo.shifts = 1;
  const engine::PmvnEngine eng(rt, dense_factor(rt, gen), eo);
  const engine::QueryResult qr = eng.evaluate_one({pb.a, pb.b, 42, false});
  EXPECT_TRUE(std::isinf(qr.error3sigma));

  // And the adaptive path refuses outright: its estimate gates decisions.
  engine::EngineOptions bad = eo;
  bad.adaptive = true;
  EXPECT_THROW(engine::PmvnEngine(rt, dense_factor(rt, gen), bad),
               parmvn::Error);
}

TEST(HandleLease, FactorEvictLoopKeepsHandleTableBounded) {
  // Serving regression for the factor handle-slot leak: factor under
  // distinct orderings through a small cache so older entries evict; every
  // evicted factor must return its runtime handle slots, or the handle
  // table grows with eviction volume.
  const Problem pb(5);
  const geo::KernelCovGenerator gen(pb.locs, pb.kernel, 1e-6);
  const i64 n = gen.rows();
  rt::Runtime rt(2);
  engine::FactorCache cache(/*capacity=*/2);
  const engine::FactorSpec spec{engine::FactorKind::kDense, 10, 0.0, -1};

  const rt::DataHandle before = rt.register_data();
  rt.release_data(before);

  for (int it = 0; it < 12; ++it) {
    // Rotate the ordering so each iteration is a distinct cache key.
    std::vector<i64> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), i64{0});
    std::rotate(order.begin(), order.begin() + (it % 6), order.end());
    const auto factor = cache.get_or_factor(rt, gen, std::move(order), spec);
    // Touch the factor so the loop is an honest serving pattern.
    const engine::PmvnEngine eng(rt, factor, engine::EngineOptions{100, 2});
    (void)eng.evaluate_one({pb.a, pb.b, 42, false});
  }
  EXPECT_GT(cache.stats().evictions, 0);

  const rt::DataHandle after = rt.register_data();
  // At most the cache's live factors (plus one sweep's recycled round) may
  // hold slots; without the lease this gap would be ~10 evicted factors'
  // worth of tile handles.
  EXPECT_LE(after.id(), before.id() + 64)
      << "evicted factors must return their handle slots";
  rt.release_data(after);
}

// Satellite of the failure-domain hardening PR: no runtime in this suite
// may have leaked a tile-handle slot through HandleLease::release().
TEST(HandleHygiene, NoHandleLeakedAcrossTheWholeSuite) {
  EXPECT_EQ(rt::Runtime::total_handles_leaked(), 0);
}

}  // namespace
