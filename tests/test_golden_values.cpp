// Golden-value regression tests for the hot scalar kernels: stats::normal
// (Phi, log Phi, Phi^-1) and stats::bessel (K_nu, e^x K_nu).
//
// Reference constants were generated with mpmath 1.3.0 at 40 decimal digits
// (erfc/erfinv/besselk), then rounded to the nearest double. Tolerance is
// 1e-12 *relative*, far looser than the generators' error but tight enough
// that any later SIMD/polynomial rewrite of these kernels cannot silently
// drift: a change >1e-12 in Phi or K_nu is visible in the SOV integrand and
// the Matern covariance entries.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/bessel.hpp"
#include "stats/normal.hpp"

namespace {

using parmvn::stats::bessel_k;
using parmvn::stats::bessel_k_scaled;
using parmvn::stats::norm_cdf;
using parmvn::stats::norm_logcdf;
using parmvn::stats::norm_quantile;

constexpr double kRelTol = 1e-12;

void expect_rel(double got, double want, const char* what, double arg) {
  EXPECT_NEAR(got / want, 1.0, kRelTol) << what << "(" << arg << ")";
}

TEST(GoldenNormal, CdfMatchesMpmathReference) {
  struct Case {
    double x, phi;
  };
  constexpr Case kCases[] = {
      {-8, 6.220960574271784124e-16}, {-5, 2.866515718791939117e-7},
      {-2.5, 0.006209665325776135167}, {-1, 0.1586552539314570514},
      {-0.5, 0.3085375387259868964},  {0.3, 0.6179114221889526373},
      {1, 0.8413447460685429486},     {2, 0.9772498680518207928},
      {4, 0.9999683287581668801},     {6, 0.999999999013412355},
  };
  for (const Case& c : kCases) expect_rel(norm_cdf(c.x), c.phi, "Phi", c.x);
}

TEST(GoldenNormal, LogCdfMatchesMpmathReference) {
  struct Case {
    double x, logphi;
  };
  constexpr Case kCases[] = {
      {-20, -203.9171553710972639}, {-10, -53.23128515051247058},
      {-5, -15.06499839398872574},  {-1, -1.841021645009263506},
      {2, -0.02301290932896348847},
  };
  for (const Case& c : kCases)
    expect_rel(norm_logcdf(c.x), c.logphi, "logPhi", c.x);
}

TEST(GoldenNormal, QuantileMatchesMpmathReference) {
  struct Case {
    double p, q;
  };
  // Each reference is Phi^-1 evaluated (via mpmath erfinv at 40 digits) at
  // the *double-rounded* p literal, not the exact decimal: near p = 1 the
  // derivative 1/phi(q) exceeds 1e8, so the rounding of e.g. 1 - 1e-9 to
  // 0.9999999990000000827... moves the true quantile by ~8e-10 relative —
  // three orders above kRelTol.
  constexpr Case kCases[] = {
      {1e-12, -7.034483825301131933},  {1e-6, -4.753424308822898957},
      {0.001, -3.090232306167813535},  {0.025, -1.959963984540054212},
      {0.31, -0.4958503473474533329},  {0.75, 0.6744897501960817432},
      {0.975, 1.959963984540053856},   {0.9999, 3.719016485455708387},
      {1.0 - 1e-9, 5.997807019601637426},
  };
  for (const Case& c : kCases)
    expect_rel(norm_quantile(c.p), c.q, "Phi^-1", c.p);
  // p = 1/2 is exactly zero by symmetry — absolute, not relative.
  EXPECT_EQ(norm_quantile(0.5), 0.0);
}

TEST(GoldenNormal, QuantileCdfRoundTripAtReferencePoints) {
  for (double x : {-7.0, -3.0, -0.5, 0.25, 2.0, 5.0})
    EXPECT_NEAR(norm_quantile(norm_cdf(x)), x, 1e-10 * (1.0 + std::fabs(x)))
        << "x=" << x;
}

TEST(GoldenNormal, BatchedCdfMatchesMpmathReference) {
  // The batched primitives (native vector lanes or scalar fallback,
  // whichever this build ships) must sit inside the same pinned 1e-12 band
  // as the scalar kernels.
  constexpr double kXs[] = {-8, -5, -2.5, -1, -0.5, 0.3, 1, 2, 4, 6};
  constexpr double kPhi[] = {
      6.220960574271784124e-16, 2.866515718791939117e-7,
      0.006209665325776135167,  0.1586552539314570514,
      0.3085375387259868964,    0.6179114221889526373,
      0.8413447460685429486,    0.9772498680518207928,
      0.9999683287581668801,    0.999999999013412355};
  constexpr int kN = 10;
  double out[kN];
  parmvn::stats::norm_cdf_batch(kN, kXs, out);
  for (int i = 0; i < kN; ++i)
    expect_rel(out[i], kPhi[i], "batched Phi", kXs[i]);
}

TEST(GoldenNormal, BatchedQuantileMatchesMpmathReference) {
  constexpr double kPs[] = {1e-12, 1e-6, 0.001,  0.025,      0.31,
                            0.75,  0.975, 0.9999, 1.0 - 1e-9};
  constexpr double kQs[] = {
      -7.034483825301131933, -4.753424308822898957, -3.090232306167813535,
      -1.959963984540054212, -0.4958503473474533329, 0.6744897501960817432,
      1.959963984540053856,  3.719016485455708387,  5.997807019601637426};
  constexpr int kN = 9;
  double out[kN];
  parmvn::stats::norm_quantile_batch(kN, kPs, out);
  for (int i = 0; i < kN; ++i)
    expect_rel(out[i], kQs[i], "batched Phi^-1", kPs[i]);
}

TEST(GoldenBessel, KnuMatchesMpmathReference) {
  struct Case {
    double nu, x, k, k_scaled;
  };
  constexpr Case kCases[] = {
      {0, 0.1, 2.427069024702016613, 2.682326102262894383},
      {0, 1, 0.4210244382407083333, 1.144463079806895015},
      {0, 2.5, 0.06234755320036618603, 0.7595486903280995787},
      {0, 10, 0.00001778006231616765181, 0.3916319344365986657},
      {0.5, 0.1, 3.586166838797260145, 3.963327297606011013},
      {0.5, 1, 0.4610685044478945584, 1.253314137315500251},
      {0.5, 2.5, 0.06506594315400998893, 0.7926654595212022027},
      {0.5, 10, 0.00001799347809370517961, 0.3963327297606011013},
      {1, 0.1, 9.853844780870606135, 10.89018268304969657},
      {1, 1, 0.6019072301972345747, 1.636153486263258247},
      {1, 2.5, 0.07389081634774706365, 0.9001744239078780891},
      {1, 10, 0.0000186487734538255846, 0.4107665705957887511},
      {1.5, 0.1, 39.44783522676986159, 43.59660027366612115},
      {1.5, 1, 0.9221370088957891169, 2.506628274631000502},
      {1.5, 2.5, 0.0910923204156139845, 1.109731643329683084},
      {1.5, 10, 0.00001979282590307569757, 0.4359660027366612115},
      {2.5, 0.1, 1187.021223641893108, 1311.861335507589645},
      {2.5, 1, 3.227479531135261909, 8.773198961208501758},
      {2.5, 2.5, 0.1743767276527467703, 2.124343431516821903},
      {2.5, 10, 0.00002393132586462788888, 0.5271225305815994648},
      {0.3, 0.1, 2.805056475021572311, 3.100066839753631},
      {0.3, 1, 0.4350760242088020243, 1.182659250604994196},
      {0.3, 2.5, 0.06331387929629555952, 0.7713209521558293366},
      {0.3, 10, 0.00001785660701682302245, 0.3933179436673579064},
  };
  for (const Case& c : kCases) {
    EXPECT_NEAR(bessel_k(c.nu, c.x) / c.k, 1.0, kRelTol)
        << "K_" << c.nu << "(" << c.x << ")";
    EXPECT_NEAR(bessel_k_scaled(c.nu, c.x) / c.k_scaled, 1.0, kRelTol)
        << "e^x K_" << c.nu << "(" << c.x << ")";
  }
}

}  // namespace
