// Tests for the TLR substrate: tile compression (RRQR & ACA), recompression
// algebra, the TLR matrix container, and TLR Cholesky vs the dense oracle.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "geo/covgen.hpp"
#include "geo/geometry.hpp"
#include "linalg/blas.hpp"
#include "linalg/potrf.hpp"
#include "stats/covariance.hpp"
#include "stats/rng.hpp"
#include "tlr/aca.hpp"
#include "tlr/lr_tile.hpp"
#include "tlr/tlr_matrix.hpp"
#include "tlr/tlr_potrf.hpp"

namespace {

using namespace parmvn;
using geo::KernelCovGenerator;
using la::Matrix;
using la::Trans;
using tlr::CompressionMethod;
using tlr::LowRankTile;
using tlr::TlrMatrix;

// Morton-ordered covariance generator over a grid — the canonical TLR input.
std::unique_ptr<KernelCovGenerator> grid_cov(i64 nx, i64 ny, double range,
                                             double nu = 0.5,
                                             double nugget = 1e-6) {
  geo::LocationSet locs = geo::regular_grid(nx, ny);
  const std::vector<i64> perm = geo::morton_order(locs);
  locs = geo::apply_permutation(locs, perm);
  auto kernel = std::make_shared<stats::MaternKernel>(1.0, range, nu);
  return std::make_unique<KernelCovGenerator>(std::move(locs), kernel, nugget);
}

TEST(LowRankTile, CompressErrorScalesWithAccuracy) {
  auto gen = grid_cov(16, 16, 0.2);
  Matrix block(64, 64);
  gen->fill(128, 0, block.view());  // off-diagonal block
  const double scale = la::frobenius_norm(block.view());
  ASSERT_GT(scale, 0.0);
  double prev_err = std::numeric_limits<double>::infinity();
  for (double tol : {1e-1, 1e-3, 1e-6, 1e-9}) {
    const LowRankTile t = tlr::compress_block(block.view(), tol, -1);
    const double err = tlr::lr_error_fro(t, block.view());
    // Dropped components all have sigma < tol * sigma_1 <= tol * ||A||_F;
    // at most min(m,n)=64 of them.
    EXPECT_LE(err, tol * scale * 8.0 * 1.01) << tol;
    EXPECT_LE(err, prev_err * 1.001) << tol;
    prev_err = err;
    EXPECT_LE(t.rank(), 64);
  }
}

TEST(LowRankTile, NearDiagonalRankDecreasesWithCorrelationRange) {
  // Near-diagonal tiles: stronger correlation (larger range) -> smoother
  // kernel -> lower rank — the mechanism behind the paper's Fig. 5, where
  // the weak-correlation dataset shows the highest tile ranks. The paper's
  // ranges {0.033, 0.1, 0.234} live on a 140x140 grid; on this 16x16 test
  // grid the spacing-matched equivalents are scaled by 140/16.
  i64 weak_rank = 0;
  i64 prev_rank = 1000;
  for (double range : {0.29, 0.875, 2.05}) {
    auto gen = grid_cov(16, 16, range);
    Matrix block(64, 64);
    gen->fill(64, 0, block.view());  // adjacent tile pair
    const LowRankTile t = tlr::compress_block(block.view(), 1e-3, -1);
    EXPECT_LE(t.rank(), prev_rank + 1) << "range=" << range;
    prev_rank = t.rank();
    if (weak_rank == 0) weak_rank = t.rank();
  }
  EXPECT_LT(prev_rank, weak_rank)
      << "strong correlation must compress strictly better than weak";
}

TEST(LowRankTile, RankDecaysWithTileSeparation) {
  // The radial pattern of Fig. 5: tiles farther from the diagonal have
  // lower ranks, for every correlation level.
  for (double range : {0.29, 0.875, 2.05}) {
    auto gen = grid_cov(16, 16, range);
    Matrix near(64, 64), far(64, 64);
    gen->fill(64, 0, near.view());
    gen->fill(192, 0, far.view());
    const LowRankTile tn = tlr::compress_block(near.view(), 1e-3, -1);
    const LowRankTile tf = tlr::compress_block(far.view(), 1e-3, -1);
    EXPECT_LE(tf.rank(), tn.rank()) << "range=" << range;
  }
}

TEST(LowRankTile, RecompressShrinksInflatedRank) {
  auto gen = grid_cov(16, 16, 0.2);
  Matrix block(64, 64);
  gen->fill(128, 64, block.view());
  LowRankTile t = tlr::compress_block(block.view(), 1e-12, -1);
  // Artificially inflate: duplicate columns of U/V (rank doubles, content
  // unchanged up to a factor of 2... use zero padding instead).
  LowRankTile fat;
  fat.u = Matrix(64, t.rank() + 7);
  fat.v = Matrix(64, t.rank() + 7);
  la::copy_into(t.u.view(), fat.u.sub(0, 0, 64, t.rank()));
  la::copy_into(t.v.view(), fat.v.sub(0, 0, 64, t.rank()));
  const LowRankTile slim = tlr::recompress(fat, 1e-8, -1);
  EXPECT_LE(slim.rank(), t.rank());
  EXPECT_LE(tlr::lr_error_fro(slim, block.view()), 1e-7);
}

TEST(LowRankTile, AddLowRankMatchesDenseArithmetic) {
  stats::Xoshiro256pp g(3);
  auto rand_mat = [&](i64 m, i64 n) {
    Matrix a(m, n);
    for (i64 j = 0; j < n; ++j)
      for (i64 i = 0; i < m; ++i) a(i, j) = g.next_normal();
    return a;
  };
  const Matrix u1 = rand_mat(40, 3), v1 = rand_mat(30, 3);
  const Matrix u2 = rand_mat(40, 2), v2 = rand_mat(30, 2);
  LowRankTile t{la::to_matrix(u1.view()), la::to_matrix(v1.view())};
  tlr::add_lowrank_inplace(t, -2.5, u2.view(), v2.view(), 1e-12, -1);
  // Dense reference.
  Matrix ref(40, 30);
  la::gemm(Trans::kNo, Trans::kYes, 1.0, u1.view(), v1.view(), 0.0, ref.view());
  la::gemm(Trans::kNo, Trans::kYes, -2.5, u2.view(), v2.view(), 1.0, ref.view());
  EXPECT_LE(tlr::lr_error_fro(t, ref.view()), 1e-10);
  EXPECT_LE(t.rank(), 5);
}

TEST(LowRankTile, LrGemmAccumMatchesDense) {
  stats::Xoshiro256pp g(5);
  auto rand_mat = [&](i64 m, i64 n) {
    Matrix a(m, n);
    for (i64 j = 0; j < n; ++j)
      for (i64 i = 0; i < m; ++i) a(i, j) = g.next_normal();
    return a;
  };
  LowRankTile t{rand_mat(32, 4), rand_mat(24, 4)};
  const Matrix y = rand_mat(24, 10);
  Matrix c1 = rand_mat(32, 10);
  Matrix c2 = la::to_matrix(c1.view());
  tlr::lr_gemm_accum(-1.0, t, y.view(), c1.view());
  const Matrix dense = t.to_dense();
  la::gemm(Trans::kNo, Trans::kNo, -1.0, dense.view(), y.view(), 1.0,
           c2.view());
  EXPECT_LT(la::frobenius_diff(c1.view(), c2.view()), 1e-11);
}

TEST(Aca, MatchesRrqrAccuracyOnKernelBlocks) {
  auto gen = grid_cov(20, 20, 0.1);
  const i64 nb = 100;
  Matrix dense(nb, nb);
  gen->fill(300, 100, dense.view());
  const double scale = la::frobenius_norm(dense.view());
  for (double tol : {1e-2, 1e-4, 1e-6}) {
    const LowRankTile t = tlr::aca_block(*gen, 300, 100, nb, nb, tol, -1);
    // ACA is heuristic: allow a small slack factor over the requested tol.
    EXPECT_LE(tlr::lr_error_fro(t, dense.view()), 10.0 * tol * scale) << tol;
  }
}

TEST(Aca, ExactOnRankOneBlock) {
  // Constant block is exactly rank 1.
  class OnesGen final : public la::MatrixGenerator {
   public:
    i64 rows() const override { return 50; }
    i64 cols() const override { return 50; }
    double entry(i64, i64) const override { return 3.0; }
  } gen;
  const LowRankTile t = tlr::aca_block(gen, 0, 10, 30, 20, 1e-12, -1);
  EXPECT_EQ(t.rank(), 1);
  Matrix ref(30, 20);
  for (i64 j = 0; j < 20; ++j)
    for (i64 i = 0; i < 30; ++i) ref(i, j) = 3.0;
  EXPECT_LE(tlr::lr_error_fro(t, ref.view()), 1e-10);
}

class TlrCompressSweep : public ::testing::TestWithParam<double> {};

TEST_P(TlrCompressSweep, GlobalReconstructionErrorBounded) {
  const double tol = GetParam();
  rt::Runtime rt(4);
  auto gen = grid_cov(16, 16, 0.1);
  const TlrMatrix m = TlrMatrix::compress(rt, *gen, 64, tol, -1);
  const Matrix dense = geo::dense_from_generator(*gen);
  const Matrix rec = m.to_dense();
  // Each off-diagonal tile errs by <= tol * sigma_1(tile) * sqrt(nb) with
  // sigma_1(tile) <= ||Sigma||_F; summing squares over mirrored triangles:
  const double bound = tol * std::sqrt(2.0 * 64.0) *
                       la::frobenius_norm(dense.view());
  EXPECT_LE(la::frobenius_diff(rec.view(), dense.view()), bound * 1.01)
      << "tol=" << tol;
}

INSTANTIATE_TEST_SUITE_P(Tols, TlrCompressSweep,
                         ::testing::Values(1e-1, 1e-3, 1e-5, 1e-7));

TEST(TlrMatrix, RankGridShapeAndDiagMarkers) {
  rt::Runtime rt(2);
  auto gen = grid_cov(14, 14, 0.1);  // n=196, tile 49 -> 4x4 tiles
  const TlrMatrix m = TlrMatrix::compress(rt, *gen, 49, 1e-3, -1);
  const auto grid = m.rank_grid();
  ASSERT_EQ(grid.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(grid[i].size(), i + 1);
    EXPECT_EQ(grid[i][i], 49);  // dense diagonal marker
    for (std::size_t j = 0; j < i; ++j) {
      EXPECT_GE(grid[i][j], 1);
      EXPECT_LT(grid[i][j], 49);
    }
  }
  EXPECT_GT(m.mean_offdiag_rank(), 0.0);
  EXPECT_LE(m.max_tile_rank(), 49);
}

TEST(TlrMatrix, CompressionSavesMemory) {
  rt::Runtime rt(2);
  // Spacing-matched "strong" correlation on a 24x24 grid.
  auto gen = grid_cov(24, 24, 1.4);
  const TlrMatrix m = TlrMatrix::compress(rt, *gen, 96, 1e-3, -1);
  EXPECT_LT(m.memory_bytes(), m.dense_bytes() / 2)
      << "strong correlation at 1e-3 must compress well";
}

TEST(TlrMatrix, AcaMethodProducesComparableRanks) {
  rt::Runtime rt(2);
  auto gen = grid_cov(12, 12, 0.1);
  const TlrMatrix rrqr =
      TlrMatrix::compress(rt, *gen, 48, 1e-4, -1, CompressionMethod::kRrqr);
  const TlrMatrix aca =
      TlrMatrix::compress(rt, *gen, 48, 1e-4, -1, CompressionMethod::kAca);
  EXPECT_NEAR(aca.mean_offdiag_rank(), rrqr.mean_offdiag_rank(),
              0.5 * rrqr.mean_offdiag_rank() + 2.0);
}

TEST(TlrMatrix, MaxRankCapIsHonored) {
  rt::Runtime rt(2);
  auto gen = grid_cov(16, 16, 0.29);  // weak correlation -> high ranks
  const TlrMatrix m = TlrMatrix::compress(rt, *gen, 64, 1e-9, 5);
  EXPECT_LE(m.max_tile_rank(), 5);
}

class TlrPotrfSweep : public ::testing::TestWithParam<double> {};

TEST_P(TlrPotrfSweep, FactorReconstructsWithinTolerance) {
  const double tol = GetParam();
  rt::Runtime rt(4);
  auto gen = grid_cov(16, 16, 0.1, 0.5, 1e-4);
  TlrMatrix m = TlrMatrix::compress(rt, *gen, 64, tol, -1);
  tlr::potrf_tlr(rt, m);

  // Rebuild L from the factorised TLR form and compare L L^T to Sigma.
  Matrix l = m.to_dense();
  la::zero_strict_upper(l.view());
  Matrix rec(l.rows(), l.cols());
  la::gemm(Trans::kNo, Trans::kYes, 1.0, l.view(), l.view(), 0.0, rec.view());
  const Matrix sigma = geo::dense_from_generator(*gen);
  const double err = la::frobenius_diff(rec.view(), sigma.view());
  const double scale = la::frobenius_norm(sigma.view());
  // Relative truncation error accumulates over ~nt^2 tile updates.
  const double nt = static_cast<double>(m.num_tiles());
  EXPECT_LE(err, std::max(1e-11, 20.0 * tol * nt) * scale) << "tol=" << tol;
}

INSTANTIATE_TEST_SUITE_P(Tols, TlrPotrfSweep,
                         ::testing::Values(1e-3, 1e-5, 1e-7, 1e-9));

TEST(TlrPotrf, TlrFlopsBelowDenseForSmoothKernels) {
  rt::Runtime rt(2);
  auto gen = grid_cov(24, 24, 0.234);
  TlrMatrix m = TlrMatrix::compress(rt, *gen, 96, 1e-3, -1);
  tlr::potrf_tlr(rt, m);
  const double dense_flops = 576.0 * 576.0 * 576.0 / 3.0;
  EXPECT_LT(tlr::potrf_tlr_flops(m), dense_flops);
}

TEST(TlrPotrf, NonSpdThrows) {
  rt::Runtime rt(2);
  // Indefinite generator: a correlation-like matrix with an impossible
  // off-diagonal block (correlation > 1).
  class BadGen final : public la::MatrixGenerator {
   public:
    i64 rows() const override { return 128; }
    i64 cols() const override { return 128; }
    double entry(i64 i, i64 j) const override {
      if (i == j) return 1.0;
      return 1.7;  // not a valid correlation -> Sigma indefinite
    }
  } gen;
  TlrMatrix m = TlrMatrix::compress(rt, gen, 64, 1e-6, -1);
  EXPECT_THROW(tlr::potrf_tlr(rt, m), Error);
}

}  // namespace

namespace {

TEST(TlrPotrf, SafeguardBoostsIllConditionedMatrix) {
  // Spacing-matched medium correlation at loose accuracy: truncation pushes
  // the matrix below SPD, the safeguard must rescue it with a small boost.
  rt::Runtime rt(2);
  geo::LocationSet locs = geo::regular_grid(40, 40);
  locs = geo::apply_permutation(locs, geo::morton_order(locs));
  auto kernel = std::make_shared<stats::MaternKernel>(1.0, 0.35, 0.5);
  const geo::KernelCovGenerator gen(locs, kernel, 1e-8);
  TlrMatrix m = TlrMatrix::compress(rt, gen, 200, 1e-2, -1);
  const tlr::PotrfTlrInfo info = tlr::potrf_tlr(rt, m);
  // Whether or not a retry fired, the result must be a usable factor and
  // any boost must stay at the order of the compression error.
  EXPECT_LE(info.diag_boost, 1.0);
  Matrix l = m.to_dense();
  la::zero_strict_upper(l.view());
  Matrix rec(l.rows(), l.cols());
  la::gemm(Trans::kNo, Trans::kYes, 1.0, l.view(), l.view(), 0.0, rec.view());
  const Matrix sigma = geo::dense_from_generator(gen);
  EXPECT_LT(la::frobenius_diff(rec.view(), sigma.view()),
            0.2 * la::frobenius_norm(sigma.view()));
}

TEST(TlrPotrf, SafeguardGivesUpOnGenuinelyIndefinite) {
  rt::Runtime rt(1);
  class BadGen2 final : public la::MatrixGenerator {
   public:
    i64 rows() const override { return 96; }
    i64 cols() const override { return 96; }
    double entry(i64 i, i64 j) const override {
      return (i == j) ? -3.0 : 1.5;  // hugely negative diagonal
    }
  } gen;
  TlrMatrix m = TlrMatrix::compress(rt, gen, 48, 1e-6, -1);
  EXPECT_THROW((void)tlr::potrf_tlr(rt, m, /*max_retries=*/1), Error);
}

}  // namespace
