// Tests for Householder QR, rank-revealing QR and the Jacobi SVD.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"
#include "stats/rng.hpp"

namespace {

using namespace parmvn;
using la::Matrix;
using la::Trans;

Matrix random_matrix(i64 m, i64 n, u64 seed) {
  stats::Xoshiro256pp g(seed);
  Matrix a(m, n);
  for (i64 j = 0; j < n; ++j)
    for (i64 i = 0; i < m; ++i) a(i, j) = 2.0 * g.next_u01() - 1.0;
  return a;
}

// A = U diag(sv) V^T with orthonormal-ish factors built from QR of random
// matrices; gives controlled singular values.
Matrix matrix_with_singular_values(i64 m, i64 n, const std::vector<double>& sv,
                                   u64 seed) {
  const i64 k = static_cast<i64>(sv.size());
  Matrix qu = random_matrix(m, k, seed);
  std::vector<double> tau;
  la::householder_qr(qu.view(), tau);
  Matrix u = la::form_q_thin(qu.view(), tau, k);
  Matrix qv = random_matrix(n, k, seed + 1);
  la::householder_qr(qv.view(), tau);
  Matrix v = la::form_q_thin(qv.view(), tau, k);
  for (i64 j = 0; j < k; ++j)
    for (i64 i = 0; i < m; ++i) u(i, j) *= sv[static_cast<std::size_t>(j)];
  Matrix a(m, n);
  la::gemm(Trans::kNo, Trans::kYes, 1.0, u.view(), v.view(), 0.0, a.view());
  return a;
}

double orthonormality_defect(la::ConstMatrixView q) {
  Matrix gram(q.cols, q.cols);
  la::gemm(Trans::kYes, Trans::kNo, 1.0, q, q, 0.0, gram.view());
  for (i64 i = 0; i < q.cols; ++i) gram(i, i) -= 1.0;
  return la::frobenius_norm(gram.view());
}

TEST(HouseholderQr, ReconstructsAndQOrthonormal) {
  for (auto [m, n] : std::vector<std::pair<i64, i64>>{{8, 8}, {20, 7}, {64, 64},
                                                      {100, 30}, {5, 5}}) {
    const Matrix a0 = random_matrix(m, n, 77);
    Matrix a = la::to_matrix(a0.view());
    std::vector<double> tau;
    la::householder_qr(a.view(), tau);
    const i64 k = std::min(m, n);
    Matrix q = la::form_q_thin(a.view(), tau, k);
    EXPECT_LT(orthonormality_defect(q.view()), 1e-12) << m << "x" << n;
    // R = leading k x n upper triangle.
    Matrix r(k, n);
    for (i64 j = 0; j < n; ++j)
      for (i64 i = 0; i <= std::min(j, k - 1); ++i) r(i, j) = a(i, j);
    Matrix rec(m, n);
    la::gemm(Trans::kNo, Trans::kNo, 1.0, q.view(), r.view(), 0.0, rec.view());
    EXPECT_LT(la::frobenius_diff(rec.view(), a0.view()),
              1e-12 * (1.0 + la::frobenius_norm(a0.view())))
        << m << "x" << n;
  }
}

TEST(Rrqr, ExactLowRankRecovered) {
  const Matrix a = matrix_with_singular_values(40, 30, {5.0, 2.0, 1.0}, 11);
  const la::RrqrResult lr = la::rrqr_truncated(a.view(), 1e-10, -1);
  EXPECT_EQ(lr.rank, 3);
  Matrix rec(40, 30);
  la::gemm(Trans::kNo, Trans::kYes, 1.0, lr.u.view(), lr.v.view(), 0.0,
           rec.view());
  EXPECT_LT(la::frobenius_diff(rec.view(), a.view()), 1e-9);
  EXPECT_LT(lr.residual_fro, 1e-9);
}

TEST(Rrqr, ToleranceControlsActualError) {
  // Geometric singular-value decay; check ||A - UV^T||_F <= tol for a range
  // of tolerances, and that reported residual matches the measured one.
  std::vector<double> sv;
  for (int i = 0; i < 20; ++i) sv.push_back(std::pow(0.5, i));
  const Matrix a = matrix_with_singular_values(50, 45, sv, 13);
  for (double tol : {1e-1, 1e-3, 1e-6, 1e-9}) {
    const la::RrqrResult lr = la::rrqr_truncated(a.view(), tol, -1);
    Matrix rec(50, 45);
    la::gemm(Trans::kNo, Trans::kYes, 1.0, lr.u.view(), lr.v.view(), 0.0,
             rec.view());
    const double err = la::frobenius_diff(rec.view(), a.view());
    EXPECT_LE(err, tol * 1.01) << "tol=" << tol;
    // The tracked residual is a conservative estimate: it must bound the
    // true error (up to downdating noise ~sqrt(eps)) and respect the stop
    // tolerance itself.
    EXPECT_LE(lr.residual_fro, tol * 1.01) << "tol=" << tol;
    EXPECT_LE(err, lr.residual_fro + 1e-7) << "tol=" << tol;
  }
}

TEST(Rrqr, RankMonotoneInTolerance) {
  std::vector<double> sv;
  for (int i = 0; i < 30; ++i) sv.push_back(std::pow(0.7, i));
  const Matrix a = matrix_with_singular_values(60, 60, sv, 17);
  i64 prev_rank = 0;
  for (double tol : {1e-1, 1e-2, 1e-4, 1e-6, 1e-8}) {
    const la::RrqrResult lr = la::rrqr_truncated(a.view(), tol, -1);
    EXPECT_GE(lr.rank, prev_rank);
    prev_rank = lr.rank;
  }
}

TEST(Rrqr, MaxRankCap) {
  std::vector<double> sv;
  for (int i = 0; i < 20; ++i) sv.push_back(std::pow(0.9, i));
  const Matrix a = matrix_with_singular_values(30, 30, sv, 19);
  const la::RrqrResult lr = la::rrqr_truncated(a.view(), 0.0, 5);
  EXPECT_EQ(lr.rank, 5);
  EXPECT_GT(lr.residual_fro, 0.0);
}

TEST(Rrqr, ZeroMatrixGivesRankOneZeroFactor) {
  const Matrix a(12, 9);
  const la::RrqrResult lr = la::rrqr_truncated(a.view(), 1e-12, -1);
  EXPECT_EQ(lr.rank, 1);
  EXPECT_DOUBLE_EQ(la::frobenius_norm(lr.u.view()), 0.0);
  EXPECT_DOUBLE_EQ(la::frobenius_norm(lr.v.view()), 0.0);
}

TEST(SvdJacobi, DiagonalMatrix) {
  Matrix a(4, 4);
  a(0, 0) = 4.0;
  a(1, 1) = 1.0;
  a(2, 2) = 3.0;
  a(3, 3) = 2.0;
  const la::SvdResult s = la::svd_jacobi(a.view());
  ASSERT_EQ(s.sigma.size(), 4u);
  EXPECT_NEAR(s.sigma[0], 4.0, 1e-12);
  EXPECT_NEAR(s.sigma[1], 3.0, 1e-12);
  EXPECT_NEAR(s.sigma[2], 2.0, 1e-12);
  EXPECT_NEAR(s.sigma[3], 1.0, 1e-12);
}

TEST(SvdJacobi, ReconstructionAndOrthogonality) {
  for (auto [m, n] : std::vector<std::pair<i64, i64>>{{12, 12}, {30, 10},
                                                      {10, 30}, {1, 5}}) {
    const Matrix a = random_matrix(m, n, 23);
    const la::SvdResult s = la::svd_jacobi(a.view());
    const i64 k = std::min(m, n);
    ASSERT_EQ(static_cast<i64>(s.sigma.size()), k);
    EXPECT_LT(orthonormality_defect(s.u.view()), 1e-11);
    EXPECT_LT(orthonormality_defect(s.v.view()), 1e-11);
    // Descending order.
    for (std::size_t i = 1; i < s.sigma.size(); ++i)
      EXPECT_LE(s.sigma[i], s.sigma[i - 1] + 1e-14);
    // A == U S V^T.
    Matrix us = la::to_matrix(s.u.view());
    for (i64 j = 0; j < k; ++j)
      for (i64 i = 0; i < m; ++i) us(i, j) *= s.sigma[static_cast<std::size_t>(j)];
    Matrix rec(m, n);
    la::gemm(Trans::kNo, Trans::kYes, 1.0, us.view(), s.v.view(), 0.0,
             rec.view());
    EXPECT_LT(la::frobenius_diff(rec.view(), a.view()),
              1e-11 * (1.0 + la::frobenius_norm(a.view())))
        << m << "x" << n;
  }
}

TEST(SvdJacobi, AgreesWithRrqrResidual) {
  std::vector<double> sv;
  for (int i = 0; i < 15; ++i) sv.push_back(std::pow(0.6, i));
  const Matrix a = matrix_with_singular_values(25, 25, sv, 29);
  const la::SvdResult s = la::svd_jacobi(a.view());
  for (std::size_t i = 0; i < sv.size(); ++i)
    EXPECT_NEAR(s.sigma[i], sv[i], 1e-10) << i;
}

TEST(TruncationRank, TailRule) {
  const std::vector<double> sigma{4.0, 2.0, 1.0, 0.5};
  // tail^2 after keeping r: r=4:0, r=3:0.25, r=2:1.25, r=1:5.25, r=0:21.25
  EXPECT_EQ(la::truncation_rank(sigma, 0.0), 4);
  EXPECT_EQ(la::truncation_rank(sigma, 0.6), 3);
  EXPECT_EQ(la::truncation_rank(sigma, 1.2), 2);
  EXPECT_EQ(la::truncation_rank(sigma, 2.3), 1);
  EXPECT_EQ(la::truncation_rank(sigma, 100.0), 1);  // floor at 1
}

}  // namespace
