// Tests for the parallel tile PMVN (Algorithm 2): equivalence with the
// sequential SOV oracle, dense/TLR agreement, determinism across thread
// counts and tile sizes, prefix-sweep semantics, and closed forms in
// moderate dimension.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "core/pmvn.hpp"
#include "core/sov.hpp"
#include "geo/covgen.hpp"
#include "geo/geometry.hpp"
#include "linalg/blas.hpp"
#include "linalg/potrf.hpp"
#include "stats/covariance.hpp"
#include "stats/normal.hpp"
#include "tile/tiled_potrf.hpp"
#include "tlr/tlr_potrf.hpp"

namespace {

using namespace parmvn;
using core::PmvnOptions;
using core::PmvnResult;
using la::Matrix;

constexpr double kInf = std::numeric_limits<double>::infinity();

Matrix equicorrelated(i64 n, double rho) {
  Matrix s(n, n);
  for (i64 j = 0; j < n; ++j)
    for (i64 i = 0; i < n; ++i) s(i, j) = (i == j) ? 1.0 : rho;
  return s;
}

// Tiled factor from a dense SPD matrix.
tile::TileMatrix tiled_chol(rt::Runtime& rt, const Matrix& sigma, i64 nb) {
  tile::TileMatrix l(rt, sigma.rows(), sigma.cols(), nb,
                     tile::Layout::kLowerSymmetric);
  l.from_dense(sigma.view());
  tile::potrf_tiled(rt, l);
  return l;
}

TEST(PmvnDense, MatchesSequentialOracleExactly) {
  // Same PointSet parameters => identical w values => the tile algorithm
  // computes the same chains as the sequential reference (up to FP
  // reassociation in the GEMM propagation).
  const i64 n = 60;
  Matrix sigma = equicorrelated(n, 0.45);
  std::vector<double> a(static_cast<std::size_t>(n), -0.4);
  std::vector<double> b(static_cast<std::size_t>(n), kInf);

  core::SovOptions seq;
  seq.samples_per_shift = 500;
  seq.shifts = 8;
  seq.sampler = stats::SamplerKind::kRichtmyer;
  seq.seed = 11;
  Matrix l_dense = la::to_matrix(sigma.view());
  la::potrf_lower_or_throw(l_dense.view());
  const core::SovResult expect =
      core::mvn_probability_chol(l_dense.view(), a, b, seq);

  rt::Runtime rt(4);
  const tile::TileMatrix l = tiled_chol(rt, sigma, 16);
  PmvnOptions opts;
  opts.samples_per_shift = 500;
  opts.shifts = 8;
  opts.sampler = stats::SamplerKind::kRichtmyer;
  opts.seed = 11;
  const PmvnResult got = core::pmvn_dense(rt, l, a, b, opts);

  EXPECT_NEAR(got.prob / expect.prob, 1.0, 1e-8);
  EXPECT_NEAR(got.error3sigma, expect.error3sigma,
              1e-6 + 0.01 * expect.error3sigma);
}

TEST(PmvnDense, DeterministicAcrossThreadCounts) {
  const i64 n = 48;
  Matrix sigma = equicorrelated(n, 0.3);
  std::vector<double> a(static_cast<std::size_t>(n), -1.0);
  std::vector<double> b(static_cast<std::size_t>(n), 0.8);
  PmvnOptions opts;
  opts.samples_per_shift = 250;
  opts.shifts = 4;

  double reference = 0.0;
  for (int threads : {0, 1, 2, 8}) {
    rt::Runtime rt(threads);
    const tile::TileMatrix l = tiled_chol(rt, sigma, 16);
    const PmvnResult r = core::pmvn_dense(rt, l, a, b, opts);
    if (threads == 0) {
      reference = r.prob;
    } else {
      EXPECT_DOUBLE_EQ(r.prob, reference)
          << "task arithmetic must be schedule-independent, threads="
          << threads;
    }
  }
}

TEST(PmvnDense, TileSizeOnlyPerturbsRounding) {
  const i64 n = 72;
  Matrix sigma = equicorrelated(n, 0.5);
  std::vector<double> a(static_cast<std::size_t>(n), 0.0);
  std::vector<double> b(static_cast<std::size_t>(n), kInf);
  PmvnOptions opts;
  opts.samples_per_shift = 400;
  opts.shifts = 5;
  double first = -1.0;
  for (i64 nb : {8, 24, 36, 72}) {
    rt::Runtime rt(4);
    const tile::TileMatrix l = tiled_chol(rt, sigma, nb);
    const PmvnResult r = core::pmvn_dense(rt, l, a, b, opts);
    if (first < 0) {
      first = r.prob;
    } else {
      EXPECT_NEAR(r.prob / first, 1.0, 1e-7) << "nb=" << nb;
    }
  }
}

TEST(PmvnDense, ExchangeableHalfCorrelationOrthantHighDim) {
  // 1/(n+1) identity at n = 64: a genuinely multivariate closed form.
  const i64 n = 64;
  Matrix sigma = equicorrelated(n, 0.5);
  std::vector<double> a(static_cast<std::size_t>(n), 0.0);
  std::vector<double> b(static_cast<std::size_t>(n), kInf);
  rt::Runtime rt(4);
  const tile::TileMatrix l = tiled_chol(rt, sigma, 32);
  PmvnOptions opts;
  opts.samples_per_shift = 2500;
  opts.shifts = 20;
  opts.sampler = stats::SamplerKind::kRichtmyer;
  const PmvnResult r = core::pmvn_dense(rt, l, a, b, opts);
  const double expect = 1.0 / 65.0;
  EXPECT_NEAR(r.prob / expect, 1.0, 0.05);
  EXPECT_LT(std::fabs(r.prob - expect), 3.0 * r.error3sigma + 0.002 * expect);
}

TEST(PmvnDense, IndependenceProductExact) {
  const i64 n = 40;
  Matrix sigma(n, n);
  std::vector<double> a(static_cast<std::size_t>(n)), b(static_cast<std::size_t>(n));
  double expect = 1.0;
  for (i64 i = 0; i < n; ++i) {
    sigma(i, i) = 1.0;
    a[static_cast<std::size_t>(i)] = -0.8;
    b[static_cast<std::size_t>(i)] = 1.2;
    expect *= stats::norm_cdf_diff(-0.8, 1.2);
  }
  rt::Runtime rt(2);
  const tile::TileMatrix l = tiled_chol(rt, sigma, 16);
  const PmvnResult r = core::pmvn_dense(rt, l, a, b, {});
  EXPECT_NEAR(r.prob / expect, 1.0, 1e-10)
      << "independent case is exact for every sample";
}

TEST(PmvnDense, PrefixSweepMatchesFullProbabilities) {
  const i64 n = 36;
  Matrix sigma = equicorrelated(n, 0.4);
  std::vector<double> a(static_cast<std::size_t>(n), -0.3);
  std::vector<double> b(static_cast<std::size_t>(n), kInf);
  rt::Runtime rt(4);
  const tile::TileMatrix l = tiled_chol(rt, sigma, 12);
  PmvnOptions opts;
  opts.samples_per_shift = 300;
  opts.shifts = 4;
  opts.prefix = true;
  const PmvnResult r = core::pmvn_dense(rt, l, a, b, opts);
  ASSERT_EQ(static_cast<i64>(r.prefix_prob.size()), n);
  // Monotone non-increasing; last equals the total probability.
  for (std::size_t i = 1; i < r.prefix_prob.size(); ++i)
    EXPECT_LE(r.prefix_prob[i], r.prefix_prob[i - 1] + 1e-12);
  EXPECT_NEAR(r.prefix_prob.back(), r.prob, 1e-12);
  // First equals the exact marginal.
  EXPECT_NEAR(r.prefix_prob.front(), 1.0 - stats::norm_cdf(-0.3), 1e-12);

  // Prefix k must equal a separate PMVN run with limits only on the first k
  // coordinates (the remaining dimensions contribute an exact factor 1).
  for (i64 k : {i64{9}, i64{23}}) {
    std::vector<double> a_partial(static_cast<std::size_t>(n), -kInf);
    for (i64 i = 0; i < k; ++i) a_partial[static_cast<std::size_t>(i)] = -0.3;
    PmvnOptions full = opts;
    full.prefix = false;
    const PmvnResult sub = core::pmvn_dense(rt, l, a_partial, b, full);
    EXPECT_NEAR(sub.prob, r.prefix_prob[static_cast<std::size_t>(k - 1)], 1e-12)
        << "k=" << k;
  }
}

TEST(PmvnDense, SmallPanelBytesStillExact) {
  // Force many column panels; panelling must not change the estimate at all.
  const i64 n = 30;
  Matrix sigma = equicorrelated(n, 0.25);
  std::vector<double> a(static_cast<std::size_t>(n), -0.5);
  std::vector<double> b(static_cast<std::size_t>(n), 2.0);
  rt::Runtime rt(2);
  const tile::TileMatrix l = tiled_chol(rt, sigma, 10);
  PmvnOptions big;
  big.samples_per_shift = 200;
  big.shifts = 5;
  PmvnOptions tiny = big;
  tiny.panel_bytes = 1;  // floor: one tile-column per panel
  const double p_big = core::pmvn_dense(rt, l, a, b, big).prob;
  const double p_tiny = core::pmvn_dense(rt, l, a, b, tiny).prob;
  EXPECT_DOUBLE_EQ(p_big, p_tiny);
}

TEST(PmvnTlr, ConvergesToDenseAsToleranceTightens) {
  // Spatial covariance (Morton-ordered grid) so TLR compression is honest.
  geo::LocationSet locs = geo::regular_grid(14, 14);
  locs = geo::apply_permutation(locs, geo::morton_order(locs));
  auto kernel = std::make_shared<stats::ExponentialKernel>(1.0, 0.15);
  const geo::KernelCovGenerator gen(locs, kernel, 1e-6);
  const i64 n = gen.rows();
  std::vector<double> a(static_cast<std::size_t>(n), -0.25);
  std::vector<double> b(static_cast<std::size_t>(n), kInf);

  rt::Runtime rt(4);
  PmvnOptions opts;
  opts.samples_per_shift = 400;
  opts.shifts = 5;

  const Matrix sigma = geo::dense_from_generator(gen);
  tile::TileMatrix ld(rt, n, n, 49, tile::Layout::kLowerSymmetric);
  ld.from_dense(sigma.view());
  tile::potrf_tiled(rt, ld);
  const double p_dense = core::pmvn_dense(rt, ld, a, b, opts).prob;

  double prev_gap = 1.0;
  for (double tol : {1e-2, 1e-4, 1e-8}) {
    tlr::TlrMatrix lt = tlr::TlrMatrix::compress(rt, gen, 49, tol, -1);
    tlr::potrf_tlr(rt, lt);
    const double p_tlr = core::pmvn_tlr(rt, lt, a, b, opts).prob;
    const double gap = std::fabs(p_tlr - p_dense) / p_dense;
    EXPECT_LE(gap, prev_gap * 1.5 + 1e-9) << "tol=" << tol;
    prev_gap = gap;
    if (tol <= 1e-8) EXPECT_LT(gap, 1e-5);
  }
}

TEST(PmvnTlr, PrefixSweepWorksInTlrMode) {
  geo::LocationSet locs = geo::regular_grid(10, 10);
  locs = geo::apply_permutation(locs, geo::morton_order(locs));
  auto kernel = std::make_shared<stats::ExponentialKernel>(1.0, 0.2);
  const geo::KernelCovGenerator gen(locs, kernel, 1e-6);
  rt::Runtime rt(2);
  tlr::TlrMatrix l = tlr::TlrMatrix::compress(rt, gen, 25, 1e-6, -1);
  tlr::potrf_tlr(rt, l);
  std::vector<double> a(100, 0.0), b(100, kInf);
  PmvnOptions opts;
  opts.samples_per_shift = 250;
  opts.shifts = 4;
  opts.prefix = true;
  const PmvnResult r = core::pmvn_tlr(rt, l, a, b, opts);
  ASSERT_EQ(r.prefix_prob.size(), 100u);
  for (std::size_t i = 1; i < 100; ++i)
    EXPECT_LE(r.prefix_prob[i], r.prefix_prob[i - 1] + 1e-12);
  EXPECT_NEAR(r.prefix_prob.back(), r.prob, 1e-12);
}

TEST(Pmvn, RejectsShapeMismatch) {
  rt::Runtime rt(1);
  Matrix sigma = equicorrelated(8, 0.2);
  const tile::TileMatrix l = tiled_chol(rt, sigma, 4);
  std::vector<double> short_a(4, 0.0), b(8, kInf);
  EXPECT_THROW((void)core::pmvn_dense(rt, l, short_a, b, {}), Error);
}

TEST(Pmvn, GeneralLayoutFactorRejected) {
  rt::Runtime rt(1);
  tile::TileMatrix not_sym(rt, 8, 8, 4, tile::Layout::kGeneral);
  std::vector<double> a(8, 0.0), b(8, 1.0);
  EXPECT_THROW((void)core::pmvn_dense(rt, not_sym, a, b, {}), Error);
}

}  // namespace
