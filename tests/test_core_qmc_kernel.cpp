// Direct tests for the Algorithm-3 tile kernel (core/qmc_kernel.hpp): chain
// equivalence with the sequential recursion, equivalence with the seed's
// sample-major scalar kernel, infinite-limit handling, dead chains, prefix
// accumulation and tiling invariance.
//
// Panel layout: a/b/y are sample-contiguous (mc x m) — row index = sample,
// column index = tile-local dimension.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/qmc_kernel.hpp"
#include "linalg/blas.hpp"
#include "linalg/potrf.hpp"
#include "stats/normal.hpp"
#include "stats/qmc.hpp"
#include "stats/rng.hpp"

namespace {

using namespace parmvn;
using la::Matrix;

constexpr double kInf = std::numeric_limits<double>::infinity();

Matrix lower_factor(i64 n, u64 seed) {
  stats::Xoshiro256pp g(seed);
  Matrix m(n, n);
  for (i64 j = 0; j < n; ++j)
    for (i64 i = 0; i < n; ++i) m(i, j) = g.next_normal();
  Matrix s(n, n);
  la::gemm(la::Trans::kNo, la::Trans::kYes, 1.0, m.view(), m.view(), 0.0,
           s.view());
  for (i64 i = 0; i < n; ++i) s(i, i) += static_cast<double>(n);
  la::potrf_lower_or_throw(s.view());
  return s;
}

// The seed's sample-major scalar recursion (one chain at a time, plain
// left-to-right dots through the scalar Phi / Phi^-1): the reference the
// vectorized panel sweep must agree with.
void reference_kernel(la::ConstMatrixView l, const stats::PointSet& pts,
                      i64 row0, i64 col0, la::ConstMatrixView a,
                      la::ConstMatrixView b, la::MatrixView y, double* p,
                      double* prefix_acc) {
  const i64 m = l.rows;
  const i64 mc = a.rows;
  for (i64 j = 0; j < mc; ++j) {
    double pj = p[j];
    for (i64 i = 0; i < m; ++i) {
      double s = 0.0;
      for (i64 k = 0; k < i; ++k) s += l(i, k) * y(j, k);
      const double lii = l(i, i);
      const double ai = (a(j, i) - s) / lii;
      const double bi = (b(j, i) - s) / lii;
      const double phi_a = stats::norm_cdf(ai);
      const double d = stats::norm_cdf_diff(ai, bi);
      pj *= d;
      const double w = pts.value(row0 + i, col0 + j);
      const double u = std::clamp(phi_a + w * d, 1e-16, 1.0 - 1e-16);
      y(j, i) = stats::norm_quantile(u);
      if (prefix_acc != nullptr) prefix_acc[i] += pj;
    }
    p[j] = pj;
  }
}

TEST(QmcKernel, MatchesScalarRecursionPerChain) {
  const i64 m = 12;
  const i64 mc = 5;
  const Matrix l = lower_factor(m, 3);
  const stats::PointSet pts(stats::SamplerKind::kPseudoMC, m, 64, 1, 9);
  Matrix a(mc, m), b(mc, m), y(mc, m);
  for (i64 j = 0; j < mc; ++j)
    for (i64 i = 0; i < m; ++i) {
      a(j, i) = -1.2 - 0.05 * static_cast<double>(i);
      b(j, i) = 0.8 + 0.03 * static_cast<double>(j);
    }
  std::vector<double> p(static_cast<std::size_t>(mc), 1.0);
  core::qmc_tile_kernel(l.view(), pts, 0, 0, a.view(), b.view(), y.view(),
                        p.data(), nullptr);

  // Scalar re-derivation of chain j = 2.
  const i64 j = 2;
  std::vector<double> yref(static_cast<std::size_t>(m));
  double pref = 1.0;
  for (i64 i = 0; i < m; ++i) {
    double s = 0.0;
    for (i64 k = 0; k < i; ++k) s += l(i, k) * yref[static_cast<std::size_t>(k)];
    const double ai = (a(j, i) - s) / l(i, i);
    const double bi = (b(j, i) - s) / l(i, i);
    const double d = stats::norm_cdf_diff(ai, bi);
    pref *= d;
    const double u = std::clamp(stats::norm_cdf(ai) + pts.value(i, j) * d,
                                1e-16, 1.0 - 1e-16);
    yref[static_cast<std::size_t>(i)] = stats::norm_quantile(u);
  }
  EXPECT_NEAR(p[static_cast<std::size_t>(j)], pref, 1e-13);
  for (i64 i = 0; i < m; ++i)
    EXPECT_NEAR(y(j, i), yref[static_cast<std::size_t>(i)], 1e-11) << i;
}

// Old-vs-new equivalence: the panel sweep against the seed's sample-major
// kernel at the panel widths the engine actually produces (full tile, a
// ragged SIMD tail, a single chain). Tolerances absorb the reassociated
// triangular products and the native batched transcendentals (<= ~1e-14
// relative per evaluation; chains amplify through the quantile feedback).
TEST(QmcKernel, MatchesSampleMajorSeedKernelAcrossWidths) {
  const i64 m = 24;
  for (const i64 mc : {i64{1}, i64{7}, i64{64}}) {
    const Matrix l = lower_factor(m, 17);
    const stats::PointSet pts(stats::SamplerKind::kRichtmyer, 2 * m,
                              std::max<i64>(mc, 8), 2, 31);
    Matrix a(mc, m), b(mc, m), y_new(mc, m), y_old(mc, m);
    for (i64 j = 0; j < mc; ++j)
      for (i64 i = 0; i < m; ++i) {
        a(j, i) = -1.5 - 0.04 * static_cast<double>((i * 5 + j) % 7);
        b(j, i) = 0.6 + 0.05 * static_cast<double>((i + 2 * j) % 5);
      }
    std::vector<double> p_new(static_cast<std::size_t>(mc), 1.0);
    std::vector<double> p_old(static_cast<std::size_t>(mc), 1.0);
    std::vector<double> acc_new(static_cast<std::size_t>(m), 0.0);
    std::vector<double> acc_old(static_cast<std::size_t>(m), 0.0);
    core::qmc_tile_kernel(l.view(), pts, m, 0, a.view(), b.view(),
                          y_new.view(), p_new.data(), acc_new.data());
    reference_kernel(l.view(), pts, m, 0, a.view(), b.view(), y_old.view(),
                     p_old.data(), acc_old.data());
    for (i64 j = 0; j < mc; ++j) {
      EXPECT_NEAR(p_new[static_cast<std::size_t>(j)] /
                      p_old[static_cast<std::size_t>(j)],
                  1.0, 1e-10)
          << "mc=" << mc << " chain=" << j;
      for (i64 i = 0; i < m; ++i)
        EXPECT_NEAR(y_new(j, i), y_old(j, i),
                    1e-9 * (1.0 + std::fabs(y_old(j, i))))
            << "mc=" << mc << " chain=" << j << " row=" << i;
    }
    for (i64 i = 0; i < m; ++i)
      EXPECT_NEAR(acc_new[static_cast<std::size_t>(i)],
                  acc_old[static_cast<std::size_t>(i)],
                  1e-10 * static_cast<double>(mc))
          << "mc=" << mc << " prefix row=" << i;
  }
}

TEST(QmcKernel, InfiniteLimitsContributeFactorOne) {
  const i64 m = 8;
  const Matrix l = lower_factor(m, 5);
  const stats::PointSet pts(stats::SamplerKind::kRichtmyer, m, 16, 1, 1);
  Matrix a(2, m), b(2, m), y(2, m);
  for (i64 j = 0; j < 2; ++j)
    for (i64 i = 0; i < m; ++i) {
      a(j, i) = -kInf;
      b(j, i) = kInf;
    }
  std::vector<double> p(2, 0.7);
  core::qmc_tile_kernel(l.view(), pts, 0, 0, a.view(), b.view(), y.view(),
                        p.data(), nullptr);
  // Unconstrained dimensions multiply p by exactly 1 but still draw y.
  EXPECT_DOUBLE_EQ(p[0], 0.7);
  EXPECT_DOUBLE_EQ(p[1], 0.7);
  for (i64 i = 0; i < m; ++i) {
    EXPECT_TRUE(std::isfinite(y(0, i)));
    EXPECT_NE(y(0, i), 0.0);  // a genuine quantile draw, not a placeholder
  }
}

TEST(QmcKernel, DeadChainZeroesProbabilityAndStaysFinite) {
  const i64 m = 6;
  const Matrix l = lower_factor(m, 7);
  const stats::PointSet pts(stats::SamplerKind::kPseudoMC, m, 8, 1, 2);
  Matrix a(1, m), b(1, m), y(1, m);
  for (i64 i = 0; i < m; ++i) {
    a(0, i) = -1.0;
    b(0, i) = 1.0;
  }
  a(0, 2) = 2.0;  // inverted box at row 2: d = 0 kills the chain
  b(0, 2) = -2.0;
  std::vector<double> p(1, 1.0);
  core::qmc_tile_kernel(l.view(), pts, 0, 0, a.view(), b.view(), y.view(),
                        p.data(), nullptr);
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  for (i64 i = 0; i < m; ++i) EXPECT_TRUE(std::isfinite(y(0, i))) << i;
}

TEST(QmcKernel, PrefixAccumulatorSumsRunningProducts) {
  const i64 m = 10;
  const i64 mc = 4;
  const Matrix l = lower_factor(m, 11);
  const stats::PointSet pts(stats::SamplerKind::kPseudoMC, m, 32, 1, 3);
  Matrix a(mc, m), b(mc, m), y(mc, m);
  for (i64 j = 0; j < mc; ++j)
    for (i64 i = 0; i < m; ++i) {
      a(j, i) = -0.5;
      b(j, i) = kInf;
    }
  std::vector<double> p(static_cast<std::size_t>(mc), 1.0);
  std::vector<double> acc(static_cast<std::size_t>(m), 0.0);
  core::qmc_tile_kernel(l.view(), pts, 0, 0, a.view(), b.view(), y.view(),
                        p.data(), acc.data());
  // Last accumulator row equals the sum of the final products.
  double total = 0.0;
  for (double v : p) total += v;
  EXPECT_NEAR(acc[static_cast<std::size_t>(m - 1)], total, 1e-13);
  // Accumulated prefix sums are non-increasing in the row index.
  for (i64 i = 1; i < m; ++i)
    EXPECT_LE(acc[static_cast<std::size_t>(i)],
              acc[static_cast<std::size_t>(i - 1)] + 1e-13);
  // First row is exact: mc * (Phi(b') - Phi(a')) with a' = a / l00.
  const double d0 = stats::norm_cdf_diff(-0.5 / l(0, 0), kInf);
  EXPECT_NEAR(acc[0], static_cast<double>(mc) * d0, 1e-12);
}

TEST(QmcKernel, RowOffsetSelectsSamplerDimensions) {
  // The same tile processed at different row offsets must consume different
  // sampler dimensions (row0 + i), giving different chains.
  const i64 m = 6;
  const Matrix l = lower_factor(m, 13);
  const stats::PointSet pts(stats::SamplerKind::kPseudoMC, 2 * m, 16, 1, 4);
  Matrix a(1, m), b(1, m), y0(1, m), y1(1, m);
  for (i64 i = 0; i < m; ++i) {
    a(0, i) = -1.0;
    b(0, i) = 1.0;
  }
  std::vector<double> p0(1, 1.0), p1(1, 1.0);
  core::qmc_tile_kernel(l.view(), pts, 0, 0, a.view(), b.view(), y0.view(),
                        p0.data(), nullptr);
  core::qmc_tile_kernel(l.view(), pts, m, 0, a.view(), b.view(), y1.view(),
                        p1.data(), nullptr);
  bool differs = false;
  for (i64 i = 0; i < m; ++i) differs |= (y0(0, i) != y1(0, i));
  EXPECT_TRUE(differs);
}

TEST(QmcKernel, FlopEstimatePositiveAndQuadratic) {
  EXPECT_GT(core::qmc_kernel_flops(64, 64), 0.0);
  EXPECT_GT(core::qmc_kernel_flops(256, 64),
            3.0 * core::qmc_kernel_flops(128, 64));
}

}  // namespace
