// Direct tests for the Algorithm-3 tile kernel (core/qmc_kernel.hpp): chain
// equivalence with the sequential recursion, infinite-limit handling, dead
// chains, prefix accumulation and tiling invariance.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/qmc_kernel.hpp"
#include "linalg/blas.hpp"
#include "linalg/potrf.hpp"
#include "stats/normal.hpp"
#include "stats/qmc.hpp"
#include "stats/rng.hpp"

namespace {

using namespace parmvn;
using la::Matrix;

constexpr double kInf = std::numeric_limits<double>::infinity();

Matrix lower_factor(i64 n, u64 seed) {
  stats::Xoshiro256pp g(seed);
  Matrix m(n, n);
  for (i64 j = 0; j < n; ++j)
    for (i64 i = 0; i < n; ++i) m(i, j) = g.next_normal();
  Matrix s(n, n);
  la::gemm(la::Trans::kNo, la::Trans::kYes, 1.0, m.view(), m.view(), 0.0,
           s.view());
  for (i64 i = 0; i < n; ++i) s(i, i) += static_cast<double>(n);
  la::potrf_lower_or_throw(s.view());
  return s;
}

TEST(QmcKernel, MatchesScalarRecursionPerChain) {
  const i64 m = 12;
  const i64 mc = 5;
  const Matrix l = lower_factor(m, 3);
  const stats::PointSet pts(stats::SamplerKind::kPseudoMC, m, 64, 1, 9);
  Matrix a(m, mc), b(m, mc), y(m, mc);
  for (i64 j = 0; j < mc; ++j)
    for (i64 i = 0; i < m; ++i) {
      a(i, j) = -1.2 - 0.05 * static_cast<double>(i);
      b(i, j) = 0.8 + 0.03 * static_cast<double>(j);
    }
  std::vector<double> p(static_cast<std::size_t>(mc), 1.0);
  core::qmc_tile_kernel(l.view(), pts, 0, 0, a.view(), b.view(), y.view(),
                        p.data(), nullptr);

  // Scalar re-derivation of chain j = 2.
  const i64 j = 2;
  std::vector<double> yref(static_cast<std::size_t>(m));
  double pref = 1.0;
  for (i64 i = 0; i < m; ++i) {
    double s = 0.0;
    for (i64 k = 0; k < i; ++k) s += l(i, k) * yref[static_cast<std::size_t>(k)];
    const double ai = (a(i, j) - s) / l(i, i);
    const double bi = (b(i, j) - s) / l(i, i);
    const double d = stats::norm_cdf_diff(ai, bi);
    pref *= d;
    const double u = std::clamp(stats::norm_cdf(ai) + pts.value(i, j) * d,
                                1e-16, 1.0 - 1e-16);
    yref[static_cast<std::size_t>(i)] = stats::norm_quantile(u);
  }
  EXPECT_NEAR(p[static_cast<std::size_t>(j)], pref, 1e-13);
  for (i64 i = 0; i < m; ++i)
    EXPECT_NEAR(y(i, j), yref[static_cast<std::size_t>(i)], 1e-11) << i;
}

TEST(QmcKernel, InfiniteLimitsContributeFactorOne) {
  const i64 m = 8;
  const Matrix l = lower_factor(m, 5);
  const stats::PointSet pts(stats::SamplerKind::kRichtmyer, m, 16, 1, 1);
  Matrix a(m, 2), b(m, 2), y(m, 2);
  for (i64 j = 0; j < 2; ++j)
    for (i64 i = 0; i < m; ++i) {
      a(i, j) = -kInf;
      b(i, j) = kInf;
    }
  std::vector<double> p(2, 0.7);
  core::qmc_tile_kernel(l.view(), pts, 0, 0, a.view(), b.view(), y.view(),
                        p.data(), nullptr);
  // Unconstrained dimensions multiply p by exactly 1 but still draw y.
  EXPECT_DOUBLE_EQ(p[0], 0.7);
  EXPECT_DOUBLE_EQ(p[1], 0.7);
  for (i64 i = 0; i < m; ++i) {
    EXPECT_TRUE(std::isfinite(y(i, 0)));
    EXPECT_NE(y(i, 0), 0.0);  // a genuine quantile draw, not a placeholder
  }
}

TEST(QmcKernel, DeadChainZeroesProbabilityAndStaysFinite) {
  const i64 m = 6;
  const Matrix l = lower_factor(m, 7);
  const stats::PointSet pts(stats::SamplerKind::kPseudoMC, m, 8, 1, 2);
  Matrix a(m, 1), b(m, 1), y(m, 1);
  for (i64 i = 0; i < m; ++i) {
    a(i, 0) = -1.0;
    b(i, 0) = 1.0;
  }
  a(2, 0) = 2.0;  // inverted box at row 2: d = 0 kills the chain
  b(2, 0) = -2.0;
  std::vector<double> p(1, 1.0);
  core::qmc_tile_kernel(l.view(), pts, 0, 0, a.view(), b.view(), y.view(),
                        p.data(), nullptr);
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  for (i64 i = 0; i < m; ++i) EXPECT_TRUE(std::isfinite(y(i, 0))) << i;
}

TEST(QmcKernel, PrefixAccumulatorSumsRunningProducts) {
  const i64 m = 10;
  const i64 mc = 4;
  const Matrix l = lower_factor(m, 11);
  const stats::PointSet pts(stats::SamplerKind::kPseudoMC, m, 32, 1, 3);
  Matrix a(m, mc), b(m, mc), y(m, mc);
  for (i64 j = 0; j < mc; ++j)
    for (i64 i = 0; i < m; ++i) {
      a(i, j) = -0.5;
      b(i, j) = kInf;
    }
  std::vector<double> p(static_cast<std::size_t>(mc), 1.0);
  std::vector<double> acc(static_cast<std::size_t>(m), 0.0);
  core::qmc_tile_kernel(l.view(), pts, 0, 0, a.view(), b.view(), y.view(),
                        p.data(), acc.data());
  // Last accumulator row equals the sum of the final products.
  double total = 0.0;
  for (double v : p) total += v;
  EXPECT_NEAR(acc[static_cast<std::size_t>(m - 1)], total, 1e-13);
  // Accumulated prefix sums are non-increasing in the row index.
  for (i64 i = 1; i < m; ++i)
    EXPECT_LE(acc[static_cast<std::size_t>(i)],
              acc[static_cast<std::size_t>(i - 1)] + 1e-13);
  // First row is exact: mc * (Phi(b') - Phi(a')) with a' = a / l00.
  const double d0 = stats::norm_cdf_diff(-0.5 / l(0, 0), kInf);
  EXPECT_NEAR(acc[0], static_cast<double>(mc) * d0, 1e-12);
}

TEST(QmcKernel, RowOffsetSelectsSamplerDimensions) {
  // The same tile processed at different row offsets must consume different
  // sampler dimensions (row0 + i), giving different chains.
  const i64 m = 6;
  const Matrix l = lower_factor(m, 13);
  const stats::PointSet pts(stats::SamplerKind::kPseudoMC, 2 * m, 16, 1, 4);
  Matrix a(m, 1), b(m, 1), y0(m, 1), y1(m, 1);
  for (i64 i = 0; i < m; ++i) {
    a(i, 0) = -1.0;
    b(i, 0) = 1.0;
  }
  std::vector<double> p0(1, 1.0), p1(1, 1.0);
  core::qmc_tile_kernel(l.view(), pts, 0, 0, a.view(), b.view(), y0.view(),
                        p0.data(), nullptr);
  core::qmc_tile_kernel(l.view(), pts, m, 0, a.view(), b.view(), y1.view(),
                        p1.data(), nullptr);
  bool differs = false;
  for (i64 i = 0; i < m; ++i) differs |= (y0(i, 0) != y1(i, 0));
  EXPECT_TRUE(differs);
}

TEST(QmcKernel, FlopEstimatePositiveAndQuadratic) {
  EXPECT_GT(core::qmc_kernel_flops(64, 64), 0.0);
  EXPECT_GT(core::qmc_kernel_flops(256, 64),
            3.0 * core::qmc_kernel_flops(128, 64));
}

}  // namespace
