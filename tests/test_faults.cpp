// Failure-domain tests: every error path driven on purpose through the
// deterministic fault-injection sites (common/fault.hpp), across both
// scheduler arms. Covered sites:
//   tile.potrf.pivot, tlr.potrf.pivot, engine.factor, engine.panel_init,
//   engine.qmc, engine.submit, engine.register, ep.sweep, vecchia.fit,
//   rt.trace
// plus the external cancel token, the query deadline, the per-query Status
// of batched confidence-region detection, and the FactorCache in-flight
// takeover under a failing factorization.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "common/fault.hpp"
#include "core/excursion.hpp"
#include "core/pmvn.hpp"
#include "engine/cholesky_factor.hpp"
#include "engine/factor_cache.hpp"
#include "engine/pmvn_engine.hpp"
#include "geo/covgen.hpp"
#include "geo/geometry.hpp"
#include "linalg/matrix.hpp"
#include "runtime/runtime.hpp"
#include "stats/covariance.hpp"
#include "tile/tile_matrix.hpp"
#include "tile/tiled_potrf.hpp"

namespace {

using namespace parmvn;

constexpr double kInf = std::numeric_limits<double>::infinity();

constexpr rt::SchedulerKind kArms[] = {rt::SchedulerKind::kWorkSteal,
                                       rt::SchedulerKind::kGlobalQueue};

struct SpatialProblem {
  geo::LocationSet locs;
  std::shared_ptr<stats::ExponentialKernel> kernel;
  std::shared_ptr<geo::KernelCovGenerator> cov;

  explicit SpatialProblem(i64 side, double range = 0.2)
      : locs(geo::apply_permutation(
            geo::regular_grid(side, side),
            geo::morton_order(geo::regular_grid(side, side)))),
        kernel(std::make_shared<stats::ExponentialKernel>(1.0, range)),
        cov(std::make_shared<geo::KernelCovGenerator>(locs, kernel, 1e-6)) {}

  [[nodiscard]] i64 n() const { return cov->rows(); }
};

engine::EngineOptions small_opts() {
  engine::EngineOptions opts;
  opts.samples_per_shift = 150;
  opts.shifts = 4;
  opts.sampler = stats::SamplerKind::kRichtmyer;
  return opts;
}

std::shared_ptr<const engine::CholeskyFactor> dense_factor(
    rt::Runtime& rt, const SpatialProblem& pb, i64 tile = 16) {
  std::vector<i64> identity(static_cast<std::size_t>(pb.n()));
  std::iota(identity.begin(), identity.end(), i64{0});
  const engine::FactorSpec spec{engine::FactorKind::kDense, tile, 0.0, -1};
  return std::make_shared<const engine::CholeskyFactor>(
      engine::CholeskyFactor::factor_ordered(rt, *pb.cov, identity, spec));
}

// ---------------------------------------------------------------- fault lib

TEST(FaultLib, PlanCountsHitsAndTripsTheScheduledWindow) {
  fault::arm("test.site", /*first_hit=*/2, /*trips=*/2);
  int threw = 0;
  for (int i = 0; i < 5; ++i) {
    try {
      PARMVN_FAULT_POINT("test.site");
    } catch (const Error& e) {
      ++threw;
      EXPECT_NE(std::string(e.what()).find("test.site"), std::string::npos);
    }
  }
  EXPECT_EQ(threw, 2) << "hits 2 and 3 trip, 1/4/5 pass";
  EXPECT_EQ(fault::hits("test.site"), 5);
  EXPECT_EQ(fault::trips("test.site"), 2);
  fault::disarm("test.site");
  EXPECT_EQ(fault::hits("test.site"), 0);
  EXPECT_NO_THROW(PARMVN_FAULT_POINT("test.site"));
}

TEST(FaultLib, ScopedFaultDisarmsOnScopeExit) {
  {
    const fault::ScopedFault f("test.scoped");
    EXPECT_THROW(PARMVN_FAULT_POINT("test.scoped"), Error);
    EXPECT_NO_THROW(PARMVN_FAULT_POINT("test.scoped"));  // plan spent
  }
  EXPECT_NO_THROW(PARMVN_FAULT_POINT("test.scoped"));
  EXPECT_EQ(fault::hits("test.scoped"), 0) << "plan gone after scope exit";
}

TEST(FaultLib, UnarmedSitesNeverPayThePlanLookup) {
  // With no plan armed anywhere, the macro must not even take the mutex —
  // observable as hits() staying zero for a site that was never armed.
  fault::disarm_all();
  PARMVN_FAULT_POINT("test.cold");
  EXPECT_EQ(fault::hits("test.cold"), 0);
}

// ------------------------------------------------------------ cancel token

TEST(Cancel, PendingTasksBecomeNoOpsAndRuntimeStaysReusable) {
  for (const rt::SchedulerKind arm : kArms) {
    rt::Runtime rt(2, /*enable_trace=*/false, arm);
    std::atomic<int> gates_entered{0};
    std::atomic<bool> release_gates{false};
    std::atomic<int> ran{0};
    // Park both workers so the queued work cannot start before cancel().
    for (int g = 0; g < 2; ++g)
      rt.submit("gate", {}, [&] {
        gates_entered.fetch_add(1);
        while (!release_gates.load()) std::this_thread::yield();
      });
    while (gates_entered.load() < 2) std::this_thread::yield();
    for (int i = 0; i < 64; ++i)
      rt.submit("work", {}, [&] { ran.fetch_add(1); });

    rt.cancel();
    EXPECT_TRUE(rt.cancel_requested());
    release_gates.store(true);
    EXPECT_NO_THROW(rt.wait_all()) << "cancel is not an error";
    EXPECT_EQ(ran.load(), 0) << "queued tasks were skipped";
    EXPECT_FALSE(rt.cancel_requested()) << "flag clears at the epoch boundary";

    // The runtime is reusable after a cancelled epoch.
    for (int i = 0; i < 8; ++i)
      rt.submit("work2", {}, [&] { ran.fetch_add(1); });
    rt.wait_all();
    EXPECT_EQ(ran.load(), 8);
    EXPECT_EQ(rt.handles_leaked(), 0);
  }
}

TEST(Cancel, InlineRuntimeSkipsSubmitsAfterCancel) {
  rt::Runtime rt(0);
  int ran = 0;
  rt.cancel();
  rt.submit("work", {}, [&] { ++ran; });
  EXPECT_EQ(ran, 0);
  rt.wait_all();  // clears the flag
  rt.submit("work", {}, [&] { ++ran; });
  EXPECT_EQ(ran, 1);
}

// --------------------------------------------------- dense pivot + jitter

TEST(DenseFactor, PivotFaultPropagatesAsTypedErrorOnBothArms) {
  const SpatialProblem pb(6);
  for (const rt::SchedulerKind arm : kArms) {
    rt::Runtime rt(2, false, arm);
    {
      const fault::ScopedFault f("tile.potrf.pivot");
      EXPECT_THROW((void)dense_factor(rt, pb), Error);
    }
    // Recovery: the same runtime factors fine once the fault is gone.
    EXPECT_GT(dense_factor(rt, pb)->dim(), 0);
    EXPECT_EQ(rt.handles_leaked(), 0);
  }
}

TEST(DenseFactor, JitterRetryRecoversFromATransientPivotFault) {
  const SpatialProblem pb(6);
  rt::Runtime rt(2);
  tile::TileMatrix a(rt, pb.n(), pb.n(), 12, tile::Layout::kLowerSymmetric);
  a.generate_async(rt, *pb.cov);
  rt.wait_all();

  const fault::ScopedFault f("tile.potrf.pivot", /*first_hit=*/1, /*trips=*/1);
  const tile::PotrfTiledInfo info = tile::potrf_tiled_safeguarded(rt, a, 2);
  EXPECT_EQ(info.retries, 1) << "attempt 1 tripped, attempt 2 clean";
  EXPECT_GT(info.diag_boost, 0.0);
}

TEST(DenseFactor, RetryZeroIsTheOldThrowingBehavior) {
  const SpatialProblem pb(5);
  rt::Runtime rt(2);
  tile::TileMatrix a(rt, pb.n(), pb.n(), 12, tile::Layout::kLowerSymmetric);
  a.generate_async(rt, *pb.cov);
  rt.wait_all();
  const fault::ScopedFault f("tile.potrf.pivot");
  EXPECT_THROW((void)tile::potrf_tiled_safeguarded(rt, a, 0), Error);
}

TEST(DenseFactor, GenuinelyIndefiniteMatrixExhaustsTheLadder) {
  // Eps-scale diagonal boosts must not paper over a structurally indefinite
  // matrix: the ladder exhausts and the typed error survives.
  rt::Runtime rt(1);
  la::Matrix sigma = la::Matrix::identity(8);
  sigma.view()(5, 5) = -1.0;
  const la::DenseGenerator gen(std::move(sigma));
  tile::TileMatrix a(rt, 8, 8, 4, tile::Layout::kLowerSymmetric);
  a.generate_async(rt, gen);
  rt.wait_all();
  EXPECT_THROW((void)tile::potrf_tiled_safeguarded(rt, a, 3), Error);
}

TEST(DenseFactor, JitterKnobWithoutARetryIsBitwiseFree) {
  // jitter_retries > 0 with a clean factorization never perturbs anything:
  // the engine must produce bit-identical results either way.
  const SpatialProblem pb(6);
  rt::Runtime rt(2);
  std::vector<i64> identity(static_cast<std::size_t>(pb.n()));
  std::iota(identity.begin(), identity.end(), i64{0});
  engine::FactorSpec plain{engine::FactorKind::kDense, 16, 0.0, -1};
  engine::FactorSpec guarded = plain;
  guarded.jitter_retries = 3;

  const std::vector<double> a(static_cast<std::size_t>(pb.n()), -0.4);
  const std::vector<double> b(static_cast<std::size_t>(pb.n()), kInf);
  double probs[2];
  int i = 0;
  for (const engine::FactorSpec& spec : {plain, guarded}) {
    auto f = std::make_shared<const engine::CholeskyFactor>(
        engine::CholeskyFactor::factor_ordered(rt, *pb.cov, identity, spec));
    EXPECT_FALSE(f->degraded());
    const engine::PmvnEngine eng(rt, f, small_opts());
    probs[i++] = eng.evaluate_one({a, b, 7, false}).prob;
  }
  EXPECT_DOUBLE_EQ(probs[0], probs[1]);
}

// ------------------------------------------------------- TLR degradation

TEST(TlrFactor, PersistentNonPdFallsBackToDenseWhenOptedIn) {
  const SpatialProblem pb(6);
  rt::Runtime rt(2);
  std::vector<i64> identity(static_cast<std::size_t>(pb.n()));
  std::iota(identity.begin(), identity.end(), i64{0});
  engine::FactorSpec spec{engine::FactorKind::kTlr, 12, 1e-7, -1};

  {
    // Trip every TLR pivot attempt: the built-in retry ladder exhausts.
    const fault::ScopedFault f("tlr.potrf.pivot", 1, 1000);
    EXPECT_THROW((void)engine::CholeskyFactor::factor_ordered(
                     rt, *pb.cov, identity, spec),
                 Error)
        << "without the opt-in, exhaustion stays a typed error";
  }
  {
    const fault::ScopedFault f("tlr.potrf.pivot", 1, 1000);
    spec.fallback = true;
    const engine::CholeskyFactor fb =
        engine::CholeskyFactor::factor_ordered(rt, *pb.cov, identity, spec);
    EXPECT_EQ(fb.kind(), engine::FactorKind::kDense)
        << "last rung of the ladder: the dense arm";
    EXPECT_TRUE(fb.degraded());
  }
  // No fault: the fallback knob alone must not change the arm.
  const engine::CholeskyFactor ok =
      engine::CholeskyFactor::factor_ordered(rt, *pb.cov, identity, spec);
  EXPECT_EQ(ok.kind(), engine::FactorKind::kTlr);
  EXPECT_FALSE(ok.degraded());
  EXPECT_EQ(rt.handles_leaked(), 0);
}

// -------------------------------------------- engine sweep failure paths

TEST(EngineFaults, EverySweepSiteReleasesHandlesAndLeavesEngineReusable) {
  // The four distinct failure surfaces of one sweep round: a task body
  // (engine.qmc), an init task (engine.panel_init), a host-side submit
  // (engine.submit), and handle registration itself (engine.register).
  // After each injected failure the engine must still produce bit-identical
  // results, and the round handles must have been returned.
  const SpatialProblem pb(6);
  for (const rt::SchedulerKind arm : kArms) {
    rt::Runtime rt(2, false, arm);
    const auto factor = dense_factor(rt, pb);
    const engine::PmvnEngine eng(rt, factor, small_opts());
    const std::vector<double> a(static_cast<std::size_t>(pb.n()), -0.5);
    const std::vector<double> b(static_cast<std::size_t>(pb.n()), kInf);
    const engine::LimitSet query{a, b, 11, true};
    const engine::QueryResult baseline = eng.evaluate_one(query);

    for (const char* site :
         {"engine.qmc", "engine.panel_init", "engine.submit",
          "engine.register"}) {
      const rt::DataHandle before = rt.register_data();
      {
        const fault::ScopedFault f(site);
        EXPECT_THROW((void)eng.evaluate_one(query), Error) << site;
      }
      const engine::QueryResult after = eng.evaluate_one(query);
      EXPECT_DOUBLE_EQ(after.prob, baseline.prob) << site;
      EXPECT_DOUBLE_EQ(after.error3sigma, baseline.error3sigma) << site;
      ASSERT_EQ(after.prefix_prob.size(), baseline.prefix_prob.size()) << site;
      for (std::size_t i = 0; i < baseline.prefix_prob.size(); ++i)
        EXPECT_DOUBLE_EQ(after.prefix_prob[i], baseline.prefix_prob[i])
            << site << " prefix=" << i;
      const rt::DataHandle end = rt.register_data();
      EXPECT_LE(end.id(), before.id() + 64)
          << site << ": round handles must be released on the error path";
      rt.release_data(before);
      rt.release_data(end);
    }
    EXPECT_EQ(rt.handles_leaked(), 0);
  }
}

TEST(EngineFaults, FactorEntryFaultIsATypedError) {
  const SpatialProblem pb(5);
  rt::Runtime rt(1);
  const fault::ScopedFault f("engine.factor");
  EXPECT_THROW((void)dense_factor(rt, pb), Error);
}

// ------------------------------------------------------ EP tier demotion

TEST(EpScreen, SweepFaultDemotesToQmcInsteadOfFailingTheQuery) {
  const SpatialProblem pb(6);
  rt::Runtime rt(2);
  const auto factor = dense_factor(rt, pb);

  engine::EngineOptions untiered = small_opts();
  engine::EngineOptions tiered = untiered;
  tiered.tiered = true;

  const std::vector<double> a(static_cast<std::size_t>(pb.n()), -2.5);
  const std::vector<double> b(static_cast<std::size_t>(pb.n()), kInf);
  engine::LimitSet query{a, b, 5, false};
  query.decision = 0.5;  // far from the high probability: EP would decide it

  const engine::PmvnEngine eng_untiered(rt, factor, untiered);
  const engine::PmvnEngine eng_tiered(rt, factor, tiered);
  const engine::QueryResult via_qmc = eng_untiered.evaluate_one(query);

  // Sanity: without the fault, the tiered path screens this query out.
  const engine::QueryResult screened = eng_tiered.evaluate_one(query);
  ASSERT_EQ(screened.method, engine::EvalMethod::kEp);

  // Every EP sweep fails -> the query is demoted to the authoritative QMC
  // tier, bitwise equal to the untiered run (it only un-skips work).
  const fault::ScopedFault f("ep.sweep", 1, 1000);
  const engine::QueryResult demoted = eng_tiered.evaluate_one(query);
  EXPECT_EQ(demoted.method, engine::EvalMethod::kQmc);
  EXPECT_DOUBLE_EQ(demoted.prob, via_qmc.prob);
  EXPECT_DOUBLE_EQ(demoted.error3sigma, via_qmc.error3sigma);
}

// ------------------------------------------------------------- deadlines

TEST(Deadline, BatchRetiresWithPartialResultsInsteadOfRunningOver) {
  // 16 queries whose full budget takes far longer than the deadline: every
  // query must come back with at least one shift block, marked kDeadline,
  // not converged — and nothing hangs or aborts.
  const SpatialProblem pb(8);
  for (const rt::SchedulerKind arm : kArms) {
    rt::Runtime rt(4, false, arm);
    const auto factor = dense_factor(rt, pb);
    engine::EngineOptions opts;
    opts.samples_per_shift = 5000;
    opts.shifts = 32;
    opts.sampler = stats::SamplerKind::kRichtmyer;
    opts.deadline_ms = 1;
    const engine::PmvnEngine eng(rt, factor, opts);

    const std::vector<double> b(static_cast<std::size_t>(pb.n()), kInf);
    std::vector<std::vector<double>> lows;
    std::vector<engine::LimitSet> batch;
    for (int q = 0; q < 16; ++q) {
      lows.emplace_back(static_cast<std::size_t>(pb.n()),
                        -1.0 + 0.1 * static_cast<double>(q));
      batch.push_back({lows.back(), b, static_cast<u64>(q + 1), false});
    }
    const std::vector<engine::QueryResult> results = eng.evaluate(batch);
    ASSERT_EQ(results.size(), batch.size());
    for (std::size_t q = 0; q < results.size(); ++q) {
      const engine::QueryResult& res = results[q];
      EXPECT_EQ(res.method, engine::EvalMethod::kDeadline) << q;
      EXPECT_FALSE(res.converged) << q;
      EXPECT_GE(res.shifts_used, 1) << "always at least one block";
      EXPECT_LT(res.shifts_used, opts.shifts) << q;
      EXPECT_EQ(res.samples_used,
                static_cast<i64>(res.shifts_used) * opts.samples_per_shift);
      EXPECT_TRUE(std::isfinite(res.prob)) << q;
      EXPECT_GE(res.prob, 0.0);
      EXPECT_LE(res.prob, 1.0 + 1e-12);
    }
    EXPECT_EQ(rt.handles_leaked(), 0);
  }
}

TEST(Deadline, GenerousDeadlineMatchesTheFixedBudgetBitwise) {
  // The deadline reroutes the fixed-budget sweep through the round loop;
  // per-sample products are range-independent, so an unexpired deadline
  // must reproduce the deadline-free probabilities bitwise.
  const SpatialProblem pb(5);
  rt::Runtime rt(2);
  const auto factor = dense_factor(rt, pb);
  engine::EngineOptions off = small_opts();
  engine::EngineOptions on = off;
  on.deadline_ms = i64{1000} * 3600;  // one hour: never expires here

  const std::vector<double> a(static_cast<std::size_t>(pb.n()), -0.3);
  const std::vector<double> b(static_cast<std::size_t>(pb.n()), kInf);
  const engine::LimitSet query{a, b, 9, false};
  const engine::QueryResult r_off =
      engine::PmvnEngine(rt, factor, off).evaluate_one(query);
  const engine::QueryResult r_on =
      engine::PmvnEngine(rt, factor, on).evaluate_one(query);
  EXPECT_DOUBLE_EQ(r_on.prob, r_off.prob);
  EXPECT_DOUBLE_EQ(r_on.error3sigma, r_off.error3sigma);
  EXPECT_EQ(r_on.method, engine::EvalMethod::kQmc);
  EXPECT_EQ(r_on.shifts_used, off.shifts);
}

TEST(Deadline, TieredBatchUnderDeadlineStillAnswersEveryQuery) {
  const SpatialProblem pb(6);
  rt::Runtime rt(2);
  const auto factor = dense_factor(rt, pb);
  engine::EngineOptions opts;
  opts.samples_per_shift = 4000;
  opts.shifts = 16;
  opts.sampler = stats::SamplerKind::kRichtmyer;
  opts.tiered = true;
  opts.deadline_ms = 1;
  const engine::PmvnEngine eng(rt, factor, opts);

  const std::vector<double> b(static_cast<std::size_t>(pb.n()), kInf);
  std::vector<std::vector<double>> lows;
  std::vector<engine::LimitSet> batch;
  for (int q = 0; q < 8; ++q) {
    lows.emplace_back(static_cast<std::size_t>(pb.n()), -2.0 + 0.3 * q);
    engine::LimitSet ls{lows.back(), b, static_cast<u64>(q + 1), false};
    ls.decision = 0.5;
    batch.push_back(ls);
  }
  const std::vector<engine::QueryResult> results = eng.evaluate(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (const engine::QueryResult& res : results) {
    EXPECT_TRUE(std::isfinite(res.prob));
    // Every query was answered by some tier: the EP screen, a (possibly
    // partial) QMC sweep, or a deadline stop with >= 1 block behind it.
    if (res.method != engine::EvalMethod::kEp)
      EXPECT_GE(res.shifts_used, 1);
  }
}

// ---------------------------------------- per-query status in excursion

TEST(CrdStatus, FailingOrderingGroupDoesNotAbortItsSiblings) {
  // kAbove and kBelow produce opposite marginal orderings -> two factor
  // groups. Failing the first group's factorization must leave the second
  // group's result intact and typed-mark the first.
  const SpatialProblem pb(5);
  rt::Runtime rt(2);
  // A strictly monotone mean ramp: the kAbove and kBelow marginal orderings
  // are exact reverses of each other, so the two queries land in two
  // distinct factor groups (a constant mean would tie every marginal and
  // collapse them into one).
  std::vector<double> mean(static_cast<std::size_t>(pb.n()));
  for (std::size_t i = 0; i < mean.size(); ++i)
    mean[i] = 0.02 * static_cast<double>(i);
  core::CrdOptions opts;
  opts.tile = 16;
  opts.pmvn.samples_per_shift = 200;
  opts.pmvn.shifts = 4;
  opts.pmvn.sampler = stats::SamplerKind::kRichtmyer;

  std::vector<core::CrdQuery> queries(2);
  queries[0] = {0.1, 0.05, core::CrdDirection::kAbove, {}};
  queries[1] = {0.1, 0.05, core::CrdDirection::kBelow, {}};

  const fault::ScopedFault f("engine.factor", /*first_hit=*/1, /*trips=*/1);
  const std::vector<core::CrdResult> results =
      core::detect_confidence_regions(rt, *pb.cov, mean, opts, queries);
  ASSERT_EQ(results.size(), 2u);

  int failed = 0, succeeded = 0;
  for (const core::CrdResult& res : results) {
    EXPECT_FALSE(res.marginal.empty()) << "marginals precede any failure";
    EXPECT_FALSE(res.order.empty());
    if (res.status.ok()) {
      ++succeeded;
      EXPECT_EQ(static_cast<i64>(res.confidence.size()), pb.n());
      EXPECT_EQ(static_cast<i64>(res.region.size()), pb.n());
    } else {
      ++failed;
      EXPECT_EQ(res.status.code, StatusCode::kFactorFailed);
      EXPECT_NE(res.status.message.find("fault injected"), std::string::npos);
      EXPECT_TRUE(res.region.empty());
    }
  }
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(succeeded, 1);
  EXPECT_EQ(rt.handles_leaked(), 0);
}

TEST(CrdStatus, SweepFailureIsEvalFailedAndSingleQueryStillThrows) {
  const SpatialProblem pb(5);
  rt::Runtime rt(2);
  const std::vector<double> mean(static_cast<std::size_t>(pb.n()), 0.0);
  core::CrdOptions opts;
  opts.tile = 16;
  opts.pmvn.samples_per_shift = 200;
  opts.pmvn.shifts = 4;
  opts.pmvn.sampler = stats::SamplerKind::kRichtmyer;
  const std::vector<core::CrdQuery> queries(
      1, {0.1, 0.05, core::CrdDirection::kAbove, {}});

  {
    const fault::ScopedFault f("engine.qmc", 1, 1000);
    const std::vector<core::CrdResult> results =
        core::detect_confidence_regions(rt, *pb.cov, mean, opts, queries);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status.code, StatusCode::kEvalFailed);
  }
  {
    // The single-query wrapper keeps its throwing contract.
    const fault::ScopedFault f("engine.qmc", 1, 1000);
    EXPECT_THROW((void)core::detect_confidence_region(rt, *pb.cov, mean, opts),
                 Error);
  }
  // And the same call succeeds once the fault is gone.
  const core::CrdResult ok =
      core::detect_confidence_region(rt, *pb.cov, mean, opts);
  EXPECT_TRUE(ok.status.ok());
  EXPECT_EQ(static_cast<i64>(ok.region.size()), pb.n());
}

// -------------------------------------------------- factor-cache takeover

TEST(FactorCache, WaiterTakesOverWhenTheInFlightFactorizationFails) {
  // Two threads race for one key while the first factorization attempt is
  // scheduled to fail: exactly one caller sees the typed error, the other
  // takes over and gets a valid factor, and the cache ends with one entry.
  const SpatialProblem pb(5);
  rt::Runtime rt(2);
  std::vector<i64> identity(static_cast<std::size_t>(pb.n()));
  std::iota(identity.begin(), identity.end(), i64{0});
  const engine::FactorSpec spec{engine::FactorKind::kDense, 16, 0.0, -1};
  engine::FactorCache cache(4);

  const fault::ScopedFault f("engine.factor", /*first_hit=*/1, /*trips=*/1);
  std::atomic<int> errors{0};
  std::atomic<int> good{0};
  std::vector<std::thread> threads;
  threads.reserve(2);
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      try {
        const auto factor = cache.get_or_factor(rt, *pb.cov, identity, spec);
        if (factor != nullptr && factor->dim() == pb.n()) good.fetch_add(1);
      } catch (const Error&) {
        errors.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(errors.load(), 1) << "exactly the scheduled failure";
  EXPECT_EQ(good.load(), 1) << "the other caller recovered";
  EXPECT_EQ(cache.size(), 1u);
  // The takeover counter records the waiter-observed-failure schedule (the
  // loser may instead have arrived after cleanup, a plain second miss), so
  // the deterministic claim is the bound, not the exact schedule — see the
  // concurrent-site note in common/fault.hpp.
  EXPECT_LE(cache.stats().in_flight_takeovers, 1);
  EXPECT_EQ(cache.stats().misses, 2)
      << "both callers paid a factorization (a takeover is also a miss)";
  // The key is not wedged: a later call hits the recovered entry.
  (void)cache.get_or_factor(rt, *pb.cov, identity, spec);
  EXPECT_GE(cache.stats().hits, 1);
}

// ------------------------------------------------------- vecchia + trace

TEST(VecchiaFactor, FitFaultPropagatesAndRebuildSucceeds) {
  const SpatialProblem pb(5);
  rt::Runtime rt(2);
  std::vector<i64> identity(static_cast<std::size_t>(pb.n()));
  std::iota(identity.begin(), identity.end(), i64{0});
  engine::FactorSpec spec{engine::FactorKind::kVecchia, 16, 0.0, -1};
  spec.vecchia_m = 6;
  {
    const fault::ScopedFault f("vecchia.fit");
    EXPECT_THROW((void)engine::CholeskyFactor::factor_ordered(
                     rt, *pb.cov, identity, spec),
                 Error);
  }
  const engine::CholeskyFactor ok =
      engine::CholeskyFactor::factor_ordered(rt, *pb.cov, identity, spec);
  EXPECT_EQ(ok.kind(), engine::FactorKind::kVecchia);
  EXPECT_EQ(rt.handles_leaked(), 0);
}

TEST(Trace, RecordFaultDisablesTracingInsteadOfFailingTheEpoch) {
  for (const rt::SchedulerKind arm : kArms) {
    rt::Runtime rt(2, /*enable_trace=*/true, arm);
    std::atomic<int> ran{0};
    {
      const fault::ScopedFault f("rt.trace", /*first_hit=*/1, /*trips=*/1);
      for (int i = 0; i < 8; ++i)
        rt.submit("traced", {}, [&] { ran.fetch_add(1); });
      EXPECT_NO_THROW(rt.wait_all())
          << "a trace bookkeeping failure must never fail user work";
    }
    EXPECT_EQ(ran.load(), 8) << "every task still ran";
    EXPECT_LT(rt.trace().size(), 8u)
        << "the failed record is lost and tracing is disabled";
  }
}

// ----------------------------------------------------------- leak audit

TEST(HandleHygiene, NoHandleLeakedAcrossTheWholeSuite) {
  EXPECT_EQ(rt::Runtime::total_handles_leaked(), 0);
}

}  // namespace
