// Tests for the task runtime: dependency inference (RAW/WAR/WAW), sequential
// consistency under concurrency, error cancellation, tracing, inline mode.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <mutex>
#include <numeric>
#include <vector>

#include "common/contracts.hpp"
#include "runtime/runtime.hpp"
#include "stats/rng.hpp"

namespace {

using namespace parmvn;
using rt::Access;
using rt::DataHandle;
using rt::Runtime;

TEST(Runtime, RawDependencyOrdersWriteBeforeRead) {
  Runtime rt(4);
  auto h = rt.register_data("x");
  int x = 0;
  int seen = -1;
  rt.submit("write", {{h, Access::kWrite}}, [&] { x = 42; });
  rt.submit("read", {{h, Access::kRead}}, [&] { seen = x; });
  rt.wait_all();
  EXPECT_EQ(seen, 42);
}

TEST(Runtime, ChainOfReadWritesIsSequential) {
  Runtime rt(4);
  auto h = rt.register_data();
  std::vector<int> order;
  for (int i = 0; i < 64; ++i) {
    rt.submit("step", {{h, Access::kReadWrite}}, [&order, i] {
      order.push_back(i);
    });
  }
  rt.wait_all();
  std::vector<int> expect(64);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

TEST(Runtime, WarHazardWriterWaitsForReaders) {
  Runtime rt(4);
  auto h = rt.register_data();
  std::atomic<int> readers_done{0};
  int value = 7;
  std::vector<int> reads(8, -1);
  for (int i = 0; i < 8; ++i) {
    rt.submit("read", {{h, Access::kRead}}, [&, i] {
      reads[static_cast<std::size_t>(i)] = value;
      readers_done.fetch_add(1);
    });
  }
  int readers_at_write = -1;
  rt.submit("write", {{h, Access::kWrite}}, [&] {
    readers_at_write = readers_done.load();
    value = 99;
  });
  rt.wait_all();
  EXPECT_EQ(readers_at_write, 8) << "writer must wait for all prior readers";
  for (int r : reads) EXPECT_EQ(r, 7);
}

TEST(Runtime, DiamondDependency) {
  Runtime rt(4);
  auto a = rt.register_data();
  auto b = rt.register_data();
  auto c = rt.register_data();
  double va = 0, vb = 0, vc = 0, vd = 0;
  rt.submit("top", {{a, Access::kWrite}}, [&] { va = 2.0; });
  rt.submit("left", {{a, Access::kRead}, {b, Access::kWrite}},
            [&] { vb = va * 3.0; });
  rt.submit("right", {{a, Access::kRead}, {c, Access::kWrite}},
            [&] { vc = va + 5.0; });
  rt.submit("bottom", {{b, Access::kRead}, {c, Access::kRead}},
            [&] { vd = vb + vc; });
  rt.wait_all();
  EXPECT_DOUBLE_EQ(vd, 13.0);
}

// Sequential-consistency stress: a random DAG of arithmetic tasks over a
// bank of cells must produce identical results threaded and inline, because
// inline mode executes in submission order (the reference semantics).
double run_random_program(int threads, u64 seed) {
  constexpr int kCells = 24;
  constexpr int kTasks = 800;
  Runtime rt(threads);
  std::vector<DataHandle> handles;
  std::vector<double> cells(kCells);
  for (int i = 0; i < kCells; ++i) {
    handles.push_back(rt.register_data());
    cells[static_cast<std::size_t>(i)] = i + 1;
  }
  stats::Xoshiro256pp g(seed);
  for (int t = 0; t < kTasks; ++t) {
    const int dst = static_cast<int>(g.next() % kCells);
    const int src1 = static_cast<int>(g.next() % kCells);
    const int src2 = static_cast<int>(g.next() % kCells);
    const double coef = g.next_u01();
    std::vector<rt::DataAccess> acc{{handles[static_cast<std::size_t>(dst)],
                                     Access::kReadWrite}};
    if (src1 != dst)
      acc.push_back({handles[static_cast<std::size_t>(src1)], Access::kRead});
    if (src2 != dst && src2 != src1)
      acc.push_back({handles[static_cast<std::size_t>(src2)], Access::kRead});
    rt.submit("mix", acc, [&cells, dst, src1, src2, coef] {
      const double a = cells[static_cast<std::size_t>(src1)];
      const double b = cells[static_cast<std::size_t>(src2)];
      double& d = cells[static_cast<std::size_t>(dst)];
      d = 0.5 * d + coef * std::sin(a) + (1.0 - coef) * std::cos(b);
    });
  }
  rt.wait_all();
  double checksum = 0.0;
  for (double v : cells) checksum += v;
  return checksum;
}

TEST(Runtime, SequentialConsistencyStress) {
  for (u64 seed : {1ull, 2ull, 3ull}) {
    const double inline_result = run_random_program(0, seed);
    const double t2 = run_random_program(2, seed);
    const double t8 = run_random_program(8, seed);
    EXPECT_DOUBLE_EQ(inline_result, t2) << "seed=" << seed;
    EXPECT_DOUBLE_EQ(inline_result, t8) << "seed=" << seed;
  }
}

TEST(Runtime, IndependentTasksAllRun) {
  Runtime rt(8);
  std::atomic<int> count{0};
  std::vector<DataHandle> handles;
  for (int i = 0; i < 100; ++i) handles.push_back(rt.register_data());
  for (int i = 0; i < 100; ++i) {
    rt.submit("inc", {{handles[static_cast<std::size_t>(i)], Access::kWrite}},
              [&] { count.fetch_add(1); });
  }
  rt.wait_all();
  EXPECT_EQ(count.load(), 100);
  EXPECT_GE(rt.tasks_executed(), 100);
}

TEST(Runtime, ReleasedHandlesAreRecycled) {
  Runtime rt(2);
  const DataHandle first = rt.register_data("transient");
  rt.release_data(first);
  const DataHandle reused = rt.register_data("next");
  EXPECT_EQ(reused.id(), first.id())
      << "released slots must be reused, not appended";

  // The recycled handle is fully functional for dependency inference.
  int x = 0, seen = -1;
  rt.submit("write", {{reused, Access::kWrite}}, [&] { x = 7; });
  rt.submit("read", {{reused, Access::kRead}}, [&] { seen = x; });
  rt.wait_all();
  EXPECT_EQ(seen, 7);

  // Registering after a burst of register/release cycles does not grow the
  // id space: a long-lived runtime serving transient per-round data stays
  // bounded.
  const DataHandle before = rt.register_data();
  for (int round = 0; round < 50; ++round) {
    std::vector<DataHandle> transient;
    for (int i = 0; i < 8; ++i) transient.push_back(rt.register_data());
    for (const DataHandle h : transient) rt.release_data(h);
  }
  const DataHandle after = rt.register_data();
  EXPECT_LE(after.id(), before.id() + 9);
}

TEST(Runtime, DoubleReleaseIsRejected) {
  Runtime rt(1);
  const DataHandle h = rt.register_data();
  rt.release_data(h);
  EXPECT_THROW(rt.release_data(h), Error);
  EXPECT_THROW(rt.release_data(DataHandle{}), Error);
}

TEST(Runtime, ReleaseWhileEpochReferencesHandleIsRejected) {
  Runtime rt(1);
  const DataHandle h = rt.register_data();
  rt.submit("touch", {{h, Access::kWrite}}, [] {});
  // The epoch still tracks h until wait_all(); releasing now would let a
  // recycled slot race the in-flight task.
  EXPECT_THROW(rt.release_data(h), Error);
  rt.wait_all();
  rt.release_data(h);  // legal once the epoch has drained
}

TEST(Runtime, ExceptionPropagatesAndCancels) {
  Runtime rt(2);
  auto h = rt.register_data();
  std::atomic<int> ran{0};
  rt.submit("boom", {{h, Access::kWrite}},
            [] { throw Error("task exploded"); });
  // 50 dependent tasks should all be cancelled (or at least not crash).
  for (int i = 0; i < 50; ++i) {
    rt.submit("after", {{h, Access::kReadWrite}}, [&] { ran.fetch_add(1); });
  }
  EXPECT_THROW(rt.wait_all(), Error);
  EXPECT_EQ(ran.load(), 0) << "tasks after the failure must be cancelled";
}

TEST(Runtime, DestructorSurfacesUnretrievedError) {
  // Regression: the destructor used to drain the final epoch and then drop a
  // pending first_error on the floor. It cannot rethrow (destructor), but it
  // must at least surface the what() on stderr.
  ::testing::internal::CaptureStderr();
  {
    Runtime rt(2);
    auto h = rt.register_data();
    rt.submit("boom", {{h, Access::kWrite}},
              [] { throw Error("lost-error-marker"); });
    // No wait_all(): destruction is the only chance to see the error.
  }
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("lost-error-marker"), std::string::npos) << err;
}

TEST(Runtime, DestructorSurfacesUnretrievedErrorInlineMode) {
  ::testing::internal::CaptureStderr();
  {
    Runtime rt(0);
    auto h = rt.register_data();
    rt.submit("boom", {{h, Access::kWrite}},
              [] { throw Error("inline-lost-error-marker"); });
  }
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("inline-lost-error-marker"), std::string::npos) << err;
}

TEST(Runtime, DestructorQuietWhenErrorWasRetrieved) {
  ::testing::internal::CaptureStderr();
  {
    Runtime rt(2);
    auto h = rt.register_data();
    rt.submit("boom", {{h, Access::kWrite}}, [] { throw Error("seen"); });
    EXPECT_THROW(rt.wait_all(), Error);  // error consumed here
  }
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST(Runtime, UsableAfterErrorEpoch) {
  Runtime rt(2);
  auto h = rt.register_data();
  rt.submit("boom", {{h, Access::kWrite}}, [] { throw Error("x"); });
  EXPECT_THROW(rt.wait_all(), Error);
  int val = 0;
  rt.submit("ok", {{h, Access::kWrite}}, [&] { val = 5; });
  rt.wait_all();
  EXPECT_EQ(val, 5);
}

TEST(Runtime, WaitAllIdempotentAndReusable) {
  Runtime rt(2);
  auto h = rt.register_data();
  int x = 0;
  rt.submit("a", {{h, Access::kReadWrite}}, [&] { x += 1; });
  rt.wait_all();
  rt.wait_all();
  rt.submit("b", {{h, Access::kReadWrite}}, [&] { x += 10; });
  rt.wait_all();
  EXPECT_EQ(x, 11);
}

TEST(Runtime, InlineModeExecutesImmediately) {
  Runtime rt(0);
  auto h = rt.register_data();
  int x = 0;
  rt.submit("now", {{h, Access::kWrite}}, [&] { x = 1; });
  EXPECT_EQ(x, 1);  // no wait_all needed
  rt.wait_all();
  EXPECT_EQ(rt.num_threads(), 0);
}

TEST(Runtime, InlineModeErrorSurfacesAtWait) {
  Runtime rt(0);
  auto h = rt.register_data();
  rt.submit("boom", {{h, Access::kWrite}}, [] { throw Error("inline"); });
  int ran = 0;
  rt.submit("after", {{h, Access::kRead}}, [&] { ran = 1; });
  EXPECT_THROW(rt.wait_all(), Error);
  EXPECT_EQ(ran, 0);
}

TEST(Runtime, TraceRecordsTasks) {
  Runtime rt(2, /*enable_trace=*/true);
  auto h = rt.register_data();
  for (int i = 0; i < 5; ++i)
    rt.submit("traced", {{h, Access::kReadWrite}}, [] {});
  rt.wait_all();
  ASSERT_EQ(rt.trace().size(), 5u);
  for (const auto& rec : rt.trace()) {
    EXPECT_EQ(rec.name, "traced");
    EXPECT_GE(rec.end_s, rec.start_s);
    EXPECT_GE(rec.worker, 0);
  }
  EXPECT_FALSE(rt::summarize_trace(rt.trace()).empty());
}

TEST(Runtime, InvalidHandleRejected) {
  Runtime rt(1);
  DataHandle bogus;
  EXPECT_THROW(
      rt.submit("bad", {{bogus, Access::kRead}}, [] {}),
      Error);
  rt.wait_all();
}

TEST(Runtime, PriorityDoesNotBreakCorrectness) {
  Runtime rt(3);
  auto h = rt.register_data();
  std::vector<int> order;
  for (int i = 0; i < 20; ++i) {
    rt.submit("p", {{h, Access::kReadWrite}},
              [&order, i] { order.push_back(i); }, /*priority=*/i % 3);
  }
  rt.wait_all();
  // Dependencies force submission order regardless of priorities.
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

}  // namespace
