// Tests for the task runtime: dependency inference (RAW/WAR/WAW), sequential
// consistency under concurrency, error cancellation, tracing, inline mode.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "common/contracts.hpp"
#include "runtime/runtime.hpp"
#include "stats/rng.hpp"

namespace {

using namespace parmvn;
using rt::Access;
using rt::DataHandle;
using rt::Runtime;

TEST(Runtime, RawDependencyOrdersWriteBeforeRead) {
  Runtime rt(4);
  auto h = rt.register_data("x");
  int x = 0;
  int seen = -1;
  rt.submit("write", {{h, Access::kWrite}}, [&] { x = 42; });
  rt.submit("read", {{h, Access::kRead}}, [&] { seen = x; });
  rt.wait_all();
  EXPECT_EQ(seen, 42);
}

TEST(Runtime, ChainOfReadWritesIsSequential) {
  Runtime rt(4);
  auto h = rt.register_data();
  std::vector<int> order;
  for (int i = 0; i < 64; ++i) {
    rt.submit("step", {{h, Access::kReadWrite}}, [&order, i] {
      order.push_back(i);
    });
  }
  rt.wait_all();
  std::vector<int> expect(64);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

TEST(Runtime, WarHazardWriterWaitsForReaders) {
  Runtime rt(4);
  auto h = rt.register_data();
  std::atomic<int> readers_done{0};
  int value = 7;
  std::vector<int> reads(8, -1);
  for (int i = 0; i < 8; ++i) {
    rt.submit("read", {{h, Access::kRead}}, [&, i] {
      reads[static_cast<std::size_t>(i)] = value;
      readers_done.fetch_add(1);
    });
  }
  int readers_at_write = -1;
  rt.submit("write", {{h, Access::kWrite}}, [&] {
    readers_at_write = readers_done.load();
    value = 99;
  });
  rt.wait_all();
  EXPECT_EQ(readers_at_write, 8) << "writer must wait for all prior readers";
  for (int r : reads) EXPECT_EQ(r, 7);
}

TEST(Runtime, DiamondDependency) {
  Runtime rt(4);
  auto a = rt.register_data();
  auto b = rt.register_data();
  auto c = rt.register_data();
  double va = 0, vb = 0, vc = 0, vd = 0;
  rt.submit("top", {{a, Access::kWrite}}, [&] { va = 2.0; });
  rt.submit("left", {{a, Access::kRead}, {b, Access::kWrite}},
            [&] { vb = va * 3.0; });
  rt.submit("right", {{a, Access::kRead}, {c, Access::kWrite}},
            [&] { vc = va + 5.0; });
  rt.submit("bottom", {{b, Access::kRead}, {c, Access::kRead}},
            [&] { vd = vb + vc; });
  rt.wait_all();
  EXPECT_DOUBLE_EQ(vd, 13.0);
}

// Sequential-consistency stress: a random DAG of arithmetic tasks over a
// bank of cells must produce identical results threaded and inline, because
// inline mode executes in submission order (the reference semantics).
double run_random_program(int threads, u64 seed) {
  constexpr int kCells = 24;
  constexpr int kTasks = 800;
  Runtime rt(threads);
  std::vector<DataHandle> handles;
  std::vector<double> cells(kCells);
  for (int i = 0; i < kCells; ++i) {
    handles.push_back(rt.register_data());
    cells[static_cast<std::size_t>(i)] = i + 1;
  }
  stats::Xoshiro256pp g(seed);
  for (int t = 0; t < kTasks; ++t) {
    const int dst = static_cast<int>(g.next() % kCells);
    const int src1 = static_cast<int>(g.next() % kCells);
    const int src2 = static_cast<int>(g.next() % kCells);
    const double coef = g.next_u01();
    std::vector<rt::DataAccess> acc{{handles[static_cast<std::size_t>(dst)],
                                     Access::kReadWrite}};
    if (src1 != dst)
      acc.push_back({handles[static_cast<std::size_t>(src1)], Access::kRead});
    if (src2 != dst && src2 != src1)
      acc.push_back({handles[static_cast<std::size_t>(src2)], Access::kRead});
    rt.submit("mix", acc, [&cells, dst, src1, src2, coef] {
      const double a = cells[static_cast<std::size_t>(src1)];
      const double b = cells[static_cast<std::size_t>(src2)];
      double& d = cells[static_cast<std::size_t>(dst)];
      d = 0.5 * d + coef * std::sin(a) + (1.0 - coef) * std::cos(b);
    });
  }
  rt.wait_all();
  double checksum = 0.0;
  for (double v : cells) checksum += v;
  return checksum;
}

TEST(Runtime, SequentialConsistencyStress) {
  for (u64 seed : {1ull, 2ull, 3ull}) {
    const double inline_result = run_random_program(0, seed);
    const double t2 = run_random_program(2, seed);
    const double t8 = run_random_program(8, seed);
    EXPECT_DOUBLE_EQ(inline_result, t2) << "seed=" << seed;
    EXPECT_DOUBLE_EQ(inline_result, t8) << "seed=" << seed;
  }
}

TEST(Runtime, IndependentTasksAllRun) {
  Runtime rt(8);
  std::atomic<int> count{0};
  std::vector<DataHandle> handles;
  for (int i = 0; i < 100; ++i) handles.push_back(rt.register_data());
  for (int i = 0; i < 100; ++i) {
    rt.submit("inc", {{handles[static_cast<std::size_t>(i)], Access::kWrite}},
              [&] { count.fetch_add(1); });
  }
  rt.wait_all();
  EXPECT_EQ(count.load(), 100);
  EXPECT_GE(rt.tasks_executed(), 100);
}

TEST(Runtime, ReleasedHandlesAreRecycled) {
  Runtime rt(2);
  const DataHandle first = rt.register_data("transient");
  rt.release_data(first);
  const DataHandle reused = rt.register_data("next");
  EXPECT_EQ(reused.id(), first.id())
      << "released slots must be reused, not appended";

  // The recycled handle is fully functional for dependency inference.
  int x = 0, seen = -1;
  rt.submit("write", {{reused, Access::kWrite}}, [&] { x = 7; });
  rt.submit("read", {{reused, Access::kRead}}, [&] { seen = x; });
  rt.wait_all();
  EXPECT_EQ(seen, 7);

  // Registering after a burst of register/release cycles does not grow the
  // id space: a long-lived runtime serving transient per-round data stays
  // bounded.
  const DataHandle before = rt.register_data();
  for (int round = 0; round < 50; ++round) {
    std::vector<DataHandle> transient;
    for (int i = 0; i < 8; ++i) transient.push_back(rt.register_data());
    for (const DataHandle h : transient) rt.release_data(h);
  }
  const DataHandle after = rt.register_data();
  EXPECT_LE(after.id(), before.id() + 9);
}

TEST(Runtime, DoubleReleaseIsRejected) {
  Runtime rt(1);
  const DataHandle h = rt.register_data();
  rt.release_data(h);
  EXPECT_THROW(rt.release_data(h), Error);
  EXPECT_THROW(rt.release_data(DataHandle{}), Error);
}

TEST(Runtime, ReleaseWhileEpochReferencesHandleIsRejected) {
  Runtime rt(1);
  const DataHandle h = rt.register_data();
  rt.submit("touch", {{h, Access::kWrite}}, [] {});
  // The epoch still tracks h until wait_all(); releasing now would let a
  // recycled slot race the in-flight task.
  EXPECT_THROW(rt.release_data(h), Error);
  rt.wait_all();
  rt.release_data(h);  // legal once the epoch has drained
}

TEST(Runtime, ExceptionPropagatesAndCancels) {
  Runtime rt(2);
  auto h = rt.register_data();
  std::atomic<int> ran{0};
  rt.submit("boom", {{h, Access::kWrite}},
            [] { throw Error("task exploded"); });
  // 50 dependent tasks should all be cancelled (or at least not crash).
  for (int i = 0; i < 50; ++i) {
    rt.submit("after", {{h, Access::kReadWrite}}, [&] { ran.fetch_add(1); });
  }
  EXPECT_THROW(rt.wait_all(), Error);
  EXPECT_EQ(ran.load(), 0) << "tasks after the failure must be cancelled";
}

TEST(Runtime, DestructorSurfacesUnretrievedError) {
  // Regression: the destructor used to drain the final epoch and then drop a
  // pending first_error on the floor. It cannot rethrow (destructor), but it
  // must at least surface the what() on stderr.
  ::testing::internal::CaptureStderr();
  {
    Runtime rt(2);
    auto h = rt.register_data();
    rt.submit("boom", {{h, Access::kWrite}},
              [] { throw Error("lost-error-marker"); });
    // No wait_all(): destruction is the only chance to see the error.
  }
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("lost-error-marker"), std::string::npos) << err;
}

TEST(Runtime, DestructorSurfacesUnretrievedErrorInlineMode) {
  ::testing::internal::CaptureStderr();
  {
    Runtime rt(0);
    auto h = rt.register_data();
    rt.submit("boom", {{h, Access::kWrite}},
              [] { throw Error("inline-lost-error-marker"); });
  }
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("inline-lost-error-marker"), std::string::npos) << err;
}

TEST(Runtime, DestructorQuietWhenErrorWasRetrieved) {
  ::testing::internal::CaptureStderr();
  {
    Runtime rt(2);
    auto h = rt.register_data();
    rt.submit("boom", {{h, Access::kWrite}}, [] { throw Error("seen"); });
    EXPECT_THROW(rt.wait_all(), Error);  // error consumed here
  }
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST(Runtime, UsableAfterErrorEpoch) {
  Runtime rt(2);
  auto h = rt.register_data();
  rt.submit("boom", {{h, Access::kWrite}}, [] { throw Error("x"); });
  EXPECT_THROW(rt.wait_all(), Error);
  int val = 0;
  rt.submit("ok", {{h, Access::kWrite}}, [&] { val = 5; });
  rt.wait_all();
  EXPECT_EQ(val, 5);
}

TEST(Runtime, WaitAllIdempotentAndReusable) {
  Runtime rt(2);
  auto h = rt.register_data();
  int x = 0;
  rt.submit("a", {{h, Access::kReadWrite}}, [&] { x += 1; });
  rt.wait_all();
  rt.wait_all();
  rt.submit("b", {{h, Access::kReadWrite}}, [&] { x += 10; });
  rt.wait_all();
  EXPECT_EQ(x, 11);
}

TEST(Runtime, InlineModeExecutesImmediately) {
  Runtime rt(0);
  auto h = rt.register_data();
  int x = 0;
  rt.submit("now", {{h, Access::kWrite}}, [&] { x = 1; });
  EXPECT_EQ(x, 1);  // no wait_all needed
  rt.wait_all();
  EXPECT_EQ(rt.num_threads(), 0);
}

TEST(Runtime, InlineModeErrorSurfacesAtWait) {
  Runtime rt(0);
  auto h = rt.register_data();
  rt.submit("boom", {{h, Access::kWrite}}, [] { throw Error("inline"); });
  int ran = 0;
  rt.submit("after", {{h, Access::kRead}}, [&] { ran = 1; });
  EXPECT_THROW(rt.wait_all(), Error);
  EXPECT_EQ(ran, 0);
}

TEST(Runtime, TraceRecordsTasks) {
  Runtime rt(2, /*enable_trace=*/true);
  auto h = rt.register_data();
  for (int i = 0; i < 5; ++i)
    rt.submit("traced", {{h, Access::kReadWrite}}, [] {});
  rt.wait_all();
  ASSERT_EQ(rt.trace().size(), 5u);
  for (const auto& rec : rt.trace()) {
    EXPECT_EQ(rec.name, "traced");
    EXPECT_GE(rec.end_s, rec.start_s);
    EXPECT_GE(rec.worker, 0);
  }
  EXPECT_FALSE(rt::summarize_trace(rt.trace()).empty());
}

TEST(Runtime, InvalidHandleRejected) {
  Runtime rt(1);
  DataHandle bogus;
  EXPECT_THROW(
      rt.submit("bad", {{bogus, Access::kRead}}, [] {}),
      Error);
  rt.wait_all();
}

TEST(Runtime, PriorityDoesNotBreakCorrectness) {
  Runtime rt(3);
  auto h = rt.register_data();
  std::vector<int> order;
  for (int i = 0; i < 20; ++i) {
    rt.submit("p", {{h, Access::kReadWrite}},
              [&order, i] { order.push_back(i); }, /*priority=*/i % 3);
  }
  rt.wait_all();
  // Dependencies force submission order regardless of priorities.
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

// ---- scheduler arms ----

using rt::SchedulerKind;

constexpr SchedulerKind kArms[] = {SchedulerKind::kWorkSteal,
                                   SchedulerKind::kGlobalQueue};

const char* arm_name(SchedulerKind k) {
  return k == SchedulerKind::kWorkSteal ? "worksteal" : "global";
}

TEST(Runtime, SchedulerKindExplicitSelection) {
  Runtime ws(2, false, SchedulerKind::kWorkSteal);
  EXPECT_EQ(ws.scheduler(), SchedulerKind::kWorkSteal);
  Runtime gq(2, false, SchedulerKind::kGlobalQueue);
  EXPECT_EQ(gq.scheduler(), SchedulerKind::kGlobalQueue);
  EXPECT_EQ(gq.tasks_stolen(), 0) << "the global queue has no steal path";

  // Both arms execute the same trivial graph.
  for (Runtime* rt : {&ws, &gq}) {
    auto h = rt->register_data();
    int x = 0;
    rt->submit("w", {{h, Access::kWrite}}, [&] { x = 1; });
    rt->submit("rw", {{h, Access::kReadWrite}}, [&] { x += 1; });
    rt->wait_all();
    EXPECT_EQ(x, 2);
  }
}

TEST(Runtime, SchedulerEnvGlobalSelection) {
  // Preserve the inherited value: CI's PARMVN_SCHED_GLOBAL=1 pass relies on
  // later kDefault-constructed runtimes still seeing it.
  const char* inherited = ::getenv("PARMVN_SCHED_GLOBAL");
  const std::string saved = inherited != nullptr ? inherited : "";

  // kDefault consults PARMVN_SCHED_GLOBAL at construction time.
  ::setenv("PARMVN_SCHED_GLOBAL", "1", 1);
  {
    Runtime rt(1);
    EXPECT_EQ(rt.scheduler(), SchedulerKind::kGlobalQueue);
  }
  ::unsetenv("PARMVN_SCHED_GLOBAL");
  {
    Runtime rt(1);
    EXPECT_EQ(rt.scheduler(), SchedulerKind::kWorkSteal);
  }
  // An explicit kind overrides the environment.
  ::setenv("PARMVN_SCHED_GLOBAL", "1", 1);
  {
    Runtime rt(1, false, SchedulerKind::kWorkSteal);
    EXPECT_EQ(rt.scheduler(), SchedulerKind::kWorkSteal);
  }

  if (inherited != nullptr) {
    ::setenv("PARMVN_SCHED_GLOBAL", saved.c_str(), 1);
  } else {
    ::unsetenv("PARMVN_SCHED_GLOBAL");
  }
}

// ---- scheduler stress suite ----
//
// Exercised against both arms: the work-stealing scheduler (per-worker
// deques, atomic dependency counts, sharded submit path) and the frozen
// single-lock baseline. TSan runs this suite in CI for both (the
// RelWithDebInfo+TSan job repeats it with PARMVN_SCHED_GLOBAL=1).

// One generated random-DAG "program", replayable on any runtime: kTasks
// tasks over kHandles cells, each ReadWrite on one handle plus up to two
// Reads, with priorities outside the named ladder to exercise clamping.
struct DagOp {
  int dst;
  int src1;  // -1 = none
  int src2;
  int prio;
  int expect_v1;  // writer count of src1 at submission = version a Read sees
  int expect_v2;
};

std::vector<DagOp> make_dag(int handles, int tasks, u64 seed) {
  stats::Xoshiro256pp g(seed);
  std::vector<int> writers(static_cast<std::size_t>(handles), 0);
  std::vector<DagOp> ops;
  ops.reserve(static_cast<std::size_t>(tasks));
  for (int t = 0; t < tasks; ++t) {
    DagOp op;
    op.dst = static_cast<int>(g.next() % static_cast<u64>(handles));
    op.src1 = static_cast<int>(g.next() % static_cast<u64>(handles));
    op.src2 = static_cast<int>(g.next() % static_cast<u64>(handles));
    if (op.src1 == op.dst) op.src1 = -1;
    if (op.src2 == op.dst || op.src2 == op.src1) op.src2 = -1;
    op.prio = static_cast<int>(g.next() % 9) - 2;  // [-2, 6]: clamps both ends
    op.expect_v1 =
        op.src1 >= 0 ? writers[static_cast<std::size_t>(op.src1)] : -1;
    op.expect_v2 =
        op.src2 >= 0 ? writers[static_cast<std::size_t>(op.src2)] : -1;
    ++writers[static_cast<std::size_t>(op.dst)];
    ops.push_back(op);
  }
  return ops;
}

// Sequential consistency per handle, checked exactly: every ReadWrite task
// appends its id to its handle's log (the RW exclusivity the runtime
// promises is what makes the plain push_back legal — TSan enforces it), and
// every Read records the handle's version counter, which must equal the
// number of writers submitted before it.
void run_seqcst_dag(SchedulerKind arm, int workers, int handles, int tasks,
                    u64 seed) {
  const std::vector<DagOp> ops = make_dag(handles, tasks, seed);
  Runtime rt(workers, false, arm);
  std::vector<DataHandle> hs;
  for (int i = 0; i < handles; ++i) hs.push_back(rt.register_data());
  std::vector<std::vector<int>> log(static_cast<std::size_t>(handles));
  std::vector<int> version(static_cast<std::size_t>(handles), 0);
  std::vector<std::array<int, 2>> seen(static_cast<std::size_t>(tasks),
                                       {-1, -1});
  for (int t = 0; t < tasks; ++t) {
    const DagOp& op = ops[static_cast<std::size_t>(t)];
    std::vector<rt::DataAccess> acc{
        {hs[static_cast<std::size_t>(op.dst)], Access::kReadWrite}};
    if (op.src1 >= 0)
      acc.push_back({hs[static_cast<std::size_t>(op.src1)], Access::kRead});
    if (op.src2 >= 0)
      acc.push_back({hs[static_cast<std::size_t>(op.src2)], Access::kRead});
    rt.submit("dag", acc,
              [&log, &version, &seen, op, t] {
                if (op.src1 >= 0)
                  seen[static_cast<std::size_t>(t)][0] =
                      version[static_cast<std::size_t>(op.src1)];
                if (op.src2 >= 0)
                  seen[static_cast<std::size_t>(t)][1] =
                      version[static_cast<std::size_t>(op.src2)];
                log[static_cast<std::size_t>(op.dst)].push_back(t);
                ++version[static_cast<std::size_t>(op.dst)];
              },
              op.prio);
  }
  rt.wait_all();

  // Per-handle RW order == submission order.
  std::vector<std::vector<int>> expected(static_cast<std::size_t>(handles));
  for (int t = 0; t < tasks; ++t)
    expected[static_cast<std::size_t>(ops[static_cast<std::size_t>(t)].dst)]
        .push_back(t);
  for (int h = 0; h < handles; ++h)
    ASSERT_EQ(log[static_cast<std::size_t>(h)],
              expected[static_cast<std::size_t>(h)])
        << arm_name(arm) << " workers=" << workers << " handle=" << h;
  // Every Read saw exactly the writes submitted before it (RAW + WAR).
  for (int t = 0; t < tasks; ++t) {
    const DagOp& op = ops[static_cast<std::size_t>(t)];
    EXPECT_EQ(seen[static_cast<std::size_t>(t)][0], op.expect_v1)
        << arm_name(arm) << " workers=" << workers << " task=" << t;
    EXPECT_EQ(seen[static_cast<std::size_t>(t)][1], op.expect_v2)
        << arm_name(arm) << " workers=" << workers << " task=" << t;
  }
}

TEST(RuntimeStress, RandomDagSequentialConsistencyPerHandle) {
  for (SchedulerKind arm : kArms)
    for (int workers : {2, 8})
      run_seqcst_dag(arm, workers, /*handles=*/40, /*tasks=*/10000,
                     /*seed=*/20240624);
}

double run_priority_program(SchedulerKind arm, int workers, u64 seed) {
  constexpr int kCells = 24;
  constexpr int kTasks = 10000;
  Runtime rt(workers, false, arm);
  std::vector<DataHandle> handles;
  std::vector<double> cells(kCells);
  for (int i = 0; i < kCells; ++i) {
    handles.push_back(rt.register_data());
    cells[static_cast<std::size_t>(i)] = i + 1;
  }
  stats::Xoshiro256pp g(seed);
  for (int t = 0; t < kTasks; ++t) {
    const int dst = static_cast<int>(g.next() % kCells);
    const int src = static_cast<int>(g.next() % kCells);
    const double coef = g.next_u01();
    const int prio = static_cast<int>(g.next() % 5);
    std::vector<rt::DataAccess> acc{{handles[static_cast<std::size_t>(dst)],
                                     Access::kReadWrite}};
    if (src != dst)
      acc.push_back({handles[static_cast<std::size_t>(src)], Access::kRead});
    rt.submit("mix", acc,
              [&cells, dst, src, coef] {
                const double a = cells[static_cast<std::size_t>(src)];
                double& d = cells[static_cast<std::size_t>(dst)];
                d = 0.5 * d + coef * std::sin(a) + (1.0 - coef) * std::cos(a);
              },
              prio);
  }
  rt.wait_all();
  double checksum = 0.0;
  for (double v : cells) checksum += v;
  return checksum;
}

TEST(RuntimeStress, RepeatRunsBitwiseAcrossArmsAndWorkerCounts) {
  // The scheduler decides only *when* a task runs; arithmetic must be
  // *bitwise* identical across arms, worker counts and repeat runs (the
  // contract test_determinism enforces for the PMVN pipelines, here on a
  // 10k-task adversarial DAG with mixed priorities). Compared as bit
  // patterns: EXPECT_DOUBLE_EQ's 4-ULP band would let a sub-ULP
  // reassociation bug through.
  const auto bits = [](double v) { return std::bit_cast<u64>(v); };
  const u64 seed = 99;
  const double reference = run_priority_program(SchedulerKind::kWorkSteal,
                                                /*workers=*/0, seed);
  for (SchedulerKind arm : kArms) {
    for (int workers : {2, 8}) {
      EXPECT_EQ(bits(run_priority_program(arm, workers, seed)),
                bits(reference))
          << arm_name(arm) << " workers=" << workers;
    }
  }
  EXPECT_EQ(bits(run_priority_program(SchedulerKind::kWorkSteal, 8, seed)),
            bits(reference))
      << "repeat run drifted";
}

TEST(RuntimeStress, StealBatchToggleKeepsChecksumsBitwise) {
  // PARMVN_STEAL_BATCH (default on) lets a thief take up to half a victim
  // lane per successful steal instead of one task. Like every scheduling
  // choice it may change only *when* tasks run, never their inputs: the
  // 10k-task adversarial checksum must stay bitwise identical with the
  // lever on, off, and across both arms (the global arm simply ignores it)
  // and worker counts. The env knob latches at runtime construction, so
  // each toggle builds fresh runtimes.
  const auto bits = [](double v) { return std::bit_cast<u64>(v); };
  const u64 seed = 1234;
  const char* saved = std::getenv("PARMVN_STEAL_BATCH");
  const std::string saved_value = saved != nullptr ? saved : "";
  const double reference =
      run_priority_program(SchedulerKind::kWorkSteal, /*workers=*/0, seed);
  for (const char* toggle : {"0", "1"}) {
    ::setenv("PARMVN_STEAL_BATCH", toggle, 1);
    for (SchedulerKind arm : kArms) {
      for (int workers : {2, 8}) {
        EXPECT_EQ(bits(run_priority_program(arm, workers, seed)),
                  bits(reference))
            << arm_name(arm) << " workers=" << workers
            << " steal_batch=" << toggle;
      }
    }
  }
  if (saved != nullptr) {
    ::setenv("PARMVN_STEAL_BATCH", saved_value.c_str(), 1);
  } else {
    ::unsetenv("PARMVN_STEAL_BATCH");
  }
}

TEST(RuntimeStress, StealPathExceptionCancellation) {
  // A failing task must cancel its not-yet-started dependents on every
  // arm, including when the failure and the dependents cross steal paths.
  // Independent fodder tasks keep all 8 workers stealing while the error
  // propagates; repeats vary the interleaving.
  for (SchedulerKind arm : kArms) {
    for (int rep = 0; rep < 10; ++rep) {
      Runtime rt(8, false, arm);
      auto h = rt.register_data();
      std::vector<DataHandle> fodder;
      for (int i = 0; i < 16; ++i) fodder.push_back(rt.register_data());
      std::atomic<int> chain_ran{0};
      for (int i = 0; i < 64; ++i) {
        rt.submit("fodder",
                  {{fodder[static_cast<std::size_t>(i % 16)],
                    Access::kReadWrite}},
                  [] {});
      }
      rt.submit("boom", {{h, Access::kWrite}},
                [] { throw Error("stress boom"); });
      for (int i = 0; i < 100; ++i) {
        rt.submit("after", {{h, Access::kReadWrite}},
                  [&] { chain_ran.fetch_add(1); });
      }
      EXPECT_THROW(rt.wait_all(), Error) << arm_name(arm) << " rep=" << rep;
      EXPECT_EQ(chain_ran.load(), 0)
          << arm_name(arm) << " rep=" << rep
          << ": dependents of the failing task must be cancelled";
      // The runtime stays usable after the error epoch.
      int ok = 0;
      rt.submit("ok", {{h, Access::kWrite}}, [&] { ok = 1; });
      rt.wait_all();
      EXPECT_EQ(ok, 1);
    }
  }
}

TEST(RuntimeStress, ReleaseDataUnderConcurrentStealing) {
  // Engine-style round pattern at full worker churn: register transient
  // handles, run a graph over transient + persistent data, wait, release —
  // while a second submitter thread churns register/release on its own
  // handles (the sharded handle table must isolate the two).
  for (SchedulerKind arm : kArms) {
    Runtime rt(8, false, arm);
    std::vector<DataHandle> persistent;
    for (int i = 0; i < 4; ++i) persistent.push_back(rt.register_data());

    std::atomic<bool> stop{false};
    std::thread churn([&] {
      while (!stop.load()) {
        std::vector<DataHandle> own;
        for (int i = 0; i < 6; ++i) own.push_back(rt.register_data("churn"));
        for (const DataHandle h : own) rt.release_data(h);
      }
    });

    std::atomic<i64> total{0};
    for (int round = 0; round < 60; ++round) {
      std::vector<DataHandle> transient;
      for (int i = 0; i < 8; ++i)
        transient.push_back(rt.register_data("round"));
      for (int t = 0; t < 80; ++t) {
        const DataHandle h = (t % 3 == 0)
                                 ? persistent[static_cast<std::size_t>(t % 4)]
                                 : transient[static_cast<std::size_t>(t % 8)];
        rt.submit("work", {{h, Access::kReadWrite}},
                  [&] { total.fetch_add(1); });
      }
      rt.wait_all();
      for (const DataHandle h : transient) rt.release_data(h);
    }
    stop.store(true);
    churn.join();
    EXPECT_EQ(total.load(), 60 * 80) << arm_name(arm);
    // Transient slots were recycled, not appended: the id space stays
    // bounded by the peak number of simultaneously live handles (~20, times
    // the sharded table's id stride), nowhere near the 480 transients the
    // rounds would have appended without recycling.
    const DataHandle after = rt.register_data();
    EXPECT_LE(after.id(), 255) << arm_name(arm);
    rt.release_data(after);
  }
}

TEST(RuntimeStress, TraceRecordsStealsOnWorkStealArm) {
  // A wide independent graph on the work-stealing arm: every task is
  // recorded exactly once whether it ran at home or was stolen, and the
  // summary exposes the steal column.
  Runtime rt(4, /*enable_trace=*/true, SchedulerKind::kWorkSteal);
  std::vector<DataHandle> hs;
  for (int i = 0; i < 200; ++i) hs.push_back(rt.register_data());
  std::atomic<int> ran{0};
  for (int i = 0; i < 200; ++i) {
    rt.submit("wide", {{hs[static_cast<std::size_t>(i)], Access::kWrite}},
              [&] { ran.fetch_add(1); });
  }
  rt.wait_all();
  EXPECT_EQ(ran.load(), 200);
  ASSERT_EQ(rt.trace().size(), 200u);
  i64 stolen_records = 0;
  for (const auto& rec : rt.trace()) {
    EXPECT_GE(rec.worker, 0);
    if (rec.stolen) ++stolen_records;
  }
  EXPECT_EQ(stolen_records, rt.tasks_stolen());
  EXPECT_NE(rt::summarize_trace(rt.trace()).find("stolen"), std::string::npos);
}

}  // namespace
