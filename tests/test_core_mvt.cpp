// Tests for the multivariate Student-t extension and the negative-direction
// excursion sets.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "core/excursion.hpp"
#include "core/mvt.hpp"
#include "core/sov.hpp"
#include "geo/covgen.hpp"
#include "geo/geometry.hpp"
#include "stats/covariance.hpp"
#include "stats/normal.hpp"
#include "stats/rng.hpp"

namespace {

using namespace parmvn;
using la::Matrix;

constexpr double kInf = std::numeric_limits<double>::infinity();

Matrix equicorrelated(i64 n, double rho) {
  Matrix s(n, n);
  for (i64 j = 0; j < n; ++j)
    for (i64 i = 0; i < n; ++i) s(i, j) = (i == j) ? 1.0 : rho;
  return s;
}

// Student-t CDF via the incomplete-beta-free formula: numerically integrate
// the density (test oracle; fine trapezoid is plenty at these tolerances).
double t_cdf_oracle(double x, double nu) {
  auto pdf = [nu](double t) {
    return std::exp(std::lgamma(0.5 * (nu + 1.0)) - std::lgamma(0.5 * nu)) /
           std::sqrt(nu * M_PI) *
           std::pow(1.0 + t * t / nu, -0.5 * (nu + 1.0));
  };
  const double lo = -60.0;
  const int steps = 200000;
  const double h = (x - lo) / steps;
  double acc = 0.5 * (pdf(lo) + pdf(x));
  for (int i = 1; i < steps; ++i) acc += pdf(lo + h * i);
  return acc * h;
}

TEST(ChiScale, MedianAndMonotone) {
  // chi_scale(0.5, nu) = sqrt(median(chi2_nu)/nu); median ~ nu(1-2/(9nu))^3.
  for (double nu : {1.0, 3.0, 7.0, 30.0}) {
    const double med = nu * std::pow(1.0 - 2.0 / (9.0 * nu), 3.0);
    EXPECT_NEAR(core::chi_scale_from_uniform(0.5, nu),
                std::sqrt(med / nu), 0.02)
        << nu;
    double prev = 0.0;
    for (double u : {0.05, 0.3, 0.6, 0.9, 0.99}) {
      const double s = core::chi_scale_from_uniform(u, nu);
      EXPECT_GT(s, prev);
      prev = s;
    }
  }
}

TEST(ChiScale, LargeNuConcentratesAtOne) {
  // W/nu -> 1 as nu -> inf.
  EXPECT_NEAR(core::chi_scale_from_uniform(0.2, 5000.0), 1.0, 0.02);
  EXPECT_NEAR(core::chi_scale_from_uniform(0.8, 5000.0), 1.0, 0.02);
}

TEST(Mvt, UnivariateMatchesTCdf) {
  Matrix s(1, 1);
  s(0, 0) = 1.0;
  const std::vector<double> a{-kInf};
  for (double nu : {3.0, 8.0}) {
    for (double x : {-1.0, 0.5, 2.0}) {
      const std::vector<double> b{x};
      core::SovOptions opts;
      opts.samples_per_shift = 4000;
      opts.shifts = 10;
      const core::SovResult r = core::mvt_probability(s.view(), nu, a, b, opts);
      EXPECT_NEAR(r.prob, t_cdf_oracle(x, nu), 5e-3)
          << "nu=" << nu << " x=" << x;
    }
  }
}

TEST(Mvt, OrthantProbabilityMatchesGaussian) {
  // Elliptical symmetry: orthant probabilities of the MVT equal the MVN
  // ones — 1/(n+1) for exchangeable rho = 1/2.
  for (i64 n : {4, 12}) {
    Matrix s = equicorrelated(n, 0.5);
    const std::vector<double> a(static_cast<std::size_t>(n), 0.0);
    const std::vector<double> b(static_cast<std::size_t>(n), kInf);
    core::SovOptions opts;
    opts.samples_per_shift = 4000;
    opts.shifts = 10;
    const core::SovResult r = core::mvt_probability(s.view(), 4.0, a, b, opts);
    EXPECT_NEAR(r.prob / (1.0 / static_cast<double>(n + 1)), 1.0, 0.05)
        << "n=" << n;
  }
}

TEST(Mvt, ConvergesToGaussianAsNuGrows) {
  const i64 n = 6;
  Matrix s = equicorrelated(n, 0.3);
  const std::vector<double> a(static_cast<std::size_t>(n), -1.0);
  const std::vector<double> b(static_cast<std::size_t>(n), 1.5);
  core::SovOptions opts;
  opts.samples_per_shift = 4000;
  opts.shifts = 10;
  const double gauss = core::mvn_probability(s.view(), a, b, opts).prob;
  const double t3 = core::mvt_probability(s.view(), 3.0, a, b, opts).prob;
  const double t50 = core::mvt_probability(s.view(), 50.0, a, b, opts).prob;
  const double t500 = core::mvt_probability(s.view(), 500.0, a, b, opts).prob;
  EXPECT_LT(std::fabs(t500 - gauss), std::fabs(t50 - gauss) + 5e-3);
  EXPECT_LT(std::fabs(t50 - gauss), std::fabs(t3 - gauss));
  EXPECT_NEAR(t500, gauss, 0.01);
  // Heavy tails: the t box probability is smaller for a central box.
  EXPECT_LT(t3, gauss);
}

TEST(Mvt, DomainChecks) {
  Matrix s = equicorrelated(2, 0.2);
  const std::vector<double> a(2, 0.0), b(2, 1.0);
  EXPECT_THROW((void)core::mvt_probability(s.view(), 0.0, a, b), Error);
  EXPECT_THROW((void)core::mvt_probability(s.view(), -2.0, a, b), Error);
}

TEST(CrdDirection, BelowIsReflectionOfAbove) {
  const geo::LocationSet locs = geo::regular_grid(7, 7);
  auto kernel = std::make_shared<stats::ExponentialKernel>(1.0, 0.2);
  const geo::KernelCovGenerator cov(locs, kernel, 1e-6);
  std::vector<double> mean(49);
  for (std::size_t i = 0; i < 49; ++i) {
    const double dx = locs[i].x - 0.4, dy = locs[i].y - 0.5;
    mean[i] = 3.4 * std::exp(-10.0 * (dx * dx + dy * dy));
  }
  rt::Runtime rt(2);
  core::CrdOptions above;
  above.threshold = 1.0;
  above.alpha = 0.1;
  above.tile = 16;
  above.pmvn.samples_per_shift = 300;
  above.pmvn.shifts = 4;
  above.pmvn.sampler = stats::SamplerKind::kRichtmyer;
  const core::CrdResult ra = core::detect_confidence_region(rt, cov, mean, above);

  // Below on the negated field at the negated threshold: identical results.
  std::vector<double> neg_mean = mean;
  for (double& m : neg_mean) m = -m;
  core::CrdOptions below = above;
  below.direction = core::CrdDirection::kBelow;
  below.threshold = -1.0;
  const core::CrdResult rb =
      core::detect_confidence_region(rt, cov, neg_mean, below);

  ASSERT_EQ(ra.region.size(), rb.region.size());
  EXPECT_EQ(ra.region_size, rb.region_size);
  for (std::size_t i = 0; i < ra.region.size(); ++i) {
    EXPECT_EQ(ra.region[i], rb.region[i]) << i;
    EXPECT_NEAR(ra.marginal[i], rb.marginal[i], 1e-12);
    EXPECT_NEAR(ra.confidence[i], rb.confidence[i], 1e-12);
  }
}

TEST(CrdDirection, BelowFindsLowRegions) {
  // A field with a deep valley: E- at u = -1 should flag the valley only.
  const geo::LocationSet locs = geo::regular_grid(8, 8);
  auto kernel = std::make_shared<stats::ExponentialKernel>(1.0, 0.2);
  const geo::KernelCovGenerator cov(locs, kernel, 1e-6);
  std::vector<double> mean(64, 0.0);
  for (std::size_t i = 0; i < 64; ++i) {
    const double dx = locs[i].x - 0.7, dy = locs[i].y - 0.3;
    mean[i] = -3.5 * std::exp(-12.0 * (dx * dx + dy * dy));
  }
  rt::Runtime rt(2);
  core::CrdOptions below;
  below.direction = core::CrdDirection::kBelow;
  below.threshold = -1.0;
  below.alpha = 0.1;
  below.tile = 16;
  below.pmvn.samples_per_shift = 300;
  below.pmvn.shifts = 4;
  const core::CrdResult r = core::detect_confidence_region(rt, cov, mean, below);
  EXPECT_GT(r.region_size, 0);
  EXPECT_LT(r.region_size, 32);
  // Every flagged location sits in the valley.
  for (std::size_t i = 0; i < 64; ++i)
    if (r.region[i] != 0) EXPECT_LT(mean[i], -1.0) << i;
}

}  // namespace
