// Tests for confidence-region detection (Algorithm 1) and MC validation:
// sweep vs naive strategy, set-theoretic properties, dense vs TLR, and the
// p_hat(alpha) ~ 1-alpha calibration check of Section V-C.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/excursion.hpp"
#include "core/mc_validation.hpp"
#include "geo/covgen.hpp"
#include "geo/field.hpp"
#include "geo/geometry.hpp"
#include "linalg/potrf.hpp"
#include "stats/covariance.hpp"
#include "stats/normal.hpp"

namespace {

using namespace parmvn;
using core::CrdMode;
using core::CrdOptions;
using core::CrdResult;
using core::CrdStrategy;

struct TestField {
  geo::LocationSet locs;
  std::shared_ptr<geo::KernelCovGenerator> cov;
  std::vector<double> mean;
};

TestField make_field(i64 nx, i64 ny, double range, u64 seed) {
  TestField f;
  f.locs = geo::regular_grid(nx, ny);
  auto kernel = std::make_shared<stats::ExponentialKernel>(1.0, range);
  f.cov = std::make_shared<geo::KernelCovGenerator>(f.locs, kernel, 1e-6);
  // A smooth deterministic mean with a bump: creates a clear excursion
  // region around the bump.
  f.mean.resize(f.locs.size());
  for (std::size_t i = 0; i < f.locs.size(); ++i) {
    const double dx = f.locs[i].x - 0.3;
    const double dy = f.locs[i].y - 0.6;
    // Peak 3.4 sd above the threshold of 1.0: marginals reach ~0.99 at the
    // bump so confidence regions at 1-alpha = 0.9 are non-empty.
    f.mean[i] = 3.4 * std::exp(-12.0 * (dx * dx + dy * dy));
    if (seed != 0) f.mean[i] += 0.05 * std::sin(17.0 * f.locs[i].x);
  }
  return f;
}

CrdOptions base_opts() {
  CrdOptions o;
  o.threshold = 1.0;
  o.alpha = 0.1;
  o.tile = 16;
  o.pmvn.samples_per_shift = 400;
  o.pmvn.shifts = 5;
  o.pmvn.sampler = stats::SamplerKind::kRichtmyer;
  return o;
}

TEST(Crd, MarginalsAndOrderingAreCorrect) {
  const TestField f = make_field(8, 8, 0.15, 1);
  rt::Runtime rt(2);
  const CrdOptions opts = base_opts();
  const CrdResult r = core::detect_confidence_region(rt, *f.cov, f.mean, opts);

  ASSERT_EQ(r.marginal.size(), 64u);
  // Marginal probabilities match 1 - Phi((u - mean)/sd) by hand.
  for (std::size_t i = 0; i < 64; ++i) {
    const double sd = std::sqrt(f.cov->entry(static_cast<i64>(i),
                                             static_cast<i64>(i)));
    const double expect =
        1.0 - stats::norm_cdf((opts.threshold - f.mean[i]) / sd);
    EXPECT_NEAR(r.marginal[i], expect, 1e-12);
  }
  // Order is descending in marginal.
  for (std::size_t k = 1; k < r.order.size(); ++k)
    EXPECT_GE(r.marginal[static_cast<std::size_t>(r.order[k - 1])],
              r.marginal[static_cast<std::size_t>(r.order[k])]);
}

TEST(Crd, SweepEqualsNaiveStrategy) {
  // The single-sweep prefix probabilities must equal the literal
  // Algorithm 1 loop (same sampler/seed -> bitwise-equal chains).
  const TestField f = make_field(5, 5, 0.2, 2);
  rt::Runtime rt(2);
  CrdOptions sweep = base_opts();
  sweep.pmvn.samples_per_shift = 150;
  sweep.pmvn.shifts = 4;
  CrdOptions naive = sweep;
  naive.strategy = CrdStrategy::kNaivePerPrefix;

  const CrdResult rs = core::detect_confidence_region(rt, *f.cov, f.mean, sweep);
  const CrdResult rn = core::detect_confidence_region(rt, *f.cov, f.mean, naive);
  ASSERT_EQ(rs.prefix_prob.size(), rn.prefix_prob.size());
  for (std::size_t i = 0; i < rs.prefix_prob.size(); ++i)
    EXPECT_NEAR(rs.prefix_prob[i], rn.prefix_prob[i], 1e-12) << "i=" << i;
  EXPECT_EQ(rs.region_size, rn.region_size);
}

TEST(Crd, RegionShrinksWithConfidence) {
  const TestField f = make_field(10, 10, 0.15, 3);
  rt::Runtime rt(4);
  i64 prev_size = 101;
  for (double alpha : {0.5, 0.2, 0.05, 0.01}) {
    CrdOptions opts = base_opts();
    opts.alpha = alpha;
    opts.pmvn.seed = 77;  // same chains across alpha values
    const CrdResult r =
        core::detect_confidence_region(rt, *f.cov, f.mean, opts);
    EXPECT_LE(r.region_size, prev_size) << "alpha=" << alpha;
    prev_size = r.region_size;
  }
}

TEST(Crd, RegionIsSubsetOfMarginalSet) {
  // F+(s) <= pM(s): anywhere in the confidence region, the marginal
  // exceedance probability must also be >= 1 - alpha.
  const TestField f = make_field(9, 9, 0.2, 4);
  rt::Runtime rt(2);
  const CrdOptions opts = base_opts();
  const CrdResult r = core::detect_confidence_region(rt, *f.cov, f.mean, opts);
  EXPECT_GT(r.region_size, 0) << "bump should produce a region";
  EXPECT_LT(r.region_size, 81) << "region must not cover everything";
  for (std::size_t i = 0; i < r.region.size(); ++i) {
    EXPECT_LE(r.confidence[i], r.marginal[i] + 1e-9) << i;
    if (r.region[i] != 0) EXPECT_GE(r.marginal[i], 1.0 - opts.alpha - 1e-9);
  }
}

TEST(Crd, ConfidenceFunctionMonotoneAlongOrder) {
  const TestField f = make_field(8, 8, 0.1, 5);
  rt::Runtime rt(2);
  const CrdResult r =
      core::detect_confidence_region(rt, *f.cov, f.mean, base_opts());
  double prev = 1.0;
  for (const i64 idx : r.order) {
    const double c = r.confidence[static_cast<std::size_t>(idx)];
    EXPECT_LE(c, prev + 1e-15);
    prev = c;
  }
}

TEST(Crd, TlrModeMatchesDenseMode) {
  const TestField f = make_field(10, 10, 0.2, 6);
  rt::Runtime rt(4);
  CrdOptions dense = base_opts();
  dense.tile = 25;
  CrdOptions tlr = dense;
  tlr.mode = CrdMode::kTlr;
  tlr.tlr_tol = 1e-6;
  const CrdResult rd = core::detect_confidence_region(rt, *f.cov, f.mean, dense);
  const CrdResult rtl = core::detect_confidence_region(rt, *f.cov, f.mean, tlr);
  ASSERT_EQ(rd.prefix_prob.size(), rtl.prefix_prob.size());
  // The paper's observation: at accuracy <= 1e-3 the difference is
  // negligible for the application; at 1e-6 it should be tiny.
  for (std::size_t i = 0; i < rd.prefix_prob.size(); ++i)
    EXPECT_NEAR(rd.prefix_prob[i], rtl.prefix_prob[i], 5e-4) << i;
  EXPECT_NEAR(static_cast<double>(rd.region_size),
              static_cast<double>(rtl.region_size), 2.0);
}

TEST(Crd, BelowDirectionMatchesDirectlyNegatedField) {
  // E-_{u,alpha}(X) == E+_{-u,alpha}(-X): running the detector with
  // direction=kBelow must reproduce, bitwise, a kAbove run on the manually
  // negated mean field with the negated threshold (the covariance is
  // reflection-invariant).
  const TestField f = make_field(7, 7, 0.18, 8);
  rt::Runtime rt(2);
  CrdOptions below = base_opts();
  // P(X < 2) ~ 0.977 on the flats (mean ~ 0) and ~ 0.08 at the bump peak:
  // the below-region is the flats, disjoint from the bump's above-region.
  below.threshold = 2.0;
  below.direction = core::CrdDirection::kBelow;
  const CrdResult rb = core::detect_confidence_region(rt, *f.cov, f.mean, below);

  std::vector<double> neg_mean(f.mean.size());
  for (std::size_t i = 0; i < f.mean.size(); ++i) neg_mean[i] = -f.mean[i];
  CrdOptions above = below;
  above.direction = core::CrdDirection::kAbove;
  above.threshold = -below.threshold;
  const CrdResult ra =
      core::detect_confidence_region(rt, *f.cov, neg_mean, above);

  ASSERT_EQ(rb.order.size(), ra.order.size());
  EXPECT_EQ(rb.order, ra.order);
  EXPECT_EQ(rb.region, ra.region);
  EXPECT_EQ(rb.region_size, ra.region_size);
  for (std::size_t i = 0; i < rb.marginal.size(); ++i) {
    EXPECT_DOUBLE_EQ(rb.marginal[i], ra.marginal[i]) << i;
    EXPECT_DOUBLE_EQ(rb.confidence[i], ra.confidence[i]) << i;
  }
  for (std::size_t i = 0; i < rb.prefix_prob.size(); ++i)
    EXPECT_DOUBLE_EQ(rb.prefix_prob[i], ra.prefix_prob[i]) << i;
  // And the below-region is a genuinely different object from the above-
  // region of the *original* field at the same threshold.
  EXPECT_GT(rb.region_size, 0) << "low-lying flats should be detected";
}

TEST(Crd, BatchedQueriesMatchSingleCallsBitwise) {
  // detect_confidence_regions must be an invisible serving optimisation:
  // each query's result equals the dedicated single-query call with the
  // same parameters and seed, and queries sharing an ordering share one
  // cached factor.
  const TestField f = make_field(8, 8, 0.15, 9);
  rt::Runtime rt(4);
  const CrdOptions opts = base_opts();

  std::vector<core::CrdQuery> queries;
  queries.push_back({0.8, 0.1, core::CrdDirection::kAbove, std::nullopt});
  queries.push_back({1.0, 0.1, core::CrdDirection::kAbove, std::nullopt});
  queries.push_back({1.0, 0.02, core::CrdDirection::kAbove, std::nullopt});
  queries.push_back({1.2, 0.1, core::CrdDirection::kAbove, u64{555}});
  queries.push_back({-0.4, 0.1, core::CrdDirection::kBelow, std::nullopt});

  engine::FactorCache cache(4);
  const std::vector<CrdResult> batched =
      core::detect_confidence_regions(rt, *f.cov, f.mean, opts, queries,
                                      &cache);
  ASSERT_EQ(batched.size(), queries.size());
  // Unit-variance field: every kAbove ordering coincides, kBelow differs ->
  // exactly two factorizations.
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.size(), 2u);

  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    CrdOptions single = opts;
    single.threshold = queries[qi].threshold;
    single.alpha = queries[qi].alpha;
    single.direction = queries[qi].direction;
    if (queries[qi].seed) single.pmvn.seed = *queries[qi].seed;
    const CrdResult alone =
        core::detect_confidence_region(rt, *f.cov, f.mean, single);
    EXPECT_EQ(batched[qi].order, alone.order) << qi;
    EXPECT_EQ(batched[qi].region, alone.region) << qi;
    EXPECT_EQ(batched[qi].region_size, alone.region_size) << qi;
    ASSERT_EQ(batched[qi].prefix_prob.size(), alone.prefix_prob.size()) << qi;
    for (std::size_t i = 0; i < alone.prefix_prob.size(); ++i)
      EXPECT_DOUBLE_EQ(batched[qi].prefix_prob[i], alone.prefix_prob[i])
          << "query=" << qi << " prefix=" << i;
    for (std::size_t i = 0; i < alone.confidence.size(); ++i)
      EXPECT_DOUBLE_EQ(batched[qi].confidence[i], alone.confidence[i])
          << "query=" << qi << " loc=" << i;
  }

  // A repeated batch is served entirely from the cache.
  const std::vector<CrdResult> again =
      core::detect_confidence_regions(rt, *f.cov, f.mean, opts, queries,
                                      &cache);
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_GE(cache.stats().hits, 2);
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    EXPECT_TRUE(again[qi].factor_cached) << qi;
    EXPECT_DOUBLE_EQ(again[qi].prefix_prob.back(),
                     batched[qi].prefix_prob.back())
        << qi;
  }
}

TEST(RegionSizeAtLevel, HandlesEnvelopeAndEdges) {
  const std::vector<double> prefix{0.99, 0.95, 0.90, 0.92, 0.40};
  // Monotone envelope: 0.99 0.95 0.90 0.90 0.40.
  EXPECT_EQ(core::region_size_at_level(prefix, 0.999), 0);
  EXPECT_EQ(core::region_size_at_level(prefix, 0.95), 2);
  EXPECT_EQ(core::region_size_at_level(prefix, 0.90), 4);
  EXPECT_EQ(core::region_size_at_level(prefix, 0.10), 5);
}

TEST(McValidation, CalibratedAgainstTruth) {
  // End-to-end Section V-C: detect regions, then the MC estimate of the
  // joint exceedance probability of the detected region should track
  // 1 - alpha across levels.
  const TestField f = make_field(9, 9, 0.25, 7);
  rt::Runtime rt(4);
  CrdOptions opts = base_opts();
  opts.pmvn.samples_per_shift = 1500;
  opts.pmvn.shifts = 10;
  const CrdResult r = core::detect_confidence_region(rt, *f.cov, f.mean, opts);

  // Rebuild the ordered correlation Cholesky exactly as the detector did.
  const geo::CorrelationGenerator corr(*f.cov);
  const geo::PermutedGenerator permuted(corr, r.order);
  la::Matrix l = geo::dense_from_generator(permuted);
  la::potrf_lower_or_throw(l.view());

  const i64 n = static_cast<i64>(f.mean.size());
  std::vector<double> a_ord(static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i) {
    const i64 src = r.order[static_cast<std::size_t>(i)];
    const double sd = std::sqrt(f.cov->entry(src, src));
    a_ord[static_cast<std::size_t>(i)] =
        (opts.threshold - f.mean[static_cast<std::size_t>(src)]) / sd;
  }

  const std::vector<double> levels{0.5, 0.7, 0.9};
  const core::McValidationResult v = core::validate_region_mc(
      l.view(), a_ord, r.prefix_prob, levels, 50000, 99);
  ASSERT_EQ(v.p_hat.size(), levels.size());
  for (std::size_t i = 0; i < levels.size(); ++i) {
    // MC error at N=50k is ~0.007 at 3 sigma; allow QMC bias on top.
    EXPECT_NEAR(v.p_hat[i], levels[i], 0.03)
        << "level=" << levels[i] << " (paper Fig. 1, third column)";
  }
}

TEST(McValidation, EmptyRegionTriviallyExceeded) {
  la::Matrix l = la::Matrix::identity(4);
  const std::vector<double> a(4, 5.0);           // nearly impossible limits
  const std::vector<double> prefix{0.1, 0.01, 0.001, 0.0001};
  const std::vector<double> levels{0.95};
  const core::McValidationResult v =
      core::validate_region_mc(l.view(), a, prefix, levels, 1000, 3);
  EXPECT_DOUBLE_EQ(v.p_hat[0], 1.0);  // region size 0
}

}  // namespace
