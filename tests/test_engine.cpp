// Tests for the factor-once / evaluate-many engine layer: CholeskyFactor
// construction and borrowing, the batched PmvnEngine's batch-transparency
// contract (batched results bitwise-identical to single-query evaluation),
// and FactorCache LRU/keying semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "core/pmvn.hpp"
#include "engine/cholesky_factor.hpp"
#include "engine/factor_cache.hpp"
#include "engine/pmvn_engine.hpp"
#include "geo/covgen.hpp"
#include "geo/geometry.hpp"
#include "runtime/runtime.hpp"
#include "stats/covariance.hpp"
#include "tile/tile_matrix.hpp"
#include "tile/tiled_potrf.hpp"

namespace {

using namespace parmvn;

constexpr double kInf = std::numeric_limits<double>::infinity();

struct SpatialProblem {
  geo::LocationSet locs;
  std::shared_ptr<stats::ExponentialKernel> kernel;
  std::shared_ptr<geo::KernelCovGenerator> cov;

  explicit SpatialProblem(i64 side, double range = 0.2)
      : locs(geo::apply_permutation(
            geo::regular_grid(side, side),
            geo::morton_order(geo::regular_grid(side, side)))),
        kernel(std::make_shared<stats::ExponentialKernel>(1.0, range)),
        cov(std::make_shared<geo::KernelCovGenerator>(locs, kernel, 1e-6)) {}

  [[nodiscard]] i64 n() const { return cov->rows(); }
};

engine::EngineOptions small_opts() {
  engine::EngineOptions opts;
  opts.samples_per_shift = 150;
  opts.shifts = 4;
  opts.sampler = stats::SamplerKind::kRichtmyer;
  return opts;
}

TEST(CholeskyFactor, FactorOrderedRecordsMetadata) {
  const SpatialProblem pb(6);
  rt::Runtime rt(2);
  std::vector<i64> order(static_cast<std::size_t>(pb.n()));
  std::iota(order.rbegin(), order.rend(), i64{0});  // reversed
  const engine::FactorSpec spec{engine::FactorKind::kDense, 12, 0.0, -1};
  const engine::CholeskyFactor f =
      engine::CholeskyFactor::factor_ordered(rt, *pb.cov, order, spec);
  EXPECT_EQ(f.kind(), engine::FactorKind::kDense);
  EXPECT_EQ(f.dim(), pb.n());
  EXPECT_EQ(f.tile_size(), 12);
  EXPECT_EQ(f.order(), order);
  ASSERT_EQ(static_cast<i64>(f.sd().size()), pb.n());
  for (i64 i = 0; i < pb.n(); ++i)
    EXPECT_NEAR(f.sd()[static_cast<std::size_t>(i)],
                std::sqrt(pb.cov->entry(i, i)), 1e-15);
  EXPECT_GT(f.factor_seconds(), 0.0);
}

TEST(CholeskyFactor, BorrowedDenseMatchesOwnedFactor) {
  // A borrowed factor and an owned factor of the same matrix must drive the
  // engine to bitwise-identical results.
  const SpatialProblem pb(6);
  rt::Runtime rt(2);
  const i64 n = pb.n();
  std::vector<i64> identity(static_cast<std::size_t>(n));
  std::iota(identity.begin(), identity.end(), i64{0});
  const engine::FactorSpec spec{engine::FactorKind::kDense, 16, 0.0, -1};
  auto owned = std::make_shared<const engine::CholeskyFactor>(
      engine::CholeskyFactor::factor_ordered(rt, *pb.cov, identity, spec));

  // Rebuild the same standardised matrix through the public tile path.
  const geo::CorrelationGenerator corr(*pb.cov);
  tile::TileMatrix l(rt, n, n, 16, tile::Layout::kLowerSymmetric);
  l.generate_async(rt, corr);
  rt.wait_all();
  tile::potrf_tiled(rt, l);
  auto borrowed = std::make_shared<const engine::CholeskyFactor>(
      engine::CholeskyFactor::borrow_dense(l));
  EXPECT_EQ(borrowed->factor_seconds(), 0.0);

  const std::vector<double> a(static_cast<std::size_t>(n), -0.4);
  const std::vector<double> b(static_cast<std::size_t>(n), kInf);
  const engine::LimitSet q{a, b, 99, false};
  const engine::PmvnEngine eng_owned(rt, owned, small_opts());
  const engine::PmvnEngine eng_borrowed(rt, borrowed, small_opts());
  EXPECT_DOUBLE_EQ(eng_owned.evaluate_one(q).prob,
                   eng_borrowed.evaluate_one(q).prob);
}

TEST(PmvnEngine, BatchedMatchesSingleQueryBitwise) {
  // The batch-transparency contract: every query of a fused batch must be
  // bitwise identical to evaluating that query alone with the same seed.
  const SpatialProblem pb(8);
  rt::Runtime rt(4);
  const i64 n = pb.n();
  std::vector<i64> identity(static_cast<std::size_t>(n));
  std::iota(identity.begin(), identity.end(), i64{0});
  for (const engine::FactorKind kind :
       {engine::FactorKind::kDense, engine::FactorKind::kTlr,
        engine::FactorKind::kVecchia}) {
    const engine::FactorSpec spec{kind, 16, 1e-7, -1};
    auto factor = std::make_shared<const engine::CholeskyFactor>(
        engine::CholeskyFactor::factor_ordered(rt, *pb.cov, identity, spec));
    const engine::PmvnEngine eng(rt, factor, small_opts());

    const std::vector<double> b(static_cast<std::size_t>(n), kInf);
    std::vector<std::vector<double>> lows;
    for (const double lo : {-0.9, -0.3, 0.2})
      lows.emplace_back(static_cast<std::size_t>(n), lo);
    std::vector<engine::LimitSet> batch;
    batch.push_back({lows[0], b, 7, true});
    batch.push_back({lows[1], b, 7, false});   // same seed, different limits
    batch.push_back({lows[2], b, 123, true});  // different seed
    const std::vector<engine::QueryResult> fused = eng.evaluate(batch);
    ASSERT_EQ(fused.size(), batch.size());

    for (std::size_t qi = 0; qi < batch.size(); ++qi) {
      const engine::QueryResult alone = eng.evaluate_one(batch[qi]);
      EXPECT_DOUBLE_EQ(fused[qi].prob, alone.prob)
          << "kind=" << static_cast<int>(kind) << " query=" << qi;
      EXPECT_DOUBLE_EQ(fused[qi].error3sigma, alone.error3sigma) << qi;
      ASSERT_EQ(fused[qi].prefix_prob.size(), alone.prefix_prob.size()) << qi;
      for (std::size_t i = 0; i < alone.prefix_prob.size(); ++i)
        EXPECT_DOUBLE_EQ(fused[qi].prefix_prob[i], alone.prefix_prob[i])
            << "query=" << qi << " prefix=" << i;
    }
  }
}

TEST(PmvnEngine, BatchedMatchesSingleUnderTightPanelBudget) {
  // Batch transparency must survive panelling: a tiny shared budget forces
  // many rounds with per-query widths different from the single-query runs.
  const SpatialProblem pb(5);
  rt::Runtime rt(2);
  const i64 n = pb.n();
  std::vector<i64> identity(static_cast<std::size_t>(n));
  std::iota(identity.begin(), identity.end(), i64{0});
  const engine::FactorSpec spec{engine::FactorKind::kDense, 10, 0.0, -1};
  auto factor = std::make_shared<const engine::CholeskyFactor>(
      engine::CholeskyFactor::factor_ordered(rt, *pb.cov, identity, spec));

  engine::EngineOptions tight = small_opts();
  tight.panel_bytes = 1;  // floor: one tile of columns per query per round
  engine::EngineOptions wide = small_opts();
  const engine::PmvnEngine eng_tight(rt, factor, tight);
  const engine::PmvnEngine eng_wide(rt, factor, wide);

  const std::vector<double> a(static_cast<std::size_t>(n), -0.5);
  const std::vector<double> b(static_cast<std::size_t>(n), 1.5);
  std::vector<engine::LimitSet> batch;
  batch.push_back({a, b, 3, true});
  batch.push_back({a, b, 4, true});
  const auto r_tight = eng_tight.evaluate(batch);
  const auto r_wide = eng_wide.evaluate(batch);
  for (std::size_t qi = 0; qi < batch.size(); ++qi) {
    EXPECT_DOUBLE_EQ(r_tight[qi].prob, r_wide[qi].prob) << qi;
    for (std::size_t i = 0; i < r_wide[qi].prefix_prob.size(); ++i)
      EXPECT_DOUBLE_EQ(r_tight[qi].prefix_prob[i], r_wide[qi].prefix_prob[i])
          << "query=" << qi << " prefix=" << i;
  }
}

TEST(PmvnEngine, AgreesWithLegacySingleQueryWrappers) {
  // core::pmvn_dense delegates to the engine; a direct engine run over the
  // same borrowed factor must agree bitwise.
  const SpatialProblem pb(6);
  rt::Runtime rt(2);
  const i64 n = pb.n();
  const geo::CorrelationGenerator corr(*pb.cov);
  tile::TileMatrix l(rt, n, n, 16, tile::Layout::kLowerSymmetric);
  l.generate_async(rt, corr);
  rt.wait_all();
  tile::potrf_tiled(rt, l);

  const std::vector<double> a(static_cast<std::size_t>(n), -0.7);
  const std::vector<double> b(static_cast<std::size_t>(n), kInf);
  core::PmvnOptions legacy;
  legacy.samples_per_shift = 150;
  legacy.shifts = 4;
  legacy.sampler = stats::SamplerKind::kRichtmyer;
  legacy.seed = 21;
  const core::PmvnResult via_wrapper = core::pmvn_dense(rt, l, a, b, legacy);

  auto factor = std::make_shared<const engine::CholeskyFactor>(
      engine::CholeskyFactor::borrow_dense(l));
  engine::EngineOptions opts = small_opts();
  const engine::PmvnEngine eng(rt, factor, opts);
  const engine::QueryResult direct = eng.evaluate_one({a, b, 21, false});
  EXPECT_DOUBLE_EQ(via_wrapper.prob, direct.prob);
  EXPECT_DOUBLE_EQ(via_wrapper.error3sigma, direct.error3sigma);
}

TEST(PmvnEngine, PanelHandlesAreRecycledAcrossRoundsAndCalls) {
  // Serving workload: one long-lived runtime, many evaluate() calls. The
  // per-round panel/p handles must be released back to the runtime, or the
  // handle table grows with query volume.
  const SpatialProblem pb(5);
  rt::Runtime rt(2);
  const i64 n = pb.n();
  std::vector<i64> identity(static_cast<std::size_t>(n));
  std::iota(identity.begin(), identity.end(), i64{0});
  const engine::FactorSpec spec{engine::FactorKind::kDense, 10, 0.0, -1};
  auto factor = std::make_shared<const engine::CholeskyFactor>(
      engine::CholeskyFactor::factor_ordered(rt, *pb.cov, identity, spec));
  engine::EngineOptions opts = small_opts();
  opts.panel_bytes = 1;  // many rounds per evaluate
  const engine::PmvnEngine eng(rt, factor, opts);

  const std::vector<double> a(static_cast<std::size_t>(n), -0.5);
  const std::vector<double> b(static_cast<std::size_t>(n), kInf);
  std::vector<engine::LimitSet> batch;
  batch.push_back({a, b, 1, true});
  batch.push_back({a, b, 2, false});

  const rt::DataHandle before = rt.register_data();
  (void)eng.evaluate(batch);
  (void)eng.evaluate(batch);
  const rt::DataHandle after = rt.register_data();
  // Without recycling this id gap would be ~(rows+1)*tiles per round times
  // ~60 rounds times 2 calls; with recycling it is at most one round's
  // handle count.
  EXPECT_LE(after.id(), before.id() + 16)
      << "engine panel handles must be released every round";
  rt.release_data(before);
  rt.release_data(after);
}

TEST(PmvnEngine, EmptyBatchAndShapeChecks) {
  const SpatialProblem pb(4);
  rt::Runtime rt(1);
  std::vector<i64> identity(static_cast<std::size_t>(pb.n()));
  std::iota(identity.begin(), identity.end(), i64{0});
  const engine::FactorSpec spec{engine::FactorKind::kDense, 8, 0.0, -1};
  auto factor = std::make_shared<const engine::CholeskyFactor>(
      engine::CholeskyFactor::factor_ordered(rt, *pb.cov, identity, spec));
  const engine::PmvnEngine eng(rt, factor, small_opts());
  EXPECT_TRUE(eng.evaluate({}).empty());

  const std::vector<double> short_a(4, 0.0);
  const std::vector<double> b(static_cast<std::size_t>(pb.n()), kInf);
  EXPECT_THROW((void)eng.evaluate_one({short_a, b, 1, false}), Error);
}

TEST(EngineOptions, ValidateRejectsEveryBadKnobTyped) {
  // Nonsense options must fail typed at construction (PmvnEngine's ctor and
  // core::engine_options both call validate()), never as undefined
  // downstream behaviour.
  const auto expect_throws = [](auto mutate) {
    engine::EngineOptions o;
    mutate(o);
    EXPECT_THROW(o.validate(), Error);
  };
  engine::EngineOptions ok;
  EXPECT_NO_THROW(ok.validate());
  expect_throws([](auto& o) { o.samples_per_shift = 0; });
  expect_throws([](auto& o) { o.shifts = 0; });
  expect_throws([](auto& o) { o.panel_bytes = 0; });
  expect_throws([](auto& o) { o.deadline_ms = -1; });
  expect_throws([](auto& o) { o.ep_margin = -0.05; });
  expect_throws([](auto& o) { o.ep_margin = std::nan(""); });
  expect_throws([](auto& o) { o.abs_tol = -1.0; });
  expect_throws([](auto& o) {
    o.antithetic = true;
    o.shifts = 5;
  });
  expect_throws([](auto& o) {
    o.adaptive = true;
    o.min_shifts = 1;
  });
  expect_throws([](auto& o) {
    o.adaptive = true;
    o.min_shifts = o.shifts + 1;
  });
}

TEST(EngineOptions, PmvnEngineConstructorValidates) {
  const SpatialProblem pb(4);
  rt::Runtime rt(1);
  std::vector<i64> identity(static_cast<std::size_t>(pb.n()));
  std::iota(identity.begin(), identity.end(), i64{0});
  const engine::FactorSpec spec{engine::FactorKind::kDense, 8, 0.0, -1};
  auto factor = std::make_shared<const engine::CholeskyFactor>(
      engine::CholeskyFactor::factor_ordered(rt, *pb.cov, identity, spec));
  engine::EngineOptions bad = small_opts();
  bad.deadline_ms = -1;
  EXPECT_THROW(engine::PmvnEngine(rt, factor, bad), Error);
}

TEST(EngineOptions, PmvnOptionsTranslationValidates) {
  core::PmvnOptions bad;
  bad.ep_margin = -0.2;
  EXPECT_THROW((void)core::engine_options(bad), Error);
}

TEST(FactorCache, HitsMissesAndLru) {
  const SpatialProblem pb(5);
  rt::Runtime rt(2);
  const i64 n = pb.n();
  std::vector<i64> identity(static_cast<std::size_t>(n));
  std::iota(identity.begin(), identity.end(), i64{0});
  std::vector<i64> reversed(identity.rbegin(), identity.rend());
  const engine::FactorSpec dense16{engine::FactorKind::kDense, 16, 0.0, -1};
  const engine::FactorSpec dense8{engine::FactorKind::kDense, 8, 0.0, -1};

  engine::FactorCache cache(2);
  const auto f1 = cache.get_or_factor(rt, *pb.cov, identity, dense16);
  EXPECT_EQ(cache.stats().misses, 1);
  const auto f2 = cache.get_or_factor(rt, *pb.cov, identity, dense16);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(f1.get(), f2.get()) << "hit must return the cached factor";

  // Different ordering and different spec are distinct entries.
  (void)cache.get_or_factor(rt, *pb.cov, reversed, dense16);
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.size(), 2u);
  (void)cache.get_or_factor(rt, *pb.cov, identity, dense8);
  EXPECT_EQ(cache.stats().misses, 3);
  EXPECT_EQ(cache.size(), 2u) << "capacity 2 holds";
  EXPECT_EQ(cache.stats().evictions, 1);

  // The evicted identity/tile-16 entry must re-factor.
  (void)cache.get_or_factor(rt, *pb.cov, identity, dense16);
  EXPECT_EQ(cache.stats().misses, 4);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(FactorCache, VecchiaConditioningSizeIsPartOfTheKey) {
  // Two specs differing only in vecchia_m describe different factors (more
  // conditioning = a different sparse inverse-Cholesky); the cache must
  // never serve one for the other.
  const SpatialProblem pb(5);
  rt::Runtime rt(2);
  std::vector<i64> identity(static_cast<std::size_t>(pb.n()));
  std::iota(identity.begin(), identity.end(), i64{0});
  engine::FactorSpec m8{engine::FactorKind::kVecchia, 16, 0.0, -1};
  m8.vecchia_m = 8;
  engine::FactorSpec m12 = m8;
  m12.vecchia_m = 12;

  engine::FactorCache cache(4);
  const auto f8 = cache.get_or_factor(rt, *pb.cov, identity, m8);
  const auto f12 = cache.get_or_factor(rt, *pb.cov, identity, m12);
  EXPECT_NE(f8.get(), f12.get());
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(f8->vecchia().cond_m(), 8);
  EXPECT_EQ(f12->vecchia().cond_m(), 12);
  // And each spec hits its own entry on re-request.
  EXPECT_EQ(cache.get_or_factor(rt, *pb.cov, identity, m8).get(), f8.get());
  EXPECT_EQ(cache.stats().hits, 1);
}

TEST(FactorCache, NonCacheableGeneratorAlwaysFactors) {
  rt::Runtime rt(1);
  la::Matrix sigma = la::Matrix::identity(6);
  const la::DenseGenerator gen(std::move(sigma));  // cache_key() is empty
  std::vector<i64> identity(6);
  std::iota(identity.begin(), identity.end(), i64{0});
  const engine::FactorSpec spec{engine::FactorKind::kDense, 3, 0.0, -1};

  engine::FactorCache cache(4);
  const auto f1 = cache.get_or_factor(rt, gen, identity, spec);
  const auto f2 = cache.get_or_factor(rt, gen, identity, spec);
  EXPECT_NE(f1.get(), f2.get());
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.size(), 0u) << "opt-out entries are never stored";
}

TEST(FactorCache, DifferentRuntimeIsAMiss) {
  // Factors are bound to the runtime that registered their tile handles;
  // the cache must refuse to serve them to another runtime.
  const SpatialProblem pb(4);
  std::vector<i64> identity(static_cast<std::size_t>(pb.n()));
  std::iota(identity.begin(), identity.end(), i64{0});
  const engine::FactorSpec spec{engine::FactorKind::kDense, 8, 0.0, -1};
  engine::FactorCache cache(4);
  rt::Runtime rt_a(1);
  const auto f1 = cache.get_or_factor(rt_a, *pb.cov, identity, spec);
  rt::Runtime rt_b(1);
  const auto f2 = cache.get_or_factor(rt_b, *pb.cov, identity, spec);
  EXPECT_NE(f1.get(), f2.get());
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.stats().misses, 2);
}

TEST(FactorCache, RecreatedRuntimeIsAMissEvenAtTheSameAddress) {
  // Runtime binding is by process-unique uid, not address: a runtime
  // destroyed and reconstructed (typically at the same stack address) must
  // never be served the stale factor, whose handles index the dead
  // runtime's table.
  const SpatialProblem pb(4);
  std::vector<i64> identity(static_cast<std::size_t>(pb.n()));
  std::iota(identity.begin(), identity.end(), i64{0});
  const engine::FactorSpec spec{engine::FactorKind::kDense, 8, 0.0, -1};
  engine::FactorCache cache(4);
  {
    rt::Runtime rt_first(1);
    (void)cache.get_or_factor(rt_first, *pb.cov, identity, spec);
  }
  rt::Runtime rt_second(1);
  const auto factor = cache.get_or_factor(rt_second, *pb.cov, identity, spec);
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.size(), 1u)
      << "the dead runtime's unreachable entry must be purged, not pinned";
  // And the served factor is actually usable with the new runtime.
  const std::vector<double> a(static_cast<std::size_t>(pb.n()), -0.2);
  const std::vector<double> b(static_cast<std::size_t>(pb.n()), kInf);
  const engine::PmvnEngine eng(rt_second, factor, small_opts());
  EXPECT_GT(eng.evaluate_one({a, b, 5, false}).prob, 0.0);
}

TEST(FactorCache, KernelAndGeneratorKeysAreParameterComplete) {
  const geo::LocationSet locs = geo::regular_grid(3, 3);
  const auto k1 = std::make_shared<stats::ExponentialKernel>(1.0, 0.2);
  const auto k2 = std::make_shared<stats::ExponentialKernel>(1.0, 0.25);
  const geo::KernelCovGenerator g1(locs, k1, 1e-6);
  const geo::KernelCovGenerator g1b(locs, k1, 1e-6);
  const geo::KernelCovGenerator g2(locs, k2, 1e-6);
  const geo::KernelCovGenerator g3(locs, k1, 1e-5);
  EXPECT_FALSE(g1.cache_key().empty());
  EXPECT_EQ(g1.cache_key(), g1b.cache_key());
  EXPECT_NE(g1.cache_key(), g2.cache_key()) << "kernel params must show";
  EXPECT_NE(g1.cache_key(), g3.cache_key()) << "nugget must show";

  const geo::LocationSet other = geo::regular_grid(3, 4);
  const geo::KernelCovGenerator g4(other, k1, 1e-6);
  EXPECT_NE(g1.cache_key(), g4.cache_key()) << "locations must show";

  const geo::CorrelationGenerator corr(g1);
  EXPECT_FALSE(corr.cache_key().empty());
  EXPECT_NE(corr.cache_key(), g1.cache_key());
}

TEST(FactorCache, ConcurrentServingThreadsShareOneCache) {
  // The first ROADMAP scaling lever: one mutex over lookup/insert/evict/
  // purge lets serving threads share a cache. Each thread drives its own
  // runtime (factors stay runtime-bound, so threads get their own entries
  // by key) against a small shared cache whose capacity forces concurrent
  // insert/evict traffic; every returned factor must be intact and the
  // counters must balance.
  const SpatialProblem pb(4);
  const i64 n = pb.n();
  std::vector<i64> identity(static_cast<std::size_t>(n));
  std::iota(identity.begin(), identity.end(), i64{0});
  std::vector<i64> reversed(identity.rbegin(), identity.rend());
  const engine::FactorSpec spec{engine::FactorKind::kDense, 8, 0.0, -1};

  engine::FactorCache cache(3);  // < threads x orders: eviction under load
  constexpr int kThreads = 4;
  constexpr int kIters = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      rt::Runtime rt(1);
      for (int it = 0; it < kIters; ++it) {
        const std::vector<i64>& order = (it + t) % 2 == 0 ? identity : reversed;
        const auto factor = cache.get_or_factor(rt, *pb.cov, order, spec);
        if (factor == nullptr || factor->dim() != n ||
            factor->order() != order) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  const engine::FactorCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, i64{kThreads * kIters});
  EXPECT_GT(stats.misses, 0);
  EXPECT_LE(cache.size(), cache.capacity());
}

// Satellite of the failure-domain hardening PR: no runtime in this suite
// may have leaked a tile-handle slot through HandleLease::release().
TEST(HandleHygiene, NoHandleLeakedAcrossTheWholeSuite) {
  EXPECT_EQ(rt::Runtime::total_handles_leaked(), 0);
}

}  // namespace
