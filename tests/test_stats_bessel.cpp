// Tests for K_nu: closed forms at half-integer orders, recurrence identity,
// and a double-exponential quadrature oracle for general (nu, x).
#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "stats/bessel.hpp"

namespace {

using parmvn::stats::bessel_k;
using parmvn::stats::bessel_k_scaled;

// Oracle: K_nu(x) = int_0^inf exp(-x cosh t) cosh(nu t) dt, integrated with
// a fine trapezoid rule out to where the integrand underflows. Slow but
// accurate to ~1e-12 for x >= 0.05 — independent of the production
// implementation's algorithm.
double bessel_k_oracle(double nu, double x) {
  const double tmax = std::acosh(750.0 / x + 1.0);
  const int n = 40000;
  const double h = tmax / n;
  double sum = 0.5 * std::exp(-x);  // t = 0 term: cosh(0)=1 both factors
  for (int i = 1; i < n; ++i) {
    const double t = h * i;
    sum += std::exp(-x * std::cosh(t)) * std::cosh(nu * t);
  }
  return sum * h;
}

TEST(BesselK, HalfIntegerClosedForms) {
  // K_{1/2}(x) = sqrt(pi/(2x)) e^-x
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 50.0}) {
    const double expected = std::sqrt(M_PI / (2.0 * x)) * std::exp(-x);
    EXPECT_NEAR(bessel_k(0.5, x) / expected, 1.0, 1e-12) << "x=" << x;
    // K_{3/2}(x) = sqrt(pi/(2x)) e^-x (1 + 1/x)
    const double k32 = expected * (1.0 + 1.0 / x);
    EXPECT_NEAR(bessel_k(1.5, x) / k32, 1.0, 1e-12) << "x=" << x;
    // K_{5/2}(x) = sqrt(pi/(2x)) e^-x (1 + 3/x + 3/x^2)
    const double k52 = expected * (1.0 + 3.0 / x + 3.0 / (x * x));
    EXPECT_NEAR(bessel_k(2.5, x) / k52, 1.0, 1e-12) << "x=" << x;
  }
}

TEST(BesselK, IntegerOrderReferenceValues) {
  // Classic table values (A&S 9.8; verified with mpmath).
  EXPECT_NEAR(bessel_k(0.0, 1.0) / 0.42102443824070834, 1.0, 1e-13);
  EXPECT_NEAR(bessel_k(1.0, 1.0) / 0.6019072301972346, 1.0, 1e-13);
  EXPECT_NEAR(bessel_k(0.0, 2.0) / 0.11389387274953343, 1.0, 1e-13);
  EXPECT_NEAR(bessel_k(2.0, 2.0) / 0.25375975456605586, 1.0, 1e-13);
}

class BesselOracleGrid
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(BesselOracleGrid, MatchesQuadratureOracle) {
  const auto [nu, x] = GetParam();
  const double oracle = bessel_k_oracle(nu, x);
  const double fast = bessel_k(nu, x);
  EXPECT_NEAR(fast / oracle, 1.0, 1e-9) << "nu=" << nu << " x=" << x;
}

INSTANTIATE_TEST_SUITE_P(
    NuXGrid, BesselOracleGrid,
    ::testing::Combine(
        ::testing::Values(0.1, 0.3, 0.75, 1.0, 1.43391, 2.2, 3.7, 5.5),
        ::testing::Values(0.05, 0.3, 1.0, 1.9, 2.1, 4.0, 15.0)));

TEST(BesselK, RecurrenceIdentityHolds) {
  // K_{nu+1}(x) = K_{nu-1}(x) + (2 nu / x) K_nu(x)
  for (double nu : {0.7, 1.2, 2.6, 4.1}) {
    for (double x : {0.2, 1.0, 3.0, 8.0}) {
      const double lhs = bessel_k(nu + 1.0, x);
      const double rhs = bessel_k(nu - 1.0, x) + (2.0 * nu / x) * bessel_k(nu, x);
      EXPECT_NEAR(lhs / rhs, 1.0, 1e-11) << "nu=" << nu << " x=" << x;
    }
  }
}

TEST(BesselK, ScaledVersionConsistent) {
  for (double nu : {0.5, 1.43391, 3.0}) {
    for (double x : {0.5, 2.0, 20.0}) {
      EXPECT_NEAR(bessel_k_scaled(nu, x) / (bessel_k(nu, x) * std::exp(x)),
                  1.0, 1e-11);
    }
  }
  // Scaled form stays finite where the plain value underflows.
  EXPECT_GT(bessel_k_scaled(1.0, 800.0), 0.0);
  EXPECT_EQ(bessel_k(1.0, 800.0), 0.0);
}

TEST(BesselK, MonotoneDecreasingInX) {
  for (double nu : {0.5, 1.43391, 2.0}) {
    double prev = bessel_k(nu, 0.01);
    for (double x = 0.1; x < 20.0; x += 0.37) {
      const double k = bessel_k(nu, x);
      EXPECT_LT(k, prev) << "nu=" << nu << " x=" << x;
      prev = k;
    }
  }
}

TEST(BesselK, DomainChecks) {
  EXPECT_THROW(bessel_k(1.0, 0.0), parmvn::Error);
  EXPECT_THROW(bessel_k(1.0, -2.0), parmvn::Error);
}

TEST(BesselK, EvenInOrder) {
  for (double nu : {0.3, 1.2, 2.5}) {
    for (double x : {0.5, 3.0}) {
      EXPECT_DOUBLE_EQ(bessel_k(-nu, x), bessel_k(nu, x));
    }
  }
}

}  // namespace
