// Tests for SPD inverse / Cholesky-based solves.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/potrf.hpp"
#include "linalg/solve.hpp"
#include "stats/rng.hpp"

namespace {

using namespace parmvn;
using la::Matrix;
using la::Trans;

Matrix random_spd(i64 n, u64 seed) {
  stats::Xoshiro256pp g(seed);
  Matrix m(n, n);
  for (i64 j = 0; j < n; ++j)
    for (i64 i = 0; i < n; ++i) m(i, j) = 2.0 * g.next_u01() - 1.0;
  Matrix a(n, n);
  la::gemm(Trans::kNo, Trans::kYes, 1.0, m.view(), m.view(), 0.0, a.view());
  for (i64 i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

TEST(SpdInverse, TimesOriginalIsIdentity) {
  for (i64 n : {1, 4, 33, 100, 180}) {
    const Matrix a = random_spd(n, 200 + static_cast<u64>(n));
    Matrix inv = la::to_matrix(a.view());
    la::spd_inverse(inv.view());
    Matrix prod(n, n);
    la::gemm(Trans::kNo, Trans::kNo, 1.0, a.view(), inv.view(), 0.0,
             prod.view());
    for (i64 i = 0; i < n; ++i) prod(i, i) -= 1.0;
    EXPECT_LT(la::frobenius_norm(prod.view()), 1e-9 * static_cast<double>(n))
        << "n=" << n;
  }
}

TEST(SpdInverse, ResultIsSymmetric) {
  Matrix a = random_spd(50, 9);
  la::spd_inverse(a.view());
  for (i64 j = 0; j < 50; ++j)
    for (i64 i = j + 1; i < 50; ++i) EXPECT_DOUBLE_EQ(a(i, j), a(j, i));
}

TEST(SpdInverse, RejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = -2.0;
  EXPECT_THROW(la::spd_inverse(a.view()), Error);
}

TEST(CholSolve, SolvesLinearSystem) {
  const i64 n = 40;
  const Matrix a = random_spd(n, 17);
  Matrix l = la::to_matrix(a.view());
  la::potrf_lower_or_throw(l.view());
  stats::Xoshiro256pp g(18);
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (double& v : x_true) v = g.next_normal();
  std::vector<double> b(static_cast<std::size_t>(n), 0.0);
  la::gemv(Trans::kNo, 1.0, a.view(), x_true.data(), 0.0, b.data());
  la::chol_solve_inplace(l.view(), b.data());
  for (i64 i = 0; i < n; ++i)
    EXPECT_NEAR(b[static_cast<std::size_t>(i)],
                x_true[static_cast<std::size_t>(i)], 1e-9);
}

TEST(CholLogdet, MatchesDiagonalCase) {
  Matrix a(3, 3);
  a(0, 0) = 4.0;
  a(1, 1) = 9.0;
  a(2, 2) = 16.0;
  Matrix l = la::to_matrix(a.view());
  la::potrf_lower_or_throw(l.view());
  EXPECT_NEAR(la::chol_logdet(l.view()), std::log(4.0 * 9.0 * 16.0), 1e-12);
}

TEST(CholLogdet, GeneralSpdAgainstProductOfPivots) {
  const Matrix a = random_spd(25, 21);
  Matrix l = la::to_matrix(a.view());
  la::potrf_lower_or_throw(l.view());
  double expect = 0.0;
  for (i64 i = 0; i < 25; ++i) expect += 2.0 * std::log(l(i, i));
  EXPECT_NEAR(la::chol_logdet(l.view()), expect, 1e-12);
}

}  // namespace
