// Tests for the univariate normal kernels: reference values, symmetry,
// quantile/CDF roundtrips and tail stability.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "stats/normal.hpp"

namespace {

using parmvn::stats::norm_cdf;
using parmvn::stats::norm_cdf_diff;
using parmvn::stats::norm_logcdf;
using parmvn::stats::norm_pdf;
using parmvn::stats::norm_quantile;

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(NormPdf, ReferenceValues) {
  EXPECT_NEAR(norm_pdf(0.0), 0.3989422804014327, 1e-16);
  EXPECT_NEAR(norm_pdf(1.0), 0.24197072451914337, 1e-16);
  EXPECT_NEAR(norm_pdf(-2.0), 0.05399096651318806, 1e-16);
}

TEST(NormCdf, ReferenceValues) {
  // Reference values from Abramowitz&Stegun / R pnorm.
  EXPECT_DOUBLE_EQ(norm_cdf(0.0), 0.5);
  EXPECT_NEAR(norm_cdf(1.0), 0.8413447460685429, 1e-15);
  EXPECT_NEAR(norm_cdf(-1.0), 0.15865525393145705, 1e-15);
  EXPECT_NEAR(norm_cdf(1.96), 0.9750021048517795, 1e-15);
  EXPECT_NEAR(norm_cdf(-1.96), 0.024997895148220435, 1e-15);
  EXPECT_NEAR(norm_cdf(3.0), 0.9986501019683699, 1e-15);
  EXPECT_NEAR(norm_cdf(-5.0) / 2.866515718791933e-07, 1.0, 1e-9);
  EXPECT_NEAR(norm_cdf(-10.0) / 7.619853024160489e-24, 1.0, 1e-9);
}

TEST(NormCdf, Endpoints) {
  EXPECT_DOUBLE_EQ(norm_cdf(-kInf), 0.0);
  EXPECT_DOUBLE_EQ(norm_cdf(kInf), 1.0);
  EXPECT_EQ(norm_cdf(-40.0), 0.0);  // underflows cleanly
  EXPECT_DOUBLE_EQ(norm_cdf(40.0), 1.0);
}

TEST(NormCdf, Symmetry) {
  for (double x : {0.1, 0.5, 1.0, 2.0, 3.7, 6.5}) {
    EXPECT_NEAR(norm_cdf(x) + norm_cdf(-x), 1.0, 1e-15) << "x=" << x;
  }
}

class QuantileRoundtrip : public ::testing::TestWithParam<double> {};

TEST_P(QuantileRoundtrip, QuantileInvertsCdf) {
  const double x = GetParam();
  const double p = norm_cdf(x);
  const double back = norm_quantile(p);
  // Near the tails the CDF loses resolution, so compare in x with a tolerance
  // scaled by the local derivative.
  EXPECT_NEAR(back, x, 1e-9 * (1.0 + std::fabs(x))) << "x=" << x;
}

// Positive arguments stop at 5: beyond that 1-Phi(x) is below the spacing of
// doubles around 1, so the roundtrip is resolution-limited by IEEE754, not
// by the quantile implementation (the left tail covers large |x| instead).
INSTANTIATE_TEST_SUITE_P(SweepX, QuantileRoundtrip,
                         ::testing::Values(-8.0, -5.0, -3.0, -1.5, -0.5, -0.1,
                                           0.0, 0.1, 0.7, 1.0, 2.5, 4.0, 5.0));

TEST(NormQuantile, ReferenceValues) {
  EXPECT_DOUBLE_EQ(norm_quantile(0.5), 0.0);
  EXPECT_NEAR(norm_quantile(0.975), 1.959963984540054, 1e-12);
  EXPECT_NEAR(norm_quantile(0.025), -1.959963984540054, 1e-12);
  EXPECT_NEAR(norm_quantile(0.84134474606854293), 1.0, 1e-12);
  EXPECT_NEAR(norm_quantile(1e-10), -6.361340902404056, 1e-9);
}

TEST(NormQuantile, Endpoints) {
  EXPECT_EQ(norm_quantile(0.0), -kInf);
  EXPECT_EQ(norm_quantile(1.0), kInf);
  EXPECT_TRUE(std::isnan(norm_quantile(std::nan(""))));
}

TEST(NormQuantile, MonotoneOnGrid) {
  double prev = -kInf;
  for (int i = 1; i < 1000; ++i) {
    const double p = static_cast<double>(i) / 1000.0;
    const double q = norm_quantile(p);
    EXPECT_GT(q, prev);
    prev = q;
  }
}

TEST(NormLogCdf, MatchesLogOfCdfInBulk) {
  for (double x : {-5.0, -2.0, -1.0, 0.0, 1.0, 3.0}) {
    EXPECT_NEAR(norm_logcdf(x), std::log(norm_cdf(x)), 1e-12) << "x=" << x;
  }
}

TEST(NormLogCdf, FarTailFiniteAndOrdered) {
  // Where norm_cdf underflows to 0, logcdf must stay finite and decreasing.
  double prev = norm_logcdf(-30.0);
  for (double x : {-40.0, -60.0, -100.0, -200.0}) {
    const double lc = norm_logcdf(x);
    EXPECT_TRUE(std::isfinite(lc)) << "x=" << x;
    EXPECT_LT(lc, prev);
    prev = lc;
  }
  // Asymptotic check at x=-40: log Phi(x) ~ -x^2/2 - log(-x) - log(2pi)/2.
  const double x = -40.0;
  const double approx = -0.5 * x * x - std::log(40.0) - 0.9189385332046727;
  EXPECT_NEAR(norm_logcdf(x) / approx, 1.0, 1e-3);
}

TEST(NormCdfDiff, AgreesWithDirectDifference) {
  for (double a : {-3.0, -1.0, 0.0, 0.5}) {
    for (double w : {0.1, 1.0, 2.5}) {
      const double b = a + w;
      EXPECT_NEAR(norm_cdf_diff(a, b), norm_cdf(b) - norm_cdf(a), 1e-15);
    }
  }
}

TEST(NormCdfDiff, RightTailNoCancellation) {
  // Phi(8.1)-Phi(8.0) computed naively loses all digits; the mirrored form
  // must match the left-tail equivalent exactly.
  const double direct = norm_cdf_diff(8.0, 8.1);
  const double mirrored = norm_cdf(-8.0) - norm_cdf(-8.1);
  EXPECT_GT(direct, 0.0);
  EXPECT_NEAR(direct / mirrored, 1.0, 1e-12);
}

TEST(NormCdfDiff, DegenerateAndInfiniteLimits) {
  EXPECT_DOUBLE_EQ(norm_cdf_diff(1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(norm_cdf_diff(2.0, 1.0), 0.0);  // a > b clamps to 0
  EXPECT_DOUBLE_EQ(norm_cdf_diff(-kInf, kInf), 1.0);
  EXPECT_NEAR(norm_cdf_diff(-kInf, 0.0), 0.5, 1e-15);
  EXPECT_NEAR(norm_cdf_diff(0.0, kInf), 0.5, 1e-15);
}

}  // namespace
